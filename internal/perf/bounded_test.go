package perf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoundedLargeSkidMatchesUnbounded(t *testing.T) {
	f := func(seed int64, nRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%5) + 1
		b := int(bRaw%10) + 1
		stages := make([]Stage, n)
		for i := range stages {
			stages[i] = Stage{Cycles: int64(rng.Intn(50) + 1)}
		}
		// A skid of batch images can never block.
		return SimulateBatchBounded(stages, b, b+1) == SimulateBatch(stages, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedMonotoneInSkid(t *testing.T) {
	stages := []Stage{{Cycles: 10}, {Cycles: 50}, {Cycles: 10}, {Cycles: 30}}
	batch := 12
	prev := SimulateBatchBounded(stages, batch, 0)
	for skid := 1; skid <= 4; skid++ {
		cur := SimulateBatchBounded(stages, batch, skid)
		if cur > prev {
			t.Fatalf("skid %d total %d exceeds skid %d total %d", skid, cur, skid-1, prev)
		}
		prev = cur
	}
	if prev != SimulateBatch(stages, batch) {
		t.Fatalf("large skid %d should converge to unbounded %d", prev, SimulateBatch(stages, batch))
	}
}

func TestBoundedZeroSkidBalancedPipeline(t *testing.T) {
	// With equal stage times, even lock-step handoff achieves the ideal
	// pipeline schedule.
	stages := []Stage{{Cycles: 10}, {Cycles: 10}, {Cycles: 10}}
	if got, want := SimulateBatchBounded(stages, 4, 0), SimulateBatch(stages, 4); got != want {
		t.Fatalf("balanced lock-step %d, want %d", got, want)
	}
}

func TestBoundedBackpressureSlowsUnbalancedPipeline(t *testing.T) {
	// A slow middle stage with no skid forces the fast producer to stall
	// beyond what unbounded buffering would show... the bottleneck still
	// dominates, so totals match on a 3-stage pipe; use a shape where
	// post-bottleneck imbalance matters.
	stages := []Stage{{Cycles: 30}, {Cycles: 5}, {Cycles: 30}, {Cycles: 5}, {Cycles: 30}}
	unbounded := SimulateBatch(stages, 16)
	locked := SimulateBatchBounded(stages, 16, 0)
	if locked < unbounded {
		t.Fatalf("lock-step %d cannot beat unbounded %d", locked, unbounded)
	}
}

func TestBoundedEdgeCases(t *testing.T) {
	if SimulateBatchBounded(nil, 4, 1) != 0 {
		t.Fatal("no stages should return 0")
	}
	if SimulateBatchBounded([]Stage{{Cycles: 5}}, 0, 1) != 0 {
		t.Fatal("no images should return 0")
	}
	if got := SimulateBatchBounded([]Stage{{Cycles: 5}}, 3, -2); got != 15 {
		t.Fatalf("negative skid clamps to 0: %d", got)
	}
}
