package perf

import (
	"condor/internal/board"
	"condor/internal/dataflow"
)

// Roofline is the roofline-model characterisation of an accelerator
// configuration (the evaluation device of Zhang et al., FPGA'15, which the
// paper's related work builds on): the attainable throughput is the
// minimum of the compute roof (all MAC lanes busy every cycle) and the
// bandwidth roof (operational intensity × DDR bandwidth).
type Roofline struct {
	// PeakGFLOPS is the compute roof: 2 × MAC lanes × clock.
	PeakGFLOPS float64
	// BandwidthGBps is the board's aggregate DDR bandwidth.
	BandwidthGBps float64
	// OperationalIntensity is FLOPs per DDR byte for one image.
	OperationalIntensity float64
	// AttainableGFLOPS = min(PeakGFLOPS, OI × BW).
	AttainableGFLOPS float64
	// SustainedGFLOPS is the pipeline model's throughput at the bottleneck.
	SustainedGFLOPS float64
	// ComputeBound reports whether the compute roof is the binding one.
	ComputeBound bool
}

// AnalyzeRoofline characterises a configuration: macLanes is the total MAC
// datapath width (from the synthesis report), flopsPerImage the network
// work, and the spec supplies the traffic model.
func AnalyzeRoofline(spec *dataflow.Spec, b *board.Board, macLanes int, flopsPerImage int64, freqMHz float64) Roofline {
	r := Roofline{
		PeakGFLOPS:    2 * float64(macLanes) * freqMHz / 1e3,
		BandwidthGBps: b.DDRBandwidthGBps,
	}
	bytesPerImage := spec.DDRBytesPerImage()
	if bytesPerImage > 0 {
		r.OperationalIntensity = float64(flopsPerImage) / float64(bytesPerImage)
	}
	bwRoof := r.OperationalIntensity * r.BandwidthGBps
	r.AttainableGFLOPS = bwRoof
	r.ComputeBound = r.PeakGFLOPS <= bwRoof
	if r.ComputeBound {
		r.AttainableGFLOPS = r.PeakGFLOPS
	}
	r.SustainedGFLOPS = SteadyStateGFLOPS(flopsPerImage, Bottleneck(Stages(spec)), freqMHz)
	return r
}

// BandwidthBound reports whether the sustained throughput would exceed the
// bandwidth roof — a configuration the DSE should reject (the datamover
// cannot feed the fabric).
func (r Roofline) BandwidthBound() bool {
	return !r.ComputeBound && r.SustainedGFLOPS > r.AttainableGFLOPS
}
