// Package perf models the performance of a Condor accelerator: the
// high-level pipeline formed by the concurrently-active PEs is simulated at
// image granularity on the discrete-event kernel, using the per-PE cycle
// model shared with the functional fabric. This layer produces the paper's
// evaluation quantities: mean time per image versus batch size (Figure 5)
// and steady-state GFLOPS (Tables 1 and 2).
package perf

import (
	"fmt"

	"condor/internal/dataflow"
	"condor/internal/nn"
	"condor/internal/sim"
)

// Stage is one pipeline stage: a PE with its per-image service time.
type Stage struct {
	Name   string
	Cycles int64
}

// Stages maps every PE of the spec to a pipeline stage. Stage times come
// from the lane-aware cycle model: on the packed int8 fabric every FIFO word
// carries Spec.Lanes() activation elements, so the stream-bound terms (and
// with them the modeled cycles) shrink by the lane factor.
func Stages(spec *dataflow.Spec) []Stage {
	out := make([]Stage, len(spec.PEs))
	for i, pe := range spec.PEs {
		out[i] = Stage{Name: pe.ID, Cycles: dataflow.PECyclesPerImageAt(pe, spec.Lanes())}
	}
	return out
}

// FeatureStages returns only the features-extraction PEs' stages — the
// sub-pipeline whose throughput Table 2 of the paper reports.
func FeatureStages(spec *dataflow.Spec) []Stage {
	var out []Stage
	for _, pe := range spec.PEs {
		if pe.IsFeatureExtraction() {
			out = append(out, Stage{Name: pe.ID, Cycles: dataflow.PECyclesPerImageAt(pe, spec.Lanes())})
		}
	}
	return out
}

// Bottleneck returns the largest stage time: the steady-state initiation
// interval of the pipeline.
func Bottleneck(stages []Stage) int64 {
	var max int64
	for _, s := range stages {
		if s.Cycles > max {
			max = s.Cycles
		}
	}
	return max
}

// SimulateBatch runs the image-granular pipeline on the discrete-event
// kernel: every stage is a single-occupancy server, images enter
// back-to-back, and image b starts stage s once it has left stage s-1 and
// stage s is free. It returns the cycle at which the last image leaves the
// last stage.
func SimulateBatch(stages []Stage, batch int) int64 {
	if batch <= 0 || len(stages) == 0 {
		return 0
	}
	eng := sim.New()
	servers := make([]*sim.Server, len(stages))
	for i := range stages {
		servers[i] = sim.NewServer(eng)
	}
	var finish int64
	// advance moves an image into stage s; at the last stage it records the
	// completion time.
	var advance func(img, s int)
	advance = func(img, s int) {
		servers[s].Submit(stages[s].Cycles, func() {
			if s+1 < len(stages) {
				advance(img, s+1)
			} else {
				finish = eng.Now()
			}
		})
	}
	for img := 0; img < batch; img++ {
		advance(img, 0)
	}
	eng.Run()
	return finish
}

// BatchCyclesClosedForm computes the same quantity via the classic
// heterogeneous-pipeline recurrence
//
//	t[b][s] = max(t[b-1][s], t[b][s-1]) + T[s]
//
// used to cross-check the discrete-event simulation.
func BatchCyclesClosedForm(stages []Stage, batch int) int64 {
	if batch <= 0 || len(stages) == 0 {
		return 0
	}
	prev := make([]int64, len(stages)) // t[b-1][s]
	for b := 0; b < batch; b++ {
		var left int64 // t[b][s-1]
		for s := range stages {
			start := left
			if prev[s] > start {
				start = prev[s]
			}
			left = start + stages[s].Cycles
			prev[s] = left
		}
	}
	return prev[len(stages)-1]
}

// BatchPoint is one sample of the Figure 5 curve.
type BatchPoint struct {
	Batch          int
	TotalCycles    int64
	MeanMsPerImage float64
}

// BatchCurve evaluates the mean processing time per image for each batch
// size at the given clock — the series of the paper's Figure 5.
func BatchCurve(stages []Stage, freqMHz float64, batches []int) ([]BatchPoint, error) {
	if freqMHz <= 0 {
		return nil, fmt.Errorf("perf: non-positive frequency %v", freqMHz)
	}
	out := make([]BatchPoint, 0, len(batches))
	for _, b := range batches {
		if b <= 0 {
			return nil, fmt.Errorf("perf: non-positive batch size %d", b)
		}
		total := SimulateBatch(stages, b)
		out = append(out, BatchPoint{
			Batch:          b,
			TotalCycles:    total,
			MeanMsPerImage: CyclesToMs(total, freqMHz) / float64(b),
		})
	}
	return out, nil
}

// CyclesToMs converts a cycle count at freqMHz to milliseconds.
func CyclesToMs(cycles int64, freqMHz float64) float64 {
	return float64(cycles) / (freqMHz * 1e3)
}

// SteadyStateGFLOPS returns the pipeline's sustained throughput: at steady
// state one image completes every bottleneck interval, so
//
//	GFLOPS = FLOPs/image × freq / bottleneck / 1e9.
func SteadyStateGFLOPS(flopsPerImage, bottleneckCycles int64, freqMHz float64) float64 {
	if bottleneckCycles <= 0 {
		return 0
	}
	imagesPerSecond := freqMHz * 1e6 / float64(bottleneckCycles)
	return float64(flopsPerImage) * imagesPerSecond / 1e9
}

// Latency returns the single-image latency (the pipeline fill time): the
// sum of all stage times.
func Latency(stages []Stage) int64 {
	var sum int64
	for _, s := range stages {
		sum += s.Cycles
	}
	return sum
}

// ConvAlgoRow compares the modeled per-image cycles of one conv layer under
// every applicable algorithm — the evidence the DSE's per-layer algorithm
// moves act on, and the table the experiments report.
type ConvAlgoRow struct {
	PE       string
	Layer    string
	Selected dataflow.ConvAlgo

	// Cycles under each algorithm, at the layer's PE parallelism and the
	// spec's lane packing. WinogradCycles is 0 when the layer does not
	// qualify for F(2,3).
	DirectCycles   int64
	GEMMCycles     int64
	WinogradCycles int64
}

// ConvAlgoTable evaluates every conv layer of the spec under each
// algorithm (Winograd only where it qualifies). The spec is not modified:
// each row re-evaluates a copy of the layer with its ConvAlgo overridden.
func ConvAlgoTable(spec *dataflow.Spec) []ConvAlgoRow {
	var out []ConvAlgoRow
	lanes := spec.Lanes()
	for _, pe := range spec.PEs {
		for _, l := range pe.Layers {
			if l.Kind != nn.Conv {
				continue
			}
			row := ConvAlgoRow{PE: pe.ID, Layer: l.Name, Selected: l.Algo()}
			trial := l
			trial.ConvAlgo = dataflow.AlgoDirect
			row.DirectCycles = dataflow.LayerCyclesAt(&trial, pe.Par, lanes)
			trial.ConvAlgo = dataflow.AlgoGEMM
			row.GEMMCycles = dataflow.LayerCyclesAt(&trial, pe.Par, lanes)
			if dataflow.WinogradOK(l.Kernel, l.Stride, l.OutShape) {
				trial.ConvAlgo = dataflow.AlgoWinograd
				row.WinogradCycles = dataflow.LayerCyclesAt(&trial, pe.Par, lanes)
			}
			out = append(out, row)
		}
	}
	return out
}
