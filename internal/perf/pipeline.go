package perf

// Pipelined steady-state bounds for the continuous-streaming fabric: a
// resident session streams images back-to-back, so a batch of b images
// costs one pipeline fill (the single-image latency L) plus b-1 initiation
// intervals (the bottleneck stage II) — the classic streaming-architecture
// bound fpgaConvNet-style toolflows design to. AmortizedSpeedup is that
// bound normalized to image-at-a-time execution (b·L), the quantity the
// utilization gate compares measured throughput against.

// SteadyStateBatchCycles returns the pipelined cost of b back-to-back
// images: L + (b-1)·II. It equals BatchCyclesClosedForm exactly when one
// stage dominates every other transition, and lower-bounds it in general
// (the recurrence may add skew when the bottleneck is interior).
func SteadyStateBatchCycles(stages []Stage, batch int) int64 {
	if batch <= 0 || len(stages) == 0 {
		return 0
	}
	return Latency(stages) + int64(batch-1)*Bottleneck(stages)
}

// AmortizedSpeedup is the modeled device speedup of streaming a batch of b
// images through the resident pipeline over running them image-at-a-time
// with a full drain in between: b·L / (L + (b-1)·II). It tends to L/II as b
// grows — the stage count's worth of concurrency, discounted by how
// unbalanced the stages are.
func AmortizedSpeedup(stages []Stage, batch int) float64 {
	ss := SteadyStateBatchCycles(stages, batch)
	if ss <= 0 {
		return 1
	}
	return float64(batch) * float64(Latency(stages)) / float64(ss)
}

// HostSteadyStateSpeedup is AmortizedSpeedup with the host simulator's
// compute budget folded in: the fabric's stage concurrency is realized by
// goroutines, so on a host with procs processors a batch can never finish
// faster than the serial work divided by procs — b·L/procs cycles' worth of
// wall time. The modeled speedup is therefore
//
//	b·L / max(L + (b-1)·II, ⌈b·L/procs⌉)
//
// On procs=1 this is exactly 1 (no pipelining is realizable), and with
// procs ≥ the stage count it reduces to the device bound. The benchmark
// harness records this value next to the measured batch throughput, and the
// CI utilization gate tracks the measured/modeled ratio.
func HostSteadyStateSpeedup(stages []Stage, batch, procs int) float64 {
	if batch <= 0 || len(stages) == 0 {
		return 1
	}
	if procs < 1 {
		procs = 1
	}
	work := float64(batch) * float64(Latency(stages))
	bound := float64(SteadyStateBatchCycles(stages, batch))
	if hostBound := work / float64(procs); hostBound > bound {
		bound = hostBound
	}
	if bound <= 0 {
		return 1
	}
	return work / bound
}
