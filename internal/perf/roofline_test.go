package perf

import (
	"testing"

	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/dataflow"
)

func rooflineSpec(t *testing.T, weightsOnChip bool) *dataflow.Spec {
	t.Helper()
	ir := &condorir.Network{
		Name: "roofline", Board: "aws-f1-vu9p", FrequencyMHz: 200,
		Input: condorir.InputShape{Channels: 3, Height: 32, Width: 32},
		Layers: []condorir.Layer{
			{Name: "conv1", Type: "Convolution", KernelSize: 3, Stride: 1, NumOutput: 16, Bias: true, PEGroup: -1},
			{Name: "fc1", Type: "InnerProduct", NumOutput: 10, Bias: true, PEGroup: -1},
		},
	}
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range spec.PEs {
		pe.WeightsOnChip = weightsOnChip
		pe.PartialsOnChip = true
	}
	return spec
}

func TestRooflineComputeBound(t *testing.T) {
	spec := rooflineSpec(t, true)
	b, err := board.Lookup("aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	// Few MAC lanes, weights on-chip: high operational intensity, the
	// compute roof binds.
	r := AnalyzeRoofline(spec, b, 10, 50_000_000, 200)
	if !r.ComputeBound {
		t.Fatalf("expected compute-bound: %+v", r)
	}
	if r.AttainableGFLOPS != r.PeakGFLOPS {
		t.Fatalf("attainable %v should equal peak %v", r.AttainableGFLOPS, r.PeakGFLOPS)
	}
	// Peak = 2 * 10 lanes * 200 MHz = 4 GFLOPS.
	if r.PeakGFLOPS != 4 {
		t.Fatalf("peak = %v", r.PeakGFLOPS)
	}
}

func TestRooflineBandwidthBound(t *testing.T) {
	spec := rooflineSpec(t, false) // stream all weights every image
	b, err := board.Lookup("aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	// Huge MAC array with tiny per-image work: bandwidth roof binds.
	r := AnalyzeRoofline(spec, b, 100000, 1_000, 200)
	if r.ComputeBound {
		t.Fatalf("expected bandwidth-bound: %+v", r)
	}
	if r.AttainableGFLOPS >= r.PeakGFLOPS {
		t.Fatalf("attainable %v should be under peak %v", r.AttainableGFLOPS, r.PeakGFLOPS)
	}
}

func TestRooflineIntensityGrowsWithOnChipWeights(t *testing.T) {
	b, err := board.Lookup("aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	streamed := AnalyzeRoofline(rooflineSpec(t, false), b, 100, 1_000_000, 200)
	cached := AnalyzeRoofline(rooflineSpec(t, true), b, 100, 1_000_000, 200)
	if cached.OperationalIntensity <= streamed.OperationalIntensity {
		t.Fatalf("on-chip weights should raise intensity: %v vs %v",
			cached.OperationalIntensity, streamed.OperationalIntensity)
	}
}

func TestBandwidthBoundFlag(t *testing.T) {
	r := Roofline{ComputeBound: false, AttainableGFLOPS: 10, SustainedGFLOPS: 20}
	if !r.BandwidthBound() {
		t.Fatal("sustained above the bandwidth roof must flag")
	}
	r.SustainedGFLOPS = 5
	if r.BandwidthBound() {
		t.Fatal("sustained under the roof must not flag")
	}
	r.ComputeBound = true
	r.SustainedGFLOPS = 20
	if r.BandwidthBound() {
		t.Fatal("compute-bound configurations are never bandwidth-bound")
	}
}
