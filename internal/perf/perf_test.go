package perf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"condor/internal/condorir"
	"condor/internal/dataflow"
)

func TestSimulateBatchSingleStage(t *testing.T) {
	stages := []Stage{{Name: "s", Cycles: 100}}
	if got := SimulateBatch(stages, 1); got != 100 {
		t.Fatalf("1 image = %d", got)
	}
	if got := SimulateBatch(stages, 5); got != 500 {
		t.Fatalf("5 images = %d", got)
	}
}

func TestSimulateBatchPipelineOverlap(t *testing.T) {
	stages := []Stage{{Cycles: 10}, {Cycles: 10}, {Cycles: 10}}
	// Fill 30 + (n-1)*10 steady state.
	if got := SimulateBatch(stages, 1); got != 30 {
		t.Fatalf("fill = %d", got)
	}
	if got := SimulateBatch(stages, 4); got != 60 {
		t.Fatalf("batch 4 = %d, want 60", got)
	}
}

func TestSimulateBatchBottleneckDominates(t *testing.T) {
	stages := []Stage{{Cycles: 5}, {Cycles: 50}, {Cycles: 5}}
	// total = fill(60) + (n-1)*bottleneck(50)
	if got := SimulateBatch(stages, 10); got != 60+9*50 {
		t.Fatalf("batch 10 = %d", got)
	}
}

func TestSimulateBatchEdgeCases(t *testing.T) {
	if SimulateBatch(nil, 5) != 0 || SimulateBatch([]Stage{{Cycles: 5}}, 0) != 0 {
		t.Fatal("edge cases should return 0")
	}
}

// Property: the discrete-event simulation agrees exactly with the pipeline
// recurrence for arbitrary stage times and batch sizes.
func TestSimulationMatchesClosedForm(t *testing.T) {
	f := func(seed int64, nRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 1
		b := int(bRaw%12) + 1
		stages := make([]Stage, n)
		for i := range stages {
			stages[i] = Stage{Cycles: int64(rng.Intn(100) + 1)}
		}
		return SimulateBatch(stages, b) == BatchCyclesClosedForm(stages, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCurveDecreasingAndConverging(t *testing.T) {
	stages := []Stage{{Cycles: 20}, {Cycles: 40}, {Cycles: 30}, {Cycles: 40}}
	batches := []int{1, 2, 4, 8, 16, 32, 64}
	curve, err := BatchCurve(stages, 100, batches)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].MeanMsPerImage > curve[i-1].MeanMsPerImage {
			t.Fatalf("mean time must be non-increasing: %+v", curve)
		}
	}
	// Converges to the bottleneck interval.
	limit := CyclesToMs(Bottleneck(stages), 100)
	last := curve[len(curve)-1].MeanMsPerImage
	if last < limit || last > limit*1.2 {
		t.Fatalf("converged mean %.4f vs bottleneck %.4f", last, limit)
	}
}

func TestBatchCurveErrors(t *testing.T) {
	if _, err := BatchCurve(nil, 0, []int{1}); err == nil {
		t.Fatal("expected frequency error")
	}
	if _, err := BatchCurve(nil, 100, []int{0}); err == nil {
		t.Fatal("expected batch error")
	}
}

func TestSteadyStateGFLOPS(t *testing.T) {
	// 1 MFLOP per image, 1000 cycles bottleneck, 100 MHz → 1e5 img/s → 100 GFLOPS.
	got := SteadyStateGFLOPS(1_000_000, 1000, 100)
	if got < 99.9 || got > 100.1 {
		t.Fatalf("GFLOPS = %v", got)
	}
	if SteadyStateGFLOPS(1, 0, 100) != 0 {
		t.Fatal("zero bottleneck should yield 0")
	}
}

func TestCyclesToMs(t *testing.T) {
	// 100k cycles at 100 MHz = 1 ms.
	if got := CyclesToMs(100000, 100); got != 1 {
		t.Fatalf("CyclesToMs = %v", got)
	}
}

func specForPerf(t *testing.T) *dataflow.Spec {
	t.Helper()
	ir := &condorir.Network{
		Name: "perf", Board: "aws-f1-vu9p", FrequencyMHz: 100,
		Input: condorir.InputShape{Channels: 1, Height: 16, Width: 16},
		Layers: []condorir.Layer{
			{Name: "conv1", Type: "Convolution", KernelSize: 5, NumOutput: 8, Bias: true, PEGroup: -1},
			{Name: "pool1", Type: "AvgPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
			{Name: "fc1", Type: "InnerProduct", NumOutput: 10, Bias: true, PEGroup: -1},
		},
	}
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestStagesFromSpec(t *testing.T) {
	spec := specForPerf(t)
	stages := Stages(spec)
	if len(stages) != 3 {
		t.Fatalf("stage count %d", len(stages))
	}
	for i, pe := range spec.PEs {
		if stages[i].Cycles != dataflow.PECyclesPerImage(pe) {
			t.Fatalf("stage %d cycles mismatch", i)
		}
	}
}

func TestFeatureStagesExcludeClassifier(t *testing.T) {
	spec := specForPerf(t)
	fs := FeatureStages(spec)
	if len(fs) != 2 {
		t.Fatalf("feature stages = %d, want 2", len(fs))
	}
	for _, s := range fs {
		if s.Name == "pe2" {
			t.Fatal("classifier PE included in feature stages")
		}
	}
}

func TestLatencyIsSumOfStages(t *testing.T) {
	stages := []Stage{{Cycles: 5}, {Cycles: 7}}
	if Latency(stages) != 12 {
		t.Fatal("latency wrong")
	}
	if got := SimulateBatch(stages, 1); got != 12 {
		t.Fatalf("single-image simulation %d != latency", got)
	}
}

// The Figure 5 claim: convergence is reached approximately when the batch
// size exceeds the number of pipeline stages.
func TestConvergenceKneeNearStageCount(t *testing.T) {
	stages := make([]Stage, 8)
	for i := range stages {
		stages[i] = Stage{Cycles: 100}
	}
	curve, err := BatchCurve(stages, 100, []int{1, 8, 128})
	if err != nil {
		t.Fatal(err)
	}
	limit := CyclesToMs(100, 100)
	atKnee := curve[1].MeanMsPerImage
	converged := curve[2].MeanMsPerImage
	// At batch = #stages the mean is within 2x of the limit; by 8x it is
	// within 6%.
	if atKnee > 2*limit {
		t.Fatalf("knee point %.4f too far from limit %.4f", atKnee, limit)
	}
	if converged > 1.1*limit {
		t.Fatalf("converged %.4f not near limit %.4f", converged, limit)
	}
}
