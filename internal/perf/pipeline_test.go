package perf

import (
	"math"
	"testing"
)

func TestSteadyStateBatchCycles(t *testing.T) {
	stages := []Stage{{Cycles: 5}, {Cycles: 50}, {Cycles: 5}}
	// L = 60, II = 50: batch b costs 60 + (b-1)*50.
	if got := SteadyStateBatchCycles(stages, 1); got != 60 {
		t.Fatalf("batch 1 = %d, want 60", got)
	}
	if got := SteadyStateBatchCycles(stages, 8); got != 60+7*50 {
		t.Fatalf("batch 8 = %d, want %d", got, 60+7*50)
	}
	if got := SteadyStateBatchCycles(stages, 0); got != 0 {
		t.Fatalf("batch 0 = %d, want 0", got)
	}
	if got := SteadyStateBatchCycles(nil, 4); got != 0 {
		t.Fatalf("no stages = %d, want 0", got)
	}
}

// The steady-state bound must agree with the discrete-event simulation when
// the bottleneck is the first stage (no interior skew) and lower-bound it in
// general.
func TestSteadyStateBoundVsSimulation(t *testing.T) {
	front := []Stage{{Cycles: 50}, {Cycles: 5}, {Cycles: 5}}
	for _, b := range []int{1, 2, 8, 33} {
		if bound, sim := SteadyStateBatchCycles(front, b), SimulateBatch(front, b); bound != sim {
			t.Fatalf("front-bottleneck batch %d: bound %d != sim %d", b, bound, sim)
		}
	}
	interior := []Stage{{Cycles: 7}, {Cycles: 50}, {Cycles: 13}, {Cycles: 29}}
	for _, b := range []int{1, 2, 8, 33} {
		if bound, sim := SteadyStateBatchCycles(interior, b), SimulateBatch(interior, b); bound > sim {
			t.Fatalf("batch %d: bound %d exceeds simulation %d", b, bound, sim)
		}
	}
}

func TestAmortizedSpeedup(t *testing.T) {
	stages := []Stage{{Cycles: 10}, {Cycles: 10}, {Cycles: 10}}
	// Perfectly balanced 3-stage pipeline: speedup(b) = 3b/(b+2) → 3.
	if got := AmortizedSpeedup(stages, 1); got != 1 {
		t.Fatalf("batch 1 speedup = %v, want 1", got)
	}
	if got, want := AmortizedSpeedup(stages, 4), 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("batch 4 speedup = %v, want %v", got, want)
	}
	if got := AmortizedSpeedup(stages, 1<<20); got >= 3 || got < 2.99 {
		t.Fatalf("asymptotic speedup = %v, want just under 3", got)
	}
}

func TestHostSteadyStateSpeedup(t *testing.T) {
	stages := []Stage{{Cycles: 10}, {Cycles: 10}, {Cycles: 10}}
	// One processor realizes no pipelining: the model must say exactly 1,
	// whatever the batch.
	for _, b := range []int{1, 2, 8, 64} {
		if got := HostSteadyStateSpeedup(stages, b, 1); got != 1 {
			t.Fatalf("procs=1 batch %d: %v, want 1", b, got)
		}
	}
	// Enough processors for every stage: the device bound applies.
	if got, want := HostSteadyStateSpeedup(stages, 4, 8), AmortizedSpeedup(stages, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("procs=8: %v, want device bound %v", got, want)
	}
	// Two processors cap the speedup at 2 even when the device bound is ~3.
	if got := HostSteadyStateSpeedup(stages, 1<<20, 2); got > 2 || got < 1.99 {
		t.Fatalf("procs=2 asymptote: %v, want ~2", got)
	}
	// Degenerate inputs behave.
	if got := HostSteadyStateSpeedup(nil, 8, 4); got != 1 {
		t.Fatalf("no stages: %v, want 1", got)
	}
	if got := HostSteadyStateSpeedup(stages, 8, 0); got != 1 {
		t.Fatalf("procs=0 clamps to 1: %v", got)
	}
}
