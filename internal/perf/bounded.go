package perf

import "condor/internal/sim"

// SimulateBatchBounded models the pipeline with bounded inter-stage
// buffering: each stage boundary holds at most skid images, and a stage
// that finishes while the next boundary is full blocks (exactly the
// back-pressure of the fabric's blocking FIFO writes). skid → ∞ recovers
// SimulateBatch; skid = 0 degenerates to lock-step handoff. Used to study
// how inter-PE FIFO sizing affects the Figure 5 curves.
func SimulateBatchBounded(stages []Stage, batch, skid int) int64 {
	if batch <= 0 || len(stages) == 0 {
		return 0
	}
	if skid < 0 {
		skid = 0
	}
	eng := sim.New()
	n := len(stages)
	queue := make([]int, n)     // images waiting at each stage's input
	busy := make([]bool, n)     // stage is processing
	doneHeld := make([]bool, n) // finished image blocked on a full boundary
	remaining := batch
	var finishTime int64

	// capacity of a stage's input boundary (the image in service does not
	// occupy a buffer slot).
	capOf := func(int) int { return skid + 1 }

	var tryStart func(s int)
	var tryAdvance func(s int)

	// tryFeed pushes source images into stage 0's boundary while there is
	// room.
	tryFeed := func() {
		for remaining > 0 && queue[0] < capOf(0) {
			queue[0]++
			remaining--
			tryStart(0)
		}
	}

	tryStart = func(s int) {
		if busy[s] || doneHeld[s] || queue[s] == 0 {
			return
		}
		queue[s]--
		busy[s] = true
		if s == 0 {
			tryFeed()
		} else {
			// Space opened at boundary s: a blocked upstream stage can move.
			tryAdvance(s - 1)
		}
		eng.Schedule(stages[s].Cycles, func() {
			busy[s] = false
			doneHeld[s] = true
			tryAdvance(s)
		})
	}

	tryAdvance = func(s int) {
		if !doneHeld[s] {
			return
		}
		if s == n-1 {
			doneHeld[s] = false
			finishTime = eng.Now()
			tryStart(s)
			return
		}
		if queue[s+1] >= capOf(s+1) {
			return // blocked: retried when the boundary drains
		}
		doneHeld[s] = false
		queue[s+1]++
		tryStart(s + 1)
		tryStart(s)
	}

	tryFeed()
	eng.Run()
	return finishTime
}
