package aws

import (
	"bytes"
	"fmt"
	"sync"

	"condor/internal/condorir"
	"condor/internal/sdaccel"
)

// F1 instance types and their FPGA slot counts.
var f1SlotCounts = map[string]int{
	"f1.2xlarge":  1,
	"f1.4xlarge":  2,
	"f1.16xlarge": 8,
}

// Instance is one running F1 instance with its FPGA slots.
type Instance struct {
	InstanceID   string `json:"InstanceId"`
	InstanceType string `json:"InstanceType"`
	State        string `json:"State"`
	Slots        int    `json:"Slots"`

	devices []*sdaccel.Device
	loaded  []string // agfi id per slot, "" when cleared

	// slotMu serialises the load-weights → run sequence per slot, so
	// concurrent ExecuteInference calls from serving-scheduler goroutines
	// are safe: each targets one slot, different slots run in parallel.
	slotMu []sync.Mutex
}

// SlotStatus reports what an FPGA slot is running.
type SlotStatus struct {
	Slot   int    `json:"Slot"`
	AgfiID string `json:"AgfiId"`
	Status string `json:"Status"` // loaded | cleared
}

// ec2Service manages instances and slot operations.
type ec2Service struct {
	mu        sync.Mutex
	afi       *afiService
	store     *objectStore
	instances map[string]*Instance
	next      int
}

func newEC2Service(afi *afiService, store *objectStore) *ec2Service {
	return &ec2Service{afi: afi, store: store, instances: make(map[string]*Instance)}
}

// runInstance launches an F1 instance of the given type.
func (e *ec2Service) runInstance(instanceType string) (*Instance, error) {
	slots, ok := f1SlotCounts[instanceType]
	if !ok {
		return nil, &apiError{Code: "InvalidInstanceType", Status: 400,
			Message: fmt.Sprintf("%q is not an F1 instance type", instanceType)}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.next++
	inst := &Instance{
		InstanceID:   fmt.Sprintf("i-%017d", e.next),
		InstanceType: instanceType,
		State:        "running",
		Slots:        slots,
		loaded:       make([]string, slots),
		slotMu:       make([]sync.Mutex, slots),
	}
	for s := 0; s < slots; s++ {
		dev, err := sdaccel.NewDevice(fmt.Sprintf("%s/slot%d", inst.InstanceID, s), "aws-f1-vu9p")
		if err != nil {
			return nil, err
		}
		inst.devices = append(inst.devices, dev)
	}
	e.instances[inst.InstanceID] = inst
	return instSnapshot(inst), nil
}

func (e *ec2Service) describeInstances() []*Instance {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Instance, 0, len(e.instances))
	for _, inst := range e.instances {
		out = append(out, instSnapshot(inst))
	}
	return out
}

func (e *ec2Service) terminate(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	inst, ok := e.instances[id]
	if !ok {
		return &apiError{Code: "InvalidInstanceID.NotFound", Status: 404, Message: id}
	}
	inst.State = "terminated"
	return nil
}

func (e *ec2Service) slot(id string, slot int) (*Instance, *sdaccel.Device, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	inst, ok := e.instances[id]
	if !ok {
		return nil, nil, &apiError{Code: "InvalidInstanceID.NotFound", Status: 404, Message: id}
	}
	if inst.State != "running" {
		return nil, nil, &apiError{Code: "IncorrectInstanceState", Status: 409, Message: inst.State}
	}
	if slot < 0 || slot >= inst.Slots {
		return nil, nil, &apiError{Code: "InvalidSlot", Status: 400,
			Message: fmt.Sprintf("slot %d out of range [0,%d)", slot, inst.Slots)}
	}
	return inst, inst.devices[slot], nil
}

// loadImage programs an FPGA slot with an available AFI
// (fpga-load-local-image).
func (e *ec2Service) loadImage(instanceID string, slot int, agfi string) error {
	xclbin, err := e.afi.imageForGlobal(agfi)
	if err != nil {
		return err
	}
	inst, dev, err := e.slot(instanceID, slot)
	if err != nil {
		return err
	}
	inst.slotMu[slot].Lock()
	defer inst.slotMu[slot].Unlock()
	if err := dev.ProgramFromAFI(xclbin); err != nil {
		return &apiError{Code: "FpgaImageLoadFailure", Status: 500, Message: err.Error()}
	}
	e.mu.Lock()
	inst.loaded[slot] = agfi
	e.mu.Unlock()
	return nil
}

// describeSlot reports a slot's loaded image (fpga-describe-local-image).
func (e *ec2Service) describeSlot(instanceID string, slot int) (*SlotStatus, error) {
	inst, _, err := e.slot(instanceID, slot)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := &SlotStatus{Slot: slot, AgfiID: inst.loaded[slot], Status: "cleared"}
	if st.AgfiID != "" {
		st.Status = "loaded"
	}
	return st, nil
}

// InferenceResult is the outcome of running the host application against a
// programmed slot.
type InferenceResult struct {
	Images   int     `json:"Images"`
	KernelMs float64 `json:"KernelMs"`
}

// executeInference stands in for the user's host program running on the F1
// instance (the default host code Condor generates): it pulls the weights
// file and the input batch from S3, runs the batch on the slot's fabric,
// and writes the raw float32 outputs back to S3.
func (e *ec2Service) executeInference(instanceID string, slot int,
	weightsBucket, weightsKey, inputBucket, inputKey, outputBucket, outputKey string, batch int) (*InferenceResult, error) {
	inst, dev, err := e.slot(instanceID, slot)
	if err != nil {
		return nil, err
	}
	// The whole host-program run — weight load through kernel execution —
	// holds the slot, as the real per-slot host process would.
	inst.slotMu[slot].Lock()
	defer inst.slotMu[slot].Unlock()
	if !dev.Programmed() {
		return nil, &apiError{Code: "FpgaNotProgrammed", Status: 409,
			Message: fmt.Sprintf("slot %d of %s has no image loaded", slot, instanceID)}
	}
	wBytes, err := e.store.get(weightsBucket, weightsKey)
	if err != nil {
		return nil, err
	}
	ws, err := condorir.ReadWeights(bytes.NewReader(wBytes))
	if err != nil {
		return nil, &apiError{Code: "InvalidWeightsFile", Status: 400, Message: err.Error()}
	}
	if err := dev.LoadWeights(ws); err != nil {
		return nil, &apiError{Code: "WeightLoadFailure", Status: 400, Message: err.Error()}
	}
	inBytes, err := e.store.get(inputBucket, inputKey)
	if err != nil {
		return nil, err
	}
	input, err := decodeFloats(inBytes)
	if err != nil {
		return nil, &apiError{Code: "InvalidInput", Status: 400, Message: err.Error()}
	}

	ctx := sdaccel.CreateContext(dev)
	spec, err := dev.Spec()
	if err != nil {
		return nil, &apiError{Code: "FpgaNotProgrammed", Status: 409, Message: err.Error()}
	}
	inVol := spec.Input.Volume()
	outVol := spec.OutputShape().Volume()
	if batch <= 0 || batch*inVol != len(input) {
		return nil, &apiError{Code: "InvalidInput", Status: 400,
			Message: fmt.Sprintf("input has %d words, batch %d needs %d", len(input), batch, batch*inVol)}
	}
	in := ctx.CreateBuffer(batch * inVol)
	out := ctx.CreateBuffer(batch * outVol)
	ctx.EnqueueWrite(in, input)
	ctx.EnqueueKernel(in, out, batch)
	results := make([]float32, batch*outVol)
	ctx.EnqueueRead(out, results)
	info, err := ctx.Finish()
	if err != nil {
		return nil, &apiError{Code: "KernelExecutionFailure", Status: 500, Message: err.Error()}
	}
	if err := e.store.put(outputBucket, outputKey, encodeFloats(results)); err != nil {
		return nil, err
	}
	return &InferenceResult{Images: batch, KernelMs: info.KernelMs}, nil
}

func instSnapshot(i *Instance) *Instance {
	cp := *i
	cp.devices = nil
	cp.slotMu = nil
	cp.loaded = append([]string(nil), i.loaded...)
	return &cp
}
