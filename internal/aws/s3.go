// Package aws is an in-process implementation of the three AWS services the
// Condor cloud flow depends on — an S3-like object store, the EC2 FPGA
// image (AFI) pipeline and F1 instances with FPGA slots — served over real
// HTTP, plus the client SDK the framework and the CLI use. The deployment
// path is exercised exactly as the paper describes: the design tarball is
// uploaded to a user S3 bucket, AFI generation runs asynchronously
// (pending → available), the returned global AFI id is loaded onto an F1
// slot, and inference runs against the slot.
package aws

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// objectStore is the S3 backend: buckets of named byte objects.
type objectStore struct {
	mu      sync.RWMutex
	buckets map[string]map[string][]byte
}

func newObjectStore() *objectStore {
	return &objectStore{buckets: make(map[string]map[string][]byte)}
}

func validBucketName(b string) bool {
	if len(b) < 3 || len(b) > 63 {
		return false
	}
	for _, r := range b {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '.') {
			return false
		}
	}
	return !strings.HasPrefix(b, "-") && !strings.HasSuffix(b, "-")
}

func (s *objectStore) createBucket(name string) error {
	if !validBucketName(name) {
		return &apiError{Code: "InvalidBucketName", Status: 400, Message: fmt.Sprintf("bucket name %q is invalid", name)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return &apiError{Code: "BucketAlreadyExists", Status: 409, Message: name}
	}
	s.buckets[name] = make(map[string][]byte)
	return nil
}

func (s *objectStore) put(bucket, key string, data []byte) error {
	if key == "" {
		return &apiError{Code: "InvalidKey", Status: 400, Message: "empty object key"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return &apiError{Code: "NoSuchBucket", Status: 404, Message: bucket}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b[key] = cp
	return nil
}

func (s *objectStore) get(bucket, key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, &apiError{Code: "NoSuchBucket", Status: 404, Message: bucket}
	}
	data, ok := b[key]
	if !ok {
		return nil, &apiError{Code: "NoSuchKey", Status: 404, Message: bucket + "/" + key}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

func (s *objectStore) delete(bucket, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return &apiError{Code: "NoSuchBucket", Status: 404, Message: bucket}
	}
	if _, ok := b[key]; !ok {
		return &apiError{Code: "NoSuchKey", Status: 404, Message: bucket + "/" + key}
	}
	delete(b, key)
	return nil
}

func (s *objectStore) list(bucket, prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, &apiError{Code: "NoSuchBucket", Status: 404, Message: bucket}
	}
	var keys []string
	for k := range b {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// apiError is the service error envelope; it maps onto HTTP status codes
// and the AWS-style {Code, Message} JSON body.
type apiError struct {
	Code    string `json:"Code"`
	Message string `json:"Message"`
	Status  int    `json:"-"`
}

func (e *apiError) Error() string { return e.Code + ": " + e.Message }
