package aws

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// DefaultLicense is the Xilinx tool licence token the FPGA Developer AMI
// provides. AFI creation requires it; running Condor outside the Developer
// AMI (no token) reproduces the paper's accessibility constraint.
const DefaultLicense = "fpga-developer-ami/1.5.0"

// Options configures the simulated cloud.
type Options struct {
	// AFIGenerationDelay is how long AFIs stay pending (default 30ms; the
	// real pipeline takes ~an hour).
	AFIGenerationDelay time.Duration
	// Licenses are the accepted licence tokens (default: DefaultLicense).
	Licenses []string
	// TransientErrorRate makes that fraction of requests fail with a 503
	// before reaching any service, modelling the sporadic throttling and
	// internal errors of the real cloud (0 disables). Clients are expected
	// to absorb these through their retry policy.
	TransientErrorRate float64
	// TransientErrorSeed seeds the fault-injection RNG so flaky-cloud tests
	// are reproducible (0 uses a fixed default seed).
	TransientErrorSeed int64
}

// Server is the in-process AWS endpoint: an S3-like store under /s3/ and
// the EC2/AFI JSON API under /api.
type Server struct {
	store *objectStore
	afi   *afiService
	ec2   *ec2Service

	licenses map[string]bool

	mu       sync.Mutex
	failN    int     // fault injection: fail the next N requests with 503
	failRate float64 // fault injection: fail this fraction of requests
	failRNG  *rand.Rand
}

// Quiesce blocks until every in-flight AFI generation worker has finished.
// Call it before discarding a server so background workers are not left
// mutating records after the owner moved on; tests use it to join the
// asynchronous pipeline deterministically.
func (s *Server) Quiesce() {
	s.afi.workers.Wait()
}

// NewServer builds a cloud endpoint.
func NewServer(opts Options) *Server {
	if opts.AFIGenerationDelay == 0 {
		opts.AFIGenerationDelay = 30 * time.Millisecond
	}
	if len(opts.Licenses) == 0 {
		opts.Licenses = []string{DefaultLicense}
	}
	store := newObjectStore()
	afi := newAFIService(store, opts.AFIGenerationDelay)
	seed := opts.TransientErrorSeed
	if seed == 0 {
		seed = 1
	}
	s := &Server{
		store:    store,
		afi:      afi,
		ec2:      newEC2Service(afi, store),
		licenses: make(map[string]bool),
		failRate: opts.TransientErrorRate,
		failRNG:  rand.New(rand.NewSource(seed)),
	}
	for _, l := range opts.Licenses {
		s.licenses[l] = true
	}
	return s
}

// FailNextN makes the next n requests fail with 503, for retry testing.
func (s *Server) FailNextN(n int) {
	s.mu.Lock()
	s.failN = n
	s.mu.Unlock()
}

// SetTransientErrorRate changes the injected transient-failure fraction at
// runtime (0 disables).
func (s *Server) SetTransientErrorRate(rate float64) {
	s.mu.Lock()
	s.failRate = rate
	s.mu.Unlock()
}

func (s *Server) injectFault(w http.ResponseWriter) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	fail := false
	switch {
	case s.failN > 0:
		s.failN--
		fail = true
	case s.failRate > 0:
		fail = s.failRNG.Float64() < s.failRate
	}
	if fail {
		http.Error(w, `{"Code":"ServiceUnavailable","Message":"injected fault"}`, http.StatusServiceUnavailable)
	}
	return fail
}

// ServeHTTP routes S3 and API traffic.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.injectFault(w) {
		return
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/s3/"):
		s.serveS3(w, r)
	case r.URL.Path == "/api":
		s.serveAPI(w, r)
	default:
		writeErr(w, &apiError{Code: "NotFound", Status: 404, Message: r.URL.Path})
	}
}

func (s *Server) serveS3(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/s3/")
	bucket, key, hasKey := strings.Cut(rest, "/")
	if bucket == "" {
		writeErr(w, &apiError{Code: "InvalidBucketName", Status: 400, Message: "missing bucket"})
		return
	}
	var err error
	switch {
	case !hasKey || key == "":
		switch r.Method {
		case http.MethodPut:
			err = s.store.createBucket(bucket)
			if err == nil {
				w.WriteHeader(http.StatusOK)
			}
		case http.MethodGet:
			var keys []string
			keys, err = s.store.list(bucket, r.URL.Query().Get("prefix"))
			if err == nil {
				writeJSON(w, keys)
			}
		default:
			err = &apiError{Code: "MethodNotAllowed", Status: 405, Message: r.Method}
		}
	default:
		switch r.Method {
		case http.MethodPut:
			var body []byte
			body, err = io.ReadAll(r.Body)
			if err == nil {
				err = s.store.put(bucket, key, body)
			}
			if err == nil {
				w.WriteHeader(http.StatusOK)
			}
		case http.MethodGet:
			var data []byte
			data, err = s.store.get(bucket, key)
			if err == nil {
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Write(data) //nolint:errcheck
			}
		case http.MethodDelete:
			err = s.store.delete(bucket, key)
			if err == nil {
				w.WriteHeader(http.StatusNoContent)
			}
		default:
			err = &apiError{Code: "MethodNotAllowed", Status: 405, Message: r.Method}
		}
	}
	if err != nil {
		writeErr(w, err)
	}
}

// apiRequest is the JSON envelope of the action API.
type apiRequest struct {
	Action string `json:"Action"`

	// CreateFpgaImage
	Name        string `json:"Name,omitempty"`
	Description string `json:"Description,omitempty"`
	InputBucket string `json:"InputBucket,omitempty"`
	InputKey    string `json:"InputKey,omitempty"`
	LogsBucket  string `json:"LogsBucket,omitempty"`

	// DescribeFpgaImages
	FpgaImageIDs []string `json:"FpgaImageIds,omitempty"`

	// RunInstances / instance ops
	InstanceType string `json:"InstanceType,omitempty"`
	InstanceID   string `json:"InstanceId,omitempty"`
	Slot         int    `json:"Slot,omitempty"`
	AgfiID       string `json:"AgfiId,omitempty"`

	// ExecuteInference
	WeightsBucket   string `json:"WeightsBucket,omitempty"`
	WeightsKey      string `json:"WeightsKey,omitempty"`
	InputDataBucket string `json:"InputDataBucket,omitempty"`
	InputDataKey    string `json:"InputDataKey,omitempty"`
	OutputBucket    string `json:"OutputBucket,omitempty"`
	OutputKey       string `json:"OutputKey,omitempty"`
	Batch           int    `json:"Batch,omitempty"`
}

// apiResponse is the JSON result envelope.
type apiResponse struct {
	AFI        *AFIRecord       `json:"Afi,omitempty"`
	AFIs       []*AFIRecord     `json:"Afis,omitempty"`
	Instance   *Instance        `json:"Instance,omitempty"`
	Instances  []*Instance      `json:"Instances,omitempty"`
	SlotStatus *SlotStatus      `json:"SlotStatus,omitempty"`
	Inference  *InferenceResult `json:"Inference,omitempty"`
}

func (s *Server) serveAPI(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, &apiError{Code: "MethodNotAllowed", Status: 405, Message: r.Method})
		return
	}
	var req apiRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, &apiError{Code: "MalformedRequest", Status: 400, Message: err.Error()})
		return
	}
	var resp apiResponse
	var err error
	switch req.Action {
	case "CreateFpgaImage":
		// The paper's constraint: AFI creation needs the Xilinx licences of
		// the FPGA Developer AMI.
		if !s.licenses[r.Header.Get("X-Condor-License")] {
			writeErr(w, &apiError{Code: "LicenseRequired", Status: 403,
				Message: "AFI creation requires the Xilinx tool licences provided by the FPGA Developer AMI"})
			return
		}
		resp.AFI, err = s.afi.create(req.InputBucket, req.InputKey, req.LogsBucket, req.Name, req.Description)
	case "DescribeFpgaImages":
		resp.AFIs, err = s.afi.describe(req.FpgaImageIDs)
	case "RunInstances":
		resp.Instance, err = s.ec2.runInstance(req.InstanceType)
	case "DescribeInstances":
		resp.Instances = s.ec2.describeInstances()
	case "TerminateInstances":
		err = s.ec2.terminate(req.InstanceID)
	case "LoadFpgaImage":
		err = s.ec2.loadImage(req.InstanceID, req.Slot, req.AgfiID)
	case "DescribeFpgaLocalImage":
		resp.SlotStatus, err = s.ec2.describeSlot(req.InstanceID, req.Slot)
	case "ExecuteInference":
		resp.Inference, err = s.ec2.executeInference(req.InstanceID, req.Slot,
			req.WeightsBucket, req.WeightsKey, req.InputDataBucket, req.InputDataKey,
			req.OutputBucket, req.OutputKey, req.Batch)
	default:
		err = &apiError{Code: "InvalidAction", Status: 400, Message: req.Action}
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeErr(w http.ResponseWriter, err error) {
	ae, ok := err.(*apiError)
	if !ok {
		ae = &apiError{Code: "InternalError", Status: 500, Message: err.Error()}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.Status)
	json.NewEncoder(w).Encode(ae) //nolint:errcheck
}
