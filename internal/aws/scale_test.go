package aws

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// fakeLauncher counts instance API calls without a cloud endpoint.
type fakeLauncher struct {
	next       int
	running    map[string]bool
	launches   int
	terminates int
	failNext   error
}

func newFakeLauncher() *fakeLauncher {
	return &fakeLauncher{running: map[string]bool{}}
}

func (l *fakeLauncher) RunInstance(instanceType string) (*Instance, error) {
	if l.failNext != nil {
		err := l.failNext
		l.failNext = nil
		return nil, err
	}
	slots, ok := f1SlotCounts[instanceType]
	if !ok {
		return nil, fmt.Errorf("bad type %q", instanceType)
	}
	l.next++
	l.launches++
	id := fmt.Sprintf("i-%05d", l.next)
	l.running[id] = true
	return &Instance{InstanceID: id, InstanceType: instanceType, State: "running", Slots: slots}, nil
}

func (l *fakeLauncher) TerminateInstance(id string) error {
	if !l.running[id] {
		return fmt.Errorf("unknown instance %s", id)
	}
	delete(l.running, id)
	l.terminates++
	return nil
}

func newTestFleetModel(t *testing.T, instanceType string, spinUp time.Duration) (*FleetModel, *fakeLauncher, *time.Time) {
	t.Helper()
	launcher := newFakeLauncher()
	clock := time.Unix(1700000000, 0)
	fm, err := NewFleetModel(FleetModelConfig{
		InstanceType: instanceType,
		SpinUp:       spinUp,
		Now:          func() time.Time { return clock },
	}, launcher)
	if err != nil {
		t.Fatalf("NewFleetModel: %v", err)
	}
	return fm, launcher, &clock
}

func TestFleetModelSpinUpLatency(t *testing.T) {
	fm, launcher, clock := newTestFleetModel(t, "f1.2xlarge", 30*time.Second)

	if err := fm.SetDesiredSlots(3); err != nil {
		t.Fatal(err)
	}
	if launcher.launches != 3 {
		t.Fatalf("launches = %d, want 3", launcher.launches)
	}
	// Fresh capacity is pending, not ready: the spin-up window models the
	// F1 boot + AFI load delay.
	if r, p := fm.ReadySlots(), fm.PendingSlots(); r != 0 || p != 3 {
		t.Fatalf("ready/pending right after launch = %d/%d, want 0/3", r, p)
	}
	*clock = clock.Add(30 * time.Second)
	if r, p := fm.ReadySlots(), fm.PendingSlots(); r != 3 || p != 0 {
		t.Fatalf("ready/pending after spin-up = %d/%d, want 3/0", r, p)
	}
	// Holding the desired count is idempotent.
	if err := fm.SetDesiredSlots(3); err != nil {
		t.Fatal(err)
	}
	if launcher.launches != 3 || launcher.terminates != 0 {
		t.Fatalf("idempotent hold changed the fleet: %d launches %d terminates",
			launcher.launches, launcher.terminates)
	}
}

func TestFleetModelScaleDownPrefersPending(t *testing.T) {
	fm, launcher, clock := newTestFleetModel(t, "f1.2xlarge", 30*time.Second)

	if err := fm.SetDesiredSlots(2); err != nil {
		t.Fatal(err)
	}
	*clock = clock.Add(time.Minute) // both warm
	if err := fm.SetDesiredSlots(3); err != nil {
		t.Fatal(err)
	}
	if r, p := fm.ReadySlots(), fm.PendingSlots(); r != 2 || p != 1 {
		t.Fatalf("ready/pending = %d/%d, want 2/1", r, p)
	}

	// Scaling back down must cancel the pending instance, keeping the warm
	// capacity the fleet already waited for.
	if err := fm.SetDesiredSlots(2); err != nil {
		t.Fatal(err)
	}
	if r, p := fm.ReadySlots(), fm.PendingSlots(); r != 2 || p != 0 {
		t.Fatalf("ready/pending after scale-down = %d/%d, want 2/0", r, p)
	}
	if launcher.terminates != 1 {
		t.Fatalf("terminates = %d, want 1", launcher.terminates)
	}

	if err := fm.SetDesiredSlots(0); err != nil {
		t.Fatal(err)
	}
	if len(launcher.running) != 0 {
		t.Fatalf("%d instances still running after scale to zero", len(launcher.running))
	}
}

func TestFleetModelSlotGranularity(t *testing.T) {
	// f1.4xlarge carries 2 slots: 3 desired slots need 2 instances, and the
	// fleet must not shed an instance while that would undershoot.
	fm, launcher, _ := newTestFleetModel(t, "f1.4xlarge", time.Second)
	if err := fm.SetDesiredSlots(3); err != nil {
		t.Fatal(err)
	}
	if launcher.launches != 2 {
		t.Fatalf("launches = %d, want 2 (2 slots each)", launcher.launches)
	}
	if err := fm.SetDesiredSlots(3); err != nil {
		t.Fatal(err)
	}
	if launcher.terminates != 0 {
		t.Fatal("holding 3 slots on 2-slot instances shed capacity")
	}
	if err := fm.SetDesiredSlots(2); err != nil {
		t.Fatal(err)
	}
	if launcher.terminates != 1 {
		t.Fatalf("terminates = %d, want 1 after dropping to 2 slots", launcher.terminates)
	}
}

func TestFleetModelCostAccrual(t *testing.T) {
	fm, _, clock := newTestFleetModel(t, "f1.2xlarge", time.Second)
	if err := fm.SetDesiredSlots(2); err != nil {
		t.Fatal(err)
	}
	*clock = clock.Add(time.Hour)
	// Two f1.2xlarge at $1.65/h for one hour.
	if got := fm.CostUSD(); math.Abs(got-3.30) > 1e-9 {
		t.Fatalf("cost after 1h = %v, want 3.30", got)
	}
	// Terminated capacity stops billing but keeps its accumulated spend.
	if err := fm.SetDesiredSlots(0); err != nil {
		t.Fatal(err)
	}
	*clock = clock.Add(time.Hour)
	if got := fm.CostUSD(); math.Abs(got-3.30) > 1e-9 {
		t.Fatalf("cost after scale-to-zero = %v, want 3.30 (no further accrual)", got)
	}
}

func TestFleetModelLauncherErrorKeepsPartialProgress(t *testing.T) {
	fm, launcher, _ := newTestFleetModel(t, "f1.2xlarge", time.Second)
	if err := fm.SetDesiredSlots(1); err != nil {
		t.Fatal(err)
	}
	launcher.failNext = fmt.Errorf("InsufficientInstanceCapacity")
	if err := fm.SetDesiredSlots(3); err == nil {
		t.Fatal("expected launcher error to surface")
	}
	// The first instance is retained; a later retry tops the fleet up.
	if len(launcher.running) != 1 {
		t.Fatalf("running = %d after failed scale-up, want 1", len(launcher.running))
	}
	if err := fm.SetDesiredSlots(3); err != nil {
		t.Fatal(err)
	}
	if len(launcher.running) != 3 {
		t.Fatalf("running = %d after retry, want 3", len(launcher.running))
	}
}

func TestSlotAndCostTables(t *testing.T) {
	if n, ok := SlotsForInstanceType("f1.16xlarge"); !ok || n != 8 {
		t.Errorf("SlotsForInstanceType(f1.16xlarge) = %d,%v", n, ok)
	}
	if _, ok := SlotsForInstanceType("m5.large"); ok {
		t.Error("m5.large accepted as F1 type")
	}
	if c, ok := HourlyCostForInstanceType("f1.2xlarge"); !ok || c != 1.65 {
		t.Errorf("HourlyCostForInstanceType(f1.2xlarge) = %v,%v", c, ok)
	}
	if _, err := NewFleetModel(FleetModelConfig{InstanceType: "m5.large"}, newFakeLauncher()); err == nil {
		t.Error("NewFleetModel accepted a non-F1 type")
	}
}
