package aws

import (
	"encoding/binary"
	"fmt"
	"math"
)

// encodeFloats serialises a float32 slice as little-endian raw bytes — the
// wire layout of input/output batches in S3 (the layout the generated host
// code reads and writes).
func encodeFloats(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// decodeFloats parses little-endian raw float32 bytes.
func decodeFloats(data []byte) ([]float32, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("payload of %d bytes is not a float32 array", len(data))
	}
	out := make([]float32, len(data)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return out, nil
}
