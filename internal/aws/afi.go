package aws

import (
	"fmt"
	"sync"
	"time"

	"condor/internal/bitstream"
)

// AFI generation states, matching the EC2 API.
const (
	AFIPending   = "pending"
	AFIAvailable = "available"
	AFIFailed    = "failed"
)

// AFIRecord is one Amazon FPGA Image tracked by the service.
type AFIRecord struct {
	FpgaImageID       string `json:"FpgaImageId"`
	FpgaImageGlobalID string `json:"FpgaImageGlobalId"`
	Name              string `json:"Name"`
	Description       string `json:"Description"`
	State             string `json:"State"`
	StateReason       string `json:"StateReason,omitempty"`
	ShellVersion      string `json:"ShellVersion,omitempty"`
}

// afiService owns the AFI records and the asynchronous generation pipeline.
type afiService struct {
	mu       sync.Mutex
	store    *objectStore
	records  map[string]*AFIRecord // by afi id
	byGlobal map[string]string     // agfi id -> afi id
	images   map[string][]byte     // agfi id -> xclbin payload (the "ingested" design)
	next     int

	// workers joins the asynchronous generation goroutines: without it a
	// server torn down with AFIs still pending leaks workers that mutate
	// records nobody owns anymore. Quiesce waits on it.
	workers sync.WaitGroup

	// generationDelay is how long an AFI stays pending before the pipeline
	// validates it (the real service takes ~an hour; tests use milliseconds).
	generationDelay time.Duration
}

func newAFIService(store *objectStore, delay time.Duration) *afiService {
	return &afiService{
		store:    store,
		records:  make(map[string]*AFIRecord),
		byGlobal: make(map[string]string),
		images:   make(map[string][]byte),

		generationDelay: delay,
	}
}

// create starts AFI generation from a design tarball previously uploaded to
// S3. It returns immediately with a pending record; a background worker
// validates the tarball, writes the generation log next to it, and flips
// the state to available or failed.
func (a *afiService) create(inputBucket, inputKey, logsBucket, name, description string) (*AFIRecord, error) {
	// The input must exist up front (the real API validates the location).
	if _, err := a.store.get(inputBucket, inputKey); err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.next++
	rec := &AFIRecord{
		FpgaImageID:       fmt.Sprintf("afi-%017d", a.next),
		FpgaImageGlobalID: fmt.Sprintf("agfi-%017d", a.next),
		Name:              name,
		Description:       description,
		State:             AFIPending,
	}
	a.records[rec.FpgaImageID] = rec
	a.byGlobal[rec.FpgaImageGlobalID] = rec.FpgaImageID
	snap := snapshot(rec) // copy under the lock: the worker mutates rec
	a.mu.Unlock()

	a.workers.Add(1)
	go a.generate(snap.FpgaImageID, inputBucket, inputKey, logsBucket)
	return snap, nil
}

// generate is the asynchronous AFI pipeline worker.
func (a *afiService) generate(afiID, bucket, key, logsBucket string) {
	defer a.workers.Done()
	time.Sleep(a.generationDelay)
	data, err := a.store.get(bucket, key)
	var manifest *bitstream.AFIManifest
	var xclbin []byte
	if err == nil {
		manifest, xclbin, err = bitstream.ReadAFITarball(data)
	}
	a.mu.Lock()
	rec := a.records[afiID]
	logBody := ""
	if err != nil {
		rec.State = AFIFailed
		rec.StateReason = err.Error()
		logBody = fmt.Sprintf("AFI %s generation FAILED: %v\n", afiID, err)
	} else {
		rec.State = AFIAvailable
		rec.ShellVersion = manifest.ShellVer
		a.images[rec.FpgaImageGlobalID] = xclbin
		logBody = fmt.Sprintf("AFI %s generation OK: kernel=%s board=%s fclk=%.0fMHz\n",
			afiID, manifest.Kernel, manifest.Board, manifest.AchievedMHz)
	}
	a.mu.Unlock()
	if logsBucket != "" {
		// Best-effort: a missing logs bucket does not fail generation.
		_ = a.store.put(logsBucket, "logs/"+afiID+".txt", []byte(logBody))
	}
}

// describe returns the records for the requested ids (all when empty).
func (a *afiService) describe(ids []string) ([]*AFIRecord, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(ids) == 0 {
		out := make([]*AFIRecord, 0, len(a.records))
		for _, r := range a.records {
			out = append(out, snapshot(r))
		}
		return out, nil
	}
	out := make([]*AFIRecord, 0, len(ids))
	for _, id := range ids {
		r, ok := a.records[id]
		if !ok {
			return nil, &apiError{Code: "InvalidFpgaImageID.NotFound", Status: 404, Message: id}
		}
		out = append(out, snapshot(r))
	}
	return out, nil
}

// imageForGlobal returns the ingested xclbin for an available AFI.
func (a *afiService) imageForGlobal(agfi string) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	afiID, ok := a.byGlobal[agfi]
	if !ok {
		return nil, &apiError{Code: "InvalidFpgaImageID.NotFound", Status: 404, Message: agfi}
	}
	if st := a.records[afiID].State; st != AFIAvailable {
		return nil, &apiError{Code: "FpgaImageNotAvailable", Status: 409, Message: fmt.Sprintf("%s is %s", agfi, st)}
	}
	return a.images[agfi], nil
}

func snapshot(r *AFIRecord) *AFIRecord {
	cp := *r
	return &cp
}
