package aws

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"condor/internal/obs"
)

// Client is the SDK the Condor framework and CLI use to talk to the cloud
// endpoint. Transient failures (HTTP 5xx and transport errors) are retried
// with exponential backoff, as the AWS CLI does.
type Client struct {
	base    string
	http    *http.Client
	license string

	// MaxRetries bounds retry attempts for transient failures (default 4).
	MaxRetries int
	// Backoff is the initial retry delay (default 10ms, doubling).
	Backoff time.Duration

	// Request accounting, updated atomically on the retry path so concurrent
	// scheduler goroutines share one client without locking.
	requests  atomic.Int64 // HTTP attempts issued (including retries)
	retries   atomic.Int64 // attempts beyond the first per request
	failures  atomic.Int64 // requests that exhausted all attempts
	backoffNs atomic.Int64 // cumulative jittered sleep before retries
}

// ClientStats is a snapshot of the client's retry accounting.
type ClientStats struct {
	Requests int64 // HTTP attempts issued, retries included
	Retries  int64 // attempts beyond the first
	Failures int64 // requests failed after exhausting retries
	Backoff  time.Duration
}

// Stats snapshots the retry counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests: c.requests.Load(),
		Retries:  c.retries.Load(),
		Failures: c.failures.Load(),
		Backoff:  time.Duration(c.backoffNs.Load()),
	}
}

// RegisterMetrics exposes the aggregate retry accounting of the given
// clients through reg under the condor_aws_* families, read at scrape time.
// Register each family once per registry: pass every client in one call.
func RegisterMetrics(reg *obs.Registry, clients ...*Client) {
	total := func(fn func(ClientStats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			var sum float64
			for _, c := range clients {
				sum += fn(c.Stats())
			}
			return []obs.Sample{{Value: sum}}
		}
	}
	reg.Func("condor_aws_requests_total", obs.TypeCounter,
		"HTTP attempts issued to the cloud endpoint, retries included.",
		total(func(s ClientStats) float64 { return float64(s.Requests) }))
	reg.Func("condor_aws_retries_total", obs.TypeCounter,
		"Retry attempts after transient failures.",
		total(func(s ClientStats) float64 { return float64(s.Retries) }))
	reg.Func("condor_aws_request_failures_total", obs.TypeCounter,
		"Requests failed after exhausting all retry attempts.",
		total(func(s ClientStats) float64 { return float64(s.Failures) }))
	reg.Func("condor_aws_backoff_seconds_total", obs.TypeCounter,
		"Cumulative jittered backoff slept before retries.",
		total(func(s ClientStats) float64 { return s.Backoff.Seconds() }))
}

// NewClient creates a client for the endpoint at base (e.g. the URL of an
// httptest server or cmd/awsmock). The licence token authorises AFI
// creation; pass LicenseFromAMI() when running "inside" the FPGA Developer
// AMI, or "" to reproduce the unlicensed-environment failure.
func NewClient(base, license string) *Client {
	return &Client{
		base:       base,
		http:       &http.Client{Timeout: 30 * time.Second},
		license:    license,
		MaxRetries: 4,
		Backoff:    10 * time.Millisecond,
	}
}

// LicenseFromAMI returns the licence token the FPGA Developer AMI provides.
func LicenseFromAMI() string { return DefaultLicense }

// doRaw issues one HTTP request with retries on transient failures. The
// sleep between attempts doubles and is jittered, so a fleet of scheduler
// goroutines retrying the same outage spreads out instead of hammering the
// endpoint in lockstep (the AWS SDK "full jitter" guidance).
func (c *Client) doRaw(method, path string, body []byte, contentType string) ([]byte, error) {
	var lastErr error
	delay := c.Backoff
	for attempt := 0; attempt <= c.MaxRetries; attempt++ {
		if attempt > 0 {
			sleep := jitter(delay)
			c.retries.Add(1)
			c.backoffNs.Add(int64(sleep))
			time.Sleep(sleep)
			delay *= 2
		}
		c.requests.Add(1)
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.license != "" {
			req.Header.Set("X-Condor-License", c.license)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = decodeAPIError(resp.StatusCode, data)
			continue // transient: retry
		}
		if resp.StatusCode >= 400 {
			return nil, decodeAPIError(resp.StatusCode, data)
		}
		return data, nil
	}
	c.failures.Add(1)
	return nil, fmt.Errorf("aws: request failed after %d attempts: %w", c.MaxRetries+1, lastErr)
}

// jitter picks a uniform sleep in [d/2, d]; the global rand source is
// goroutine-safe, so concurrent retry paths decorrelate.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

func decodeAPIError(status int, body []byte) error {
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Code != "" {
		ae.Status = status
		return &ae
	}
	return &apiError{Code: "HTTPError", Status: status, Message: string(body)}
}

// --- S3 operations ---

// CreateBucket creates an S3 bucket.
func (c *Client) CreateBucket(bucket string) error {
	_, err := c.doRaw(http.MethodPut, "/s3/"+url.PathEscape(bucket), nil, "")
	return err
}

// PutObject uploads an object.
func (c *Client) PutObject(bucket, key string, data []byte) error {
	_, err := c.doRaw(http.MethodPut, s3Path(bucket, key), data, "application/octet-stream")
	return err
}

// GetObject downloads an object.
func (c *Client) GetObject(bucket, key string) ([]byte, error) {
	return c.doRaw(http.MethodGet, s3Path(bucket, key), nil, "")
}

// DeleteObject removes an object.
func (c *Client) DeleteObject(bucket, key string) error {
	_, err := c.doRaw(http.MethodDelete, s3Path(bucket, key), nil, "")
	return err
}

// ListObjects lists keys with the given prefix.
func (c *Client) ListObjects(bucket, prefix string) ([]string, error) {
	data, err := c.doRaw(http.MethodGet, "/s3/"+url.PathEscape(bucket)+"?prefix="+url.QueryEscape(prefix), nil, "")
	if err != nil {
		return nil, err
	}
	var keys []string
	if err := json.Unmarshal(data, &keys); err != nil {
		return nil, err
	}
	return keys, nil
}

func s3Path(bucket, key string) string {
	return "/s3/" + url.PathEscape(bucket) + "/" + key
}

// --- API operations ---

func (c *Client) api(req apiRequest) (*apiResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	data, err := c.doRaw(http.MethodPost, "/api", body, "application/json")
	if err != nil {
		return nil, err
	}
	var resp apiResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CreateFpgaImage starts AFI generation from a tarball in S3 and returns the
// pending record with its global AFI id.
func (c *Client) CreateFpgaImage(name, inputBucket, inputKey, logsBucket string) (*AFIRecord, error) {
	resp, err := c.api(apiRequest{
		Action: "CreateFpgaImage", Name: name,
		InputBucket: inputBucket, InputKey: inputKey, LogsBucket: logsBucket,
		Description: "generated by the Condor framework",
	})
	if err != nil {
		return nil, err
	}
	return resp.AFI, nil
}

// DescribeFpgaImages fetches AFI records.
func (c *Client) DescribeFpgaImages(ids ...string) ([]*AFIRecord, error) {
	resp, err := c.api(apiRequest{Action: "DescribeFpgaImages", FpgaImageIDs: ids})
	if err != nil {
		return nil, err
	}
	return resp.AFIs, nil
}

// WaitForAFI polls DescribeFpgaImages until the AFI leaves the pending
// state or the timeout elapses, returning the final record.
func (c *Client) WaitForAFI(afiID string, timeout time.Duration) (*AFIRecord, error) {
	deadline := time.Now().Add(timeout)
	poll := 5 * time.Millisecond
	for {
		recs, err := c.DescribeFpgaImages(afiID)
		if err != nil {
			return nil, err
		}
		if len(recs) == 1 && recs[0].State != AFIPending {
			return recs[0], nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("aws: AFI %s still pending after %v", afiID, timeout)
		}
		time.Sleep(poll)
		if poll < 100*time.Millisecond {
			poll *= 2
		}
	}
}

// RunInstance launches an F1 instance.
func (c *Client) RunInstance(instanceType string) (*Instance, error) {
	resp, err := c.api(apiRequest{Action: "RunInstances", InstanceType: instanceType})
	if err != nil {
		return nil, err
	}
	return resp.Instance, nil
}

// TerminateInstance stops an instance.
func (c *Client) TerminateInstance(id string) error {
	_, err := c.api(apiRequest{Action: "TerminateInstances", InstanceID: id})
	return err
}

// LoadFpgaImage programs an instance slot with an available AFI.
func (c *Client) LoadFpgaImage(instanceID string, slot int, agfi string) error {
	_, err := c.api(apiRequest{Action: "LoadFpgaImage", InstanceID: instanceID, Slot: slot, AgfiID: agfi})
	return err
}

// DescribeFpgaLocalImage reports what a slot is running.
func (c *Client) DescribeFpgaLocalImage(instanceID string, slot int) (*SlotStatus, error) {
	resp, err := c.api(apiRequest{Action: "DescribeFpgaLocalImage", InstanceID: instanceID, Slot: slot})
	if err != nil {
		return nil, err
	}
	return resp.SlotStatus, nil
}

// InferenceJob describes a remote batch inference on a programmed slot.
type InferenceJob struct {
	InstanceID string
	Slot       int
	Weights    ObjectRef
	Input      ObjectRef
	Output     ObjectRef
	Batch      int
}

// ObjectRef addresses an S3 object.
type ObjectRef struct{ Bucket, Key string }

// ExecuteInference runs the host application on the instance against the
// programmed slot: weights and inputs are read from S3, outputs written
// back to S3.
func (c *Client) ExecuteInference(job InferenceJob) (*InferenceResult, error) {
	resp, err := c.api(apiRequest{
		Action:     "ExecuteInference",
		InstanceID: job.InstanceID, Slot: job.Slot,
		WeightsBucket: job.Weights.Bucket, WeightsKey: job.Weights.Key,
		InputDataBucket: job.Input.Bucket, InputDataKey: job.Input.Key,
		OutputBucket: job.Output.Bucket, OutputKey: job.Output.Key,
		Batch: job.Batch,
	})
	if err != nil {
		return nil, err
	}
	return resp.Inference, nil
}

// EncodeBatch serialises a batch of float32 words for S3 upload.
func EncodeBatch(vals []float32) []byte { return encodeFloats(vals) }

// DecodeBatch parses float32 words downloaded from S3.
func DecodeBatch(data []byte) ([]float32, error) { return decodeFloats(data) }
