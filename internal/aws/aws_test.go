package aws

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"condor/internal/bitstream"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/models"
	"condor/internal/tensor"
)

func newTestCloud(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(Options{AFIGenerationDelay: 5 * time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, LicenseFromAMI())
}

func TestS3RoundTrip(t *testing.T) {
	_, c := newTestCloud(t)
	if err := c.CreateBucket("condor-test"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutObject("condor-test", "designs/a.bin", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data, err := c.GetObject("condor-test", "designs/a.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Fatalf("object = %v", data)
	}
	keys, err := c.ListObjects("condor-test", "designs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "designs/a.bin" {
		t.Fatalf("keys = %v", keys)
	}
	if err := c.DeleteObject("condor-test", "designs/a.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetObject("condor-test", "designs/a.bin"); err == nil {
		t.Fatal("expected NoSuchKey after delete")
	}
}

func TestS3Errors(t *testing.T) {
	_, c := newTestCloud(t)
	if _, err := c.GetObject("missing-bucket", "k"); err == nil {
		t.Fatal("expected NoSuchBucket")
	}
	if err := c.CreateBucket("BAD_NAME"); err == nil {
		t.Fatal("expected InvalidBucketName")
	}
	if err := c.CreateBucket("dup-bucket"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateBucket("dup-bucket"); err == nil {
		t.Fatal("expected BucketAlreadyExists")
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	srv, c := newTestCloud(t)
	if err := c.CreateBucket("retry-bucket"); err != nil {
		t.Fatal(err)
	}
	srv.FailNextN(2)
	if err := c.PutObject("retry-bucket", "k", []byte("v")); err != nil {
		t.Fatalf("client should retry past transient failures: %v", err)
	}
}

func TestClientGivesUpAfterMaxRetries(t *testing.T) {
	srv, c := newTestCloud(t)
	c.MaxRetries = 1
	c.Backoff = time.Millisecond
	srv.FailNextN(10)
	if err := c.CreateBucket("never-bucket"); err == nil {
		t.Fatal("expected exhausted-retries error")
	}
}

// A cloud that drops half of all requests is still usable through the
// client's jittered retries: with enough attempts the chance every retry of
// one request hits an injected fault is negligible.
func TestClientRetriesThroughTransientErrorRate(t *testing.T) {
	srv := NewServer(Options{
		AFIGenerationDelay: 5 * time.Millisecond,
		TransientErrorRate: 0.5,
		TransientErrorSeed: 42,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, LicenseFromAMI())
	c.MaxRetries = 12
	c.Backoff = time.Microsecond
	if err := c.CreateBucket("flaky-bucket"); err != nil {
		t.Fatalf("CreateBucket through 50%% fault rate: %v", err)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("obj/%d", i)
		if err := c.PutObject("flaky-bucket", key, []byte{byte(i)}); err != nil {
			t.Fatalf("PutObject %d through fault rate: %v", i, err)
		}
		if _, err := c.GetObject("flaky-bucket", key); err != nil {
			t.Fatalf("GetObject %d through fault rate: %v", i, err)
		}
	}
	// Turning the rate off stops the injection entirely.
	srv.SetTransientErrorRate(0)
	c.MaxRetries = 0
	for i := 0; i < 10; i++ {
		if _, err := c.GetObject("flaky-bucket", "obj/0"); err != nil {
			t.Fatalf("request %d failed with the fault rate disabled: %v", i, err)
		}
	}
}

func TestRetryJitterBounds(t *testing.T) {
	for _, d := range []time.Duration{time.Millisecond, time.Second} {
		for i := 0; i < 100; i++ {
			j := jitter(d)
			if j < d/2 || j > d {
				t.Fatalf("jitter(%v) = %v, want within [%v, %v]", d, j, d/2, d)
			}
		}
	}
	if j := jitter(1); j != 1 {
		t.Fatalf("jitter(1) = %v, want passthrough", j)
	}
}

// buildTC1Tarball compiles TC1 for the F1 and packages the AFI tarball.
func buildTC1Tarball(t *testing.T) ([]byte, *condorir.WeightSet, *dataflow.Spec) {
	t.Helper()
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := bitstream.PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	xclbin, _, err := bitstream.XOCC(xo, "aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	tarball, err := bitstream.PackageAFITarball(xclbin)
	if err != nil {
		t.Fatal(err)
	}
	return tarball, ws, spec
}

func TestFullCloudDeploymentRoundTrip(t *testing.T) {
	_, c := newTestCloud(t)
	tarball, ws, spec := buildTC1Tarball(t)

	// 1. Upload the design tarball to the user bucket.
	if err := c.CreateBucket("condor-designs"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutObject("condor-designs", "tc1/design.tar", tarball); err != nil {
		t.Fatal(err)
	}

	// 2. Start AFI generation and wait for availability.
	afi, err := c.CreateFpgaImage("tc1", "condor-designs", "tc1/design.tar", "condor-designs")
	if err != nil {
		t.Fatal(err)
	}
	if afi.State != AFIPending {
		t.Fatalf("fresh AFI state = %q", afi.State)
	}
	final, err := c.WaitForAFI(afi.FpgaImageID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != AFIAvailable {
		t.Fatalf("AFI state = %q (%s)", final.State, final.StateReason)
	}
	// The generation log landed in the logs bucket.
	logData, err := c.GetObject("condor-designs", "logs/"+afi.FpgaImageID+".txt")
	if err != nil || !bytes.Contains(logData, []byte("OK")) {
		t.Fatalf("generation log missing or wrong: %q %v", logData, err)
	}

	// 3. Launch an F1 instance and load the AFI on slot 0.
	inst, err := c.RunInstance("f1.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Slots != 1 {
		t.Fatalf("f1.2xlarge slots = %d", inst.Slots)
	}
	if err := c.LoadFpgaImage(inst.InstanceID, 0, final.FpgaImageGlobalID); err != nil {
		t.Fatal(err)
	}
	st, err := c.DescribeFpgaLocalImage(inst.InstanceID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "loaded" || st.AgfiID != final.FpgaImageGlobalID {
		t.Fatalf("slot status = %+v", st)
	}

	// 4. Upload weights and an input batch, run inference, fetch outputs.
	var wbuf bytes.Buffer
	if err := ws.Write(&wbuf); err != nil {
		t.Fatal(err)
	}
	if err := c.PutObject("condor-designs", "tc1/weights.cndw", wbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	batch := 3
	imgs := models.USPSImages(batch, 11)
	var flat []float32
	for _, img := range imgs {
		flat = append(flat, img.Data()...)
	}
	if err := c.PutObject("condor-designs", "tc1/input.bin", EncodeBatch(flat)); err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecuteInference(InferenceJob{
		InstanceID: inst.InstanceID, Slot: 0,
		Weights: ObjectRef{"condor-designs", "tc1/weights.cndw"},
		Input:   ObjectRef{"condor-designs", "tc1/input.bin"},
		Output:  ObjectRef{"condor-designs", "tc1/output.bin"},
		Batch:   batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != batch || res.KernelMs <= 0 {
		t.Fatalf("inference result = %+v", res)
	}
	outBytes, err := c.GetObject("condor-designs", "tc1/output.bin")
	if err != nil {
		t.Fatal(err)
	}
	outVals, err := DecodeBatch(outBytes)
	if err != nil {
		t.Fatal(err)
	}
	outVol := spec.OutputShape().Volume()
	if len(outVals) != batch*outVol {
		t.Fatalf("output words = %d, want %d", len(outVals), batch*outVol)
	}

	// Validate against the reference engine.
	ir, ws2, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	net, err := ir.BuildNN(ws2)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range imgs {
		want, err := net.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		got := tensor.FromSlice(outVals[i*outVol:(i+1)*outVol], outVol, 1, 1)
		if !tensor.AllClose(got, want.Reshape(outVol, 1, 1), 2e-3) {
			t.Fatalf("cloud inference image %d differs from reference", i)
		}
	}

	// 5. Terminate.
	if err := c.TerminateInstance(inst.InstanceID); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadFpgaImage(inst.InstanceID, 0, final.FpgaImageGlobalID); err == nil {
		t.Fatal("terminated instance must refuse slot operations")
	}
}

func TestCreateFpgaImageRequiresLicense(t *testing.T) {
	srv := NewServer(Options{AFIGenerationDelay: time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	unlicensed := NewClient(ts.URL, "") // outside the FPGA Developer AMI
	if err := unlicensed.CreateBucket("lic-bucket"); err != nil {
		t.Fatal(err)
	}
	if err := unlicensed.PutObject("lic-bucket", "d.tar", []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, err := unlicensed.CreateFpgaImage("x", "lic-bucket", "d.tar", "")
	if err == nil {
		t.Fatal("AFI creation must require the Developer AMI licence")
	}
	if ae, ok := err.(*apiError); !ok || ae.Code != "LicenseRequired" {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAFIGenerationFailsOnCorruptTarball(t *testing.T) {
	_, c := newTestCloud(t)
	if err := c.CreateBucket("bad-bucket"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutObject("bad-bucket", "bad.tar", []byte("not a tarball")); err != nil {
		t.Fatal(err)
	}
	afi, err := c.CreateFpgaImage("bad", "bad-bucket", "bad.tar", "bad-bucket")
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitForAFI(afi.FpgaImageID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != AFIFailed || final.StateReason == "" {
		t.Fatalf("corrupt tarball should fail generation: %+v", final)
	}
	// The failure log is written too.
	logData, err := c.GetObject("bad-bucket", "logs/"+afi.FpgaImageID+".txt")
	if err != nil || !bytes.Contains(logData, []byte("FAILED")) {
		t.Fatalf("failure log missing: %q %v", logData, err)
	}
}

func TestCreateFpgaImageMissingInput(t *testing.T) {
	_, c := newTestCloud(t)
	if err := c.CreateBucket("empty-bucket"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFpgaImage("x", "empty-bucket", "missing.tar", ""); err == nil {
		t.Fatal("expected NoSuchKey for missing tarball")
	}
}

func TestLoadPendingAFIRejected(t *testing.T) {
	srv := NewServer(Options{AFIGenerationDelay: time.Hour}) // stays pending
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, LicenseFromAMI())
	tarball, _, _ := buildTC1Tarball(t)
	if err := c.CreateBucket("pend-bucket"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutObject("pend-bucket", "d.tar", tarball); err != nil {
		t.Fatal(err)
	}
	afi, err := c.CreateFpgaImage("p", "pend-bucket", "d.tar", "")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.RunInstance("f1.16xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Slots != 8 {
		t.Fatalf("f1.16xlarge slots = %d", inst.Slots)
	}
	if err := c.LoadFpgaImage(inst.InstanceID, 0, afi.FpgaImageGlobalID); err == nil {
		t.Fatal("loading a pending AFI must fail")
	}
}

func TestRunInstanceInvalidType(t *testing.T) {
	_, c := newTestCloud(t)
	if _, err := c.RunInstance("m5.large"); err == nil {
		t.Fatal("expected InvalidInstanceType")
	}
}

func TestSlotOutOfRange(t *testing.T) {
	_, c := newTestCloud(t)
	inst, err := c.RunInstance("f1.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DescribeFpgaLocalImage(inst.InstanceID, 3); err == nil {
		t.Fatal("expected InvalidSlot")
	}
}

func TestExecuteInferenceWithoutImage(t *testing.T) {
	_, c := newTestCloud(t)
	inst, err := c.RunInstance("f1.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateBucket("inf-bucket"); err != nil {
		t.Fatal(err)
	}
	_, err = c.ExecuteInference(InferenceJob{
		InstanceID: inst.InstanceID, Slot: 0,
		Weights: ObjectRef{"inf-bucket", "w"},
		Input:   ObjectRef{"inf-bucket", "i"},
		Output:  ObjectRef{"inf-bucket", "o"},
		Batch:   1,
	})
	if err == nil {
		t.Fatal("expected FpgaNotProgrammed")
	}
}

func TestEncodeDecodeBatch(t *testing.T) {
	vals := []float32{1.5, -2, 0}
	out, err := DecodeBatch(EncodeBatch(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("round trip %v vs %v", out, vals)
		}
	}
	if _, err := DecodeBatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected misalignment error")
	}
}

func TestS3ConcurrentClients(t *testing.T) {
	_, c := newTestCloud(t)
	if err := c.CreateBucket("concurrent-bucket"); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 20
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d/obj%d", w, i)
				val := []byte(fmt.Sprintf("payload-%d-%d", w, i))
				if err := c.PutObject("concurrent-bucket", key, val); err != nil {
					errs <- err
					return
				}
				got, err := c.GetObject("concurrent-bucket", key)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, val) {
					errs <- fmt.Errorf("w%d obj%d corrupted", w, i)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	keys, err := c.ListObjects("concurrent-bucket", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != workers*perWorker {
		t.Fatalf("object count %d, want %d", len(keys), workers*perWorker)
	}
}

func TestConcurrentSlotInference(t *testing.T) {
	_, c := newTestCloud(t)
	tarball, ws, spec := buildTC1Tarball(t)
	if err := c.CreateBucket("multi-slot"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutObject("multi-slot", "d.tar", tarball); err != nil {
		t.Fatal(err)
	}
	afi, err := c.CreateFpgaImage("m", "multi-slot", "d.tar", "")
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitForAFI(afi.FpgaImageID, 5*time.Second)
	if err != nil || final.State != AFIAvailable {
		t.Fatalf("AFI: %v %v", final, err)
	}
	inst, err := c.RunInstance("f1.16xlarge")
	if err != nil {
		t.Fatal(err)
	}
	var wbuf bytes.Buffer
	if err := ws.Write(&wbuf); err != nil {
		t.Fatal(err)
	}
	if err := c.PutObject("multi-slot", "w.cndw", wbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	inVol := spec.Input.Volume()
	// Program 4 slots and run inference on all of them concurrently.
	const slots = 4
	errs := make(chan error, slots)
	for s := 0; s < slots; s++ {
		if err := c.LoadFpgaImage(inst.InstanceID, s, final.FpgaImageGlobalID); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < slots; s++ {
		go func(s int) {
			imgs := models.USPSImages(2, int64(100+s))
			var flat []float32
			for _, img := range imgs {
				flat = append(flat, img.Data()...)
			}
			if len(flat) != 2*inVol {
				errs <- fmt.Errorf("bad input size")
				return
			}
			inKey := fmt.Sprintf("s%d/in.bin", s)
			outKey := fmt.Sprintf("s%d/out.bin", s)
			if err := c.PutObject("multi-slot", inKey, EncodeBatch(flat)); err != nil {
				errs <- err
				return
			}
			_, err := c.ExecuteInference(InferenceJob{
				InstanceID: inst.InstanceID, Slot: s,
				Weights: ObjectRef{"multi-slot", "w.cndw"},
				Input:   ObjectRef{"multi-slot", inKey},
				Output:  ObjectRef{"multi-slot", outKey},
				Batch:   2,
			})
			errs <- err
		}(s)
	}
	for s := 0; s < slots; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuiesceJoinsGeneration: Quiesce blocks until the asynchronous AFI
// pipeline has drained, so a describe immediately afterwards sees a terminal
// state without polling WaitForAFI.
func TestQuiesceJoinsGeneration(t *testing.T) {
	srv := NewServer(Options{AFIGenerationDelay: 5 * time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, LicenseFromAMI())
	tarball, _, _ := buildTC1Tarball(t)
	if err := c.CreateBucket("q-bucket"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutObject("q-bucket", "d.tar", tarball); err != nil {
		t.Fatal(err)
	}
	afi, err := c.CreateFpgaImage("q", "q-bucket", "d.tar", "")
	if err != nil {
		t.Fatal(err)
	}
	srv.Quiesce()
	recs, err := c.DescribeFpgaImages(afi.FpgaImageID)
	if err != nil || len(recs) != 1 {
		t.Fatalf("describe after quiesce: %v %v", recs, err)
	}
	if recs[0].State != AFIAvailable {
		t.Fatalf("state after quiesce = %s, want %s", recs[0].State, AFIAvailable)
	}
}
