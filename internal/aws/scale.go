package aws

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// On-demand hourly prices for F1 instance types (us-east-1 list prices).
// The fleet model bills against these so autoscaling decisions carry a
// visible dollar figure, the way the paper's cloud-integration story prices
// FPGA capacity.
var f1HourlyCostUSD = map[string]float64{
	"f1.2xlarge":  1.65,
	"f1.4xlarge":  3.30,
	"f1.16xlarge": 13.20,
}

// SlotsForInstanceType returns how many FPGA slots an F1 instance type
// carries, false for unknown types.
func SlotsForInstanceType(instanceType string) (int, bool) {
	n, ok := f1SlotCounts[instanceType]
	return n, ok
}

// HourlyCostForInstanceType returns the modeled on-demand price, false for
// unknown types.
func HourlyCostForInstanceType(instanceType string) (float64, bool) {
	c, ok := f1HourlyCostUSD[instanceType]
	return c, ok
}

// Launcher is the slice of Client the fleet model drives; *Client satisfies
// it against a live (or mock) endpoint, tests substitute a fake.
type Launcher interface {
	RunInstance(instanceType string) (*Instance, error)
	TerminateInstance(id string) error
}

// FleetModelConfig sizes the simulated F1 fleet.
type FleetModelConfig struct {
	// InstanceType is what scale-ups launch (default f1.2xlarge).
	InstanceType string
	// SpinUp models the launch → usable delay of a real F1 instance: a
	// freshly launched instance counts as pending capacity until it elapses
	// (default 30s; F1 boot + AFI load is minutes in production, tests and
	// demos shrink it).
	SpinUp time.Duration
	// Now is the clock (default time.Now); injectable so tests advance
	// spin-up and billing without sleeping.
	Now func() time.Time
	// Logf receives launch/terminate decisions; nil discards them.
	Logf func(format string, a ...any)
}

func (c *FleetModelConfig) applyDefaults() {
	if c.InstanceType == "" {
		c.InstanceType = "f1.2xlarge"
	}
	if c.SpinUp <= 0 {
		c.SpinUp = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// fleetInstance is one launched instance in the model.
type fleetInstance struct {
	id      string
	slots   int
	readyAt time.Time
}

// FleetInstanceInfo is the JSON snapshot of one modeled instance.
type FleetInstanceInfo struct {
	ID      string    `json:"id"`
	Slots   int       `json:"slots"`
	Ready   bool      `json:"ready"`
	ReadyAt time.Time `json:"ready_at"`
}

// FleetModel is the autoscaler's ScaleTarget: it turns a desired slot count
// into RunInstance/TerminateInstance calls against the cloud endpoint while
// modeling what the API cannot express — spin-up latency (new capacity is
// pending, not ready, until SpinUp elapses) and accumulated per-hour cost.
// Scale-downs prefer instances that are still pending, so a flapping
// autoscaler cancels capacity it never paid spin-up for before touching
// warm instances.
type FleetModel struct {
	cfg      FleetModelConfig
	launcher Launcher

	mu          sync.Mutex
	desired     int
	instances   []*fleetInstance
	costUSD     float64
	lastAccrual time.Time
	launches    int
	terminates  int
}

// NewFleetModel wires the model to a launcher.
func NewFleetModel(cfg FleetModelConfig, launcher Launcher) (*FleetModel, error) {
	cfg.applyDefaults()
	if _, ok := f1SlotCounts[cfg.InstanceType]; !ok {
		return nil, fmt.Errorf("aws: %q is not an F1 instance type", cfg.InstanceType)
	}
	return &FleetModel{
		cfg:         cfg,
		launcher:    launcher,
		lastAccrual: cfg.Now(),
	}, nil
}

// accrue bills every launched instance from the last accrual to now. Billing
// starts at launch, not readiness — spin-up time costs money, which is
// exactly why the autoscaler's hysteresis matters. Called with f.mu held.
func (f *FleetModel) accrue() {
	now := f.cfg.Now()
	hours := now.Sub(f.lastAccrual).Hours()
	if hours > 0 {
		rate := f1HourlyCostUSD[f.cfg.InstanceType]
		perInstance := rate * hours
		f.costUSD += perInstance * float64(len(f.instances))
	}
	f.lastAccrual = now
}

// SetDesiredSlots launches or terminates instances until the fleet covers n
// slots. Partial progress is kept on launcher errors.
func (f *FleetModel) SetDesiredSlots(n int) error {
	if n < 0 {
		n = 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.accrue()
	f.desired = n

	perInstance := f1SlotCounts[f.cfg.InstanceType]
	total := 0
	for _, inst := range f.instances {
		total += inst.slots
	}

	for total < n {
		inst, err := f.launcher.RunInstance(f.cfg.InstanceType)
		if err != nil {
			return fmt.Errorf("aws: fleet scale-up: %w", err)
		}
		f.instances = append(f.instances, &fleetInstance{
			id:      inst.InstanceID,
			slots:   inst.Slots,
			readyAt: f.cfg.Now().Add(f.cfg.SpinUp),
		})
		f.launches++
		total += inst.Slots
		f.cfg.Logf("aws: fleet launched %s (%s, %d slot(s), ready in %v)",
			inst.InstanceID, f.cfg.InstanceType, inst.Slots, f.cfg.SpinUp)
	}

	// Terminate youngest-first (pending before warm): sorting by readyAt
	// descending puts never-ready capacity at the front of the chopping
	// block.
	sort.SliceStable(f.instances, func(i, j int) bool {
		return f.instances[i].readyAt.After(f.instances[j].readyAt)
	})
	for len(f.instances) > 0 && total-perInstance >= n {
		victim := f.instances[0]
		if err := f.launcher.TerminateInstance(victim.id); err != nil {
			return fmt.Errorf("aws: fleet scale-down: %w", err)
		}
		f.instances = f.instances[1:]
		f.terminates++
		total -= victim.slots
		f.cfg.Logf("aws: fleet terminated %s (%d slot(s) remain)", victim.id, total)
	}
	return nil
}

// ReadySlots is the usable capacity: slots whose spin-up has elapsed.
func (f *FleetModel) ReadySlots() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.cfg.Now()
	total := 0
	for _, inst := range f.instances {
		if !inst.readyAt.After(now) {
			total += inst.slots
		}
	}
	return total
}

// PendingSlots is launched capacity still inside its spin-up window.
func (f *FleetModel) PendingSlots() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.cfg.Now()
	total := 0
	for _, inst := range f.instances {
		if inst.readyAt.After(now) {
			total += inst.slots
		}
	}
	return total
}

// CostUSD is the accumulated modeled spend across the fleet's lifetime,
// including already-terminated instances.
func (f *FleetModel) CostUSD() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.accrue()
	return f.costUSD
}

// Launches and Terminates report lifetime API call counts.
func (f *FleetModel) Launches() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.launches
}

func (f *FleetModel) Terminates() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.terminates
}

// Instances snapshots the live fleet, sorted by instance id.
func (f *FleetModel) Instances() []FleetInstanceInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.cfg.Now()
	out := make([]FleetInstanceInfo, len(f.instances))
	for i, inst := range f.instances {
		out[i] = FleetInstanceInfo{
			ID:      inst.id,
			Slots:   inst.slots,
			Ready:   !inst.readyAt.After(now),
			ReadyAt: inst.readyAt,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
