// Package diag defines the diagnostic record shared by Condor's static
// analyses: the pre-synthesis design verifier (internal/verify) and the
// runtime checks that remain inside the dataflow layer. It is a leaf package
// so that both internal/dataflow (which emits diagnostics as wrapped errors)
// and internal/verify (which collects them in batches) can depend on it
// without an import cycle.
package diag

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Rule identifiers of the Condor design-rule catalogue. The IDs are stable
// API: tests, CI and CLI output match on them. The full catalogue — what
// each rule checks and which paper mechanism it guards — is documented in
// internal/verify and in the "Static analysis & design verification"
// section of README.md.
const (
	RuleShapeChain      = "CND001" // successor in-shape must equal predecessor out-shape
	RuleShapeGeometry   = "CND002" // recorded out-shape must satisfy the paper's shape equations
	RuleChainMissing    = "CND003" // features-extraction PEs need a filter chain (and only they do)
	RuleChainWindow     = "CND004" // chain window/width must cover every fused layer
	RuleChainTaps       = "CND005" // taps must be the K² accesses in lexicographically-inverse order
	RuleFIFODepth       = "CND006" // inter-filter FIFO depth must equal the reuse distance
	RuleInterPEFIFO     = "CND007" // inter-PE streaming FIFOs need at least one slot
	RuleWeightWords     = "CND008" // weight entry word count must match the layer geometry
	RuleWeightMissing   = "CND009" // compute layers need a weight entry
	RuleBiasWords       = "CND010" // bias entry word count must match the output channels
	RuleBoardUnknown    = "CND011" // the deployment board must be in the catalogue
	RuleFreqRange       = "CND012" // requested clock must be positive and within the platform maximum
	RuleResourceBudget  = "CND013" // the kernel must fit the board's shell-excluded budget
	RuleHLSArrayLimit   = "CND014" // static arrays must stay within the HLS front-end limit
	RuleParallelism     = "CND015" // port parallelism must be positive and useful
	RuleWordBits        = "CND016" // fabric word width must be 8, 16 or 32 bits
	RuleEmptyStructure  = "CND017" // the spec needs PEs and every PE needs layers
	RuleStageOrder      = "CND018" // features extraction must precede classification
	RuleIRCoverage      = "CND019" // the spec must cover the IR's compute layers in order
	RuleFIFOOccupancy   = "CND020" // worst-case FIFO-network edge occupancy must fit the declared depth
	RuleCUResource      = "CND021" // replicated-CU resource totals must fit the board budget
	RuleFabricConfig    = "CND022" // the (parallelism, CUs, burst) execution configuration must be sane
	RuleLanePacking     = "CND023" // packed lanes must divide streamed-edge volumes (else padded tail lanes)
	RuleFrameInterleave = "CND024" // two-epochs-in-flight occupancy must fit FIFO depths under batch streaming
	RuleConvAlgo        = "CND025" // conv algorithm must be known; winograd_f23 needs a qualifying 3x3/stride-1 layer
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Warning marks a design smell that does not prevent instantiation
	// (wasted resources, dubious parallelism). Builds proceed.
	Warning Severity = iota
	// Error marks a design that must not reach synthesis or simulation:
	// instantiating it would deadlock, mis-size buffers or panic.
	Error
)

// String returns the compiler-style severity label.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding of a design rule, printable like a compiler
// error and matchable by rule ID in tests and tooling.
type Diagnostic struct {
	// Rule is the stable catalogue identifier (e.g. "CND001").
	Rule     string
	Severity Severity
	// PE and Layer locate the finding in the accelerator structure; either
	// may be empty for spec-wide findings.
	PE    string
	Layer string
	// Message is the human-readable explanation.
	Message string
}

// Error implements the error interface so a Diagnostic can be returned (or
// wrapped with %w) anywhere an error is expected.
func (d *Diagnostic) Error() string { return d.String() }

// String formats the diagnostic like a compiler error:
//
//	error[CND001] pe1/conv2: out-shape 8x4x4 does not match successor in-shape 8x5x5
func (d *Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]", d.Severity, d.Rule)
	if loc := d.Location(); loc != "" {
		b.WriteString(" " + loc)
	}
	b.WriteString(": " + d.Message)
	return b.String()
}

// Location returns the "pe/layer" locus of the finding ("" if spec-wide).
func (d *Diagnostic) Location() string {
	switch {
	case d.PE != "" && d.Layer != "":
		return d.PE + "/" + d.Layer
	case d.PE != "":
		return d.PE
	default:
		return d.Layer
	}
}

// New builds a diagnostic with a formatted message.
func New(rule string, sev Severity, pe, layer, format string, args ...any) *Diagnostic {
	return &Diagnostic{Rule: rule, Severity: sev, PE: pe, Layer: layer, Message: fmt.Sprintf(format, args...)}
}

// Errorf builds an Error-severity diagnostic, for call sites that return it
// directly as an error.
func Errorf(rule, pe, layer, format string, args ...any) *Diagnostic {
	return New(rule, Error, pe, layer, format, args...)
}

// Rule extracts the rule ID from an error that is (or wraps) a Diagnostic,
// or "" if the error carries none.
func Rule(err error) string {
	var d *Diagnostic
	if errors.As(err, &d) {
		return d.Rule
	}
	return ""
}

// Sort orders diagnostics for stable output: errors before warnings, then by
// rule ID, then by location.
func Sort(ds []*Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Severity != ds[j].Severity {
			return ds[i].Severity > ds[j].Severity
		}
		if ds[i].Rule != ds[j].Rule {
			return ds[i].Rule < ds[j].Rule
		}
		return ds[i].Location() < ds[j].Location()
	})
}

// Err folds a diagnostic batch into a single error: nil when no
// Error-severity diagnostic is present, otherwise an error listing every
// error-level finding (warnings are dropped — they are report material, not
// failures). The first error diagnostic is wrapped, so errors.As and
// diag.Rule still recover it.
func Err(ds []*Diagnostic) error {
	var errs []*Diagnostic
	for _, d := range ds {
		if d.Severity == Error {
			errs = append(errs, d)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	if len(errs) == 1 {
		return errs[0]
	}
	rest := make([]string, 0, len(errs)-1)
	for _, d := range errs[1:] {
		rest = append(rest, d.String())
	}
	return fmt.Errorf("%w\n%s", errs[0], strings.Join(rest, "\n"))
}

// HasErrors reports whether any diagnostic is Error severity.
func HasErrors(ds []*Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}
