package diag

import (
	"errors"
	"fmt"
	"testing"
)

func TestString(t *testing.T) {
	cases := []struct {
		d    *Diagnostic
		want string
	}{
		{Errorf(RuleShapeChain, "pe1", "conv2", "bad shape"),
			"error[CND001] pe1/conv2: bad shape"},
		{New(RuleFIFODepth, Warning, "pe0", "", "oversized"),
			"warning[CND006] pe0: oversized"},
		{Errorf(RuleBoardUnknown, "", "", "no such board"),
			"error[CND011]: no such board"},
		{New(RuleWeightWords, Error, "", "fc1", "short entry"),
			"error[CND008] fc1: short entry"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
		if got := tc.d.Error(); got != tc.want {
			t.Errorf("Error() = %q, want %q", got, tc.want)
		}
	}
}

func TestRuleUnwrapsChains(t *testing.T) {
	base := Errorf(RuleWeightMissing, "pe2", "fc1", "no weights")
	wrapped := fmt.Errorf("dataflow: %w", fmt.Errorf("instantiate: %w", base))
	if r := Rule(wrapped); r != RuleWeightMissing {
		t.Fatalf("Rule(wrapped) = %q, want %s", r, RuleWeightMissing)
	}
	if r := Rule(errors.New("plain")); r != "" {
		t.Fatalf("Rule(plain) = %q, want empty", r)
	}
	if r := Rule(nil); r != "" {
		t.Fatalf("Rule(nil) = %q, want empty", r)
	}
}

func TestSortOrdersErrorsFirst(t *testing.T) {
	ds := []*Diagnostic{
		New(RuleFIFODepth, Warning, "pe0", "", "w"),
		Errorf(RuleShapeChain, "pe1", "b", "e"),
		Errorf(RuleShapeChain, "pe1", "a", "e"),
		Errorf(RuleParallelism, "pe0", "", "e"),
	}
	Sort(ds)
	want := []string{
		"error[CND001] pe1/a: e",
		"error[CND001] pe1/b: e",
		"error[CND015] pe0: e",
		"warning[CND006] pe0: w",
	}
	for i, d := range ds {
		if d.String() != want[i] {
			t.Fatalf("position %d: got %q, want %q", i, d, want[i])
		}
	}
}

func TestErrAndHasErrors(t *testing.T) {
	warnOnly := []*Diagnostic{New(RuleFIFODepth, Warning, "pe0", "", "w")}
	if HasErrors(warnOnly) {
		t.Fatal("HasErrors true for warnings only")
	}
	if err := Err(warnOnly); err != nil {
		t.Fatalf("Err(warnings) = %v, want nil", err)
	}

	mixed := append(warnOnly, Errorf(RuleShapeChain, "pe1", "l", "bad"))
	Sort(mixed)
	if !HasErrors(mixed) {
		t.Fatal("HasErrors false with an error present")
	}
	err := Err(mixed)
	if err == nil {
		t.Fatal("Err(mixed) = nil")
	}
	if Rule(err) != RuleShapeChain {
		t.Fatalf("Rule(Err(mixed)) = %q, want %s", Rule(err), RuleShapeChain)
	}
	if Err(nil) != nil {
		t.Fatal("Err(nil) != nil")
	}
}
