// Package sim is a small deterministic discrete-event simulation kernel
// used by the Condor performance layer to model the accelerator's
// high-level pipeline at image granularity (per-element behaviour is
// handled by the functional fabric in internal/dataflow; composing the two
// scales is what makes VGG-class networks tractable).
package sim

import "container/heap"

// Engine is a discrete-event scheduler with deterministic ordering: events
// fire in (time, schedule-order) sequence. Time is unitless; the perf layer
// uses clock cycles.
type Engine struct {
	now int64
	seq int64
	pq  eventHeap
}

type event struct {
	time int64
	seq  int64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New returns an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() int64 { return e.now }

// Schedule arms fn to fire delay time units from now. Negative delays fire
// immediately (at the current time).
func (e *Engine) Schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At arms fn to fire at absolute time t (clamped to now).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{time: t, seq: e.seq, fn: fn})
}

// Run processes events until the queue is empty and returns the final time.
func (e *Engine) Run() int64 {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.time
		ev.fn()
	}
	return e.now
}

// RunUntil processes events with time ≤ limit; later events stay queued.
// It returns the engine time, which never exceeds limit.
func (e *Engine) RunUntil(limit int64) int64 {
	for e.pq.Len() > 0 && e.pq[0].time <= limit {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.time
		ev.fn()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.pq.Len() }

// Server is a single-occupancy resource (one image in service at a time)
// with an optional single waiting slot handshake handled by the caller via
// the done callback — the building block for pipeline stages.
type Server struct {
	eng  *Engine
	busy bool
	// queue of pending (service, done) requests in arrival order.
	queue []request

	// BusyTime accumulates the total time the server spent in service,
	// for utilization reporting.
	BusyTime int64
}

type request struct {
	service int64
	done    func()
}

// NewServer returns an idle server on the engine.
func NewServer(eng *Engine) *Server { return &Server{eng: eng} }

// Submit requests service time units of work; done fires when the work
// completes. Requests are served FIFO, one at a time.
func (s *Server) Submit(service int64, done func()) {
	s.queue = append(s.queue, request{service: service, done: done})
	if !s.busy {
		s.serveNext()
	}
}

func (s *Server) serveNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	req := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	s.BusyTime += req.service
	s.eng.Schedule(req.service, func() {
		if req.done != nil {
			req.done()
		}
		s.serveNext()
	})
}

// Busy reports whether the server is currently in service.
func (s *Server) Busy() bool { return s.busy }
