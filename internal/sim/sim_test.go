package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if end := e.Run(); end != 30 {
		t.Fatalf("end time = %d", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []int64
	e.Schedule(5, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 5 || times[1] != 10 {
		t.Fatalf("times = %v", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(10, func() {
		e.Schedule(-5, func() { fired = true })
	})
	e.Run()
	if !fired || e.Now() != 10 {
		t.Fatalf("fired=%v now=%d", fired, e.Now())
	}
}

func TestAtInThePastClamped(t *testing.T) {
	e := New()
	var at int64
	e.Schedule(10, func() {
		e.At(3, func() { at = e.Now() })
	})
	e.Run()
	if at != 10 {
		t.Fatalf("past event fired at %d", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(5, func() { fired++ })
	e.Schedule(15, func() { fired++ })
	if now := e.RunUntil(10); now != 10 {
		t.Fatalf("RunUntil returned %d", now)
	}
	if fired != 1 || e.Pending() != 1 {
		t.Fatalf("fired=%d pending=%d", fired, e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestServerSerialisesRequests(t *testing.T) {
	e := New()
	s := NewServer(e)
	var finish []int64
	for i := 0; i < 3; i++ {
		s.Submit(10, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	want := []int64{10, 20, 30}
	for i, w := range want {
		if finish[i] != w {
			t.Fatalf("finish = %v", finish)
		}
	}
	if s.BusyTime != 30 {
		t.Fatalf("busy time = %d", s.BusyTime)
	}
}

func TestServerInterleavedSubmit(t *testing.T) {
	e := New()
	s := NewServer(e)
	var finish []int64
	s.Submit(10, func() { finish = append(finish, e.Now()) })
	// A request arriving while busy waits its turn.
	e.Schedule(5, func() {
		s.Submit(10, func() { finish = append(finish, e.Now()) })
	})
	// A request arriving after idle starts immediately.
	e.Schedule(50, func() {
		s.Submit(1, func() { finish = append(finish, e.Now()) })
	})
	e.Run()
	if len(finish) != 3 || finish[0] != 10 || finish[1] != 20 || finish[2] != 51 {
		t.Fatalf("finish = %v", finish)
	}
}

// Property: for any set of delays, Run fires every event exactly once and
// ends at the maximum scheduled time.
func TestEngineProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		fired := 0
		var max int64
		for _, d := range delays {
			dd := int64(d % 1000)
			if dd > max {
				max = dd
			}
			e.Schedule(dd, func() { fired++ })
		}
		end := e.Run()
		if len(delays) == 0 {
			return fired == 0 && end == 0
		}
		return fired == len(delays) && end == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
