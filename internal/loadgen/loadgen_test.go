package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condor/internal/fleet"
)

func TestRunAccountsEveryArrival(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"argmax":0}`))
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		TargetURL: srv.URL,
		RateRPS:   500,
		Duration:  300 * time.Millisecond,
		Arrival:   ArrivalFixed,
		Body:      []byte(`{"image":[0]}`),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Sent == 0 {
		t.Fatal("no arrivals generated")
	}
	if int64(rep.Sent) != hits.Load() {
		t.Errorf("sent %d but server saw %d", rep.Sent, hits.Load())
	}
	if rep.OK != rep.Sent {
		t.Errorf("ok = %d, want all %d against an instant server", rep.OK, rep.Sent)
	}
	if rep.GoodputRPS <= 0 {
		t.Error("goodput not computed")
	}
	if rep.Latency.Count != rep.OK || rep.Latency.P99 <= 0 {
		t.Errorf("latency summary = %+v", rep.Latency)
	}
	if len(rep.CDF) == 0 || rep.CDF[len(rep.CDF)-1].Fraction != 1.0 {
		t.Errorf("CDF = %+v", rep.CDF)
	}
	// ~500 req/s for 300ms is ~150 arrivals; allow generous scheduling slop
	// but catch a generator that is off by an order of magnitude.
	if rep.Sent < 50 || rep.Sent > 200 {
		t.Errorf("fixed arrivals = %d, want roughly 150", rep.Sent)
	}
}

func TestRunClassifiesOutcomes(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			w.Write([]byte(`{"argmax":0}`))
		case 1:
			w.Header().Set(fleet.ShedHeader, "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(fleet.RouterError{Error: "shed", Code: fleet.CodeShedLowPriority})
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(fleet.RouterError{Error: "full", Code: fleet.CodeSaturated})
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		TargetURL:    srv.URL,
		RateRPS:      400,
		Duration:     250 * time.Millisecond,
		Arrival:      ArrivalFixed,
		Body:         []byte(`{"image":[0]}`),
		HighFraction: 0.5,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.OK == 0 || rep.Shed == 0 || rep.Rejected == 0 || rep.Errors == 0 {
		t.Errorf("outcome spread = ok %d shed %d rejected %d errors %d; want all non-zero",
			rep.OK, rep.Shed, rep.Rejected, rep.Errors)
	}
	if rep.Classes["high"].Sent == 0 || rep.Classes["low"].Sent == 0 {
		t.Errorf("priority mix = high %d low %d; want both classes offered",
			rep.Classes["high"].Sent, rep.Classes["low"].Sent)
	}
	if got := rep.OK + rep.DeadlineMiss + rep.Shed + rep.Rejected + rep.Errors; got != rep.Sent {
		t.Errorf("accounting: %d classified of %d sent", got, rep.Sent)
	}
}

func TestRunDeadlineMiss(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(60 * time.Millisecond)
		w.Write([]byte(`{"argmax":0}`))
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		TargetURL:  srv.URL,
		RateRPS:    100,
		Duration:   200 * time.Millisecond,
		Arrival:    ArrivalFixed,
		Body:       []byte(`{"image":[0]}`),
		DeadlineMs: 20,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.DeadlineMiss != rep.Sent {
		t.Errorf("deadline misses = %d of %d sent against a 60ms server with 20ms deadline",
			rep.DeadlineMiss, rep.Sent)
	}
	if rep.GoodputRPS != 0 {
		t.Errorf("goodput = %v with every request late, want 0", rep.GoodputRPS)
	}
}

func TestPoissonArrivalsApproximateRate(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"argmax":0}`))
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		TargetURL: srv.URL,
		RateRPS:   600,
		Duration:  500 * time.Millisecond,
		Arrival:   ArrivalPoisson,
		Body:      []byte(`{"image":[0]}`),
		Seed:      42,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 600 req/s * 0.5s = 300 expected; Poisson σ ≈ 17, so ±40% catches a
	// broken process without flaking on scheduler noise.
	if rep.Sent < 180 || rep.Sent > 420 {
		t.Errorf("poisson arrivals = %d, want ≈300", rep.Sent)
	}
}

func TestRunCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"argmax":0}`))
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Config{
		TargetURL: srv.URL,
		RateRPS:   100,
		Duration:  30 * time.Second, // ctx cuts this short
		Arrival:   ArrivalFixed,
		Body:      []byte(`{"image":[0]}`),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if rep.Sent == 0 {
		t.Error("no arrivals before cancellation")
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{TargetURL: "http://x", RateRPS: 1, Body: []byte("{}")}
	bad := base
	bad.RateRPS = 0
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = base
	bad.Arrival = "burst"
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("unknown arrival accepted")
	}
	bad = base
	bad.Body = nil
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("empty body accepted")
	}
}

func TestReportTableAndQuantiles(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(sorted, 0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := quantile(sorted, 1.0); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
	q := summarize(append([]float64(nil), sorted...))
	if math.Abs(q.Mean-5.5) > 1e-9 || q.Max != 10 || q.Count != 10 {
		t.Errorf("summarize = %+v", q)
	}

	rep := &Report{
		Kind: ReportKind, Target: "http://x", Arrival: ArrivalFixed,
		OfferedRPS: 10, DurationSec: 1, Sent: 10, OK: 8, Shed: 2,
		GoodputRPS: 8, Latency: q,
		Classes: map[string]*ClassReport{"high": {Sent: 10, OK: 8, Shed: 2, GoodputRPS: 8}, "low": {}},
	}
	var sb strings.Builder
	rep.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"total", "goodput", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
