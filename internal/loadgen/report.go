package loadgen

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// ReportKind tags loadgen JSON so consumers (benchdiff, CI gates) can detect
// the shape without schema negotiation.
const ReportKind = "condor-loadgen"

// SweepKind tags a multi-rate sweep: several Reports in one envelope.
const SweepKind = "condor-loadgen-sweep"

// Sweep is the JSON envelope for a -rates run: one Report per offered load.
type Sweep struct {
	Kind string    `json:"kind"`
	Runs []*Report `json:"runs"`
}

// Quantiles summarises a latency distribution in milliseconds.
type Quantiles struct {
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	Mean  float64 `json:"mean_ms"`
	Max   float64 `json:"max_ms"`
	Count int     `json:"count"`
}

// CDFPoint is one point of the exported latency CDF.
type CDFPoint struct {
	LatencyMs float64 `json:"latency_ms"`
	Fraction  float64 `json:"fraction"`
}

// ClassReport is one priority class's slice of the run.
type ClassReport struct {
	Sent         int       `json:"sent"`
	OK           int       `json:"ok"`
	DeadlineMiss int       `json:"deadline_miss"`
	Shed         int       `json:"shed"`
	Rejected     int       `json:"rejected"`
	Errors       int       `json:"errors"`
	GoodputRPS   float64   `json:"goodput_rps"`
	Latency      Quantiles `json:"latency"`
}

// Report is one run's full accounting: offered vs achieved load, the
// outcome breakdown, and latency quantiles overall and per class.
type Report struct {
	Kind        string  `json:"kind"`
	Target      string  `json:"target"`
	Arrival     string  `json:"arrival"`
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"`
	DeadlineMs  float64 `json:"deadline_ms,omitempty"`

	Sent         int `json:"sent"`
	OK           int `json:"ok"`
	DeadlineMiss int `json:"deadline_miss"`
	Shed         int `json:"shed"`
	Rejected     int `json:"rejected"`
	Errors       int `json:"errors"`

	// GoodputRPS counts only on-time successes — the figure that saturates
	// (and then degrades) as offered load passes capacity.
	GoodputRPS float64   `json:"goodput_rps"`
	Latency    Quantiles `json:"latency"`
	// CDF is the answered-request latency distribution at fixed fractions.
	CDF []CDFPoint `json:"cdf,omitempty"`

	Classes map[string]*ClassReport `json:"classes"`
}

// report reduces the recorded outcomes.
func (g *generator) report(sent int, elapsed time.Duration) *Report {
	g.mu.Lock()
	recs := g.recs
	g.mu.Unlock()

	rep := &Report{
		Kind:        ReportKind,
		Target:      g.cfg.TargetURL,
		Arrival:     g.cfg.Arrival,
		OfferedRPS:  g.cfg.RateRPS,
		DurationSec: elapsed.Seconds(),
		DeadlineMs:  g.cfg.DeadlineMs,
		Sent:        sent,
		Classes: map[string]*ClassReport{
			"high": {},
			"low":  {},
		},
	}
	var all, perClass = []float64{}, map[string][]float64{}
	for _, r := range recs {
		c := rep.Classes[r.class]
		c.Sent++
		switch r.outcome {
		case OutcomeOK:
			rep.OK++
			c.OK++
		case OutcomeDeadlineMiss:
			rep.DeadlineMiss++
			c.DeadlineMiss++
		case OutcomeShed:
			rep.Shed++
			c.Shed++
		case OutcomeRejected:
			rep.Rejected++
			c.Rejected++
		default:
			rep.Errors++
			c.Errors++
		}
		// Latency is meaningful for requests that ran to an answer; sheds
		// and rejects settle in microseconds and would flatter the CDF.
		if r.outcome == OutcomeOK || r.outcome == OutcomeDeadlineMiss {
			all = append(all, r.latencyMs)
			perClass[r.class] = append(perClass[r.class], r.latencyMs)
		}
	}
	sec := elapsed.Seconds()
	if sec > 0 {
		rep.GoodputRPS = float64(rep.OK) / sec
		for name, c := range rep.Classes {
			c.GoodputRPS = float64(c.OK) / sec
			c.Latency = summarize(perClass[name])
		}
	}
	rep.Latency = summarize(all)
	rep.CDF = cdf(all)
	return rep
}

// summarize computes quantiles over a latency sample (sorts in place).
func summarize(ms []float64) Quantiles {
	q := Quantiles{Count: len(ms)}
	if len(ms) == 0 {
		return q
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	q.Mean = sum / float64(len(ms))
	q.Max = ms[len(ms)-1]
	q.P50 = quantile(ms, 0.50)
	q.P95 = quantile(ms, 0.95)
	q.P99 = quantile(ms, 0.99)
	q.P999 = quantile(ms, 0.999)
	return q
}

// quantile reads the q-th quantile from a sorted sample (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// cdf samples the sorted latency distribution at fixed fractions.
func cdf(sorted []float64) []CDFPoint {
	if len(sorted) == 0 {
		return nil
	}
	fracs := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0}
	out := make([]CDFPoint, 0, len(fracs))
	for _, f := range fracs {
		out = append(out, CDFPoint{LatencyMs: quantile(sorted, f), Fraction: f})
	}
	return out
}

// WriteTable renders the human-readable summary.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "target %s  arrival %s  offered %.1f req/s  duration %.1fs\n",
		r.Target, r.Arrival, r.OfferedRPS, r.DurationSec)
	if r.DeadlineMs > 0 {
		fmt.Fprintf(w, "deadline %.0f ms\n", r.DeadlineMs)
	}
	fmt.Fprintf(w, "\n%-8s %8s %8s %8s %8s %8s %8s %12s\n",
		"class", "sent", "ok", "miss", "shed", "reject", "error", "goodput")
	row := func(name string, sent, ok, miss, shed, rej, errs int, goodput float64) {
		fmt.Fprintf(w, "%-8s %8d %8d %8d %8d %8d %8d %9.1f/s\n",
			name, sent, ok, miss, shed, rej, errs, goodput)
	}
	for _, name := range []string{"high", "low"} {
		if c, ok := r.Classes[name]; ok && c.Sent > 0 {
			row(name, c.Sent, c.OK, c.DeadlineMiss, c.Shed, c.Rejected, c.Errors, c.GoodputRPS)
		}
	}
	row("total", r.Sent, r.OK, r.DeadlineMiss, r.Shed, r.Rejected, r.Errors, r.GoodputRPS)
	if r.Latency.Count > 0 {
		fmt.Fprintf(w, "\nlatency (ms over %d answered): p50 %.2f  p95 %.2f  p99 %.2f  p99.9 %.2f  max %.2f\n",
			r.Latency.Count, r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.P999, r.Latency.Max)
	}
}
