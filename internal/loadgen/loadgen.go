// Package loadgen is an open-loop load generator for the fleet tier: it
// offers requests at a configured arrival rate regardless of how fast the
// system answers (closed-loop generators slow down with the system under
// test and hide saturation — the coordinated-omission trap), stamps each
// request with a priority class and deadline, and classifies every reply
// into ok / deadline-miss / shed / rejected / error so the goodput-vs-offered
// curve and the shed breakdown fall straight out of one run.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"condor/internal/fleet"
	"condor/internal/obs"
)

// Arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps — the memoryless
	// process that models independent users.
	ArrivalPoisson = "poisson"
	// ArrivalFixed spaces arrivals exactly 1/rate apart.
	ArrivalFixed = "fixed"
)

// Config shapes one load-generation run.
type Config struct {
	// TargetURL is the router (or node) base URL; requests go to /infer.
	TargetURL string
	// RateRPS is the offered arrival rate (required, > 0).
	RateRPS float64
	// Duration is how long arrivals are generated (default 10s).
	Duration time.Duration
	// Arrival is ArrivalPoisson (default) or ArrivalFixed.
	Arrival string
	// Body is the request body each arrival POSTs (required).
	Body []byte
	// DeadlineMs is the per-request deadline; 0 disables deadlines. A 200
	// that arrives after its deadline is a deadline-miss, not goodput.
	DeadlineMs float64
	// HighFraction is the share of arrivals sent high-priority (default 1.0;
	// the rest carry X-Condor-Priority: low).
	HighFraction float64
	// Model sets X-Condor-Model on every request when non-empty.
	Model string
	// Timeout bounds one request when no deadline applies (default 30s).
	Timeout time.Duration
	// Seed makes the arrival process and priority mix reproducible
	// (default 1).
	Seed int64
}

func (c *Config) applyDefaults() error {
	if c.TargetURL == "" {
		return fmt.Errorf("loadgen: TargetURL is required")
	}
	if c.RateRPS <= 0 {
		return fmt.Errorf("loadgen: RateRPS must be > 0 (got %v)", c.RateRPS)
	}
	if len(c.Body) == 0 {
		return fmt.Errorf("loadgen: Body is required")
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Arrival != ArrivalPoisson && c.Arrival != ArrivalFixed {
		return fmt.Errorf("loadgen: unknown arrival process %q", c.Arrival)
	}
	if c.HighFraction <= 0 || c.HighFraction > 1 {
		c.HighFraction = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Outcome classes. Every sent request lands in exactly one.
const (
	OutcomeOK           = "ok"            // 200 within deadline
	OutcomeDeadlineMiss = "deadline_miss" // 200 too late, or timed out in flight
	OutcomeShed         = "shed"          // router admission shed (typed 503)
	OutcomeRejected     = "rejected"      // backpressure (429)
	OutcomeError        = "error"         // anything else
)

// rec is one classified request.
type rec struct {
	class     string // priority class: "high" | "low"
	outcome   string
	latencyMs float64 // set for every answered request
}

// Run offers load per cfg and blocks until every in-flight request settles.
// Cancelling ctx stops new arrivals; requests already in flight still
// complete and are counted.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	return g.run(ctx)
}

type generator struct {
	cfg    Config
	client *http.Client
	rng    *rand.Rand

	mu   sync.Mutex
	recs []rec
}

func (g *generator) run(ctx context.Context) (*Report, error) {
	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(g.cfg.Duration)
	sent := 0

	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C

arrivals:
	for time.Now().Before(end) {
		if ctx.Err() != nil {
			break
		}
		high := g.rng.Float64() < g.cfg.HighFraction
		sent++
		wg.Add(1)
		go func(hi bool) {
			defer wg.Done()
			g.record(g.fire(ctx, hi))
		}(high)

		timer.Reset(g.gap())
		select {
		case <-ctx.Done():
			break arrivals
		case <-timer.C:
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := g.report(sent, elapsed)
	// The zero-silent-drop invariant: every arrival must be accounted for in
	// exactly one outcome bucket. A mismatch is a generator or fleet bug and
	// must fail loudly, never average away.
	counted := rep.OK + rep.DeadlineMiss + rep.Shed + rep.Rejected + rep.Errors
	if counted != rep.Sent {
		return rep, fmt.Errorf("loadgen: accounting mismatch: sent %d but classified %d (silent drop?)",
			rep.Sent, counted)
	}
	return rep, nil
}

// gap draws the next inter-arrival delay.
func (g *generator) gap() time.Duration {
	period := float64(time.Second) / g.cfg.RateRPS
	if g.cfg.Arrival == ArrivalFixed {
		return time.Duration(period)
	}
	return time.Duration(g.rng.ExpFloat64() * period)
}

// fire sends one request and classifies the reply.
func (g *generator) fire(ctx context.Context, high bool) rec {
	r := rec{class: "high"}
	if !high {
		r.class = "low"
	}

	cancel := func() {}
	if g.cfg.DeadlineMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(g.cfg.DeadlineMs*float64(time.Millisecond)))
	}
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.cfg.TargetURL+"/infer", bytes.NewReader(g.cfg.Body))
	if err != nil {
		r.outcome = OutcomeError
		return r
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, obs.NewRequestID())
	if !high {
		req.Header.Set(fleet.PriorityHeader, "low")
	}
	if g.cfg.DeadlineMs > 0 {
		req.Header.Set(fleet.DeadlineHeader, fmt.Sprintf("%.0f", g.cfg.DeadlineMs))
	}
	if g.cfg.Model != "" {
		req.Header.Set(fleet.ModelHeader, g.cfg.Model)
	}

	t0 := time.Now()
	resp, err := g.client.Do(req)
	r.latencyMs = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		// The transport gave up: against a deadline that is a miss (the
		// open-loop arrival waited its full budget), otherwise an error.
		if g.cfg.DeadlineMs > 0 && ctx.Err() != nil {
			r.outcome = OutcomeDeadlineMiss
		} else {
			r.outcome = OutcomeError
		}
		return r
	}
	defer resp.Body.Close()
	var body fleet.RouterError
	json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck // classification below tolerates empty

	switch {
	case resp.StatusCode == http.StatusOK:
		if g.cfg.DeadlineMs > 0 && r.latencyMs > g.cfg.DeadlineMs {
			r.outcome = OutcomeDeadlineMiss
		} else {
			r.outcome = OutcomeOK
		}
	case body.Code == fleet.CodeShedLowPriority:
		r.outcome = OutcomeShed
	case resp.StatusCode == http.StatusTooManyRequests:
		r.outcome = OutcomeRejected
	default:
		r.outcome = OutcomeError
	}
	return r
}

func (g *generator) record(r rec) {
	g.mu.Lock()
	g.recs = append(g.recs, r)
	g.mu.Unlock()
}
