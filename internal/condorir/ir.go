// Package condorir defines Condor's internal network representation: a JSON
// document that resembles the Caffe prototxt but additionally carries the
// hardware knobs the core logic needs (target board, operating frequency,
// per-layer parallelism and PE mapping), plus the external weights file
// format that is loaded dynamically at accelerator runtime — so a network
// can be re-trained without re-synthesising the accelerator, as the paper
// prescribes.
package condorir

import (
	"encoding/json"
	"fmt"

	"condor/internal/caffe"
	"condor/internal/nn"
	"condor/internal/tensor"
)

// Parallelism describes how many input feature maps a PE reads concurrently
// (In) and how many output feature maps it computes in parallel (Out) — the
// paper's inter-layer parallelism knobs. 1/1 is the sequential configuration
// used for the Table 1 deployments.
type Parallelism struct {
	In  int `json:"in"`
	Out int `json:"out"`
}

// Normalize maps the zero value to the sequential 1/1 configuration.
func (p Parallelism) Normalize() Parallelism {
	if p.In <= 0 {
		p.In = 1
	}
	if p.Out <= 0 {
		p.Out = 1
	}
	return p
}

// Layer is one layer entry of the network representation.
type Layer struct {
	Name string `json:"name"`
	// Type uses Caffe type strings: Convolution, MaxPooling, AvgPooling,
	// InnerProduct, ReLU, Sigmoid, TanH, Softmax, LogSoftMax.
	Type string `json:"type"`

	KernelSize int  `json:"kernel_size,omitempty"`
	Stride     int  `json:"stride,omitempty"`
	Pad        int  `json:"pad,omitempty"`
	NumOutput  int  `json:"num_output,omitempty"`
	Bias       bool `json:"bias,omitempty"`

	// Parallelism selects the feature-map port counts of the PE this layer
	// runs on.
	Parallelism Parallelism `json:"parallelism"`

	// Algorithm selects the convolution algorithm for Convolution layers:
	// "direct" (default when empty), "im2col_gemm" or "winograd_f23".
	// Design-space exploration writes its per-layer choice back here, so a
	// serialized network reproduces a DSE-selected build deterministically.
	Algorithm string `json:"algorithm,omitempty"`

	// PEGroup assigns the layer to a physical PE. Layers sharing a group are
	// fused onto one PE (time-multiplexed with an outer layer loop);
	// distinct groups are separate concurrently-active PEs. -1 selects the
	// default 1:1 mapping.
	PEGroup int `json:"pe_group"`
}

// InputShape is the CHW input declaration of the network.
type InputShape struct {
	Channels int `json:"channels"`
	Height   int `json:"height"`
	Width    int `json:"width"`
}

// Network is the Condor-specific network representation (the output of the
// frontend tier and the input of the core logic).
type Network struct {
	Name string `json:"name"`

	// Board is the deployment target identifier from the board catalogue
	// (e.g. "aws-f1-vu9p").
	Board string `json:"board"`

	// FrequencyMHz is the desired operating frequency; the achieved
	// frequency after timing closure may be lower.
	FrequencyMHz float64 `json:"frequency_mhz"`

	Input  InputShape `json:"input"`
	Layers []Layer    `json:"layers"`
}

// kindByType maps IR type strings to nn layer kinds.
var kindByType = map[string]nn.Kind{
	"Convolution":  nn.Conv,
	"MaxPooling":   nn.MaxPool,
	"AvgPooling":   nn.AvgPool,
	"InnerProduct": nn.FullyConnected,
	"ReLU":         nn.ReLU,
	"Sigmoid":      nn.Sigmoid,
	"TanH":         nn.TanH,
	"Softmax":      nn.SoftMax,
	"LogSoftMax":   nn.LogSoftMax,
}

// typeByKind is the inverse of kindByType.
var typeByKind = func() map[nn.Kind]string {
	m := make(map[nn.Kind]string, len(kindByType))
	for s, k := range kindByType {
		m[k] = s
	}
	return m
}()

// Kind resolves the layer's nn kind.
func (l *Layer) Kind() (nn.Kind, error) {
	k, ok := kindByType[l.Type]
	if !ok {
		return 0, fmt.Errorf("condorir: layer %q has unknown type %q", l.Name, l.Type)
	}
	return k, nil
}

// Validate checks structural well-formedness of the representation.
func (n *Network) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("condorir: network name is required")
	}
	if n.Input.Channels <= 0 || n.Input.Height <= 0 || n.Input.Width <= 0 {
		return fmt.Errorf("condorir: network %q has invalid input %+v", n.Name, n.Input)
	}
	if n.FrequencyMHz <= 0 {
		return fmt.Errorf("condorir: network %q requires a positive operating frequency", n.Name)
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("condorir: network %q has no layers", n.Name)
	}
	seen := make(map[string]bool, len(n.Layers))
	for i := range n.Layers {
		l := &n.Layers[i]
		if l.Name == "" {
			return fmt.Errorf("condorir: layer %d has no name", i)
		}
		if seen[l.Name] {
			return fmt.Errorf("condorir: duplicate layer name %q", l.Name)
		}
		seen[l.Name] = true
		kind, err := l.Kind()
		if err != nil {
			return err
		}
		if kind.IsFeatureExtraction() && l.KernelSize <= 0 {
			return fmt.Errorf("condorir: layer %q requires kernel_size", l.Name)
		}
		if (kind == nn.Conv || kind == nn.FullyConnected) && l.NumOutput <= 0 {
			return fmt.Errorf("condorir: layer %q requires num_output", l.Name)
		}
		p := l.Parallelism.Normalize()
		if p.In < 1 || p.Out < 1 {
			return fmt.Errorf("condorir: layer %q has invalid parallelism %+v", l.Name, l.Parallelism)
		}
		if l.Algorithm != "" {
			if kind != nn.Conv {
				return fmt.Errorf("condorir: layer %q: algorithm %q is only valid on Convolution layers", l.Name, l.Algorithm)
			}
			switch l.Algorithm {
			case "direct", "im2col_gemm", "winograd_f23":
			default:
				return fmt.Errorf("condorir: layer %q: unknown algorithm %q (want direct, im2col_gemm or winograd_f23)", l.Name, l.Algorithm)
			}
		}
	}
	// Check shape propagation by building a weightless skeleton.
	if _, err := n.Shapes(); err != nil {
		return err
	}
	return nil
}

// Shapes returns the input shape of every layer plus the final output shape
// (len(Layers)+1 entries).
func (n *Network) Shapes() ([]nn.Shape, error) {
	shapes := make([]nn.Shape, 0, len(n.Layers)+1)
	cur := nn.Shape{Channels: n.Input.Channels, Height: n.Input.Height, Width: n.Input.Width}
	shapes = append(shapes, cur)
	for i := range n.Layers {
		l := &n.Layers[i]
		kind, err := l.Kind()
		if err != nil {
			return nil, err
		}
		skel := nn.Layer{
			Name: l.Name, Kind: kind,
			Kernel: l.KernelSize, Stride: defaultStride(l), Pad: l.Pad,
			OutputCount: l.NumOutput,
		}
		cur, err = skel.OutputShape(cur)
		if err != nil {
			return nil, err
		}
		shapes = append(shapes, cur)
	}
	return shapes, nil
}

func defaultStride(l *Layer) int {
	if l.Stride <= 0 {
		return 1
	}
	return l.Stride
}

// MarshalJSON is the canonical serialisation (indented for readability, as
// the format is user-editable per the paper's manual input method).
func (n *Network) ToJSON() ([]byte, error) {
	return json.MarshalIndent(n, "", "  ")
}

// FromJSON parses and validates a network representation document.
func FromJSON(data []byte) (*Network, error) {
	var n Network
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("condorir: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// FromCaffe translates a parsed Caffe model into the Condor representation
// plus its weight set (frontend "Input Analysis" step). Board and frequency
// are the deployment hints supplied alongside the model.
func FromCaffe(m *caffe.Model, board string, freqMHz float64) (*Network, *WeightSet, error) {
	net, err := m.ToNetwork()
	if err != nil {
		return nil, nil, err
	}
	return FromNN(net, board, freqMHz)
}

// FromNN translates an nn.Network (with weights attached) into the IR and
// weight set.
func FromNN(net *nn.Network, board string, freqMHz float64) (*Network, *WeightSet, error) {
	ir := &Network{
		Name:         net.Name,
		Board:        board,
		FrequencyMHz: freqMHz,
		Input:        InputShape{Channels: net.Input.Channels, Height: net.Input.Height, Width: net.Input.Width},
	}
	ws := NewWeightSet()
	for i, l := range net.Layers {
		typ, ok := typeByKind[l.Kind]
		if !ok {
			return nil, nil, fmt.Errorf("condorir: layer %q: unsupported kind %v", l.Name, l.Kind)
		}
		ir.Layers = append(ir.Layers, Layer{
			Name:        l.Name,
			Type:        typ,
			KernelSize:  l.Kernel,
			Stride:      l.Stride,
			Pad:         l.Pad,
			NumOutput:   l.OutputCount,
			Bias:        l.Bias != nil,
			Parallelism: Parallelism{In: 1, Out: 1},
			PEGroup:     -1,
		})
		if l.Weights != nil {
			ws.Put(l.Name, EntryWeights, l.Weights)
		}
		if l.Bias != nil {
			ws.Put(l.Name, EntryBias, l.Bias)
		}
		_ = i
	}
	if err := ir.Validate(); err != nil {
		return nil, nil, err
	}
	return ir, ws, nil
}

// BuildNN materialises an executable nn.Network from the representation and
// a weight set (core-logic side of the frontend contract).
func (n *Network) BuildNN(ws *WeightSet) (*nn.Network, error) {
	shapes, err := n.Shapes()
	if err != nil {
		return nil, err
	}
	net := &nn.Network{
		Name:  n.Name,
		Input: shapes[0],
	}
	for i := range n.Layers {
		l := &n.Layers[i]
		kind, err := l.Kind()
		if err != nil {
			return nil, err
		}
		layer := &nn.Layer{
			Name: l.Name, Kind: kind,
			Kernel: l.KernelSize, Stride: defaultStride(l), Pad: l.Pad,
			OutputCount: l.NumOutput,
		}
		in := shapes[i]
		switch kind {
		case nn.Conv:
			w, ok := ws.Get(l.Name, EntryWeights)
			if !ok {
				return nil, fmt.Errorf("condorir: weights for layer %q missing from weight set", l.Name)
			}
			layer.Weights, err = w.Tensor(l.NumOutput, in.Channels, l.KernelSize, l.KernelSize)
			if err != nil {
				return nil, fmt.Errorf("condorir: layer %q: %w", l.Name, err)
			}
		case nn.FullyConnected:
			w, ok := ws.Get(l.Name, EntryWeights)
			if !ok {
				return nil, fmt.Errorf("condorir: weights for layer %q missing from weight set", l.Name)
			}
			layer.Weights, err = w.Tensor(l.NumOutput, in.Volume())
			if err != nil {
				return nil, fmt.Errorf("condorir: layer %q: %w", l.Name, err)
			}
		}
		if l.Bias {
			b, ok := ws.Get(l.Name, EntryBias)
			if !ok {
				return nil, fmt.Errorf("condorir: bias for layer %q missing from weight set", l.Name)
			}
			layer.Bias, err = b.Tensor(l.NumOutput)
			if err != nil {
				return nil, fmt.Errorf("condorir: layer %q bias: %w", l.Name, err)
			}
		}
		net.Layers = append(net.Layers, layer)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// PEGroups resolves the layer→PE assignment: the returned slice has one
// entry per PE, each listing the indices of the layers mapped onto it.
// Layers with PEGroup -1 each get their own PE (full intra-layer
// parallelism, the paper's default); explicit group values cluster layers,
// which must be contiguous and of compatible stages (features extraction
// layers fuse only with features extraction layers, classification with
// classification, matching the methodology in Section 3.2 of the paper).
// Activation layers always fold into the PE of the preceding layer.
func (n *Network) PEGroups() ([][]int, error) {
	var groups [][]int
	groupOf := make(map[int]int) // explicit PEGroup value -> index into groups
	for i := range n.Layers {
		l := &n.Layers[i]
		kind, err := l.Kind()
		if err != nil {
			return nil, err
		}
		if kind.IsActivation() || kind == nn.SoftMax || kind == nn.LogSoftMax {
			// Fold into the previous PE; a leading activation is meaningless.
			if len(groups) == 0 {
				return nil, fmt.Errorf("condorir: network %q begins with activation layer %q", n.Name, l.Name)
			}
			groups[len(groups)-1] = append(groups[len(groups)-1], i)
			continue
		}
		if l.PEGroup < 0 {
			groups = append(groups, []int{i})
			continue
		}
		gi, ok := groupOf[l.PEGroup]
		if !ok {
			groups = append(groups, []int{i})
			groupOf[l.PEGroup] = len(groups) - 1
			continue
		}
		if gi != len(groups)-1 {
			return nil, fmt.Errorf("condorir: pe_group %d of layer %q is not contiguous", l.PEGroup, l.Name)
		}
		// Stage compatibility: all compute layers in a group share a stage.
		firstKind, _ := n.Layers[groups[gi][0]].Kind()
		if firstKind.IsFeatureExtraction() != kind.IsFeatureExtraction() {
			return nil, fmt.Errorf("condorir: pe_group %d mixes features-extraction and classification layers", l.PEGroup)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups, nil
}

// tensorFromEntry is a helper used by BuildNN via WeightEntry.Tensor.
func tensorFromEntry(data []float32, dims ...int) (*tensor.Tensor, error) {
	if tensor.Volume(dims) != len(data) {
		return nil, fmt.Errorf("weight entry has %d values, shape %v needs %d", len(data), dims, tensor.Volume(dims))
	}
	return tensor.FromSlice(data, dims...), nil
}
