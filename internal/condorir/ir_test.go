package condorir

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"condor/internal/nn"
	"condor/internal/tensor"
)

// testIR builds a small valid representation used across tests.
func testIR() *Network {
	return &Network{
		Name:         "tiny",
		Board:        "aws-f1-vu9p",
		FrequencyMHz: 100,
		Input:        InputShape{Channels: 1, Height: 8, Width: 8},
		Layers: []Layer{
			{Name: "conv1", Type: "Convolution", KernelSize: 3, Stride: 1, NumOutput: 2, Bias: true, PEGroup: -1},
			{Name: "relu1", Type: "ReLU", PEGroup: -1},
			{Name: "pool1", Type: "MaxPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
			{Name: "fc1", Type: "InnerProduct", NumOutput: 4, Bias: true, PEGroup: -1},
			{Name: "prob", Type: "LogSoftMax", PEGroup: -1},
		},
	}
}

// testWeights builds a matching weight set.
func testWeights(seed int64) *WeightSet {
	rng := rand.New(rand.NewSource(seed))
	ws := NewWeightSet()
	w := tensor.New(2, 1, 3, 3)
	w.FillRandom(rng, 0.5)
	ws.Put("conv1", EntryWeights, w)
	b := tensor.New(2)
	b.FillRandom(rng, 0.5)
	ws.Put("conv1", EntryBias, b)
	fw := tensor.New(4, 18)
	fw.FillRandom(rng, 0.5)
	ws.Put("fc1", EntryWeights, fw)
	fb := tensor.New(4)
	fb.FillRandom(rng, 0.5)
	ws.Put("fc1", EntryBias, fb)
	return ws
}

func TestValidateOK(t *testing.T) {
	if err := testIR().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFailures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Network)
	}{
		{"no name", func(n *Network) { n.Name = "" }},
		{"bad input", func(n *Network) { n.Input.Channels = 0 }},
		{"no freq", func(n *Network) { n.FrequencyMHz = 0 }},
		{"no layers", func(n *Network) { n.Layers = nil }},
		{"dup layer name", func(n *Network) { n.Layers[1].Name = "conv1" }},
		{"unknown type", func(n *Network) { n.Layers[0].Type = "Bogus" }},
		{"missing kernel", func(n *Network) { n.Layers[0].KernelSize = 0 }},
		{"missing num_output", func(n *Network) { n.Layers[0].NumOutput = 0 }},
		{"kernel too big", func(n *Network) { n.Layers[0].KernelSize = 20 }},
	}
	for _, tc := range cases {
		n := testIR()
		tc.mut(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestShapes(t *testing.T) {
	shapes, err := testIR().Shapes()
	if err != nil {
		t.Fatal(err)
	}
	want := []nn.Shape{
		{Channels: 1, Height: 8, Width: 8},
		{Channels: 2, Height: 6, Width: 6},
		{Channels: 2, Height: 6, Width: 6},
		{Channels: 2, Height: 3, Width: 3},
		{Channels: 4, Height: 1, Width: 1},
		{Channels: 4, Height: 1, Width: 1},
	}
	if !reflect.DeepEqual(shapes, want) {
		t.Fatalf("shapes = %v", shapes)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	n := testIR()
	data, err := n.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n, n2) {
		t.Fatalf("JSON round trip mismatch:\n%+v\n%+v", n, n2)
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	if _, err := FromJSON([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := FromJSON([]byte(`{not json`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestBuildNNAndForward(t *testing.T) {
	ir := testIR()
	ws := testWeights(1)
	net, err := ir.BuildNN(ws)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 8, 8)
	in.FillRandom(rand.New(rand.NewSource(2)), 1)
	out, err := net.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("output len %d", out.Len())
	}
}

func TestBuildNNMissingWeights(t *testing.T) {
	ir := testIR()
	ws := testWeights(1)
	ws.entries = map[string]*WeightEntry{} // empty
	if _, err := ir.BuildNN(ws); err == nil {
		t.Fatal("expected missing-weights error")
	}
}

func TestBuildNNWrongWeightVolume(t *testing.T) {
	ir := testIR()
	ws := testWeights(1)
	bad := tensor.New(2, 1, 5, 5)
	ws.Put("conv1", EntryWeights, bad)
	if _, err := ir.BuildNN(ws); err == nil {
		t.Fatal("expected weight-volume error")
	}
}

func TestFromNNRoundTrip(t *testing.T) {
	ir := testIR()
	ws := testWeights(3)
	net, err := ir.BuildNN(ws)
	if err != nil {
		t.Fatal(err)
	}
	ir2, ws2, err := FromNN(net, "aws-f1-vu9p", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir2.Layers) != len(ir.Layers) {
		t.Fatalf("layer count %d vs %d", len(ir2.Layers), len(ir.Layers))
	}
	net2, err := ir2.BuildNN(ws2)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 8, 8)
	in.FillRandom(rand.New(rand.NewSource(4)), 1)
	a, err := net.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net2.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("round-tripped network computes different outputs")
	}
}

func TestPEGroupsDefaultOnePEPerLayer(t *testing.T) {
	groups, err := testIR().PEGroups()
	if err != nil {
		t.Fatal(err)
	}
	// conv1+relu1 fold together; pool1; fc1+prob fold together.
	want := [][]int{{0, 1}, {2}, {3, 4}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestPEGroupsFusion(t *testing.T) {
	n := testIR()
	n.Layers[0].PEGroup = 0
	n.Layers[2].PEGroup = 0
	groups, err := n.PEGroups()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestPEGroupsRejectMixedStages(t *testing.T) {
	n := testIR()
	n.Layers[2].PEGroup = 1 // pool1
	n.Layers[3].PEGroup = 1 // fc1 — classification cannot fuse with features
	if _, err := n.PEGroups(); err == nil {
		t.Fatal("expected mixed-stage fusion error")
	}
}

func TestPEGroupsRejectNonContiguous(t *testing.T) {
	n := &Network{
		Name: "nc", Board: "b", FrequencyMHz: 100,
		Input: InputShape{Channels: 1, Height: 12, Width: 12},
		Layers: []Layer{
			{Name: "c1", Type: "Convolution", KernelSize: 3, NumOutput: 2, PEGroup: 5},
			{Name: "c2", Type: "Convolution", KernelSize: 3, NumOutput: 2, PEGroup: -1},
			{Name: "c3", Type: "Convolution", KernelSize: 3, NumOutput: 2, PEGroup: 5},
		},
	}
	if _, err := n.PEGroups(); err == nil {
		t.Fatal("expected non-contiguous group error")
	}
}

func TestPEGroupsRejectLeadingActivation(t *testing.T) {
	n := testIR()
	n.Layers = n.Layers[1:] // starts with relu
	if _, err := n.PEGroups(); err == nil {
		t.Fatal("expected leading-activation error")
	}
}

func TestWeightsFileRoundTrip(t *testing.T) {
	ws := testWeights(5)
	var buf bytes.Buffer
	if err := ws.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ws2, err := ReadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ws2.Len() != ws.Len() {
		t.Fatalf("entry count %d vs %d", ws2.Len(), ws.Len())
	}
	for _, e := range ws.Entries() {
		e2, ok := ws2.Get(e.Layer, e.Kind)
		if !ok {
			t.Fatalf("entry %s/%s missing after round trip", e.Layer, e.Kind)
		}
		if !reflect.DeepEqual(e.Dims, e2.Dims) || !reflect.DeepEqual(e.Data, e2.Data) {
			t.Fatalf("entry %s/%s changed", e.Layer, e.Kind)
		}
	}
}

func TestWeightsFileDetectsCorruption(t *testing.T) {
	ws := testWeights(6)
	var buf bytes.Buffer
	if err := ws.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-10] ^= 0xff // flip a bit in the last entry's payload
	if _, err := ReadWeights(bytes.NewReader(data)); err == nil {
		t.Fatal("expected checksum error")
	}
}

func TestWeightsFileRejectsBadMagic(t *testing.T) {
	if _, err := ReadWeights(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestWeightsFileRejectsTruncation(t *testing.T) {
	ws := testWeights(7)
	var buf bytes.Buffer
	if err := ws.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadWeights(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("expected truncation error")
	}
}

// Property: weight sets with random entries survive write→read intact.
func TestWeightsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := NewWeightSet()
		n := rng.Intn(6) + 1
		for i := 0; i < n; i++ {
			dims := []int{rng.Intn(4) + 1, rng.Intn(4) + 1}
			tt := tensor.New(dims...)
			tt.FillRandom(rng, 2)
			name := string(rune('a' + i))
			ws.Put(name, EntryKind(rng.Intn(2)), tt)
		}
		var buf bytes.Buffer
		if err := ws.Write(&buf); err != nil {
			return false
		}
		ws2, err := ReadWeights(&buf)
		if err != nil {
			return false
		}
		if ws2.Len() != ws.Len() {
			return false
		}
		for _, e := range ws.Entries() {
			e2, ok := ws2.Get(e.Layer, e.Kind)
			if !ok || !reflect.DeepEqual(e.Data, e2.Data) || !reflect.DeepEqual(e.Dims, e2.Dims) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelismNormalize(t *testing.T) {
	p := Parallelism{}.Normalize()
	if p.In != 1 || p.Out != 1 {
		t.Fatalf("normalized = %+v", p)
	}
	p = Parallelism{In: 4, Out: 2}.Normalize()
	if p.In != 4 || p.Out != 2 {
		t.Fatalf("normalize changed explicit values: %+v", p)
	}
}

func TestWeightSetTotalBytes(t *testing.T) {
	ws := NewWeightSet()
	tt := tensor.New(10)
	ws.Put("l", EntryWeights, tt)
	if ws.TotalBytes() != 40 {
		t.Fatalf("TotalBytes = %d, want 40", ws.TotalBytes())
	}
}

func TestGeometryFLOPs(t *testing.T) {
	ir := testIR()
	ws := testWeights(9)
	net, err := ir.BuildNN(ws)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ir.FLOPs()
	if err != nil {
		t.Fatal(err)
	}
	if want := net.TotalFLOPs(); got != want {
		t.Fatalf("geometry FLOPs %d != nn accounting %d", got, want)
	}
	feat, err := ir.FeatureFLOPs()
	if err != nil {
		t.Fatal(err)
	}
	if wantFeat := net.FeatureExtractionFLOPs(); feat != wantFeat {
		t.Fatalf("feature FLOPs %d != nn accounting %d", feat, wantFeat)
	}
	if feat >= got {
		t.Fatal("feature FLOPs must be a strict subset")
	}
}

func TestGeometryFLOPsInvalidLayer(t *testing.T) {
	ir := testIR()
	ir.Layers[0].Type = "Bogus"
	if _, err := ir.FLOPs(); err == nil {
		t.Fatal("expected error for unknown layer type")
	}
}
