package condorir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"condor/internal/tensor"
)

// EntryKind distinguishes weight from bias entries in the weight set.
type EntryKind uint8

const (
	EntryWeights EntryKind = 0
	EntryBias    EntryKind = 1
)

func (k EntryKind) String() string {
	if k == EntryBias {
		return "bias"
	}
	return "weights"
}

// WeightEntry is one named array in the weight set.
type WeightEntry struct {
	Layer string
	Kind  EntryKind
	Dims  []int
	Data  []float32
}

// Tensor materialises the entry with the expected dims, validating that the
// stored element count matches.
func (e *WeightEntry) Tensor(dims ...int) (*tensor.Tensor, error) {
	if len(e.Dims) > 0 && tensor.Volume(e.Dims) != tensor.Volume(dims) {
		return nil, fmt.Errorf("condorir: %s/%s stored shape %v incompatible with requested %v",
			e.Layer, e.Kind, e.Dims, dims)
	}
	return tensorFromEntry(e.Data, dims...)
}

// WeightSet holds the external weights and biases of a network, keyed by
// layer name. The paper keeps these outside the bitstream so that a network
// update does not require re-synthesis; the datamover streams them in at
// runtime.
type WeightSet struct {
	entries map[string]*WeightEntry
}

// NewWeightSet returns an empty weight set.
func NewWeightSet() *WeightSet { return &WeightSet{entries: make(map[string]*WeightEntry)} }

func key(layer string, kind EntryKind) string { return layer + "\x00" + kind.String() }

// Put stores a tensor under (layer, kind), copying its data.
func (ws *WeightSet) Put(layer string, kind EntryKind, t *tensor.Tensor) {
	data := make([]float32, t.Len())
	copy(data, t.Data())
	ws.entries[key(layer, kind)] = &WeightEntry{
		Layer: layer, Kind: kind,
		Dims: append([]int(nil), t.Shape()...),
		Data: data,
	}
}

// PutRaw stores a raw float slice with explicit dims (no copy).
func (ws *WeightSet) PutRaw(layer string, kind EntryKind, dims []int, data []float32) {
	ws.entries[key(layer, kind)] = &WeightEntry{Layer: layer, Kind: kind, Dims: dims, Data: data}
}

// Get returns the entry for (layer, kind).
func (ws *WeightSet) Get(layer string, kind EntryKind) (*WeightEntry, bool) {
	e, ok := ws.entries[key(layer, kind)]
	return e, ok
}

// Len returns the number of entries.
func (ws *WeightSet) Len() int { return len(ws.entries) }

// Entries returns all entries sorted by (layer, kind) for deterministic
// serialisation.
func (ws *WeightSet) Entries() []*WeightEntry {
	out := make([]*WeightEntry, 0, len(ws.entries))
	for _, e := range ws.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// TotalBytes returns the serialised payload size of all weight data.
func (ws *WeightSet) TotalBytes() int64 {
	var n int64
	for _, e := range ws.entries {
		n += int64(4 * len(e.Data))
	}
	return n
}

// The Condor weights file format ("CNDW"): a little-endian container of
// named float32 arrays with per-entry CRC32 integrity checks.
//
//	magic   [4]byte  "CNDW"
//	version uint32   (1)
//	count   uint32
//	entries:
//	  nameLen uint16, name []byte
//	  kind    uint8
//	  rank    uint8, dims []uint32
//	  n       uint32, data [n]float32
//	  crc     uint32  (CRC32-IEEE of the data bytes)

var weightsMagic = [4]byte{'C', 'N', 'D', 'W'}

const weightsVersion = 1

// Write serialises the weight set.
func (ws *WeightSet) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(weightsMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(weightsVersion)); err != nil {
		return err
	}
	entries := ws.Entries()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if len(e.Layer) > math.MaxUint16 {
			return fmt.Errorf("condorir: layer name %q too long", e.Layer)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(e.Layer))); err != nil {
			return err
		}
		if _, err := bw.WriteString(e.Layer); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if len(e.Dims) > math.MaxUint8 {
			return fmt.Errorf("condorir: entry %s/%s rank %d too large", e.Layer, e.Kind, len(e.Dims))
		}
		if err := bw.WriteByte(byte(len(e.Dims))); err != nil {
			return err
		}
		for _, d := range e.Dims {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(e.Data))); err != nil {
			return err
		}
		buf := make([]byte, 4*len(e.Data))
		for i, v := range e.Data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(buf)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWeights parses a Condor weights file, verifying per-entry checksums.
func ReadWeights(r io.Reader) (*WeightSet, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("condorir: weights file: %w", err)
	}
	if magic != weightsMagic {
		return nil, fmt.Errorf("condorir: bad weights magic %q", magic[:])
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != weightsVersion {
		return nil, fmt.Errorf("condorir: unsupported weights version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	ws := NewWeightSet()
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("condorir: weights entry %d: %w", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		kindB, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if kindB > 1 {
			return nil, fmt.Errorf("condorir: weights entry %q: bad kind %d", name, kindB)
		}
		rank, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		dims := make([]int, rank)
		for d := range dims {
			var v uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, err
			}
			dims[d] = int(v)
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if len(dims) > 0 && uint32(tensor.Volume(dims)) != n {
			return nil, fmt.Errorf("condorir: weights entry %q: dims %v inconsistent with %d values", name, dims, n)
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("condorir: weights entry %q: %w", name, err)
		}
		var crc uint32
		if err := binary.Read(br, binary.LittleEndian, &crc); err != nil {
			return nil, err
		}
		if got := crc32.ChecksumIEEE(buf); got != crc {
			return nil, fmt.Errorf("condorir: weights entry %q: checksum mismatch (file corrupt)", name)
		}
		data := make([]float32, n)
		for j := range data {
			data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		ws.PutRaw(string(name), EntryKind(kindB), dims, data)
	}
	return ws, nil
}
