package condorir

import "condor/internal/nn"

// FLOPs returns the floating-point operations of one forward pass computed
// from geometry alone (no weights needed) — used by the performance and
// exploration layers for networks whose weights are not materialised.
func (n *Network) FLOPs() (int64, error) {
	return n.flops(false)
}

// FeatureFLOPs returns the FLOPs of the features-extraction stage only (the
// quantity the paper's Table 2 reports throughput for).
func (n *Network) FeatureFLOPs() (int64, error) {
	return n.flops(true)
}

func (n *Network) flops(featuresOnly bool) (int64, error) {
	shapes, err := n.Shapes()
	if err != nil {
		return 0, err
	}
	var total int64
	classifier := false
	for i := range n.Layers {
		l := &n.Layers[i]
		kind, err := l.Kind()
		if err != nil {
			return 0, err
		}
		if kind.IsClassifier() {
			classifier = true
		}
		if featuresOnly && classifier {
			continue
		}
		skel := nn.Layer{
			Name: l.Name, Kind: kind,
			Kernel: l.KernelSize, Stride: defaultStride(l), Pad: l.Pad,
			OutputCount: l.NumOutput,
		}
		fl := skel.FLOPs(shapes[i])
		if l.Bias && (kind == nn.Conv || kind == nn.FullyConnected) {
			// nn.Layer.FLOPs counts the bias only when a bias tensor is
			// attached; add it from the declaration.
			fl += int64(shapes[i+1].Volume())
		}
		total += fl
	}
	return total, nil
}
