package dse

import (
	"testing"

	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/models"
	"condor/internal/perf"
	"condor/internal/quant"
)

func TestExploreImprovesLeNet(t *testing.T) {
	ir, _, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(ir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline, _, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	_, _, baseScore, err := evaluate(baseline, Options{}, quant.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if res.BottleneckCycles >= baseScore.bottleneck {
		t.Fatalf("DSE did not improve: %d vs baseline %d", res.BottleneckCycles, baseScore.bottleneck)
	}
	if !res.Report.Fits {
		t.Fatal("chosen configuration must fit the board")
	}
	if len(res.Trace) == 0 {
		t.Fatal("expected accepted moves in trace")
	}
}

func TestExploreDoesNotMutateInput(t *testing.T) {
	ir, _, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(ir, Options{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ir.Layers {
		p := ir.Layers[i].Parallelism
		if p.In > 1 || p.Out > 1 {
			t.Fatal("input IR mutated")
		}
	}
	if res.IR == ir {
		t.Fatal("result must be a copy")
	}
}

func TestExploreFeaturesOnlyObjective(t *testing.T) {
	ir := models.VGG16Features()
	res, err := Explore(ir, Options{FeaturesOnly: true, MaxIterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.BottleneckCycles <= 0 {
		t.Fatal("bottleneck must be positive")
	}
	// The explorer should have relaxed the huge early conv layers — by
	// raising ports or by switching their convolution algorithm (algorithm
	// moves are proposed first, so a short walk may be all switches).
	changed := false
	for _, l := range res.IR.Layers {
		p := l.Parallelism.Normalize()
		if p.In > 1 || p.Out > 1 || (l.Algorithm != "" && l.Algorithm != "direct") {
			changed = true
		}
	}
	if !changed {
		t.Fatal("expected parallelism or algorithm moves on VGG features")
	}
}

func TestExploreRespectsResourceBudget(t *testing.T) {
	ir, _, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	ir.Board = "zc706" // much smaller board
	res, err := Explore(ir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Fits {
		t.Fatal("configuration exceeds the small board budget")
	}
}

func TestExploreBottleneckMatchesPerf(t *testing.T) {
	ir, _, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(ir, Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := perf.Bottleneck(perf.Stages(res.Spec)); got != res.BottleneckCycles {
		t.Fatalf("bottleneck %d != perf %d", res.BottleneckCycles, got)
	}
}

func TestExploreRejectsOversizedNetwork(t *testing.T) {
	// A single conv layer with enormous parallelism demand that cannot fit
	// even sequentially on the small board: use a huge full-parallel conv.
	ir := &condorir.Network{
		Name: "huge", Board: "zc706", FrequencyMHz: 100,
		Input: condorir.InputShape{Channels: 512, Height: 64, Width: 64},
		Layers: []condorir.Layer{
			{Name: "c", Type: "Convolution", KernelSize: 11, NumOutput: 512, Bias: true, PEGroup: -1,
				Parallelism: condorir.Parallelism{In: 64, Out: 64}},
		},
	}
	if _, err := Explore(ir, Options{}); err == nil {
		t.Fatal("expected does-not-fit error")
	}
}

func TestExploreSelectsConvAlgorithm(t *testing.T) {
	ir, _, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(ir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Under the default board the im2col+GEMM lowering halves the conv
	// stage times for a bounded lane/BRAM cost, so the explorer must move at
	// least one LeNet conv layer off the direct algorithm.
	nonDirect := 0
	for _, algo := range res.Algorithms {
		if algo != string(dataflow.AlgoDirect) {
			nonDirect++
		}
	}
	if nonDirect == 0 {
		t.Fatalf("expected a non-direct algorithm choice, got %v", res.Algorithms)
	}
	// The choice is written back into the result IR, so re-evaluating that
	// IR reproduces the explored configuration exactly.
	spec, _, sc, err := evaluate(res.IR, Options{}, quant.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if sc.bottleneck != res.BottleneckCycles {
		t.Fatalf("re-evaluated bottleneck %d != explored %d", sc.bottleneck, res.BottleneckCycles)
	}
	for name, algo := range chosenAlgorithms(spec) {
		if algo != res.Algorithms[name] {
			t.Fatalf("layer %s: re-built algo %q != chosen %q", name, algo, res.Algorithms[name])
		}
	}
}

func TestExploreAlgorithmRestriction(t *testing.T) {
	ir, _, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(ir, Options{Algorithms: []dataflow.ConvAlgo{dataflow.AlgoDirect}})
	if err != nil {
		t.Fatal(err)
	}
	for name, algo := range res.Algorithms {
		if algo != string(dataflow.AlgoDirect) {
			t.Fatalf("layer %s: algorithm %q chosen despite direct-only restriction", name, algo)
		}
	}
	for _, mv := range res.Trace {
		if mv.Algorithm != "" {
			t.Fatalf("trace records algorithm move %+v despite direct-only restriction", mv)
		}
	}
}

func TestCandidateCapsAtChannelCounts(t *testing.T) {
	// A layer with 2 output channels can be parallelised at most 2-way out.
	ir := &condorir.Network{
		Name: "caps", Board: "aws-f1-vu9p", FrequencyMHz: 100,
		Input: condorir.InputShape{Channels: 1, Height: 8, Width: 8},
		Layers: []condorir.Layer{
			{Name: "c", Type: "Convolution", KernelSize: 3, NumOutput: 2, Bias: false, PEGroup: -1},
		},
	}
	res, err := Explore(ir, Options{MaxIterations: 16})
	if err != nil {
		t.Fatal(err)
	}
	p := res.IR.Layers[0].Parallelism.Normalize()
	if p.Out > 2 || p.In > 1 {
		t.Fatalf("parallelism %+v exceeds channel counts", p)
	}
}
