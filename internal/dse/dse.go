// Package dse implements the design-space exploration phase of the Condor
// automation flow. The paper performs this step manually and lists its
// automation as future work; here it is implemented: starting from the
// sequential configuration, the explorer repeatedly relaxes the bottleneck
// PE's feature-map port parallelism (the paper's inter-layer parallelism)
// while the synthesis estimate still fits the target board, converging on
// the throughput-optimal configuration the resources allow.
package dse

import (
	"fmt"

	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/hls"
	"condor/internal/nn"
	"condor/internal/perf"
	"condor/internal/quant"
)

// Options tunes the exploration.
type Options struct {
	// MaxIterations bounds the number of accepted moves (0 = default 64).
	MaxIterations int

	// FeaturesOnly restricts the objective to the features-extraction
	// sub-pipeline, the configuration of the paper's Table 2 experiment.
	FeaturesOnly bool

	// MaxPortParallelism caps the per-PE port counts (0 = default 64).
	MaxPortParallelism int

	// Precisions adds the fabric numeric format to the configuration space:
	// the parallelism walk runs once per listed precision under that
	// precision's HLS resource model (narrower words mean cheaper MACs and
	// smaller buffers, so more parallelism may fit) and lane-aware cycle
	// model (packed int8 shrinks the stream-bound stage times), and the best
	// overall configuration wins. Empty means float32 only — the legacy
	// parallelism-only exploration.
	Precisions []quant.Precision

	// Algorithms restricts the per-layer convolution algorithms the
	// explorer may assign (Winograd is additionally gated by the layer's
	// F(2,3) qualification). Empty means the full set — direct,
	// im2col_gemm, winograd_f23.
	Algorithms []dataflow.ConvAlgo
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 64
	}
	if o.MaxPortParallelism == 0 {
		o.MaxPortParallelism = 64
	}
	return o
}

// Result is the outcome of an exploration.
type Result struct {
	// IR is the input network with the chosen per-layer parallelism.
	IR *condorir.Network
	// Spec and Report describe the chosen configuration.
	Spec   *dataflow.Spec
	Report *hls.Report

	// BottleneckCycles is the steady-state initiation interval of the
	// objective pipeline (features-only when Options.FeaturesOnly).
	BottleneckCycles int64

	// Precision is the fabric numeric format of the chosen configuration
	// (Float32 unless Options.Precisions widened the space).
	Precision quant.Precision

	// Algorithms maps every convolution layer to its chosen algorithm. The
	// same choices are written back into IR.Layers[i].Algorithm, so saving
	// the result IR reproduces the configuration exactly.
	Algorithms map[string]string

	// Trace records the accepted moves for inspection.
	Trace []Move
}

// Move is one accepted exploration step: a parallelism increase (Algorithm
// empty) or a convolution-algorithm switch.
type Move struct {
	Layer       string
	Parallelism condorir.Parallelism
	Algorithm   string
	Bottleneck  int64
}

// Explore searches for the fastest configuration of ir that fits its board.
// The input IR is not modified; the result carries a configured copy. With
// Options.Precisions set, each precision gets its own parallelism walk and
// the best-scoring configuration across precisions is returned.
func Explore(ir *condorir.Network, opts Options) (*Result, error) {
	precisions := opts.Precisions
	if len(precisions) == 0 {
		precisions = []quant.Precision{quant.Float32}
	}
	var best *Result
	var bestScore score
	var firstErr error
	for _, p := range precisions {
		res, sc, err := exploreAt(ir, opts, p)
		if err != nil {
			// A precision whose sequential configuration does not fit (or is
			// bandwidth-bound) drops out of the space; fail only when every
			// precision does.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || sc.betterThan(bestScore) {
			best, bestScore = res, sc
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

// exploreAt runs the greedy parallelism walk at one fixed precision.
func exploreAt(ir *condorir.Network, opts Options, p quant.Precision) (*Result, score, error) {
	opts = opts.withDefaults()
	cur := cloneIR(ir)
	for i := range cur.Layers {
		cur.Layers[i].Parallelism = cur.Layers[i].Parallelism.Normalize()
	}

	spec, rep, sc, err := evaluate(cur, opts, p)
	if err != nil {
		return nil, score{}, err
	}
	if !rep.Fits {
		return nil, score{}, fmt.Errorf("dse: network %q does not fit board %q even in the sequential %s configuration", ir.Name, ir.Board, p)
	}
	res := &Result{IR: cur, Spec: spec, Report: rep, BottleneckCycles: sc.bottleneck, Precision: p}

	best := sc
	for iter := 0; iter < opts.MaxIterations; iter++ {
		improved := false
		// Candidate moves on every PE tied at the bottleneck. A move is
		// accepted when it lowers the bottleneck, or keeps it while lowering
		// the total stage time (which unsticks ties: halving one of several
		// equally-slow PEs is progress even before the global maximum moves).
		for _, mv := range candidateMoves(res, opts) {
			trial := cloneIR(res.IR)
			if mv.algo != "" {
				trial.Layers[mv.layerIdx].Algorithm = string(mv.algo)
			} else {
				trial.Layers[mv.layerIdx].Parallelism = mv.par
			}
			spec, rep, sc, err := evaluate(trial, opts, p)
			if err != nil || !rep.Fits || !sc.betterThan(best) {
				continue
			}
			res.IR, res.Spec, res.Report, res.BottleneckCycles = trial, spec, rep, sc.bottleneck
			best = sc
			res.Trace = append(res.Trace, Move{
				Layer:       trial.Layers[mv.layerIdx].Name,
				Parallelism: trial.Layers[mv.layerIdx].Parallelism.Normalize(),
				Algorithm:   string(mv.algo),
				Bottleneck:  sc.bottleneck,
			})
			improved = true
			break
		}
		if !improved {
			break
		}
	}
	res.Algorithms = chosenAlgorithms(res.Spec)
	return res, best, nil
}

// chosenAlgorithms collects the per-conv-layer algorithm of a configured
// spec, normalised ("" reads as direct).
func chosenAlgorithms(spec *dataflow.Spec) map[string]string {
	out := make(map[string]string)
	for _, pe := range spec.PEs {
		for _, l := range pe.Layers {
			if l.Kind == nn.Conv {
				out[l.Name] = string(l.Algo())
			}
		}
	}
	return out
}

// score orders configurations: primarily by the pipeline bottleneck, then
// by the total stage time (to make progress across tied bottlenecks).
type score struct {
	bottleneck int64
	total      int64
}

func (s score) betterThan(o score) bool {
	if s.bottleneck != o.bottleneck {
		return s.bottleneck < o.bottleneck
	}
	return s.total < o.total
}

type move struct {
	layerIdx int
	par      condorir.Parallelism
	algo     dataflow.ConvAlgo // non-empty: an algorithm switch, not a parallelism move
}

// allowedAlgos resolves Options.Algorithms, defaulting to the full set.
func allowedAlgos(opts Options) []dataflow.ConvAlgo {
	if len(opts.Algorithms) > 0 {
		return opts.Algorithms
	}
	return []dataflow.ConvAlgo{dataflow.AlgoDirect, dataflow.AlgoGEMM, dataflow.AlgoWinograd}
}

// candidateMoves proposes moves for the layers of every PE tied at the
// current bottleneck: convolution-algorithm switches first (they cost
// bounded MAC lanes and scratch BRAM, versus the multiplicative cost of a
// port doubling), then output-port and input-port doublings.
func candidateMoves(res *Result, opts Options) []move {
	stages := objectiveStages(res.Spec, opts)
	var worst int64
	for _, s := range stages {
		if s.Cycles > worst {
			worst = s.Cycles
		}
	}
	tied := make(map[string]bool)
	for _, s := range stages {
		if s.Cycles == worst {
			tied[s.Name] = true
		}
	}
	shapes, err := res.IR.Shapes()
	if err != nil {
		return nil
	}
	var out []move
	for _, pe := range res.Spec.PEs {
		if !tied[pe.ID] {
			continue
		}
		for _, l := range pe.Layers {
			irl := &res.IR.Layers[l.Index]
			p := irl.Parallelism.Normalize()
			if l.Kind == nn.Conv {
				for _, algo := range allowedAlgos(opts) {
					if algo == l.Algo() {
						continue
					}
					if algo == dataflow.AlgoWinograd && !dataflow.WinogradOK(l.Kernel, l.Stride, l.OutShape) {
						continue
					}
					out = append(out, move{layerIdx: l.Index, algo: algo})
				}
			}
			outCap := min(opts.MaxPortParallelism, maxOutPorts(&l))
			inCap := min(opts.MaxPortParallelism, shapes[l.Index].Channels)
			if 2*p.Out <= outCap {
				out = append(out, move{layerIdx: l.Index, par: condorir.Parallelism{In: p.In, Out: 2 * p.Out}})
			}
			if 2*p.In <= inCap {
				out = append(out, move{layerIdx: l.Index, par: condorir.Parallelism{In: 2 * p.In, Out: p.Out}})
			}
		}
	}
	return out
}

// maxOutPorts bounds the useful output parallelism of a layer.
func maxOutPorts(l *dataflow.LayerHW) int {
	if n := l.OutShape.Channels; n > 0 {
		return n
	}
	return 1
}

// evaluate builds, plans and estimates a configuration at the given
// precision, returning its objective score. Configurations whose sustained
// throughput exceeds the DDR bandwidth roof are rejected — the datamover
// could not feed them, so their modeled throughput would never be reached on
// the device.
func evaluate(ir *condorir.Network, opts Options, p quant.Precision) (*dataflow.Spec, *hls.Report, score, error) {
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		return nil, nil, score{}, err
	}
	spec.WordBits = p.Bits()
	if err := hls.PlanMemory(spec); err != nil {
		return nil, nil, score{}, err
	}
	rep, err := hls.Estimate(spec)
	if err != nil {
		return nil, nil, score{}, err
	}
	if err := checkBandwidth(ir, spec, rep); err != nil {
		return nil, nil, score{}, err
	}
	stages := objectiveStages(spec, opts)
	return spec, rep, score{
		bottleneck: perf.Bottleneck(stages),
		total:      perf.Latency(stages),
	}, nil
}

// checkBandwidth runs the roofline analysis against the board's DDR
// bandwidth.
func checkBandwidth(ir *condorir.Network, spec *dataflow.Spec, rep *hls.Report) error {
	b, err := board.Lookup(spec.Board)
	if err != nil {
		return err
	}
	flops, err := ir.FLOPs()
	if err != nil {
		return err
	}
	lanes := 0
	for i := range rep.PEs {
		lanes += rep.PEs[i].MACs
	}
	r := perf.AnalyzeRoofline(spec, b, lanes, flops, rep.AchievedMHz)
	if r.BandwidthBound() {
		return fmt.Errorf("dse: configuration is DDR-bandwidth bound (sustained %.1f GFLOPS over a %.1f GFLOPS roof)",
			r.SustainedGFLOPS, r.AttainableGFLOPS)
	}
	return nil
}

func objectiveStages(spec *dataflow.Spec, opts Options) []perf.Stage {
	if opts.FeaturesOnly {
		return perf.FeatureStages(spec)
	}
	return perf.Stages(spec)
}

func cloneIR(ir *condorir.Network) *condorir.Network {
	out := *ir
	out.Layers = append([]condorir.Layer(nil), ir.Layers...)
	return &out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
