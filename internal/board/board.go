// Package board catalogues the FPGA deployment targets Condor supports and
// their resource budgets. The headline target is the AWS F1 instance card
// (Xilinx Virtex UltraScale+ VU9P behind the SDAccel shell); two on-premise
// boards are included for the local deployment path.
package board

import (
	"fmt"
	"sort"
)

// Resources is a bundle of FPGA fabric resources. BRAM is counted in
// BRAM36 (36 Kb) blocks; fractional values represent BRAM18 halves.
type Resources struct {
	LUT  float64
	FF   float64
	DSP  float64
	BRAM float64
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{LUT: r.LUT + o.LUT, FF: r.FF + o.FF, DSP: r.DSP + o.DSP, BRAM: r.BRAM + o.BRAM}
}

// Scale returns the resources multiplied by k.
func (r Resources) Scale(k float64) Resources {
	return Resources{LUT: r.LUT * k, FF: r.FF * k, DSP: r.DSP * k, BRAM: r.BRAM * k}
}

// FitsIn reports whether every component of r is within budget b.
func (r Resources) FitsIn(b Resources) bool {
	return r.LUT <= b.LUT && r.FF <= b.FF && r.DSP <= b.DSP && r.BRAM <= b.BRAM
}

// Utilization returns the per-component fraction of r over the device total
// (values in [0,1]; may exceed 1 for infeasible designs).
func (r Resources) Utilization(device Resources) Utilization {
	frac := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	return Utilization{
		LUT:  frac(r.LUT, device.LUT),
		FF:   frac(r.FF, device.FF),
		DSP:  frac(r.DSP, device.DSP),
		BRAM: frac(r.BRAM, device.BRAM),
	}
}

// Utilization is a per-component occupancy fraction.
type Utilization struct {
	LUT  float64
	FF   float64
	DSP  float64
	BRAM float64
}

// Max returns the largest component fraction, the binding constraint.
func (u Utilization) Max() float64 {
	m := u.LUT
	for _, v := range []float64{u.FF, u.DSP, u.BRAM} {
		if v > m {
			m = v
		}
	}
	return m
}

// Board describes one deployment target.
type Board struct {
	ID   string
	Name string
	Part string

	// Device is the full fabric budget of the part.
	Device Resources
	// Shell is the static region consumed by the platform shell (the
	// SDAccel/F1 shell for cloud parts, the base design for local boards).
	Shell Resources

	DDRBanks         int
	DDRBandwidthGBps float64

	// MaxClockMHz bounds the kernel clock the platform supports.
	MaxClockMHz float64

	// CloudOnly marks boards reachable only through the AFI flow (no local
	// bitstream load), i.e. the F1 instances.
	CloudOnly bool
}

// Available returns the budget left for the kernel after the shell.
func (b *Board) Available() Resources {
	return Resources{
		LUT:  b.Device.LUT - b.Shell.LUT,
		FF:   b.Device.FF - b.Shell.FF,
		DSP:  b.Device.DSP - b.Shell.DSP,
		BRAM: b.Device.BRAM - b.Shell.BRAM,
	}
}

// catalogue lists the supported targets.
var catalogue = map[string]*Board{
	// The AWS F1 card: VU9P behind the F1/SDAccel shell. Device numbers are
	// the public xcvu9p figures; the shell reservation follows the AWS shell
	// release notes (one SLR's worth of static region).
	"aws-f1-vu9p": {
		ID:   "aws-f1-vu9p",
		Name: "AWS EC2 F1 (Virtex UltraScale+ VU9P)",
		Part: "xcvu9p-flgb2104-2-i",
		Device: Resources{
			LUT: 1182240, FF: 2364480, DSP: 6840, BRAM: 2160,
		},
		Shell: Resources{
			LUT: 96000, FF: 180000, DSP: 12, BRAM: 48,
		},
		DDRBanks:         4,
		DDRBandwidthGBps: 4 * 16.0,
		MaxClockMHz:      250,
		CloudOnly:        true,
	},
	// Zynq-7045 development board, a common on-premise target.
	"zc706": {
		ID:   "zc706",
		Name: "Xilinx ZC706 (Zynq-7045)",
		Part: "xc7z045-ffg900-2",
		Device: Resources{
			LUT: 218600, FF: 437200, DSP: 900, BRAM: 545,
		},
		Shell: Resources{
			LUT: 22000, FF: 36000, DSP: 0, BRAM: 16,
		},
		DDRBanks:         1,
		DDRBandwidthGBps: 12.8,
		MaxClockMHz:      200,
	},
	// Kintex UltraScale KU115 PCIe card (the board family of the original
	// SDAccel platforms).
	"ku115": {
		ID:   "ku115",
		Name: "Xilinx KU115 PCIe card",
		Part: "xcku115-flvb2104-2-e",
		Device: Resources{
			LUT: 663360, FF: 1326720, DSP: 5520, BRAM: 2160,
		},
		Shell: Resources{
			LUT: 60000, FF: 110000, DSP: 8, BRAM: 32,
		},
		DDRBanks:         2,
		DDRBandwidthGBps: 2 * 19.2,
		MaxClockMHz:      250,
	},
}

// Lookup returns the board with the given identifier.
func Lookup(id string) (*Board, error) {
	b, ok := catalogue[id]
	if !ok {
		return nil, fmt.Errorf("board: unknown board %q (supported: %v)", id, IDs())
	}
	return b, nil
}

// IDs returns the supported board identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(catalogue))
	for id := range catalogue {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
