package board

import (
	"testing"
	"testing/quick"
)

func TestLookupKnownBoards(t *testing.T) {
	for _, id := range []string{"aws-f1-vu9p", "zc706", "ku115"} {
		b, err := Lookup(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if b.ID != id {
			t.Fatalf("%s: ID mismatch %q", id, b.ID)
		}
		if b.Device.LUT <= 0 || b.Device.DSP <= 0 || b.Device.BRAM <= 0 {
			t.Fatalf("%s: empty device budget %+v", id, b.Device)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error for unknown board")
	}
}

func TestF1IsCloudOnly(t *testing.T) {
	f1, _ := Lookup("aws-f1-vu9p")
	if !f1.CloudOnly {
		t.Fatal("F1 must be cloud-only")
	}
	z, _ := Lookup("zc706")
	if z.CloudOnly {
		t.Fatal("zc706 must be locally deployable")
	}
}

func TestAvailableSubtractsShell(t *testing.T) {
	b, _ := Lookup("aws-f1-vu9p")
	a := b.Available()
	if a.LUT != b.Device.LUT-b.Shell.LUT || a.BRAM != b.Device.BRAM-b.Shell.BRAM {
		t.Fatalf("Available = %+v", a)
	}
	if a.LUT <= 0 || a.FF <= 0 || a.DSP <= 0 || a.BRAM <= 0 {
		t.Fatal("shell larger than device")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUT: 10, FF: 20, DSP: 2, BRAM: 1}
	b := Resources{LUT: 5, FF: 5, DSP: 1, BRAM: 0.5}
	sum := a.Add(b)
	if sum != (Resources{LUT: 15, FF: 25, DSP: 3, BRAM: 1.5}) {
		t.Fatalf("Add = %+v", sum)
	}
	if a.Scale(2) != (Resources{LUT: 20, FF: 40, DSP: 4, BRAM: 2}) {
		t.Fatal("Scale wrong")
	}
	if !b.FitsIn(a) || a.FitsIn(b) {
		t.Fatal("FitsIn wrong")
	}
}

func TestUtilization(t *testing.T) {
	dev := Resources{LUT: 100, FF: 200, DSP: 10, BRAM: 20}
	u := Resources{LUT: 50, FF: 20, DSP: 9, BRAM: 1}.Utilization(dev)
	if u.LUT != 0.5 || u.FF != 0.1 || u.DSP != 0.9 || u.BRAM != 0.05 {
		t.Fatalf("utilization = %+v", u)
	}
	if u.Max() != 0.9 {
		t.Fatalf("Max = %v", u.Max())
	}
}

func TestUtilizationZeroDevice(t *testing.T) {
	u := Resources{LUT: 5}.Utilization(Resources{})
	if u.LUT != 0 {
		t.Fatal("zero device should yield zero utilization, not NaN")
	}
}

// Property: Add is commutative and Scale distributes over Add.
func TestResourceAlgebraProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 uint16, kRaw uint8) bool {
		a := Resources{LUT: float64(a1), FF: float64(a2), DSP: float64(a1 % 100), BRAM: float64(a2 % 50)}
		b := Resources{LUT: float64(b1), FF: float64(b2), DSP: float64(b1 % 100), BRAM: float64(b2 % 50)}
		k := float64(kRaw % 8)
		if a.Add(b) != b.Add(a) {
			return false
		}
		return a.Add(b).Scale(k) == a.Scale(k).Add(b.Scale(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
}
