package proto

import (
	"fmt"
	"strconv"
	"strings"
)

// TextField is one field of a text-format (prototxt) message. A field is
// either a scalar (number, enum identifier, boolean or quoted string) or a
// nested message.
type TextField struct {
	Name     string
	Scalar   string      // raw scalar token, valid when Msg is nil
	IsString bool        // the scalar was a quoted string literal
	Msg      TextMessage // nested message, nil for scalars
	IsMsg    bool
}

// TextMessage is an ordered list of text-format fields; repeated fields
// appear once per occurrence, as in the binary format.
type TextMessage []TextField

// --- Lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("prototxt:%d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '#': // comment to end of line
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil

scan:
	c := lx.src[lx.pos]
	switch {
	case strings.ContainsRune("{}<>[]:,;", rune(c)):
		lx.pos++
		return token{kind: tokPunct, text: string(c), line: lx.line}, nil
	case c == '"' || c == '\'':
		return lx.scanString(c)
	case c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9'):
		return lx.scanNumber()
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: lx.line}, nil
	default:
		return token{}, lx.errf("unexpected character %q", c)
	}
}

func (lx *lexer) scanString(quote byte) (token, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case quote:
			lx.pos++
			return token{kind: tokString, text: sb.String(), line: lx.line}, nil
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf("unterminated escape")
			}
			e := lx.src[lx.pos]
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\', '"', '\'':
				sb.WriteByte(e)
			default:
				return token{}, lx.errf("unsupported escape \\%c", e)
			}
			lx.pos++
		case '\n':
			return token{}, lx.errf("newline in string literal")
		default:
			sb.WriteByte(c)
			lx.pos++
		}
	}
	return token{}, lx.errf("unterminated string literal")
}

func (lx *lexer) scanNumber() (token, error) {
	start := lx.pos
	if lx.src[lx.pos] == '-' || lx.src[lx.pos] == '+' {
		lx.pos++
	}
	seen := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			if (c == 'e' || c == 'E') && lx.pos+1 < len(lx.src) &&
				(lx.src[lx.pos+1] == '-' || lx.src[lx.pos+1] == '+') {
				lx.pos++ // consume exponent sign with the e
			}
			seen = true
			lx.pos++
		} else {
			break
		}
	}
	if !seen {
		return token{}, lx.errf("malformed number")
	}
	return token{kind: tokNumber, text: lx.src[start:lx.pos], line: lx.line}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

// --- Parser ---

type textParser struct {
	lx     *lexer
	peeked *token
}

func (p *textParser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *textParser) advance() (token, error) {
	t, err := p.peek()
	p.peeked = nil
	return t, err
}

// ParseText parses a complete prototxt document into a TextMessage.
func ParseText(src string) (TextMessage, error) {
	p := &textParser{lx: &lexer{src: src, line: 1}}
	msg, err := p.parseFields(tokEOF, "")
	if err != nil {
		return nil, err
	}
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, fmt.Errorf("prototxt:%d: trailing content %q", t.line, t.text)
	}
	return msg, nil
}

// parseFields parses fields until the given terminator punctuation (or EOF).
func (p *textParser) parseFields(end tokKind, endText string) (TextMessage, error) {
	var msg TextMessage
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == end && (end == tokEOF || t.text == endText) {
			return msg, nil
		}
		if t.kind == tokPunct && (t.text == ";" || t.text == ",") {
			p.advance() // permissive separators between fields
			continue
		}
		if t.kind != tokIdent {
			return nil, fmt.Errorf("prototxt:%d: expected field name, got %q", t.line, t.text)
		}
		p.advance()
		fields, err := p.parseFieldValue(t.text)
		if err != nil {
			return nil, err
		}
		msg = append(msg, fields...)
	}
}

// parseFieldValue parses what follows a field name: an optional colon, then a
// scalar, a nested message ({...} or <...>), or a [v1, v2, ...] list that
// expands to repeated fields.
func (p *textParser) parseFieldValue(name string) (TextMessage, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	hadColon := false
	if t.kind == tokPunct && t.text == ":" {
		hadColon = true
		p.advance()
		t, err = p.peek()
		if err != nil {
			return nil, err
		}
	}
	switch {
	case t.kind == tokPunct && (t.text == "{" || t.text == "<"):
		open := t.text
		closeText := "}"
		if open == "<" {
			closeText = ">"
		}
		p.advance()
		sub, err := p.parseFields(tokPunct, closeText)
		if err != nil {
			return nil, err
		}
		if _, err := p.advance(); err != nil { // consume close
			return nil, err
		}
		return TextMessage{{Name: name, Msg: sub, IsMsg: true}}, nil
	case t.kind == tokPunct && t.text == "[":
		p.advance()
		var out TextMessage
		for {
			t, err := p.peek()
			if err != nil {
				return nil, err
			}
			if t.kind == tokPunct && t.text == "]" {
				p.advance()
				return out, nil
			}
			if t.kind == tokPunct && t.text == "," {
				p.advance()
				continue
			}
			sc, err := p.parseScalar(name)
			if err != nil {
				return nil, err
			}
			out = append(out, sc)
		}
	default:
		if !hadColon {
			return nil, fmt.Errorf("prototxt:%d: field %q: scalar value requires ':'", t.line, name)
		}
		sc, err := p.parseScalar(name)
		if err != nil {
			return nil, err
		}
		return TextMessage{sc}, nil
	}
}

func (p *textParser) parseScalar(name string) (TextField, error) {
	t, err := p.advance()
	if err != nil {
		return TextField{}, err
	}
	switch t.kind {
	case tokString:
		// Adjacent string literals concatenate, as in C.
		val := t.text
		for {
			nxt, err := p.peek()
			if err != nil {
				return TextField{}, err
			}
			if nxt.kind != tokString {
				break
			}
			p.advance()
			val += nxt.text
		}
		return TextField{Name: name, Scalar: val, IsString: true}, nil
	case tokNumber, tokIdent:
		return TextField{Name: name, Scalar: t.text}, nil
	default:
		return TextField{}, fmt.Errorf("prototxt:%d: field %q: expected scalar, got %q", t.line, name, t.text)
	}
}

// --- Accessors ---

// GetString returns the last string/identifier scalar value of field name.
func (m TextMessage) GetString(name string) (string, bool) {
	var v string
	found := false
	for _, f := range m {
		if f.Name == name && !f.IsMsg {
			v = f.Scalar
			found = true
		}
	}
	return v, found
}

// GetStrings returns every scalar value of a repeated field.
func (m TextMessage) GetStrings(name string) []string {
	var out []string
	for _, f := range m {
		if f.Name == name && !f.IsMsg {
			out = append(out, f.Scalar)
		}
	}
	return out
}

// GetInt parses the last scalar value of field name as an integer.
func (m TextMessage) GetInt(name string, def int) (int, error) {
	s, ok := m.GetString(name)
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("prototxt: field %q: %w", name, err)
	}
	return v, nil
}

// GetInts parses every occurrence of field name as integers.
func (m TextMessage) GetInts(name string) ([]int, error) {
	var out []int
	for _, s := range m.GetStrings(name) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("prototxt: field %q: %w", name, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// GetFloat parses the last scalar value of field name as a float64.
func (m TextMessage) GetFloat(name string, def float64) (float64, error) {
	s, ok := m.GetString(name)
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("prototxt: field %q: %w", name, err)
	}
	return v, nil
}

// GetBool parses the last scalar value of field name as a bool
// (true/false/1/0, the proto text forms).
func (m TextMessage) GetBool(name string, def bool) (bool, error) {
	s, ok := m.GetString(name)
	if !ok {
		return def, nil
	}
	switch s {
	case "true", "True", "1":
		return true, nil
	case "false", "False", "0":
		return false, nil
	}
	return false, fmt.Errorf("prototxt: field %q: invalid bool %q", name, s)
}

// GetMessages returns every nested-message occurrence of field name.
func (m TextMessage) GetMessages(name string) []TextMessage {
	var out []TextMessage
	for _, f := range m {
		if f.Name == name && f.IsMsg {
			out = append(out, f.Msg)
		}
	}
	return out
}

// GetMessage returns the last nested-message occurrence of field name.
func (m TextMessage) GetMessage(name string) (TextMessage, bool) {
	var v TextMessage
	found := false
	for _, f := range m {
		if f.Name == name && f.IsMsg {
			v = f.Msg
			found = true
		}
	}
	return v, found
}

// Has reports whether field name occurs at least once.
func (m TextMessage) Has(name string) bool {
	for _, f := range m {
		if f.Name == name {
			return true
		}
	}
	return false
}

// --- Printer ---

// PrintText renders a TextMessage in canonical prototxt form.
func PrintText(m TextMessage) string {
	var sb strings.Builder
	printText(&sb, m, 0)
	return sb.String()
}

func printText(sb *strings.Builder, m TextMessage, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, f := range m {
		if f.IsMsg {
			sb.WriteString(indent)
			sb.WriteString(f.Name)
			sb.WriteString(" {\n")
			printText(sb, f.Msg, depth+1)
			sb.WriteString(indent)
			sb.WriteString("}\n")
		} else {
			sb.WriteString(indent)
			sb.WriteString(f.Name)
			sb.WriteString(": ")
			if f.IsString {
				sb.WriteString(strconv.Quote(f.Scalar))
			} else {
				sb.WriteString(f.Scalar)
			}
			sb.WriteString("\n")
		}
	}
}
