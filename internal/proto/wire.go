// Package proto implements the subset of the Protocol Buffers encoding that
// the Caffe model formats use: the binary wire format (for .caffemodel
// files) and the text format (for .prototxt files). It is schema-agnostic —
// messages are generic trees of numbered fields — so the Caffe schema lives
// in internal/caffe on top of this package.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// WireType identifies the low-level encoding of a field on the wire.
type WireType int

const (
	WireVarint  WireType = 0
	WireFixed64 WireType = 1
	WireBytes   WireType = 2
	WireFixed32 WireType = 5
)

func (w WireType) String() string {
	switch w {
	case WireVarint:
		return "varint"
	case WireFixed64:
		return "fixed64"
	case WireBytes:
		return "bytes"
	case WireFixed32:
		return "fixed32"
	default:
		return fmt.Sprintf("wiretype(%d)", int(w))
	}
}

// Field is one decoded field occurrence. For WireVarint, WireFixed32 and
// WireFixed64 the raw value is in Uint; for WireBytes the payload is in
// Bytes (which may itself be a nested message, a string, or packed scalars —
// the schema layer decides).
type Field struct {
	Num   int
	Wire  WireType
	Uint  uint64
	Bytes []byte
}

// Message is a flat sequence of decoded fields in wire order. Repeated
// fields appear once per occurrence.
type Message []Field

// ErrTruncated is returned when the input ends in the middle of a field.
var ErrTruncated = errors.New("proto: truncated message")

// maxVarintBytes bounds varint length: 10 bytes encode up to 64 bits.
const maxVarintBytes = 10

// AppendVarint appends the base-128 varint encoding of v to b.
func AppendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// ConsumeVarint decodes a varint from the front of b, returning the value
// and the number of bytes consumed.
func ConsumeVarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < maxVarintBytes; i++ {
		v |= uint64(b[i]&0x7f) << (7 * uint(i))
		if b[i] < 0x80 {
			return v, i + 1, nil
		}
	}
	if len(b) >= maxVarintBytes {
		return 0, 0, errors.New("proto: varint overflows 64 bits")
	}
	return 0, 0, ErrTruncated
}

// Decode parses one level of a wire-format message. Nested messages remain
// as raw bytes in Field.Bytes and can be decoded with another Decode call.
func Decode(b []byte) (Message, error) {
	var msg Message
	for len(b) > 0 {
		key, n, err := ConsumeVarint(b)
		if err != nil {
			return nil, err
		}
		b = b[n:]
		num := int(key >> 3)
		wire := WireType(key & 7)
		if num <= 0 {
			return nil, fmt.Errorf("proto: invalid field number %d", num)
		}
		f := Field{Num: num, Wire: wire}
		switch wire {
		case WireVarint:
			v, n, err := ConsumeVarint(b)
			if err != nil {
				return nil, err
			}
			f.Uint = v
			b = b[n:]
		case WireFixed64:
			if len(b) < 8 {
				return nil, ErrTruncated
			}
			f.Uint = binary.LittleEndian.Uint64(b)
			b = b[8:]
		case WireFixed32:
			if len(b) < 4 {
				return nil, ErrTruncated
			}
			f.Uint = uint64(binary.LittleEndian.Uint32(b))
			b = b[4:]
		case WireBytes:
			ln, n, err := ConsumeVarint(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			if uint64(len(b)) < ln {
				return nil, ErrTruncated
			}
			f.Bytes = b[:ln:ln]
			b = b[ln:]
		default:
			return nil, fmt.Errorf("proto: unsupported wire type %d for field %d", int(wire), num)
		}
		msg = append(msg, f)
	}
	return msg, nil
}

// Encode serialises a Message back to wire format, preserving field order.
func Encode(m Message) []byte {
	var b []byte
	for _, f := range m {
		b = AppendVarint(b, uint64(f.Num)<<3|uint64(f.Wire))
		switch f.Wire {
		case WireVarint:
			b = AppendVarint(b, f.Uint)
		case WireFixed64:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], f.Uint)
			b = append(b, tmp[:]...)
		case WireFixed32:
			var tmp [4]byte
			binary.LittleEndian.PutUint32(tmp[:], uint32(f.Uint))
			b = append(b, tmp[:]...)
		case WireBytes:
			b = AppendVarint(b, uint64(len(f.Bytes)))
			b = append(b, f.Bytes...)
		}
	}
	return b
}

// --- Builder helpers (used to construct caffemodel files) ---

// AppendTag appends a field key for (num, wire).
func AppendTag(b []byte, num int, wire WireType) []byte {
	return AppendVarint(b, uint64(num)<<3|uint64(wire))
}

// AppendVarintField appends a varint field.
func AppendVarintField(b []byte, num int, v uint64) []byte {
	return AppendVarint(AppendTag(b, num, WireVarint), v)
}

// AppendBoolField appends a bool field (proto encodes bools as varints).
func AppendBoolField(b []byte, num int, v bool) []byte {
	var u uint64
	if v {
		u = 1
	}
	return AppendVarintField(b, num, u)
}

// AppendBytesField appends a length-delimited field.
func AppendBytesField(b []byte, num int, payload []byte) []byte {
	b = AppendTag(b, num, WireBytes)
	b = AppendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// AppendStringField appends a string as a length-delimited field.
func AppendStringField(b []byte, num int, s string) []byte {
	return AppendBytesField(b, num, []byte(s))
}

// AppendFloatField appends a single float as a fixed32 field.
func AppendFloatField(b []byte, num int, v float32) []byte {
	b = AppendTag(b, num, WireFixed32)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
	return append(b, tmp[:]...)
}

// AppendPackedFloats appends a repeated float field in packed encoding, the
// layout Caffe uses for BlobProto.data.
func AppendPackedFloats(b []byte, num int, vals []float32) []byte {
	payload := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(payload[4*i:], math.Float32bits(v))
	}
	return AppendBytesField(b, num, payload)
}

// --- Accessor helpers on decoded messages ---

// GetUint returns the last occurrence of varint/fixed field num ("last one
// wins", the protobuf merge rule for optional scalars).
func (m Message) GetUint(num int) (uint64, bool) {
	var v uint64
	found := false
	for _, f := range m {
		if f.Num == num && f.Wire != WireBytes {
			v = f.Uint
			found = true
		}
	}
	return v, found
}

// GetBool returns a varint field interpreted as bool.
func (m Message) GetBool(num int, def bool) bool {
	if v, ok := m.GetUint(num); ok {
		return v != 0
	}
	return def
}

// GetInt returns a varint field as int with a default.
func (m Message) GetInt(num int, def int) int {
	if v, ok := m.GetUint(num); ok {
		return int(int64(v))
	}
	return def
}

// GetString returns the last occurrence of a bytes field as a string.
func (m Message) GetString(num int) (string, bool) {
	var s string
	found := false
	for _, f := range m {
		if f.Num == num && f.Wire == WireBytes {
			s = string(f.Bytes)
			found = true
		}
	}
	return s, found
}

// GetFloat returns the last occurrence of a fixed32 field as float32.
func (m Message) GetFloat(num int) (float32, bool) {
	var v float32
	found := false
	for _, f := range m {
		if f.Num == num && f.Wire == WireFixed32 {
			v = math.Float32frombits(uint32(f.Uint))
			found = true
		}
	}
	return v, found
}

// GetMessages decodes every occurrence of bytes field num as a nested
// message (the repeated-message accessor).
func (m Message) GetMessages(num int) ([]Message, error) {
	var out []Message
	for _, f := range m {
		if f.Num == num && f.Wire == WireBytes {
			sub, err := Decode(f.Bytes)
			if err != nil {
				return nil, fmt.Errorf("proto: field %d: %w", num, err)
			}
			out = append(out, sub)
		}
	}
	return out, nil
}

// GetMessage decodes the last occurrence of bytes field num as a nested
// message, or returns (nil, nil) when absent.
func (m Message) GetMessage(num int) (Message, error) {
	var raw []byte
	found := false
	for _, f := range m {
		if f.Num == num && f.Wire == WireBytes {
			raw = f.Bytes
			found = true
		}
	}
	if !found {
		return nil, nil
	}
	return Decode(raw)
}

// GetFloats gathers a repeated float field, accepting both the packed
// (length-delimited) and unpacked (one fixed32 per occurrence) encodings,
// as required when reading proto2 files from varied writers.
func (m Message) GetFloats(num int) ([]float32, error) {
	var out []float32
	for _, f := range m {
		switch {
		case f.Num == num && f.Wire == WireFixed32:
			out = append(out, math.Float32frombits(uint32(f.Uint)))
		case f.Num == num && f.Wire == WireBytes:
			if len(f.Bytes)%4 != 0 {
				return nil, fmt.Errorf("proto: packed float field %d has %d bytes (not a multiple of 4)", num, len(f.Bytes))
			}
			for i := 0; i < len(f.Bytes); i += 4 {
				out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(f.Bytes[i:])))
			}
		}
	}
	return out, nil
}

// GetUints gathers a repeated integer field, accepting packed and unpacked
// varint encodings (used for BlobShape.dim and NetParameter.input_dim).
func (m Message) GetUints(num int) ([]uint64, error) {
	var out []uint64
	for _, f := range m {
		switch {
		case f.Num == num && f.Wire == WireVarint:
			out = append(out, f.Uint)
		case f.Num == num && f.Wire == WireBytes:
			b := f.Bytes
			for len(b) > 0 {
				v, n, err := ConsumeVarint(b)
				if err != nil {
					return nil, fmt.Errorf("proto: packed varint field %d: %w", num, err)
				}
				out = append(out, v)
				b = b[n:]
			}
		}
	}
	return out, nil
}

// GetStrings gathers every occurrence of a repeated string field.
func (m Message) GetStrings(num int) []string {
	var out []string
	for _, f := range m {
		if f.Num == num && f.Wire == WireBytes {
			out = append(out, string(f.Bytes))
		}
	}
	return out
}

// Has reports whether field num occurs at least once.
func (m Message) Has(num int) bool {
	for _, f := range m {
		if f.Num == num {
			return true
		}
	}
	return false
}
