package proto

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 21, 1<<63 - 1, math.MaxUint64}
	for _, v := range cases {
		b := AppendVarint(nil, v)
		got, n, err := ConsumeVarint(b)
		if err != nil {
			t.Fatalf("%d: %v", v, err)
		}
		if got != v || n != len(b) {
			t.Fatalf("varint %d round-trip got %d (n=%d, len=%d)", v, got, n, len(b))
		}
	}
}

func TestVarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendVarint(nil, v)
		got, n, err := ConsumeVarint(b)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintTruncated(t *testing.T) {
	b := AppendVarint(nil, 1<<40)
	if _, _, err := ConsumeVarint(b[:2]); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestVarintOverflow(t *testing.T) {
	b := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := ConsumeVarint(b); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestDecodeAllWireTypes(t *testing.T) {
	var b []byte
	b = AppendVarintField(b, 1, 42)
	b = AppendStringField(b, 2, "hello")
	b = AppendFloatField(b, 3, 1.5)
	b = AppendTag(b, 4, WireFixed64)
	b = append(b, 8, 0, 0, 0, 0, 0, 0, 0) // fixed64 = 8
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := msg.GetUint(1); !ok || v != 42 {
		t.Fatalf("field 1 = %d ok=%v", v, ok)
	}
	if s, ok := msg.GetString(2); !ok || s != "hello" {
		t.Fatalf("field 2 = %q", s)
	}
	if f, ok := msg.GetFloat(3); !ok || f != 1.5 {
		t.Fatalf("field 3 = %v", f)
	}
	if v, ok := msg.GetUint(4); !ok || v != 8 {
		t.Fatalf("field 4 = %d", v)
	}
}

func TestDecodeRejectsTruncatedLengthDelimited(t *testing.T) {
	b := AppendTag(nil, 1, WireBytes)
	b = AppendVarint(b, 100) // claims 100 bytes, provides none
	if _, err := Decode(b); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestDecodeRejectsFieldNumberZero(t *testing.T) {
	b := AppendVarint(nil, 0) // key with field number 0
	if _, err := Decode(b); err == nil {
		t.Fatal("expected invalid field number error")
	}
}

func TestDecodeRejectsGroupWireTypes(t *testing.T) {
	b := AppendVarint(nil, 1<<3|3) // start-group
	if _, err := Decode(b); err == nil {
		t.Fatal("expected unsupported wire type error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msg := Message{
		{Num: 1, Wire: WireVarint, Uint: 7},
		{Num: 2, Wire: WireBytes, Bytes: []byte("abc")},
		{Num: 2, Wire: WireBytes, Bytes: []byte("def")}, // repeated
		{Num: 3, Wire: WireFixed32, Uint: 0xdeadbeef},
		{Num: 4, Wire: WireFixed64, Uint: 0x0123456789abcdef},
	}
	got, err := Decode(Encode(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msg, got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", msg, got)
	}
}

// Property: any randomly generated message survives Encode→Decode intact.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		msg := make(Message, 0, n)
		for i := 0; i < n; i++ {
			f := Field{Num: rng.Intn(1000) + 1}
			switch rng.Intn(4) {
			case 0:
				f.Wire, f.Uint = WireVarint, rng.Uint64()
			case 1:
				f.Wire, f.Uint = WireFixed32, uint64(rng.Uint32())
			case 2:
				f.Wire, f.Uint = WireFixed64, rng.Uint64()
			case 3:
				f.Wire = WireBytes
				f.Bytes = make([]byte, rng.Intn(32))
				rng.Read(f.Bytes)
			}
			msg = append(msg, f)
		}
		got, err := Decode(Encode(msg))
		if err != nil {
			return false
		}
		if len(got) != len(msg) {
			return false
		}
		for i := range msg {
			if msg[i].Num != got[i].Num || msg[i].Wire != got[i].Wire || msg[i].Uint != got[i].Uint {
				return false
			}
			if !bytes.Equal(msg[i].Bytes, got[i].Bytes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedFloatsRoundTrip(t *testing.T) {
	vals := []float32{0, 1.5, -2.25, float32(math.Pi), math.MaxFloat32}
	b := AppendPackedFloats(nil, 5, vals)
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := msg.GetFloats(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, got) {
		t.Fatalf("packed floats %v, want %v", got, vals)
	}
}

func TestGetFloatsAcceptsUnpacked(t *testing.T) {
	var b []byte
	b = AppendFloatField(b, 5, 1)
	b = AppendFloatField(b, 5, 2)
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := msg.GetFloats(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("unpacked floats %v", got)
	}
}

func TestGetFloatsRejectsMisalignedPacked(t *testing.T) {
	b := AppendBytesField(nil, 5, []byte{1, 2, 3}) // 3 bytes: not a float array
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := msg.GetFloats(5); err == nil {
		t.Fatal("expected misalignment error")
	}
}

func TestGetUintsPackedAndUnpacked(t *testing.T) {
	var packed []byte
	packed = AppendVarint(packed, 1)
	packed = AppendVarint(packed, 300)
	var b []byte
	b = AppendVarintField(b, 4, 7)
	b = AppendBytesField(b, 4, packed)
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := msg.GetUints(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual([]uint64{7, 1, 300}, got) {
		t.Fatalf("uints %v", got)
	}
}

func TestNestedMessages(t *testing.T) {
	inner := AppendVarintField(nil, 1, 9)
	var b []byte
	b = AppendBytesField(b, 10, inner)
	b = AppendBytesField(b, 10, inner)
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := msg.GetMessages(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d nested messages", len(subs))
	}
	if v, ok := subs[1].GetUint(1); !ok || v != 9 {
		t.Fatalf("nested field = %d", v)
	}
	one, err := msg.GetMessage(10)
	if err != nil || one == nil {
		t.Fatalf("GetMessage: %v %v", one, err)
	}
	none, err := msg.GetMessage(99)
	if err != nil || none != nil {
		t.Fatal("GetMessage on absent field should be (nil, nil)")
	}
}

func TestLastOneWinsMergeRule(t *testing.T) {
	var b []byte
	b = AppendVarintField(b, 1, 1)
	b = AppendVarintField(b, 1, 2)
	b = AppendStringField(b, 2, "a")
	b = AppendStringField(b, 2, "b")
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := msg.GetUint(1); v != 2 {
		t.Fatalf("last-one-wins uint = %d", v)
	}
	if s, _ := msg.GetString(2); s != "b" {
		t.Fatalf("last-one-wins string = %q", s)
	}
}

func TestBoolAndIntHelpers(t *testing.T) {
	var b []byte
	b = AppendBoolField(b, 1, true)
	b = AppendVarintField(b, 2, 5)
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.GetBool(1, false) {
		t.Fatal("GetBool true wrong")
	}
	if msg.GetBool(9, true) != true {
		t.Fatal("GetBool default wrong")
	}
	if msg.GetInt(2, 0) != 5 || msg.GetInt(9, 42) != 42 {
		t.Fatal("GetInt wrong")
	}
	if !msg.Has(1) || msg.Has(9) {
		t.Fatal("Has wrong")
	}
}
