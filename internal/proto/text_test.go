package proto

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

const sampleProtoTxt = `
name: "LeNet"   # the classic
input: "data"
input_dim: 64
input_dim: 1
input_dim: 28
input_dim: 28
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  param { lr_mult: 1 }
  convolution_param {
    num_output: 20
    kernel_size: 5
    stride: 1
    weight_filler { type: "xavier" }
  }
}
layer {
  name: "pool1"
  type: "Pooling"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
`

func TestParseSamplePrototxt(t *testing.T) {
	m, err := ParseText(sampleProtoTxt)
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := m.GetString("name"); name != "LeNet" {
		t.Fatalf("name = %q", name)
	}
	dims, err := m.GetInts("input_dim")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dims, []int{64, 1, 28, 28}) {
		t.Fatalf("input_dim = %v", dims)
	}
	layers := m.GetMessages("layer")
	if len(layers) != 2 {
		t.Fatalf("got %d layers", len(layers))
	}
	cp, ok := layers[0].GetMessage("convolution_param")
	if !ok {
		t.Fatal("missing convolution_param")
	}
	if n, _ := cp.GetInt("num_output", 0); n != 20 {
		t.Fatalf("num_output = %d", n)
	}
	pp, _ := layers[1].GetMessage("pooling_param")
	if pool, _ := pp.GetString("pool"); pool != "MAX" {
		t.Fatalf("pool enum = %q", pool)
	}
}

func TestParseAngleBracketMessages(t *testing.T) {
	m, err := ParseText(`outer < inner: 3 >`)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := m.GetMessage("outer")
	if !ok {
		t.Fatal("missing outer")
	}
	if v, _ := sub.GetInt("inner", 0); v != 3 {
		t.Fatalf("inner = %d", v)
	}
}

func TestParseListSyntax(t *testing.T) {
	m, err := ParseText(`dim: [1, 2, 3]`)
	if err != nil {
		t.Fatal(err)
	}
	dims, err := m.GetInts("dim")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dims, []int{1, 2, 3}) {
		t.Fatalf("dims = %v", dims)
	}
}

func TestParseStringEscapesAndConcat(t *testing.T) {
	m, err := ParseText(`s: "a\nb" "c"`)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := m.GetString("s"); s != "a\nb" && s != "a\nbc" {
		// Adjacent literals concatenate.
		t.Fatalf("s = %q", s)
	}
	if s, _ := m.GetString("s"); s != "a\nbc" {
		t.Fatalf("concat s = %q", s)
	}
}

func TestParseNumbers(t *testing.T) {
	m, err := ParseText(`a: -1.5e-3 b: 42 c: .5`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.GetFloat("a", 0); v != -1.5e-3 {
		t.Fatalf("a = %v", v)
	}
	if v, _ := m.GetInt("b", 0); v != 42 {
		t.Fatalf("b = %v", v)
	}
	if v, _ := m.GetFloat("c", 0); v != 0.5 {
		t.Fatalf("c = %v", v)
	}
}

func TestParseBool(t *testing.T) {
	m, err := ParseText(`x: true y: false z: 1`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.GetBool("x", false); !v {
		t.Fatal("x should be true")
	}
	if v, _ := m.GetBool("y", true); v {
		t.Fatal("y should be false")
	}
	if v, _ := m.GetBool("z", false); !v {
		t.Fatal("z should be true")
	}
	if v, _ := m.GetBool("missing", true); !v {
		t.Fatal("default should apply")
	}
	if _, err := (TextMessage{{Name: "w", Scalar: "maybe"}}).GetBool("w", false); err == nil {
		t.Fatal("expected bool parse error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`layer {`,            // unterminated message
		`s: "unterminated`,   // unterminated string
		`x: "bad\q"`,         // bad escape
		`: 3`,                // missing field name
		`x 3`,                // scalar without colon
		`x: 3 }`,             // stray close brace
		`x: @`,               // bad character
		"s: \"line\nbreak\"", // newline in string
		`layer { name: } `,   // message close where scalar expected -> error
	}
	for _, src := range bad {
		if _, err := ParseText(src); err == nil {
			t.Fatalf("expected parse error for %q", src)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := ParseText("a: 1\nb: 2\nc: @")
	if err == nil || !strings.Contains(err.Error(), ":3:") {
		t.Fatalf("error should mention line 3: %v", err)
	}
}

func TestCommentsIgnored(t *testing.T) {
	m, err := ParseText("# leading comment\na: 1 # trailing\n# whole line\nb: 2")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.GetInt("a", 0); v != 1 {
		t.Fatal("a wrong")
	}
	if v, _ := m.GetInt("b", 0); v != 2 {
		t.Fatal("b wrong")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m, err := ParseText(sampleProtoTxt)
	if err != nil {
		t.Fatal(err)
	}
	printed := PrintText(m)
	m2, err := ParseText(printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, printed)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("print→parse round trip changed the tree")
	}
}

// Property: randomly generated message trees survive a print→parse round
// trip structurally intact.
func TestPrintParseProperty(t *testing.T) {
	type gen struct{ depth int }
	var build func(g *quick.Config, seed int64, depth int) TextMessage
	build = func(g *quick.Config, seed int64, depth int) TextMessage {
		rng := newRand(seed)
		n := rng.Intn(5)
		var m TextMessage
		for i := 0; i < n; i++ {
			name := []string{"alpha", "beta", "gamma", "delta"}[rng.Intn(4)]
			if depth < 2 && rng.Intn(3) == 0 {
				m = append(m, TextField{Name: name, IsMsg: true, Msg: build(g, rng.Int63(), depth+1)})
			} else if rng.Intn(2) == 0 {
				m = append(m, TextField{Name: name, Scalar: "someval" + string(rune('a'+rng.Intn(26))), IsString: true})
			} else {
				m = append(m, TextField{Name: name, Scalar: "42"})
			}
		}
		return m
	}
	_ = gen{}
	f := func(seed int64) bool {
		m := build(nil, seed, 0)
		m2, err := ParseText(PrintText(m))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalizeEmpty(m), normalizeEmpty(m2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// normalizeEmpty maps nil and empty TextMessages to nil for DeepEqual.
func normalizeEmpty(m TextMessage) TextMessage {
	if len(m) == 0 {
		return nil
	}
	out := make(TextMessage, len(m))
	for i, f := range m {
		out[i] = f
		if f.IsMsg {
			out[i].Msg = normalizeEmpty(f.Msg)
		}
	}
	return out
}
