package onnx

import (
	"fmt"

	"condor/internal/nn"
	"condor/internal/proto"
)

// Encode serialises an nn.Network as a binary ONNX model (opset 9 layout:
// Conv/MaxPool/AveragePool/Gemm/activations over a linear chain, with a
// Flatten before the first Gemm). The output parses back with Parse and is
// wire-compatible with standard ONNX tooling for this operator subset.
func Encode(net *nn.Network) ([]byte, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	var graph []byte
	graph = proto.AppendStringField(graph, graphName, net.Name)

	inputName := "data"
	cur := inputName
	flattened := false
	var nodes [][]byte
	var inits [][]byte

	shape := net.Input
	for i, l := range net.Layers {
		outName := fmt.Sprintf("t%d", i)
		if i == len(net.Layers)-1 {
			outName = "output"
		}
		var node []byte
		switch l.Kind {
		case nn.Conv:
			wName := l.Name + ".W"
			inits = append(inits, encodeTensor(wName, l.Weights.Shape(), l.Weights.Data()))
			ins := []string{cur, wName}
			if l.Bias != nil {
				bName := l.Name + ".B"
				inits = append(inits, encodeTensor(bName, l.Bias.Shape(), l.Bias.Data()))
				ins = append(ins, bName)
			}
			node = encodeNode(l.Name, "Conv", ins, []string{outName}, []attrSpec{
				{name: "kernel_shape", ints: []int64{int64(l.Kernel), int64(l.Kernel)}},
				{name: "strides", ints: []int64{int64(l.Stride), int64(l.Stride)}},
				{name: "pads", ints: []int64{int64(l.Pad), int64(l.Pad), int64(l.Pad), int64(l.Pad)}},
			})
		case nn.MaxPool, nn.AvgPool:
			op := "MaxPool"
			if l.Kind == nn.AvgPool {
				op = "AveragePool"
			}
			node = encodeNode(l.Name, op, []string{cur}, []string{outName}, []attrSpec{
				{name: "kernel_shape", ints: []int64{int64(l.Kernel), int64(l.Kernel)}},
				{name: "strides", ints: []int64{int64(l.Stride), int64(l.Stride)}},
				{name: "pads", ints: []int64{int64(l.Pad), int64(l.Pad), int64(l.Pad), int64(l.Pad)}},
			})
		case nn.FullyConnected:
			if !flattened {
				flatOut := fmt.Sprintf("flat%d", i)
				nodes = append(nodes, encodeNode("flatten_"+l.Name, "Flatten", []string{cur}, []string{flatOut}, nil))
				cur = flatOut
				flattened = true
			}
			wName := l.Name + ".W"
			inits = append(inits, encodeTensor(wName, l.Weights.Shape(), l.Weights.Data()))
			ins := []string{cur, wName}
			if l.Bias != nil {
				bName := l.Name + ".B"
				inits = append(inits, encodeTensor(bName, l.Bias.Shape(), l.Bias.Data()))
				ins = append(ins, bName)
			}
			node = encodeNode(l.Name, "Gemm", ins, []string{outName}, []attrSpec{
				{name: "transB", i: 1, isInt: true},
			})
		case nn.ReLU:
			node = encodeNode(l.Name, "Relu", []string{cur}, []string{outName}, nil)
		case nn.Sigmoid:
			node = encodeNode(l.Name, "Sigmoid", []string{cur}, []string{outName}, nil)
		case nn.TanH:
			node = encodeNode(l.Name, "Tanh", []string{cur}, []string{outName}, nil)
		case nn.SoftMax:
			node = encodeNode(l.Name, "Softmax", []string{cur}, []string{outName}, nil)
		case nn.LogSoftMax:
			node = encodeNode(l.Name, "LogSoftmax", []string{cur}, []string{outName}, nil)
		default:
			return nil, fmt.Errorf("onnx: cannot encode layer kind %v", l.Kind)
		}
		nodes = append(nodes, node)
		cur = outName
		var err error
		shape, err = l.OutputShape(shape)
		if err != nil {
			return nil, err
		}
	}

	for _, n := range nodes {
		graph = proto.AppendBytesField(graph, graphNode, n)
	}
	for _, t := range inits {
		graph = proto.AppendBytesField(graph, graphInitializer, t)
	}
	graph = proto.AppendBytesField(graph, graphInput,
		encodeValueInfo(inputName, []int{1, net.Input.Channels, net.Input.Height, net.Input.Width}))
	graph = proto.AppendBytesField(graph, graphOutput,
		encodeValueInfo("output", []int{1, shape.Channels, shape.Height, shape.Width}))

	var model []byte
	model = proto.AppendVarintField(model, modelIRVersion, 3)
	model = proto.AppendStringField(model, modelProducer, "condor")
	var opset []byte
	opset = proto.AppendStringField(opset, opsetDomain, "")
	opset = proto.AppendVarintField(opset, opsetVersion, 9)
	model = proto.AppendBytesField(model, modelOpset, opset)
	model = proto.AppendBytesField(model, modelGraph, graph)
	return model, nil
}

type attrSpec struct {
	name  string
	ints  []int64
	i     int64
	isInt bool
}

func encodeNode(name, op string, inputs, outputs []string, attrs []attrSpec) []byte {
	var b []byte
	for _, in := range inputs {
		b = proto.AppendStringField(b, nodeInput, in)
	}
	for _, out := range outputs {
		b = proto.AppendStringField(b, nodeOutput, out)
	}
	b = proto.AppendStringField(b, nodeName, name)
	b = proto.AppendStringField(b, nodeOpType, op)
	for _, a := range attrs {
		var ab []byte
		ab = proto.AppendStringField(ab, attrName, a.name)
		if a.isInt {
			ab = proto.AppendVarintField(ab, attrI, uint64(a.i))
		}
		for _, v := range a.ints {
			ab = proto.AppendVarintField(ab, attrInts, uint64(v))
		}
		b = proto.AppendBytesField(b, nodeAttribute, ab)
	}
	return b
}

func encodeTensor(name string, dims []int, data []float32) []byte {
	var b []byte
	for _, d := range dims {
		b = proto.AppendVarintField(b, tensorDims, uint64(d))
	}
	b = proto.AppendVarintField(b, tensorDataType, dataTypeFloat)
	b = proto.AppendPackedFloats(b, tensorFloatData, data)
	b = proto.AppendStringField(b, tensorName, name)
	return b
}

func encodeValueInfo(name string, dims []int) []byte {
	var shapeB []byte
	for _, d := range dims {
		var dim []byte
		dim = proto.AppendVarintField(dim, dimValue, uint64(d))
		shapeB = proto.AppendBytesField(shapeB, shapeDim, dim)
	}
	var tt []byte
	tt = proto.AppendVarintField(tt, tensorTypeElem, dataTypeFloat)
	tt = proto.AppendBytesField(tt, tensorTypeShape, shapeB)
	var tp []byte
	tp = proto.AppendBytesField(tp, typeTensorType, tt)
	var vi []byte
	vi = proto.AppendStringField(vi, valueInfoName, name)
	vi = proto.AppendBytesField(vi, valueInfoType, tp)
	return vi
}
