package onnx

import (
	"testing"

	"condor/internal/proto"
)

// Test-only helpers for hand-building ONNX wire messages.

func appendBytes(b []byte, num int, payload []byte) []byte {
	return proto.AppendBytesField(b, num, payload)
}

func appendString(b []byte, num int, s string) []byte {
	return proto.AppendStringField(b, num, s)
}

func appendVarint(b []byte, num int, v uint64) []byte {
	return proto.AppendVarintField(b, num, v)
}

// appendTestGraphHeader starts a graph with a name and a data input of the
// given NCHW shape.
func appendTestGraphHeader(graph *[]byte, name string, inputShape []int) []byte {
	g := proto.AppendStringField(*graph, graphName, name)
	g = proto.AppendBytesField(g, graphInput, encodeValueInfo("data", inputShape))
	return g
}

// wrapGraph wraps graph bytes in a minimal ModelProto.
func wrapGraph(graph []byte) []byte {
	var model []byte
	model = proto.AppendVarintField(model, modelIRVersion, 3)
	model = proto.AppendBytesField(model, modelGraph, graph)
	return model
}

func decodeMsg(t *testing.T, b []byte) proto.Message {
	t.Helper()
	msg, err := proto.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}
