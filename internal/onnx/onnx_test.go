package onnx

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"condor/internal/nn"
	"condor/internal/tensor"
)

// lenetLike builds a small LeNet-style network with seeded weights.
func lenetLike(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	randT := func(shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		t.FillRandom(rng, 0.4)
		return t
	}
	return &nn.Network{
		Name:  "onnx-lenet",
		Input: nn.Shape{Channels: 1, Height: 12, Width: 12},
		Layers: []*nn.Layer{
			{Name: "conv1", Kind: nn.Conv, Kernel: 3, Stride: 1, OutputCount: 4,
				Weights: randT(4, 1, 3, 3), Bias: randT(4)},
			{Name: "relu1", Kind: nn.ReLU},
			{Name: "pool1", Kind: nn.MaxPool, Kernel: 2, Stride: 2},
			{Name: "conv2", Kind: nn.Conv, Kernel: 3, Stride: 1, Pad: 1, OutputCount: 6,
				Weights: randT(6, 4, 3, 3), Bias: randT(6)},
			{Name: "pool2", Kind: nn.AvgPool, Kernel: 5, Stride: 5},
			{Name: "fc1", Kind: nn.FullyConnected, OutputCount: 5,
				Weights: randT(5, 6), Bias: randT(5)},
			{Name: "prob", Kind: nn.LogSoftMax},
		},
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	net := lenetLike(1)
	data, err := Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Producer != "condor" || m.IRVersion != 3 || m.OpsetVersion != 9 {
		t.Fatalf("model header %+v", m)
	}
	if m.Graph.Name != "onnx-lenet" || m.Graph.InputName != "data" || m.Graph.OutputName != "output" {
		t.Fatalf("graph identity %+v", m.Graph.Name)
	}
	// 7 layers + 1 Flatten node.
	if len(m.Graph.Nodes) != 8 {
		t.Fatalf("node count %d", len(m.Graph.Nodes))
	}
	// Initializers: conv1 W/B, conv2 W/B, fc1 W/B.
	if len(m.Graph.Initializers) != 6 {
		t.Fatalf("initializer count %d", len(m.Graph.Initializers))
	}
}

func TestToNetworkComputesIdentically(t *testing.T) {
	net := lenetLike(2)
	data, err := Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	net2, err := m.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net2.Input != net.Input {
		t.Fatalf("input %v vs %v", net2.Input, net.Input)
	}
	img := tensor.New(1, 12, 12)
	img.FillRandom(rand.New(rand.NewSource(3)), 1)
	a, err := net.Predict(img)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net2.Predict(img)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatalf("ONNX round-tripped network differs by %g", tensor.MaxAbsDiff(a, b))
	}
}

// Property: encode→parse→convert preserves exact inference for random
// conv/pool/fc chains.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		net := lenetLike(seed)
		data, err := Encode(net)
		if err != nil {
			return false
		}
		m, err := Parse(data)
		if err != nil {
			return false
		}
		net2, err := m.ToNetwork()
		if err != nil {
			return false
		}
		img := tensor.New(1, 12, 12)
		img.FillRandom(rand.New(rand.NewSource(seed+99)), 1)
		a, err := net.Predict(img)
		if err != nil {
			return false
		}
		b, err := net2.Predict(img)
		if err != nil {
			return false
		}
		return tensor.MaxAbsDiff(a, b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmTransposeHandling(t *testing.T) {
	// Build a Gemm with transB=0 (W stored [in, out]) by hand and check the
	// importer transposes it.
	w := []float32{
		1, 2, // in0 -> out0, out1
		3, 4, // in1 -> out0, out1
		5, 6, // in2
	}
	var graph []byte
	graph = appendTestGraphHeader(&graph, "gemm-test", []int{1, 3, 1, 1})
	wT := encodeTensor("W", []int{3, 2}, w)
	graph = appendBytes(graph, graphInitializer, wT)
	node := encodeNode("fc", "Gemm", []string{"data", "W"}, []string{"output"}, nil) // transB absent = 0
	graph = appendBytes(graph, graphNode, node)
	graph = appendBytes(graph, graphOutput, encodeValueInfo("output", []int{1, 2, 1, 1}))
	model := wrapGraph(graph)

	m, err := Parse(model)
	if err != nil {
		t.Fatal(err)
	}
	net, err := m.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.FromSlice([]float32{1, 1, 1}, 3, 1, 1)
	out, err := net.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	// out0 = 1+3+5 = 9; out1 = 2+4+6 = 12.
	if out.At(0, 0, 0) != 9 || out.At(1, 0, 0) != 12 {
		t.Fatalf("gemm outputs %v %v", out.At(0, 0, 0), out.At(1, 0, 0))
	}
}

func TestRejectUnsupportedOperator(t *testing.T) {
	var graph []byte
	graph = appendTestGraphHeader(&graph, "bad", []int{1, 1, 4, 4})
	node := encodeNode("l", "LSTM", []string{"data"}, []string{"output"}, nil)
	graph = appendBytes(graph, graphNode, node)
	m, err := Parse(wrapGraph(graph))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ToNetwork(); err == nil || !strings.Contains(err.Error(), "unsupported operator") {
		t.Fatalf("expected unsupported-operator error, got %v", err)
	}
}

func TestRejectNonLinearGraph(t *testing.T) {
	var graph []byte
	graph = appendTestGraphHeader(&graph, "branch", []int{1, 1, 4, 4})
	graph = appendBytes(graph, graphNode, encodeNode("a", "Relu", []string{"data"}, []string{"x"}, nil))
	graph = appendBytes(graph, graphNode, encodeNode("b", "Relu", []string{"data"}, []string{"output"}, nil))
	m, err := Parse(wrapGraph(graph))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ToNetwork(); err == nil {
		t.Fatal("expected linear-graph error")
	}
}

func TestRejectGroupedConv(t *testing.T) {
	net := lenetLike(4)
	data, err := Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	// Inject group=2 on the first conv node.
	for i := range m.Graph.Nodes {
		if m.Graph.Nodes[i].OpType == "Conv" {
			m.Graph.Nodes[i].Attrs["group"] = Attribute{Name: "group", I: 2}
			break
		}
	}
	if _, err := m.ToNetwork(); err == nil {
		t.Fatal("expected grouped-conv rejection")
	}
}

func TestRejectNonSquareGeometry(t *testing.T) {
	var graph []byte
	graph = appendTestGraphHeader(&graph, "rect", []int{1, 1, 8, 8})
	node := encodeNode("p", "MaxPool", []string{"data"}, []string{"output"}, []attrSpec{
		{name: "kernel_shape", ints: []int64{2, 3}},
	})
	graph = appendBytes(graph, graphNode, node)
	m, err := Parse(wrapGraph(graph))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ToNetwork(); err == nil || !strings.Contains(err.Error(), "non-square") {
		t.Fatalf("expected non-square rejection, got %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0xff, 0xff}); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Parse(nil); err == nil {
		t.Fatal("expected no-graph error")
	}
}

func TestRawDataTensors(t *testing.T) {
	// Tensors with raw_data instead of float_data must parse identically.
	raw := []byte{0, 0, 128, 63, 0, 0, 0, 64} // [1.0, 2.0] little-endian
	var tb []byte
	tb = appendVarint(tb, tensorDims, 2)
	tb = appendVarint(tb, tensorDataType, dataTypeFloat)
	tb = appendBytes(tb, tensorRawData, raw)
	tb = appendString(tb, tensorName, "T")
	msg := decodeMsg(t, tb)
	tt, err := parseTensor(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Data) != 2 || tt.Data[0] != 1 || tt.Data[1] != 2 {
		t.Fatalf("raw tensor %v", tt.Data)
	}
}
