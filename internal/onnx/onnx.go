// Package onnx implements the ONNX frontend the paper lists as future work
// ("we are considering adding support to the ONNX format"). It decodes the
// ONNX protobuf wire format (ModelProto → GraphProto → NodeProto/
// TensorProto) with the same from-scratch codec the Caffe frontend uses,
// supports the operator subset Condor can map onto the dataflow template
// (Conv, MaxPool, AveragePool, Gemm, Relu, Sigmoid, Tanh, Softmax,
// LogSoftmax, Flatten, Dropout), and converts models into nn networks ready
// for the core logic. An encoder is provided so the test-suite and the
// model generators can produce genuine ONNX files.
package onnx

import (
	"encoding/binary"
	"fmt"
	"math"

	"condor/internal/nn"
	"condor/internal/proto"
	"condor/internal/tensor"
)

// Field numbers from onnx.proto (IR version 3+).
const (
	// ModelProto
	modelIRVersion = 1
	modelProducer  = 2
	modelGraph     = 7
	modelOpset     = 8

	// OperatorSetIdProto
	opsetDomain  = 1
	opsetVersion = 2

	// GraphProto
	graphNode        = 1
	graphName        = 2
	graphInitializer = 5
	graphInput       = 11
	graphOutput      = 12

	// NodeProto
	nodeInput     = 1
	nodeOutput    = 2
	nodeName      = 3
	nodeOpType    = 4
	nodeAttribute = 5

	// AttributeProto
	attrName   = 1
	attrF      = 2
	attrI      = 3
	attrS      = 4
	attrT      = 5
	attrFloats = 7
	attrInts   = 8
	attrType   = 20

	// TensorProto
	tensorDims      = 1
	tensorDataType  = 2
	tensorFloatData = 4
	tensorName      = 8
	tensorRawData   = 9

	// ValueInfoProto / TypeProto / TensorShapeProto
	valueInfoName   = 1
	valueInfoType   = 2
	typeTensorType  = 1
	tensorTypeElem  = 1
	tensorTypeShape = 2
	shapeDim        = 1
	dimValue        = 1
)

// TensorProto data types.
const dataTypeFloat = 1

// Attribute is one decoded node attribute.
type Attribute struct {
	Name   string
	I      int64
	F      float32
	S      string
	Ints   []int64
	Floats []float32
	Tensor *Tensor
}

// Node is one graph operator.
type Node struct {
	Name    string
	OpType  string
	Inputs  []string
	Outputs []string
	Attrs   map[string]Attribute
}

// AttrInts returns an integer-list attribute (nil when absent).
func (n *Node) AttrInts(name string) []int64 {
	if a, ok := n.Attrs[name]; ok {
		return a.Ints
	}
	return nil
}

// AttrInt returns an integer attribute with a default.
func (n *Node) AttrInt(name string, def int64) int64 {
	if a, ok := n.Attrs[name]; ok {
		return a.I
	}
	return def
}

// AttrFloat returns a float attribute with a default.
func (n *Node) AttrFloat(name string, def float32) float32 {
	if a, ok := n.Attrs[name]; ok {
		return a.F
	}
	return def
}

// Tensor is a named constant (an initializer: weights or bias).
type Tensor struct {
	Name string
	Dims []int
	Data []float32
}

// Graph is the decoded ONNX graph.
type Graph struct {
	Name         string
	Nodes        []Node
	Initializers map[string]*Tensor
	InputName    string
	InputShape   []int // NCHW (or CHW)
	OutputName   string
}

// Model is the decoded ONNX model.
type Model struct {
	IRVersion    int64
	OpsetVersion int64
	Producer     string
	Graph        Graph
}

// Parse decodes a binary ONNX model.
func Parse(data []byte) (*Model, error) {
	msg, err := proto.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("onnx: malformed model: %w", err)
	}
	m := &Model{}
	if v, ok := msg.GetUint(modelIRVersion); ok {
		m.IRVersion = int64(v)
	}
	m.Producer, _ = msg.GetString(modelProducer)
	if opsets, err := msg.GetMessages(modelOpset); err == nil {
		for _, o := range opsets {
			if d, _ := o.GetString(opsetDomain); d == "" {
				if v, ok := o.GetUint(opsetVersion); ok {
					m.OpsetVersion = int64(v)
				}
			}
		}
	}
	gm, err := msg.GetMessage(modelGraph)
	if err != nil {
		return nil, err
	}
	if gm == nil {
		return nil, fmt.Errorf("onnx: model has no graph")
	}
	if err := parseGraph(gm, &m.Graph); err != nil {
		return nil, err
	}
	return m, nil
}

func parseGraph(gm proto.Message, g *Graph) error {
	g.Name, _ = gm.GetString(graphName)
	g.Initializers = make(map[string]*Tensor)

	inits, err := gm.GetMessages(graphInitializer)
	if err != nil {
		return err
	}
	for _, tm := range inits {
		t, err := parseTensor(tm)
		if err != nil {
			return err
		}
		g.Initializers[t.Name] = t
	}

	nodes, err := gm.GetMessages(graphNode)
	if err != nil {
		return err
	}
	for i, nm := range nodes {
		n, err := parseNode(nm)
		if err != nil {
			return fmt.Errorf("onnx: node %d: %w", i, err)
		}
		g.Nodes = append(g.Nodes, n)
	}

	// Graph input: the first input that is NOT an initializer is the data
	// input.
	inputs, err := gm.GetMessages(graphInput)
	if err != nil {
		return err
	}
	for _, vi := range inputs {
		name, _ := vi.GetString(valueInfoName)
		if _, isInit := g.Initializers[name]; isInit {
			continue
		}
		g.InputName = name
		g.InputShape, err = parseValueInfoShape(vi)
		if err != nil {
			return err
		}
		break
	}
	outputs, err := gm.GetMessages(graphOutput)
	if err != nil {
		return err
	}
	if len(outputs) > 0 {
		g.OutputName, _ = outputs[0].GetString(valueInfoName)
	}
	return nil
}

func parseValueInfoShape(vi proto.Message) ([]int, error) {
	tp, err := vi.GetMessage(valueInfoType)
	if err != nil || tp == nil {
		return nil, err
	}
	tt, err := tp.GetMessage(typeTensorType)
	if err != nil || tt == nil {
		return nil, err
	}
	sh, err := tt.GetMessage(tensorTypeShape)
	if err != nil || sh == nil {
		return nil, err
	}
	dims, err := sh.GetMessages(shapeDim)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(dims))
	for _, d := range dims {
		v, _ := d.GetUint(dimValue)
		out = append(out, int(v))
	}
	return out, nil
}

func parseNode(nm proto.Message) (Node, error) {
	n := Node{Attrs: make(map[string]Attribute)}
	n.Name, _ = nm.GetString(nodeName)
	n.OpType, _ = nm.GetString(nodeOpType)
	n.Inputs = nm.GetStrings(nodeInput)
	n.Outputs = nm.GetStrings(nodeOutput)
	attrs, err := nm.GetMessages(nodeAttribute)
	if err != nil {
		return n, err
	}
	for _, am := range attrs {
		a := Attribute{}
		a.Name, _ = am.GetString(attrName)
		if v, ok := am.GetUint(attrI); ok {
			a.I = int64(v)
		}
		if v, ok := am.GetFloat(attrF); ok {
			a.F = v
		}
		// attrS and attrT are both length-delimited on field numbers 4/5,
		// so fetch them distinctly.
		for _, f := range am {
			switch {
			case f.Num == attrS && f.Wire == proto.WireBytes:
				a.S = string(f.Bytes)
			case f.Num == attrT && f.Wire == proto.WireBytes:
				sub, err := proto.Decode(f.Bytes)
				if err != nil {
					return n, err
				}
				t, err := parseTensor(sub)
				if err != nil {
					return n, err
				}
				a.Tensor = t
			}
		}
		ints, err := am.GetUints(attrInts)
		if err != nil {
			return n, err
		}
		for _, v := range ints {
			a.Ints = append(a.Ints, int64(v))
		}
		floats, err := am.GetFloats(attrFloats)
		if err != nil {
			return n, err
		}
		a.Floats = floats
		n.Attrs[a.Name] = a
	}
	return n, nil
}

func parseTensor(tm proto.Message) (*Tensor, error) {
	t := &Tensor{}
	t.Name, _ = tm.GetString(tensorName)
	dims, err := tm.GetUints(tensorDims)
	if err != nil {
		return nil, err
	}
	for _, d := range dims {
		t.Dims = append(t.Dims, int(d))
	}
	if dt := tm.GetInt(tensorDataType, dataTypeFloat); dt != dataTypeFloat {
		return nil, fmt.Errorf("onnx: tensor %q has unsupported data type %d (only float32)", t.Name, dt)
	}
	// float_data (packed floats) or raw_data (little-endian bytes).
	t.Data, err = tm.GetFloats(tensorFloatData)
	if err != nil {
		return nil, err
	}
	if len(t.Data) == 0 {
		if raw, ok := tm.GetString(tensorRawData); ok {
			b := []byte(raw)
			if len(b)%4 != 0 {
				return nil, fmt.Errorf("onnx: tensor %q raw_data of %d bytes is not float32", t.Name, len(b))
			}
			t.Data = make([]float32, len(b)/4)
			for i := range t.Data {
				t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
			}
		}
	}
	vol := 1
	for _, d := range t.Dims {
		vol *= d
	}
	if len(t.Data) != vol {
		return nil, fmt.Errorf("onnx: tensor %q has %d values, dims %v need %d", t.Name, len(t.Data), t.Dims, vol)
	}
	return t, nil
}

// ToNetwork converts the model's graph into an nn.Network. The graph must
// be a linear operator chain (the topology class Condor's template
// supports), with Flatten/Dropout/Reshape treated as identity.
func (m *Model) ToNetwork() (*nn.Network, error) {
	g := &m.Graph
	net := &nn.Network{Name: g.Name}
	switch len(g.InputShape) {
	case 4:
		net.Input = nn.Shape{Channels: g.InputShape[1], Height: g.InputShape[2], Width: g.InputShape[3]}
	case 3:
		net.Input = nn.Shape{Channels: g.InputShape[0], Height: g.InputShape[1], Width: g.InputShape[2]}
	default:
		return nil, fmt.Errorf("onnx: graph input %q has shape %v, want rank 3 or 4", g.InputName, g.InputShape)
	}

	cur := g.InputName
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if len(n.Inputs) == 0 || len(n.Outputs) == 0 {
			return nil, fmt.Errorf("onnx: node %q has no inputs/outputs", n.Name)
		}
		if n.Inputs[0] != cur {
			return nil, fmt.Errorf("onnx: node %q consumes %q, but the chain produces %q (only linear graphs are supported)",
				n.Name, n.Inputs[0], cur)
		}
		layer, err := m.convertNode(n)
		if err != nil {
			return nil, err
		}
		if layer != nil {
			net.Layers = append(net.Layers, layer)
		}
		cur = n.Outputs[0]
	}
	if g.OutputName != "" && cur != g.OutputName {
		return nil, fmt.Errorf("onnx: chain ends at %q, graph output is %q", cur, g.OutputName)
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("onnx: converted network invalid: %w", err)
	}
	return net, nil
}

// convertNode maps one ONNX operator onto an nn layer (nil for identities).
func (m *Model) convertNode(n *Node) (*nn.Layer, error) {
	name := n.Name
	if name == "" {
		name = n.OpType + "_" + n.Outputs[0]
	}
	switch n.OpType {
	case "Conv":
		return m.convertConv(n, name)
	case "MaxPool", "AveragePool":
		return m.convertPool(n, name)
	case "Gemm":
		return m.convertGemm(n, name)
	case "Relu":
		return &nn.Layer{Name: name, Kind: nn.ReLU}, nil
	case "Sigmoid":
		return &nn.Layer{Name: name, Kind: nn.Sigmoid}, nil
	case "Tanh":
		return &nn.Layer{Name: name, Kind: nn.TanH}, nil
	case "Softmax":
		return &nn.Layer{Name: name, Kind: nn.SoftMax}, nil
	case "LogSoftmax":
		return &nn.Layer{Name: name, Kind: nn.LogSoftMax}, nil
	case "Flatten", "Reshape", "Dropout", "Identity":
		return nil, nil // identity at inference time in this topology class
	default:
		return nil, fmt.Errorf("onnx: unsupported operator %q (node %q)", n.OpType, n.Name)
	}
}

func (m *Model) initializer(name string) (*Tensor, error) {
	t, ok := m.Graph.Initializers[name]
	if !ok {
		return nil, fmt.Errorf("onnx: initializer %q not found", name)
	}
	return t, nil
}

// squareAttr extracts a square geometry attribute (kernel_shape, strides,
// pads) validating symmetry.
func squareAttr(n *Node, attr string, def int) (int, error) {
	vals := n.AttrInts(attr)
	if len(vals) == 0 {
		return def, nil
	}
	first := vals[0]
	for _, v := range vals {
		if v != first {
			return 0, fmt.Errorf("onnx: node %q: non-square %s %v not supported", n.Name, attr, vals)
		}
	}
	return int(first), nil
}

func (m *Model) convertConv(n *Node, name string) (*nn.Layer, error) {
	if len(n.Inputs) < 2 {
		return nil, fmt.Errorf("onnx: Conv %q needs a weight initializer", n.Name)
	}
	if g := n.AttrInt("group", 1); g != 1 {
		return nil, fmt.Errorf("onnx: Conv %q: grouped convolutions (group=%d) not supported", n.Name, g)
	}
	w, err := m.initializer(n.Inputs[1])
	if err != nil {
		return nil, err
	}
	if len(w.Dims) != 4 {
		return nil, fmt.Errorf("onnx: Conv %q weight rank %d, want 4", n.Name, len(w.Dims))
	}
	k, err := squareAttr(n, "kernel_shape", w.Dims[2])
	if err != nil {
		return nil, err
	}
	stride, err := squareAttr(n, "strides", 1)
	if err != nil {
		return nil, err
	}
	pad, err := squareAttr(n, "pads", 0)
	if err != nil {
		return nil, err
	}
	l := &nn.Layer{
		Name: name, Kind: nn.Conv,
		Kernel: k, Stride: stride, Pad: pad,
		OutputCount: w.Dims[0],
		Weights:     tensor.FromSlice(w.Data, w.Dims...),
	}
	if len(n.Inputs) > 2 {
		b, err := m.initializer(n.Inputs[2])
		if err != nil {
			return nil, err
		}
		l.Bias = tensor.FromSlice(b.Data, len(b.Data))
	}
	return l, nil
}

func (m *Model) convertPool(n *Node, name string) (*nn.Layer, error) {
	k, err := squareAttr(n, "kernel_shape", 0)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("onnx: %s %q missing kernel_shape", n.OpType, n.Name)
	}
	stride, err := squareAttr(n, "strides", k)
	if err != nil {
		return nil, err
	}
	pad, err := squareAttr(n, "pads", 0)
	if err != nil {
		return nil, err
	}
	kind := nn.MaxPool
	if n.OpType == "AveragePool" {
		kind = nn.AvgPool
	}
	return &nn.Layer{Name: name, Kind: kind, Kernel: k, Stride: stride, Pad: pad}, nil
}

func (m *Model) convertGemm(n *Node, name string) (*nn.Layer, error) {
	if len(n.Inputs) < 2 {
		return nil, fmt.Errorf("onnx: Gemm %q needs a weight initializer", n.Name)
	}
	if a := n.AttrFloat("alpha", 1); a != 1 {
		return nil, fmt.Errorf("onnx: Gemm %q: alpha=%v not supported", n.Name, a)
	}
	if b := n.AttrFloat("beta", 1); b != 1 {
		return nil, fmt.Errorf("onnx: Gemm %q: beta=%v not supported", n.Name, b)
	}
	if ta := n.AttrInt("transA", 0); ta != 0 {
		return nil, fmt.Errorf("onnx: Gemm %q: transA not supported", n.Name)
	}
	w, err := m.initializer(n.Inputs[1])
	if err != nil {
		return nil, err
	}
	if len(w.Dims) != 2 {
		return nil, fmt.Errorf("onnx: Gemm %q weight rank %d, want 2", n.Name, len(w.Dims))
	}
	// Exporters emit either W[out,in] with transB=1 (the common case) or
	// W[in,out] with transB=0, which we transpose on import.
	var out, in int
	var data []float32
	if n.AttrInt("transB", 0) == 1 {
		out, in = w.Dims[0], w.Dims[1]
		data = w.Data
	} else {
		in, out = w.Dims[0], w.Dims[1]
		data = make([]float32, len(w.Data))
		for r := 0; r < in; r++ {
			for c := 0; c < out; c++ {
				data[c*in+r] = w.Data[r*out+c]
			}
		}
	}
	l := &nn.Layer{
		Name: name, Kind: nn.FullyConnected,
		OutputCount: out,
		Weights:     tensor.FromSlice(data, out, in),
	}
	if len(n.Inputs) > 2 {
		b, err := m.initializer(n.Inputs[2])
		if err != nil {
			return nil, err
		}
		l.Bias = tensor.FromSlice(b.Data, len(b.Data))
	}
	return l, nil
}
