//go:build race

package obs

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive tests (the disabled-tracer overhead gate) skip under it.
const raceEnabled = true
