package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file exports a Trace in the Chrome trace-event format (the JSON
// schema chrome://tracing and Perfetto load directly): one "complete"
// ("ph":"X") event per span with microsecond timestamps relative to the
// trace epoch, one process for the fabric, and one thread per track with a
// thread_name metadata event so the UI shows feeder/PE/collector lanes.

// chromeEvent is one entry of the traceEvents array. Fields follow the
// trace-event format specification; unused optional fields are omitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TsUs  float64        `json:"ts"`
	DurUs *float64       `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// threadMeta names a thread lane in the viewer.
type threadMeta struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args"`
}

// WriteChromeTrace serialises the trace as Chrome trace-event JSON (the
// {"traceEvents":[...]} object form). Call only after the traced run has
// returned.
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	tracks := tr.sortedTracks()
	events := make([]any, 0, len(tracks))
	for tid, t := range tracks {
		events = append(events, threadMeta{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": t.name},
		})
	}
	for tid, t := range tracks {
		for i := range t.spans {
			sp := &t.spans[i]
			dur := sp.End.Sub(sp.Start).Seconds() * 1e6
			args := map[string]any{"cycles": sp.Cycles()}
			if sp.Words != 0 {
				args["words"] = sp.Words
			}
			for _, a := range sp.Attrs {
				args[a.Name] = a.Value
			}
			events = append(events, chromeEvent{
				Name: sp.Name, Cat: "fabric", Phase: "X", PID: 1, TID: tid,
				TsUs:  sp.Start.Sub(tr.epoch).Seconds() * 1e6,
				DurUs: &dur, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks that data parses as trace-event JSON — either
// the bare event array or the {"traceEvents":[...]} object — and that every
// event carries the fields the viewers require: a "ph" phase, a name,
// numeric "pid"/"tid", and, for complete ("X") events, numeric "ts" and
// "dur". It returns the number of events validated; zero events is an error
// (an empty trace means the tracer was never attached). CI runs this over
// the output of `condor-sim -trace` via `condor-sim -check-trace`.
func ValidateChromeTrace(data []byte) (int, error) {
	var events []json.RawMessage
	if err := json.Unmarshal(data, &events); err != nil {
		var obj struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &obj); err != nil {
			return 0, fmt.Errorf("obs: not trace-event JSON: %w", err)
		}
		events = obj.TraceEvents
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("obs: trace has no events")
	}
	spans := 0
	for i, raw := range events {
		var ev struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("obs: event %d malformed: %w", i, err)
		}
		if ev.Ph == nil || *ev.Ph == "" {
			return 0, fmt.Errorf("obs: event %d has no phase", i)
		}
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("obs: event %d has no name", i)
		}
		if ev.PID == nil || ev.TID == nil {
			return 0, fmt.Errorf("obs: event %d missing pid/tid", i)
		}
		if *ev.Ph == "X" {
			if ev.Ts == nil || ev.Dur == nil {
				return 0, fmt.Errorf("obs: complete event %d (%s) missing ts/dur", i, *ev.Name)
			}
			if *ev.Dur < 0 {
				return 0, fmt.Errorf("obs: complete event %d (%s) has negative duration", i, *ev.Name)
			}
			spans++
		}
	}
	if spans == 0 {
		return 0, fmt.Errorf("obs: trace has no complete (ph=X) span events")
	}
	return len(events), nil
}
