package obs

import "testing"

// hookedElement mirrors how the fabric holds its tracing hook: a Tracer
// interface field that is nil when tracing is off, checked at every hook
// site. The benchmark and gate below measure exactly that disabled path —
// the cost the hot loop pays for being traceable.
type hookedElement struct {
	tracer Tracer
	track  *Track
	cycles int64
}

//go:noinline
func (h *hookedElement) step(name string, cycles int64) {
	start := h.cycles
	h.cycles += cycles
	if h.tracer == nil {
		return
	}
	if h.track == nil {
		h.track = h.tracer.Track("bench")
	}
	id := h.track.Begin(name, start)
	h.track.End(id, h.cycles)
}

// BenchmarkTracerDisabled measures the per-hook cost with tracing off: one
// interface nil check and a branch. This is the number the fabric's
// benchmark figures depend on staying negligible.
func BenchmarkTracerDisabled(b *testing.B) {
	h := &hookedElement{}
	for i := 0; i < b.N; i++ {
		h.step("layer", 100)
	}
	if h.cycles == 0 {
		b.Fatal("hook did not run")
	}
}

// BenchmarkTracerEnabled measures the same hook with a live trace attached,
// for the EXPERIMENTS.md overhead note.
func BenchmarkTracerEnabled(b *testing.B) {
	h := &hookedElement{tracer: NewTrace()}
	for i := 0; i < b.N; i++ {
		h.step("layer", 100)
	}
}

// TestDisabledTracerOverhead gates the disabled path at ≤5 ns per hook. The
// budget is generous for a nil check (sub-nanosecond on current hardware)
// but the gate still catches anyone putting an allocation, map lookup or
// lock on the disabled path. Skipped under the race detector and -short,
// where instrumentation dominates the measurement.
func TestDisabledTracerOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments every memory access; timing is meaningless")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	const budgetNs = 5.0
	var best float64
	// Take the best of three runs: the gate bounds the code path's cost,
	// not the scheduler's worst case.
	for run := 0; run < 3; run++ {
		res := testing.Benchmark(BenchmarkTracerDisabled)
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if run == 0 || ns < best {
			best = ns
		}
		if best <= budgetNs {
			break
		}
	}
	if best > budgetNs {
		t.Errorf("disabled tracer hook costs %.2f ns/op, budget %v ns/op", best, budgetNs)
	}
	t.Logf("disabled tracer hook: %.2f ns/op (budget %v)", best, budgetNs)
}
