package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- tracing ---

func TestTraceSpansAndSummary(t *testing.T) {
	tr := NewTrace()
	pe := tr.Track("pe0")
	var cyc int64
	for img := 0; img < 3; img++ {
		id := pe.Begin("conv1", cyc)
		cyc += 100
		pe.End(id, cyc)
		id = pe.Begin("pool1", cyc)
		cyc += 40
		pe.AddWords(id, 16)
		pe.End(id, cyc)
	}
	if got := tr.TrackCycles("pe0"); got != 420 {
		t.Fatalf("TrackCycles = %d, want 420", got)
	}
	sum := tr.Summary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d rows, want 2: %+v", len(sum), sum)
	}
	if sum[0].Name != "conv1" || sum[0].Count != 3 || sum[0].Cycles != 300 {
		t.Errorf("conv1 rollup wrong: %+v", sum[0])
	}
	if sum[1].Name != "pool1" || sum[1].Cycles != 120 || sum[1].Words != 48 {
		t.Errorf("pool1 rollup wrong: %+v", sum[1])
	}
}

func TestTraceConcurrentTracks(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := tr.Track("worker")
			for i := 0; i < 100; i++ {
				id := tk.Begin("step", int64(i))
				tk.End(id, int64(i+1))
			}
		}()
	}
	wg.Wait()
	if got := tr.TrackCycles("worker"); got != 800 {
		t.Fatalf("TrackCycles = %d, want 800", got)
	}
	if n := len(tr.Tracks()); n != 8 {
		t.Fatalf("track count %d, want 8", n)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tk := tr.Track("pe0")
	id := tk.Begin("conv1", 0)
	time.Sleep(time.Millisecond)
	tk.End(id, 250)
	fd := tr.Track("feeder")
	id = fd.Begin("feed", 0)
	fd.AddWords(id, 256)
	fd.End(id, 0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace does not validate: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata events + 2 spans.
	if n != 4 {
		t.Fatalf("validated %d events, want 4", n)
	}
	for _, want := range []string{`"ph": "X"`, `"name": "conv1"`, `"cycles": 250`, `"words": 256`, `"thread_name"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace JSON missing %s:\n%s", want, buf.String())
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not JSON":       "nope",
		"empty array":    "[]",
		"empty object":   `{"traceEvents":[]}`,
		"no phase":       `[{"name":"x","pid":1,"tid":0}]`,
		"no name":        `[{"ph":"X","pid":1,"tid":0,"ts":0,"dur":1}]`,
		"missing ts/dur": `[{"name":"x","ph":"X","pid":1,"tid":0}]`,
		"no span events": `[{"name":"thread_name","ph":"M","pid":1,"tid":0}]`,
		"negative dur":   `[{"name":"x","ph":"X","pid":1,"tid":0,"ts":0,"dur":-5}]`,
	}
	for what, data := range cases {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validated but should not have", what)
		}
	}
	// The bare array form is accepted.
	ok := `[{"name":"x","ph":"X","pid":1,"tid":0,"ts":0,"dur":5}]`
	if n, err := ValidateChromeTrace([]byte(ok)); err != nil || n != 1 {
		t.Errorf("bare array form: n=%d err=%v", n, err)
	}
}

// --- metrics ---

// TestExpositionGolden pins the exact Prometheus text format: ordering,
// label rendering, histogram bucket/sum/count series and escaping.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("condor_test_ops_total", "Operations.", L("kind", "push"))
	c.Add(41)
	c.Inc()
	reg.Counter("condor_test_ops_total", "Operations.", L("kind", "pop")).Add(7)
	g := reg.Gauge("condor_test_depth", "Queue depth.")
	g.Set(3)
	g.Add(0.5)
	h := reg.Histogram("condor_test_batch", "Batch sizes.", []float64{1, 2, 4})
	for _, v := range []float64{1, 2, 2, 3, 9} {
		h.Observe(v)
	}
	reg.Func("condor_test_util", TypeGauge, "Utilization with \"quotes\" and \\slashes.", func() []Sample {
		return []Sample{{Labels: []Label{L("backend", `fpga"0\`)}, Value: 0.75}}
	})

	want := `# HELP condor_test_ops_total Operations.
# TYPE condor_test_ops_total counter
condor_test_ops_total{kind="push"} 42
condor_test_ops_total{kind="pop"} 7
# HELP condor_test_depth Queue depth.
# TYPE condor_test_depth gauge
condor_test_depth 3.5
# HELP condor_test_batch Batch sizes.
# TYPE condor_test_batch histogram
condor_test_batch_bucket{le="1"} 1
condor_test_batch_bucket{le="2"} 3
condor_test_batch_bucket{le="4"} 4
condor_test_batch_bucket{le="+Inf"} 5
condor_test_batch_sum 17
condor_test_batch_count 5
# HELP condor_test_util Utilization with "quotes" and \\slashes.
# TYPE condor_test_util gauge
condor_test_util{backend="fpga\"0\\"} 0.75
`
	if got := reg.TextSnapshot(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramFunc(t *testing.T) {
	reg := NewRegistry()
	reg.HistogramFunc("condor_test_sizes", "Sizes.", func() []HistSnapshot {
		return []HistSnapshot{{
			Labels: []Label{L("pool", "a")},
			Bounds: []float64{1, 8},
			Cumul:  []uint64{2, 5},
			Sum:    23,
			Count:  6,
		}}
	})
	got := reg.TextSnapshot()
	for _, want := range []string{
		`condor_test_sizes_bucket{pool="a",le="1"} 2`,
		`condor_test_sizes_bucket{pool="a",le="8"} 5`,
		`condor_test_sizes_bucket{pool="a",le="+Inf"} 6`,
		`condor_test_sizes_sum{pool="a"} 23`,
		`condor_test_sizes_count{pool="a"} 6`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

// TestRegistryConcurrency hammers every instrument kind from many
// goroutines while a scraper renders concurrently, under -race in CI.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			c := reg.Counter("condor_conc_ops_total", "ops")
			ga := reg.Gauge("condor_conc_depth", "depth", L("worker", string(rune('a'+g))))
			h := reg.Histogram("condor_conc_lat", "lat", []float64{1, 10, 100})
			for i := 0; i < 1000; i++ {
				c.Inc()
				ga.Set(float64(i))
				h.Observe(float64(i % 120))
			}
		}(g)
	}
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				reg.TextSnapshot()
			}
		}
	}()
	workers.Wait()
	close(stop)
	<-scraped

	if got := reg.Counter("condor_conc_ops_total", "ops").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	snap := reg.TextSnapshot()
	if !strings.Contains(snap, "condor_conc_lat_count 8000") {
		t.Errorf("histogram count missing from exposition:\n%s", snap)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", what)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("condor_a_total", "a")
	mustPanic("type conflict", func() { reg.Gauge("condor_a_total", "a") })
	mustPanic("help conflict", func() { reg.Counter("condor_a_total", "b") })
	mustPanic("bad name", func() { reg.Counter("0bad", "x") })
	mustPanic("bad label", func() { reg.Counter("condor_b_total", "b", L("le", "1")) })
	mustPanic("descending buckets", func() { reg.Histogram("condor_h", "h", []float64{2, 1}) })
	reg.Func("condor_f", TypeGauge, "f", func() []Sample { return nil })
	mustPanic("func re-registration", func() { reg.Func("condor_f", TypeGauge, "f", func() []Sample { return nil }) })
	mustPanic("instrument on func family", func() { reg.Gauge("condor_f", "f") })
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("condor_http_total", "hits").Add(3)
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "condor_http_total 3") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}
