package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a small
// Prometheus-compatible registry. It supports the three canonical
// instrument kinds (counter, gauge, histogram) plus scrape-time func
// metrics for subsystems that already keep their own counters behind their
// own locks (the serving tier, the cloud client, SDAccel devices) — those
// are absorbed at exposition time instead of being double-counted.
//
// The exposition format is the Prometheus text format, served by Handler
// (condor-serve's /metricsz) and snapshot-dumpable anywhere via
// WritePrometheus / TextSnapshot (cosim, experiments, condor-sim -metrics).

// Label is one name="value" pair attached to a metric child.
type Label struct{ Name, Value string }

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Metric type strings, as emitted on the # TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Sample is one scrape-time observation returned by a func metric.
type Sample struct {
	Labels []Label
	Value  float64
}

// HistSnapshot is a scrape-time histogram returned by a histogram func
// metric: cumulative bucket counts in ascending upper-bound order (the
// +Inf bucket is implicit and equals Count).
type HistSnapshot struct {
	Labels []Label
	Bounds []float64 // ascending upper bounds
	Cumul  []uint64  // cumulative counts, len == len(Bounds)
	Sum    float64
	Count  uint64
}

// Registry holds metric families and renders them in registration order.
// All methods are safe for concurrent use; instrument updates (Counter.Add,
// Gauge.Set, Histogram.Observe) are lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

type family struct {
	name, help, typ string

	mu       sync.Mutex
	children map[string]*child
	order    []string

	// Scrape-time producers (func metrics); nil for instrument families.
	sampleFn func() []Sample
	histFn   func() []HistSnapshot
}

// child is one labelled instrument of a family.
type child struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family, panicking on a name
// reused with a different type or help — a programming bug, like fifo.New
// with a non-positive depth.
func (r *Registry) familyFor(name, typ, help string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ || f.help != help {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (%q), was %s (%q)", name, typ, help, f.typ, f.help))
	}
	return f
}

// childFor returns (creating via mk if needed) the family child for the
// label set.
func (f *family) childFor(labels []Label, mk func() *child) *child {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sampleFn != nil || f.histFn != nil {
		panic(fmt.Sprintf("obs: metric %q is a func metric; instruments cannot be added", f.name))
	}
	c, ok := f.children[key]
	if !ok {
		c = mk()
		c.labels = key
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter is a monotonically increasing instrument.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers (or fetches) a counter child with the given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, TypeCounter, help)
	c := f.childFor(labels, func() *child { return &child{counter: &Counter{}} })
	return c.counter
}

// Gauge is an instrument that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or fetches) a gauge child with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, TypeGauge, help)
	c := f.childFor(labels, func() *child { return &child{gauge: &Gauge{}} })
	return c.gauge
}

// Histogram is a fixed-bucket instrument. Observations are lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // per-bound (non-cumulative) counts
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot returns cumulative bucket counts, the sum and the count.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Cumul: make([]uint64, len(h.bounds))}
	var run uint64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		s.Cumul[i] = run
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Histogram registers (or fetches) a histogram child with ascending bucket
// upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	f := r.familyFor(name, TypeHistogram, help)
	c := f.childFor(labels, func() *child {
		return &child{hist: &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}}
	})
	return c.hist
}

// Func registers a scrape-time metric family: fn is invoked on every
// exposition and its samples are rendered under the family's name. Use for
// subsystems that already keep their own synchronised counters.
func (r *Registry) Func(name, typ, help string, fn func() []Sample) {
	if typ != TypeCounter && typ != TypeGauge {
		panic(fmt.Sprintf("obs: func metric %q must be counter or gauge, got %q", name, typ))
	}
	f := r.familyFor(name, typ, help)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.children) > 0 || f.histFn != nil || f.sampleFn != nil {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	f.sampleFn = fn
}

// HistogramFunc registers a scrape-time histogram family (for histograms a
// subsystem accumulates under its own lock, like the serving tier's
// batch-size histogram).
func (r *Registry) HistogramFunc(name, help string, fn func() []HistSnapshot) {
	f := r.familyFor(name, TypeHistogram, help)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.children) > 0 || f.histFn != nil || f.sampleFn != nil {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	f.histFn = fn
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TextSnapshot returns the exposition as a string (the snapshot-dump form
// used by cosim, experiments and condor-sim -metrics).
func (r *Registry) TextSnapshot() string {
	var b strings.Builder
	r.WritePrometheus(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// Handler serves the exposition over HTTP (condor-serve's /metricsz).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away
	})
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.Lock()
	sampleFn, histFn := f.sampleFn, f.histFn
	keys := append([]string(nil), f.order...)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	switch {
	case sampleFn != nil:
		for _, s := range sampleFn() {
			writeSample(b, f.name, renderLabels(s.Labels), s.Value)
		}
	case histFn != nil:
		for _, h := range histFn() {
			writeHist(b, f.name, renderLabels(h.Labels), h)
		}
	default:
		for _, c := range children {
			switch {
			case c.counter != nil:
				writeSample(b, f.name, c.labels, float64(c.counter.Value()))
			case c.gauge != nil:
				writeSample(b, f.name, c.labels, c.gauge.Value())
			case c.hist != nil:
				writeHist(b, f.name, c.labels, c.hist.snapshot())
			}
		}
	}
}

// writeHist renders one histogram child: _bucket series with cumulative le
// labels, then _sum and _count. base is the pre-rendered label set.
func writeHist(b *strings.Builder, name, base string, h HistSnapshot) {
	for i, bound := range h.Bounds {
		writeSample(b, name+"_bucket", mergeLe(base, formatFloat(bound)), float64(h.Cumul[i]))
	}
	writeSample(b, name+"_bucket", mergeLe(base, "+Inf"), float64(h.Count))
	writeSample(b, name+"_sum", base, h.Sum)
	writeSample(b, name+"_count", base, float64(h.Count))
}

// mergeLe appends the le label to an already-rendered label set.
func mergeLe(base, le string) string {
	leLabel := `le="` + le + `"`
	if base == "" {
		return "{" + leLabel + "}"
	}
	return base[:len(base)-1] + "," + leLabel + "}"
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// renderLabels renders a label set as {k="v",...}, escaping values.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || name == "le" {
		return false // le is reserved for histogram buckets
	}
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
