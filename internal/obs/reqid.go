package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// This file carries the fleet-level request identity: one opaque id minted at
// the outermost tier that sees a request (the fleet router, or a serve node
// receiving direct traffic) and propagated across every process boundary in
// the X-Condor-Request-ID header, so one user request can be stitched
// together across router, serve node and backend from their separate traces.

// RequestIDHeader is the HTTP header the id travels in between processes.
const RequestIDHeader = "X-Condor-Request-ID"

// NewRequestID mints a fresh 16-hex-character request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform's entropy source is gone;
		// ids only need uniqueness, so fall back to a fixed marker rather
		// than take the serving path down.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// requestIDKey is the private context key type for the request id.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request id, or "" when the context carries none.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
