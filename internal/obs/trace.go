// Package obs is the observability layer of the Condor backend: per-run
// span tracing of the dataflow fabric (exportable as Chrome trace-event
// JSON for chrome://tracing and Perfetto) and a Prometheus-style metrics
// registry that absorbs the counters every other subsystem already keeps —
// FIFO burst traffic, DDR bytes, serving-tier queue/batch/backend state,
// cloud-client retries and SDAccel device activity.
//
// Both halves are designed around the same constraint: the fabric's hot
// path must not slow down when nobody is watching. Tracing hooks sit behind
// the Tracer interface and a nil check — a disabled tracer costs one
// compare-and-branch per hook site — and span appends go to per-goroutine
// Tracks, so the enabled path takes no locks either.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Tracer is the hook the instrumented subsystems call to obtain span
// buffers. Holders keep a Tracer field that is nil when tracing is off and
// guard every hook site with a nil check, which is the whole disabled-path
// cost. *Trace is the standard implementation.
type Tracer interface {
	// Track returns a span buffer owned by the calling goroutine. Each
	// concurrently-running element (feeder, PE, collector) must claim its
	// own track: appends to a Track are lock-free precisely because a track
	// has a single writer.
	Track(name string) *Track
}

// Span is one begin/end interval on a track: a layer's pass over one image,
// a feeder push, a collector pop. Wall-clock timestamps come from the host
// simulator; Cycles carries the modeled device cycles the interval accounts
// for (zero for elements outside the cycle model, such as the datamover
// feeder). Words counts the FIFO words the interval moved, when meaningful.
type Span struct {
	Name       string
	Start      time.Time
	End        time.Time
	StartCycle int64
	EndCycle   int64
	Words      int64
	// Attrs are optional string tags (request id, backend id) attached via
	// Track.Annotate; they ride into the Chrome trace export as event args.
	Attrs []Label
}

// Cycles returns the modeled cycles the span accounts for.
func (s *Span) Cycles() int64 { return s.EndCycle - s.StartCycle }

// Track is a lock-free per-goroutine span buffer: exactly one goroutine
// appends to it (the fabric element it belongs to), so Begin/End are plain
// slice appends with no synchronisation. The owning Trace collects every
// track after the run has completed.
type Track struct {
	name  string
	spans []Span
}

// Name returns the track's identifier (the fabric element that owns it).
func (t *Track) Name() string { return t.name }

// Spans returns the recorded spans. Callers must not read a track while its
// owning goroutine is still running.
func (t *Track) Spans() []Span { return t.spans }

// Begin opens a span and returns its handle for End. startCycle is the
// element's modeled cycle counter at entry.
func (t *Track) Begin(name string, startCycle int64) int {
	t.spans = append(t.spans, Span{Name: name, Start: time.Now(), StartCycle: startCycle})
	return len(t.spans) - 1
}

// End closes the span opened by Begin. endCycle is the element's modeled
// cycle counter at exit, so Cycles() is the interval's share of the model.
func (t *Track) End(id int, endCycle int64) {
	sp := &t.spans[id]
	sp.End = time.Now()
	sp.EndCycle = endCycle
}

// AddWords accounts FIFO words moved during the span.
func (t *Track) AddWords(id int, words int64) {
	t.spans[id].Words += words
}

// Annotate attaches a string tag to the span opened by Begin — the request
// id and executing backend of a serving-tier span. Like every Track method
// it may only be called by the track's owning goroutine.
func (t *Track) Annotate(id int, key, value string) {
	t.spans[id].Attrs = append(t.spans[id].Attrs, Label{Name: key, Value: value})
}

// Trace owns the tracks of one (or more) fabric runs. Track creation takes
// the trace lock once per goroutine; everything after that is lock-free.
type Trace struct {
	epoch time.Time

	mu     sync.Mutex
	tracks []*Track
}

// NewTrace starts an empty trace; the epoch anchors exported timestamps.
func NewTrace() *Trace { return &Trace{epoch: time.Now()} }

// Track creates a new span buffer for the calling goroutine. Tracks are
// intentionally not deduplicated by name: two runs (or two goroutines)
// asking for the same name get distinct buffers, each with a single writer.
func (tr *Trace) Track(name string) *Track {
	t := &Track{name: name}
	tr.mu.Lock()
	tr.tracks = append(tr.tracks, t)
	tr.mu.Unlock()
	return t
}

// Tracks snapshots the track list. Only call after the traced run returned:
// tracks still owned by live goroutines must not be read.
func (tr *Trace) Tracks() []*Track {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Track(nil), tr.tracks...)
}

// SpanTotal aggregates every span with the same name on one track: the
// per-layer rollup behind `condor-bench -layers`.
type SpanTotal struct {
	Track  string
	Name   string
	Count  int64
	Cycles int64
	Wall   time.Duration
	Words  int64
}

// Summary aggregates spans by (track, span name), preserving first-seen
// order within a track and track creation order overall.
func (tr *Trace) Summary() []SpanTotal {
	var out []SpanTotal
	index := make(map[[2]string]int)
	for _, t := range tr.Tracks() {
		for i := range t.spans {
			sp := &t.spans[i]
			key := [2]string{t.name, sp.Name}
			j, ok := index[key]
			if !ok {
				j = len(out)
				index[key] = j
				out = append(out, SpanTotal{Track: t.name, Name: sp.Name})
			}
			out[j].Count++
			out[j].Cycles += sp.Cycles()
			out[j].Wall += sp.End.Sub(sp.Start)
			out[j].Words += sp.Words
		}
	}
	return out
}

// TrackCycles sums the modeled cycles of every span on tracks with the
// given name — the reconciliation quantity tests compare against the
// fabric's own RunStats cycle counters.
func (tr *Trace) TrackCycles(name string) int64 {
	var total int64
	for _, t := range tr.Tracks() {
		if t.name != name {
			continue
		}
		for i := range t.spans {
			total += t.spans[i].Cycles()
		}
	}
	return total
}

// sortedTracks returns tracks ordered by name then creation order, giving
// exports a stable thread layout.
func (tr *Trace) sortedTracks() []*Track {
	ts := tr.Tracks()
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	return ts
}
