package models

import (
	"testing"

	"condor/internal/caffe"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/nn"
	"condor/internal/tensor"
)

func TestTC1Valid(t *testing.T) {
	ir, ws, err := TC1()
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Validate(); err != nil {
		t.Fatal(err)
	}
	if ir.FrequencyMHz != 100 || ir.Board != F1Board {
		t.Fatalf("TC1 deployment config %v %v", ir.FrequencyMHz, ir.Board)
	}
	net, err := ir.BuildNN(ws)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if out.Channels != 10 {
		t.Fatalf("TC1 output %v", out)
	}
	// TC1 must have fewer layers than LeNet's pipeline (a paper premise for
	// its Figure 5 knee).
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.PEs) != 6 {
		t.Fatalf("TC1 PE count = %d", len(spec.PEs))
	}
}

func TestTC1RunsOnFabric(t *testing.T) {
	ir, ws, err := TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := dataflow.Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	net, err := ir.BuildNN(ws)
	if err != nil {
		t.Fatal(err)
	}
	imgs := USPSImages(2, 7)
	outs, _, err := acc.Run(imgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imgs {
		want, err := net.Predict(imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(outs[i], want, 2e-3) {
			t.Fatalf("TC1 fabric output differs by %g", tensor.MaxAbsDiff(outs[i], want))
		}
	}
}

func TestLeNetViaCaffeFrontend(t *testing.T) {
	ir, ws, err := LeNet()
	if err != nil {
		t.Fatal(err)
	}
	if ir.Name != "LeNet" || ir.FrequencyMHz != 180 {
		t.Fatalf("LeNet config %q %v", ir.Name, ir.FrequencyMHz)
	}
	if len(ir.Layers) != 8 {
		t.Fatalf("LeNet layer count %d", len(ir.Layers))
	}
	net, err := ir.BuildNN(ws)
	if err != nil {
		t.Fatal(err)
	}
	if net.Input != (nn.Shape{Channels: 1, Height: 28, Width: 28}) {
		t.Fatalf("LeNet input %v", net.Input)
	}
	// ~4.6 MFLOPs per image, the canonical LeNet figure.
	fl := net.TotalFLOPs()
	if fl < 4_000_000 || fl > 5_500_000 {
		t.Fatalf("LeNet FLOPs = %d", fl)
	}
}

func TestLeNetCaffeModelParsesBack(t *testing.T) {
	blob, err := LeNetCaffeModel(5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := caffe.ParseCaffeModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "LeNet" {
		t.Fatalf("name %q", m.Name)
	}
	ip1 := m.LayerByName("ip1")
	if ip1 == nil || len(ip1.Blobs) != 2 || len(ip1.Blobs[0].Data) != 500*800 {
		t.Fatal("ip1 blobs wrong")
	}
}

func TestLeNetCaffeModelDeterministic(t *testing.T) {
	a, err := LeNetCaffeModel(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LeNetCaffeModel(9)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("caffemodel generation not deterministic")
	}
	c, err := LeNetCaffeModel(10)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestVGG16Topology(t *testing.T) {
	ir := VGG16()
	if err := ir.Validate(); err != nil {
		t.Fatal(err)
	}
	shapes, err := ir.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	// Canonical VGG-16: last pooling output is 512x7x7.
	var beforeFC nn.Shape
	for i, l := range ir.Layers {
		if l.Name == "fc6" {
			beforeFC = shapes[i]
		}
	}
	if beforeFC != (nn.Shape{Channels: 512, Height: 7, Width: 7}) {
		t.Fatalf("pre-classifier shape %v", beforeFC)
	}
	// 13 convolutional layers.
	convs := 0
	for _, l := range ir.Layers {
		if l.Type == "Convolution" {
			convs++
		}
	}
	if convs != 13 {
		t.Fatalf("conv count = %d", convs)
	}
}

func TestVGG16FeaturesFLOPs(t *testing.T) {
	irF := VGG16Features()
	if err := irF.Validate(); err != nil {
		t.Fatal(err)
	}
	// The canonical VGG-16 features-extraction cost is ≈30.7 GFLOPs
	// (15.3 GMACs) per 224x224 image; count from geometry alone.
	fl := IRFLOPs(t, irF)
	if fl < 29_000_000_000 || fl > 32_000_000_000 {
		t.Fatalf("VGG features FLOPs = %d", fl)
	}
}

// IRFLOPs computes the FLOPs of one forward pass from the IR geometry
// without materialising weights.
func IRFLOPs(t *testing.T, ir *condorir.Network) int64 {
	t.Helper()
	shapes, err := ir.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range ir.Layers {
		l := &ir.Layers[i]
		kind, err := l.Kind()
		if err != nil {
			t.Fatal(err)
		}
		stride := l.Stride
		if stride <= 0 {
			stride = 1
		}
		skel := nn.Layer{Name: l.Name, Kind: kind, Kernel: l.KernelSize, Stride: stride, Pad: l.Pad, OutputCount: l.NumOutput}
		if l.Bias {
			skel.Bias = tensor.New(maxInt(l.NumOutput, 1))
		}
		total += skel.FLOPs(shapes[i])
	}
	return total
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSyntheticImagesDeterministicAndNormalised(t *testing.T) {
	a := USPSImages(3, 42)
	b := USPSImages(3, 42)
	for i := range a {
		if tensor.MaxAbsDiff(a[i], b[i]) != 0 {
			t.Fatal("generator not deterministic")
		}
		if got := a[i].Shape(); got[0] != 1 || got[1] != 16 || got[2] != 16 {
			t.Fatalf("USPS shape %v", got)
		}
		nonZero := 0
		for _, v := range a[i].Data() {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v outside [0,1]", v)
			}
			if v > 0.1 {
				nonZero++
			}
		}
		if nonZero == 0 {
			t.Fatal("image is empty")
		}
	}
	m := MNISTImages(1, 1)[0]
	if got := m.Shape(); got[1] != 28 || got[2] != 28 {
		t.Fatalf("MNIST shape %v", got)
	}
}

func TestRandomWeightsMatchGeometry(t *testing.T) {
	ir, _, err := TC1()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := RandomWeights(ir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.BuildNN(ws); err != nil {
		t.Fatal(err)
	}
}

func TestAlexNetTopology(t *testing.T) {
	ir := AlexNet()
	if err := ir.Validate(); err != nil {
		t.Fatal(err)
	}
	shapes, err := ir.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	// Canonical AlexNet intermediates: conv1 out 96x55x55, pool5 out 256x6x6.
	if shapes[1] != (nn.Shape{Channels: 96, Height: 55, Width: 55}) {
		t.Fatalf("conv1 output %v", shapes[1])
	}
	var beforeFC nn.Shape
	for i, l := range ir.Layers {
		if l.Name == "fc6" {
			beforeFC = shapes[i]
		}
	}
	if beforeFC != (nn.Shape{Channels: 256, Height: 6, Width: 6}) {
		t.Fatalf("pre-classifier shape %v", beforeFC)
	}
	// ≈1.45 GFLOPs for the ungrouped features stage.
	fl := IRFLOPs(t, AlexNetFeatures())
	if fl < 1_000_000_000 || fl > 2_600_000_000 {
		t.Fatalf("AlexNet features FLOPs = %d", fl)
	}
}

func TestAlexNetFeaturesBuildSpec(t *testing.T) {
	spec, err := dataflow.BuildSpec(AlexNetFeatures())
	if err != nil {
		t.Fatal(err)
	}
	// 8 compute PEs: 5 convs + 3 pools (activations folded).
	if len(spec.PEs) != 8 {
		t.Fatalf("PE count = %d", len(spec.PEs))
	}
	// conv1's chain covers the 11x11 window over the 227-wide input.
	if spec.PEs[0].Chain.Kernel != 11 || spec.PEs[0].Chain.PaddedW != 227 {
		t.Fatalf("conv1 chain = %+v", spec.PEs[0].Chain)
	}
}
