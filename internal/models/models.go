// Package models provides the networks the paper evaluates — TC1 (the USPS
// network of Bacis et al., IPDPSW'17), LeNet (from the Caffe model zoo) and
// VGG-16 — together with deterministic synthetic stand-ins for the trained
// weights and the USPS/MNIST inputs. Weight and pixel values do not affect
// throughput, resource usage or power, so seeded random tensors preserve
// every quantity the evaluation reports while keeping the repository
// self-contained; functional correctness is validated against the nn
// reference engine, which uses the same weights.
package models

import (
	"fmt"
	"math/rand"

	"condor/internal/caffe"
	"condor/internal/condorir"
	"condor/internal/nn"
	"condor/internal/tensor"
)

// Paper deployment frequencies (Section 4).
const (
	TC1FreqMHz   = 100
	LeNetFreqMHz = 180
	VGGFreqMHz   = 150 // our choice for the Table 2 preliminary experiment
)

// F1Board is the deployment target of the paper's evaluation.
const F1Board = "aws-f1-vu9p"

// TC1 returns the paper's first test case: the CNN of [25] trained on the
// USPS dataset (16x16 grayscale digits). The exact topology is not restated
// in this paper; the assumption documented in DESIGN.md is a two-stage
// features extractor (5x5 convolutions with average pooling) followed by a
// two-layer MLP with LogSoftMax, matching the constraints the paper states
// (USPS input, fewer layers than LeNet, higher achievable throughput).
func TC1() (*condorir.Network, *condorir.WeightSet, error) {
	ir := &condorir.Network{
		Name: "TC1", Board: F1Board, FrequencyMHz: TC1FreqMHz,
		Input: condorir.InputShape{Channels: 1, Height: 16, Width: 16},
		Layers: []condorir.Layer{
			{Name: "conv1", Type: "Convolution", KernelSize: 5, Stride: 1, NumOutput: 8, Bias: true, PEGroup: -1},
			{Name: "relu1", Type: "ReLU", PEGroup: -1},
			{Name: "pool1", Type: "AvgPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
			{Name: "conv2", Type: "Convolution", KernelSize: 5, Stride: 1, NumOutput: 16, Bias: true, PEGroup: -1},
			{Name: "relu2", Type: "ReLU", PEGroup: -1},
			{Name: "pool2", Type: "AvgPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
			{Name: "fc1", Type: "InnerProduct", NumOutput: 64, Bias: true, PEGroup: -1},
			{Name: "relu3", Type: "ReLU", PEGroup: -1},
			{Name: "fc2", Type: "InnerProduct", NumOutput: 10, Bias: true, PEGroup: -1},
			{Name: "prob", Type: "LogSoftMax", PEGroup: -1},
		},
	}
	ws, err := RandomWeights(ir, 1001)
	if err != nil {
		return nil, nil, err
	}
	return ir, ws, nil
}

// LeNetPrototxt is the deploy variant of the Caffe model-zoo LeNet the
// paper generates its second test case from (footnote 3 of the paper).
const LeNetPrototxt = `name: "LeNet"
input: "data"
input_dim: 64
input_dim: 1
input_dim: 28
input_dim: 28
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 20 kernel_size: 5 stride: 1 }
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "conv2"
  type: "Convolution"
  bottom: "pool1"
  top: "conv2"
  convolution_param { num_output: 50 kernel_size: 5 stride: 1 }
}
layer {
  name: "pool2"
  type: "Pooling"
  bottom: "conv2"
  top: "pool2"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "ip1"
  type: "InnerProduct"
  bottom: "pool2"
  top: "ip1"
  inner_product_param { num_output: 500 }
}
layer { name: "relu1" type: "ReLU" bottom: "ip1" top: "ip1" }
layer {
  name: "ip2"
  type: "InnerProduct"
  bottom: "ip1"
  top: "ip2"
  inner_product_param { num_output: 10 }
}
layer { name: "prob" type: "Softmax" bottom: "ip2" top: "prob" }
`

// LeNetCaffeModel generates a binary caffemodel for the LeNet topology with
// seeded random weights — a genuine Caffe wire-format file that exercises
// the frontend's binary path end to end.
func LeNetCaffeModel(seed int64) ([]byte, error) {
	m, err := caffe.ParsePrototxt(LeNetPrototxt)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	blob := func(shape ...int) caffe.Blob {
		n := 1
		for _, d := range shape {
			n *= d
		}
		data := make([]float32, n)
		for i := range data {
			data[i] = (rng.Float32()*2 - 1) * 0.2
		}
		return caffe.Blob{Shape: shape, Data: data}
	}
	fill := func(name string, blobs ...caffe.Blob) error {
		l := m.LayerByName(name)
		if l == nil {
			return fmt.Errorf("models: layer %q missing from LeNet prototxt", name)
		}
		l.Blobs = blobs
		return nil
	}
	if err := fill("conv1", blob(20, 1, 5, 5), blob(20)); err != nil {
		return nil, err
	}
	if err := fill("conv2", blob(50, 20, 5, 5), blob(50)); err != nil {
		return nil, err
	}
	if err := fill("ip1", blob(500, 800), blob(500)); err != nil {
		return nil, err
	}
	if err := fill("ip2", blob(10, 500), blob(10)); err != nil {
		return nil, err
	}
	return caffe.EncodeCaffeModel(m), nil
}

// LeNet returns the LeNet test case via the real Caffe frontend path:
// the embedded prototxt and a generated caffemodel are parsed, merged and
// translated into the Condor representation at the paper's 180 MHz.
func LeNet() (*condorir.Network, *condorir.WeightSet, error) {
	topo, err := caffe.ParsePrototxt(LeNetPrototxt)
	if err != nil {
		return nil, nil, err
	}
	blob, err := LeNetCaffeModel(2002)
	if err != nil {
		return nil, nil, err
	}
	trained, err := caffe.ParseCaffeModel(blob)
	if err != nil {
		return nil, nil, err
	}
	topo.MergeWeights(trained)
	return condorir.FromCaffe(topo, F1Board, LeNetFreqMHz)
}

// VGG16 returns the VGG-16 topology (Simonyan & Zisserman configuration D)
// as a Condor IR. Weights are not generated — the network appears in the
// evaluation only through the analytic models (its classifier is not
// synthesizable with the current methodology, as the paper reports, and a
// functional simulation of 15 GFLOP images is out of scope).
func VGG16() *condorir.Network {
	ir := &condorir.Network{
		Name: "VGG-16", Board: F1Board, FrequencyMHz: VGGFreqMHz,
		Input: condorir.InputShape{Channels: 3, Height: 224, Width: 224},
	}
	conv := func(name string, out int) condorir.Layer {
		return condorir.Layer{Name: name, Type: "Convolution", KernelSize: 3, Stride: 1, Pad: 1,
			NumOutput: out, Bias: true, PEGroup: -1}
	}
	relu := func(name string) condorir.Layer {
		return condorir.Layer{Name: name, Type: "ReLU", PEGroup: -1}
	}
	pool := func(name string) condorir.Layer {
		return condorir.Layer{Name: name, Type: "MaxPooling", KernelSize: 2, Stride: 2, PEGroup: -1}
	}
	blocks := []struct {
		convs int
		width int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	for bi, blk := range blocks {
		for ci := 0; ci < blk.convs; ci++ {
			name := fmt.Sprintf("conv%d_%d", bi+1, ci+1)
			ir.Layers = append(ir.Layers, conv(name, blk.width), relu("relu"+name[4:]))
		}
		ir.Layers = append(ir.Layers, pool(fmt.Sprintf("pool%d", bi+1)))
	}
	ir.Layers = append(ir.Layers,
		condorir.Layer{Name: "fc6", Type: "InnerProduct", NumOutput: 4096, Bias: true, PEGroup: -1},
		relu("relu6"),
		condorir.Layer{Name: "fc7", Type: "InnerProduct", NumOutput: 4096, Bias: true, PEGroup: -1},
		relu("relu7"),
		condorir.Layer{Name: "fc8", Type: "InnerProduct", NumOutput: 1000, Bias: true, PEGroup: -1},
		condorir.Layer{Name: "prob", Type: "Softmax", PEGroup: -1},
	)
	return ir
}

// VGG16Features returns only the features-extraction stage of VGG-16, the
// part Table 2 of the paper reports preliminary results for.
func VGG16Features() *condorir.Network {
	full := VGG16()
	var layers []condorir.Layer
	for _, l := range full.Layers {
		kind, _ := l.Kind()
		if kind.IsClassifier() {
			break
		}
		layers = append(layers, l)
	}
	full.Layers = layers
	full.Name = "VGG-16-features"
	return full
}

// RandomWeights generates a seeded weight set matching an IR's geometry.
func RandomWeights(ir *condorir.Network, seed int64) (*condorir.WeightSet, error) {
	shapes, err := ir.Shapes()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ws := condorir.NewWeightSet()
	for i := range ir.Layers {
		l := &ir.Layers[i]
		kind, err := l.Kind()
		if err != nil {
			return nil, err
		}
		in := shapes[i]
		switch kind {
		case nn.Conv:
			w := tensor.New(l.NumOutput, in.Channels, l.KernelSize, l.KernelSize)
			w.FillRandom(rng, 0.3)
			ws.Put(l.Name, condorir.EntryWeights, w)
		case nn.FullyConnected:
			w := tensor.New(l.NumOutput, in.Volume())
			w.FillRandom(rng, 0.3)
			ws.Put(l.Name, condorir.EntryWeights, w)
		}
		if l.Bias {
			b := tensor.New(l.NumOutput)
			b.FillRandom(rng, 0.1)
			ws.Put(l.Name, condorir.EntryBias, b)
		}
	}
	return ws, nil
}

// AlexNet returns the AlexNet topology (the single-tower "one weird trick"
// variant, since Condor does not support grouped convolutions) as a Condor
// IR. Like VGG-16, it appears through the analytic models only; its fc6
// weight matrix (37.7M words) also exceeds the HLS array limit, so its
// classifier reproduces the paper's "not synthesizable" gate.
func AlexNet() *condorir.Network {
	ir := &condorir.Network{
		Name: "AlexNet", Board: F1Board, FrequencyMHz: VGGFreqMHz,
		Input: condorir.InputShape{Channels: 3, Height: 227, Width: 227},
		Layers: []condorir.Layer{
			{Name: "conv1", Type: "Convolution", KernelSize: 11, Stride: 4, NumOutput: 96, Bias: true, PEGroup: -1},
			{Name: "relu1", Type: "ReLU", PEGroup: -1},
			{Name: "pool1", Type: "MaxPooling", KernelSize: 3, Stride: 2, PEGroup: -1},
			{Name: "conv2", Type: "Convolution", KernelSize: 5, Stride: 1, Pad: 2, NumOutput: 256, Bias: true, PEGroup: -1},
			{Name: "relu2", Type: "ReLU", PEGroup: -1},
			{Name: "pool2", Type: "MaxPooling", KernelSize: 3, Stride: 2, PEGroup: -1},
			{Name: "conv3", Type: "Convolution", KernelSize: 3, Stride: 1, Pad: 1, NumOutput: 384, Bias: true, PEGroup: -1},
			{Name: "relu3", Type: "ReLU", PEGroup: -1},
			{Name: "conv4", Type: "Convolution", KernelSize: 3, Stride: 1, Pad: 1, NumOutput: 384, Bias: true, PEGroup: -1},
			{Name: "relu4", Type: "ReLU", PEGroup: -1},
			{Name: "conv5", Type: "Convolution", KernelSize: 3, Stride: 1, Pad: 1, NumOutput: 256, Bias: true, PEGroup: -1},
			{Name: "relu5", Type: "ReLU", PEGroup: -1},
			{Name: "pool5", Type: "MaxPooling", KernelSize: 3, Stride: 2, PEGroup: -1},
			{Name: "fc6", Type: "InnerProduct", NumOutput: 4096, Bias: true, PEGroup: -1},
			{Name: "relu6", Type: "ReLU", PEGroup: -1},
			{Name: "fc7", Type: "InnerProduct", NumOutput: 4096, Bias: true, PEGroup: -1},
			{Name: "relu7", Type: "ReLU", PEGroup: -1},
			{Name: "fc8", Type: "InnerProduct", NumOutput: 1000, Bias: true, PEGroup: -1},
			{Name: "prob", Type: "Softmax", PEGroup: -1},
		},
	}
	return ir
}

// AlexNetFeatures returns only the features-extraction stage of AlexNet.
func AlexNetFeatures() *condorir.Network {
	full := AlexNet()
	var layers []condorir.Layer
	for _, l := range full.Layers {
		kind, _ := l.Kind()
		if kind.IsClassifier() {
			break
		}
		layers = append(layers, l)
	}
	full.Layers = layers
	full.Name = "AlexNet-features"
	return full
}
