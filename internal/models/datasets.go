package models

import (
	"math"
	"math/rand"

	"condor/internal/tensor"
)

// The synthetic dataset generators replace the USPS and MNIST corpora the
// paper's networks were trained on. Each image is a deterministic
// pseudo-digit: a handful of strokes rendered with a soft (Gaussian) pen on
// the digit grid, normalised to [0,1]. Inference throughput is independent
// of pixel values; these generators exist so the examples and tests run
// realistic-looking workloads without shipping datasets.

// USPSImages generates n synthetic USPS-like images (1x16x16).
func USPSImages(n int, seed int64) []*tensor.Tensor {
	return strokeImages(n, 16, seed)
}

// MNISTImages generates n synthetic MNIST-like images (1x28x28).
func MNISTImages(n int, seed int64) []*tensor.Tensor {
	return strokeImages(n, 28, seed)
}

// strokeImages renders n images of side s.
func strokeImages(n, s int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = strokeImage(s, rng)
	}
	return out
}

// strokeImage draws 2-4 straight strokes with a Gaussian pen profile.
func strokeImage(s int, rng *rand.Rand) *tensor.Tensor {
	img := tensor.New(1, s, s)
	data := img.Data()
	strokes := rng.Intn(3) + 2
	pen := float64(s) / 12.0 // pen radius scales with resolution
	for k := 0; k < strokes; k++ {
		x0 := rng.Float64() * float64(s-1)
		y0 := rng.Float64() * float64(s-1)
		x1 := rng.Float64() * float64(s-1)
		y1 := rng.Float64() * float64(s-1)
		steps := 3 * s
		for t := 0; t <= steps; t++ {
			f := float64(t) / float64(steps)
			cx := x0 + f*(x1-x0)
			cy := y0 + f*(y1-y0)
			lo := int(math.Max(0, math.Floor(cy-3*pen)))
			hi := int(math.Min(float64(s-1), math.Ceil(cy+3*pen)))
			for y := lo; y <= hi; y++ {
				xlo := int(math.Max(0, math.Floor(cx-3*pen)))
				xhi := int(math.Min(float64(s-1), math.Ceil(cx+3*pen)))
				for x := xlo; x <= xhi; x++ {
					d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
					v := float32(math.Exp(-d2 / (2 * pen * pen)))
					idx := y*s + x
					if v > data[idx] {
						data[idx] = v
					}
				}
			}
		}
	}
	return img
}
