package power

import (
	"testing"
	"testing/quick"

	"condor/internal/board"
)

func TestModelStaticFloor(t *testing.T) {
	e := Model(board.Resources{}, 0, 0)
	if e.TotalW() != staticW {
		t.Fatalf("idle power = %v, want %v", e.TotalW(), staticW)
	}
}

func TestModelMonotoneInActivity(t *testing.T) {
	res := board.Resources{LUT: 100000, FF: 200000, DSP: 300, BRAM: 100}
	low := Model(res, 100, 1)
	high := Model(res, 100, 10)
	if high.TotalW() <= low.TotalW() {
		t.Fatal("power must grow with throughput")
	}
	slow := Model(res, 100, 5)
	fast := Model(res, 200, 5)
	if fast.TotalW() <= slow.TotalW() {
		t.Fatal("power must grow with frequency")
	}
}

func TestModelNegativeInputsClamped(t *testing.T) {
	e := Model(board.Resources{LUT: 1000}, -5, -2)
	if e.TotalW() != staticW {
		t.Fatalf("clamped power = %v", e.TotalW())
	}
}

func TestGFLOPSPerWatt(t *testing.T) {
	e := Estimate{StaticW: 2, ComputeW: 1, ClockingW: 1}
	if got := GFLOPSPerWatt(8, e); got != 2 {
		t.Fatalf("GFLOPS/W = %v", got)
	}
	if GFLOPSPerWatt(1, Estimate{}) != 0 {
		t.Fatal("zero power should return 0, not Inf")
	}
}

func TestTable1Band(t *testing.T) {
	// Sanity: a TC1-class design (≈130k LUT, 330 DSP, small BRAM, 100 MHz,
	// ≈8 GFLOPS) should land in the paper's single-digit Watt band with
	// GFLOPS/W above 1.
	res := board.Resources{LUT: 130000, FF: 230000, DSP: 330, BRAM: 120}
	e := Model(res, 100, 8)
	if e.TotalW() < 4 || e.TotalW() > 8 {
		t.Fatalf("TC1-class power %v W outside plausible band", e.TotalW())
	}
	if eff := GFLOPSPerWatt(8, e); eff < 0.8 || eff > 2.5 {
		t.Fatalf("TC1-class efficiency %v outside plausible band", eff)
	}
}

// Property: power is monotone non-decreasing in every resource component.
func TestMonotoneInResourcesProperty(t *testing.T) {
	f := func(l1, l2 uint32, d1, d2, b1, b2 uint16) bool {
		a := board.Resources{LUT: float64(l1 % 1000000), DSP: float64(d1 % 7000), BRAM: float64(b1 % 2000)}
		b := a.Add(board.Resources{LUT: float64(l2 % 1000000), DSP: float64(d2 % 7000), BRAM: float64(b2 % 2000)})
		return Model(b, 150, 5).TotalW() >= Model(a, 150, 5).TotalW()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
