// Package power estimates board power for a synthesized Condor accelerator,
// producing the GFLOPS/W figure of the paper's Table 1. The model follows
// the standard CMOS decomposition: a static term (device leakage plus the
// always-on platform shell), an activity term proportional to the sustained
// arithmetic throughput (the switching of the datapath), and a clock-tree /
// memory term proportional to frequency and resource occupancy. The
// coefficients are calibrated on published VU9P power characterisations.
package power

import (
	"condor/internal/board"
)

// Coefficients of the model (Watts).
const (
	// staticW covers device leakage, the shell and the DDR PHYs.
	staticW = 2.8

	// wPerGFLOPS is the datapath activity term: energy per floating-point
	// operation (0.35 W per sustained GFLOP/s ≈ 350 pJ/FLOP end to end).
	wPerGFLOPS = 0.35

	// Clock-tree and idle-toggle terms, per resource unit per MHz.
	wPerLUTMHz  = 5e-9
	wPerFFMHz   = 2.5e-9
	wPerDSPMHz  = 2e-6
	wPerBRAMMHz = 1e-5
)

// Estimate is a power breakdown in Watts.
type Estimate struct {
	StaticW   float64
	ComputeW  float64 // activity-proportional datapath switching
	ClockingW float64 // clock tree and resource idle toggle
}

// TotalW returns the total board power.
func (e Estimate) TotalW() float64 { return e.StaticW + e.ComputeW + e.ClockingW }

// Model estimates power for a design occupying res (device totals including
// shell), clocked at freqMHz, sustaining gflops of arithmetic throughput.
func Model(res board.Resources, freqMHz, gflops float64) Estimate {
	if freqMHz < 0 {
		freqMHz = 0
	}
	if gflops < 0 {
		gflops = 0
	}
	return Estimate{
		StaticW:  staticW,
		ComputeW: wPerGFLOPS * gflops,
		ClockingW: freqMHz * (wPerLUTMHz*res.LUT +
			wPerFFMHz*res.FF +
			wPerDSPMHz*res.DSP +
			wPerBRAMMHz*res.BRAM),
	}
}

// GFLOPSPerWatt returns the efficiency figure of Table 1.
func GFLOPSPerWatt(gflops float64, e Estimate) float64 {
	t := e.TotalW()
	if t <= 0 {
		return 0
	}
	return gflops / t
}
