package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(3, time.Second, clk.now)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker rejected traffic after %d/%d failures", i+1, 3)
		}
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(1, time.Second, clk.now)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}

	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no trial admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during trial = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// A failed trial re-opens immediately and restarts the cooldown.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted traffic without a fresh cooldown")
	}

	// A successful trial closes the circuit for good.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed but no trial admitted")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected traffic")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(2, time.Second, nil)
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}
