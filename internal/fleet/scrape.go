package fleet

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file is the autoscaler's input side: a minimal Prometheus
// text-exposition parser and the per-node scrape that distils a
// condor-serve /metricsz page into the three signals the control law needs
// — queue pressure, backend utilization, and the p99 total latency.

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText parses Prometheus text exposition into samples. Unparseable
// lines are skipped — the scraper degrades to fewer signals rather than
// failing the control loop on one malformed family.
func parsePromText(r io.Reader) []promSample {
	var out []promSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		s := promSample{labels: map[string]string{}, value: val}
		if i := strings.IndexByte(series, '{'); i >= 0 {
			s.name = series[:i]
			inner := strings.TrimSuffix(series[i+1:], "}")
			for _, pair := range splitLabels(inner) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					continue
				}
				key := pair[:eq]
				v := strings.Trim(pair[eq+1:], `"`)
				s.labels[key] = v
			}
		} else {
			s.name = series
		}
		out = append(out, s)
	}
	return out
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

// NodeMetrics is one node's scraped control signals.
type NodeMetrics struct {
	URL           string  `json:"url"`
	QueueDepth    float64 `json:"queue_depth"`
	QueueCapacity float64 `json:"queue_capacity"`
	// Utilization is the mean modeled-busy fraction across the node's
	// backends.
	Utilization float64 `json:"utilization"`
	// TotalP99Ms is the node's p99 end-to-end latency over its reservoir.
	TotalP99Ms float64 `json:"total_p99_ms"`
}

// QueuePressure is queue depth over capacity (0 when capacity is unknown).
func (m NodeMetrics) QueuePressure() float64 {
	if m.QueueCapacity <= 0 {
		return 0
	}
	return m.QueueDepth / m.QueueCapacity
}

// parseNodeMetrics distils one /metricsz page.
func parseNodeMetrics(url string, r io.Reader) NodeMetrics {
	m := NodeMetrics{URL: url}
	var utilSum float64
	var utilN int
	for _, s := range parsePromText(r) {
		switch s.name {
		case "condor_serve_queue_depth":
			m.QueueDepth = s.value
		case "condor_serve_queue_capacity":
			m.QueueCapacity = s.value
		case "condor_serve_backend_utilization":
			utilSum += s.value
			utilN++
		case "condor_serve_latency_ms":
			if s.labels["kind"] == "total" && s.labels["q"] == "0.99" {
				m.TotalP99Ms = s.value
			}
		}
	}
	if utilN > 0 {
		m.Utilization = utilSum / float64(utilN)
	}
	return m
}

// MetricsScraper polls every ready node's /metricsz. The Membership-backed
// implementation is what the autoscaler runs against in production; tests
// substitute the Scrape func directly.
type MetricsScraper struct {
	members *Membership
	client  *http.Client
}

// NewMetricsScraper builds a scraper over the router's membership.
func NewMetricsScraper(members *Membership) *MetricsScraper {
	return &MetricsScraper{
		members: members,
		client:  &http.Client{Timeout: members.cfg.ProbeTimeout},
	}
}

// Scrape fetches metrics from every ready node, sorted by URL. Nodes that
// fail to answer are omitted — the control law works on what it can see.
func (s *MetricsScraper) Scrape() []NodeMetrics {
	var out []NodeMetrics
	for _, url := range s.members.ring.Members() {
		resp, err := s.client.Get(url + "/metricsz")
		if err != nil {
			continue
		}
		m := parseNodeMetrics(url, resp.Body)
		resp.Body.Close()
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
