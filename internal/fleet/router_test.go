package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condor/internal/obs"
	"condor/internal/serve"
)

// stubNode is a minimal condor-serve stand-in: /healthz reports an input
// shape, /readyz follows the down flag, /infer is scripted per test.
type stubNode struct {
	srv   *httptest.Server
	down  atomic.Bool
	infer func(w http.ResponseWriter, r *http.Request)
	hits  atomic.Int64
}

func newStubNode(t *testing.T, infer func(w http.ResponseWriter, r *http.Request)) *stubNode {
	t.Helper()
	n := &stubNode{infer: infer}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if n.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(serve.HealthResponse{
			Status: "ok", Input: serve.InputShape{Channels: 1, Height: 8, Width: 8}, Backends: 1,
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if n.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ready"}`))
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		n.hits.Add(1)
		if n.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		n.infer(w, r)
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func okInfer(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte(`{"argmax":1}`))
}

func newTestRouter(t *testing.T, cfg RouterConfig, nodes ...*stubNode) *Router {
	t.Helper()
	if cfg.Membership.ProbeInterval == 0 {
		cfg.Membership.ProbeInterval = 20 * time.Millisecond
	}
	rt := NewRouter(cfg)
	for _, n := range nodes {
		if _, err := rt.Membership().Register(n.srv.URL); err != nil {
			t.Fatalf("Register(%s): %v", n.srv.URL, err)
		}
	}
	rt.Start()
	t.Cleanup(rt.Close)
	return rt
}

func postInfer(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/infer", strings.NewReader(`{"image":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /infer: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestRouterForwardsAndStampsHeaders(t *testing.T) {
	var gotRID atomic.Value
	node := newStubNode(t, func(w http.ResponseWriter, r *http.Request) {
		gotRID.Store(r.Header.Get(obs.RequestIDHeader))
		okInfer(w, r)
	})
	rt := newTestRouter(t, RouterConfig{}, node)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp := postInfer(t, front.URL, map[string]string{obs.RequestIDHeader: "rid-123"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(NodeHeader); got != node.srv.URL {
		t.Errorf("%s = %q, want %q", NodeHeader, got, node.srv.URL)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != "rid-123" {
		t.Errorf("request id echo = %q, want rid-123", got)
	}
	if got, _ := gotRID.Load().(string); got != "rid-123" {
		t.Errorf("node saw request id %q, want rid-123 (propagation broken)", got)
	}

	// Without a client-supplied id the router mints one.
	resp2 := postInfer(t, front.URL, nil)
	if resp2.Header.Get(obs.RequestIDHeader) == "" {
		t.Error("router did not mint a request id")
	}

	st := rt.Stats()
	if st.Classes["high"].Completed != 2 {
		t.Errorf("high completed = %d, want 2", st.Classes["high"].Completed)
	}
}

func TestRouterRegistrationEndpoints(t *testing.T) {
	node := newStubNode(t, okInfer)
	rt := newTestRouter(t, RouterConfig{})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Before any node joins, readiness is explicit about why.
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var re RouterError
	json.NewDecoder(resp.Body).Decode(&re)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || re.Code != CodeNoReadyNodes {
		t.Fatalf("empty-fleet /readyz = %d code %q, want 503 %q", resp.StatusCode, re.Code, CodeNoReadyNodes)
	}

	body, _ := json.Marshal(RegistrationRequest{URL: node.srv.URL})
	resp, err = http.Post(front.URL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/register = %d, want 200", resp.StatusCode)
	}
	if rt.Membership().ReadyCount() != 1 {
		t.Fatalf("ReadyCount = %d after register", rt.Membership().ReadyCount())
	}

	resp, err = http.Post(front.URL+"/deregister", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rt.Membership().ReadyCount() != 0 {
		t.Fatalf("/deregister = %d, ReadyCount = %d", resp.StatusCode, rt.Membership().ReadyCount())
	}
}

func TestRouterFailoverToHealthyReplica(t *testing.T) {
	bad := newStubNode(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good := newStubNode(t, okInfer)
	rt := newTestRouter(t, RouterConfig{
		ReplicationFactor: 2,
		Retries:           1,
		RetryBackoff:      time.Millisecond,
		Membership:        MembershipConfig{BreakerThreshold: 100}, // keep the breaker out of this test
	}, bad, good)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Spread requests over many hash keys so some pick the failing node as
	// primary; every one must still complete via the healthy replica.
	for i := 0; i < 20; i++ {
		resp := postInfer(t, front.URL, map[string]string{ModelHeader: fmt.Sprintf("m-%d", i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via failover", i, resp.StatusCode)
		}
		if got := resp.Header.Get(NodeHeader); got != good.srv.URL {
			t.Fatalf("request %d served by %s, want %s", i, got, good.srv.URL)
		}
	}
	if bad.hits.Load() == 0 {
		t.Error("failing node never tried: hash spread did not exercise failover")
	}
	if rt.Stats().Retries == 0 {
		t.Error("retries counter is zero after forced failovers")
	}
}

func TestRouterBreakerRemovesFlappingNode(t *testing.T) {
	bad := newStubNode(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good := newStubNode(t, okInfer)
	rt := newTestRouter(t, RouterConfig{
		ReplicationFactor: 2,
		Retries:           1,
		RetryBackoff:      time.Millisecond,
		Membership: MembershipConfig{
			BreakerThreshold: 2,
			BreakerCooldown:  time.Hour, // stays open for the whole test
		},
	}, bad, good)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for i := 0; i < 30; i++ {
		resp := postInfer(t, front.URL, map[string]string{ModelHeader: fmt.Sprintf("m-%d", i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, resp.StatusCode)
		}
	}
	hitsAtOpen := bad.hits.Load()
	if hitsAtOpen == 0 {
		t.Skip("hash spread never picked the failing node first")
	}
	for i := 0; i < 30; i++ {
		postInfer(t, front.URL, map[string]string{ModelHeader: fmt.Sprintf("m-%d", i)})
	}
	if got := bad.hits.Load(); got != hitsAtOpen {
		t.Errorf("open breaker still forwarded to failing node: hits %d -> %d", hitsAtOpen, got)
	}
	for _, n := range rt.Membership().Snapshot() {
		if n.URL == bad.srv.URL && n.Breaker != "open" {
			t.Errorf("failing node breaker = %s, want open", n.Breaker)
		}
	}
}

func TestRouterShedsLowPriority(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	slow := newStubNode(t, func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		okInfer(w, r)
	})
	rt := newTestRouter(t, RouterConfig{
		MaxInflight:         2,
		LowPriorityFraction: 0.5, // low budget = 1 slot
	}, slow)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	defer close(release)

	// Occupy the single low-priority slot with a high-priority request.
	go func() {
		req, _ := http.NewRequest(http.MethodPost, front.URL+"/infer", strings.NewReader(`{"image":[0]}`))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the node")
	}

	// Low priority now exceeds its budget and must be shed with the typed code.
	resp := postInfer(t, front.URL, map[string]string{PriorityHeader: "low"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("low-priority status = %d, want 503", resp.StatusCode)
	}
	var re RouterError
	json.NewDecoder(resp.Body).Decode(&re)
	if re.Code != CodeShedLowPriority {
		t.Errorf("shed code = %q, want %q", re.Code, CodeShedLowPriority)
	}
	if resp.Header.Get(ShedHeader) != "1" {
		t.Errorf("%s header missing on shed reply", ShedHeader)
	}
	if rt.Stats().Classes["low"].Shed != 1 {
		t.Errorf("low shed counter = %d, want 1", rt.Stats().Classes["low"].Shed)
	}
}

func TestRouterDeadlineAwareShed(t *testing.T) {
	node := newStubNode(t, okInfer)
	rt := newTestRouter(t, RouterConfig{}, node)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Teach the EWMA that the fleet is slow, then offer a low-priority
	// request whose deadline the fleet cannot meet.
	rt.observeLatency(250)
	resp := postInfer(t, front.URL, map[string]string{
		PriorityHeader: "low",
		DeadlineHeader: "50",
	})
	var re RouterError
	json.NewDecoder(resp.Body).Decode(&re)
	if resp.StatusCode != http.StatusServiceUnavailable || re.Code != CodeShedLowPriority {
		t.Fatalf("deadline shed = %d code %q, want 503 %q", resp.StatusCode, re.Code, CodeShedLowPriority)
	}

	// High priority with the same hopeless deadline is still admitted — the
	// SLO valve only sheds the sheddable class.
	resp = postInfer(t, front.URL, map[string]string{DeadlineHeader: "50"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("high-priority status = %d, want 200", resp.StatusCode)
	}
}

func TestRouterSaturationRejects(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	slow := newStubNode(t, func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		okInfer(w, r)
	})
	rt := newTestRouter(t, RouterConfig{MaxInflight: 1}, slow)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	defer close(release)

	go func() {
		req, _ := http.NewRequest(http.MethodPost, front.URL+"/infer", strings.NewReader(`{"image":[0]}`))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the node")
	}

	resp := postInfer(t, front.URL, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	var re RouterError
	json.NewDecoder(resp.Body).Decode(&re)
	if re.Code != CodeSaturated {
		t.Errorf("saturated code = %q, want %q", re.Code, CodeSaturated)
	}
}

func TestMembershipEvictsAndReadmits(t *testing.T) {
	node := newStubNode(t, okInfer)
	rt := newTestRouter(t, RouterConfig{
		Membership: MembershipConfig{
			ProbeInterval: 10 * time.Millisecond,
			FailThreshold: 2,
		},
	}, node)

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	node.down.Store(true)
	waitFor("eviction", func() bool { return rt.Membership().ReadyCount() == 0 })
	snap := rt.Membership().Snapshot()
	if len(snap) != 1 || snap[0].State != "down" {
		t.Fatalf("snapshot after eviction = %+v", snap)
	}

	node.down.Store(false)
	waitFor("re-admission", func() bool { return rt.Membership().ReadyCount() == 1 })
}

func TestRouterStatsAndMetricsSurface(t *testing.T) {
	node := newStubNode(t, okInfer)
	rt := newTestRouter(t, RouterConfig{}, node)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	postInfer(t, front.URL, nil)

	resp, err := http.Get(front.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /statsz: %v", err)
	}
	if st.MaxInflight != 256 || len(st.Nodes) != 1 {
		t.Errorf("statsz = max %d nodes %d, want 256 and 1", st.MaxInflight, len(st.Nodes))
	}

	reg := obs.NewRegistry()
	RegisterMetrics(reg, rt)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"condor_fleet_requests_total", "condor_fleet_nodes", "condor_fleet_inflight",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %s", want)
		}
	}
}
