package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"condor/internal/obs"
	"condor/internal/serve"
)

// Request headers the fleet tier understands.
const (
	// PriorityHeader selects the admission class: "low" is sheddable bulk
	// traffic, anything else (or absence) is "high" interactive traffic.
	PriorityHeader = "X-Condor-Priority"
	// DeadlineHeader carries the request's end-to-end deadline in
	// milliseconds; the router bounds forwarding (and sheds low-priority
	// work it cannot hope to finish in time) against it.
	DeadlineHeader = "X-Condor-Deadline-Ms"
	// ModelHeader overrides the consistent-hash key (defaults to the
	// router's configured model).
	ModelHeader = "X-Condor-Model"
	// NodeHeader is set on router replies: the node that served the request.
	NodeHeader = "X-Condor-Node"
	// ShedHeader is set to "1" on replies that were shed by admission
	// control rather than failed by the fleet.
	ShedHeader = "X-Condor-Shed"
)

// Router error codes (the "code" field of error replies). Clients — the
// load generator, the stress gate — classify outcomes on these, so a shed
// request is typed, never a generic failure.
const (
	CodeShedLowPriority = "shed_low_priority"
	CodeSaturated       = "saturated"
	CodeNoReadyNodes    = "no_ready_nodes"
	CodeNoReplica       = "no_replica_available"
)

// RouterError is the JSON body of a router-originated error reply.
type RouterError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// RouterConfig sizes the fleet front door.
type RouterConfig struct {
	// Model is the default consistent-hash key for requests without an
	// X-Condor-Model header (default "default").
	Model string
	// ReplicationFactor is how many distinct ring nodes form a model's
	// replica set: the primary plus failover targets (default 3).
	ReplicationFactor int
	// MaxInflight bounds concurrently forwarded requests; beyond it even
	// high-priority traffic is rejected with 429 (default 256).
	MaxInflight int
	// LowPriorityFraction is the share of MaxInflight low-priority traffic
	// may occupy; past it low requests are shed with CodeShedLowPriority
	// while high-priority requests still fit — the SLO-protecting valve
	// (default 0.5).
	LowPriorityFraction float64
	// Retries is how many additional replicas an attempt fails over to on
	// transient errors (default 2).
	Retries int
	// RetryBackoff is the initial inter-attempt delay, doubling per retry
	// (default 5ms).
	RetryBackoff time.Duration
	// ForwardTimeout bounds one forwarded attempt (default 10s).
	ForwardTimeout time.Duration
	// Membership configures node probing and circuit breakers.
	Membership MembershipConfig
	// Logf receives router lifecycle messages; nil discards them.
	Logf func(format string, a ...any)
}

func (c *RouterConfig) applyDefaults() {
	if c.Model == "" {
		c.Model = "default"
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 3
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.LowPriorityFraction <= 0 || c.LowPriorityFraction > 1 {
		c.LowPriorityFraction = 0.5
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	c.Membership.applyDefaults()
}

// classStats is one priority class's atomic accounting.
type classStats struct {
	admitted  atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
	rejected  atomic.Int64 // 429 saturated
	failed    atomic.Int64 // no replica answered
}

// ClassSnapshot is the JSON form of one class's counters.
type ClassSnapshot struct {
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	Rejected  uint64 `json:"rejected"`
	Failed    uint64 `json:"failed"`
}

func (c *classStats) snapshot() ClassSnapshot {
	return ClassSnapshot{
		Admitted:  uint64(c.admitted.Load()),
		Completed: uint64(c.completed.Load()),
		Shed:      uint64(c.shed.Load()),
		Rejected:  uint64(c.rejected.Load()),
		Failed:    uint64(c.failed.Load()),
	}
}

// RouterStats is the /statsz reply.
type RouterStats struct {
	Inflight    int64                    `json:"inflight"`
	MaxInflight int                      `json:"max_inflight"`
	LowBudget   int                      `json:"low_priority_budget"`
	EWMAMs      float64                  `json:"latency_ewma_ms"`
	Retries     uint64                   `json:"retries"`
	Classes     map[string]ClassSnapshot `json:"classes"`
	Nodes       []NodeInfo               `json:"nodes"`
	Autoscaler  *AutoscalerStats         `json:"autoscaler,omitempty"`
}

// Router is the fleet's HTTP front door: consistent-hash routing by model
// across the health-checked membership, per-node circuit breaking,
// retry-with-backoff across the replica set, and SLO-aware priority
// admission. Every accepted request receives a definitive reply — success,
// a typed shed/reject, or an explicit failover-exhausted error; nothing is
// silently dropped.
type Router struct {
	cfg     RouterConfig
	members *Membership
	client  *http.Client

	inflight atomic.Int64
	ewmaBits atomic.Uint64 // float64 bits of the completed-latency EWMA (ms)
	retries  atomic.Int64
	high     classStats
	low      classStats

	autoscaler *Autoscaler // optional, attached before Start
}

// NewRouter builds a router over an empty membership; register nodes via
// the /register endpoint or Membership().Register, then Start it.
func NewRouter(cfg RouterConfig) *Router {
	cfg.applyDefaults()
	return &Router{
		cfg:     cfg,
		members: NewMembership(cfg.Membership),
		client:  &http.Client{Timeout: cfg.ForwardTimeout},
	}
}

// Membership exposes the node registry (registration from the host binary,
// direct control from tests).
func (rt *Router) Membership() *Membership { return rt.members }

// AttachAutoscaler couples an autoscaler so /statsz and /metricsz expose
// its state next to the router's. Call before Start.
func (rt *Router) AttachAutoscaler(a *Autoscaler) { rt.autoscaler = a }

// Start launches the membership probe loop (and the autoscaler, when one is
// attached).
func (rt *Router) Start() {
	rt.members.Start()
	if rt.autoscaler != nil {
		rt.autoscaler.Start()
	}
}

// Close stops the probe loop and autoscaler.
func (rt *Router) Close() {
	if rt.autoscaler != nil {
		rt.autoscaler.Stop()
	}
	rt.members.Close()
}

// Stats snapshots the router.
func (rt *Router) Stats() RouterStats {
	st := RouterStats{
		Inflight:    rt.inflight.Load(),
		MaxInflight: rt.cfg.MaxInflight,
		LowBudget:   rt.lowBudget(),
		EWMAMs:      math.Float64frombits(rt.ewmaBits.Load()),
		Retries:     uint64(rt.retries.Load()),
		Classes: map[string]ClassSnapshot{
			"high": rt.high.snapshot(),
			"low":  rt.low.snapshot(),
		},
		Nodes: rt.members.Snapshot(),
	}
	if rt.autoscaler != nil {
		s := rt.autoscaler.Stats()
		st.Autoscaler = &s
	}
	return st
}

func (rt *Router) lowBudget() int {
	return int(float64(rt.cfg.MaxInflight) * rt.cfg.LowPriorityFraction)
}

// Handler returns the router's HTTP surface:
//
//	POST /infer       forwarded single-image inference
//	POST /register    {"url":"http://node"} joins the fleet
//	POST /deregister  {"url":"http://node"} leaves the fleet
//	GET  /nodes       membership snapshot
//	GET  /healthz     router liveness + fleet input shape
//	GET  /readyz      200 once ≥1 node is routable
//	GET  /statsz      RouterStats
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", rt.handleInfer)
	mux.HandleFunc("/register", rt.handleRegistration(true))
	mux.HandleFunc("/deregister", rt.handleRegistration(false))
	mux.HandleFunc("/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Nodes []NodeInfo `json:"nodes"`
		}{rt.members.Snapshot()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		input, ok := rt.members.Input()
		status, code := "ok", http.StatusOK
		if !ok {
			status, code = "no-nodes", http.StatusServiceUnavailable
		}
		writeJSON(w, code, serve.HealthResponse{
			Status: status, Input: input, Backends: rt.members.ReadyCount(),
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if rt.members.ReadyCount() == 0 {
			writeJSON(w, http.StatusServiceUnavailable, RouterError{Error: "no ready nodes", Code: CodeNoReadyNodes})
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
			Nodes  int    `json:"nodes"`
		}{"ready", rt.members.ReadyCount()})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.Stats())
	})
	return mux
}

// RegistrationRequest is the body of POST /register and /deregister.
type RegistrationRequest struct {
	URL string `json:"url"`
}

func (rt *Router) handleRegistration(join bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, RouterError{Error: "POST required"})
			return
		}
		var req RegistrationRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
			writeJSON(w, http.StatusBadRequest, RouterError{Error: "body must be {\"url\":\"http://node\"}"})
			return
		}
		if join {
			input, err := rt.members.Register(req.URL)
			if err != nil {
				writeJSON(w, http.StatusBadGateway, RouterError{Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, struct {
				Status string           `json:"status"`
				Input  serve.InputShape `json:"input"`
				Nodes  int              `json:"nodes"`
			}{"registered", input, rt.members.ReadyCount()})
			return
		}
		if err := rt.members.Deregister(req.URL); err != nil {
			writeJSON(w, http.StatusNotFound, RouterError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
			Nodes  int    `json:"nodes"`
		}{"deregistered", rt.members.ReadyCount()})
	}
}

// handleInfer is the forwarding path: admission → replica set → failover.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, RouterError{Error: "POST required"})
		return
	}
	rid := r.Header.Get(obs.RequestIDHeader)
	if rid == "" {
		rid = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, rid)

	class := &rt.high
	className := "high"
	if r.Header.Get(PriorityHeader) == "low" {
		class = &rt.low
		className = "low"
	}
	deadlineMs, _ := strconv.ParseFloat(r.Header.Get(DeadlineHeader), 64)

	// Admission. The inflight count is taken optimistically and released on
	// every exit path; budgets are checked against the post-increment value
	// so MaxInflight is a true bound.
	in := rt.inflight.Add(1)
	defer rt.inflight.Add(-1)
	if in > int64(rt.cfg.MaxInflight) {
		class.rejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests, RouterError{
			Error: fmt.Sprintf("router saturated: %d requests in flight", in),
			Code:  CodeSaturated,
		})
		return
	}
	if className == "low" {
		if in > int64(rt.lowBudget()) {
			rt.shed(w, class, "low-priority budget exhausted while the fleet is saturated")
			return
		}
		// Deadline-aware shed: when the fleet's recent latency already
		// exceeds this request's deadline, forwarding it would only displace
		// work that can still meet its SLO.
		if ewma := math.Float64frombits(rt.ewmaBits.Load()); deadlineMs > 0 && ewma > deadlineMs {
			rt.shed(w, class, fmt.Sprintf("fleet latency %.1fms exceeds request deadline %.0fms", ewma, deadlineMs))
			return
		}
	}
	class.admitted.Add(1)

	model := r.Header.Get(ModelHeader)
	if model == "" {
		model = rt.cfg.Model
	}
	candidates := rt.members.Candidates(model, rt.cfg.ReplicationFactor)
	if len(candidates) == 0 {
		class.failed.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, RouterError{
			Error: "no ready nodes for model " + model, Code: CodeNoReadyNodes,
		})
		return
	}
	// Within the replica set, prefer the least-loaded node; the sort is
	// stable so equal loads keep ring (affinity) order.
	sort.SliceStable(candidates, func(i, j int) bool {
		return candidates[i].inflight.Load() < candidates[j].inflight.Load()
	})

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		class.completed.Add(1) // answered, just not forwarded
		writeJSON(w, http.StatusBadRequest, RouterError{Error: "read body: " + err.Error()})
		return
	}

	ctx := r.Context()
	var cancel context.CancelFunc
	if deadlineMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMs*float64(time.Millisecond)))
		defer cancel()
	}

	start := time.Now()
	attempts := rt.cfg.Retries + 1
	if attempts > len(candidates) {
		attempts = len(candidates)
	}
	backoff := rt.cfg.RetryBackoff
	var lastErr string
	tried := 0
	for _, node := range candidates {
		if tried >= attempts {
			break
		}
		if !node.breaker.Allow() {
			continue
		}
		if tried > 0 {
			rt.retries.Add(1)
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				class.failed.Add(1)
				writeJSON(w, http.StatusGatewayTimeout, RouterError{
					Error: "deadline expired during failover: " + lastErr, Code: CodeNoReplica,
				})
				return
			}
			backoff *= 2
		}
		tried++
		status, respBody, err := rt.forwardOnce(ctx, node, r, body, rid)
		switch {
		case err != nil:
			node.breaker.Failure()
			node.failures.Add(1)
			lastErr = fmt.Sprintf("%s: %v", node.url, err)
			continue
		case status >= 500:
			node.breaker.Failure()
			node.failures.Add(1)
			lastErr = fmt.Sprintf("%s: status %d", node.url, status)
			continue
		case status == http.StatusTooManyRequests:
			// Node-level backpressure: the node is healthy but full, so the
			// breaker stays closed; try the next replica.
			node.failures.Add(1)
			lastErr = fmt.Sprintf("%s: node backpressure (429)", node.url)
			continue
		}
		// 2xx and client-errors both settle the request here: a 400 from
		// the node means the request itself is malformed and no replica
		// would answer differently.
		node.breaker.Success()
		node.forwarded.Add(1)
		if status < 300 {
			rt.observeLatency(float64(time.Since(start)) / float64(time.Millisecond))
		}
		class.completed.Add(1)
		w.Header().Set(NodeHeader, node.url)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(respBody) //nolint:errcheck // client went away
		return
	}
	class.failed.Add(1)
	if lastErr == "" {
		lastErr = "every replica's circuit breaker is open"
	}
	writeJSON(w, http.StatusBadGateway, RouterError{
		Error: fmt.Sprintf("no replica answered after %d attempt(s): %s", tried, lastErr),
		Code:  CodeNoReplica,
	})
}

func (rt *Router) shed(w http.ResponseWriter, class *classStats, reason string) {
	class.shed.Add(1)
	w.Header().Set(ShedHeader, "1")
	writeJSON(w, http.StatusServiceUnavailable, RouterError{
		Error: "shed: " + reason, Code: CodeShedLowPriority,
	})
}

// forwardOnce sends the buffered request to one node and returns its status
// and body. The node's inflight gauge covers exactly the round trip.
func (rt *Router) forwardOnce(ctx context.Context, node *memberNode, r *http.Request, body []byte, rid string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node.url+"/infer", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, rid)
	if p := r.Header.Get(PriorityHeader); p != "" {
		req.Header.Set(PriorityHeader, p)
	}
	if d := r.Header.Get(DeadlineHeader); d != "" {
		req.Header.Set(DeadlineHeader, d)
	}
	node.inflight.Add(1)
	defer node.inflight.Add(-1)
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// observeLatency folds one completed request's total milliseconds into the
// admission EWMA (α = 0.2).
func (rt *Router) observeLatency(ms float64) {
	const alpha = 0.2
	for {
		old := rt.ewmaBits.Load()
		prev := math.Float64frombits(old)
		next := ms
		if prev != 0 {
			next = alpha*ms + (1-alpha)*prev
		}
		if rt.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}
