package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"condor/internal/serve"
)

// NodeState is a member's routability.
type NodeState int

const (
	// NodeReady nodes are in the hash ring and receive traffic.
	NodeReady NodeState = iota
	// NodeDown nodes failed FailThreshold consecutive readiness probes:
	// they are out of the ring but stay on the probe list, so a recovered
	// node is re-admitted automatically.
	NodeDown
)

func (s NodeState) String() string {
	if s == NodeReady {
		return "ready"
	}
	return "down"
}

// NodeInfo is the JSON snapshot of one member (GET /nodes).
type NodeInfo struct {
	URL           string           `json:"url"`
	State         string           `json:"state"`
	Breaker       string           `json:"breaker"`
	Inflight      int64            `json:"inflight"`
	Forwarded     uint64           `json:"forwarded"`
	ForwardErrors uint64           `json:"forward_errors"`
	ProbeFailures int              `json:"probe_failures"`
	Input         serve.InputShape `json:"input"`
}

// memberNode is the router's live view of one condor-serve node.
type memberNode struct {
	url     string
	breaker *Breaker

	inflight  atomic.Int64 // requests currently forwarded to this node
	forwarded atomic.Int64 // attempts answered 2xx
	failures  atomic.Int64 // attempts that failed (transport, 5xx, 429)

	mu         sync.Mutex
	state      NodeState
	probeFails int
	input      serve.InputShape
}

func (n *memberNode) snapshot() NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeInfo{
		URL:           n.url,
		State:         n.state.String(),
		Breaker:       n.breaker.State().String(),
		Inflight:      n.inflight.Load(),
		Forwarded:     uint64(n.forwarded.Load()),
		ForwardErrors: uint64(n.failures.Load()),
		ProbeFailures: n.probeFails,
		Input:         n.input,
	}
}

// MembershipConfig sizes the health-checked member registry.
type MembershipConfig struct {
	// ProbeInterval is the /readyz polling period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures before eviction
	// (default 3).
	FailThreshold int
	// BreakerThreshold / BreakerCooldown configure each node's circuit
	// breaker (defaults 5 failures, 1s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Vnodes is the ring's virtual-node count per member (default 64).
	Vnodes int
	// Logf receives membership transitions; nil discards them.
	Logf func(format string, a ...any)
}

func (c *MembershipConfig) applyDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Membership is the registry of serve nodes behind the router: nodes join
// via Register (the /register endpoint), leave via Deregister, and a probe
// loop polls every node's /readyz — FailThreshold consecutive failures
// evict a node from the hash ring, and a later successful probe re-admits
// it. Eviction and re-admission only touch the evicted node's vnodes, so
// the rest of the key space keeps its owners (bounded key movement).
type Membership struct {
	cfg    MembershipConfig
	ring   *Ring
	client *http.Client

	mu    sync.Mutex
	nodes map[string]*memberNode

	done chan struct{}
	wg   sync.WaitGroup
}

// NewMembership creates an empty registry. Call Start to begin probing and
// Close to stop.
func NewMembership(cfg MembershipConfig) *Membership {
	cfg.applyDefaults()
	return &Membership{
		cfg:    cfg,
		ring:   NewRing(cfg.Vnodes),
		client: &http.Client{Timeout: cfg.ProbeTimeout},
		nodes:  make(map[string]*memberNode),
		done:   make(chan struct{}),
	}
}

// Start launches the readiness-probe loop.
func (m *Membership) Start() {
	m.wg.Add(1)
	go m.probeLoop()
}

// Close stops the probe loop and waits for it to exit.
func (m *Membership) Close() {
	select {
	case <-m.done:
	default:
		close(m.done)
	}
	m.wg.Wait()
}

// Register validates a node by probing its /healthz (learning the input
// shape it serves), then admits it to the ring. Re-registering a known node
// refreshes its shape and marks it ready.
func (m *Membership) Register(url string) (serve.InputShape, error) {
	input, err := m.probeHealth(url)
	if err != nil {
		return serve.InputShape{}, fmt.Errorf("fleet: node %s failed registration probe: %w", url, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[url]
	if !ok {
		n = &memberNode{
			url:     url,
			breaker: NewBreaker(m.cfg.BreakerThreshold, m.cfg.BreakerCooldown, nil),
		}
		m.nodes[url] = n
	}
	n.mu.Lock()
	n.state = NodeReady
	n.probeFails = 0
	n.input = input
	n.mu.Unlock()
	m.ring.Add(url)
	m.cfg.Logf("fleet: node %s registered (input %dx%dx%d)", url, input.Channels, input.Height, input.Width)
	return input, nil
}

// Deregister removes a node from the ring and the probe list.
func (m *Membership) Deregister(url string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[url]; !ok {
		return fmt.Errorf("fleet: node %s is not registered", url)
	}
	delete(m.nodes, url)
	m.ring.Remove(url)
	m.cfg.Logf("fleet: node %s deregistered", url)
	return nil
}

// Candidates returns the model key's replica set: up to n distinct ready
// nodes in ring preference order. Nodes evicted by the prober are not in
// the ring and therefore never appear.
func (m *Membership) Candidates(model string, n int) []*memberNode {
	owners := m.ring.LookupN(model, n)
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*memberNode, 0, len(owners))
	for _, url := range owners {
		if node, ok := m.nodes[url]; ok {
			out = append(out, node)
		}
	}
	return out
}

// Input returns the input shape of any ready node, so the router can answer
// /healthz probes with the fleet's accepted geometry.
func (m *Membership) Input() (serve.InputShape, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.nodes {
		n.mu.Lock()
		state, input := n.state, n.input
		n.mu.Unlock()
		if state == NodeReady {
			return input, true
		}
	}
	return serve.InputShape{}, false
}

// ReadyCount returns how many nodes are in the ring.
func (m *Membership) ReadyCount() int { return m.ring.Len() }

// Snapshot lists every known node, ready and down, sorted by URL.
func (m *Membership) Snapshot() []NodeInfo {
	m.mu.Lock()
	nodes := make([]*memberNode, 0, len(m.nodes))
	for _, n := range m.nodes {
		nodes = append(nodes, n)
	}
	m.mu.Unlock()
	out := make([]NodeInfo, len(nodes))
	for i, n := range nodes {
		out[i] = n.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

func (m *Membership) probeLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			m.probeAll()
		}
	}
}

// probeAll polls every node's /readyz once and applies the state machine:
// ready + FailThreshold consecutive failures → evicted from the ring;
// down + one success → re-admitted.
func (m *Membership) probeAll() {
	m.mu.Lock()
	nodes := make([]*memberNode, 0, len(m.nodes))
	for _, n := range m.nodes {
		nodes = append(nodes, n)
	}
	m.mu.Unlock()

	for _, n := range nodes {
		ok := m.probeReady(n.url)
		n.mu.Lock()
		switch {
		case ok && n.state == NodeDown:
			n.state = NodeReady
			n.probeFails = 0
			n.mu.Unlock()
			m.ring.Add(n.url)
			m.cfg.Logf("fleet: node %s recovered, re-admitted to ring", n.url)
		case ok:
			n.probeFails = 0
			n.mu.Unlock()
		default:
			n.probeFails++
			evict := n.state == NodeReady && n.probeFails >= m.cfg.FailThreshold
			if evict {
				n.state = NodeDown
			}
			fails := n.probeFails
			n.mu.Unlock()
			if evict {
				m.ring.Remove(n.url)
				m.cfg.Logf("fleet: node %s evicted after %d failed readiness probes", n.url, fails)
			}
		}
	}
}

// probeReady polls {url}/readyz; only a 200 counts as ready (a draining
// node answers 503 here while its /healthz stays 200 — that split is what
// lets the router stop routing before the node stops answering).
func (m *Membership) probeReady(url string) bool {
	resp, err := m.client.Get(url + "/readyz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// probeHealth fetches {url}/healthz and decodes the node's input shape.
func (m *Membership) probeHealth(url string) (serve.InputShape, error) {
	resp, err := m.client.Get(url + "/healthz")
	if err != nil {
		return serve.InputShape{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.InputShape{}, fmt.Errorf("healthz status %s", resp.Status)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return serve.InputShape{}, fmt.Errorf("healthz decode: %w", err)
	}
	if h.Input.Volume() == 0 {
		return serve.InputShape{}, fmt.Errorf("node reports empty input shape")
	}
	return h.Input, nil
}
