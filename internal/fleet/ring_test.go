package fleet

import (
	"fmt"
	"testing"
)

func TestRingLookupDeterministicAndBalanced(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a", "http://b", "http://c"}
	for _, n := range nodes {
		r.Add(n)
	}
	if r.Len() != len(nodes) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(nodes))
	}
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("model-%d", i)
		owner := r.Lookup(key)
		if owner == "" {
			t.Fatalf("Lookup(%q) found no owner", key)
		}
		if again := r.Lookup(key); again != owner {
			t.Fatalf("Lookup(%q) is not deterministic: %s then %s", key, owner, again)
		}
		counts[owner]++
	}
	for _, n := range nodes {
		// With 64 vnodes the split is uneven but every node must carry a
		// real share — a node at < 10% means the vnode spread is broken.
		if counts[n] < 1000 {
			t.Errorf("node %s owns only %d/10000 keys", n, counts[n])
		}
	}
}

func TestRingBoundedKeyMovement(t *testing.T) {
	r := NewRing(0)
	const nodes = 10
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("http://node-%d", i))
	}
	const keys = 10000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("model-%d", i)
		before[key] = r.Lookup(key)
	}

	victim := "http://node-3"
	r.Remove(victim)

	moved := 0
	for key, owner := range before {
		now := r.Lookup(key)
		if now == "" {
			t.Fatalf("Lookup(%q) found no owner after removal", key)
		}
		if owner == victim {
			if now == victim {
				t.Fatalf("key %q still owned by removed node", key)
			}
			continue // these keys must move; that is the point
		}
		if now != owner {
			moved++
		}
	}
	// Consistent hashing's contract: removing one of N nodes moves only the
	// removed node's keys. Keys owned by survivors stay put.
	if moved != 0 {
		t.Errorf("%d keys moved between surviving nodes; want 0", moved)
	}

	// And re-adding restores the original assignment exactly.
	r.Add(victim)
	for key, owner := range before {
		if now := r.Lookup(key); now != owner {
			t.Fatalf("key %q owned by %s after re-add, want %s", key, now, owner)
		}
	}
}

func TestRingLookupNDistinct(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("http://node-%d", i))
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("model-%d", i)
		got := r.LookupN(key, 3)
		if len(got) != 3 {
			t.Fatalf("LookupN(%q, 3) = %d nodes, want 3", key, len(got))
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("LookupN(%q, 3) repeats node %s", key, n)
			}
			seen[n] = true
		}
		if primary := r.Lookup(key); got[0] != primary {
			t.Fatalf("LookupN(%q)[0] = %s, want primary %s", key, got[0], primary)
		}
	}
	// Asking for more replicas than members returns every member once.
	if got := r.LookupN("anything", 99); len(got) != 5 {
		t.Fatalf("LookupN over-ask = %d nodes, want 5", len(got))
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if owner := r.Lookup("x"); owner != "" {
		t.Errorf("Lookup on empty ring = %q", owner)
	}
	if got := r.LookupN("x", 3); len(got) != 0 {
		t.Errorf("LookupN on empty ring = %v", got)
	}
	r.Add("http://a")
	r.Remove("http://a")
	if r.Len() != 0 || r.Has("http://a") {
		t.Error("Remove did not clear the ring")
	}
}
