package fleet

import (
	"sync"
	"time"
)

// ScaleTarget is the capacity the autoscaler drives. The production
// implementation is aws.FleetModel — simulated F1 instances with modeled
// spin-up latency and per-hour cost — but the control law only sees slots.
type ScaleTarget interface {
	// SetDesiredSlots moves the target capacity; implementations launch or
	// terminate instances to cover it.
	SetDesiredSlots(n int) error
	// ReadySlots is the capacity currently usable (spin-up elapsed).
	ReadySlots() int
	// PendingSlots is launched capacity still inside its spin-up window.
	PendingSlots() int
	// CostUSD is the accumulated modeled spend.
	CostUSD() float64
}

// AutoscalerConfig shapes the control loop.
type AutoscalerConfig struct {
	// Interval between control iterations (default 1s).
	Interval time.Duration
	// HighWater: pressure above it scales up (default 0.75).
	HighWater float64
	// LowWater: pressure below it for ScaleDownAfter consecutive intervals
	// scales down (default 0.20). The asymmetric hysteresis keeps the fleet
	// from flapping around one threshold.
	LowWater float64
	// ScaleDownAfter is that consecutive-interval count (default 5).
	ScaleDownAfter int
	// Step is how many slots one decision adds or removes (default 1).
	Step int
	// MinSlots / MaxSlots clamp the desired capacity (defaults 0 / 8).
	MinSlots int
	MaxSlots int
	// SLOTargetMs: a scraped p99 above it counts as saturation even when
	// queues look shallow, so latency SLOs scale the fleet before queues
	// overflow. 0 disables the latency term.
	SLOTargetMs float64
	// Logf receives scaling decisions; nil discards them.
	Logf func(format string, a ...any)
}

func (c *AutoscalerConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.HighWater <= 0 {
		c.HighWater = 0.75
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.20
	}
	if c.ScaleDownAfter <= 0 {
		c.ScaleDownAfter = 5
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.MaxSlots <= 0 {
		c.MaxSlots = 8
	}
	if c.MinSlots < 0 {
		c.MinSlots = 0
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// ScaleEvent records one decision for /statsz.
type ScaleEvent struct {
	At       time.Time `json:"at"`
	Dir      string    `json:"dir"` // "up" | "down"
	Desired  int       `json:"desired"`
	Pressure float64   `json:"pressure"`
}

// AutoscalerStats is the autoscaler's /statsz block.
type AutoscalerStats struct {
	Desired      int           `json:"desired_slots"`
	Ready        int           `json:"ready_slots"`
	Pending      int           `json:"pending_slots"`
	Pressure     float64       `json:"pressure"`
	CostUSD      float64       `json:"cost_usd"`
	ScaleUps     uint64        `json:"scale_ups"`
	ScaleDowns   uint64        `json:"scale_downs"`
	LastDecision string        `json:"last_decision,omitempty"`
	Nodes        []NodeMetrics `json:"nodes,omitempty"`
	Events       []ScaleEvent  `json:"events,omitempty"`
}

// Autoscaler closes the loop between scraped node metrics and simulated F1
// capacity: each interval it reduces the fleet's /metricsz figures to one
// pressure scalar — the worst node's max of queue occupancy, backend
// utilization, and (optionally) p99-vs-SLO ratio — and moves the
// ScaleTarget one Step when the pressure leaves the [LowWater, HighWater]
// band. Scale-down needs ScaleDownAfter consecutive calm intervals;
// scale-up fires immediately, because under-capacity costs deadline misses
// while over-capacity only costs simulated dollars.
type Autoscaler struct {
	cfg    AutoscalerConfig
	target ScaleTarget
	scrape func() []NodeMetrics

	mu         sync.Mutex
	desired    int
	calm       int
	pressure   float64
	lastNodes  []NodeMetrics
	events     []ScaleEvent
	scaleUps   uint64
	scaleDowns uint64
	lastMsg    string

	done chan struct{}
	wg   sync.WaitGroup
}

// NewAutoscaler wires a control loop over a scrape source and a target.
func NewAutoscaler(cfg AutoscalerConfig, scrape func() []NodeMetrics, target ScaleTarget) *Autoscaler {
	cfg.applyDefaults()
	a := &Autoscaler{
		cfg:     cfg,
		target:  target,
		scrape:  scrape,
		desired: cfg.MinSlots,
		done:    make(chan struct{}),
	}
	return a
}

// Start applies the MinSlots floor to the target, then launches the
// control loop — the fleet holds its baseline capacity from the first
// moment, not after the first scale-up decision.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	if a.desired > 0 {
		if err := a.target.SetDesiredSlots(a.desired); err != nil {
			a.cfg.Logf("fleet: autoscaler: applying %d-slot floor failed: %v", a.desired, err)
		}
	}
	a.mu.Unlock()
	a.wg.Add(1)
	go a.loop()
}

// Stop halts the loop and waits for it.
func (a *Autoscaler) Stop() {
	select {
	case <-a.done:
	default:
		close(a.done)
	}
	a.wg.Wait()
}

func (a *Autoscaler) loop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-ticker.C:
			a.Step()
		}
	}
}

// Step runs one control iteration (exported so tests drive the law without
// timers).
func (a *Autoscaler) Step() {
	nodes := a.scrape()
	pressure := fleetPressure(nodes, a.cfg.SLOTargetMs)

	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastNodes = nodes
	a.pressure = pressure

	switch {
	case pressure > a.cfg.HighWater && a.desired < a.cfg.MaxSlots:
		a.calm = 0
		a.desired += a.cfg.Step
		if a.desired > a.cfg.MaxSlots {
			a.desired = a.cfg.MaxSlots
		}
		a.apply("up", pressure)
	case pressure < a.cfg.LowWater:
		a.calm++
		if a.calm >= a.cfg.ScaleDownAfter && a.desired > a.cfg.MinSlots {
			a.calm = 0
			a.desired -= a.cfg.Step
			if a.desired < a.cfg.MinSlots {
				a.desired = a.cfg.MinSlots
			}
			a.apply("down", pressure)
		}
	default:
		a.calm = 0
	}
}

// apply pushes the new desired capacity to the target. Called with a.mu held.
func (a *Autoscaler) apply(dir string, pressure float64) {
	if err := a.target.SetDesiredSlots(a.desired); err != nil {
		a.lastMsg = "scale " + dir + " failed: " + err.Error()
		a.cfg.Logf("fleet: autoscaler: %s", a.lastMsg)
		return
	}
	if dir == "up" {
		a.scaleUps++
	} else {
		a.scaleDowns++
	}
	ev := ScaleEvent{At: time.Now(), Dir: dir, Desired: a.desired, Pressure: pressure}
	a.events = append(a.events, ev)
	if len(a.events) > 32 {
		a.events = a.events[len(a.events)-32:]
	}
	a.lastMsg = ev.Dir
	a.cfg.Logf("fleet: autoscaler scaled %s to %d slots (pressure %.2f, cost $%.2f)",
		dir, a.desired, pressure, a.target.CostUSD())
}

// Stats snapshots the loop.
func (a *Autoscaler) Stats() AutoscalerStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AutoscalerStats{
		Desired:      a.desired,
		Ready:        a.target.ReadySlots(),
		Pending:      a.target.PendingSlots(),
		Pressure:     a.pressure,
		CostUSD:      a.target.CostUSD(),
		ScaleUps:     a.scaleUps,
		ScaleDowns:   a.scaleDowns,
		LastDecision: a.lastMsg,
		Nodes:        append([]NodeMetrics(nil), a.lastNodes...),
		Events:       append([]ScaleEvent(nil), a.events...),
	}
}

// fleetPressure reduces the scraped fleet to one saturation scalar: the
// worst node's max of queue occupancy, utilization and p99/SLO ratio. Max
// (not mean) because consistent hashing concentrates a model's traffic —
// one saturated node is a deadline-miss source even while the fleet
// average looks idle.
func fleetPressure(nodes []NodeMetrics, sloMs float64) float64 {
	var p float64
	for _, n := range nodes {
		if q := n.QueuePressure(); q > p {
			p = q
		}
		if n.Utilization > p {
			p = n.Utilization
		}
		if sloMs > 0 {
			if r := n.TotalP99Ms / sloMs; r > p {
				p = r
			}
		}
	}
	return p
}
