package fleet

import "condor/internal/obs"

// RegisterMetrics exposes the router (and its attached autoscaler, if any)
// through an obs.Registry under the condor_fleet_* families. Every family
// is a scrape-time function over Stats(), so /metricsz always agrees with
// /statsz.
func RegisterMetrics(reg *obs.Registry, rt *Router) {
	reg.Func("condor_fleet_inflight", obs.TypeGauge,
		"Requests currently being forwarded by the router.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(rt.inflight.Load())}}
		})
	reg.Func("condor_fleet_requests_total", obs.TypeCounter,
		"Router requests by priority class and outcome.", func() []obs.Sample {
			st := rt.Stats()
			var out []obs.Sample
			for class, c := range st.Classes {
				add := func(outcome string, v uint64) {
					out = append(out, obs.Sample{
						Labels: []obs.Label{obs.L("class", class), obs.L("outcome", outcome)},
						Value:  float64(v),
					})
				}
				add("completed", c.Completed)
				add("shed", c.Shed)
				add("rejected", c.Rejected)
				add("failed", c.Failed)
			}
			return out
		})
	reg.Func("condor_fleet_retries_total", obs.TypeCounter,
		"Failover attempts beyond the first replica.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(rt.retries.Load())}}
		})
	reg.Func("condor_fleet_latency_ewma_ms", obs.TypeGauge,
		"EWMA of completed end-to-end request latency, the admission signal.",
		func() []obs.Sample {
			return []obs.Sample{{Value: rt.Stats().EWMAMs}}
		})
	reg.Func("condor_fleet_nodes", obs.TypeGauge,
		"Fleet members by state.", func() []obs.Sample {
			ready, down := 0, 0
			for _, n := range rt.members.Snapshot() {
				if n.State == "ready" {
					ready++
				} else {
					down++
				}
			}
			return []obs.Sample{
				{Labels: []obs.Label{obs.L("state", "ready")}, Value: float64(ready)},
				{Labels: []obs.Label{obs.L("state", "down")}, Value: float64(down)},
			}
		})
	reg.Func("condor_fleet_node_inflight", obs.TypeGauge,
		"Requests in flight per fleet node.", func() []obs.Sample {
			nodes := rt.members.Snapshot()
			out := make([]obs.Sample, len(nodes))
			for i, n := range nodes {
				out[i] = obs.Sample{Labels: []obs.Label{obs.L("node", n.URL)}, Value: float64(n.Inflight)}
			}
			return out
		})
	reg.Func("condor_fleet_node_forwarded_total", obs.TypeCounter,
		"Requests answered per fleet node.", func() []obs.Sample {
			nodes := rt.members.Snapshot()
			out := make([]obs.Sample, len(nodes))
			for i, n := range nodes {
				out[i] = obs.Sample{Labels: []obs.Label{obs.L("node", n.URL)}, Value: float64(n.Forwarded)}
			}
			return out
		})

	if rt.autoscaler == nil {
		return
	}
	a := rt.autoscaler
	reg.Func("condor_fleet_slots", obs.TypeGauge,
		"Simulated F1 capacity by lifecycle state.", func() []obs.Sample {
			st := a.Stats()
			return []obs.Sample{
				{Labels: []obs.Label{obs.L("state", "desired")}, Value: float64(st.Desired)},
				{Labels: []obs.Label{obs.L("state", "ready")}, Value: float64(st.Ready)},
				{Labels: []obs.Label{obs.L("state", "pending")}, Value: float64(st.Pending)},
			}
		})
	reg.Func("condor_fleet_pressure", obs.TypeGauge,
		"Fleet saturation scalar driving the control law.", func() []obs.Sample {
			return []obs.Sample{{Value: a.Stats().Pressure}}
		})
	reg.Func("condor_fleet_scale_events_total", obs.TypeCounter,
		"Autoscaler decisions by direction.", func() []obs.Sample {
			st := a.Stats()
			return []obs.Sample{
				{Labels: []obs.Label{obs.L("dir", "up")}, Value: float64(st.ScaleUps)},
				{Labels: []obs.Label{obs.L("dir", "down")}, Value: float64(st.ScaleDowns)},
			}
		})
	reg.Func("condor_fleet_cost_usd_total", obs.TypeCounter,
		"Accumulated modeled spend of the simulated F1 fleet.", func() []obs.Sample {
			return []obs.Sample{{Value: a.Stats().CostUSD}}
		})
}
