package fleet

import (
	"strings"
	"testing"
)

// fakeTarget records SetDesiredSlots calls.
type fakeTarget struct {
	desired int
	calls   []int
	cost    float64
}

func (f *fakeTarget) SetDesiredSlots(n int) error {
	f.desired = n
	f.calls = append(f.calls, n)
	return nil
}
func (f *fakeTarget) ReadySlots() int   { return f.desired }
func (f *fakeTarget) PendingSlots() int { return 0 }
func (f *fakeTarget) CostUSD() float64  { return f.cost }

func pressureScrape(p *float64) func() []NodeMetrics {
	return func() []NodeMetrics {
		return []NodeMetrics{{URL: "http://n", QueueDepth: *p * 100, QueueCapacity: 100}}
	}
}

func TestAutoscalerScalesUpImmediately(t *testing.T) {
	target := &fakeTarget{}
	pressure := 0.9
	a := NewAutoscaler(AutoscalerConfig{MinSlots: 1, MaxSlots: 4}, pressureScrape(&pressure), target)

	a.Step()
	if target.desired != 2 {
		t.Fatalf("desired after one hot step = %d, want 2", target.desired)
	}
	// Still hot: keeps stepping up to the clamp, never past it.
	for i := 0; i < 10; i++ {
		a.Step()
	}
	if target.desired != 4 {
		t.Fatalf("desired after sustained pressure = %d, want clamp 4", target.desired)
	}
	st := a.Stats()
	if st.ScaleUps != 3 {
		t.Errorf("scale-ups = %d, want 3 (1→2→3→4)", st.ScaleUps)
	}
	if st.Pressure != 0.9 {
		t.Errorf("pressure = %v, want 0.9", st.Pressure)
	}
	if len(st.Events) == 0 || st.Events[0].Dir != "up" {
		t.Errorf("events = %+v, want leading up event", st.Events)
	}
}

func TestAutoscalerScaleDownNeedsHysteresis(t *testing.T) {
	target := &fakeTarget{}
	pressure := 0.9
	a := NewAutoscaler(AutoscalerConfig{
		MinSlots: 1, MaxSlots: 4, ScaleDownAfter: 3,
	}, pressureScrape(&pressure), target)
	a.Step() // desired 2
	a.Step() // desired 3

	pressure = 0.05
	a.Step()
	a.Step()
	if target.desired != 3 {
		t.Fatalf("scaled down after only 2 calm intervals (desired %d)", target.desired)
	}
	a.Step()
	if target.desired != 2 {
		t.Fatalf("desired after 3 calm intervals = %d, want 2", target.desired)
	}

	// A pressure blip inside the band resets the calm streak.
	a.Step()
	a.Step()
	pressure = 0.5
	a.Step() // in-band: resets calm
	pressure = 0.05
	a.Step()
	if target.desired != 2 {
		t.Fatalf("calm streak survived an in-band blip (desired %d)", target.desired)
	}

	// Never below MinSlots.
	for i := 0; i < 20; i++ {
		a.Step()
	}
	if target.desired != 1 {
		t.Fatalf("desired floor = %d, want MinSlots 1", target.desired)
	}
}

func TestFleetPressureTakesWorstSignal(t *testing.T) {
	nodes := []NodeMetrics{
		{URL: "a", QueueDepth: 10, QueueCapacity: 100, Utilization: 0.2, TotalP99Ms: 40},
		{URL: "b", QueueDepth: 5, QueueCapacity: 100, Utilization: 0.6, TotalP99Ms: 90},
	}
	if got := fleetPressure(nodes, 0); got != 0.6 {
		t.Errorf("pressure without SLO = %v, want 0.6 (b's utilization)", got)
	}
	// With a 100ms SLO, b's 90ms p99 dominates.
	if got := fleetPressure(nodes, 100); got != 0.9 {
		t.Errorf("pressure with SLO = %v, want 0.9 (b's p99/SLO)", got)
	}
	if got := fleetPressure(nil, 100); got != 0 {
		t.Errorf("pressure of empty fleet = %v, want 0", got)
	}
}

func TestParseNodeMetrics(t *testing.T) {
	page := `# HELP condor_serve_queue_depth Requests waiting.
# TYPE condor_serve_queue_depth gauge
condor_serve_queue_depth 12
condor_serve_queue_capacity 64
condor_serve_backend_utilization{backend="cpu:0"} 0.25
condor_serve_backend_utilization{backend="fpga:0"} 0.75
condor_serve_latency_ms{kind="total",q="0.5"} 8.5
condor_serve_latency_ms{kind="total",q="0.99"} 41.25
condor_serve_latency_ms{kind="kernel",q="0.99"} 12
garbage line without value
condor_serve_queue_depth not-a-number
`
	m := parseNodeMetrics("http://n", strings.NewReader(page))
	if m.QueueDepth != 12 || m.QueueCapacity != 64 {
		t.Errorf("queue = %v/%v, want 12/64", m.QueueDepth, m.QueueCapacity)
	}
	if m.Utilization != 0.5 {
		t.Errorf("utilization = %v, want mean 0.5", m.Utilization)
	}
	if m.TotalP99Ms != 41.25 {
		t.Errorf("p99 = %v, want 41.25 (total q=0.99 only)", m.TotalP99Ms)
	}
	if got := m.QueuePressure(); got != 12.0/64.0 {
		t.Errorf("QueuePressure = %v, want %v", got, 12.0/64.0)
	}
}
