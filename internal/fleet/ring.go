// Package fleet is the multi-node serving tier of the Condor backend: an
// HTTP router that consistent-hashes inference requests by model across a
// health-checked membership of condor-serve nodes, with per-node circuit
// breaking, retry-with-backoff across replicas, SLO-aware admission
// (priority classes, shed low-priority load before deadline misses), and an
// autoscaler that turns scraped node metrics into simulated F1 capacity
// decisions through the internal/aws cost/spin-up model.
//
// The package splits into:
//
//   - Ring: a consistent hash ring with virtual nodes, so membership churn
//     moves a bounded fraction of the key space;
//   - Breaker: a per-node circuit breaker (closed → open → half-open);
//   - Membership: registration plus a /readyz health-probe loop that evicts
//     unready nodes from the ring and re-admits them on recovery;
//   - Router: the HTTP front door (/infer, /register, /deregister, /nodes,
//     /healthz, /statsz, /metricsz);
//   - Autoscaler: a control loop over scraped /metricsz queue-depth,
//     utilization and latency figures driving a ScaleTarget.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent hash ring with virtual nodes. Each member is hashed
// at Vnodes points; a key is owned by the first vnode clockwise from the
// key's hash. With V vnodes per member, adding or removing one member of N
// moves only ~1/N of the key space — the bounded key movement that keeps a
// node join from re-routing the whole fleet's traffic.
//
// All methods are safe for concurrent use.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	hashes []uint64          // sorted vnode positions
	owner  map[uint64]string // vnode position → member
	nodes  map[string]bool
}

// NewRing creates an empty ring with the given virtual-node count per
// member (defaults to 64 when non-positive).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{
		vnodes: vnodes,
		owner:  make(map[uint64]string),
		nodes:  make(map[string]bool),
	}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}

// Add inserts a member; adding an existing member is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for v := 0; v < r.vnodes; v++ {
		h := hash64(fmt.Sprintf("%s#%d", node, v))
		// A position collision between distinct members would silently drop
		// vnodes; nudge until free (deterministic, so Add order still
		// yields one canonical ring).
		for {
			if _, taken := r.owner[h]; !taken {
				break
			}
			h++
		}
		r.owner[h] = node
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a member and its vnodes; unknown members are a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == node {
			delete(r.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	r.hashes = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[node]
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning the key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	owners := r.LookupN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// LookupN walks the ring clockwise from the key's position and returns up
// to n distinct members in preference order — the key's replica set. The
// first entry is the primary; a router that fails over in this order keeps
// retries deterministic per key.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		owner := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}
