// Fleet-level stress tests: a router in front of several in-process nodes,
// driven well past capacity and through a mid-run node kill. They live in
// package fleet_test so they can drive the router with internal/loadgen
// (which imports fleet for header and error-code names).
package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condor/internal/fleet"
	"condor/internal/loadgen"
	"condor/internal/serve"
)

// slowNode is a condor-serve stand-in with a real capacity: one request at
// a time (sem), each taking serviceTime. Everything a saturated fleet does
// — queueing, shedding, breaker trips — follows from this bottleneck.
type slowNode struct {
	srv         *httptest.Server
	down        atomic.Bool
	hits        atomic.Int64
	sem         chan struct{}
	serviceTime time.Duration
}

func newSlowNode(t *testing.T, concurrency int, serviceTime time.Duration) *slowNode {
	t.Helper()
	n := &slowNode{sem: make(chan struct{}, concurrency), serviceTime: serviceTime}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if n.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(serve.HealthResponse{
			Status: "ok", Input: serve.InputShape{Channels: 1, Height: 8, Width: 8}, Backends: 1,
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if n.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ready"}`))
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		n.hits.Add(1)
		if n.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		n.sem <- struct{}{}
		if n.serviceTime > 0 {
			time.Sleep(n.serviceTime)
		}
		<-n.sem
		w.Write([]byte(`{"argmax":1}`))
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

// waitForState polls the membership snapshot until the node reaches the
// wanted state or the deadline passes.
func waitForState(t *testing.T, m *fleet.Membership, url, state string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		for _, n := range m.Snapshot() {
			if n.URL == url && n.State == state {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %s never reached state %q within %v; snapshot: %+v",
		url, state, within, m.Snapshot())
}

// TestFleetSaturationShedsNotDrops offers the fleet at least twice what it
// can serve and checks the overload contract: every arrival is classified
// (the loadgen accounting invariant), the excess is shed or rejected with
// typed responses — never an untyped error — the shedding lands on the
// low-priority class only, and the requests that were admitted still meet
// their deadline (admission control keeps queues short instead of letting
// latency absorb the overload).
func TestFleetSaturationShedsNotDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}
	// Each node serves one request at a time in 20ms: 50 req/s per node,
	// ~150 req/s for the fleet (the router spreads one model's replica set
	// by least-inflight), so 600 req/s offered is ~4x capacity.
	nodes := []*slowNode{
		newSlowNode(t, 1, 20*time.Millisecond),
		newSlowNode(t, 1, 20*time.Millisecond),
		newSlowNode(t, 1, 20*time.Millisecond),
	}
	rt := fleet.NewRouter(fleet.RouterConfig{
		MaxInflight:         6,
		LowPriorityFraction: 0.5,
		// Failover would only bounce saturated requests between busy nodes
		// here; keep the test about admission, not retries.
		Retries: 0,
		Membership: fleet.MembershipConfig{
			ProbeInterval: 20 * time.Millisecond,
			// The nodes are healthy, just slow; a breaker trip would be a
			// test artifact, so set the threshold out of reach.
			BreakerThreshold: 1 << 20,
		},
	})
	for _, n := range nodes {
		if _, err := rt.Membership().Register(n.srv.URL); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	rt.Start()
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const deadlineMs = 500
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		TargetURL:    front.URL,
		RateRPS:      600,
		Duration:     1500 * time.Millisecond,
		Arrival:      loadgen.ArrivalPoisson,
		Body:         []byte(`{"image":[0]}`),
		DeadlineMs:   deadlineMs,
		HighFraction: 0.5,
		Timeout:      2 * time.Second,
		Seed:         11,
	})
	if err != nil {
		t.Fatalf("loadgen.Run: %v", err) // includes the silent-drop accounting check
	}

	if got := rep.OK + rep.DeadlineMiss + rep.Shed + rep.Rejected + rep.Errors; got != rep.Sent {
		t.Fatalf("silent drop: %d classified of %d sent", got, rep.Sent)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0: overload must answer typed, not fail", rep.Errors)
	}
	if rep.OK == 0 {
		t.Fatal("nothing succeeded under overload; admitted traffic should still be served")
	}
	if rep.Sent < 2*rep.OK {
		t.Fatalf("offered %d vs %d served: run did not reach 2x capacity", rep.Sent, rep.OK)
	}
	if rep.Shed == 0 {
		t.Error("no low-priority shedding despite ~4x overload")
	}
	if rep.Rejected == 0 {
		t.Error("no saturation rejects (429) despite ~4x overload")
	}
	high, low := rep.Classes["high"], rep.Classes["low"]
	if high.Shed != 0 {
		t.Errorf("high-priority shed = %d, want 0 (only low sheds)", high.Shed)
	}
	if low.Shed == 0 {
		t.Error("low-priority class saw no shedding")
	}
	if high.Latency.Count == 0 {
		t.Fatal("no high-priority latency samples")
	}
	if high.Latency.P99 >= deadlineMs {
		t.Errorf("high-priority p99 = %.2fms, want < %dms deadline (admission let queues grow)",
			high.Latency.P99, deadlineMs)
	}
	t.Logf("sent %d: ok %d miss %d shed %d rejected %d; high p99 %.2fms",
		rep.Sent, rep.OK, rep.DeadlineMiss, rep.Shed, rep.Rejected, high.Latency.P99)
}

// TestFleetNodeKillLosesNoRequest kills one of three nodes in the middle of
// a steady request stream and brings it back: every admitted request must
// still get a 200 (failover covers the kill window), the prober must evict
// the dead node and re-admit it after recovery, and traffic must flow to it
// again once it is back in the ring.
func TestFleetNodeKillLosesNoRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}
	nodes := []*slowNode{
		newSlowNode(t, 16, 0),
		newSlowNode(t, 16, 0),
		newSlowNode(t, 16, 0),
	}
	rt := fleet.NewRouter(fleet.RouterConfig{
		ReplicationFactor: 3,
		Retries:           2,
		Membership: fleet.MembershipConfig{
			ProbeInterval:    10 * time.Millisecond,
			FailThreshold:    2,
			BreakerThreshold: 3,
			BreakerCooldown:  50 * time.Millisecond,
		},
	})
	for _, n := range nodes {
		if _, err := rt.Membership().Register(n.srv.URL); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	rt.Start()
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Spread requests over many model keys so every node is someone's
	// primary and the kill is guaranteed to hit live traffic.
	var (
		ok       atomic.Int64
		failed   atomic.Int64
		lastFail atomic.Value
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	client := &http.Client{Timeout: 5 * time.Second}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req, err := http.NewRequest(http.MethodPost, front.URL+"/infer",
					strings.NewReader(`{"image":[0]}`))
				if err != nil {
					failed.Add(1)
					lastFail.Store(err.Error())
					continue
				}
				req.Header.Set(fleet.ModelHeader, fmt.Sprintf("m-%d", (worker*31+i)%16))
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					lastFail.Store(err.Error())
					continue
				}
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				} else {
					failed.Add(1)
					lastFail.Store(fmt.Sprintf("status %d", resp.StatusCode))
				}
				resp.Body.Close()
			}
		}(w)
	}

	victim := nodes[1]
	time.Sleep(150 * time.Millisecond) // steady state before the kill
	victim.down.Store(true)
	waitForState(t, rt.Membership(), victim.srv.URL, "down", 2*time.Second)
	time.Sleep(150 * time.Millisecond) // serve through the outage
	victim.down.Store(false)
	waitForState(t, rt.Membership(), victim.srv.URL, "ready", 2*time.Second)

	// With the victim back in the ring, confirm it takes traffic again.
	baseline := victim.hits.Load()
	deadline := time.Now().Add(2 * time.Second)
	for victim.hits.Load() == baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Errorf("%d of %d requests failed across the kill (last: %v); failover must cover a single node loss",
			failed.Load(), failed.Load()+ok.Load(), lastFail.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no requests completed")
	}
	if victim.hits.Load() == baseline {
		t.Errorf("revived node saw no traffic after re-admission (hits stuck at %d)", baseline)
	}
	st := rt.Stats()
	if st.Retries == 0 {
		t.Error("no retries recorded; the kill window should have forced failover")
	}
	t.Logf("ok %d, retries %d, victim hits %d (baseline after revive %d)",
		ok.Load(), st.Retries, victim.hits.Load(), baseline)
}
