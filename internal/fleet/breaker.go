package fleet

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one trial request through; its outcome
	// closes or re-opens the circuit.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-node circuit breaker. The router consults Allow before
// forwarding to a node and reports the attempt's outcome with Success or
// Failure; Threshold consecutive failures open the circuit, which re-closes
// only after a cooldown and one successful half-open trial. An open breaker
// takes a flapping node out of the retry rotation without waiting for the
// slower health-probe eviction.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
}

// NewBreaker creates a closed breaker: threshold consecutive failures open
// it (default 5), cooldown is the open → half-open delay (default 1s). The
// zero now func means time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may be forwarded. An open breaker whose
// cooldown has elapsed transitions to half-open and admits the caller as
// the single trial; further callers are rejected until the trial settles.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: a trial is already in flight
		return false
	}
}

// Success records a successful attempt, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecFails = 0
}

// Failure records a failed attempt: the trial of a half-open circuit
// re-opens it immediately; a closed circuit opens after threshold
// consecutive failures.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = b.now()
		return
	}
	b.consecFails++
	if b.state == BreakerClosed && b.consecFails >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
