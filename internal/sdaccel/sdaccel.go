// Package sdaccel is the host-side runtime of the Condor backend: an
// OpenCL-like device/context/buffer/queue API that loads the xclbin
// produced by the packaging flow onto a (simulated) FPGA card and executes
// inference batches on the dataflow fabric. Kernel execution time is
// reported from the cycle-level performance model at the achieved clock, so
// host programs observe the timing behaviour the paper measures (Figure 5).
package sdaccel

import (
	"fmt"
	"sync"

	"condor/internal/bitstream"
	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/obs"
	"condor/internal/perf"
	"condor/internal/tensor"
)

// Device models one FPGA card visible to the runtime. The card carries one
// or more compute units — replicated kernel instances of the programmed
// design, the CU replication knob of the packaging flow — and each unit runs
// one kernel at a time behind its own lock, so a device executes up to
// ComputeUnits() kernels concurrently. Device state transitions (program,
// weight load, CU count) stay behind the device mutex; scheduler goroutines
// of the serving tier may share a Device without external locking.
type Device struct {
	ID    string
	Board *board.Board

	mu      sync.Mutex
	xclbin  *bitstream.Xclbin
	weights *condorir.WeightSet
	tracer  obs.Tracer
	numCUs  int            // requested replication; applied at (re)instantiation
	cus     []*computeUnit // nil until weights are loaded
	rr      uint64         // round-robin cursor for the blocking fallback

	// archived accumulates the counters of compute units retired by a
	// reprogram/reload, keeping device totals monotonic across instantiations.
	archived DeviceCounters
}

// computeUnit is one kernel instance of the programmed design: a cloned
// fabric sharing the device's sealed weight store, an execution lock (one
// kernel at a time per unit, as in hardware) and private dispatch counters.
// Dispatches run through a resident streaming session, so back-to-back
// batches on the same unit pipeline at the fabric's steady-state initiation
// interval instead of draining between kernels.
type computeUnit struct {
	mu   sync.Mutex // execution lock: held for the duration of one kernel run
	acc  *dataflow.Accelerator
	sess *dataflow.Session // resident session; opened lazily, nil when closed

	// Counters live behind their own lock so metric scrapes read them
	// mid-kernel instead of stalling behind a running dispatch.
	cmu      sync.Mutex
	kernels  int64
	images   int64
	kernelMs float64
}

// session returns the unit's resident streaming session, opening it on first
// dispatch. Caller holds cu.mu.
func (cu *computeUnit) session() *dataflow.Session {
	if cu.sess == nil {
		cu.sess = cu.acc.OpenSession()
	}
	return cu.sess
}

// closeSession joins and drops the resident session (no-op when none is
// open). The teardown error, if any, was already reported by the dispatch
// that failed, so it is discarded here. Caller holds cu.mu.
func (cu *computeUnit) closeSession() {
	if cu.sess != nil {
		_ = cu.sess.Close()
		cu.sess = nil
	}
}

func (cu *computeUnit) counters() DeviceCounters {
	cu.cmu.Lock()
	defer cu.cmu.Unlock()
	return DeviceCounters{Kernels: cu.kernels, Images: cu.images, KernelMs: cu.kernelMs}
}

func (c *DeviceCounters) add(o DeviceCounters) {
	c.Kernels += o.Kernels
	c.Images += o.Images
	c.KernelMs += o.KernelMs
}

// DeviceCounters is a snapshot of a device's cumulative execution figures.
type DeviceCounters struct {
	Kernels  int64   // kernel dispatches executed
	Images   int64   // images inferred
	KernelMs float64 // modeled device-busy milliseconds
}

// Counters snapshots the device's execution accounting: the sum over its
// compute units plus anything archived from earlier instantiations.
func (d *Device) Counters() DeviceCounters {
	d.mu.Lock()
	total := d.archived
	cus := d.cus
	d.mu.Unlock()
	for _, cu := range cus {
		total.add(cu.counters())
	}
	return total
}

// CUCounters snapshots each live compute unit's accounting, indexed by CU.
func (d *Device) CUCounters() []DeviceCounters {
	d.mu.Lock()
	cus := d.cus
	d.mu.Unlock()
	out := make([]DeviceCounters, len(cus))
	for i, cu := range cus {
		out[i] = cu.counters()
	}
	return out
}

// SetComputeUnits sets the device's kernel replication factor (minimum 1).
// When weights are already loaded the fabric pool is rebuilt immediately;
// otherwise the count is applied at the next LoadWeights. Counters of
// retired units are archived into the device totals.
func (d *Device) SetComputeUnits(n int) error {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.numCUs = n
	if d.weights == nil || d.xclbin == nil {
		return nil
	}
	return d.instantiateLocked()
}

// ComputeUnits returns the device's configured replication factor.
func (d *Device) ComputeUnits() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.numCUs < 1 {
		return 1
	}
	return d.numCUs
}

// SetTracer attaches a span tracer to the device's fabrics: subsequent
// kernel executions record feeder/PE/collector spans into it (per-CU track
// prefixes keep replicated units apart). The tracer survives weight reloads;
// pass nil to detach.
func (d *Device) SetTracer(t obs.Tracer) {
	d.mu.Lock()
	d.tracer = t
	cus := d.cus
	d.mu.Unlock()
	// Take each unit's execution lock so the tracer swap cannot race a
	// running kernel, and retire the resident session: fabric tracks are
	// registered when a session opens, so the next dispatch reopens one
	// against the new tracer.
	for _, cu := range cus {
		cu.mu.Lock()
		cu.closeSession()
		cu.acc.SetTracer(t)
		cu.mu.Unlock()
	}
}

// RegisterMetrics exposes the execution counters of the given devices
// through reg under the condor_sdaccel_* families, labelled by device id and
// read at scrape time. A device with a replicated fabric reports one sample
// per compute unit, labelled {device, cu}; a single-unit device keeps the
// plain per-device label so existing dashboards are unchanged. Register each
// family once per registry: pass every device in one call.
func RegisterMetrics(reg *obs.Registry, devices ...*Device) {
	perDevice := func(fn func(DeviceCounters) float64) func() []obs.Sample {
		return func() []obs.Sample {
			var out []obs.Sample
			for _, d := range devices {
				if cus := d.CUCounters(); len(cus) > 1 {
					for i, c := range cus {
						out = append(out, obs.Sample{
							Labels: []obs.Label{obs.L("device", d.ID), obs.L("cu", fmt.Sprintf("%d", i))},
							Value:  fn(c),
						})
					}
					continue
				}
				out = append(out, obs.Sample{
					Labels: []obs.Label{obs.L("device", d.ID)},
					Value:  fn(d.Counters()),
				})
			}
			return out
		}
	}
	reg.Func("condor_sdaccel_kernels_total", obs.TypeCounter,
		"Kernel dispatches executed per device.",
		perDevice(func(c DeviceCounters) float64 { return float64(c.Kernels) }))
	reg.Func("condor_sdaccel_images_total", obs.TypeCounter,
		"Images inferred per device.",
		perDevice(func(c DeviceCounters) float64 { return float64(c.Images) }))
	reg.Func("condor_sdaccel_kernel_ms_total", obs.TypeCounter,
		"Modeled device-busy milliseconds per device.",
		perDevice(func(c DeviceCounters) float64 { return c.KernelMs }))
}

// NewDevice creates a device backed by the catalogued board.
func NewDevice(id, boardID string) (*Device, error) {
	b, err := board.Lookup(boardID)
	if err != nil {
		return nil, err
	}
	return &Device{ID: id, Board: b}, nil
}

// LoadXclbin programs the device with a kernel binary. F1 devices refuse a
// direct bitstream load — "it is not possible to load a bitstream directly
// onto the FPGAs of an F1 instance" — the AFI flow must be used instead.
func (d *Device) LoadXclbin(data []byte) error {
	if d.Board.CloudOnly {
		return fmt.Errorf("sdaccel: device %s (%s) cannot be programmed directly; create an AFI and load it on an F1 slot", d.ID, d.Board.ID)
	}
	return d.program(data)
}

// ProgramFromAFI is the F1-slot load path used by the cloud service after
// AFI generation; it bypasses the direct-load restriction.
func (d *Device) ProgramFromAFI(xclbinData []byte) error {
	return d.program(xclbinData)
}

func (d *Device) program(data []byte) error {
	x, err := bitstream.ReadXclbin(data)
	if err != nil {
		return err
	}
	if x.Meta.Board != d.Board.ID {
		return fmt.Errorf("sdaccel: xclbin targets %s, device is %s", x.Meta.Board, d.Board.ID)
	}
	d.mu.Lock()
	d.xclbin = x
	d.retireLocked() // weights must be (re)loaded for the new image
	d.mu.Unlock()
	return nil
}

// retireLocked archives the live compute units' counters into the device
// totals and drops the units, joining each unit's resident session first
// (taking the execution lock waits out any in-flight kernel). Caller holds
// d.mu.
func (d *Device) retireLocked() {
	for _, cu := range d.cus {
		cu.mu.Lock()
		cu.closeSession()
		cu.mu.Unlock()
		d.archived.add(cu.counters())
	}
	d.cus = nil
}

// Programmed reports whether a kernel image is loaded.
func (d *Device) Programmed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.xclbin != nil
}

// Spec returns the fabric specification of the loaded image.
func (d *Device) Spec() (*dataflow.Spec, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.xclbin == nil {
		return nil, fmt.Errorf("sdaccel: device %s has no image loaded", d.ID)
	}
	return d.xclbin.Spec, nil
}

// Meta returns the loaded image's metadata.
func (d *Device) Meta() (bitstream.Metadata, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.xclbin == nil {
		return bitstream.Metadata{}, fmt.Errorf("sdaccel: device %s has no image loaded", d.ID)
	}
	return d.xclbin.Meta, nil
}

// LoadWeights transfers the network weights to the device's on-board memory
// (the dynamic weight-load step that lets a retrained network run without
// re-synthesis) and instantiates the fabric.
func (d *Device) LoadWeights(ws *condorir.WeightSet) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.xclbin == nil {
		return fmt.Errorf("sdaccel: device %s has no image loaded", d.ID)
	}
	d.weights = ws
	return d.instantiateLocked()
}

// instantiateLocked builds the compute-unit pool for the current image,
// weights and replication factor: one fabric is instantiated (weights load
// once into the sealed store) and cloned into the remaining units, which
// share the store by reference. Caller holds d.mu.
func (d *Device) instantiateLocked() error {
	acc, err := dataflow.Instantiate(d.xclbin.Spec, d.weights)
	if err != nil {
		return err
	}
	if d.tracer != nil {
		acc.SetTracer(d.tracer)
	}
	n := d.numCUs
	if n < 1 {
		n = 1
	}
	pool := dataflow.NewCUPool(acc, n)
	d.retireLocked()
	cus := make([]*computeUnit, n)
	for i := range cus {
		cus[i] = &computeUnit{acc: pool.CU(i)}
	}
	d.cus = cus
	return nil
}

// acquireCU returns a compute unit with its execution lock held. A TryLock
// scan starting at the round-robin cursor grabs an idle unit without
// blocking; when every unit is busy the caller blocks on the cursor's unit,
// so waiting dispatches spread across the units instead of piling onto one.
func (d *Device) acquireCU() (*computeUnit, error) {
	d.mu.Lock()
	cus := d.cus
	var start int
	if len(cus) > 0 {
		start = int(d.rr % uint64(len(cus)))
		d.rr++
	}
	d.mu.Unlock()
	if len(cus) == 0 {
		return nil, fmt.Errorf("sdaccel: device %s has no weights loaded", d.ID)
	}
	for i := 0; i < len(cus); i++ {
		cu := cus[(start+i)%len(cus)]
		if cu.mu.TryLock() {
			return cu, nil
		}
	}
	cu := cus[start]
	cu.mu.Lock()
	return cu, nil
}

// Context is an OpenCL-like command context on one device.
type Context struct {
	dev     *Device
	buffers []*Buffer
	queue   []func() error
	info    RunInfo
}

// Buffer is a device-memory allocation of float32 words.
type Buffer struct {
	id   int
	data []float32
}

// Words returns the buffer capacity.
func (b *Buffer) Words() int { return len(b.data) }

// CreateContext opens a command context on the device.
func CreateContext(dev *Device) *Context { return &Context{dev: dev} }

// CreateBuffer allocates a device buffer of n words.
func (c *Context) CreateBuffer(n int) *Buffer {
	b := &Buffer{id: len(c.buffers), data: make([]float32, n)}
	c.buffers = append(c.buffers, b)
	return b
}

// EnqueueWrite copies host data into a device buffer.
func (c *Context) EnqueueWrite(b *Buffer, src []float32) {
	cp := make([]float32, len(src))
	copy(cp, src)
	c.queue = append(c.queue, func() error {
		if len(cp) > len(b.data) {
			return fmt.Errorf("sdaccel: write of %d words overflows buffer of %d", len(cp), len(b.data))
		}
		copy(b.data, cp)
		return nil
	})
}

// EnqueueRead copies a device buffer back to host memory at Finish time.
func (c *Context) EnqueueRead(b *Buffer, dst []float32) {
	c.queue = append(c.queue, func() error {
		if len(dst) > len(b.data) {
			return fmt.Errorf("sdaccel: read of %d words overflows buffer of %d", len(dst), len(b.data))
		}
		copy(dst, b.data)
		return nil
	})
}

// EnqueueKernel launches the accelerator on batch images stored
// back-to-back in the input buffer, writing outputs back-to-back into the
// output buffer. The dispatch streams the batch through the compute unit's
// resident session, so consecutive kernels on the same unit pipeline
// back-to-back; the RunStats recorded into RunInfo.LastStats are cumulative
// over the session's lifetime, matching what one continuous run reports.
func (c *Context) EnqueueKernel(in, out *Buffer, batch int) {
	c.queue = append(c.queue, func() error {
		dev := c.dev
		dev.mu.Lock()
		xclbin := dev.xclbin
		loaded := len(dev.cus) > 0
		dev.mu.Unlock()
		if xclbin == nil || !loaded {
			return fmt.Errorf("sdaccel: device %s has no weights loaded", dev.ID)
		}
		spec := xclbin.Spec
		inVol := spec.Input.Volume()
		outShape := spec.OutputShape()
		outVol := outShape.Volume()
		if batch <= 0 {
			return fmt.Errorf("sdaccel: non-positive batch %d", batch)
		}
		if batch*inVol > len(in.data) {
			return fmt.Errorf("sdaccel: input buffer holds %d words, batch needs %d", len(in.data), batch*inVol)
		}
		if batch*outVol > len(out.data) {
			return fmt.Errorf("sdaccel: output buffer holds %d words, batch needs %d", len(out.data), batch*outVol)
		}
		imgs := make([]*tensor.Tensor, batch)
		for i := range imgs {
			img := tensor.New(spec.Input.Channels, spec.Input.Height, spec.Input.Width)
			copy(img.Data(), in.data[i*inVol:(i+1)*inVol])
			imgs[i] = img
		}
		cu, err := dev.acquireCU()
		if err != nil {
			return err
		}
		outs, stats, err := cu.session().RunBatch(imgs)
		if err != nil {
			// A failed session is sticky; retire it so the next dispatch
			// reopens a fresh fabric instead of failing forever.
			cu.closeSession()
			cu.mu.Unlock()
			return err
		}
		for i, o := range outs {
			copy(out.data[i*outVol:(i+1)*outVol], o.Data())
		}
		// Device time from the pipeline model at the achieved clock.
		cycles := perf.SimulateBatch(perf.Stages(spec), batch)
		ms := perf.CyclesToMs(cycles, xclbin.Meta.AchievedMHz)
		c.info.KernelMs += ms
		c.info.Batches++
		c.info.Images += batch
		c.info.LastStats = stats
		cu.cmu.Lock()
		cu.kernels++
		cu.images += int64(batch)
		cu.kernelMs += ms
		cu.cmu.Unlock()
		cu.mu.Unlock()
		return nil
	})
}

// RunInfo accumulates execution metrics across Finish calls.
type RunInfo struct {
	KernelMs  float64
	Batches   int
	Images    int
	LastStats *dataflow.RunStats
}

// Finish executes all enqueued commands in order and returns the
// accumulated run info. Buffer transfers touch only the context's own
// buffers; kernel dispatches acquire one of the device's compute units for
// the duration of the run. The device mutex is NOT held across the command
// sequence, so contexts created by concurrent goroutines (the serving
// scheduler, the cloud service's per-slot host programs) execute in parallel
// up to the device's compute-unit count and serialise per unit beyond it —
// exactly the concurrency a replicated physical card offers.
func (c *Context) Finish() (RunInfo, error) {
	for _, cmd := range c.queue {
		if err := cmd(); err != nil {
			c.queue = nil
			return c.info, err
		}
	}
	c.queue = nil
	return c.info, nil
}
