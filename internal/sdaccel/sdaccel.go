// Package sdaccel is the host-side runtime of the Condor backend: an
// OpenCL-like device/context/buffer/queue API that loads the xclbin
// produced by the packaging flow onto a (simulated) FPGA card and executes
// inference batches on the dataflow fabric. Kernel execution time is
// reported from the cycle-level performance model at the achieved clock, so
// host programs observe the timing behaviour the paper measures (Figure 5).
package sdaccel

import (
	"fmt"
	"sync"

	"condor/internal/bitstream"
	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/obs"
	"condor/internal/perf"
	"condor/internal/tensor"
)

// Device models one FPGA card visible to the runtime. A device serialises
// programming, weight loads and command-queue execution behind one mutex —
// a physical card runs one kernel at a time — so scheduler goroutines of
// the serving tier may share a Device without external locking.
type Device struct {
	ID    string
	Board *board.Board

	mu      sync.Mutex
	xclbin  *bitstream.Xclbin
	weights *condorir.WeightSet
	acc     *dataflow.Accelerator
	tracer  obs.Tracer

	// Cumulative execution accounting. Guarded by mu: kernel closures run
	// under the device lock in Finish, matching how a card's management
	// stack counts completed kernel dispatches.
	kernels  int64
	images   int64
	kernelMs float64
}

// DeviceCounters is a snapshot of a device's cumulative execution figures.
type DeviceCounters struct {
	Kernels  int64   // kernel dispatches executed
	Images   int64   // images inferred
	KernelMs float64 // modeled device-busy milliseconds
}

// Counters snapshots the device's execution accounting.
func (d *Device) Counters() DeviceCounters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DeviceCounters{Kernels: d.kernels, Images: d.images, KernelMs: d.kernelMs}
}

// SetTracer attaches a span tracer to the device's fabric: subsequent kernel
// executions record feeder/PE/collector spans into it. The tracer survives
// weight reloads; pass nil to detach.
func (d *Device) SetTracer(t obs.Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracer = t
	if d.acc != nil {
		d.acc.SetTracer(t)
	}
}

// RegisterMetrics exposes the execution counters of the given devices
// through reg under the condor_sdaccel_* families, labelled by device id and
// read at scrape time. Register each family once per registry: pass every
// device in one call.
func RegisterMetrics(reg *obs.Registry, devices ...*Device) {
	perDevice := func(fn func(DeviceCounters) float64) func() []obs.Sample {
		return func() []obs.Sample {
			out := make([]obs.Sample, len(devices))
			for i, d := range devices {
				out[i] = obs.Sample{
					Labels: []obs.Label{obs.L("device", d.ID)},
					Value:  fn(d.Counters()),
				}
			}
			return out
		}
	}
	reg.Func("condor_sdaccel_kernels_total", obs.TypeCounter,
		"Kernel dispatches executed per device.",
		perDevice(func(c DeviceCounters) float64 { return float64(c.Kernels) }))
	reg.Func("condor_sdaccel_images_total", obs.TypeCounter,
		"Images inferred per device.",
		perDevice(func(c DeviceCounters) float64 { return float64(c.Images) }))
	reg.Func("condor_sdaccel_kernel_ms_total", obs.TypeCounter,
		"Modeled device-busy milliseconds per device.",
		perDevice(func(c DeviceCounters) float64 { return c.KernelMs }))
}

// NewDevice creates a device backed by the catalogued board.
func NewDevice(id, boardID string) (*Device, error) {
	b, err := board.Lookup(boardID)
	if err != nil {
		return nil, err
	}
	return &Device{ID: id, Board: b}, nil
}

// LoadXclbin programs the device with a kernel binary. F1 devices refuse a
// direct bitstream load — "it is not possible to load a bitstream directly
// onto the FPGAs of an F1 instance" — the AFI flow must be used instead.
func (d *Device) LoadXclbin(data []byte) error {
	if d.Board.CloudOnly {
		return fmt.Errorf("sdaccel: device %s (%s) cannot be programmed directly; create an AFI and load it on an F1 slot", d.ID, d.Board.ID)
	}
	return d.program(data)
}

// ProgramFromAFI is the F1-slot load path used by the cloud service after
// AFI generation; it bypasses the direct-load restriction.
func (d *Device) ProgramFromAFI(xclbinData []byte) error {
	return d.program(xclbinData)
}

func (d *Device) program(data []byte) error {
	x, err := bitstream.ReadXclbin(data)
	if err != nil {
		return err
	}
	if x.Meta.Board != d.Board.ID {
		return fmt.Errorf("sdaccel: xclbin targets %s, device is %s", x.Meta.Board, d.Board.ID)
	}
	d.mu.Lock()
	d.xclbin = x
	d.acc = nil // weights must be (re)loaded for the new image
	d.mu.Unlock()
	return nil
}

// Programmed reports whether a kernel image is loaded.
func (d *Device) Programmed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.xclbin != nil
}

// Spec returns the fabric specification of the loaded image.
func (d *Device) Spec() (*dataflow.Spec, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.xclbin == nil {
		return nil, fmt.Errorf("sdaccel: device %s has no image loaded", d.ID)
	}
	return d.xclbin.Spec, nil
}

// Meta returns the loaded image's metadata.
func (d *Device) Meta() (bitstream.Metadata, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.xclbin == nil {
		return bitstream.Metadata{}, fmt.Errorf("sdaccel: device %s has no image loaded", d.ID)
	}
	return d.xclbin.Meta, nil
}

// LoadWeights transfers the network weights to the device's on-board memory
// (the dynamic weight-load step that lets a retrained network run without
// re-synthesis) and instantiates the fabric.
func (d *Device) LoadWeights(ws *condorir.WeightSet) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.xclbin == nil {
		return fmt.Errorf("sdaccel: device %s has no image loaded", d.ID)
	}
	acc, err := dataflow.Instantiate(d.xclbin.Spec, ws)
	if err != nil {
		return err
	}
	if d.tracer != nil {
		acc.SetTracer(d.tracer)
	}
	d.weights = ws
	d.acc = acc
	return nil
}

// Context is an OpenCL-like command context on one device.
type Context struct {
	dev     *Device
	buffers []*Buffer
	queue   []func() error
	info    RunInfo
}

// Buffer is a device-memory allocation of float32 words.
type Buffer struct {
	id   int
	data []float32
}

// Words returns the buffer capacity.
func (b *Buffer) Words() int { return len(b.data) }

// CreateContext opens a command context on the device.
func CreateContext(dev *Device) *Context { return &Context{dev: dev} }

// CreateBuffer allocates a device buffer of n words.
func (c *Context) CreateBuffer(n int) *Buffer {
	b := &Buffer{id: len(c.buffers), data: make([]float32, n)}
	c.buffers = append(c.buffers, b)
	return b
}

// EnqueueWrite copies host data into a device buffer.
func (c *Context) EnqueueWrite(b *Buffer, src []float32) {
	cp := make([]float32, len(src))
	copy(cp, src)
	c.queue = append(c.queue, func() error {
		if len(cp) > len(b.data) {
			return fmt.Errorf("sdaccel: write of %d words overflows buffer of %d", len(cp), len(b.data))
		}
		copy(b.data, cp)
		return nil
	})
}

// EnqueueRead copies a device buffer back to host memory at Finish time.
func (c *Context) EnqueueRead(b *Buffer, dst []float32) {
	c.queue = append(c.queue, func() error {
		if len(dst) > len(b.data) {
			return fmt.Errorf("sdaccel: read of %d words overflows buffer of %d", len(dst), len(b.data))
		}
		copy(dst, b.data)
		return nil
	})
}

// EnqueueKernel launches the accelerator on batch images stored
// back-to-back in the input buffer, writing outputs back-to-back into the
// output buffer.
func (c *Context) EnqueueKernel(in, out *Buffer, batch int) {
	c.queue = append(c.queue, func() error {
		dev := c.dev
		if dev.acc == nil {
			return fmt.Errorf("sdaccel: device %s has no weights loaded", dev.ID)
		}
		spec := dev.xclbin.Spec
		inVol := spec.Input.Volume()
		outShape := spec.OutputShape()
		outVol := outShape.Volume()
		if batch <= 0 {
			return fmt.Errorf("sdaccel: non-positive batch %d", batch)
		}
		if batch*inVol > len(in.data) {
			return fmt.Errorf("sdaccel: input buffer holds %d words, batch needs %d", len(in.data), batch*inVol)
		}
		if batch*outVol > len(out.data) {
			return fmt.Errorf("sdaccel: output buffer holds %d words, batch needs %d", len(out.data), batch*outVol)
		}
		imgs := make([]*tensor.Tensor, batch)
		for i := range imgs {
			img := tensor.New(spec.Input.Channels, spec.Input.Height, spec.Input.Width)
			copy(img.Data(), in.data[i*inVol:(i+1)*inVol])
			imgs[i] = img
		}
		outs, stats, err := dev.acc.Run(imgs)
		if err != nil {
			return err
		}
		for i, o := range outs {
			copy(out.data[i*outVol:(i+1)*outVol], o.Data())
		}
		// Device time from the pipeline model at the achieved clock.
		cycles := perf.SimulateBatch(perf.Stages(spec), batch)
		ms := perf.CyclesToMs(cycles, dev.xclbin.Meta.AchievedMHz)
		c.info.KernelMs += ms
		c.info.Batches++
		c.info.Images += batch
		c.info.LastStats = stats
		dev.kernels++
		dev.images += int64(batch)
		dev.kernelMs += ms
		return nil
	})
}

// RunInfo accumulates execution metrics across Finish calls.
type RunInfo struct {
	KernelMs  float64
	Batches   int
	Images    int
	LastStats *dataflow.RunStats
}

// Finish executes all enqueued commands in order and returns the
// accumulated run info. The device is held for the whole command sequence,
// so contexts created by concurrent goroutines (the serving scheduler, the
// cloud service's per-slot host programs) serialise on the card exactly as
// one physical device would.
func (c *Context) Finish() (RunInfo, error) {
	c.dev.mu.Lock()
	defer c.dev.mu.Unlock()
	for _, cmd := range c.queue {
		if err := cmd(); err != nil {
			c.queue = nil
			return c.info, err
		}
	}
	c.queue = nil
	return c.info, nil
}
