package sdaccel

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"condor/internal/bitstream"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/models"
	"condor/internal/obs"
	"condor/internal/tensor"
)

// tc1Xclbin compiles TC1 for the given board.
func tc1Xclbin(t *testing.T, boardID string) ([]byte, *condorir.WeightSet) {
	t.Helper()
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	ir.Board = boardID
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := bitstream.PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	xclbin, _, err := bitstream.XOCC(xo, boardID)
	if err != nil {
		t.Fatal(err)
	}
	return xclbin, ws
}

func TestLocalDeviceEndToEnd(t *testing.T) {
	xclbin, ws := tc1Xclbin(t, "zc706")
	dev, err := NewDevice("fpga0", "zc706")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Programmed() {
		t.Fatal("fresh device should not be programmed")
	}
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(ws); err != nil {
		t.Fatal(err)
	}
	meta, err := dev.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kernel != "condor_TC1" {
		t.Fatalf("meta = %+v", meta)
	}

	ctx := CreateContext(dev)
	batch := 4
	imgs := models.USPSImages(batch, 9)
	inVol := 16 * 16
	in := ctx.CreateBuffer(batch * inVol)
	out := ctx.CreateBuffer(batch * 10)
	host := make([]float32, batch*inVol)
	for i, img := range imgs {
		copy(host[i*inVol:], img.Data())
	}
	ctx.EnqueueWrite(in, host)
	ctx.EnqueueKernel(in, out, batch)
	results := make([]float32, batch*10)
	ctx.EnqueueRead(out, results)
	info, err := ctx.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if info.Images != batch || info.KernelMs <= 0 {
		t.Fatalf("run info = %+v", info)
	}

	// Outputs match the reference engine.
	ir, ws2, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	net, err := ir.BuildNN(ws2)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range imgs {
		want, err := net.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		got := tensor.FromSlice(results[i*10:(i+1)*10], 10, 1, 1)
		if !tensor.AllClose(got, want, 2e-3) {
			t.Fatalf("image %d output mismatch", i)
		}
	}
}

func TestF1RefusesDirectLoad(t *testing.T) {
	xclbin, _ := tc1Xclbin(t, "aws-f1-vu9p")
	dev, err := NewDevice("f1slot0", "aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadXclbin(xclbin); err == nil {
		t.Fatal("F1 must refuse a direct bitstream load")
	}
	// The AFI path works.
	if err := dev.ProgramFromAFI(xclbin); err != nil {
		t.Fatal(err)
	}
	if !dev.Programmed() {
		t.Fatal("device should be programmed after AFI load")
	}
}

func TestBoardMismatchRejected(t *testing.T) {
	xclbin, _ := tc1Xclbin(t, "zc706")
	dev, err := NewDevice("fpga0", "ku115")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadXclbin(xclbin); err == nil {
		t.Fatal("expected board-mismatch error")
	}
}

func TestKernelWithoutWeightsFails(t *testing.T) {
	xclbin, _ := tc1Xclbin(t, "zc706")
	dev, _ := NewDevice("fpga0", "zc706")
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	ctx := CreateContext(dev)
	in := ctx.CreateBuffer(256)
	out := ctx.CreateBuffer(10)
	ctx.EnqueueKernel(in, out, 1)
	if _, err := ctx.Finish(); err == nil {
		t.Fatal("expected no-weights error")
	}
}

func TestBufferOverflowErrors(t *testing.T) {
	xclbin, ws := tc1Xclbin(t, "zc706")
	dev, _ := NewDevice("fpga0", "zc706")
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(ws); err != nil {
		t.Fatal(err)
	}
	ctx := CreateContext(dev)
	in := ctx.CreateBuffer(10) // too small for one 256-word image
	out := ctx.CreateBuffer(10)
	ctx.EnqueueKernel(in, out, 1)
	if _, err := ctx.Finish(); err == nil {
		t.Fatal("expected input-buffer overflow error")
	}
}

func TestWeightsMustMatchImage(t *testing.T) {
	xclbin, _ := tc1Xclbin(t, "zc706")
	dev, _ := NewDevice("fpga0", "zc706")
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(condorir.NewWeightSet()); err == nil {
		t.Fatal("expected weight-mismatch error")
	}
}

// A device with SetComputeUnits(n) executes concurrent contexts on distinct
// kernel instances: outputs stay correct, per-CU counters cover all
// dispatches, and the metric samples carry {device, cu} labels.
func TestComputeUnitReplication(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	xclbin, ws := tc1Xclbin(t, "zc706")
	dev, err := NewDevice("fpga0", "zc706")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.SetComputeUnits(2); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(ws); err != nil {
		t.Fatal(err)
	}
	if got := dev.ComputeUnits(); got != 2 {
		t.Fatalf("ComputeUnits() = %d, want 2", got)
	}

	ir, ws2, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	net, err := ir.BuildNN(ws2)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 4
	const perClient = 2
	inVol, outVol := 16*16, 10
	imgs := models.USPSImages(clients, 3)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want, err := net.Predict(imgs[g])
			if err != nil {
				errs[g] = err
				return
			}
			for rep := 0; rep < perClient; rep++ {
				ctx := CreateContext(dev)
				in := ctx.CreateBuffer(inVol)
				out := ctx.CreateBuffer(outVol)
				ctx.EnqueueWrite(in, imgs[g].Data())
				ctx.EnqueueKernel(in, out, 1)
				res := make([]float32, outVol)
				ctx.EnqueueRead(out, res)
				if _, err := ctx.Finish(); err != nil {
					errs[g] = err
					return
				}
				got := tensor.FromSlice(res, outVol, 1, 1)
				if !tensor.AllClose(got, want, 2e-3) {
					errs[g] = fmt.Errorf("client %d rep %d: output mismatch", g, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	total := dev.Counters()
	if total.Kernels != clients*perClient || total.Images != clients*perClient {
		t.Fatalf("device counters = %+v, want %d kernels/images", total, clients*perClient)
	}
	cus := dev.CUCounters()
	if len(cus) != 2 {
		t.Fatalf("CUCounters has %d entries, want 2", len(cus))
	}
	var sum int64
	for _, c := range cus {
		sum += c.Kernels
	}
	if sum != total.Kernels {
		t.Fatalf("per-CU kernels sum %d != device total %d", sum, total.Kernels)
	}

	reg := obs.NewRegistry()
	RegisterMetrics(reg, dev)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{`cu="0",device="fpga0"`, `cu="1",device="fpga0"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing per-CU label %s:\n%s", want, text)
		}
	}

	// Reprogramming retires the units but keeps device totals monotonic.
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if got := dev.Counters(); got != total {
		t.Fatalf("counters after reprogram = %+v, want %+v", got, total)
	}
}

func TestReloadInvalidatesWeights(t *testing.T) {
	xclbin, ws := tc1Xclbin(t, "zc706")
	dev, _ := NewDevice("fpga0", "zc706")
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(ws); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	ctx := CreateContext(dev)
	in := ctx.CreateBuffer(256)
	out := ctx.CreateBuffer(10)
	ctx.EnqueueKernel(in, out, 1)
	if _, err := ctx.Finish(); err == nil {
		t.Fatal("weights must be reloaded after reprogramming")
	}
}
