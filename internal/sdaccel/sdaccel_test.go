package sdaccel

import (
	"testing"

	"condor/internal/bitstream"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/models"
	"condor/internal/tensor"
)

// tc1Xclbin compiles TC1 for the given board.
func tc1Xclbin(t *testing.T, boardID string) ([]byte, *condorir.WeightSet) {
	t.Helper()
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	ir.Board = boardID
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := bitstream.PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	xclbin, _, err := bitstream.XOCC(xo, boardID)
	if err != nil {
		t.Fatal(err)
	}
	return xclbin, ws
}

func TestLocalDeviceEndToEnd(t *testing.T) {
	xclbin, ws := tc1Xclbin(t, "zc706")
	dev, err := NewDevice("fpga0", "zc706")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Programmed() {
		t.Fatal("fresh device should not be programmed")
	}
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(ws); err != nil {
		t.Fatal(err)
	}
	meta, err := dev.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kernel != "condor_TC1" {
		t.Fatalf("meta = %+v", meta)
	}

	ctx := CreateContext(dev)
	batch := 4
	imgs := models.USPSImages(batch, 9)
	inVol := 16 * 16
	in := ctx.CreateBuffer(batch * inVol)
	out := ctx.CreateBuffer(batch * 10)
	host := make([]float32, batch*inVol)
	for i, img := range imgs {
		copy(host[i*inVol:], img.Data())
	}
	ctx.EnqueueWrite(in, host)
	ctx.EnqueueKernel(in, out, batch)
	results := make([]float32, batch*10)
	ctx.EnqueueRead(out, results)
	info, err := ctx.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if info.Images != batch || info.KernelMs <= 0 {
		t.Fatalf("run info = %+v", info)
	}

	// Outputs match the reference engine.
	ir, ws2, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	net, err := ir.BuildNN(ws2)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range imgs {
		want, err := net.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		got := tensor.FromSlice(results[i*10:(i+1)*10], 10, 1, 1)
		if !tensor.AllClose(got, want, 2e-3) {
			t.Fatalf("image %d output mismatch", i)
		}
	}
}

func TestF1RefusesDirectLoad(t *testing.T) {
	xclbin, _ := tc1Xclbin(t, "aws-f1-vu9p")
	dev, err := NewDevice("f1slot0", "aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadXclbin(xclbin); err == nil {
		t.Fatal("F1 must refuse a direct bitstream load")
	}
	// The AFI path works.
	if err := dev.ProgramFromAFI(xclbin); err != nil {
		t.Fatal(err)
	}
	if !dev.Programmed() {
		t.Fatal("device should be programmed after AFI load")
	}
}

func TestBoardMismatchRejected(t *testing.T) {
	xclbin, _ := tc1Xclbin(t, "zc706")
	dev, err := NewDevice("fpga0", "ku115")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadXclbin(xclbin); err == nil {
		t.Fatal("expected board-mismatch error")
	}
}

func TestKernelWithoutWeightsFails(t *testing.T) {
	xclbin, _ := tc1Xclbin(t, "zc706")
	dev, _ := NewDevice("fpga0", "zc706")
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	ctx := CreateContext(dev)
	in := ctx.CreateBuffer(256)
	out := ctx.CreateBuffer(10)
	ctx.EnqueueKernel(in, out, 1)
	if _, err := ctx.Finish(); err == nil {
		t.Fatal("expected no-weights error")
	}
}

func TestBufferOverflowErrors(t *testing.T) {
	xclbin, ws := tc1Xclbin(t, "zc706")
	dev, _ := NewDevice("fpga0", "zc706")
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(ws); err != nil {
		t.Fatal(err)
	}
	ctx := CreateContext(dev)
	in := ctx.CreateBuffer(10) // too small for one 256-word image
	out := ctx.CreateBuffer(10)
	ctx.EnqueueKernel(in, out, 1)
	if _, err := ctx.Finish(); err == nil {
		t.Fatal("expected input-buffer overflow error")
	}
}

func TestWeightsMustMatchImage(t *testing.T) {
	xclbin, _ := tc1Xclbin(t, "zc706")
	dev, _ := NewDevice("fpga0", "zc706")
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(condorir.NewWeightSet()); err == nil {
		t.Fatal("expected weight-mismatch error")
	}
}

func TestReloadInvalidatesWeights(t *testing.T) {
	xclbin, ws := tc1Xclbin(t, "zc706")
	dev, _ := NewDevice("fpga0", "zc706")
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadWeights(ws); err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadXclbin(xclbin); err != nil {
		t.Fatal(err)
	}
	ctx := CreateContext(dev)
	in := ctx.CreateBuffer(256)
	out := ctx.CreateBuffer(10)
	ctx.EnqueueKernel(in, out, 1)
	if _, err := ctx.Finish(); err == nil {
		t.Fatal("weights must be reloaded after reprogramming")
	}
}
