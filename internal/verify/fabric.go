package verify

// This file is the whole-network half of the verifier: where verify.go
// checks each structural element in isolation, VerifyFabric constructs the
// static FIFO network graph of the accelerator — datamover, PEs and every
// FIFO edge between and inside them — and proves, for one concrete
// execution configuration (port parallelism, compute-unit replication,
// burst size), that the design cannot deadlock and that the replicated
// hardware fits the board. The proof strategy is the fpgaConvNet-style SDF
// argument: the inter-element graph is acyclic by construction (a linear
// datamover → pe0 → … → peN → datamover chain), so blocking channels can
// only deadlock through a capacity violation on an edge — a producer whose
// worst-case in-flight occupancy exceeds the declared depth of the FIFO it
// writes. Bounding every edge's worst-case occupancy by its declared depth
// is therefore a sufficient static deadlock-freedom condition (conservative
// capacity bound), checked per edge so a violation names the exact FIFO.

import (
	"fmt"

	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/diag"
	"condor/internal/hls"
)

// FabricConfig is one concrete execution configuration of a design: the
// knobs that exist outside the Spec (which carries the per-PE port
// parallelism) but change the fabric's runtime shape. The zero value is the
// default deployment: one compute unit, host-chunked bursts.
type FabricConfig struct {
	// CUs is the compute-unit replication factor: how many full copies of
	// the kernel the device instantiates (condor.DeployLocalCUs,
	// sdaccel.SetComputeUnits). 0 means 1.
	CUs int

	// BurstWords, when positive, is the DMA burst transaction length in
	// words on the inter-PE streaming FIFOs: a burst write completes only
	// once the consumer FIFO has that many free slots, so every stream FIFO
	// must hold at least one full burst. 0 models host-chunked bursts
	// (PushSlice splits transfers by free space), which impose no minimum
	// beyond one slot.
	BurstWords int

	// BatchStreaming declares the continuous-streaming deployment: batches
	// run through a resident session, so consecutive images pipeline
	// back-to-back and frames from two adjacent epochs interleave inside
	// the FIFOs. Enables the CND024 frame-interleaving capacity rule, which
	// bounds every edge's two-epochs-in-flight occupancy.
	BatchStreaming bool
}

func (c FabricConfig) normalized() FabricConfig {
	if c.CUs == 0 {
		c.CUs = 1
	}
	return c
}

// FIFOEdge is one edge of the static FIFO network graph: a FIFO, the two
// elements it connects, its declared depth and the worst-case occupancy the
// schedule can drive it to.
type FIFOEdge struct {
	// Name is the FIFO's fabric name (stream2, pe0/tap(0,1), …), matching
	// the names RunStats reports at runtime.
	Name string
	// From and To are the producing and consuming elements.
	From, To string
	// PE is the owning PE for chain-internal edges ("" for stream edges).
	PE string
	// Depth is the declared capacity in words (0 = auto-sized: the
	// simulator allocates the worst case, so the edge cannot violate it).
	Depth int
	// WorstCase is the occupancy bound the configuration can reach with one
	// image in flight (drain-between-images execution).
	WorstCase int
	// InterleavedWorstCase is the occupancy bound with two adjacent epochs
	// in flight, the batch-streaming regime: the tail of image e is still
	// resident when the head of image e+1 (frame-control words included)
	// arrives. CND024 checks it when FabricConfig.BatchStreaming is set.
	InterleavedWorstCase int
}

// FabricEdges constructs the static FIFO network graph of spec under cfg.
// Edges appear in stream order: the datamover→PE→…→datamover stream FIFOs
// first, then each features PE's per-port tap FIFOs.
func FabricEdges(spec *dataflow.Spec, cfg FabricConfig) []FIFOEdge {
	cfg = cfg.normalized()
	var edges []FIFOEdge

	// Inter-PE stream FIFOs, named as Instantiate names them: stream i
	// feeds PE i; the last one drains the final PE into the datamover.
	streamWorst := 1
	if cfg.BurstWords > 0 {
		streamWorst = cfg.BurstWords
	}
	// Under batch streaming two adjacent epochs share the FIFO: the last
	// burst of image e awaits drain while image e+1's first burst — behind
	// its frame-control words (epoch header, plus the scale word on the
	// packed datapath) — lands. Conservative bound: two full bursts plus
	// one frame's control words.
	streamInterleaved := 2*streamWorst + spec.FrameHeaderWords()
	for i := 0; i <= len(spec.PEs); i++ {
		from, to := "datamover", "datamover"
		if i > 0 {
			from = spec.PEs[i-1].ID
		}
		if i < len(spec.PEs) {
			to = spec.PEs[i].ID
		}
		edges = append(edges, FIFOEdge{
			Name:                 fmt.Sprintf("stream%d", i),
			From:                 from,
			To:                   to,
			Depth:                spec.InterPEFIFODepth,
			WorstCase:            streamWorst,
			InterleavedWorstCase: streamInterleaved,
		})
	}

	// Chain tap FIFOs of the burst datapath: one chain instance per input
	// port, each tap's worst case set by the most demanding fused layer.
	for _, pe := range spec.PEs {
		if pe.Chain == nil {
			continue
		}
		worst, interleaved := 0, 0
		for i := range pe.Layers {
			l := &pe.Layers[i]
			if !l.Kind.IsFeatureExtraction() {
				continue
			}
			w := dataflow.TapWorstCaseWords(l)
			if w > worst {
				worst = w
			}
			// Back-to-back epochs: the closing windows of image e still hold
			// their rows when image e+1's leading row enters the chain.
			if iw := w + l.OutShape.Width; iw > interleaved {
				interleaved = iw
			}
		}
		for port := 0; port < pe.Par.In; port++ {
			for _, tap := range pe.Chain.Taps {
				edges = append(edges, FIFOEdge{
					Name:                 fmt.Sprintf("%s/tap%d(%d,%d)", pe.ID, port, tap.M, tap.N),
					From:                 pe.ID + "/chain",
					To:                   pe.ID + "/window",
					PE:                   pe.ID,
					Depth:                pe.Chain.TapFIFODepth,
					WorstCase:            worst,
					InterleavedWorstCase: interleaved,
				})
			}
		}
	}
	return edges
}

// VerifyFabric checks one execution configuration of a design: the
// configuration itself (CND022), the capacity bound of every FIFO network
// edge (CND020, plus the two-epochs-in-flight bound CND024 when
// cfg.BatchStreaming is set) and the replicated-CU resource totals
// (CND021). b, when nil, is resolved from spec.Board. Diagnostics are sorted errors-first; an
// empty slice proves the configuration deadlock-free under the conservative
// capacity bound and within the board budget.
func VerifyFabric(spec *dataflow.Spec, cfg FabricConfig, b *board.Board) []*Diagnostic {
	var ds []*Diagnostic
	report := func(d *Diagnostic) { ds = append(ds, d) }

	if spec == nil || len(spec.PEs) == 0 {
		report(diag.Errorf(diag.RuleEmptyStructure, "", "", "spec has no processing elements"))
		return ds
	}

	// CND022: the configuration must be executable at all.
	if cfg.CUs < 0 {
		report(diag.Errorf(diag.RuleFabricConfig, "", "",
			"compute-unit count %d is negative", cfg.CUs))
	}
	if cfg.BurstWords < 0 {
		report(diag.Errorf(diag.RuleFabricConfig, "", "",
			"burst size %d words is negative", cfg.BurstWords))
	}
	if diag.HasErrors(ds) {
		diag.Sort(ds)
		return ds
	}
	cfg = cfg.normalized()

	// CND020: every edge of the FIFO network must hold its worst-case
	// occupancy. The inter-element graph is a chain (acyclic), so this
	// capacity bound is sufficient for deadlock freedom.
	for _, e := range FabricEdges(spec, cfg) {
		if e.Depth <= 0 {
			continue // auto-sized: the simulator allocates the worst case
		}
		if e.WorstCase > e.Depth {
			report(diag.Errorf(diag.RuleFIFOOccupancy, e.PE, "",
				"FIFO %s (%s -> %s) holds %d words but the schedule drives it to %d: the fabric deadlocks",
				e.Name, e.From, e.To, e.Depth, e.WorstCase))
			continue // CND024 would only repeat the finding with a larger bound
		}
		// CND024: under batch streaming, two adjacent epochs share every FIFO
		// (the tail of image e drains while the head of image e+1 lands), so
		// the interleaved bound must fit too — a depth adequate for the
		// drain-between-images regime can still stall the resident pipeline.
		if cfg.BatchStreaming && e.InterleavedWorstCase > e.Depth {
			report(diag.Errorf(diag.RuleFrameInterleave, e.PE, "",
				"FIFO %s (%s -> %s) holds %d words but two in-flight epochs drive it to %d: back-to-back streaming stalls the pipeline (deepen the FIFO or disable batch streaming)",
				e.Name, e.From, e.To, e.Depth, e.InterleavedWorstCase))
		}
	}

	// CND021: cfg.CUs full kernel replicas (each with its own datamover,
	// FIFOs and PEs — replicas share nothing but the DDR weight image) must
	// fit the board's shell-excluded budget together.
	if b == nil {
		var err error
		b, err = board.Lookup(spec.Board)
		if err != nil {
			report(diag.Errorf(diag.RuleBoardUnknown, "", "", "%v", err))
			diag.Sort(ds)
			return ds
		}
	}
	if rep, err := hls.Estimate(spec); err == nil {
		total := rep.KernelTotal.Scale(float64(cfg.CUs))
		if !total.FitsIn(b.Available()) {
			u := total.Utilization(b.Available())
			report(diag.Errorf(diag.RuleCUResource, "", "",
				"%d compute units exceed the %s budget: LUT %.0f%% FF %.0f%% DSP %.0f%% BRAM %.0f%% of the available fabric",
				cfg.CUs, b.ID, 100*u.LUT, 100*u.FF, 100*u.DSP, 100*u.BRAM))
		}
	}
	// An estimator error is CND014 territory; checkBoard reports it on the
	// Verify path, so it is not duplicated here.

	diag.Sort(ds)
	return ds
}

// LintConfig is Lint extended with the configuration-dependent fabric rules:
// the full pre-synthesis pass for one concrete (parallelism, CUs, burst)
// deployment of the design.
func LintConfig(spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet, cfg FabricConfig) []*Diagnostic {
	ds := Lint(spec, ir, ws)
	ds = append(ds, VerifyFabric(spec, cfg, nil)...)
	diag.Sort(ds)
	return ds
}
