package verify

import (
	"strings"
	"testing"

	"condor/internal/dataflow"
	"condor/internal/diag"
)

// maxTapWorstCase returns the analytic tap-FIFO occupancy bound of the PE's
// most demanding fused layer — the depth the CND020 rule proves against.
func maxTapWorstCase(pe *dataflow.PE) int {
	worst := 0
	for i := range pe.Layers {
		l := &pe.Layers[i]
		if !l.Kind.IsFeatureExtraction() {
			continue
		}
		if w := dataflow.TapWorstCaseWords(l); w > worst {
			worst = w
		}
	}
	return worst
}

// TestFabricCleanDefault: the default deployment of a clean model (one CU,
// host-chunked bursts, auto-sized FIFOs) proves deadlock-free and within
// budget.
func TestFabricCleanDefault(t *testing.T) {
	spec, _, _ := freshTC1(t)
	if ds := VerifyFabric(spec, FabricConfig{}, nil); len(ds) != 0 {
		t.Fatalf("clean default configuration produced diagnostics: %v", ds)
	}
}

// TestFabricEdgesGraph pins the shape of the static FIFO network graph: one
// stream FIFO per PE boundary (including both datamover edges) and, per
// features PE, one tap FIFO per window access per input port.
func TestFabricEdgesGraph(t *testing.T) {
	spec, _, _ := freshTC1(t)
	edges := FabricEdges(spec, FabricConfig{})
	streams, taps := 0, 0
	for _, e := range edges {
		if strings.HasPrefix(e.Name, "stream") {
			streams++
			if e.Depth != spec.InterPEFIFODepth {
				t.Errorf("stream edge %s declares depth %d, spec says %d", e.Name, e.Depth, spec.InterPEFIFODepth)
			}
		} else {
			taps++
		}
	}
	if want := len(spec.PEs) + 1; streams != want {
		t.Errorf("graph has %d stream edges, want %d", streams, want)
	}
	wantTaps := 0
	for _, pe := range spec.PEs {
		if pe.Chain != nil {
			wantTaps += pe.Par.In * len(pe.Chain.Taps)
		}
	}
	if taps != wantTaps {
		t.Errorf("graph has %d tap edges, want %d", taps, wantTaps)
	}
	if edges[0].From != "datamover" || edges[len(spec.PEs)].To != "datamover" {
		t.Errorf("stream chain must start and end at the datamover: %+v", edges[0])
	}
}

// TestFabricTapDepthInfeasible: a hand-built configuration whose declared
// tap FIFO depth is below the worst-case occupancy is rejected with a
// CND020 error naming the edge; declaring exactly the bound passes.
func TestFabricTapDepthInfeasible(t *testing.T) {
	spec, _, _ := freshTC1(t)
	pe := featurePE(t, spec)
	bound := maxTapWorstCase(pe)
	if bound < 2 {
		t.Fatalf("degenerate worst case %d", bound)
	}

	pe.Chain.TapFIFODepth = bound - 1
	ds := VerifyFabric(spec, FabricConfig{}, nil)
	if !rules(ds)[diag.RuleFIFOOccupancy] {
		t.Fatalf("underdeclared tap depth %d (bound %d) not caught: %v", bound-1, bound, ds)
	}
	if err := diag.Err(ds); err == nil {
		t.Fatal("CND020 must be error severity")
	} else if !strings.Contains(err.Error(), pe.ID+"/tap") {
		t.Errorf("diagnostic does not name the tap edge: %v", err)
	}

	pe.Chain.TapFIFODepth = bound
	if ds := VerifyFabric(spec, FabricConfig{}, nil); diag.HasErrors(ds) {
		t.Fatalf("declared depth equal to the bound must pass: %v", ds)
	}
}

// TestFabricBurstExceedsStreamDepth: a DMA burst longer than the stream
// FIFOs can never complete its transaction — CND020 names the stream edge.
// A burst of exactly the FIFO depth passes.
func TestFabricBurstExceedsStreamDepth(t *testing.T) {
	spec, _, _ := freshTC1(t)

	ds := VerifyFabric(spec, FabricConfig{BurstWords: spec.InterPEFIFODepth + 1}, nil)
	if !rules(ds)[diag.RuleFIFOOccupancy] {
		t.Fatalf("oversized burst not caught: %v", ds)
	}
	if err := diag.Err(ds); err == nil || !strings.Contains(err.Error(), "stream0") {
		t.Errorf("diagnostic does not name the stream edge: %v", err)
	}
	// Every stream edge violates the bound, so every one is named.
	n := 0
	for _, d := range ds {
		if d.Rule == diag.RuleFIFOOccupancy {
			n++
		}
	}
	if want := len(spec.PEs) + 1; n != want {
		t.Errorf("%d stream edges flagged, want %d", n, want)
	}

	if ds := VerifyFabric(spec, FabricConfig{BurstWords: spec.InterPEFIFODepth}, nil); diag.HasErrors(ds) {
		t.Fatalf("burst equal to the FIFO depth must pass: %v", ds)
	}
}

// maxTapInterleaved returns the two-epochs-in-flight tap occupancy bound —
// the depth CND024 proves against under batch streaming.
func maxTapInterleaved(pe *dataflow.PE) int {
	interleaved := 0
	for i := range pe.Layers {
		l := &pe.Layers[i]
		if !l.Kind.IsFeatureExtraction() {
			continue
		}
		if iw := dataflow.TapWorstCaseWords(l) + l.OutShape.Width; iw > interleaved {
			interleaved = iw
		}
	}
	return interleaved
}

// TestFabricBatchStreamingTapInterleave: a tap depth that satisfies the
// one-image bound (CND020) but not the two-epochs-in-flight bound passes the
// drain-between-images configuration and is rejected with CND024 once batch
// streaming is declared; deepening to the interleaved bound passes both.
func TestFabricBatchStreamingTapInterleave(t *testing.T) {
	spec, _, _ := freshTC1(t)
	pe := featurePE(t, spec)
	worst, interleaved := maxTapWorstCase(pe), maxTapInterleaved(pe)
	if interleaved <= worst {
		t.Fatalf("interleaved bound %d not above one-image bound %d", interleaved, worst)
	}

	pe.Chain.TapFIFODepth = interleaved - 1
	if ds := VerifyFabric(spec, FabricConfig{}, nil); diag.HasErrors(ds) {
		t.Fatalf("depth %d must satisfy the drain-between-images regime: %v", interleaved-1, ds)
	}
	ds := VerifyFabric(spec, FabricConfig{BatchStreaming: true}, nil)
	if !rules(ds)[diag.RuleFrameInterleave] {
		t.Fatalf("tap depth %d (interleaved bound %d) not caught under batch streaming: %v", interleaved-1, interleaved, ds)
	}
	if err := diag.Err(ds); err == nil {
		t.Fatal("CND024 must be error severity")
	} else if !strings.Contains(err.Error(), pe.ID+"/tap") || !strings.Contains(err.Error(), "two in-flight epochs") {
		t.Errorf("diagnostic does not name the tap edge and regime: %v", err)
	}

	pe.Chain.TapFIFODepth = interleaved
	if ds := VerifyFabric(spec, FabricConfig{BatchStreaming: true}, nil); diag.HasErrors(ds) {
		t.Fatalf("declared depth equal to the interleaved bound must pass: %v", ds)
	}
}

// TestFabricBatchStreamingStreamInterleave: stream FIFOs deep enough for one
// host-chunked transfer but not for two adjacent frames plus their control
// words fire CND024 on every stream edge; the exact interleaved bound passes.
func TestFabricBatchStreamingStreamInterleave(t *testing.T) {
	spec, _, _ := freshTC1(t)
	interleaved := 2 + spec.FrameHeaderWords() // host-chunked: streamWorst = 1

	spec.InterPEFIFODepth = interleaved - 1
	if ds := VerifyFabric(spec, FabricConfig{}, nil); diag.HasErrors(ds) {
		t.Fatalf("depth %d must satisfy the drain-between-images regime: %v", interleaved-1, ds)
	}
	ds := VerifyFabric(spec, FabricConfig{BatchStreaming: true}, nil)
	n := 0
	for _, d := range ds {
		if d.Rule == diag.RuleFrameInterleave {
			n++
		}
	}
	if want := len(spec.PEs) + 1; n != want {
		t.Fatalf("%d stream edges flagged by CND024, want %d: %v", n, want, ds)
	}
	if err := diag.Err(ds); err == nil || !strings.Contains(err.Error(), "stream0") {
		t.Errorf("diagnostic does not name the stream edge: %v", err)
	}

	spec.InterPEFIFODepth = interleaved
	if ds := VerifyFabric(spec, FabricConfig{BatchStreaming: true}, nil); diag.HasErrors(ds) {
		t.Fatalf("depth equal to the interleaved bound must pass: %v", ds)
	}
}

// TestFabricInterleaveSubsumedByOccupancy: an edge already violating the
// one-image bound reports CND020 alone — CND024 would only restate the same
// undersized FIFO with a larger number.
func TestFabricInterleaveSubsumedByOccupancy(t *testing.T) {
	spec, _, _ := freshTC1(t)
	pe := featurePE(t, spec)
	pe.Chain.TapFIFODepth = 1
	ds := VerifyFabric(spec, FabricConfig{BatchStreaming: true}, nil)
	r := rules(ds)
	if !r[diag.RuleFIFOOccupancy] {
		t.Fatalf("undersized tap not caught: %v", ds)
	}
	if r[diag.RuleFrameInterleave] {
		t.Errorf("CND024 duplicated a CND020 finding: %v", ds)
	}
}

// TestFabricCUOvercommit: replicating the kernel past the board budget is
// rejected with CND021; the single-CU configuration of a clean model fits.
func TestFabricCUOvercommit(t *testing.T) {
	spec, _, _ := freshTC1(t)

	ds := VerifyFabric(spec, FabricConfig{CUs: 1 << 20}, nil)
	if !rules(ds)[diag.RuleCUResource] {
		t.Fatalf("overcommitted CU replication not caught: %v", ds)
	}
	if err := diag.Err(ds); err == nil || !strings.Contains(err.Error(), "compute units exceed") {
		t.Errorf("CND021 must be an error naming the replication: %v", err)
	}

	if ds := VerifyFabric(spec, FabricConfig{CUs: 1}, nil); diag.HasErrors(ds) {
		t.Fatalf("single CU must fit: %v", ds)
	}
}

// TestFabricConfigSanity: negative knobs are CND022 errors and stop the
// pass before the capacity/resource rules run on a nonsensical config.
func TestFabricConfigSanity(t *testing.T) {
	spec, _, _ := freshTC1(t)
	ds := VerifyFabric(spec, FabricConfig{CUs: -1, BurstWords: -8}, nil)
	r := rules(ds)
	if !r[diag.RuleFabricConfig] {
		t.Fatalf("negative configuration not caught: %v", ds)
	}
	if r[diag.RuleFIFOOccupancy] || r[diag.RuleCUResource] {
		t.Errorf("capacity/resource rules ran on an unexecutable config: %v", ds)
	}
	if n := len(ds); n != 2 {
		t.Errorf("want 2 CND022 diagnostics, got %d: %v", n, ds)
	}
}

// TestLintConfigMergesCatalogues: LintConfig reports both a structural
// violation and a fabric violation in one sorted batch.
func TestLintConfigMergesCatalogues(t *testing.T) {
	spec, ir, ws := freshTC1(t)
	pe := featurePE(t, spec)
	pe.Chain.TapFIFODepth = 1      // CND020
	pe.Layers[0].OutShape.Height++ // CND001/CND002 downstream
	ds := LintConfig(spec, ir, ws, FabricConfig{})
	r := rules(ds)
	if !r[diag.RuleFIFOOccupancy] {
		t.Errorf("fabric rule missing from LintConfig batch: %v", ds)
	}
	if !r[diag.RuleShapeGeometry] && !r[diag.RuleShapeChain] {
		t.Errorf("structural rules missing from LintConfig batch: %v", ds)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Severity < ds[i].Severity {
			t.Fatalf("batch not sorted errors-first: %v", ds)
		}
	}
}

// TestFabricEmptySpec: a nil or empty spec is a CND017 error, not a panic.
func TestFabricEmptySpec(t *testing.T) {
	for _, spec := range []*dataflow.Spec{nil, {}} {
		ds := VerifyFabric(spec, FabricConfig{}, nil)
		if !rules(ds)[diag.RuleEmptyStructure] {
			t.Fatalf("empty spec not rejected: %v", ds)
		}
	}
}
