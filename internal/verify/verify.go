// Package verify is Condor's pre-synthesis design verifier: a static
// analysis over the accelerator Spec (and optionally the IR it was built
// from and the weight set it will run with) that catches malformed designs
// before dataflow.Instantiate, simulation or packaging ever see them.
//
// The real toolflow the paper builds on relies on Vivado HLS/SDAccel
// elaboration errors as a late legality gate; the simulated substrate has no
// such gate, so a bad Spec would otherwise surface as a simulator panic, a
// deadlock or a silently mis-sized FIFO. Verify re-checks every structural
// invariant the flow depends on and reports violations as compiler-style
// diagnostics with stable rule IDs (the CND0xx catalogue in internal/diag):
//
//	CND001 shape-chain       layer out-shape must equal the successor's
//	                         in-shape, across fused layers and PE boundaries
//	                         (the paper's streaming composition).
//	CND002 shape-geometry    every recorded out-shape must satisfy the shape
//	                         equations (2)/(3) for the layer's geometry.
//	CND003 chain-missing     features-extraction PEs need a filter chain;
//	                         classifier PEs must not carry one.
//	CND004 chain-window      a chain must cover the largest window and the
//	                         widest padded input among its fused layers
//	                         (Section 3.2 fusion sizing).
//	CND005 chain-taps        the tap set must be the K² window accesses in
//	                         lexicographically-inverse order, with one FIFO
//	                         between each consecutive pair.
//	CND006 fifo-depth        each inter-filter FIFO must hold exactly the
//	                         reuse distance between its two accesses (Cong-
//	                         style non-uniform partitioning): undersized
//	                         FIFOs deadlock the pipeline, oversized ones
//	                         waste BRAM.
//	CND007 interpe-fifo      inter-PE streaming FIFOs need >= 1 slot.
//	CND008 weight-words      a weight entry must have exactly the word count
//	                         the layer geometry implies.
//	CND009 weight-missing    every conv/FC layer needs a weight entry.
//	CND010 bias-words        a bias entry must have one word per output map.
//	CND011 board-unknown     the deployment board must be in the catalogue.
//	CND012 freq-range        the requested clock must be positive and within
//	                         the platform maximum.
//	CND013 resource-budget   the estimated kernel must fit the board's
//	                         shell-excluded budget.
//	CND014 hls-array-limit   static weight arrays must stay within the HLS
//	                         front-end limit (the paper's "not synthesizable"
//	                         VGG-16 classifier gate).
//	CND015 parallelism       port parallelism must be >= 1 (error) and not
//	                         exceed the feature maps it serves (warning).
//	CND016 word-bits         the fabric word width must be 8, 16 or 32.
//	CND017 empty-structure   the spec needs PEs and every PE needs layers.
//	CND018 stage-order       features extraction precedes classification.
//	CND019 ir-coverage       the spec must map the IR's compute layers in
//	                         order and start from the IR's input shape.
//	CND020 fifo-occupancy    every edge of the static FIFO network graph must
//	                         hold its worst-case occupancy under the verified
//	                         configuration (deadlock freedom by conservative
//	                         capacity bound over an acyclic schedule;
//	                         fabric.go).
//	CND021 cu-resource       the kernel replicated into the configured
//	                         compute units must fit the board's
//	                         shell-excluded budget (fabric.go).
//	CND022 fabric-config     the (CUs, burst) execution configuration must be
//	                         executable at all (fabric.go).
//	CND023 lane-packing      on the packed fabric (WordBits 8) the lane count
//	                         must divide every streamed-edge volume; an
//	                         indivisible edge falls back to zero-padded tail
//	                         lanes (warning), or is rejected when the spec
//	                         demands strict lane packing (error).
//	CND024 frame-interleave  two-epochs-in-flight occupancy must fit the FIFO
//	                         depths under batch streaming (fabric.go).
//	CND025 conv-algorithm    a conv layer's algorithm must be a known mode,
//	                         and winograd_f23 requires a 3x3/stride-1 layer
//	                         whose output tiles align (even height and width).
package verify

import (
	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/diag"
	"condor/internal/hls"
	"condor/internal/nn"
)

// Diagnostic is the finding record of the verifier (shared with the dataflow
// layer through internal/diag).
type Diagnostic = diag.Diagnostic

// Verify runs every structural design rule over a spec. ir, when non-nil, is
// cross-checked against the spec (rule CND019); b, when nil, is resolved
// from spec.Board. The returned diagnostics are sorted errors-first; an
// empty slice means the design is clean.
func Verify(spec *dataflow.Spec, ir *condorir.Network, b *board.Board) []*Diagnostic {
	var ds []*Diagnostic
	report := func(d *Diagnostic) { ds = append(ds, d) }

	if spec == nil || len(spec.PEs) == 0 {
		report(diag.Errorf(diag.RuleEmptyStructure, "", "", "spec has no processing elements"))
		return ds
	}

	checkWordBits(spec, report)
	checkLanePacking(spec, report)
	checkConvAlgo(spec, report)
	if spec.InterPEFIFODepth < 1 {
		report(diag.Errorf(diag.RuleInterPEFIFO, "", "",
			"inter-PE FIFO depth %d < 1: blocking pushes would deadlock the fabric", spec.InterPEFIFODepth))
	}

	structureOK := true
	for _, pe := range spec.PEs {
		if len(pe.Layers) == 0 {
			report(diag.Errorf(diag.RuleEmptyStructure, pe.ID, "", "PE has no layers"))
			structureOK = false
		}
	}
	if structureOK {
		checkShapes(spec, report)
		checkStageOrder(spec, report)
		for _, pe := range spec.PEs {
			checkChain(pe, report)
			checkParallelism(pe, report)
		}
		if ir != nil {
			checkIRCoverage(spec, ir, report)
		}
	}

	checkBoard(spec, b, report)

	diag.Sort(ds)
	return ds
}

// VerifyWeights checks the weight set against the spec's layer geometry:
// the static form of the consistency checks Instantiate performs when
// binding weights (rules CND008/CND009/CND010).
func VerifyWeights(spec *dataflow.Spec, ws *condorir.WeightSet) []*Diagnostic {
	var ds []*Diagnostic
	for _, pe := range spec.PEs {
		for i := range pe.Layers {
			l := &pe.Layers[i]
			if l.Kind != nn.Conv && l.Kind != nn.FullyConnected {
				continue
			}
			we, ok := ws.Get(l.Name, condorir.EntryWeights)
			if !ok {
				ds = append(ds, diag.Errorf(diag.RuleWeightMissing, pe.ID, l.Name,
					"weights for layer %q not in weight set", l.Name))
				continue
			}
			if want := l.WeightWords(); len(we.Data) != want {
				ds = append(ds, diag.Errorf(diag.RuleWeightWords, pe.ID, l.Name,
					"weight entry has %d words, layer geometry needs %d", len(we.Data), want))
			}
			if be, ok := ws.Get(l.Name, condorir.EntryBias); ok && len(be.Data) != l.OutShape.Channels {
				ds = append(ds, diag.Errorf(diag.RuleBiasWords, pe.ID, l.Name,
					"bias entry has %d words, layer has %d output maps", len(be.Data), l.OutShape.Channels))
			}
		}
	}
	diag.Sort(ds)
	return ds
}

// Lint is the full pre-synthesis pass the `condor lint` subcommand and the
// build flow run: structural rules, IR cross-check, board feasibility and
// (when ws is non-nil) weight consistency.
func Lint(spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) []*Diagnostic {
	ds := Verify(spec, ir, nil)
	if ws != nil {
		ds = append(ds, VerifyWeights(spec, ws)...)
	}
	diag.Sort(ds)
	return ds
}

// checkWordBits enforces CND016.
func checkWordBits(spec *dataflow.Spec, report func(*Diagnostic)) {
	switch spec.WordBits {
	case 8, 16, 32:
	default:
		report(diag.Errorf(diag.RuleWordBits, "", "",
			"fabric word width %d bits is not one of 8, 16, 32", spec.WordBits))
	}
}

// checkLanePacking enforces CND023: on the packed int8 fabric every streamed
// edge (the network input, every layer boundary — fused handoffs ride DDR as
// packed frames too) carries Spec.Lanes() activation lanes per word, so an
// edge volume the lane count does not divide leaves zero-padded tail lanes
// in its final word. The fabric handles the padding transparently, so the
// finding is a warning — bandwidth on that edge falls short of the full lane
// multiplier — unless the spec demands strict lane packing, in which case
// the misconfiguration is an error.
func checkLanePacking(spec *dataflow.Spec, report func(*Diagnostic)) {
	lanes := spec.Lanes()
	if lanes <= 1 {
		return
	}
	sev := diag.Warning
	verdict := "the tail word of every frame carries padded lanes"
	if spec.StrictLanes {
		sev = diag.Error
		verdict = "strict lane packing rejects the padded-tail fallback"
	}
	if vol := spec.Input.Volume(); vol%lanes != 0 {
		report(diag.New(diag.RuleLanePacking, sev, "", "",
			"input volume %d is not a multiple of the %d packed lanes: %s", vol, lanes, verdict))
	}
	for _, pe := range spec.PEs {
		for i := range pe.Layers {
			l := &pe.Layers[i]
			if vol := l.OutShape.Volume(); vol%lanes != 0 {
				report(diag.New(diag.RuleLanePacking, sev, pe.ID, l.Name,
					"streamed output volume %d is not a multiple of the %d packed lanes: %s", vol, lanes, verdict))
			}
		}
	}
}

// checkConvAlgo enforces CND025: every conv layer's algorithm must be one of
// the known modes, and the winograd_f23 mode is only legal on layers its
// F(2,3) tiling can cover — 3x3 kernel, stride 1, and an output whose height
// and width are even (each transform-domain tile produces a 2x2 output
// block, so an odd edge would leave uncovered pixels). Non-conv layers must
// not carry an algorithm at all.
func checkConvAlgo(spec *dataflow.Spec, report func(*Diagnostic)) {
	for _, pe := range spec.PEs {
		for i := range pe.Layers {
			l := &pe.Layers[i]
			switch l.ConvAlgo {
			case "", dataflow.AlgoDirect, dataflow.AlgoGEMM, dataflow.AlgoWinograd:
			default:
				report(diag.Errorf(diag.RuleConvAlgo, pe.ID, l.Name,
					"unknown convolution algorithm %q", l.ConvAlgo))
				continue
			}
			if l.Kind != nn.Conv {
				if l.ConvAlgo != "" {
					report(diag.Errorf(diag.RuleConvAlgo, pe.ID, l.Name,
						"algorithm %q set on non-convolution layer", l.ConvAlgo))
				}
				continue
			}
			if l.Algo() == dataflow.AlgoWinograd && !dataflow.WinogradOK(l.Kernel, l.Stride, l.OutShape) {
				report(diag.Errorf(diag.RuleConvAlgo, pe.ID, l.Name,
					"winograd_f23 requires a 3x3/stride-1 layer with even output tiles; layer has k=%d stride=%d out %dx%d",
					l.Kernel, l.Stride, l.OutShape.Height, l.OutShape.Width))
			}
		}
	}
}

// checkShapes propagates shapes across every PE chain (CND001) and
// re-derives each layer's out-shape from its geometry (CND002).
func checkShapes(spec *dataflow.Spec, report func(*Diagnostic)) {
	cur := spec.Input
	for _, pe := range spec.PEs {
		for i := range pe.Layers {
			l := &pe.Layers[i]
			if l.InShape.Channels < 1 || l.InShape.Height < 1 || l.InShape.Width < 1 {
				report(diag.Errorf(diag.RuleShapeGeometry, pe.ID, l.Name,
					"non-positive in-shape %s", l.InShape))
			}
			if l.InShape != cur {
				report(diag.Errorf(diag.RuleShapeChain, pe.ID, l.Name,
					"in-shape %s does not match the upstream out-shape %s", l.InShape, cur))
			}
			skel := nn.Layer{
				Name: l.Name, Kind: l.Kind,
				Kernel: l.Kernel, Stride: l.Stride, Pad: l.Pad,
				OutputCount: l.OutShape.Channels,
			}
			want, err := skel.OutputShape(l.InShape)
			if err != nil {
				report(diag.Errorf(diag.RuleShapeGeometry, pe.ID, l.Name, "%v", err))
			} else if l.OutShape != want {
				report(diag.Errorf(diag.RuleShapeGeometry, pe.ID, l.Name,
					"recorded out-shape %s, geometry implies %s (shape equations (2)/(3))", l.OutShape, want))
			}
			cur = l.OutShape
		}
	}
}

// checkStageOrder enforces CND018: once a classifier PE appears, no
// features-extraction PE may follow (the paper's two-stage pipeline).
func checkStageOrder(spec *dataflow.Spec, report func(*Diagnostic)) {
	seenClassifier := false
	for _, pe := range spec.PEs {
		if pe.IsFeatureExtraction() {
			if seenClassifier {
				report(diag.Errorf(diag.RuleStageOrder, pe.ID, "",
					"features-extraction PE placed after a classification PE"))
			}
		} else {
			seenClassifier = true
		}
	}
}

// checkChain verifies the filter+FIFO memory subsystem of one PE: presence
// (CND003), fused sizing (CND004), tap ordering (CND005) and the
// reuse-distance FIFO depths (CND006).
func checkChain(pe *dataflow.PE, report func(*Diagnostic)) {
	if !pe.IsFeatureExtraction() {
		if pe.Chain != nil {
			report(diag.New(diag.RuleChainMissing, diag.Warning, pe.ID, "",
				"classification PE carries a filter chain it never reads"))
		}
		return
	}
	c := pe.Chain
	if c == nil {
		report(diag.Errorf(diag.RuleChainMissing, pe.ID, "",
			"features-extraction PE has no filter chain"))
		return
	}

	maxK, maxW := 0, 0
	for i := range pe.Layers {
		l := &pe.Layers[i]
		if !l.Kind.IsFeatureExtraction() {
			continue
		}
		if l.Kernel > maxK {
			maxK = l.Kernel
		}
		if l.PaddedWidth() > maxW {
			maxW = l.PaddedWidth()
		}
	}
	if c.Kernel < maxK {
		report(diag.Errorf(diag.RuleChainWindow, pe.ID, "",
			"chain window %d smaller than the largest fused layer window %d", c.Kernel, maxK))
	}
	if c.PaddedW < maxW {
		report(diag.Errorf(diag.RuleChainWindow, pe.ID, "",
			"chain padded width %d smaller than the widest fused padded input %d", c.PaddedW, maxW))
	}

	// Tap set: the K² accesses in lexicographically-inverse order, so the
	// chain head sees the most recent element of the window.
	wantTaps := c.Kernel * c.Kernel
	if len(c.Taps) != wantTaps {
		report(diag.Errorf(diag.RuleChainTaps, pe.ID, "",
			"chain has %d taps, window %d needs %d", len(c.Taps), c.Kernel, wantTaps))
		return // depth checks below index Taps positionally
	}
	ti := 0
	ordered := true
	for m := c.Kernel - 1; m >= 0 && ordered; m-- {
		for n := c.Kernel - 1; n >= 0 && ordered; n-- {
			if c.Taps[ti] != (dataflow.Tap{M: m, N: n}) {
				report(diag.Errorf(diag.RuleChainTaps, pe.ID, "",
					"tap %d is (%d,%d), lexicographically-inverse order requires (%d,%d)",
					ti, c.Taps[ti].M, c.Taps[ti].N, m, n))
				ordered = false
			}
			ti++
		}
	}
	if !ordered {
		return
	}
	if len(c.FIFODepths) != len(c.Taps)-1 {
		report(diag.Errorf(diag.RuleChainTaps, pe.ID, "",
			"chain has %d inter-filter FIFOs for %d taps, need %d",
			len(c.FIFODepths), len(c.Taps), len(c.Taps)-1))
		return
	}
	for i, d := range c.FIFODepths {
		want := c.Taps[i].Linear(c.PaddedW) - c.Taps[i+1].Linear(c.PaddedW)
		switch {
		case d < want:
			report(diag.Errorf(diag.RuleFIFODepth, pe.ID, "",
				"FIFO %d holds %d words, reuse distance between accesses (%d,%d) and (%d,%d) is %d: the pipeline deadlocks",
				i, d, c.Taps[i].M, c.Taps[i].N, c.Taps[i+1].M, c.Taps[i+1].N, want))
		case d > want:
			report(diag.New(diag.RuleFIFODepth, diag.Warning, pe.ID, "",
				"FIFO %d holds %d words, reuse distance is %d: %d words of BRAM are wasted",
				i, d, want, d-want))
		}
	}
}

// checkParallelism enforces CND015 on the PE's feature-map port counts.
func checkParallelism(pe *dataflow.PE, report func(*Diagnostic)) {
	if pe.Par.In < 1 || pe.Par.Out < 1 {
		report(diag.Errorf(diag.RuleParallelism, pe.ID, "",
			"port parallelism in=%d out=%d: both must be >= 1", pe.Par.In, pe.Par.Out))
		return
	}
	for i := range pe.Layers {
		l := &pe.Layers[i]
		if pe.Par.In > l.InShape.Channels {
			report(diag.New(diag.RuleParallelism, diag.Warning, pe.ID, l.Name,
				"in-parallelism %d exceeds the %d input maps: the extra ports are idle hardware",
				pe.Par.In, l.InShape.Channels))
		}
		if pe.Par.Out > l.OutShape.Channels {
			report(diag.New(diag.RuleParallelism, diag.Warning, pe.ID, l.Name,
				"out-parallelism %d exceeds the %d output maps: the extra ports are idle hardware",
				pe.Par.Out, l.OutShape.Channels))
		}
	}
}

// checkIRCoverage enforces CND019: the spec's flattened layer sequence must
// be exactly the IR's compute/pooling layers in order (activations and
// normalisations fold into the producing PE rather than appearing as
// layers), and the spec must start from the IR's declared input.
func checkIRCoverage(spec *dataflow.Spec, ir *condorir.Network, report func(*Diagnostic)) {
	irIn := nn.Shape{Channels: ir.Input.Channels, Height: ir.Input.Height, Width: ir.Input.Width}
	if spec.Input != irIn {
		report(diag.Errorf(diag.RuleIRCoverage, "", "",
			"spec input %s does not match the IR input %s", spec.Input, irIn))
	}

	var want []string
	for i := range ir.Layers {
		l := &ir.Layers[i]
		kind, err := l.Kind()
		if err != nil {
			report(diag.Errorf(diag.RuleIRCoverage, "", l.Name, "%v", err))
			return
		}
		if kind.IsActivation() || kind == nn.SoftMax || kind == nn.LogSoftMax {
			continue
		}
		want = append(want, l.Name)
	}
	var got []string
	peOf := make(map[string]string)
	for _, pe := range spec.PEs {
		for i := range pe.Layers {
			got = append(got, pe.Layers[i].Name)
			peOf[pe.Layers[i].Name] = pe.ID
		}
	}
	for i := 0; i < len(want) || i < len(got); i++ {
		switch {
		case i >= len(got):
			report(diag.Errorf(diag.RuleIRCoverage, "", want[i],
				"IR layer %q is not mapped onto any PE", want[i]))
		case i >= len(want):
			report(diag.Errorf(diag.RuleIRCoverage, peOf[got[i]], got[i],
				"spec layer %q does not correspond to any IR compute layer", got[i]))
		case want[i] != got[i]:
			report(diag.Errorf(diag.RuleIRCoverage, peOf[got[i]], got[i],
				"spec maps layer %q where the IR orders %q", got[i], want[i]))
			return // one order slip cascades; a single diagnostic is clearer
		}
	}
}

// checkBoard resolves the deployment target and runs the feasibility rules:
// board existence (CND011), clock range (CND012), the HLS array limit
// (CND014) and the resource budget (CND013).
func checkBoard(spec *dataflow.Spec, b *board.Board, report func(*Diagnostic)) {
	if b == nil {
		var err error
		b, err = board.Lookup(spec.Board)
		if err != nil {
			report(diag.Errorf(diag.RuleBoardUnknown, "", "", "%v", err))
			return
		}
	}
	if spec.FreqMHz <= 0 {
		report(diag.Errorf(diag.RuleFreqRange, "", "",
			"requested clock %.0f MHz is not positive", spec.FreqMHz))
	} else if spec.FreqMHz > b.MaxClockMHz {
		report(diag.Errorf(diag.RuleFreqRange, "", "",
			"requested clock %.0f MHz exceeds the %s platform maximum %.0f MHz",
			spec.FreqMHz, b.ID, b.MaxClockMHz))
	}
	rep, err := hls.Estimate(spec)
	if err != nil {
		// The estimator rejects designs the HLS front end would reject; the
		// prime instance is the paper's FC weight-array limit.
		report(diag.Errorf(diag.RuleHLSArrayLimit, "", "", "%v", err))
		return
	}
	if !rep.Fits {
		u := rep.KernelTotal.Utilization(b.Available())
		report(diag.Errorf(diag.RuleResourceBudget, "", "",
			"kernel exceeds the %s budget: LUT %.0f%% FF %.0f%% DSP %.0f%% BRAM %.0f%% of the available fabric",
			b.ID, 100*u.LUT, 100*u.FF, 100*u.DSP, 100*u.BRAM))
	}
}
