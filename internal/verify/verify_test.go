package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/diag"
	"condor/internal/hls"
	"condor/internal/models"
	"condor/internal/nn"
	"condor/internal/tensor"
)

// freshTC1 builds a clean TC1 spec the table tests can mutate.
func freshTC1(t *testing.T) (*dataflow.Spec, *condorir.Network, *condorir.WeightSet) {
	t.Helper()
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if err := hls.PlanMemory(spec); err != nil {
		t.Fatal(err)
	}
	return spec, ir, ws
}

// rules collects the distinct rule IDs of a diagnostic batch.
func rules(ds []*Diagnostic) map[string]bool {
	m := map[string]bool{}
	for _, d := range ds {
		m[d.Rule] = true
	}
	return m
}

// featurePE returns the first features-extraction PE of the spec.
func featurePE(t *testing.T, spec *dataflow.Spec) *dataflow.PE {
	t.Helper()
	for _, pe := range spec.PEs {
		if pe.IsFeatureExtraction() {
			return pe
		}
	}
	t.Fatal("spec has no features-extraction PE")
	return nil
}

// classifierPE returns the first classification PE of the spec.
func classifierPE(t *testing.T, spec *dataflow.Spec) *dataflow.PE {
	t.Helper()
	for _, pe := range spec.PEs {
		if !pe.IsFeatureExtraction() {
			return pe
		}
	}
	t.Fatal("spec has no classification PE")
	return nil
}

// TestCleanModels pins the acceptance guarantee: every deployable built-in
// model passes the full verifier with zero diagnostics.
func TestCleanModels(t *testing.T) {
	cases := []struct {
		name string
		load func() (*condorir.Network, *condorir.WeightSet, error)
	}{
		{"tc1", models.TC1},
		{"lenet", models.LeNet},
		{"vgg16-features", func() (*condorir.Network, *condorir.WeightSet, error) {
			return models.VGG16Features(), nil, nil
		}},
		{"alexnet-features", func() (*condorir.Network, *condorir.WeightSet, error) {
			return models.AlexNetFeatures(), nil, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ir, ws, err := tc.load()
			if err != nil {
				t.Fatal(err)
			}
			spec, err := dataflow.BuildSpec(ir)
			if err != nil {
				t.Fatal(err)
			}
			if err := hls.PlanMemory(spec); err != nil {
				t.Fatal(err)
			}
			for _, d := range Lint(spec, ir, ws) {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		})
	}
}

// TestVGG16ClassifierGate checks that the full VGG-16 model trips exactly the
// paper's "not synthesizable" gate, as a verifier rule rather than a build
// failure.
func TestVGG16ClassifierGate(t *testing.T) {
	ir := models.VGG16()
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	ds := Verify(spec, ir, nil)
	if len(ds) != 1 || ds[0].Rule != diag.RuleHLSArrayLimit || ds[0].Severity != diag.Error {
		t.Fatalf("diagnostics = %v, want exactly one %s error", ds, diag.RuleHLSArrayLimit)
	}
}

// TestBrokenSpecs drives the verifier over deliberately broken designs and
// asserts the exact rule that must fire for each defect.
func TestBrokenSpecs(t *testing.T) {
	cases := []struct {
		name string
		// breakIt mutates a fresh TC1 spec/ir/weights trio.
		breakIt func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet)
		rule    string
		// warning marks rules that must fire at Warning severity with no
		// error-severity diagnostics at all.
		warning bool
	}{
		{
			name: "shape-chain-break",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				pe := classifierPE(t, spec)
				pe.Layers[0].InShape.Channels++
			},
			rule: diag.RuleShapeChain,
		},
		{
			name: "shape-geometry-break",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				pe := featurePE(t, spec)
				pe.Layers[0].OutShape.Height++
			},
			rule: diag.RuleShapeGeometry,
		},
		{
			name: "chain-missing",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				featurePE(t, spec).Chain = nil
			},
			rule: diag.RuleChainMissing,
		},
		{
			name: "chain-on-classifier",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				chain, err := dataflow.NewFilterChain(3, 16)
				if err != nil {
					t.Fatal(err)
				}
				classifierPE(t, spec).Chain = chain
			},
			rule:    diag.RuleChainMissing,
			warning: true,
		},
		{
			name: "chain-window-too-small",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				// Rebuild the chain one window size short of the fused layers.
				pe := featurePE(t, spec)
				small, err := dataflow.NewFilterChain(pe.Chain.Kernel-1, pe.Chain.PaddedW)
				if err != nil {
					t.Fatal(err)
				}
				pe.Chain = small
			},
			rule: diag.RuleChainWindow,
		},
		{
			name: "chain-taps-out-of-order",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				taps := featurePE(t, spec).Chain.Taps
				taps[0], taps[1] = taps[1], taps[0]
			},
			rule: diag.RuleChainTaps,
		},
		{
			name: "fifo-undersized-deadlock",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				featurePE(t, spec).Chain.FIFODepths[0]--
			},
			rule: diag.RuleFIFODepth,
		},
		{
			name: "fifo-oversized-bram-waste",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				featurePE(t, spec).Chain.FIFODepths[0] += 7
			},
			rule:    diag.RuleFIFODepth,
			warning: true,
		},
		{
			name: "interpe-fifo-zero",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				spec.InterPEFIFODepth = 0
			},
			rule: diag.RuleInterPEFIFO,
		},
		{
			name: "weight-words-mismatch",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				e, ok := ws.Get("conv1", condorir.EntryWeights)
				if !ok {
					t.Fatal("conv1 weights missing from the model weight set")
				}
				ws.PutRaw("conv1", condorir.EntryWeights, nil, e.Data[:len(e.Data)-1])
			},
			rule: diag.RuleWeightWords,
		},
		{
			name: "weight-entry-missing",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				// WeightSet has no delete; rebuild it without conv2.
				pruned := condorir.NewWeightSet()
				for _, e := range ws.Entries() {
					if e.Layer == "conv2" && e.Kind == condorir.EntryWeights {
						continue
					}
					pruned.PutRaw(e.Layer, e.Kind, e.Dims, e.Data)
				}
				*ws = *pruned
			},
			rule: diag.RuleWeightMissing,
		},
		{
			name: "bias-words-mismatch",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				e, ok := ws.Get("fc2", condorir.EntryBias)
				if !ok {
					t.Fatal("fc2 bias missing from the model weight set")
				}
				ws.PutRaw("fc2", condorir.EntryBias, nil, append([]float32{0}, e.Data...))
			},
			rule: diag.RuleBiasWords,
		},
		{
			name: "board-unknown",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				spec.Board = "zynq-7099-imaginary"
			},
			rule: diag.RuleBoardUnknown,
		},
		{
			name: "freq-above-platform-max",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				spec.FreqMHz = 10_000
			},
			rule: diag.RuleFreqRange,
		},
		{
			name: "freq-non-positive",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				spec.FreqMHz = 0
			},
			rule: diag.RuleFreqRange,
		},
		{
			name: "resource-over-budget",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				// Absurd port parallelism multiplies the MAC array past the
				// board's DSP budget.
				for _, pe := range spec.PEs {
					pe.Par = condorir.Parallelism{In: 512, Out: 512}
				}
			},
			rule: diag.RuleResourceBudget,
		},
		{
			name: "parallelism-zero",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				featurePE(t, spec).Par.In = 0
			},
			rule: diag.RuleParallelism,
		},
		{
			name: "parallelism-idle-ports",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				// TC1's input has a single channel; two input ports leave one idle.
				featurePE(t, spec).Par.In = 2
			},
			rule:    diag.RuleParallelism,
			warning: true,
		},
		{
			name: "word-bits-unsupported",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				spec.WordBits = 12
			},
			rule: diag.RuleWordBits,
		},
		{
			name: "lane-packing-padded-tail",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				// TC1's fc2 streams 10 values per image — not a multiple of
				// the 4 packed lanes, so the tail word carries padded lanes.
				spec.WordBits = 8
			},
			rule:    diag.RuleLanePacking,
			warning: true,
		},
		{
			name: "lane-packing-strict-rejects",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				spec.WordBits = 8
				spec.StrictLanes = true
			},
			rule: diag.RuleLanePacking,
		},
		{
			name: "empty-pe",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				spec.PEs[0].Layers = nil
			},
			rule: diag.RuleEmptyStructure,
		},
		{
			name: "stage-order-inverted",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				last := len(spec.PEs) - 1
				spec.PEs[0], spec.PEs[last] = spec.PEs[last], spec.PEs[0]
			},
			rule: diag.RuleStageOrder,
		},
		{
			name: "conv-algo-unknown",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				featurePE(t, spec).Layers[0].ConvAlgo = dataflow.ConvAlgo("systolic")
			},
			rule: diag.RuleConvAlgo,
		},
		{
			name: "conv-algo-winograd-on-5x5",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				// TC1's convs are 5x5, outside the F(2,3) qualification.
				featurePE(t, spec).Layers[0].ConvAlgo = dataflow.AlgoWinograd
			},
			rule: diag.RuleConvAlgo,
		},
		{
			name: "conv-algo-on-non-conv",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				pe := classifierPE(t, spec)
				pe.Layers[len(pe.Layers)-1].ConvAlgo = dataflow.AlgoGEMM
			},
			rule: diag.RuleConvAlgo,
		},
		{
			name: "ir-coverage-renamed-layer",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				featurePE(t, spec).Layers[0].Name = "conv1-detached"
			},
			rule: diag.RuleIRCoverage,
		},
		{
			name: "ir-coverage-input-mismatch",
			breakIt: func(t *testing.T, spec *dataflow.Spec, ir *condorir.Network, ws *condorir.WeightSet) {
				ir.Input.Width++
			},
			rule: diag.RuleIRCoverage,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, ir, ws := freshTC1(t)
			tc.breakIt(t, spec, ir, ws)
			ds := Lint(spec, ir, ws)
			if !rules(ds)[tc.rule] {
				t.Fatalf("rule %s did not fire; diagnostics: %v", tc.rule, ds)
			}
			if tc.warning {
				if diag.HasErrors(ds) {
					t.Fatalf("expected warnings only, got errors: %v", ds)
				}
				for _, d := range ds {
					if d.Rule == tc.rule && d.Severity != diag.Warning {
						t.Fatalf("rule %s fired at severity %s, want warning", tc.rule, d.Severity)
					}
				}
			} else if !diag.HasErrors(ds) {
				t.Fatalf("expected an error-severity diagnostic, got: %v", ds)
			}
		})
	}
}

// TestEmptySpec covers the degenerate CND017 case.
func TestEmptySpec(t *testing.T) {
	ds := Verify(&dataflow.Spec{}, nil, nil)
	if len(ds) != 1 || ds[0].Rule != diag.RuleEmptyStructure {
		t.Fatalf("diagnostics = %v, want one %s", ds, diag.RuleEmptyStructure)
	}
}

// TestInstantiateErrorsCarryRules checks the dataflow integration satellite:
// Instantiate failures wrap verify-style diagnostics so callers can extract
// the rule ID with errors.As.
func TestInstantiateErrorsCarryRules(t *testing.T) {
	t.Run("missing-weights", func(t *testing.T) {
		spec, _, _ := freshTC1(t)
		_, err := dataflow.Instantiate(spec, condorir.NewWeightSet())
		if err == nil {
			t.Fatal("Instantiate succeeded with an empty weight set")
		}
		if r := diag.Rule(err); r != diag.RuleWeightMissing {
			t.Fatalf("diag.Rule(err) = %q (err: %v), want %s", r, err, diag.RuleWeightMissing)
		}
	})
	t.Run("wrong-word-count", func(t *testing.T) {
		spec, _, ws := freshTC1(t)
		e, _ := ws.Get("conv1", condorir.EntryWeights)
		ws.PutRaw("conv1", condorir.EntryWeights, nil, e.Data[:len(e.Data)-3])
		_, err := dataflow.Instantiate(spec, ws)
		if err == nil {
			t.Fatal("Instantiate succeeded with truncated weights")
		}
		if r := diag.Rule(err); r != diag.RuleWeightWords {
			t.Fatalf("diag.Rule(err) = %q (err: %v), want %s", r, err, diag.RuleWeightWords)
		}
	})
	t.Run("wrong-bias-count", func(t *testing.T) {
		spec, _, ws := freshTC1(t)
		e, _ := ws.Get("conv1", condorir.EntryBias)
		ws.PutRaw("conv1", condorir.EntryBias, nil, append([]float32{0}, e.Data...))
		_, err := dataflow.Instantiate(spec, ws)
		if err == nil {
			t.Fatal("Instantiate succeeded with an oversized bias")
		}
		if r := diag.Rule(err); r != diag.RuleBiasWords {
			t.Fatalf("diag.Rule(err) = %q (err: %v), want %s", r, err, diag.RuleBiasWords)
		}
	})
}

// randomNet draws a small random conv(+pool)+fc network with random weights.
func randomNet(rng *rand.Rand) *nn.Network {
	in := nn.Shape{
		Channels: 1 + rng.Intn(3),
		Height:   7 + rng.Intn(6),
		Width:    7 + rng.Intn(6),
	}
	k := []int{1, 3, 5}[rng.Intn(3)]
	pad := rng.Intn(2)
	filters := 1 + rng.Intn(4)

	conv := &nn.Layer{
		Name: "conv1", Kind: nn.Conv,
		Kernel: k, Stride: 1, Pad: pad, OutputCount: filters,
	}
	conv.Weights = tensor.New(filters, in.Channels, k, k)
	conv.Weights.FillRandom(rng, 1)
	if rng.Intn(2) == 1 {
		conv.Bias = tensor.New(filters)
		conv.Bias.FillRandom(rng, 1)
	}
	net := &nn.Network{Name: "prop", Input: in, Layers: []*nn.Layer{conv}}

	shape, _ := conv.OutputShape(in)
	if rng.Intn(2) == 1 {
		net.Layers = append(net.Layers, &nn.Layer{Name: "relu1", Kind: nn.ReLU, Stride: 1})
	}
	if shape.Height >= 2 && shape.Width >= 2 && rng.Intn(2) == 1 {
		pool := &nn.Layer{Name: "pool1", Kind: nn.MaxPool, Kernel: 2, Stride: 2}
		net.Layers = append(net.Layers, pool)
		shape, _ = pool.OutputShape(shape)
	}
	outs := 2 + rng.Intn(6)
	fc := &nn.Layer{Name: "fc1", Kind: nn.FullyConnected, Stride: 1, OutputCount: outs}
	fc.Weights = tensor.New(outs, shape.Volume())
	fc.Weights.FillRandom(rng, 1)
	net.Layers = append(net.Layers, fc)
	return net
}

// TestVerifyImpliesInstantiable is the testing/quick property of the issue:
// any Spec the verifier passes must instantiate and must co-simulate — the
// fabric's output matches the golden reference on a random image.
func TestVerifyImpliesInstantiable(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomNet(rng)
		if err := net.Validate(); err != nil {
			t.Logf("seed %d: invalid random net: %v", seed, err)
			return false
		}
		ir, ws, err := condorir.FromNN(net, models.F1Board, 150)
		if err != nil {
			t.Logf("seed %d: FromNN: %v", seed, err)
			return false
		}
		spec, err := dataflow.BuildSpec(ir)
		if err != nil {
			t.Logf("seed %d: BuildSpec: %v", seed, err)
			return false
		}
		if err := hls.PlanMemory(spec); err != nil {
			t.Logf("seed %d: PlanMemory: %v", seed, err)
			return false
		}
		if ds := Lint(spec, ir, ws); diag.HasErrors(ds) {
			// The verifier rejected the design; the property only covers
			// accepted designs.
			t.Logf("seed %d: verifier rejected the spec: %v", seed, ds)
			return true
		}

		acc, err := dataflow.Instantiate(spec, ws)
		if err != nil {
			t.Logf("seed %d: Instantiate after clean Verify: %v", seed, err)
			return false
		}
		img := tensor.New(net.Input.Channels, net.Input.Height, net.Input.Width)
		img.FillRandom(rng, 1)
		outs, _, err := acc.Run([]*tensor.Tensor{img})
		if err != nil {
			t.Logf("seed %d: fabric run: %v", seed, err)
			return false
		}
		want, err := net.Predict(img)
		if err != nil {
			t.Logf("seed %d: reference: %v", seed, err)
			return false
		}
		if d := tensor.MaxAbsDiff(outs[0], want); d > 2e-3 {
			t.Logf("seed %d: fabric diverges from the reference by %g", seed, d)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
