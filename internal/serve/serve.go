// Package serve is the inference serving tier of the Condor backend: it
// multiplexes many concurrent single-image clients onto a heterogeneous
// pool of deployed accelerators — local boards programmed through the
// SDAccel runtime and programmed F1 slots reached through the cloud API —
// behind one Server.
//
// The server is built from three cooperating pieces:
//
//   - admission control: a bounded request queue; when it is full Submit
//     fails fast with ErrQueueFull (backpressure) instead of letting latency
//     grow without bound, and per-request contexts carry deadlines and
//     cancellation;
//   - a dynamic batcher: single-image requests are coalesced into
//     device-sized batches under a max-batch/max-latency window, because the
//     accelerator pipeline only reaches its steady-state initiation interval
//     when consecutive images stream back to back (the paper's Figure 5
//     batch behaviour);
//   - a scheduler: formed batches are dispatched to the least-loaded free
//     backend, measured by accumulated modeled kernel milliseconds, so a
//     mixed pool of fast and slow devices stays balanced.
//
// Shutdown drains gracefully: admission stops, queued and in-flight batches
// complete, and every admitted request receives a reply. No admitted
// request is ever silently dropped — each one either completes or fails
// with an explicit backpressure, deadline or backend error.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"condor/internal/tensor"
)

// Backend is one inference executor the scheduler dispatches formed batches
// to: a local board (condor.LocalDeployment) or one programmed F1 slot
// (condor.SlotBackend). The scheduler never calls the same backend
// concurrently with itself, but different backends run in parallel from
// separate goroutines, so implementations must not share unsynchronised
// mutable state.
type Backend interface {
	// ID identifies the backend in stats (device id or instance/slot).
	ID() string
	// Infer runs one batch, returning outputs in input order and the
	// modeled kernel time in milliseconds.
	Infer(batch []*tensor.Tensor) ([]*tensor.Tensor, float64, error)
}

// Sentinel errors of the admission path.
var (
	// ErrQueueFull is the backpressure signal: the bounded request queue is
	// at capacity and the request was rejected at admission.
	ErrQueueFull = errors.New("serve: request queue full (backpressure)")
	// ErrClosed reports a Submit after Shutdown started.
	ErrClosed = errors.New("serve: server is shut down")
)

// Config sizes the serving pipeline.
type Config struct {
	// Backends is the pool of inference executors (at least one).
	Backends []Backend
	// MaxBatch caps the size of a formed batch (default 8). A full batch is
	// dispatched immediately.
	MaxBatch int
	// BatchWindow bounds how long the first request of a forming batch
	// waits for company before the partial batch is flushed (default 2ms).
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrQueueFull (default 64).
	QueueDepth int
	// LatencySamples sizes the reservoir behind the p50/p95/p99 estimates
	// (default 4096).
	LatencySamples int
}

func (c *Config) applyDefaults() error {
	if len(c.Backends) == 0 {
		return errors.New("serve: config needs at least one backend")
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.LatencySamples <= 0 {
		c.LatencySamples = 4096
	}
	return nil
}

// request is one admitted single-image inference.
type request struct {
	ctx      context.Context
	img      *tensor.Tensor
	enqueued time.Time
	done     chan result // buffered(1): the pipeline never blocks on delivery
}

type result struct {
	out      *tensor.Tensor
	kernelMs float64
	backend  string // ID of the backend that executed the request's batch
	err      error
}

// Server multiplexes concurrent clients onto the backend pool.
type Server struct {
	cfg     Config
	queue   chan *request
	batches chan []*request

	mu     sync.Mutex
	closed bool

	admitted sync.WaitGroup // one count per admitted request until its reply
	loops    sync.WaitGroup // batcher + scheduler goroutines
	drain    sync.Once
	drained  chan struct{}

	sched *scheduler
	stats *statsCollector
}

// New starts a server over the configured backend pool. The batcher and
// scheduler goroutines run until Shutdown.
func New(cfg Config) (*Server, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *request, cfg.QueueDepth),
		// A shallow batch buffer lets the batcher keep forming while every
		// backend is busy without hiding backpressure from the queue.
		batches: make(chan []*request, len(cfg.Backends)),
		drained: make(chan struct{}),
		sched:   newScheduler(cfg.Backends),
		stats:   newStatsCollector(cfg.MaxBatch, cfg.LatencySamples),
	}
	s.loops.Add(2)
	go s.batchLoop()
	go s.scheduleLoop()
	return s, nil
}

// SubmitResult is the detailed outcome of one request through the pipeline:
// the inference output, the modeled device time of its batch, and which
// backend executed it (the span tag fleet-level tracing stitches across
// processes).
type SubmitResult struct {
	Output   *tensor.Tensor
	KernelMs float64
	Backend  string
}

// Submit runs one image through the serving pipeline and blocks until the
// result is ready, the request's context expires, or admission rejects it.
// Every admitted request is eventually answered even if the caller has
// already given up on its context.
func (s *Server) Submit(ctx context.Context, img *tensor.Tensor) (*tensor.Tensor, float64, error) {
	r, err := s.SubmitDetailed(ctx, img)
	return r.Output, r.KernelMs, err
}

// SubmitDetailed is Submit with backend attribution for per-request tracing.
func (s *Server) SubmitDetailed(ctx context.Context, img *tensor.Tensor) (SubmitResult, error) {
	req := &request{ctx: ctx, img: img, enqueued: time.Now(), done: make(chan result, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SubmitResult{}, ErrClosed
	}
	select {
	case s.queue <- req:
		s.admitted.Add(1)
		s.stats.admit()
	default:
		s.mu.Unlock()
		s.stats.reject()
		return SubmitResult{}, ErrQueueFull
	}
	s.mu.Unlock()
	select {
	case r := <-req.done:
		return SubmitResult{Output: r.out, KernelMs: r.kernelMs, Backend: r.backend}, r.err
	case <-ctx.Done():
		// The request stays in the pipeline (its batch still runs and the
		// reply lands in the buffered done channel); the caller gets the
		// explicit deadline/cancellation error now.
		return SubmitResult{}, ctx.Err()
	}
}

// Draining reports whether Shutdown has started: admission is closed and the
// server is settling in-flight work. The /readyz endpoint turns 503 on this
// signal so a fleet router stops routing to the node before its queue stops
// answering.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// finish delivers a request's reply exactly once and settles its admission
// accounting.
func (s *Server) finish(req *request, r result) {
	s.stats.settle(req, r)
	req.done <- r
	s.admitted.Done()
}

// batchLoop coalesces queued requests into batches: a batch is flushed as
// soon as it reaches MaxBatch, or BatchWindow after its first request
// arrived, whichever comes first.
func (s *Server) batchLoop() {
	defer s.loops.Done()
	defer close(s.batches)
	var pending []*request
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	flush := func() {
		if timerLive {
			if !timer.Stop() {
				<-timer.C
			}
			timerLive = false
		}
		if len(pending) == 0 {
			return
		}
		s.batches <- pending
		pending = nil
	}
	for {
		select {
		case req, ok := <-s.queue:
			if !ok {
				flush()
				return
			}
			if err := req.ctx.Err(); err != nil {
				s.finish(req, result{err: fmt.Errorf("serve: request expired while queued: %w", err)})
				continue
			}
			pending = append(pending, req)
			if len(pending) >= s.cfg.MaxBatch {
				flush()
			} else if len(pending) == 1 {
				timer.Reset(s.cfg.BatchWindow)
				timerLive = true
			}
		case <-timer.C:
			timerLive = false
			flush()
		}
	}
}

// scheduleLoop takes formed batches and dispatches each to the least-loaded
// free backend, blocking while the whole pool is busy. Dispatches run in
// their own goroutines so independent backends execute in parallel.
func (s *Server) scheduleLoop() {
	defer s.loops.Done()
	var dispatch sync.WaitGroup
	for batch := range s.batches {
		// Requests whose deadline passed while the batch formed are settled
		// here with an explicit error rather than wasting device time.
		live := make([]*request, 0, len(batch))
		for _, req := range batch {
			if err := req.ctx.Err(); err != nil {
				s.finish(req, result{err: fmt.Errorf("serve: deadline passed before dispatch: %w", err)})
				continue
			}
			live = append(live, req)
		}
		if len(live) == 0 {
			continue
		}
		st := s.sched.acquire()
		s.stats.recordBatch(len(live))
		dispatch.Add(1)
		go func(st *backendState, reqs []*request) {
			defer dispatch.Done()
			imgs := make([]*tensor.Tensor, len(reqs))
			for i, r := range reqs {
				imgs[i] = r.img
			}
			outs, ms, err := st.backend.Infer(imgs)
			s.sched.release(st, ms, len(reqs), err != nil)
			id := st.backend.ID()
			if err != nil {
				err = fmt.Errorf("serve: backend %s: %w", id, err)
				for _, r := range reqs {
					s.finish(r, result{backend: id, err: err})
				}
				return
			}
			for i, r := range reqs {
				s.finish(r, result{out: outs[i], kernelMs: ms, backend: id})
			}
		}(st, live)
	}
	dispatch.Wait()
}

// Shutdown stops admission and drains: queued requests are batched and
// executed, in-flight batches complete, and every admitted request receives
// its reply. ctx bounds how long to wait for the drain. Shutdown is
// idempotent; concurrent calls all wait for the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.drain.Do(func() {
		go func() {
			s.loops.Wait()
			s.admitted.Wait()
			close(s.drained)
		}()
	})
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown drain incomplete: %w", ctx.Err())
	}
}

// QueueDepth reports how many admitted requests are waiting for batching.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Stats snapshots the serving counters, batch histogram, per-backend
// utilization and latency quantiles. The snapshot is taken under the
// admission lock so a poll during shutdown observes a queue depth
// consistent with the closed/draining state instead of racing the batcher
// retiring the final requests.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.snapshot(len(s.queue), s.cfg.QueueDepth, s.sched.snapshot())
}
