package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condor/internal/tensor"
)

// fakeBackend echoes inputs after an optional fixed delay and records every
// batch size it executed. It asserts the scheduler's contract that a single
// backend is never invoked concurrently with itself.
type fakeBackend struct {
	id       string
	delay    time.Duration
	kernelMs float64
	gate     chan struct{} // when non-nil, Infer blocks until it is closed
	err      error

	inflight atomic.Int32
	overlap  atomic.Bool

	mu      sync.Mutex
	batches []int
}

func (f *fakeBackend) ID() string { return f.id }

func (f *fakeBackend) Infer(batch []*tensor.Tensor) ([]*tensor.Tensor, float64, error) {
	if f.inflight.Add(1) > 1 {
		f.overlap.Store(true)
	}
	defer f.inflight.Add(-1)
	if f.gate != nil {
		<-f.gate
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	f.batches = append(f.batches, len(batch))
	f.mu.Unlock()
	if f.err != nil {
		return nil, 0, f.err
	}
	outs := make([]*tensor.Tensor, len(batch))
	for i, img := range batch {
		t := tensor.New(img.Shape()...)
		copy(t.Data(), img.Data())
		outs[i] = t
	}
	ms := f.kernelMs
	if ms == 0 {
		ms = 1
	}
	return outs, ms, nil
}

func (f *fakeBackend) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batches...)
}

func img(v float32) *tensor.Tensor {
	t := tensor.New(1, 2, 2)
	for i := range t.Data() {
		t.Data()[i] = v
	}
	return t
}

func mustShutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// Flush-on-size: with an effectively infinite window, batches form only
// when MaxBatch requests have coalesced.
func TestBatcherFlushOnSize(t *testing.T) {
	fb := &fakeBackend{id: "b0"}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 4, BatchWindow: time.Hour, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, _, err := s.Submit(context.Background(), img(float32(i)))
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			if out.Data()[0] != float32(i) {
				t.Errorf("request %d got echo %v", i, out.Data()[0])
			}
		}(i)
	}
	wg.Wait()
	mustShutdown(t, s)
	for _, size := range fb.batchSizes() {
		if size != 4 {
			t.Fatalf("batch sizes %v: want every flush at MaxBatch=4", fb.batchSizes())
		}
	}
	if got := len(fb.batchSizes()); got != 2 {
		t.Fatalf("got %d batches, want 2", got)
	}
}

// Flush-on-deadline: a partial batch is dispatched once the window elapses
// instead of waiting for MaxBatch.
func TestBatcherFlushOnDeadline(t *testing.T) {
	fb := &fakeBackend{id: "b0"}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 16, BatchWindow: 10 * time.Millisecond, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Submit(context.Background(), img(1)); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	mustShutdown(t, s)
	sizes := fb.batchSizes()
	total := 0
	for _, n := range sizes {
		if n >= 16 {
			t.Fatalf("batch of %d dispatched; window flush should fire first", n)
		}
		total += n
	}
	if total != 3 {
		t.Fatalf("served %d images across %v, want 3", total, sizes)
	}
}

// Backpressure: once the bounded queue and the pipeline are saturated,
// Submit rejects immediately with ErrQueueFull, and every admitted request
// still completes once the backend unblocks.
func TestBackpressureRejection(t *testing.T) {
	gate := make(chan struct{})
	fb := &fakeBackend{id: "b0", gate: gate}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 1, BatchWindow: time.Millisecond, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 12
	var completed, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := s.Submit(context.Background(), img(1))
			switch {
			case err == nil:
				completed.Add(1)
			case errors.Is(err, ErrQueueFull):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// Let the pipeline saturate against the gated backend, then release.
	for deadline := time.Now().Add(5 * time.Second); s.Stats().Rejected == 0; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	mustShutdown(t, s)
	if rejected.Load() == 0 {
		t.Fatal("no request saw backpressure despite a saturated queue")
	}
	if completed.Load()+rejected.Load() != clients {
		t.Fatalf("completed %d + rejected %d != %d clients", completed.Load(), rejected.Load(), clients)
	}
	st := s.Stats()
	if st.Admitted != st.Completed {
		t.Fatalf("admitted %d != completed %d: requests were dropped", st.Admitted, st.Completed)
	}
}

// Drain-on-shutdown: requests in the queue and in flight when Shutdown is
// called all receive replies; nothing is silently dropped.
func TestDrainOnShutdown(t *testing.T) {
	fb := &fakeBackend{id: "b0", delay: 2 * time.Millisecond}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 4, BatchWindow: time.Millisecond, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 24
	outcomes := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := s.Submit(context.Background(), img(1))
			outcomes <- err
		}()
	}
	time.Sleep(time.Millisecond) // let some requests enter the pipeline
	mustShutdown(t, s)
	wg.Wait()
	close(outcomes)
	var completed, closed int
	for err := range outcomes {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrClosed):
			closed++
		default:
			t.Fatalf("request dropped with unexpected error: %v", err)
		}
	}
	if completed+closed != clients {
		t.Fatalf("completed %d + closed %d != %d", completed, closed, clients)
	}
	st := s.Stats()
	if st.Admitted != st.Completed {
		t.Fatalf("admitted %d but completed %d: drain dropped in-flight requests", st.Admitted, st.Completed)
	}
	// Post-shutdown submits fail explicitly.
	if _, _, err := s.Submit(context.Background(), img(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after shutdown: %v, want ErrClosed", err)
	}
}

// A request whose deadline passes while it waits behind a busy backend gets
// an explicit context error, not a hang.
func TestDeadlineWhileQueued(t *testing.T) {
	gate := make(chan struct{})
	fb := &fakeBackend{id: "b0", gate: gate}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 1, BatchWindow: time.Millisecond, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the only backend
		defer wg.Done()
		s.Submit(context.Background(), img(1)) //nolint:errcheck
	}()
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err = s.Submit(ctx, img(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit with expired deadline: %v, want DeadlineExceeded", err)
	}
	close(gate)
	wg.Wait()
	mustShutdown(t, s)
}

// The scheduler picks the least-loaded free backend and never overlaps
// calls on one backend.
func TestSchedulerLeastLoaded(t *testing.T) {
	sc := newScheduler([]Backend{&fakeBackend{id: "a"}, &fakeBackend{id: "b"}})
	first := sc.acquire()
	sc.release(first, 100, 1, false) // "a" now carries 100ms of load
	second := sc.acquire()
	if second.backend.ID() == first.backend.ID() {
		t.Fatalf("scheduler picked the loaded backend %q over an idle one", first.backend.ID())
	}
	sc.release(second, 1, 1, false)
	// With "a" at 100ms and "b" at 1ms, the next pick is "b" again.
	third := sc.acquire()
	if third.backend.ID() != second.backend.ID() {
		t.Fatalf("scheduler picked %q, want least-loaded %q", third.backend.ID(), second.backend.ID())
	}
	sc.release(third, 1, 1, false)
}

// Backend errors propagate to every request of the failed batch with the
// backend identified.
func TestBackendErrorPropagates(t *testing.T) {
	fb := &fakeBackend{id: "flaky", err: errors.New("kernel fault")}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 2, BatchWindow: time.Millisecond, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Submit(context.Background(), img(1))
	if err == nil || !errors.Is(err, fb.err) {
		t.Fatalf("Submit: %v, want wrapped %v", err, fb.err)
	}
	mustShutdown(t, s)
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", st.Failed)
	}
}

// Concurrent-client race test: many clients over a mixed-speed pool under
// -race. Every request must settle with an explicit outcome, the batch
// histogram must account for every dispatched image, and no backend may
// observe overlapping calls.
func TestConcurrentClientsRace(t *testing.T) {
	pool := []Backend{
		&fakeBackend{id: "fast0", kernelMs: 0.2},
		&fakeBackend{id: "fast1", kernelMs: 0.3},
		&fakeBackend{id: "slow0", kernelMs: 2, delay: time.Millisecond},
	}
	s, err := New(Config{Backends: pool, MaxBatch: 8, BatchWindow: 2 * time.Millisecond, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 64, 4
	var completed, rejected, expired atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				ctx := context.Background()
				if c%8 == 0 { // a slice of clients runs with tight deadlines
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, 3*time.Millisecond)
					defer cancel()
				}
				_, _, err := s.Submit(ctx, img(float32(c)))
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ErrQueueFull):
					rejected.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					expired.Add(1)
				default:
					t.Errorf("client %d: unexpected error %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()
	mustShutdown(t, s)
	if got := completed.Load() + rejected.Load() + expired.Load(); got != clients*perClient {
		t.Fatalf("settled %d of %d requests", got, clients*perClient)
	}
	for _, b := range pool {
		if b.(*fakeBackend).overlap.Load() {
			t.Fatalf("backend %s saw overlapping Infer calls", b.ID())
		}
	}
	st := s.Stats()
	var histImages uint64
	for size, count := range st.BatchSizeHist {
		histImages += uint64(size) * count
	}
	if histImages < st.Completed {
		t.Fatalf("batch histogram covers %d images, %d completed", histImages, st.Completed)
	}
	if st.Completed == 0 {
		t.Fatal("no request completed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends should fail")
	}
}

func TestQuantiles(t *testing.T) {
	var samples []float64
	for i := 1; i <= 100; i++ {
		samples = append(samples, float64(i))
	}
	q := quantiles(samples)
	if q[0] < 49 || q[0] > 51 || q[1] < 94 || q[1] > 96 || q[2] < 98 || q[2] > 100 {
		t.Fatalf("quantiles of 1..100 = %v", q)
	}
	if z := quantiles(nil); z != [3]float64{} {
		t.Fatalf("quantiles(nil) = %v", z)
	}
}

func TestStatsUtilization(t *testing.T) {
	fb := &fakeBackend{id: "b0", kernelMs: 5}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 2, BatchWindow: time.Millisecond, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := s.Submit(context.Background(), img(1)); err != nil {
			t.Fatal(err)
		}
	}
	mustShutdown(t, s)
	st := s.Stats()
	if len(st.Backends) != 1 || st.Backends[0].Images != 4 {
		t.Fatalf("backend stats %+v, want 4 images on b0", st.Backends)
	}
	if st.Backends[0].BusyMs != 5*float64(st.Backends[0].Batches) {
		t.Fatalf("busy ms %v for %d batches of kernelMs=5", st.Backends[0].BusyMs, st.Backends[0].Batches)
	}
	if st.KernelMsP50 != 5 {
		t.Fatalf("kernel p50 %v, want 5", st.KernelMsP50)
	}
}

func ExampleServer() {
	fb := &fakeBackend{id: "board0"}
	s, _ := New(Config{Backends: []Backend{fb}, MaxBatch: 4, BatchWindow: time.Millisecond})
	out, _, err := s.Submit(context.Background(), img(7))
	fmt.Println(err == nil, out.Data()[0])
	s.Shutdown(context.Background()) //nolint:errcheck
	// Output: true 7
}
