package serve

import "sync"

// backendState tracks one pool member's dispatch state and accounting.
type backendState struct {
	backend Backend

	// The fields below are guarded by the owning scheduler's mutex.
	busy     bool
	busyMs   float64 // accumulated modeled kernel milliseconds
	batches  uint64
	images   uint64
	failures uint64
}

// scheduler hands formed batches to the least-loaded free backend. Load is
// the backend's accumulated modeled kernel time, so a pool mixing fast
// local boards with slower (or busier) F1 slots converges towards equal
// device-time shares rather than equal batch counts.
type scheduler struct {
	mu       sync.Mutex
	free     *sync.Cond
	backends []*backendState
}

func newScheduler(pool []Backend) *scheduler {
	sc := &scheduler{}
	sc.free = sync.NewCond(&sc.mu)
	for _, b := range pool {
		sc.backends = append(sc.backends, &backendState{backend: b})
	}
	return sc
}

// acquire blocks until a backend is free and claims the least-loaded one.
func (sc *scheduler) acquire() *backendState {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		var best *backendState
		for _, st := range sc.backends {
			if st.busy {
				continue
			}
			if best == nil || st.busyMs < best.busyMs {
				best = st
			}
		}
		if best != nil {
			best.busy = true
			return best
		}
		sc.free.Wait()
	}
}

// release returns a backend to the pool and folds the batch's modeled
// kernel time into its load.
func (sc *scheduler) release(st *backendState, kernelMs float64, images int, failed bool) {
	sc.mu.Lock()
	st.busy = false
	st.busyMs += kernelMs
	st.batches++
	st.images += uint64(images)
	if failed {
		st.failures++
	}
	sc.mu.Unlock()
	sc.free.Signal()
}

// snapshot copies the per-backend accounting for Stats.
func (sc *scheduler) snapshot() []BackendStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]BackendStats, len(sc.backends))
	for i, st := range sc.backends {
		out[i] = BackendStats{
			ID:       st.backend.ID(),
			Busy:     st.busy,
			BusyMs:   st.busyMs,
			Batches:  st.batches,
			Images:   st.images,
			Failures: st.failures,
		}
	}
	return out
}
