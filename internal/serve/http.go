package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"condor/internal/tensor"
)

// InputShape is the image geometry the served accelerator accepts.
type InputShape struct {
	Channels int `json:"channels"`
	Height   int `json:"height"`
	Width    int `json:"width"`
}

// Volume returns the number of float32 words per image.
func (s InputShape) Volume() int { return s.Channels * s.Height * s.Width }

// InferRequest is the JSON body of POST /infer: one image, row-major NCHW.
type InferRequest struct {
	Image []float32 `json:"image"`
}

// InferResponse is the JSON reply of POST /infer.
type InferResponse struct {
	Output   []float32 `json:"output"`
	Argmax   int       `json:"argmax"`
	KernelMs float64   `json:"kernel_ms"`
}

// HealthResponse is the JSON reply of GET /healthz; probes use the input
// shape to build well-formed requests.
type HealthResponse struct {
	Status   string     `json:"status"`
	Input    InputShape `json:"input"`
	Backends int        `json:"backends"`
}

type httpError struct {
	Error string `json:"error"`
}

// NewHandler exposes a Server over HTTP:
//
//	POST /infer   {"image":[...]}  → {"output":[...],"argmax":n,"kernel_ms":x}
//	GET  /healthz                  → {"status":"ok","input":{...},"backends":n}
//	GET  /statsz                   → the Stats snapshot
//
// requestTimeout bounds each inference request's time in the serving
// pipeline (queueing + batching + device); 0 means no per-request deadline.
// Backpressure maps to 429, deadlines to 504, shutdown to 503.
func NewHandler(s *Server, input InputShape, requestTimeout time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, HealthResponse{
			Status:   "ok",
			Input:    input,
			Backends: len(s.cfg.Backends),
		})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST required"})
			return
		}
		var req InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: "malformed JSON: " + err.Error()})
			return
		}
		if len(req.Image) != input.Volume() {
			writeJSON(w, http.StatusBadRequest, httpError{
				Error: fmt.Sprintf("image has %d words, accelerator input %dx%dx%d needs %d",
					len(req.Image), input.Channels, input.Height, input.Width, input.Volume()),
			})
			return
		}
		ctx := r.Context()
		if requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, requestTimeout)
			defer cancel()
		}
		img := tensor.FromSlice(req.Image, input.Channels, input.Height, input.Width)
		out, ms, err := s.Submit(ctx, img)
		if err != nil {
			writeJSON(w, statusForErr(err), httpError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, InferResponse{
			Output:   out.Data(),
			Argmax:   argmax(out.Data()),
			KernelMs: ms,
		})
	})
	return mux
}

func statusForErr(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func argmax(vals []float32) int {
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return best
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}
