package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"condor/internal/obs"
	"condor/internal/tensor"
)

// InputShape is the image geometry the served accelerator accepts.
type InputShape struct {
	Channels int `json:"channels"`
	Height   int `json:"height"`
	Width    int `json:"width"`
}

// Volume returns the number of float32 words per image.
func (s InputShape) Volume() int { return s.Channels * s.Height * s.Width }

// InferRequest is the JSON body of POST /infer: one image, row-major NCHW.
type InferRequest struct {
	Image []float32 `json:"image"`
}

// InferResponse is the JSON reply of POST /infer.
type InferResponse struct {
	Output   []float32 `json:"output"`
	Argmax   int       `json:"argmax"`
	KernelMs float64   `json:"kernel_ms"`
	Backend  string    `json:"backend,omitempty"`
}

// HealthResponse is the JSON reply of GET /healthz; probes use the input
// shape to build well-formed requests.
type HealthResponse struct {
	Status   string     `json:"status"`
	Input    InputShape `json:"input"`
	Backends int        `json:"backends"`
}

type httpError struct {
	Error string `json:"error"`
}

// HandlerOption customises NewHandler beyond its required arguments.
type HandlerOption func(*handlerOptions)

type handlerOptions struct {
	tracer obs.Tracer
}

// WithRequestTracer records one annotated span per /infer request (request
// id + executing backend) on the given tracer, so a fleet-level request can
// be stitched across the router's and every node's trace.
func WithRequestTracer(tr obs.Tracer) HandlerOption {
	return func(o *handlerOptions) { o.tracer = tr }
}

// NewHandler exposes a Server over HTTP:
//
//	POST /infer   {"image":[...]}  → {"output":[...],"argmax":n,"kernel_ms":x}
//	GET  /healthz                  → {"status":"ok","input":{...},"backends":n}
//	GET  /readyz                   → 200 while serving, 503 once draining
//	GET  /statsz                   → the Stats snapshot
//
// /healthz is liveness (the process answers); /readyz is readiness — it
// turns 503 the moment Shutdown starts, so a fleet router probing it stops
// routing to a draining node while its in-flight requests still complete.
//
// Every /infer reply echoes an X-Condor-Request-ID header: the inbound one
// when the caller (the fleet router) supplied it, a freshly minted id for
// direct traffic.
//
// requestTimeout bounds each inference request's time in the serving
// pipeline (queueing + batching + device); 0 means no per-request deadline.
// Backpressure maps to 429, deadlines to 504, shutdown to 503.
func NewHandler(s *Server, input InputShape, requestTimeout time.Duration, opts ...HandlerOption) http.Handler {
	var o handlerOptions
	for _, opt := range opts {
		opt(&o)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, HealthResponse{
			Status:   "ok",
			Input:    input,
			Backends: len(s.cfg.Backends),
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, httpError{Error: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, HealthResponse{
			Status:   "ready",
			Input:    input,
			Backends: len(s.cfg.Backends),
		})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST required"})
			return
		}
		rid := r.Header.Get(obs.RequestIDHeader)
		if rid == "" {
			rid = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, rid)
		var req InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: "malformed JSON: " + err.Error()})
			return
		}
		if len(req.Image) != input.Volume() {
			writeJSON(w, http.StatusBadRequest, httpError{
				Error: fmt.Sprintf("image has %d words, accelerator input %dx%dx%d needs %d",
					len(req.Image), input.Channels, input.Height, input.Width, input.Volume()),
			})
			return
		}
		ctx := obs.WithRequestID(r.Context(), rid)
		if requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, requestTimeout)
			defer cancel()
		}
		img := tensor.FromSlice(req.Image, input.Channels, input.Height, input.Width)
		var span struct {
			track *obs.Track
			id    int
		}
		if o.tracer != nil {
			// One fresh single-writer track per request: this handler
			// goroutine is the only writer, so annotation stays lock-free.
			span.track = o.tracer.Track("serve.infer")
			span.id = span.track.Begin("infer", 0)
			span.track.Annotate(span.id, "request_id", rid)
		}
		res, err := s.SubmitDetailed(ctx, img)
		if span.track != nil {
			if res.Backend != "" {
				span.track.Annotate(span.id, "backend", res.Backend)
			}
			span.track.End(span.id, 0)
		}
		if err != nil {
			writeJSON(w, statusForErr(err), httpError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, InferResponse{
			Output:   res.Output.Data(),
			Argmax:   argmax(res.Output.Data()),
			KernelMs: res.KernelMs,
			Backend:  res.Backend,
		})
	})
	return mux
}

func statusForErr(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func argmax(vals []float32) int {
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return best
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}
