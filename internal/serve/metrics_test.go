package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"condor/internal/obs"
)

// TestStatsDuringDrain polls Stats (the /statsz and /metricsz read path)
// concurrently with a full submit/shutdown cycle. Under -race this pins the
// fix for the snapshot racing the batcher during drain: the snapshot is
// taken under the same admission lock Shutdown closes the queue with.
func TestStatsDuringDrain(t *testing.T) {
	fb := &fakeBackend{id: "b0", delay: 200 * time.Microsecond}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 4, BatchWindow: 100 * time.Microsecond, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 4; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := s.Stats()
					if st.QueueDepth < 0 || st.QueueDepth > st.QueueCapacity {
						t.Errorf("inconsistent snapshot: depth %d cap %d", st.QueueDepth, st.QueueCapacity)
						return
					}
				}
			}
		}()
	}

	var clients sync.WaitGroup
	for i := 0; i < 32; i++ {
		clients.Add(1)
		go func(i int) {
			defer clients.Done()
			_, _, err := s.Submit(context.Background(), img(float32(i)))
			if err != nil && err != ErrQueueFull && err != ErrClosed {
				t.Errorf("Submit: %v", err)
			}
		}(i)
	}
	clients.Wait()
	mustShutdown(t, s)
	close(stop)
	pollers.Wait()

	st := s.Stats()
	if st.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain, want 0", st.QueueDepth)
	}
	if st.Admitted != st.Completed+st.Expired+st.Failed {
		t.Errorf("admission accounting does not balance: %+v", st)
	}
}

// TestRegisterMetrics checks the Prometheus bridge renders every
// condor_serve_* family with numbers matching the Stats snapshot.
func TestRegisterMetrics(t *testing.T) {
	fb := &fakeBackend{id: "b0", kernelMs: 3}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 4, BatchWindow: time.Hour, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	RegisterMetrics(reg, s)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := s.Submit(context.Background(), img(float32(i))); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	mustShutdown(t, s)

	text := reg.TextSnapshot()
	for _, want := range []string{
		`condor_serve_requests_total{state="admitted"} 8`,
		`condor_serve_requests_total{state="completed"} 8`,
		`condor_serve_batches_total 2`,
		`condor_serve_batch_size_bucket{le="4"} 2`,
		`condor_serve_batch_size_sum 8`,
		`condor_serve_batch_size_count 2`,
		`condor_serve_backend_batches_total{backend="b0"} 2`,
		`condor_serve_backend_images_total{backend="b0"} 8`,
		`condor_serve_latency_ms{kind="kernel",q="0.5"} 3`,
		`condor_serve_queue_capacity 16`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s:\n%s", want, text)
		}
	}
}
