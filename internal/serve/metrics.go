package serve

import "condor/internal/obs"

// RegisterMetrics exposes the server's counters through an obs.Registry in
// Prometheus form under the condor_serve_* families. Every family is
// registered as a scrape-time function over Stats(), so /metricsz always
// reports the same numbers as /statsz with no second accounting path.
func RegisterMetrics(reg *obs.Registry, s *Server) {
	reg.Func("condor_serve_queue_depth", obs.TypeGauge,
		"Admitted requests waiting for batching.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.Stats().QueueDepth)}}
		})
	reg.Func("condor_serve_queue_capacity", obs.TypeGauge,
		"Bound of the admission queue.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.cfg.QueueDepth)}}
		})
	reg.Func("condor_serve_requests_total", obs.TypeCounter,
		"Requests by final admission state.", func() []obs.Sample {
			st := s.Stats()
			state := func(name string, v uint64) obs.Sample {
				return obs.Sample{Labels: []obs.Label{obs.L("state", name)}, Value: float64(v)}
			}
			return []obs.Sample{
				state("admitted", st.Admitted),
				state("rejected", st.Rejected),
				state("completed", st.Completed),
				state("expired", st.Expired),
				state("failed", st.Failed),
			}
		})
	reg.Func("condor_serve_batches_total", obs.TypeCounter,
		"Batches dispatched to the backend pool.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.Stats().Batches)}}
		})
	reg.HistogramFunc("condor_serve_batch_size",
		"Sizes of dispatched batches.", func() []obs.HistSnapshot {
			return []obs.HistSnapshot{batchSizeSnapshot(s.Stats().BatchSizeHist, s.cfg.MaxBatch)}
		})
	reg.Func("condor_serve_latency_ms", obs.TypeGauge,
		"Request latency quantiles in milliseconds over the recent-sample reservoir.",
		func() []obs.Sample {
			st := s.Stats()
			q := func(kind, q string, v float64) obs.Sample {
				return obs.Sample{Labels: []obs.Label{obs.L("kind", kind), obs.L("q", q)}, Value: v}
			}
			return []obs.Sample{
				q("kernel", "0.5", st.KernelMsP50),
				q("kernel", "0.95", st.KernelMsP95),
				q("kernel", "0.99", st.KernelMsP99),
				q("total", "0.5", st.TotalMsP50),
				q("total", "0.95", st.TotalMsP95),
				q("total", "0.99", st.TotalMsP99),
			}
		})
	perBackend := func(fn func(b *BackendStats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			st := s.Stats()
			out := make([]obs.Sample, len(st.Backends))
			for i := range st.Backends {
				out[i] = obs.Sample{
					Labels: []obs.Label{obs.L("backend", st.Backends[i].ID)},
					Value:  fn(&st.Backends[i]),
				}
			}
			return out
		}
	}
	reg.Func("condor_serve_backend_busy", obs.TypeGauge,
		"Whether the backend is executing a batch (0/1).",
		perBackend(func(b *BackendStats) float64 {
			if b.Busy {
				return 1
			}
			return 0
		}))
	reg.Func("condor_serve_backend_batches_total", obs.TypeCounter,
		"Batches executed per backend.",
		perBackend(func(b *BackendStats) float64 { return float64(b.Batches) }))
	reg.Func("condor_serve_backend_images_total", obs.TypeCounter,
		"Images executed per backend.",
		perBackend(func(b *BackendStats) float64 { return float64(b.Images) }))
	reg.Func("condor_serve_backend_failures_total", obs.TypeCounter,
		"Failed batches per backend.",
		perBackend(func(b *BackendStats) float64 { return float64(b.Failures) }))
	reg.Func("condor_serve_backend_utilization", obs.TypeGauge,
		"Modeled-busy milliseconds over server uptime per backend.",
		perBackend(func(b *BackendStats) float64 { return b.Utilization }))
}

// batchSizeSnapshot folds the exact per-size batch counts into a cumulative
// histogram with power-of-two bucket bounds up to the configured MaxBatch.
func batchSizeSnapshot(hist map[int]uint64, maxBatch int) obs.HistSnapshot {
	var bounds []float64
	for b := 1; b < maxBatch; b *= 2 {
		bounds = append(bounds, float64(b))
	}
	bounds = append(bounds, float64(maxBatch))
	snap := obs.HistSnapshot{Bounds: bounds, Cumul: make([]uint64, len(bounds))}
	for size, n := range hist {
		snap.Count += n
		snap.Sum += float64(size) * float64(n)
		for i, b := range bounds {
			if float64(size) <= b {
				snap.Cumul[i] += n
			}
		}
	}
	return snap
}
