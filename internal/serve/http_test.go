package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestHandler(t *testing.T) (*Server, http.Handler) {
	t.Helper()
	fb := &fakeBackend{id: "b0", kernelMs: 1}
	s, err := New(Config{Backends: []Backend{fb}, MaxBatch: 4, BatchWindow: time.Millisecond, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	return s, NewHandler(s, InputShape{Channels: 1, Height: 2, Width: 2}, time.Second)
}

func TestHTTPInfer(t *testing.T) {
	s, h := newTestHandler(t)
	defer mustShutdown(t, s)
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	body, _ := json.Marshal(InferRequest{Image: []float32{0.1, 0.9, 0.3, 0.2}})
	resp, err := client.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /infer status %d", resp.StatusCode)
	}
	var ir InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	// The fake backend echoes its input, so argmax picks the 0.9 word.
	if ir.Argmax != 1 || len(ir.Output) != 4 {
		t.Fatalf("infer response %+v", ir)
	}
	if ir.KernelMs <= 0 {
		t.Fatalf("kernel ms %v, want > 0", ir.KernelMs)
	}
}

func TestHTTPBadShape(t *testing.T) {
	s, h := newTestHandler(t)
	defer mustShutdown(t, s)
	rec := httptest.NewRecorder()
	body, _ := json.Marshal(InferRequest{Image: []float32{1, 2, 3}})
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("short image: status %d, want 400", rec.Code)
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	s, h := newTestHandler(t)
	defer mustShutdown(t, s)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Input.Volume() != 4 || hr.Backends != 1 {
		t.Fatalf("health %+v", hr)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statsz status %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.QueueCapacity != 16 {
		t.Fatalf("statsz queue capacity %d, want 16", st.QueueCapacity)
	}
}

func TestHTTPBackpressureStatus(t *testing.T) {
	if got := statusForErr(ErrQueueFull); got != http.StatusTooManyRequests {
		t.Fatalf("ErrQueueFull → %d, want 429", got)
	}
	if got := statusForErr(ErrClosed); got != http.StatusServiceUnavailable {
		t.Fatalf("ErrClosed → %d, want 503", got)
	}
	if got := statusForErr(context.DeadlineExceeded); got != http.StatusGatewayTimeout {
		t.Fatalf("DeadlineExceeded → %d, want 504", got)
	}
}
