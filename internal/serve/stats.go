package serve

import (
	"sort"
	"sync"
	"time"
)

// Stats is a point-in-time view of the serving pipeline, shaped for the
// /statsz endpoint.
type Stats struct {
	// Admission.
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Admitted      uint64 `json:"admitted"`
	Rejected      uint64 `json:"rejected"` // backpressure (ErrQueueFull)
	Completed     uint64 `json:"completed"`
	Expired       uint64 `json:"expired"` // deadline passed in queue/batch
	Failed        uint64 `json:"failed"`  // backend errors

	// Batching. BatchSizeHist[n] counts dispatched batches of n images.
	Batches       uint64         `json:"batches"`
	BatchSizeHist map[int]uint64 `json:"batch_size_hist"`

	// Latency quantiles over the most recent completed requests. KernelMs
	// is the modeled device time of the request's batch; TotalMs is the
	// wall time from admission to reply (queueing + batching + device).
	KernelMsP50 float64 `json:"kernel_ms_p50"`
	KernelMsP95 float64 `json:"kernel_ms_p95"`
	KernelMsP99 float64 `json:"kernel_ms_p99"`
	TotalMsP50  float64 `json:"total_ms_p50"`
	TotalMsP95  float64 `json:"total_ms_p95"`
	TotalMsP99  float64 `json:"total_ms_p99"`

	// Per-backend accounting. Utilization is modeled-busy milliseconds over
	// the server's wall uptime (device time is modeled, so this substitutes
	// for the hardware occupancy a real F1 runtime would report).
	UptimeMs float64        `json:"uptime_ms"`
	Backends []BackendStats `json:"backends"`
}

// BackendStats is one pool member's share of the work.
type BackendStats struct {
	ID          string  `json:"id"`
	Busy        bool    `json:"busy"`
	Batches     uint64  `json:"batches"`
	Images      uint64  `json:"images"`
	Failures    uint64  `json:"failures"`
	BusyMs      float64 `json:"busy_ms"`
	Utilization float64 `json:"utilization"`
}

// statsCollector accumulates counters and a bounded reservoir of latency
// samples. All methods are safe for concurrent use.
type statsCollector struct {
	mu        sync.Mutex
	start     time.Time
	admitted  uint64
	rejected  uint64
	completed uint64
	expired   uint64
	failed    uint64
	batches   uint64
	hist      map[int]uint64

	// Ring buffers of the most recent completed-request samples.
	kernelMs []float64
	totalMs  []float64
	next     int
	filled   bool
}

func newStatsCollector(maxBatch, samples int) *statsCollector {
	return &statsCollector{
		start:    time.Now(),
		hist:     make(map[int]uint64, maxBatch),
		kernelMs: make([]float64, samples),
		totalMs:  make([]float64, samples),
	}
}

func (c *statsCollector) admit() {
	c.mu.Lock()
	c.admitted++
	c.mu.Unlock()
}

func (c *statsCollector) reject() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *statsCollector) recordBatch(size int) {
	c.mu.Lock()
	c.batches++
	c.hist[size]++
	c.mu.Unlock()
}

// settle classifies a finished request and, on success, records its latency
// samples.
func (c *statsCollector) settle(req *request, r result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.err != nil {
		if req.ctx.Err() != nil {
			c.expired++
		} else {
			c.failed++
		}
		return
	}
	c.completed++
	c.kernelMs[c.next] = r.kernelMs
	c.totalMs[c.next] = float64(time.Since(req.enqueued)) / float64(time.Millisecond)
	c.next++
	if c.next == len(c.kernelMs) {
		c.next = 0
		c.filled = true
	}
}

func (c *statsCollector) snapshot(queueDepth, queueCap int, backends []BackendStats) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.next
	if c.filled {
		n = len(c.kernelMs)
	}
	kq := quantiles(c.kernelMs[:n])
	tq := quantiles(c.totalMs[:n])
	st := Stats{
		QueueDepth:    queueDepth,
		QueueCapacity: queueCap,
		Admitted:      c.admitted,
		Rejected:      c.rejected,
		Completed:     c.completed,
		Expired:       c.expired,
		Failed:        c.failed,
		Batches:       c.batches,
		BatchSizeHist: make(map[int]uint64, len(c.hist)),
		KernelMsP50:   kq[0], KernelMsP95: kq[1], KernelMsP99: kq[2],
		TotalMsP50: tq[0], TotalMsP95: tq[1], TotalMsP99: tq[2],
		UptimeMs: float64(time.Since(c.start)) / float64(time.Millisecond),
		Backends: backends,
	}
	for k, v := range c.hist {
		st.BatchSizeHist[k] = v
	}
	for i := range st.Backends {
		if st.UptimeMs > 0 {
			st.Backends[i].Utilization = st.Backends[i].BusyMs / st.UptimeMs
		}
	}
	return st
}

// MaxBatchFormed returns the largest dispatched batch size, a convenience
// for tests and the stress gate (batching actually happened).
func (s Stats) MaxBatchFormed() int {
	max := 0
	for size := range s.BatchSizeHist {
		if size > max {
			max = size
		}
	}
	return max
}

// quantiles returns the p50/p95/p99 of the samples (zeros when empty).
func quantiles(samples []float64) [3]float64 {
	if len(samples) == 0 {
		return [3]float64{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	pick := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return [3]float64{pick(0.50), pick(0.95), pick(0.99)}
}
