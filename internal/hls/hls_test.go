package hls

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/dataflow"
)

func lenetIR() *condorir.Network {
	return &condorir.Network{
		Name: "LeNet", Board: "aws-f1-vu9p", FrequencyMHz: 180,
		Input: condorir.InputShape{Channels: 1, Height: 28, Width: 28},
		Layers: []condorir.Layer{
			{Name: "conv1", Type: "Convolution", KernelSize: 5, Stride: 1, NumOutput: 20, Bias: true, PEGroup: -1},
			{Name: "pool1", Type: "MaxPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
			{Name: "conv2", Type: "Convolution", KernelSize: 5, Stride: 1, NumOutput: 50, Bias: true, PEGroup: -1},
			{Name: "pool2", Type: "MaxPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
			{Name: "ip1", Type: "InnerProduct", NumOutput: 500, Bias: true, PEGroup: -1},
			{Name: "relu1", Type: "ReLU", PEGroup: -1},
			{Name: "ip2", Type: "InnerProduct", NumOutput: 10, Bias: true, PEGroup: -1},
			{Name: "prob", Type: "Softmax", PEGroup: -1},
		},
	}
}

func lenetSpec(t *testing.T) *dataflow.Spec {
	t.Helper()
	spec, err := dataflow.BuildSpec(lenetIR())
	if err != nil {
		t.Fatal(err)
	}
	if err := PlanMemory(spec); err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestEstimateLeNetFitsF1(t *testing.T) {
	rep, err := Estimate(lenetSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fits {
		t.Fatalf("LeNet must fit the F1 board: %+v", rep.KernelTotal)
	}
	u := rep.Utilization
	if u.LUT <= 0 || u.LUT > 0.5 {
		t.Fatalf("LUT utilization %.3f out of plausible range", u.LUT)
	}
	if u.DSP <= 0 || u.DSP > 0.2 {
		t.Fatalf("DSP utilization %.3f out of plausible range", u.DSP)
	}
	// LeNet's BRAM is dominated by the on-chip FC weights (the paper reports
	// 24.38%); the model should land in the same band.
	if u.BRAM < 0.10 || u.BRAM > 0.45 {
		t.Fatalf("BRAM utilization %.3f outside LeNet band", u.BRAM)
	}
	if rep.AchievedMHz < 100 {
		t.Fatalf("achieved clock %.0f implausibly low", rep.AchievedMHz)
	}
}

func TestPlanMemoryPutsLeNetFCWeightsOnChip(t *testing.T) {
	spec := lenetSpec(t)
	var ip1 *dataflow.PE
	for _, pe := range spec.PEs {
		for _, l := range pe.Layers {
			if l.Name == "ip1" {
				ip1 = pe
			}
		}
	}
	if ip1 == nil {
		t.Fatal("ip1 PE not found")
	}
	if !ip1.WeightsOnChip {
		t.Fatal("LeNet ip1 weights (1.6 MB) fit VU9P BRAM and should be cached on-chip")
	}
	if !ip1.PartialsOnChip {
		t.Fatal("ip1 partials (500 words) must be on-chip")
	}
}

func TestPlanMemorySmallBoardSpillsWeights(t *testing.T) {
	ir := lenetIR()
	ir.Board = "zc706"
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if err := PlanMemory(spec); err != nil {
		t.Fatal(err)
	}
	onChip := 0
	for _, pe := range spec.PEs {
		if pe.WeightsOnChip {
			onChip++
		}
	}
	// The 545-BRAM ZC706 cannot hold all of LeNet's weights on-chip.
	allPEs := len(spec.PEs)
	if onChip == allPEs {
		t.Fatal("zc706 should not fit every weight buffer on-chip")
	}
}

func TestEstimateRejectsVGGClassifier(t *testing.T) {
	// VGG-16 fc1: 25088 x 4096 = 102.8M words — beyond the HLS array limit,
	// "not synthesizable with the current methodology" (paper, Section 4).
	ir := &condorir.Network{
		Name: "vgg-fc", Board: "aws-f1-vu9p", FrequencyMHz: 150,
		Input: condorir.InputShape{Channels: 512, Height: 7, Width: 7},
		Layers: []condorir.Layer{
			{Name: "fc6", Type: "InnerProduct", NumOutput: 4096, Bias: true, PEGroup: -1},
		},
	}
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(spec); err == nil {
		t.Fatal("expected synthesis rejection for the VGG-16 classifier")
	} else if !strings.Contains(err.Error(), "not synthesizable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEstimateDSPAdderConfigDependsOnClock(t *testing.T) {
	ir := lenetIR()
	ir.FrequencyMHz = 100 // below the DSP-adder threshold
	specLow, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	repLow, err := Estimate(specLow)
	if err != nil {
		t.Fatal(err)
	}
	repHigh, err := Estimate(lenetSpec(t)) // 180 MHz
	if err != nil {
		t.Fatal(err)
	}
	if repLow.KernelTotal.DSP <= repHigh.KernelTotal.DSP {
		t.Fatalf("low-clock design should use more DSP (adders): %v vs %v",
			repLow.KernelTotal.DSP, repHigh.KernelTotal.DSP)
	}
	if repHigh.KernelTotal.LUT <= repLow.KernelTotal.LUT {
		t.Fatalf("high-clock design should use more LUT: %v vs %v",
			repHigh.KernelTotal.LUT, repLow.KernelTotal.LUT)
	}
}

func TestEstimateParallelismScalesDSP(t *testing.T) {
	ir := lenetIR()
	seq, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ir.Layers {
		ir.Layers[i].Parallelism = condorir.Parallelism{In: 1, Out: 2}
	}
	par, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	repSeq, err := Estimate(seq)
	if err != nil {
		t.Fatal(err)
	}
	repPar, err := Estimate(par)
	if err != nil {
		t.Fatal(err)
	}
	if repPar.KernelTotal.DSP < 1.5*repSeq.KernelTotal.DSP {
		t.Fatalf("2x output parallelism should roughly double datapath DSP: %v vs %v",
			repPar.KernelTotal.DSP, repSeq.KernelTotal.DSP)
	}
}

func TestFmaxModelDegradesWithUtilization(t *testing.T) {
	b, _ := board.Lookup("aws-f1-vu9p")
	low := fmaxModel(b, board.Utilization{LUT: 0.1})
	high := fmaxModel(b, board.Utilization{LUT: 0.8})
	if low <= high {
		t.Fatalf("fmax should degrade with utilization: %v vs %v", low, high)
	}
	if floor := fmaxModel(b, board.Utilization{LUT: 5}); floor < 0.19*b.MaxClockMHz {
		t.Fatalf("fmax floor violated: %v", floor)
	}
}

func TestBramForWords(t *testing.T) {
	if bramForWords(0, 32) != 0 {
		t.Fatal("zero words should need zero BRAM")
	}
	// 576 words = 18432 bits = exactly one BRAM18 = 0.5 BRAM36.
	if got := bramForWords(576, 32); got != 0.5 {
		t.Fatalf("bramForWords(576, 32) = %v", got)
	}
	if got := bramForWords(577, 32); got != 1.0 {
		t.Fatalf("bramForWords(577, 32) = %v", got)
	}
	// LeNet ip1: 400500 words ≈ 348 BRAM36.
	got := bramForWords(400500, 32)
	if got < 340 || got > 360 {
		t.Fatalf("ip1 weights = %v BRAM36", got)
	}
}

func TestFifoCostSRLvsBRAM(t *testing.T) {
	srl := fifoCost(16, 32)
	if srl.BRAM != 0 {
		t.Fatal("shallow FIFO should not use BRAM")
	}
	deep := fifoCost(4096, 32)
	if deep.BRAM <= 0 {
		t.Fatal("deep FIFO should use BRAM")
	}
}

func TestGeneratePECode(t *testing.T) {
	spec := lenetSpec(t)
	for _, pe := range spec.PEs {
		src := GeneratePECode(pe)
		if !strings.Contains(src, "#pragma HLS PIPELINE II=1") {
			t.Fatalf("%s: missing pipeline pragma:\n%s", pe.ID, src)
		}
		if !strings.Contains(src, "void "+pe.ID+"(") {
			t.Fatalf("%s: missing entry function", pe.ID)
		}
		for _, l := range pe.Layers {
			if !strings.Contains(src, l.Name) {
				t.Fatalf("%s: missing layer %s in generated code", pe.ID, l.Name)
			}
		}
	}
}

func TestGeneratePECodeDeterministic(t *testing.T) {
	spec := lenetSpec(t)
	if GeneratePECode(spec.PEs[0]) != GeneratePECode(spec.PEs[0]) {
		t.Fatal("code generation must be deterministic")
	}
}

func TestGenerateFilterCode(t *testing.T) {
	spec := lenetSpec(t)
	pe := spec.PEs[0] // conv1
	l := &pe.Layers[0]
	for idx := range pe.Chain.Taps {
		src := GenerateFilterCode(pe.Chain, idx, l)
		if !strings.Contains(src, "to_pe.write(v)") {
			t.Fatalf("filter %d: missing selection path", idx)
		}
		if idx < len(pe.Chain.Taps)-1 && !strings.Contains(src, "next.write(v)") {
			t.Fatalf("filter %d: missing forward path", idx)
		}
		if idx == len(pe.Chain.Taps)-1 && strings.Contains(src, "next.write(v)") {
			t.Fatal("last filter must not forward")
		}
	}
}

func TestGenerateFilterCodeInactiveTap(t *testing.T) {
	chain, err := dataflow.NewFilterChain(5, 28)
	if err != nil {
		t.Fatal(err)
	}
	spec := lenetSpec(t)
	// Use pool geometry (k=2) against the k=5 chain: taps outside 2x2 are
	// inactive and must only forward.
	var pool *dataflow.LayerHW
	for _, pe := range spec.PEs {
		for i := range pe.Layers {
			if pe.Layers[i].Name == "pool1" {
				pool = &pe.Layers[i]
			}
		}
	}
	src := GenerateFilterCode(chain, 0, pool) // tap (4,4): inactive for k=2
	if strings.Contains(src, "to_pe.write(v)") {
		t.Fatal("inactive filter should not select elements")
	}
	if !strings.Contains(src, "inactive") {
		t.Fatal("inactive filter should be marked")
	}
}

func TestGenerateHostCode(t *testing.T) {
	spec := lenetSpec(t)
	src := GenerateHostCode(spec)
	for _, want := range []string{"condor_init", "LeNet.xclbin", "condor_enqueue", KernelName(spec)} {
		if !strings.Contains(src, want) {
			t.Fatalf("host code missing %q:\n%s", want, src)
		}
	}
}

func TestKernelNameSanitized(t *testing.T) {
	spec := lenetSpec(t)
	spec.Name = "my net-v2"
	if got := KernelName(spec); got != "condor_my_net_v2" {
		t.Fatalf("kernel name = %q", got)
	}
}

func TestEstimateReportsPELatency(t *testing.T) {
	spec := lenetSpec(t)
	rep, err := Estimate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, pe := range spec.PEs {
		if rep.PEs[i].CyclesPerImage != dataflow.PECyclesPerImage(pe) {
			t.Fatalf("PE %s latency mismatch", pe.ID)
		}
	}
}

func TestSortedBreakdownDeterministic(t *testing.T) {
	spec := lenetSpec(t)
	rep, err := Estimate(spec)
	if err != nil {
		t.Fatal(err)
	}
	keys := rep.PEs[0].SortedBreakdown()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("breakdown keys not sorted")
		}
	}
}

func TestGenerateProject(t *testing.T) {
	spec := lenetSpec(t)
	p, err := GenerateProject(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Shared header, Tcl script, one source per PE, one per filter of each
	// features-extraction PE (two 5x5 chains + two 2x2 chains = 58 filters).
	wantFilters := 0
	for _, pe := range spec.PEs {
		if pe.Chain != nil {
			wantFilters += len(pe.Chain.Taps)
		}
	}
	wantFiles := 2 + len(spec.PEs) + wantFilters
	if len(p.Files) != wantFiles {
		t.Fatalf("project has %d files, want %d", len(p.Files), wantFiles)
	}
	tcl := p.Files["run_hls.tcl"]
	for _, want := range []string{"open_project condor_LeNet", "csynth_design", "create_clock"} {
		if !strings.Contains(tcl, want) {
			t.Fatalf("tcl missing %q:\n%s", want, tcl)
		}
	}
	hdr := p.Files["condor_types.h"]
	if !strings.Contains(hdr, "CONDOR_WORD_BITS 32") {
		t.Fatalf("header missing word bits:\n%s", hdr)
	}
	// Every generated source is referenced by the Tcl script.
	for _, path := range p.Paths() {
		if strings.HasPrefix(path, "src/") && !strings.Contains(tcl, path) {
			t.Fatalf("tcl does not add %s", path)
		}
	}
}

func TestProjectWriteTo(t *testing.T) {
	spec := lenetSpec(t)
	p, err := GenerateProject(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := p.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	for _, path := range p.Paths() {
		if _, err := os.Stat(filepath.Join(dir, path)); err != nil {
			t.Fatalf("missing %s: %v", path, err)
		}
	}
}
