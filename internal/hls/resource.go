// Package hls stands in for Vivado HLS in the Condor flow: it consumes the
// structural accelerator specification and produces (a) synthesizable C
// sources for every PE and filter (the artifacts the real flow would feed
// to the tool), (b) per-block latency figures, and (c) analytic resource
// estimates (LUT/FF/DSP/BRAM) calibrated against the Xilinx floating-point
// operator characterisation tables. The paper's toolchain only consumes
// HLS's latency/resource reports, so an analytic model driven by the same
// specifications preserves every downstream decision (design-space
// exploration, memory planning, feasibility, timing closure).
package hls

import (
	"fmt"
	"math"
	"sort"

	"condor/internal/board"
	"condor/internal/dataflow"
	"condor/internal/nn"
)

// maxHLSArrayWords is the largest static array the HLS front end accepts
// (2^24 elements). A fully-connected layer whose weight matrix exceeds this
// bound is not synthesizable with the current methodology — the constraint
// the paper reports for the VGG-16 classifier.
const maxHLSArrayWords = 1 << 24

// dspAdderClockMHz is the clock threshold below which the floating-point
// adder is instantiated in its DSP48-assisted (latency-optimised)
// configuration; above it the fmax-optimised fabric-logic configuration is
// used. This mirrors the Xilinx FP operator configuration space.
const dspAdderClockMHz = 120

// Component cost table: single-precision floating-point operators and
// fabric blocks, per instance.
var (
	costFMul    = board.Resources{LUT: 101, FF: 166, DSP: 3}
	costFAddDSP = board.Resources{LUT: 214, FF: 227, DSP: 2}
	costFAddLog = board.Resources{LUT: 390, FF: 496, DSP: 0}
	costFCmp    = board.Resources{LUT: 66, FF: 72}
	costFExp    = board.Resources{LUT: 1400, FF: 1706, DSP: 7}
	costFLog    = board.Resources{LUT: 1252, FF: 1504, DSP: 6}
	costFDiv    = board.Resources{LUT: 802, FF: 940}
	costFilter  = board.Resources{LUT: 132, FF: 168}

	costPEControlBase  = board.Resources{LUT: 820, FF: 1240}
	costPEControlLayer = board.Resources{LUT: 210, FF: 260} // per extra fused layer
	costDatamover      = board.Resources{LUT: 11800, FF: 17400, DSP: 16, BRAM: 16}
	costReLU           = board.Resources{LUT: 34, FF: 32}
)

// fadd returns the adder cost for the target clock.
func fadd(freqMHz float64) board.Resources {
	if freqMHz <= dspAdderClockMHz {
		return costFAddDSP
	}
	return costFAddLog
}

// Fixed-point MAC costs: an int16 multiply-accumulate maps onto a single
// DSP48 (multiplier plus post-adder); two int8 MACs pack into one DSP48.
var (
	costMACInt16 = board.Resources{LUT: 62, FF: 84, DSP: 1}
	costMACInt8  = board.Resources{LUT: 44, FF: 52, DSP: 0.5}
)

// macCost returns the cost of one multiply-accumulate lane for the fabric
// word width.
func macCost(freqMHz float64, wordBits int) board.Resources {
	switch wordBits {
	case 16:
		return costMACInt16
	case 8:
		return costMACInt8
	default:
		return costFMul.Add(fadd(freqMHz))
	}
}

// wordBitsOf normalises a spec's word width.
func wordBitsOf(bits int) int {
	switch bits {
	case 8, 16:
		return bits
	default:
		return 32
	}
}

// bramForWords returns the BRAM36 blocks needed to hold n words of the
// given width, with BRAM18 (half-block) granularity.
func bramForWords(n int64, wordBits int) float64 {
	if n <= 0 {
		return 0
	}
	halves := math.Ceil(float64(n) * float64(wordBits) / 18432)
	return halves / 2
}

// fifoCost returns the cost of one stream FIFO of the given word depth and
// width: shallow FIFOs map to LUT shift registers (SRLs), deeper ones to
// BRAM.
func fifoCost(depth, wordBits int) board.Resources {
	if depth <= 64 {
		return board.Resources{LUT: float64(20 + depth/2), FF: 42}
	}
	return board.Resources{LUT: 54, FF: 60, BRAM: bramForWords(int64(depth), wordBits)}
}

// PEReport is the synthesis estimate for one PE (datapath + its memory
// subsystem).
type PEReport struct {
	ID        string
	MACs      int
	Kernel    board.Resources
	Breakdown map[string]board.Resources

	// CyclesPerImage is the HLS latency figure: busy cycles per image
	// (II=1 pipeline over the PE's iteration space).
	CyclesPerImage int64
}

// Report is the synthesis estimate for a complete accelerator.
type Report struct {
	BoardID string
	PEs     []PEReport

	Datamover  board.Resources
	InterFIFOs board.Resources

	// KernelTotal is the accelerator without the platform shell; Total adds
	// the shell. Utilization is Total over the full device, the figure
	// Table 1 of the paper reports.
	KernelTotal board.Resources
	Total       board.Resources
	Utilization board.Utilization

	// Fits reports whether the kernel fits the board's available (shell-
	// excluded) budget.
	Fits bool

	// FmaxMHz is the post-route achievable clock from the timing-closure
	// model; AchievedMHz is min(requested, Fmax).
	FmaxMHz     float64
	AchievedMHz float64
}

// Estimate runs the full synthesis estimate for a spec on its board.
func Estimate(spec *dataflow.Spec) (*Report, error) {
	b, err := board.Lookup(spec.Board)
	if err != nil {
		return nil, err
	}
	bits := wordBitsOf(spec.WordBits)
	rep := &Report{BoardID: b.ID}
	kernel := costDatamover
	rep.Datamover = costDatamover

	// Inter-PE streaming FIFOs (one per boundary, incl. datamover ends).
	inter := fifoCost(spec.InterPEFIFODepth, bits).Scale(float64(len(spec.PEs) + 1))
	rep.InterFIFOs = inter
	kernel = kernel.Add(inter)

	for _, pe := range spec.PEs {
		pr, err := estimatePE(pe, spec.FreqMHz, bits)
		if err != nil {
			return nil, err
		}
		rep.PEs = append(rep.PEs, pr)
		kernel = kernel.Add(pr.Kernel)
	}

	rep.KernelTotal = kernel
	rep.Total = kernel.Add(b.Shell)
	rep.Utilization = rep.Total.Utilization(b.Device)
	rep.Fits = kernel.FitsIn(b.Available())
	rep.FmaxMHz = fmaxModel(b, rep.Total.Utilization(b.Device))
	rep.AchievedMHz = math.Min(spec.FreqMHz, rep.FmaxMHz)
	return rep, nil
}

// estimatePE estimates one PE: datapath operators, filter-chain memory
// subsystem, on-chip weight and partial buffers, and control.
func estimatePE(pe *dataflow.PE, freqMHz float64, wordBits int) (PEReport, error) {
	pr := PEReport{ID: pe.ID, Breakdown: make(map[string]board.Resources)}
	add := func(name string, r board.Resources) {
		pr.Breakdown[name] = pr.Breakdown[name].Add(r)
		pr.Kernel = pr.Kernel.Add(r)
	}

	par := pe.Par.Normalize()
	ctrl := costPEControlBase
	if n := len(pe.Layers) - 1; n > 0 {
		ctrl = ctrl.Add(costPEControlLayer.Scale(float64(n)))
	}
	add("control", ctrl)

	// Datapath: sized by the most demanding fused layer. The MAC bank of a
	// conv layer depends on its algorithm: direct needs the K² window lanes,
	// im2col+GEMM doubles the bank (the dual-ported panel BRAM feeds two
	// output positions per cycle, which is where its 2× cycle advantage
	// comes from), and Winograd F(2,3) needs the 16 element-wise lanes of
	// the 4×4 transform-domain tile regardless of K.
	maxK := 0
	convLanes := 0
	hasConv, hasMaxPool, hasAvgPool, hasFC := false, false, false, false
	hasWinograd := false
	var wgWeightWords, panelWords int64
	var act, norm nn.Kind = dataflow.NoActivation, dataflow.NoActivation
	for _, l := range pe.Layers {
		if l.Kind == nn.FullyConnected && int64(l.OutShape.Channels)*int64(l.InShape.Volume()) > maxHLSArrayWords {
			return pr, fmt.Errorf("hls: layer %q: fully-connected weight array of %d words exceeds the %d-word HLS limit; not synthesizable with the current methodology",
				l.Name, int64(l.OutShape.Channels)*int64(l.InShape.Volume()), maxHLSArrayWords)
		}
		if l.Kernel > maxK {
			maxK = l.Kernel
		}
		switch l.Kind {
		case nn.Conv:
			hasConv = true
			lanes := l.Kernel * l.Kernel
			switch l.Algo() {
			case dataflow.AlgoGEMM:
				lanes *= 2
				if w := int64(l.Kernel*l.Kernel) * int64(l.OutShape.Height) * int64(l.OutShape.Width); w > panelWords {
					panelWords = w
				}
			case dataflow.AlgoWinograd:
				lanes = 16
				hasWinograd = true
				wgWeightWords += int64(l.OutShape.Channels) * int64(l.InShape.Channels) * 16
			}
			if lanes > convLanes {
				convLanes = lanes
			}
		case nn.MaxPool:
			hasMaxPool = true
		case nn.AvgPool:
			hasAvgPool = true
		case nn.FullyConnected:
			hasFC = true
		}
		if l.Activation != dataflow.NoActivation {
			act = l.Activation
		}
		if l.Normalize != dataflow.NoActivation {
			norm = l.Normalize
		}
	}

	adder := fadd(freqMHz)
	mac := macCost(freqMHz, wordBits)
	if hasConv {
		// MAC lanes (multiplier + adder-tree slot + accumulator), replicated
		// per parallel input/output port pair.
		lanes := convLanes * par.In * par.Out
		pr.MACs += lanes
		add("conv-mac", mac.Scale(float64(lanes)))
	}
	if panelWords > 0 {
		// im2col scratch panel, dual-ported; layers on one PE run
		// sequentially, so the largest panel is shared.
		add("im2col-bram", board.Resources{BRAM: bramForWords(panelWords, wordBits)})
	}
	if hasWinograd {
		// Transformed-weight cache (always resident, float32 like the
		// partials) plus the input/inverse tile-transform adder networks.
		add("winograd-weight-bram", board.Resources{BRAM: bramForWords(wgWeightWords, 32)})
		add("winograd-xform", adder.Scale(float64(32*par.In+24*par.Out)))
	}
	if hasFC {
		// Single-input/single-output 1x1-conv PE: one MAC per output port.
		lanes := par.Out
		pr.MACs += lanes
		add("fc-mac", mac.Scale(float64(lanes)))
	}
	if hasMaxPool {
		add("pool-cmp", costFCmp.Scale(float64((maxK*maxK-1)*par.In)))
	}
	if hasAvgPool {
		add("pool-add", adder.Scale(float64((maxK*maxK-1)*par.In)))
		add("pool-scale", costFMul.Scale(float64(par.In)))
	}
	switch act {
	case nn.ReLU:
		add("act-relu", costReLU.Scale(float64(par.Out)))
	case nn.Sigmoid:
		add("act-sigmoid", costFExp.Add(costFDiv).Scale(float64(par.Out)))
	case nn.TanH:
		add("act-tanh", costFExp.Scale(2).Add(costFDiv).Scale(float64(par.Out)))
	}
	if norm != dataflow.NoActivation {
		// The LogSoftMax/SoftMax unit: exponential, accumulation, logarithm
		// (or divider), and the max-search comparator.
		add("norm", costFExp.Add(costFLog).Add(costFDiv).Add(costFCmp).Add(adder))
	}

	// Memory subsystem: one filter chain per parallel input port.
	if pe.Chain != nil {
		c := pe.Chain
		filters := costFilter.Scale(float64(len(c.Taps) * par.In))
		add("filters", filters)
		var chainFifos board.Resources
		for _, d := range c.FIFODepths {
			chainFifos = chainFifos.Add(fifoCost(d, wordBits))
		}
		// Tap FIFOs are shallow SRLs (depth = window side).
		chainFifos = chainFifos.Add(fifoCost(maxK, wordBits).Scale(float64(len(c.Taps))))
		add("chain-fifos", chainFifos.Scale(float64(par.In)))
	}

	if pe.WeightsOnChip {
		add("weight-bram", board.Resources{BRAM: bramForWords(pe.WeightWords(), wordBits)})
	}
	if pe.PartialsOnChip {
		// Partial sums accumulate at full precision regardless of the
		// stream word width.
		add("partial-bram", board.Resources{BRAM: bramForWords(pe.PartialWords(), 32)})
	}

	pr.CyclesPerImage = dataflow.PECyclesPerImage(pe)
	return pr, nil
}

// fmaxModel is the timing-closure model: routing congestion erodes the
// achievable kernel clock as device utilization grows.
func fmaxModel(b *board.Board, u board.Utilization) float64 {
	base := b.MaxClockMHz
	derate := 1 - 0.45*u.Max()
	if derate < 0.2 {
		derate = 0.2
	}
	return math.Round(base * derate)
}

// SortedBreakdown returns the breakdown keys in deterministic order.
func (p *PEReport) SortedBreakdown() []string {
	keys := make([]string, 0, len(p.Breakdown))
	for k := range p.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PlanMemory decides, for every PE in the spec, whether weights and partial
// sums live on-chip (BRAM) or are exchanged with the datamover — the
// memory-planning step of the core logic. Partial buffers are placed first
// (spilling partials costs a DDR round trip per input channel), then weight
// buffers smallest-first; everything must leave the filter chains, the
// inter-PE FIFOs and the datamover within the board's available BRAM.
func PlanMemory(spec *dataflow.Spec) error {
	b, err := board.Lookup(spec.Board)
	if err != nil {
		return err
	}
	bits := wordBitsOf(spec.WordBits)
	budget := b.Available().BRAM

	// Fixed BRAM consumers.
	fixed := costDatamover.BRAM
	fixed += fifoCost(spec.InterPEFIFODepth, bits).BRAM * float64(len(spec.PEs)+1)
	for _, pe := range spec.PEs {
		pe.WeightsOnChip = false
		pe.PartialsOnChip = false
		// Algorithm-mode scratch and caches are unconditionally resident:
		// the im2col panel (largest gemm layer on the PE) and the Winograd
		// transformed-weight store (float32, all winograd layers).
		var panelWords, wgWords int64
		for _, l := range pe.Layers {
			if l.Kind != nn.Conv {
				continue
			}
			switch l.Algo() {
			case dataflow.AlgoGEMM:
				if w := int64(l.Kernel*l.Kernel) * int64(l.OutShape.Height) * int64(l.OutShape.Width); w > panelWords {
					panelWords = w
				}
			case dataflow.AlgoWinograd:
				wgWords += int64(l.OutShape.Channels) * int64(l.InShape.Channels) * 16
			}
		}
		fixed += bramForWords(panelWords, bits) + bramForWords(wgWords, 32)
		if pe.Chain == nil {
			continue
		}
		par := pe.Par.Normalize()
		var chainBRAM float64
		for _, d := range pe.Chain.FIFODepths {
			chainBRAM += fifoCost(d, bits).BRAM
		}
		fixed += chainBRAM * float64(par.In)
	}
	remaining := budget - fixed
	if remaining < 0 {
		return fmt.Errorf("hls: board %s cannot hold the fixed fabric BRAM (%.1f over budget)", b.ID, -remaining)
	}

	// Partials first, in PE order.
	for _, pe := range spec.PEs {
		need := bramForWords(pe.PartialWords(), 32)
		if need <= remaining {
			pe.PartialsOnChip = true
			remaining -= need
		}
	}
	// Then weights, smallest first.
	order := make([]*dataflow.PE, len(spec.PEs))
	copy(order, spec.PEs)
	sort.SliceStable(order, func(i, j int) bool { return order[i].WeightWords() < order[j].WeightWords() })
	for _, pe := range order {
		if pe.WeightWords() == 0 {
			continue
		}
		need := bramForWords(pe.WeightWords(), bits)
		if need <= remaining {
			pe.WeightsOnChip = true
			remaining -= need
		}
	}
	return nil
}
