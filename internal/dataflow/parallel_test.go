package dataflow

import (
	"fmt"
	"runtime"
	"testing"

	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/tensor"
)

// These tests pin the tentpole invariant of parallel-port execution: at any
// Parallelism{In,Out} setting and any compute-unit count, the burst fabric
// (banded across worker goroutines, batch sharded across cloned CUs) must
// produce bit-identical outputs and identical merged RunStats to the
// word-at-a-time oracle running the same spec sequentially — banding
// partitions output channels (conv/FC) or whole input maps (pool), never an
// accumulation chain, and CU shards merge back counter-for-counter.
// MaxOccupancy stays excluded as in the burst/word equivalence tests.

// runParallelCase executes one {Par, CUs} point: the same spec (with every
// PE's port parallelism overridden) is instantiated twice; the burst side
// runs the batch through an n-CU pool, the oracle side through RunWords.
// Sharing one spec keeps LayerCycles — which depend on Par — identical on
// both sides, so the stats comparison is exact.
func runParallelCase(t *testing.T, ir *condorir.Network, ws *condorir.WeightSet, batch []*tensor.Tensor, par condorir.Parallelism, cus int) {
	t.Helper()
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range spec.PEs {
		pe.Par = par
	}
	burstAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	wordAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewCUPool(burstAcc, cus)
	if pool.Size() != cus {
		t.Fatalf("pool size %d, want %d", pool.Size(), cus)
	}
	gotOut, gotStats, err := pool.Run(batch)
	if err != nil {
		t.Fatalf("pool run: %v", err)
	}
	wantOut, wantStats, err := wordAcc.RunWords(batch)
	if err != nil {
		t.Fatalf("word run: %v", err)
	}
	assertRunsIdentical(t, "pool", gotOut, gotStats, "word", wantOut, wantStats)
}

// withProcs runs the sweep body at a given GOMAXPROCS so the worker pool
// actually spawns helpers (CI boxes may have a single core, where the pool
// legally degrades to the sequential schedule).
func withProcs(t *testing.T, procs int, body func(t *testing.T)) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	body(t)
}

func TestParallelPortEquivalenceTC1(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(4, 7)
	withProcs(t, 4, func(t *testing.T) {
		for _, in := range []int{1, 2, 4} {
			for _, out := range []int{1, 2, 4} {
				for _, cus := range []int{1, 2, 4} {
					name := fmt.Sprintf("in=%d/out=%d/cus=%d", in, out, cus)
					t.Run(name, func(t *testing.T) {
						runParallelCase(t, ir, ws, batch, condorir.Parallelism{In: in, Out: out}, cus)
					})
				}
			}
		}
	})
}

func TestParallelPortEquivalenceLeNet(t *testing.T) {
	ir, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.MNISTImages(3, 11)
	withProcs(t, 4, func(t *testing.T) {
		for _, p := range []int{1, 2, 4} {
			name := fmt.Sprintf("in=%d/out=%d/cus=%d", p, p, p)
			t.Run(name, func(t *testing.T) {
				runParallelCase(t, ir, ws, batch, condorir.Parallelism{In: p, Out: p}, p)
			})
		}
	})
}

// A single-processor budget must degrade to the sequential schedule (no
// helper goroutines) while remaining bit-identical — the explicit check that
// parallelism settings are semantics-free on any host.
func TestParallelPortSingleProcDegrades(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(3, 5)
	withProcs(t, 1, func(t *testing.T) {
		if p := newPEWorkerPool(4); p != nil {
			p.close()
			t.Fatal("newPEWorkerPool spawned helpers at GOMAXPROCS=1")
		}
		runParallelCase(t, ir, ws, batch, condorir.Parallelism{In: 4, Out: 4}, 2)
	})
}

// Cloned compute units share one sealed weight store and keep private DDR
// counters; the one-time on-chip configuration load stays accounted on unit
// 0 only, so merged pool traffic equals a single fabric's run exactly (the
// stats assertions above depend on this; here the mechanism is pinned
// directly).
func TestCloneSharesWeightsPrivateCounters(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	clone := acc.Clone()
	if clone.dm.store != acc.dm.store {
		t.Fatal("clone does not share the weight store")
	}
	if clone.dm == acc.dm {
		t.Fatal("clone shares the whole datamover (counters must be private)")
	}
	base := acc.dm.Stats()
	if got := clone.dm.Stats(); got != (DatamoverStats{}) {
		t.Fatalf("clone starts with traffic %+v, want zero", got)
	}
	clone.dm.AccountInput(10)
	if got := acc.dm.Stats(); got != base {
		t.Fatalf("clone traffic leaked into original: %+v vs %+v", got, base)
	}
}

// The weight store rejects writes after sealing: replication is only safe
// because the shared region is provably immutable during execution.
func TestWeightStoreSealedPanics(t *testing.T) {
	dm := NewDatamover()
	dm.LoadWeights("l", []float32{1}, nil)
	dm.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("LoadWeights after Seal did not panic")
		}
	}()
	dm.LoadWeights("l2", []float32{2}, nil)
}
