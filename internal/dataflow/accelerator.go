package dataflow

import (
	"fmt"
	"sync"

	"condor/internal/condorir"
	"condor/internal/diag"
	"condor/internal/fifo"
	"condor/internal/nn"
	"condor/internal/obs"
	"condor/internal/tensor"
)

// Accelerator is an instantiated dataflow fabric: a Spec bound to a weight
// set loaded into the (simulated) on-board memory, ready to execute
// inference batches. This is the functional equivalent of the synthesized
// bitstream running on the device.
type Accelerator struct {
	Spec   *Spec
	dm     *Datamover
	tracer obs.Tracer

	// qweights holds every compute layer's weights pre-quantized onto the
	// symmetric int8 grid, built at Instantiate time for packed specs
	// (WordBits == 8). The store is sealed before the codes are derived, so
	// they stay valid for the accelerator's lifetime and are shared
	// read-only by clones. Nil on float32/int16 fabrics.
	qweights map[string]int8LayerWeights

	// wgweights holds the Winograd-transformed weights (U = G g Gᵀ, f·c·16
	// words per layer) of every winograd_f23 conv layer, built at
	// Instantiate time after the store is sealed and shared read-only by
	// clones — the same lifecycle as qweights. Nil when no layer uses the
	// algorithm.
	wgweights map[string][]float32

	// trackPrefix namespaces this unit's trace tracks ("cu1/feeder", …).
	// Empty for a standalone fabric and for unit 0 of a single-unit pool, so
	// existing track names are unchanged; CUPool assigns per-unit prefixes
	// when it replicates the fabric.
	trackPrefix string
}

// SetTracer attaches a span tracer to the fabric. Every subsequent Run
// records one track per element (feeder, each PE, collector) with one span
// per layer per image, bracketing the element's modeled cycle counter so
// span cycle totals reconcile exactly with RunStats. A nil tracer (the
// default) disables tracing; the hot path then pays only a nil check per
// hook site. Tracing covers the burst datapath only — RunWords is the
// equivalence oracle and stays uninstrumented.
func (a *Accelerator) SetTracer(t obs.Tracer) { a.tracer = t }

// Instantiate binds a spec to its weights: every compute layer's weights
// are loaded into the datamover's on-board memory, and on-chip caching
// decisions are accounted. Consistency failures are reported as wrapped
// diag.Diagnostic errors carrying the same rule IDs the internal/verify
// pass fires statically, so callers and tests can match on diag.Rule.
func Instantiate(spec *Spec, ws *condorir.WeightSet) (*Accelerator, error) {
	a := &Accelerator{Spec: spec, dm: NewDatamover()}
	for _, pe := range spec.PEs {
		for _, l := range pe.Layers {
			if l.Kind != nn.Conv && l.Kind != nn.FullyConnected {
				continue
			}
			we, ok := ws.Get(l.Name, condorir.EntryWeights)
			if !ok {
				return nil, fmt.Errorf("dataflow: %w",
					diag.Errorf(diag.RuleWeightMissing, pe.ID, l.Name, "weights for layer %q not in weight set", l.Name))
			}
			var bias []float32
			if be, ok := ws.Get(l.Name, condorir.EntryBias); ok {
				bias = be.Data
				if len(bias) != l.OutShape.Channels {
					return nil, fmt.Errorf("dataflow: %w",
						diag.Errorf(diag.RuleBiasWords, pe.ID, l.Name,
							"layer %q bias has %d words, accelerator needs %d", l.Name, len(bias), l.OutShape.Channels))
				}
			}
			if wantW := l.WeightWords(); len(we.Data) != wantW {
				return nil, fmt.Errorf("dataflow: %w",
					diag.Errorf(diag.RuleWeightWords, pe.ID, l.Name,
						"layer %q weight set has %d words, accelerator needs %d", l.Name, len(we.Data), wantW))
			}
			a.dm.LoadWeights(l.Name, we.Data, bias)
			if pe.WeightsOnChip {
				if spec.WordBits == 8 {
					// The packed fabric stores on-chip weights as int8
					// codes: the configuration load moves one byte per
					// word, matching Spec.OnChipLoadBytes.
					a.dm.AccountOnChipLoadBytes(l.Name, 1)
				} else {
					a.dm.AccountOnChipLoad(l.Name)
				}
			}
		}
	}
	// Weights are read-only from here on: sealing freezes the store, makes
	// every subsequent read lock-free, and is what lets Clone replicate the
	// fabric by reference instead of by copy.
	a.dm.Seal()
	if spec.WordBits == 8 {
		qw, err := quantizeWeightStore(spec, a.dm)
		if err != nil {
			return nil, err
		}
		a.qweights = qw
	}
	// Winograd-mode layers get their weights pre-transformed into the
	// sealed store once per design (the on-chip transform runs at
	// configuration-load time, not per image), shared by every CU clone.
	wg, err := winogradWeightStore(spec, a.dm)
	if err != nil {
		return nil, err
	}
	a.wgweights = wg
	return a, nil
}

// Clone returns an additional compute unit of the same instantiated design:
// it shares the sealed, immutable weight store with the original (no weight
// copy, no lock contention) and owns private DDR scratch buffers and
// private traffic counters, so replica fabrics execute concurrently without
// touching any shared mutable state. The one-time on-chip configuration
// load stays accounted on the original unit. The tracer attachment carries
// over; CUPool assigns per-unit track prefixes.
func (a *Accelerator) Clone() *Accelerator {
	return &Accelerator{Spec: a.Spec, dm: a.dm.Clone(), tracer: a.tracer, trackPrefix: a.trackPrefix, qweights: a.qweights, wgweights: a.wgweights}
}

// Datamover exposes the on-board memory interface (used by tests and the
// runtime for traffic reporting).
func (a *Accelerator) Datamover() *Datamover { return a.dm }

// RunStats aggregates a batch execution.
type RunStats struct {
	Images  int
	PEs     []PEStats
	DRAM    DatamoverStats
	Streams []fifo.Stats // inter-PE streaming FIFO traffic and occupancy

	// InputScale is the largest per-image activation quantization scale the
	// feeder applied over the batch (packed int8 datapath only; zero on the
	// float paths). Together with the per-PE MaxRequantScale values it
	// bounds the admissible deviation from the float oracle.
	InputScale float64
}

// QuantErrorBound derives the admissible element-wise deviation of a packed
// int8 run from the float32 oracle out of the per-tensor scales the run
// recorded: every quantization point (the feeder plus each PE's requantize
// boundary) contributes up to half a step of rounding error, and upstream
// error is amplified as it propagates through the MAC chains, so the bound
// takes a conservative multiple of the summed scales. Zero on float runs
// (no scales recorded — the float paths are held to bit-identity instead).
func (s *RunStats) QuantErrorBound() float64 {
	sum := s.InputScale
	for i := range s.PEs {
		sum += s.PEs[i].MaxRequantScale
	}
	return 8 * sum
}

// WinogradErrorBound derives the admissible element-wise deviation of a run
// with winograd_f23 layers from the direct-convolution oracle, out of the
// per-PE output magnitudes the run recorded: the F(2,3) transforms evaluate
// each output through a short chain of exactly-representable ±1/±½
// combinations, so the rounding deviation stays within a small multiple of
// the float32 epsilon at the output's own magnitude, amplified as it
// propagates through downstream layers — the bound takes a conservative
// multiple of the summed per-PE magnitudes (the same accounting pattern as
// QuantErrorBound). Zero when no layer ran in winograd mode; on mixed int8
// + winograd runs, add QuantErrorBound for the total tolerance.
func (s *RunStats) WinogradErrorBound() float64 {
	const eps32 = 1.0 / (1 << 23)
	var sum float64
	for i := range s.PEs {
		sum += s.PEs[i].MaxWinogradMag
	}
	return 256 * eps32 * sum
}

// BottleneckCycles returns the largest per-image cycle count among the PEs:
// the steady-state initiation interval of the high-level pipeline.
func (s *RunStats) BottleneckCycles() int64 {
	var max int64
	for i := range s.PEs {
		if c := s.PEs[i].CyclesPerImage(); c > max {
			max = c
		}
	}
	return max
}

// TotalMACs returns the MAC operations executed across all PEs.
func (s *RunStats) TotalMACs() int64 {
	var n int64
	for i := range s.PEs {
		n += s.PEs[i].MACs
	}
	return n
}

// Run executes a batch of images on the fabric. Every PE runs as an
// independent goroutine connected by blocking FIFOs, so consecutive images
// pipeline across the PEs exactly as on the device; outputs are returned in
// input order. The returned stats carry per-PE cycle counts and DDR
// traffic for the batch.
//
// Run is a one-shot streaming session (OpenSession + RunBatch + Close): it
// uses the framed burst datapath — FIFO traffic moves in slice-granularity
// bursts behind epoch-tagged frame headers, with identical datapath word
// content, order, traffic totals and modeled cycles as the word-at-a-time
// path, which is retained behind RunWords as the equivalence oracle.
// Callers running many batches should hold a Session (or CUPool.RunBatch)
// open instead, which amortizes the fabric's setup and fill/drain across
// batches.
func (a *Accelerator) Run(batch []*tensor.Tensor) ([]*tensor.Tensor, *RunStats, error) {
	if len(batch) == 0 {
		return nil, &RunStats{}, nil
	}
	s := a.OpenSession()
	outs, stats, err := s.RunBatch(batch)
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}
	return outs, stats, nil
}

// RunWords executes the batch with the original word-at-a-time datapath:
// one FIFO operation per streamed word, the exact granularity of the modeled
// hardware, with no frame headers. It exists so tests can assert the framed
// burst datapath is functionally and statistically bit-identical on the
// datapath counters; production callers should use Run.
func (a *Accelerator) RunWords(batch []*tensor.Tensor) ([]*tensor.Tensor, *RunStats, error) {
	return a.runWords(batch)
}

// runWords is the unframed word-at-a-time oracle. It is deliberately the
// original one-shot feeder/PE/collector spawn-and-join loop — the framed
// streaming session in session.go is measured against it.
func (a *Accelerator) runWords(batch []*tensor.Tensor) ([]*tensor.Tensor, *RunStats, error) {
	if len(batch) == 0 {
		return nil, &RunStats{}, nil
	}
	spec := a.Spec
	in := spec.Input
	for i, img := range batch {
		s := img.Shape()
		if len(s) != 3 || s[0] != in.Channels || s[1] != in.Height || s[2] != in.Width {
			return nil, nil, fmt.Errorf("dataflow: image %d has shape %v, accelerator input is %v", i, s, in)
		}
	}

	stats := &RunStats{Images: len(batch), PEs: make([]PEStats, len(spec.PEs))}
	errs := make(chan error, len(spec.PEs)+2)

	// Streaming FIFOs: datamover → pe0 → pe1 → … → datamover.
	fifos := make([]*fifo.FIFO, len(spec.PEs)+1)
	for i := range fifos {
		fifos[i] = fifo.New(fmt.Sprintf("stream%d", i), spec.InterPEFIFODepth)
	}

	var wg sync.WaitGroup

	// Feeder: the datamover streams every image from on-board memory, one
	// word per push.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer fifos[0].Close()
		for _, img := range batch {
			a.dm.AccountInput(int64(img.Len()))
			for _, v := range img.Data() {
				fifos[0].Push(v)
			}
		}
	}()

	// One goroutine per PE.
	for i, pe := range spec.PEs {
		stats.PEs[i].ID = pe.ID
		exec := &peExecWords{pe: pe, dm: a.dm, in: fifos[i], out: fifos[i+1], stats: &stats.PEs[i]}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := exec.run(len(batch)); err != nil {
				errs <- err
			}
		}()
	}

	// Collector: the datamover writes outputs back to on-board memory.
	outShape := spec.OutputShape()
	outputs := make([]*tensor.Tensor, len(batch))
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink := fifos[len(fifos)-1]
		for b := range outputs {
			t := tensor.New(outShape.Channels, outShape.Height, outShape.Width)
			data := t.Data()
			for j := range data {
				v, ok := sink.Pop()
				if !ok {
					errs <- fmt.Errorf("dataflow: output stream ended at image %d element %d", b, j)
					return
				}
				data[j] = v
			}
			a.dm.AccountOutput(int64(len(data)))
			outputs[b] = t
		}
		// Anything extra indicates a shape accounting bug. Drain the sink
		// synchronously so no goroutine outlives the run: the last PE has
		// closed (or will close) its output FIFO, so the drain terminates.
		if _, ok := sink.Pop(); ok {
			errs <- fmt.Errorf("dataflow: accelerator produced more output words than %d images require", len(outputs))
			sink.Drain()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	stats.DRAM = a.dm.Stats()
	for _, f := range fifos {
		stats.Streams = append(stats.Streams, f.Stats())
	}
	return outputs, stats, nil
}
