// Package dataflow implements the paper's spatial accelerator: a distributed
// dataflow architecture of PEs (the layer computations), filters (the
// non-uniform memory partitioning of the stencil reuse buffer) and FIFOs
// (the communication channels), interfaced to on-board memory through a
// custom datamover. The package provides both the structural specification
// of an accelerator (consumed by the HLS, resource, performance and
// packaging layers) and a functional goroutine-per-element simulator whose
// outputs are validated bit-for-bit against the nn reference.
package dataflow

import (
	"fmt"

	"condor/internal/condorir"
	"condor/internal/fifo"
	"condor/internal/nn"
)

// NoActivation marks the absence of a folded activation on a hardware layer.
const NoActivation nn.Kind = -1

// ConvAlgo selects the convolution algorithm a PE uses for one layer. The
// algorithms trade resources for cycles: direct is the paper's sliding
// window over the filter chain; im2col+GEMM lowers the window set into an
// on-chip panel feeding a register-tiled GEMM microkernel; Winograd F(2,3)
// computes 2×2 output tiles from 4×4 transformed input tiles, cutting the
// multiply count 2.25× on qualifying 3×3/stride-1 layers.
type ConvAlgo string

const (
	// AlgoDirect is the sliding-window convolution of the source paper.
	// The zero value ("") of LayerHW.ConvAlgo means direct as well.
	AlgoDirect ConvAlgo = "direct"
	// AlgoGEMM is the im2col+GEMM lowering: the padded input map is
	// unrolled once into a K²×(OH·OW) panel held in dual-ported BRAM, so
	// the MAC array streams two output positions per cycle instead of
	// waiting on the filter chain's one-window-per-cycle gather.
	AlgoGEMM ConvAlgo = "im2col_gemm"
	// AlgoWinograd is the Winograd F(2,3) transform-domain convolution,
	// valid only for 3×3/stride-1 layers whose output tiles align (even
	// output height and width). Weights are pre-transformed at instantiate
	// time into the sealed store, shared read-only across CU clones.
	AlgoWinograd ConvAlgo = "winograd_f23"
)

// ParseConvAlgo maps an external algorithm string ("" = direct) onto the
// enum, rejecting unknown names.
func ParseConvAlgo(s string) (ConvAlgo, error) {
	switch ConvAlgo(s) {
	case "", AlgoDirect:
		return AlgoDirect, nil
	case AlgoGEMM:
		return AlgoGEMM, nil
	case AlgoWinograd:
		return AlgoWinograd, nil
	}
	return "", fmt.Errorf("dataflow: unknown conv algorithm %q (want %s, %s or %s)", s, AlgoDirect, AlgoGEMM, AlgoWinograd)
}

// WinogradOK reports whether a conv layer geometry qualifies for the
// F(2,3) fast algorithm: 3×3 kernel, unit stride, and an output tile grid
// that divides evenly into 2×2 tiles.
func WinogradOK(kernel, stride int, out nn.Shape) bool {
	return kernel == 3 && stride == 1 && out.Height%2 == 0 && out.Width%2 == 0
}

// LayerHW is one logical CNN layer as mapped onto hardware: geometry, the
// shapes it transforms, and the pointwise stages folded into its PE
// (activation and/or final normalisation).
type LayerHW struct {
	Index int // position in the IR layer list
	Name  string
	Kind  nn.Kind

	Kernel int
	Stride int
	Pad    int

	InShape  nn.Shape
	OutShape nn.Shape

	// Activation is the pointwise non-linearity folded into the PE output
	// stage (ReLU/Sigmoid/TanH), or NoActivation.
	Activation nn.Kind
	// Normalize is a folded LogSoftMax/SoftMax output stage, or NoActivation.
	Normalize nn.Kind

	// ConvAlgo selects the convolution algorithm for nn.Conv layers; the
	// zero value means AlgoDirect. Ignored on non-conv layers.
	ConvAlgo ConvAlgo
}

// Algo returns the layer's effective convolution algorithm, mapping the
// zero value to AlgoDirect.
func (l *LayerHW) Algo() ConvAlgo {
	if l.ConvAlgo == "" {
		return AlgoDirect
	}
	return l.ConvAlgo
}

// PaddedHeight returns the input height including zero padding, the extent
// the datamover streams into the filter pipeline.
func (l *LayerHW) PaddedHeight() int { return l.InShape.Height + 2*l.Pad }

// PaddedWidth returns the padded input width.
func (l *LayerHW) PaddedWidth() int { return l.InShape.Width + 2*l.Pad }

// WindowTaps returns the number of parallel window accesses (K²) for
// features-extraction layers, or 1 for fully-connected layers (the paper's
// 1x1-convolution view of FC layers).
func (l *LayerHW) WindowTaps() int {
	if l.Kind.IsFeatureExtraction() {
		return l.Kernel * l.Kernel
	}
	return 1
}

// WeightWords returns the number of weight words (excluding bias) the
// layer's geometry implies: the word count a weight-set entry must carry and
// the datamover streams per image when weights stay off-chip. Non-compute
// layers need none.
func (l *LayerHW) WeightWords() int {
	switch l.Kind {
	case nn.Conv:
		return l.OutShape.Channels * l.InShape.Channels * l.Kernel * l.Kernel
	case nn.FullyConnected:
		return l.OutShape.Channels * l.InShape.Volume()
	default:
		return 0
	}
}

// PE is one processing element of the accelerator together with its memory
// subsystem. A PE implements one or more logical layers (fused PEs iterate
// over their layers with an outer loop, per Section 3.2 of the paper).
type PE struct {
	ID     string
	Layers []LayerHW

	// Par carries the feature-map port parallelism: In input maps are read
	// concurrently (one filter chain each) and Out output maps are computed
	// in parallel.
	Par condorir.Parallelism

	// Chain is the filter/FIFO memory subsystem specification, present only
	// for features-extraction PEs. When layers are fused, the chain is sized
	// for the largest window and the largest padded input width among them,
	// as the paper prescribes.
	Chain *FilterChain

	// WeightsOnChip reports whether the PE's weights are cached in BRAM
	// (decided by the core logic against the board budget); otherwise the
	// datamover streams them per image.
	WeightsOnChip bool

	// PartialsOnChip reports whether the accumulation buffer for partial
	// results fits in on-chip memory; otherwise partials are exchanged with
	// the datamover (the paper's spill path).
	PartialsOnChip bool
}

// IsFeatureExtraction reports whether the PE belongs to the
// features-extraction stage.
func (pe *PE) IsFeatureExtraction() bool {
	return len(pe.Layers) > 0 && pe.Layers[0].Kind.IsFeatureExtraction()
}

// WeightWords returns the number of weight+bias words the PE needs across
// its layers.
func (pe *PE) WeightWords() int64 {
	var n int64
	for _, l := range pe.Layers {
		switch l.Kind {
		case nn.Conv:
			n += int64(l.OutShape.Channels) * int64(l.InShape.Channels) * int64(l.Kernel) * int64(l.Kernel)
			n += int64(l.OutShape.Channels) // bias
		case nn.FullyConnected:
			n += int64(l.OutShape.Channels) * int64(l.InShape.Volume())
			n += int64(l.OutShape.Channels)
		}
	}
	return n
}

// PartialWords returns the size of the largest partial-sum buffer the PE
// needs: the full output volume of a conv layer (accumulated across input
// channels) or the output neuron count of an FC layer.
func (pe *PE) PartialWords() int64 {
	var max int64
	for _, l := range pe.Layers {
		var n int64
		switch l.Kind {
		case nn.Conv:
			n = int64(l.OutShape.Volume())
		case nn.FullyConnected:
			n = int64(l.OutShape.Channels)
		}
		if n > max {
			max = n
		}
	}
	return max
}

// FilterChain describes the memory subsystem of one features-extraction PE
// input port: a pipeline of K² filters interleaved by K²−1 FIFOs,
// implementing the non-uniform partitioning of the reuse buffer (Cong et
// al., DAC'14). Filters are ordered in lexicographically inverse order of
// their window access (m,n); the FIFO between two consecutive filters holds
// exactly the spatial distance between the two accesses they represent.
type FilterChain struct {
	Kernel  int // largest window among fused layers
	PaddedW int // largest padded input width among fused layers

	// Taps lists the window accesses in pipeline order (lexicographically
	// inverse: the (K-1,K-1) access first).
	Taps []Tap

	// FIFODepths[i] is the depth in words of the FIFO between Taps[i] and
	// Taps[i+1] (len = len(Taps)-1).
	FIFODepths []int

	// TapFIFODepth, when positive, declares the depth in words of the tap
	// FIFOs feeding the window reader on the burst (row-granularity) datapath.
	// Zero means auto: the simulator sizes the taps to the analytic worst case
	// of the PE's fused layers (see TapWorstCaseWords). A declared depth below
	// the worst case deadlocks the row schedule; verify rule CND020 rejects
	// such configurations before anything runs.
	TapFIFODepth int
}

// Tap is one window access point (m, n) of the sliding window.
type Tap struct{ M, N int }

// Linear returns the access's linear offset in the padded row-major stream.
func (t Tap) Linear(paddedW int) int { return t.M*paddedW + t.N }

// BufferWords returns the total on-chip buffering of the chain: the sum of
// all inter-filter FIFO depths, i.e. the spatial distance between the first
// and the last access — only the elements between the two extreme accesses
// are ever buffered on-chip, the key saving of non-uniform partitioning.
func (c *FilterChain) BufferWords() int {
	n := 0
	for _, d := range c.FIFODepths {
		n += d
	}
	return n
}

// NewFilterChain builds the chain geometry for window size k over a padded
// input width paddedW.
func NewFilterChain(k, paddedW int) (*FilterChain, error) {
	if k < 1 {
		return nil, fmt.Errorf("dataflow: window size %d < 1", k)
	}
	if paddedW < k {
		return nil, fmt.Errorf("dataflow: padded width %d smaller than window %d", paddedW, k)
	}
	c := &FilterChain{Kernel: k, PaddedW: paddedW}
	// Lexicographic order of accesses is (0,0),(0,1),…,(k-1,k-1); the
	// pipeline instantiates them in inverse order so the chain head sees the
	// most recent element of the window.
	for m := k - 1; m >= 0; m-- {
		for n := k - 1; n >= 0; n-- {
			c.Taps = append(c.Taps, Tap{M: m, N: n})
		}
	}
	for i := 0; i+1 < len(c.Taps); i++ {
		d := c.Taps[i].Linear(paddedW) - c.Taps[i+1].Linear(paddedW)
		if d <= 0 {
			return nil, fmt.Errorf("dataflow: non-positive FIFO depth %d between taps %v and %v", d, c.Taps[i], c.Taps[i+1])
		}
		c.FIFODepths = append(c.FIFODepths, d)
	}
	return c, nil
}

// Spec is the complete structural description of an accelerator instance:
// the output of the core-logic "network creation" step and the input of the
// HLS models, the packaging flow and the functional simulator.
type Spec struct {
	Name    string
	Board   string
	FreqMHz float64

	Input nn.Shape
	PEs   []*PE

	// InterPEFIFODepth is the depth of the streaming FIFOs between adjacent
	// PEs (and between the datamover and the boundary PEs).
	InterPEFIFODepth int

	// WordBits is the fabric numeric width: 32 (float32, the default), or
	// 16/8 for the fixed-point quantized variants. At 8 bits the functional
	// simulator executes the packed int8 datapath natively (4 lanes per
	// 32-bit FIFO word, int32 accumulators, per-tensor requantization at PE
	// boundaries); at 16 bits it computes in float32 over grid-snapped
	// values. WordBits also drives the resource, bandwidth and power models.
	WordBits int

	// StrictLanes escalates the CND023 lane-packing rule from a warning to
	// an error: streamed-edge volumes that the lane count does not divide
	// are rejected instead of falling back to zero-padded tail lanes.
	StrictLanes bool
}

// Lanes returns the number of activation lanes packed into each 32-bit FIFO
// word: Int8Lanes on the packed int8 datapath, 1 everywhere else (the int16
// variant keeps the float-over-quantized-values execution, one element per
// word).
func (s *Spec) Lanes() int {
	if s.WordBits == 8 {
		return fifo.Int8Lanes
	}
	return 1
}

// FrameHeaderWords returns the control words that precede one image's
// payload on a streaming-session stream edge: the epoch frame header, plus
// the per-image scale word of the packed int8 frame layout. The verifier's
// CND024 interleaving rule uses it to bound two-epochs-in-flight occupancy.
func (s *Spec) FrameHeaderWords() int {
	if s.WordBits == 8 {
		return 2
	}
	return 1
}

// OutputShape returns the shape produced by the last PE.
func (s *Spec) OutputShape() nn.Shape {
	last := s.PEs[len(s.PEs)-1]
	return last.Layers[len(last.Layers)-1].OutShape
}

// NumLayers returns the number of logical layers mapped (including folded
// activations).
func (s *Spec) NumLayers() int {
	n := 0
	for _, pe := range s.PEs {
		n += len(pe.Layers)
		for _, l := range pe.Layers {
			if l.Activation != NoActivation {
				n++
			}
			if l.Normalize != NoActivation {
				n++
			}
		}
	}
	return n
}

// defaultInterPEFIFODepth is sized to hold a burst of output rows so
// adjacent PEs decouple; the resource model accounts for it.
const defaultInterPEFIFODepth = 512

// BuildSpec maps an IR network onto the accelerator template: resolves the
// layer→PE grouping, folds activations into their producing PE, sizes each
// features-extraction PE's filter chain (largest window / widest input among
// fused layers) and records the port parallelism.
func BuildSpec(ir *condorir.Network) (*Spec, error) {
	if err := ir.Validate(); err != nil {
		return nil, err
	}
	shapes, err := ir.Shapes()
	if err != nil {
		return nil, err
	}
	groups, err := ir.PEGroups()
	if err != nil {
		return nil, err
	}
	spec := &Spec{
		Name:    ir.Name,
		Board:   ir.Board,
		FreqMHz: ir.FrequencyMHz,
		Input:   shapes[0],

		InterPEFIFODepth: defaultInterPEFIFODepth,
		WordBits:         32,
	}
	for gi, group := range groups {
		pe := &PE{ID: fmt.Sprintf("pe%d", gi), Par: condorir.Parallelism{In: 1, Out: 1}}
		for _, li := range group {
			irl := &ir.Layers[li]
			kind, err := irl.Kind()
			if err != nil {
				return nil, err
			}
			switch {
			case kind.IsActivation():
				if len(pe.Layers) == 0 {
					return nil, fmt.Errorf("dataflow: activation %q has no preceding compute layer in its PE", irl.Name)
				}
				pe.Layers[len(pe.Layers)-1].Activation = kind
			case kind == nn.SoftMax || kind == nn.LogSoftMax:
				if len(pe.Layers) == 0 {
					return nil, fmt.Errorf("dataflow: normalisation %q has no preceding compute layer in its PE", irl.Name)
				}
				pe.Layers[len(pe.Layers)-1].Normalize = kind
			default:
				hw := LayerHW{
					Index:      li,
					Name:       irl.Name,
					Kind:       kind,
					Kernel:     irl.KernelSize,
					Stride:     maxInt(irl.Stride, 1),
					Pad:        irl.Pad,
					InShape:    shapes[li],
					OutShape:   shapes[li+1],
					Activation: NoActivation,
					Normalize:  NoActivation,
				}
				if kind == nn.Conv {
					algo, err := ParseConvAlgo(irl.Algorithm)
					if err != nil {
						return nil, fmt.Errorf("dataflow: layer %q: %w", irl.Name, err)
					}
					hw.ConvAlgo = algo
				}
				pe.Layers = append(pe.Layers, hw)
				// The PE port parallelism is the maximum requested by its
				// layers (a fused PE is built once, for its most demanding
				// member).
				p := irl.Parallelism.Normalize()
				if p.In > pe.Par.In {
					pe.Par.In = p.In
				}
				if p.Out > pe.Par.Out {
					pe.Par.Out = p.Out
				}
			}
		}
		if len(pe.Layers) == 0 {
			return nil, fmt.Errorf("dataflow: PE group %d contains no compute layer", gi)
		}
		if pe.IsFeatureExtraction() {
			// Size the memory subsystem for the largest window and the
			// widest padded input among the fused layers (Section 3.2).
			maxK, maxW := 0, 0
			for _, l := range pe.Layers {
				if l.Kernel > maxK {
					maxK = l.Kernel
				}
				if l.PaddedWidth() > maxW {
					maxW = l.PaddedWidth()
				}
			}
			pe.Chain, err = NewFilterChain(maxK, maxW)
			if err != nil {
				return nil, fmt.Errorf("dataflow: PE %s: %w", pe.ID, err)
			}
		}
		spec.PEs = append(spec.PEs, pe)
	}
	return spec, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
