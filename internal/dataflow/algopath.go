package dataflow

// This file implements the alternate convolution algorithms of the burst
// datapath: the im2col+GEMM lowering and the Winograd F(2,3) transform-
// domain convolution. Both ride the same FIFOs, frame protocol and tracing
// as the direct path in pe.go — only the intra-PE compute schedule changes.
//
// Contract:
//   - im2col_gemm (float32) is BIT-IDENTICAL to the direct path and to the
//     RunWords oracle: every output cell still accumulates its input
//     channels ci-major with the same ascending K²-tap order; the panel
//     and the register-tiled microkernel only reorder *independent* cells.
//   - winograd_f23 is bounded-error: the transform-domain rounding
//     deviation is bounded by RunStats.WinogradErrorBound, derived from
//     the per-PE output magnitudes the run itself records (the same
//     accounting pattern as the int8 path's QuantErrorBound).

import (
	"fmt"

	"condor/internal/nn"
)

// gemmPosTile is the output-position register-tile width of the GEMM
// microkernel: one weight load feeds this many accumulating positions.
const gemmPosTile = 4

// padChannelF copies one float channel map into the zero-padded scratch
// plane. With no padding the input slice is returned directly.
func padChannelF(buf *[]float32, l *LayerHW, chmap []float32) []float32 {
	if l.Pad == 0 {
		return chmap
	}
	ph, pw := l.PaddedHeight(), l.PaddedWidth()
	w := l.InShape.Width
	*buf = growSlice(*buf, ph*pw)
	padded := *buf
	clear(padded)
	for y := 0; y < l.InShape.Height; y++ {
		copy(padded[(y+l.Pad)*pw+l.Pad:], chmap[y*w:(y+1)*w])
	}
	return padded
}

// buildIm2ColPanel unrolls one padded channel plane into the tap-major
// im2col panel: row t = (m·K+n) holds the input element under tap (m,n) of
// every output position, so panel[t*outHW+pos] is the same value the direct
// path's window gather would deliver as win[t] at pos. For stride 1 every
// row is outH contiguous copies — the cheap gather that makes the lowering
// profitable.
func buildIm2ColPanel(panel, padded []float32, l *LayerHW) {
	k, stride, pw := l.Kernel, l.Stride, l.PaddedWidth()
	outH, outW := l.OutShape.Height, l.OutShape.Width
	outHW := outH * outW
	for m := 0; m < k; m++ {
		for n := 0; n < k; n++ {
			dst := panel[(m*k+n)*outHW:]
			for oy := 0; oy < outH; oy++ {
				src := padded[(oy*stride+m)*pw+n:]
				if stride == 1 {
					copy(dst[oy*outW:(oy+1)*outW], src[:outW])
				} else {
					for ox := 0; ox < outW; ox++ {
						dst[oy*outW+ox] = src[ox*stride]
					}
				}
			}
		}
	}
}

// runConvGEMM is the im2col+GEMM convolution schedule: each input channel's
// padded plane is unrolled once into the tap-major panel, then the
// register-tiled microkernel drives every output channel band over it. Per
// output cell the accumulation chain is identical to runConv — ci-major
// over input channels, ascending tap order within a channel — so float32
// results are bit-identical to the direct path and the RunWords oracle at
// every parallelism setting. Stats accounting mirrors runConv exactly.
func (x *peExec) runConvGEMM(l *LayerHW, st *peLayerState, cur, out []float32) error {
	c, f, k := l.InShape.Channels, l.OutShape.Channels, l.Kernel
	outHW := l.OutShape.Height * l.OutShape.Width
	inHW := l.InShape.Height * l.InShape.Width
	w := st.w
	if st.streamWords > 0 {
		x.dm.AccountWeightStream(st.streamWords)
	}
	x.partial = growSlice(x.partial, f*outHW)
	partial := x.partial
	clear(partial)
	kk := k * k
	x.panel = growSlice(x.panel, kk*outHW)
	panel := x.panel
	outBands := x.pe.Par.Normalize().Out
	for ci := 0; ci < c; ci++ {
		padded := padChannelF(&x.padBuf, l, cur[ci*inHW:(ci+1)*inHW])
		buildIm2ColPanel(panel, padded, l)
		x.pool.bands(f, outBands, func(_, lo, hi int) {
			for fi := lo; fi < hi; fi++ {
				base := (fi*c + ci) * kk
				acc := partial[fi*outHW : (fi+1)*outHW]
				pos := 0
				for ; pos+gemmPosTile <= outHW; pos += gemmPosTile {
					a0, a1, a2, a3 := acc[pos], acc[pos+1], acc[pos+2], acc[pos+3]
					for t := 0; t < kk; t++ {
						wv := w[base+t]
						row := panel[t*outHW+pos : t*outHW+pos+gemmPosTile]
						a0 += wv * row[0]
						a1 += wv * row[1]
						a2 += wv * row[2]
						a3 += wv * row[3]
					}
					acc[pos], acc[pos+1], acc[pos+2], acc[pos+3] = a0, a1, a2, a3
				}
				for ; pos < outHW; pos++ {
					a := acc[pos]
					for t := 0; t < kk; t++ {
						a += w[base+t] * panel[t*outHW+pos]
					}
					acc[pos] = a
				}
			}
		})
		x.stats.WindowsRead += int64(outHW)
		x.stats.MACs += int64(f) * int64(kk) * int64(outHW)
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	x.convBiasActTail(l, st.b, partial, out, f, outHW, outBands)
	return nil
}

// convBiasActTail applies the pointwise bias + folded activation stage of a
// conv layer, banded over output channels — the same tail as runConv.
func (x *peExec) convBiasActTail(l *LayerHW, b, partial, out []float32, f, outHW, outBands int) {
	x.pool.bands(f, outBands, func(_, lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			var bias float32
			if len(b) > 0 {
				bias = b[fi]
			}
			for pos := 0; pos < outHW; pos++ {
				out[fi*outHW+pos] = applyActivation(l.Activation, partial[fi*outHW+pos]+bias)
			}
		}
	})
}

// --- Winograd F(2,3) ---
//
// F(2×2, 3×3): each 2×2 output tile is computed from a 4×4 input tile as
// Y = Aᵀ[(G g Gᵀ) ⊙ (Bᵀ d B)]A with the standard small-integer transforms
//
//	G  = [1 0 0; ½ ½ ½; ½ −½ ½; 0 0 1]          (4×3, weights)
//	Bᵀ = [1 0 −1 0; 0 1 1 0; 0 −1 1 0; 0 1 0 −1] (4×4, input)
//	Aᵀ = [1 1 1 0; 0 1 −1 −1]                    (2×4, inverse)
//
// 16 multiplies produce 4 outputs where the direct path spends 36 — the
// 2.25× arithmetic reduction the cycle/resource models encode.

// winogradTransformWeights computes U = G g Gᵀ for every (filter, channel)
// 3×3 kernel of a flat OIHW weight slice, returning f·c·16 transformed
// words in (fi·c+ci)·16 layout.
func winogradTransformWeights(w []float32, c, f int) []float32 {
	out := make([]float32, f*c*16)
	for fi := 0; fi < f; fi++ {
		for ci := 0; ci < c; ci++ {
			g := w[(fi*c+ci)*9 : (fi*c+ci)*9+9]
			u := out[(fi*c+ci)*16 : (fi*c+ci)*16+16]
			// t = G g  (4×3)
			var t [12]float32
			for col := 0; col < 3; col++ {
				g0, g1, g2 := g[col], g[3+col], g[6+col]
				t[col] = g0
				t[3+col] = 0.5 * (g0 + g1 + g2)
				t[6+col] = 0.5 * (g0 - g1 + g2)
				t[9+col] = g2
			}
			// u = t Gᵀ  (4×4)
			for row := 0; row < 4; row++ {
				t0, t1, t2 := t[row*3], t[row*3+1], t[row*3+2]
				u[row*4] = t0
				u[row*4+1] = 0.5 * (t0 + t1 + t2)
				u[row*4+2] = 0.5 * (t0 - t1 + t2)
				u[row*4+3] = t2
			}
		}
	}
	return out
}

// winogradInputTransform computes V = Bᵀ d B for one 4×4 input tile d.
func winogradInputTransform(d *[16]float32, v []float32) {
	// t = Bᵀ d  (4×4)
	var t [16]float32
	for col := 0; col < 4; col++ {
		d0, d1, d2, d3 := d[col], d[4+col], d[8+col], d[12+col]
		t[col] = d0 - d2
		t[4+col] = d1 + d2
		t[8+col] = d2 - d1
		t[12+col] = d1 - d3
	}
	// v = t B  (4×4); B's columns are Bᵀ's rows.
	for row := 0; row < 4; row++ {
		t0, t1, t2, t3 := t[row*4], t[row*4+1], t[row*4+2], t[row*4+3]
		v[row*4] = t0 - t2
		v[row*4+1] = t1 + t2
		v[row*4+2] = t2 - t1
		v[row*4+3] = t1 - t3
	}
}

// winogradInverse computes Y = Aᵀ m A for one transform-domain 4×4 tile,
// returning the 2×2 output tile.
func winogradInverse(m []float32) (y [4]float32) {
	// t = Aᵀ m  (2×4)
	var t [8]float32
	for col := 0; col < 4; col++ {
		m0, m1, m2, m3 := m[col], m[4+col], m[8+col], m[12+col]
		t[col] = m0 + m1 + m2
		t[4+col] = m1 - m2 - m3
	}
	// y = t A  (2×2)
	for row := 0; row < 2; row++ {
		t0, t1, t2, t3 := t[row*4], t[row*4+1], t[row*4+2], t[row*4+3]
		y[row*2] = t0 + t1 + t2
		y[row*2+1] = t1 - t2 - t3
	}
	return y
}

// runConvWinograd is the F(2,3) convolution schedule: per input channel the
// padded plane is cut into overlapping 4×4 tiles, each transformed once
// (V = BᵀdB) and multiplied element-wise against the pre-transformed
// weights, accumulating in the transform domain; after the last input
// channel the inverse transform produces the 2×2 output tiles, then the
// shared bias/activation tail runs. Banding shards output channels, never
// an accumulation chain, so results are deterministic at every parallelism
// setting (though not bit-identical to the direct path — see the file
// comment for the error contract).
func (x *peExec) runConvWinograd(l *LayerHW, st *peLayerState, cur, out []float32) error {
	c, f := l.InShape.Channels, l.OutShape.Channels
	outH, outW := l.OutShape.Height, l.OutShape.Width
	outHW := outH * outW
	inHW := l.InShape.Height * l.InShape.Width
	if !WinogradOK(l.Kernel, l.Stride, l.OutShape) {
		return fmt.Errorf("winograd_f23: layer %q does not qualify (k=%d s=%d out %dx%d)",
			l.Name, l.Kernel, l.Stride, outH, outW)
	}
	if st.streamWords > 0 {
		x.dm.AccountWeightStream(st.streamWords)
	}
	tH, tW := outH/2, outW/2
	tiles := tH * tW
	pw := l.PaddedWidth()
	x.vBuf = growSlice(x.vBuf, tiles*16)
	x.mBuf = growSlice(x.mBuf, f*tiles*16)
	vBuf, mBuf := x.vBuf, x.mBuf
	clear(mBuf)
	outBands := x.pe.Par.Normalize().Out
	for ci := 0; ci < c; ci++ {
		padded := padChannelF(&x.padBuf, l, cur[ci*inHW:(ci+1)*inHW])
		// Transform every input tile once per channel pass.
		var d [16]float32
		for ty := 0; ty < tH; ty++ {
			for tx := 0; tx < tW; tx++ {
				for r := 0; r < 4; r++ {
					copy(d[r*4:r*4+4], padded[(2*ty+r)*pw+2*tx:(2*ty+r)*pw+2*tx+4])
				}
				winogradInputTransform(&d, vBuf[(ty*tW+tx)*16:])
			}
		}
		// Element-wise multiply-accumulate in the transform domain.
		x.pool.bands(f, outBands, func(_, lo, hi int) {
			for fi := lo; fi < hi; fi++ {
				u := st.wg[(fi*c+ci)*16 : (fi*c+ci)*16+16]
				for ti := 0; ti < tiles; ti++ {
					m := mBuf[(fi*tiles+ti)*16 : (fi*tiles+ti)*16+16]
					v := vBuf[ti*16 : ti*16+16]
					for j := 0; j < 16; j++ {
						m[j] += u[j] * v[j]
					}
				}
			}
		})
		x.stats.WindowsRead += int64(tiles)
		x.stats.MACs += int64(f) * 16 * int64(tiles)
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	// Inverse transform into the partial buffer, tracking the output
	// magnitude that parameterises the error bound, then the shared tail.
	x.partial = growSlice(x.partial, f*outHW)
	partial := x.partial
	mags := make([]float64, outBands)
	x.pool.bands(f, outBands, func(band, lo, hi int) {
		mag := mags[band]
		for fi := lo; fi < hi; fi++ {
			for ti := 0; ti < tiles; ti++ {
				y := winogradInverse(mBuf[(fi*tiles+ti)*16 : (fi*tiles+ti)*16+16])
				ty, tx := ti/tW, ti%tW
				base := fi*outHW + (2*ty)*outW + 2*tx
				partial[base], partial[base+1] = y[0], y[1]
				partial[base+outW], partial[base+outW+1] = y[2], y[3]
				for _, v := range y {
					if a := abs64(float64(v)); a > mag {
						mag = a
					}
				}
			}
		}
		mags[band] = mag
	})
	for _, m := range mags {
		if m > x.stats.MaxWinogradMag {
			x.stats.MaxWinogradMag = m
		}
	}
	x.convBiasActTail(l, st.b, partial, out, f, outHW, outBands)
	return nil
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// winogradWeightStore pre-transforms the weights of every winograd_f23 conv
// layer in the spec, keyed by layer name. Built at Instantiate time, after
// the weight store is sealed, and shared read-only across CU clones — the
// same lifecycle as the int8 code store. Returns nil when no layer uses the
// algorithm.
func winogradWeightStore(spec *Spec, dm *Datamover) (map[string][]float32, error) {
	var store map[string][]float32
	for _, pe := range spec.PEs {
		for _, l := range pe.Layers {
			if l.Kind != nn.Conv || l.Algo() != AlgoWinograd {
				continue
			}
			if !WinogradOK(l.Kernel, l.Stride, l.OutShape) {
				return nil, fmt.Errorf("dataflow: layer %q: winograd_f23 requires a 3×3/stride-1 kernel and 2×2-tile-aligned output, got k=%d s=%d out %dx%d",
					l.Name, l.Kernel, l.Stride, l.OutShape.Height, l.OutShape.Width)
			}
			w, _, err := dm.WeightsRef(l.Name)
			if err != nil {
				return nil, err
			}
			if store == nil {
				store = make(map[string][]float32)
			}
			store[l.Name] = winogradTransformWeights(w, l.InShape.Channels, l.OutShape.Channels)
		}
	}
	return store, nil
}
