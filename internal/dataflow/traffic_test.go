package dataflow

import (
	"testing"

	"condor/internal/condorir"
	"condor/internal/nn"
)

// TestDDRTrafficMatchesFunctionalAccounting validates the analytic traffic
// model against the datamover's run-time byte counters.
func TestDDRTrafficMatchesFunctionalAccounting(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*condorir.Network, *Spec)
	}{
		{"default", func(*condorir.Network, *Spec) {}},
		{"streamed-weights", func(_ *condorir.Network, s *Spec) {
			for _, pe := range s.PEs {
				pe.WeightsOnChip = false
			}
		}},
		{"cached-weights", func(_ *condorir.Network, s *Spec) {
			for _, pe := range s.PEs {
				pe.WeightsOnChip = true
			}
		}},
		{"spilled-partials", func(_ *condorir.Network, s *Spec) {
			for _, pe := range s.PEs {
				pe.PartialsOnChip = false
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			layers := tinyLeNetLayers()
			ir, ws, _ := buildIR(t, "traffic-"+tc.name, condorir.InputShape{Channels: 1, Height: 12, Width: 12}, layers, 3)
			spec, err := BuildSpec(ir)
			if err != nil {
				t.Fatal(err)
			}
			// Default: partials on-chip, weights streamed (zero values).
			for _, pe := range spec.PEs {
				pe.PartialsOnChip = true
			}
			tc.mut(ir, spec)

			acc, err := Instantiate(spec, ws)
			if err != nil {
				t.Fatal(err)
			}
			batch := 3
			imgs := randomImages(batch, nn.Shape{Channels: 1, Height: 12, Width: 12}, 4)
			_, stats, err := acc.Run(imgs)
			if err != nil {
				t.Fatal(err)
			}
			measured := stats.DRAM.BytesRead + stats.DRAM.BytesWritten
			want := spec.OnChipLoadBytes() + int64(batch)*spec.DDRBytesPerImage()
			if measured != want {
				t.Fatalf("measured %d bytes, analytic model says %d", measured, want)
			}
		})
	}
}

func TestDDRTrafficWithFusion(t *testing.T) {
	layers := tinyLeNetLayers()
	layers[0].PEGroup = 0
	layers[1].PEGroup = 0
	ir, ws, _ := buildIR(t, "traffic-fused", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, layers, 5)
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range spec.PEs {
		pe.PartialsOnChip = true
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	imgs := randomImages(2, nn.Shape{Channels: 1, Height: 12, Width: 12}, 6)
	_, stats, err := acc.Run(imgs)
	if err != nil {
		t.Fatal(err)
	}
	measured := stats.DRAM.BytesRead + stats.DRAM.BytesWritten
	want := spec.OnChipLoadBytes() + 2*spec.DDRBytesPerImage()
	if measured != want {
		t.Fatalf("fused: measured %d bytes, analytic %d", measured, want)
	}
}

func TestQuantizedTrafficScalesWithWordBytes(t *testing.T) {
	layers := tinyLeNetLayers()
	ir, _, _ := buildIR(t, "traffic-q", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, layers, 7)
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	full := spec.DDRBytesPerImage()
	spec.WordBits = 16
	half := spec.DDRBytesPerImage()
	// Everything except the 4-byte partial spill scales by the word size;
	// with partials on-chip the traffic halves exactly.
	for _, pe := range spec.PEs {
		pe.PartialsOnChip = true
	}
	spec.WordBits = 32
	full = spec.DDRBytesPerImage()
	spec.WordBits = 16
	half = spec.DDRBytesPerImage()
	if 2*half != full {
		t.Fatalf("int16 traffic %d should be half of %d", half, full)
	}
}
