package dataflow

import (
	"fmt"
	"sync"

	"condor/internal/fifo"
	"condor/internal/obs"
	"condor/internal/quant"
	"condor/internal/tensor"
)

// Session is a resident streaming instance of the fabric: every element
// (feeder, one goroutine per PE, collector) stays alive across batches, and
// consecutive images stream back-to-back through the layer pipeline without
// draining between them. Each image travels as an epoch-tagged frame
// (fifo.PushFrameHeader) so elements detect interleaving bugs instead of
// silently mixing images; on the packed int8 datapath the epoch header
// precedes the per-image scale word of the PR-8 frame layout.
//
// RunBatch feeds a batch into the running pipeline and blocks until every
// element has retired it; Close ends the stream, joins every goroutine and
// reports any deferred failure. Accelerator.Run is OpenSession + RunBatch +
// Close, so one-shot callers see exactly the old behavior; throughput
// callers hold a session open and amortize the fabric's fill/drain and
// setup (executor prepare, FIFO and scratch allocation, goroutine spawn)
// over the whole stream.
type Session struct {
	acc    *Accelerator
	packed bool
	fifos  []*fifo.FIFO

	feedQ    chan *tensor.Tensor
	collectQ chan *collectJob
	quit     chan struct{} // closed on first element failure

	// mu guards the completion barrier and the failure latch. Elements
	// increment their done counter after finishing an image; RunBatch waits
	// until the slowest element catches up, which also orders every
	// element's stats writes before the snapshot RunBatch returns.
	mu   sync.Mutex
	cond *sync.Cond
	done []int // images retired per element: [feeder, PEs..., collector]
	err  error // sticky first failure

	fed        int // images fed over the session (runMu-guarded)
	peStats    []PEStats
	inputScale float64
	outShape   [3]int

	runMu  sync.Mutex // serializes RunBatch and Close
	closed bool       // runMu-guarded
	wg     sync.WaitGroup

	// testExpectEpoch, when set by tests, perturbs the epoch the collector
	// expects for a given image sequence number — the hook the mid-batch
	// error-cascade test uses to prove teardown leaks no goroutine.
	testExpectEpoch func(seq int, epoch uint16) uint16
}

// collectJob asks the collector to retire len(outs) frames into outs.
type collectJob struct {
	outs []*tensor.Tensor
}

// OpenSession brings the fabric up as a resident streaming pipeline with no
// images in flight. The caller must Close the session to join its
// goroutines; errors detected mid-stream surface on the blocked RunBatch
// and again on Close.
func (a *Accelerator) OpenSession() *Session {
	spec := a.Spec
	s := &Session{
		acc:      a,
		packed:   spec.WordBits == 8,
		feedQ:    make(chan *tensor.Tensor),
		collectQ: make(chan *collectJob, 1),
		quit:     make(chan struct{}),
		done:     make([]int, len(spec.PEs)+2),
		peStats:  make([]PEStats, len(spec.PEs)),
	}
	s.cond = sync.NewCond(&s.mu)
	out := spec.OutputShape()
	s.outShape = [3]int{out.Channels, out.Height, out.Width}

	s.fifos = make([]*fifo.FIFO, len(spec.PEs)+1)
	for i := range s.fifos {
		s.fifos[i] = fifo.New(fmt.Sprintf("stream%d", i), spec.InterPEFIFODepth)
	}

	// One trace track per element, created up front so each goroutine owns
	// its track exclusively (single-writer, no locking on the record path).
	var feedTrack, sinkTrack *obs.Track
	peTracks := make([]*obs.Track, len(spec.PEs))
	if a.tracer != nil {
		feedTrack = a.tracer.Track(a.trackPrefix + "feeder")
		for i, pe := range spec.PEs {
			peTracks[i] = a.tracer.Track(a.trackPrefix + pe.ID)
		}
		sinkTrack = a.tracer.Track(a.trackPrefix + "collector")
	}

	s.wg.Add(1)
	go s.feeder(feedTrack)

	for i, pe := range spec.PEs {
		s.peStats[i].ID = pe.ID
		elem := 1 + i
		var exec interface{ runStream() error }
		if s.packed {
			exec = &peExecInt8{pe: pe, dm: a.dm, qw: a.qweights, wg: a.wgweights, in: s.fifos[i], out: s.fifos[i+1],
				stats: &s.peStats[i], track: peTracks[i], onImage: func() { s.imageDone(elem) }, onErr: s.fail}
		} else {
			exec = &peExec{pe: pe, dm: a.dm, wg: a.wgweights, in: s.fifos[i], out: s.fifos[i+1],
				stats: &s.peStats[i], track: peTracks[i], onImage: func() { s.imageDone(elem) }, onErr: s.fail}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := exec.runStream(); err != nil {
				s.fail(err)
			}
		}()
	}

	s.wg.Add(1)
	go s.collector(sinkTrack)
	return s
}

// imageDone advances one element's retirement counter and wakes the
// RunBatch barrier. Because the increment happens under mu after the
// element's stats writes for that image, a woken RunBatch observes every
// contributing write.
func (s *Session) imageDone(elem int) {
	s.mu.Lock()
	s.done[elem]++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fail latches the first element failure and tells the fabric to wind down:
// the feeder closes the head FIFO on seeing quit, which cascades
// end-of-stream through every resident element.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
		close(s.quit)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// failed reports the sticky error, if any.
func (s *Session) failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// feeder streams every queued image from on-board memory into the head
// FIFO, one epoch-tagged frame per image. On the packed datapath it is the
// fabric's only float→int8 quantization point. It owns closing the head
// FIFO — on a clean Close (feedQ closed) and on failure (quit closed) —
// which is what guarantees every downstream drain terminates.
func (s *Session) feeder(track *obs.Track) {
	defer s.wg.Done()
	in := s.acc.Spec.Input
	head := s.fifos[0]
	var codes []int8
	var words []fifo.Word
	if s.packed {
		vol := in.Volume()
		codes = make([]int8, vol)
		words = make([]fifo.Word, fifo.PackedWords(vol))
	}
	var epoch uint16
	for {
		// Prefer quit so a failed fabric stops consuming the queue promptly.
		select {
		case <-s.quit:
			head.Close()
			return
		default:
		}
		select {
		case <-s.quit:
			head.Close()
			return
		case img, ok := <-s.feedQ:
			if !ok {
				head.Close()
				return
			}
			sid := 0
			if track != nil {
				sid = track.Begin("feed", 0)
			}
			head.PushFrameHeader(epoch)
			if s.packed {
				scale := frameScale(img.Data())
				quant.QuantizeInto(codes, img.Data(), scale)
				s.acc.dm.AccountReadBytes(int64(img.Len()))
				pushInt8Frame(head, words, codes, scale)
				s.mu.Lock()
				if scale > s.inputScale {
					s.inputScale = scale
				}
				s.mu.Unlock()
			} else {
				s.acc.dm.AccountInput(int64(img.Len()))
				head.PushSlice(img.Data())
			}
			if track != nil {
				track.AddWords(sid, int64(img.Len()))
				track.End(sid, 0)
			}
			epoch++
			s.imageDone(0)
		}
	}
}

// collector retires output frames from the tail FIFO into the tensors of
// the posted jobs, validating the epoch sequence and dequantizing on the
// packed datapath. A mid-stream failure drains the tail synchronously so no
// upstream element can block on a full FIFO forever.
func (s *Session) collector(track *obs.Track) {
	defer s.wg.Done()
	sink := s.fifos[len(s.fifos)-1]
	elem := len(s.done) - 1
	var codes []int8
	var words []fifo.Word
	vol := s.outShape[0] * s.outShape[1] * s.outShape[2]
	if s.packed {
		codes = make([]int8, vol)
		words = make([]fifo.Word, fifo.PackedWords(vol))
	}
	seq := 0 // images retired over the session; low 16 bits = expected epoch
	for {
		job, ok := <-s.collectQ
		if !ok {
			// Clean shutdown: anything left in the tail stream is a shape
			// accounting bug. The blocking Pop terminates because Close has
			// already ended the feed, so end-of-stream cascades here.
			if _, ok := sink.Pop(); ok {
				s.fail(fmt.Errorf("dataflow: accelerator produced more output words than %d images require", seq))
				sink.Drain()
			}
			return
		}
		for b := range job.outs {
			if err := s.collectImage(sink, track, job, b, seq, codes, words); err != nil {
				s.fail(err)
				sink.Drain()
				return
			}
			seq++
			s.imageDone(elem)
		}
	}
}

// collectImage retires one output frame into job.outs[b].
func (s *Session) collectImage(sink *fifo.FIFO, track *obs.Track, job *collectJob, b, seq int, codes []int8, words []fifo.Word) error {
	want := uint16(seq)
	if s.testExpectEpoch != nil {
		want = s.testExpectEpoch(seq, want)
	}
	epoch, ok, err := sink.PopFrameHeader()
	if !ok {
		return fmt.Errorf("dataflow: output stream ended before image %d", seq)
	}
	if err != nil {
		return fmt.Errorf("dataflow: collector: %w", err)
	}
	if epoch != want {
		return fmt.Errorf("dataflow: collector: frame epoch %d arrived, expected %d", epoch, want)
	}
	t := tensor.New(s.outShape[0], s.outShape[1], s.outShape[2])
	data := t.Data()
	sid := 0
	if track != nil {
		sid = track.Begin("collect", 0)
	}
	if s.packed {
		// The collector is the fabric's only int8→float point: it unpacks
		// the last PE's frame and dequantizes with the frame's scale before
		// the output leaves the fabric.
		scale, err := popInt8Frame(sink, words, codes)
		if err != nil {
			return fmt.Errorf("dataflow: image %d: %w", seq, err)
		}
		quant.DequantizeInto(data, codes, scale)
		s.acc.dm.AccountWriteBytes(int64(len(data)))
	} else {
		if n := sink.PopInto(data); n < len(data) {
			return fmt.Errorf("dataflow: output stream ended at image %d element %d", seq, n)
		}
		s.acc.dm.AccountOutput(int64(len(data)))
	}
	if track != nil {
		track.AddWords(sid, int64(len(data)))
		track.End(sid, 0)
	}
	job.outs[b] = t
	return nil
}

// RunBatch streams a batch through the resident pipeline and blocks until
// every element has retired it, returning the outputs in input order. The
// returned stats are cumulative over the session (Images counts every image
// fed so far; DRAM counters are cumulative over the accelerator, exactly as
// Accelerator.Run reports them), so the final RunBatch of a session is
// comparable against one oracle run over the same image sequence. The
// session survives shape-validation errors; any failure detected inside the
// fabric is fatal to the session and re-reported by Close.
func (s *Session) RunBatch(batch []*tensor.Tensor) ([]*tensor.Tensor, *RunStats, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.closed {
		return nil, nil, fmt.Errorf("dataflow: RunBatch on a closed session")
	}
	if err := s.failed(); err != nil {
		return nil, nil, err
	}
	if len(batch) == 0 {
		return nil, &RunStats{}, nil
	}
	in := s.acc.Spec.Input
	for i, img := range batch {
		sh := img.Shape()
		if len(sh) != 3 || sh[0] != in.Channels || sh[1] != in.Height || sh[2] != in.Width {
			return nil, nil, fmt.Errorf("dataflow: image %d has shape %v, accelerator input is %v", i, sh, in)
		}
	}

	outs := make([]*tensor.Tensor, len(batch))
	select {
	case s.collectQ <- &collectJob{outs: outs}:
	case <-s.quit:
		return nil, nil, s.failed()
	}
feed:
	for _, img := range batch {
		select {
		case s.feedQ <- img:
		case <-s.quit:
			break feed // the barrier below reports the failure
		}
	}
	s.fed += len(batch)
	target := s.fed

	s.mu.Lock()
	for s.minDoneLocked() < target && s.err == nil {
		s.cond.Wait()
	}
	err := s.err
	s.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	return outs, s.snapshotStats(), nil
}

// minDoneLocked returns the slowest element's retirement count.
func (s *Session) minDoneLocked() int {
	min := s.done[0]
	for _, d := range s.done[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// snapshotStats assembles the session-cumulative RunStats. Callers
// guarantee quiescence (the RunBatch barrier or the Close join).
func (s *Session) snapshotStats() *RunStats {
	stats := &RunStats{Images: s.fed, PEs: make([]PEStats, len(s.peStats))}
	copy(stats.PEs, s.peStats)
	stats.DRAM = s.acc.dm.Stats()
	s.mu.Lock()
	stats.InputScale = s.inputScale
	s.mu.Unlock()
	for _, f := range s.fifos {
		stats.Streams = append(stats.Streams, f.Stats())
	}
	return stats
}

// Stats returns the session-cumulative RunStats without feeding anything.
// Only meaningful between RunBatch calls (no images in flight).
func (s *Session) Stats() *RunStats {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.snapshotStats()
}

// Close ends the stream: the feeder closes the head FIFO, end-of-stream
// cascades through every PE to the collector, and every session goroutine
// joins before Close returns. A failure latched at any point in the
// session's life — including surplus output words discovered during the
// final drain — is returned. Closing twice returns the latched error again.
func (s *Session) Close() error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.closed {
		return s.failed()
	}
	s.closed = true
	close(s.feedQ)
	close(s.collectQ)
	s.wg.Wait()
	return s.failed()
}
