package dataflow

import (
	"fmt"
	"strings"
)

// DOT renders the accelerator netlist as a Graphviz document — the view
// Vivado IP Integrator would show: the datamover, the chain of PEs joined
// by streaming FIFOs, and inside every features-extraction PE its memory
// subsystem (the filters in lexicographically inverse order with the reuse
// FIFO depths on the edges, as in the paper's Figure 4).
func (s *Spec) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", "condor_"+sanitizeID(s.Name))
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	sb.WriteString("  dm [label=\"datamover\\n(DDR)\", shape=component];\n")

	prev := "dm"
	for _, pe := range s.PEs {
		id := sanitizeID(pe.ID)
		names := make([]string, len(pe.Layers))
		for i, l := range pe.Layers {
			names[i] = l.Name
		}
		label := fmt.Sprintf("%s\\n%s\\nin=%d out=%d", pe.ID, strings.Join(names, "+"), pe.Par.Normalize().In, pe.Par.Normalize().Out)
		if pe.Chain != nil {
			fmt.Fprintf(&sb, "  subgraph cluster_%s {\n    label=\"%s memory subsystem (K=%d)\";\n", id, pe.ID, pe.Chain.Kernel)
			for i, tap := range pe.Chain.Taps {
				fmt.Fprintf(&sb, "    %s_f%d [label=\"filter(%d,%d)\"];\n", id, i, tap.M, tap.N)
			}
			for i, d := range pe.Chain.FIFODepths {
				fmt.Fprintf(&sb, "    %s_f%d -> %s_f%d [label=\"fifo[%d]\"];\n", id, i, id, i+1, d)
			}
			fmt.Fprintf(&sb, "    %s_pe [label=\"%s\", shape=box3d];\n", id, label)
			for i := range pe.Chain.Taps {
				if pe.Chain.Taps[i].M < chainActiveK(pe) && pe.Chain.Taps[i].N < chainActiveK(pe) {
					fmt.Fprintf(&sb, "    %s_f%d -> %s_pe [style=dashed];\n", id, i, id)
				}
			}
			sb.WriteString("  }\n")
			fmt.Fprintf(&sb, "  %s -> %s_f0 [label=\"stream\"];\n", prev, id)
			prev = id + "_pe"
		} else {
			fmt.Fprintf(&sb, "  %s_pe [label=\"%s\", shape=box3d];\n", id, label)
			fmt.Fprintf(&sb, "  %s -> %s_pe [label=\"stream\"];\n", prev, id)
			prev = id + "_pe"
		}
		fmt.Fprintf(&sb, "  dm -> %s_pe [label=\"weights\", style=dotted];\n", sanitizeID(pe.ID))
	}
	fmt.Fprintf(&sb, "  %s -> dm [label=\"output\"];\n", prev)
	sb.WriteString("}\n")
	return sb.String()
}

// chainActiveK is the first layer's window — the taps drawn as feeding the
// PE in the default (non-multiplexed) view.
func chainActiveK(pe *PE) int {
	if len(pe.Layers) == 0 {
		return 0
	}
	return pe.Layers[0].Kernel
}

func sanitizeID(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteRune('_')
		}
	}
	return sb.String()
}
