package dataflow

import (
	"fmt"
	"math"

	"condor/internal/fifo"
	"condor/internal/nn"
	"condor/internal/obs"
	"condor/internal/quant"
)

// This file is the packed int8 datapath: the fabric variant selected by
// Spec.WordBits == 8, where every FIFO word carries fifo.Int8Lanes quantized
// activation lanes. Each stream edge frames one image as a single float32
// scale-header word followed by PackedWords(volume) payload words; PEs unpack
// into int8, run conv/FC MACs in widened int32 accumulators, dequantize once
// per layer to fold bias/activation/normalisation in float, and requantize
// with a fresh symmetric per-tensor scale at the PE boundary. Only the feeder
// quantizes float inputs and only the collector dequantizes back — in
// between, activations exist purely as packed lanes, which is what shrinks
// the stream traversal cycles and DDR bytes by the lane factor.
//
// Unlike the float paths, results are not bit-identical to the oracle: the
// contract is bounded error, with the admissible deviation derived from the
// per-tensor scales recorded in RunStats (InputScale, MaxRequantScale). See
// quant_equiv_test.go.

// frameScale rounds a per-tensor scale to float32 before anything is
// quantized with it, so the exact value a header word can transport is also
// the value the codes were produced with.
func frameScale(data []float32) float64 {
	return float64(float32(quant.TensorScale(data, quant.Int8)))
}

// int8LayerWeights is one layer's weights pre-quantized onto the symmetric
// int8 grid. Built once per Instantiate (after the store seals) and shared
// read-only by every compute unit and every run, so batches never pay the
// weight-calibration scan again.
type int8LayerWeights struct {
	w      []int8
	wScale float64
	b      []float32
}

// quantizeWeightStore derives the int8 weight codes for every compute layer
// of a packed spec from the sealed datamover store.
func quantizeWeightStore(spec *Spec, dm *Datamover) (map[string]int8LayerWeights, error) {
	out := make(map[string]int8LayerWeights)
	for _, pe := range spec.PEs {
		for i := range pe.Layers {
			l := &pe.Layers[i]
			if l.Kind != nn.Conv && l.Kind != nn.FullyConnected {
				continue
			}
			w, b, err := dm.WeightsRef(l.Name)
			if err != nil {
				return nil, fmt.Errorf("dataflow: layer %q: %w", l.Name, err)
			}
			e := int8LayerWeights{wScale: frameScale(w), b: b}
			e.w = make([]int8, len(w))
			quant.QuantizeInto(e.w, w, e.wScale)
			out[l.Name] = e
		}
	}
	return out, nil
}

func growInt8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// pushInt8Frame sends one image's codes downstream: the scale header, then
// the packed payload.
func pushInt8Frame(f *fifo.FIFO, words []fifo.Word, codes []int8, scale float64) {
	f.Push(fifo.Word(scale))
	fifo.PackInt8(words, codes)
	f.PushPacked(words[:fifo.PackedWords(len(codes))], int64(len(codes)))
}

// popInt8Frame receives one image's codes: header word, then payload.
func popInt8Frame(f *fifo.FIFO, words []fifo.Word, codes []int8) (float64, error) {
	sw, ok := f.Pop()
	if !ok {
		return 0, fmt.Errorf("input stream ended before the scale header")
	}
	need := fifo.PackedWords(len(codes))
	if n := f.PopPackedInto(words[:need], int64(len(codes))); n < need {
		return 0, fmt.Errorf("input stream ended after %d of %d packed words", n, need)
	}
	fifo.UnpackInt8(codes, words)
	return float64(sw), nil
}

// peExecInt8 executes one PE over a batch on the packed datapath. The
// schedule (channel passes, output banding on the worker pool, fused-layer
// handoffs) mirrors peExec; the arithmetic is int8×int8→int32 with one
// dequantize/requantize per layer boundary. Windows are read by direct
// indexing into a zero-padded channel map rather than through the filter
// chain: the chain's word-granularity simulation is a float-path fidelity
// device, while the packed datapath models its stream traversal through
// LayerCyclesAt and keeps the host loop tight — that hot-loop tightness is
// where the measured (not just modeled) int8 speedup comes from.
type peExecInt8 struct {
	pe    *PE
	dm    *Datamover
	qw    map[string]int8LayerWeights // Instantiate-time weight codes (nil → quantize in prepare)
	wg    map[string][]float32        // Winograd-transformed float weights (winograd_f23 layers)
	in    *fifo.FIFO
	out   *fifo.FIFO
	stats *PEStats
	track *obs.Track // nil when tracing is off

	// Session hooks, same contract as peExec: onImage advances the RunBatch
	// barrier, onErr latches a failure before the input drain starts.
	onImage func()
	onErr   func(error)

	pool   *workerPool
	layers []peLayerInt8

	// Scratch reused across layers and images.
	curCodes []int8
	nxtCodes []int8
	floatBuf []float32
	partial  []int32
	padBuf   []int8
	wordBuf  []fifo.Word
	panel    []int8    // im2col panel (GEMM mode), K² tap-major rows
	padF     []float32 // dequantized padded channel plane (Winograd mode)
	vBuf     []float32 // Winograd transformed input tiles
	mBuf     []float32 // Winograd transform-domain accumulators
}

// peLayerInt8 is one fused layer's batch-resolved state: weight codes on the
// symmetric int8 grid plus their scale, and the float bias folded at
// dequantization time.
type peLayerInt8 struct {
	w           []int8
	wScale      float64
	b           []float32
	wg          []float32 // Winograd-transformed float weights (winograd_f23 layers only)
	streamBytes int64     // weight+bias bytes re-read from DDR per image (0 when on-chip)
}

func (x *peExecInt8) prepare() error {
	x.layers = make([]peLayerInt8, len(x.pe.Layers))
	for li := range x.pe.Layers {
		l := &x.pe.Layers[li]
		st := &x.layers[li]
		if l.Kind != nn.Conv && l.Kind != nn.FullyConnected {
			continue
		}
		if e, ok := x.qw[l.Name]; ok {
			st.w, st.wScale, st.b = e.w, e.wScale, e.b
		} else {
			// Spec switched to WordBits==8 after Instantiate: derive the
			// codes here (the slow path the Instantiate-time cache avoids).
			w, b, err := x.dm.WeightsRef(l.Name)
			if err != nil {
				return fmt.Errorf("layer %q: %w", l.Name, err)
			}
			st.wScale = frameScale(w)
			st.w = make([]int8, len(w))
			quant.QuantizeInto(st.w, w, st.wScale)
			st.b = b
		}
		if len(st.w) != l.WeightWords() {
			return fmt.Errorf("layer %q: weight stream has %d words, want %d", l.Name, len(st.w), l.WeightWords())
		}
		if !x.pe.WeightsOnChip {
			st.streamBytes = int64(len(st.w) + len(st.b))
		}
		if l.Kind == nn.Conv && l.Algo() == AlgoWinograd {
			// The transform domain stays float on the packed datapath (the
			// ±½ combinations do not survive the int8 grid): the EWMM runs
			// on dequantized tiles against the float transformed weights.
			if !WinogradOK(l.Kernel, l.Stride, l.OutShape) {
				return fmt.Errorf("layer %q: winograd_f23 requires a 3×3/stride-1 kernel and 2×2-tile-aligned output, got k=%d s=%d out %dx%d",
					l.Name, l.Kernel, l.Stride, l.OutShape.Height, l.OutShape.Width)
			}
			st.wg = x.wg[l.Name]
			if st.wg == nil {
				w, _, err := x.dm.WeightsRef(l.Name)
				if err != nil {
					return fmt.Errorf("layer %q: %w", l.Name, err)
				}
				st.wg = winogradTransformWeights(w, l.InShape.Channels, l.OutShape.Channels)
			}
		}
	}
	width := x.pe.Par.Normalize()
	par := width.In
	if width.Out > par {
		par = width.Out
	}
	x.pool = newPEWorkerPool(par)
	return nil
}

// runStream is the resident session loop, mirroring peExec.runStream:
// epoch-validated frames until end-of-stream, prepare amortized over the
// session, failure latched before the terminating input drain.
func (x *peExecInt8) runStream() error {
	defer x.out.Close()
	fail := func(err error) error {
		err = fmt.Errorf("dataflow: %s: %w", x.pe.ID, err)
		x.onErr(err)
		x.in.Drain()
		return err
	}
	if err := x.prepare(); err != nil {
		return fail(err)
	}
	defer x.pool.close()
	var epoch uint16
	for {
		e, ok, err := x.in.PopFrameHeader()
		if !ok {
			return nil // end of session
		}
		if err != nil {
			return fail(err)
		}
		if e != epoch {
			return fail(fmt.Errorf("frame epoch %d arrived, expected %d", e, epoch))
		}
		x.out.PushFrameHeader(e)
		if err := x.runImage(int(epoch)); err != nil {
			return fail(fmt.Errorf("epoch %d: %w", e, err))
		}
		x.stats.Images++
		epoch++
		x.onImage()
	}
}

func (x *peExecInt8) runImage(img int) error {
	lanes := fifo.Int8Lanes
	vol := x.pe.Layers[0].InShape.Volume()
	x.curCodes = growInt8(x.curCodes, vol)
	x.wordBuf = growWords(x.wordBuf, fifo.PackedWords(vol))
	scale, err := popInt8Frame(x.in, x.wordBuf, x.curCodes)
	if err != nil {
		return err
	}
	x.stats.ElemsIn += int64(vol)

	cur := x.curCodes
	for li := range x.pe.Layers {
		l := &x.pe.Layers[li]
		st := &x.layers[li]
		if len(cur) != l.InShape.Volume() {
			return fmt.Errorf("fused intermediate has %d lanes, layer expects %d", len(cur), l.InShape.Volume())
		}
		outVol := l.OutShape.Volume()
		x.nxtCodes = growInt8(x.nxtCodes, outVol)
		out := x.nxtCodes

		sid := 0
		if x.track != nil {
			sid = x.track.Begin(l.Name, x.stats.Cycles)
		}

		var outScale float64
		switch l.Kind {
		case nn.Conv:
			switch l.Algo() {
			case AlgoGEMM:
				outScale, err = x.runConvGEMM(l, st, cur, scale, out)
			case AlgoWinograd:
				outScale, err = x.runConvWinograd(l, st, cur, scale, out)
			default:
				outScale, err = x.runConv(l, st, cur, scale, out)
			}
		case nn.MaxPool, nn.AvgPool:
			outScale, err = x.runPool(l, cur, scale, out)
		case nn.FullyConnected:
			outScale, err = x.runFC(l, st, cur, scale, out)
		default:
			err = fmt.Errorf("layer %q: unsupported PE kind %v", l.Name, l.Kind)
		}
		if err != nil {
			return fmt.Errorf("layer %q: %w", l.Name, err)
		}
		x.stats.Cycles += LayerCyclesAt(l, x.pe.Par, lanes)
		if outScale > x.stats.MaxRequantScale {
			x.stats.MaxRequantScale = outScale
		}

		if li == len(x.pe.Layers)-1 {
			x.wordBuf = growWords(x.wordBuf, fifo.PackedWords(outVol))
			pushInt8Frame(x.out, x.wordBuf, out, outScale)
			x.stats.ElemsOut += int64(outVol)
		} else {
			// Fused-layer handoff: the intermediate rides through DDR as
			// packed bytes (one per lane), half the round trip each way.
			x.dm.AccountWriteBytes(int64(outVol))
			x.dm.AccountReadBytes(int64(outVol))
			x.stats.Cycles += 2 * ceilDiv64(int64(outVol), int64(lanes))
		}
		if x.track != nil {
			x.track.AddWords(sid, int64(fifo.PackedWords(outVol)))
			x.track.End(sid, x.stats.Cycles)
		}
		x.curCodes, x.nxtCodes = x.nxtCodes, x.curCodes
		cur, scale = out, outScale
	}
	return nil
}

// padChannel copies one channel map into the zero-padded scratch. With no
// padding the in-place map is returned directly.
func (x *peExecInt8) padChannel(l *LayerHW, chmap []int8) []int8 {
	if l.Pad == 0 {
		return chmap
	}
	h, w, pad := l.InShape.Height, l.InShape.Width, l.Pad
	ph, pw := l.PaddedHeight(), l.PaddedWidth()
	x.padBuf = growInt8(x.padBuf, ph*pw)
	padded := x.padBuf
	for i := range padded {
		padded[i] = 0
	}
	for y := 0; y < h; y++ {
		copy(padded[(y+pad)*pw+pad:], chmap[y*w:(y+1)*w])
	}
	return padded
}

// runConv is the quantized convolutional PE: per input-channel pass, every
// window position accumulates int8 products into the int32 partial buffer,
// output channels banded across the worker pool. After the last pass the
// accumulators are dequantized (acc · wScale · inScale + bias), activated in
// float, and requantized with a fresh per-tensor scale.
func (x *peExecInt8) runConv(l *LayerHW, st *peLayerInt8, cur []int8, inScale float64, out []int8) (float64, error) {
	c, f, k := l.InShape.Channels, l.OutShape.Channels, l.Kernel
	outH, outW := l.OutShape.Height, l.OutShape.Width
	outHW := outH * outW
	inHW := l.InShape.Height * l.InShape.Width
	pw := l.PaddedWidth()
	stride := l.Stride
	kk := k * k
	if st.streamBytes > 0 {
		x.dm.AccountReadBytes(st.streamBytes)
	}
	x.partial = growInt32(x.partial, f*outHW)
	partial := x.partial
	clear(partial)
	outBands := x.pe.Par.Normalize().Out
	for ci := 0; ci < c; ci++ {
		padded := x.padChannel(l, cur[ci*inHW:(ci+1)*inHW])
		x.pool.bands(f, outBands, func(_, lo, hi int) {
			for fi := lo; fi < hi; fi++ {
				wbase := (fi*c + ci) * kk
				off := fi * outHW
				for oy := 0; oy < outH; oy++ {
					iy0 := oy * stride
					for ox := 0; ox < outW; ox++ {
						ix0 := ox * stride
						var acc int32
						if k == 5 {
							// The paper's models are all 5×5 convs; a fixed
							// unroll with full-length slices lets the compiler
							// drop every bounds check from the MAC chain.
							for m := 0; m < 5; m++ {
								rb, wb := (iy0+m)*pw+ix0, wbase+m*5
								r := padded[rb : rb+5]
								w := st.w[wb : wb+5]
								acc += int32(w[0])*int32(r[0]) + int32(w[1])*int32(r[1]) +
									int32(w[2])*int32(r[2]) + int32(w[3])*int32(r[3]) +
									int32(w[4])*int32(r[4])
							}
						} else {
							for m := 0; m < k; m++ {
								row := padded[(iy0+m)*pw+ix0:]
								wrow := st.w[wbase+m*k:]
								for n := 0; n < k; n++ {
									acc += int32(wrow[n]) * int32(row[n])
								}
							}
						}
						partial[off+oy*outW+ox] += acc
					}
				}
			}
		})
		x.stats.WindowsRead += int64(outHW)
		x.stats.MACs += int64(f) * int64(kk) * int64(outHW)
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	x.floatBuf = growSlice(x.floatBuf, f*outHW)
	fb := x.floatBuf
	deq := st.wScale * inScale
	x.pool.bands(f, outBands, func(_, lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			var bias float64
			if len(st.b) > 0 {
				bias = float64(st.b[fi])
			}
			off := fi * outHW
			for pos := 0; pos < outHW; pos++ {
				fb[off+pos] = applyActivation(l.Activation, float32(float64(partial[off+pos])*deq+bias))
			}
		}
	})
	outScale := frameScale(fb)
	quant.QuantizeInto(out, fb, outScale)
	return outScale, nil
}

// runPool is the quantized sub-sampling PE. Max pooling with no folded
// activation stays entirely on the int8 grid — max commutes with the
// monotone dequantization, so the pass is exact and the input scale passes
// through. Average pooling (and any folded activation) accumulates in int32,
// dequantizes, applies the float stage and requantizes.
func (x *peExecInt8) runPool(l *LayerHW, cur []int8, inScale float64, out []int8) (float64, error) {
	c, k := l.InShape.Channels, l.Kernel
	outH, outW := l.OutShape.Height, l.OutShape.Width
	outHW := outH * outW
	inHW := l.InShape.Height * l.InShape.Width
	pw := l.PaddedWidth()
	stride := l.Stride
	isMax := l.Kind == nn.MaxPool
	pureMax := isMax && l.Activation == NoActivation
	if !pureMax {
		x.floatBuf = growSlice(x.floatBuf, c*outHW)
	}
	fb := x.floatBuf
	inv := inScale / float64(k*k)
	inBands := x.pe.Par.Normalize().In
	// Channel maps are independent; bands shard whole channels, and each
	// band pads into its own local scratch (x.padBuf is single-pass state).
	poolChannel := func(padded []int8, base int) {
		for oy := 0; oy < outH; oy++ {
			iy0 := oy * stride
			for ox := 0; ox < outW; ox++ {
				ix0 := ox * stride
				if isMax {
					v := int8(math.MinInt8)
					for m := 0; m < k; m++ {
						row := padded[(iy0+m)*pw+ix0:]
						for n := 0; n < k; n++ {
							if row[n] > v {
								v = row[n]
							}
						}
					}
					if pureMax {
						out[base+oy*outW+ox] = v
					} else {
						fb[base+oy*outW+ox] = applyActivation(l.Activation, float32(float64(v)*inScale))
					}
				} else {
					var sum int32
					for m := 0; m < k; m++ {
						row := padded[(iy0+m)*pw+ix0:]
						for n := 0; n < k; n++ {
							sum += int32(row[n])
						}
					}
					fb[base+oy*outW+ox] = applyActivation(l.Activation, float32(float64(sum)*inv))
				}
			}
		}
	}
	if x.pool == nil || inBands <= 1 || c <= 1 || l.Pad != 0 {
		for ci := 0; ci < c; ci++ {
			poolChannel(x.padChannel(l, cur[ci*inHW:(ci+1)*inHW]), ci*outHW)
		}
	} else {
		x.pool.bands(c, inBands, func(_, lo, hi int) {
			for ci := lo; ci < hi; ci++ {
				poolChannel(cur[ci*inHW:(ci+1)*inHW], ci*outHW)
			}
		})
	}
	x.stats.WindowsRead += int64(c) * int64(outHW)
	if pureMax {
		return inScale, nil
	}
	outScale := frameScale(fb[:c*outHW])
	quant.QuantizeInto(out, fb[:c*outHW], outScale)
	return outScale, nil
}

// runFC is the quantized fully-connected PE: each output neuron's int32
// accumulation walks the packed input lanes, then the whole vector is
// dequantized, biased, activated, normalized (LogSoftMax/SoftMax in float —
// the paper folds normalisation into the last PE) and requantized for the
// output frame.
func (x *peExecInt8) runFC(l *LayerHW, st *peLayerInt8, cur []int8, inScale float64, out []int8) (float64, error) {
	v := l.InShape.Volume()
	o := l.OutShape.Channels
	if st.streamBytes > 0 {
		x.dm.AccountReadBytes(st.streamBytes)
	}
	x.floatBuf = growSlice(x.floatBuf, o)
	fb := x.floatBuf[:o]
	deq := st.wScale * inScale
	in := cur[:v]
	x.pool.bands(o, x.pe.Par.Normalize().Out, func(_, lo, hi int) {
		for oi := lo; oi < hi; oi++ {
			var acc int32
			wrow := st.w[oi*v : (oi+1)*v]
			for h, xv := range in {
				acc += int32(wrow[h]) * int32(xv)
			}
			var bias float64
			if len(st.b) > 0 {
				bias = float64(st.b[oi])
			}
			fb[oi] = float32(float64(acc)*deq + bias)
		}
	})
	x.stats.MACs += int64(o) * int64(v)
	for i := range fb {
		fb[i] = applyActivation(l.Activation, fb[i])
	}
	if l.Normalize != NoActivation {
		normalizeInPlace(l.Normalize, fb)
	}
	outScale := frameScale(fb)
	quant.QuantizeInto(out, fb, outScale)
	return outScale, nil
}
