package dataflow

import (
	"fmt"
	"testing"

	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/tensor"
)

// These tests pin the tentpole contract of the packed int8 datapath: at any
// Parallelism{In,Out} setting and any compute-unit count, the packed fabric
// (4 int8 lanes per FIFO word, int32 accumulators, per-tensor requantization
// at every PE boundary) must agree with the float32 word-at-a-time oracle to
// within the bound its own recorded quantization scales imply — bounded
// error, not bit identity; the float fabric's bit-identity harness lives in
// equivalence_test.go and does not apply here.

// runQuantCase executes one {Par, CUs} point of the sweep. One spec (with
// WordBits=8 and every PE's port parallelism overridden) backs both sides:
// the packed side runs the batch through an n-CU pool; the oracle side runs
// RunWords, which always executes in float32 regardless of WordBits. The
// tolerance is not a magic constant — it is RunStats.QuantErrorBound(),
// derived from the input scale and per-PE requantization scales the packed
// run itself recorded.
func runQuantCase(t *testing.T, ir *condorir.Network, ws *condorir.WeightSet, batch []*tensor.Tensor, par condorir.Parallelism, cus int) {
	t.Helper()
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	spec.WordBits = 8
	for _, pe := range spec.PEs {
		pe.Par = par
	}
	packedAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	oracleAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewCUPool(packedAcc, cus)
	gotOut, gotStats, err := pool.Run(batch)
	if err != nil {
		t.Fatalf("packed run: %v", err)
	}
	wantOut, _, err := oracleAcc.RunWords(batch)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}

	tol := gotStats.QuantErrorBound()
	if tol <= 0 {
		t.Fatalf("QuantErrorBound = %g, want positive (InputScale %g)", tol, gotStats.InputScale)
	}
	if len(gotOut) != len(wantOut) {
		t.Fatalf("output count %d vs %d", len(gotOut), len(wantOut))
	}
	agree := 0
	for i := range gotOut {
		if d := tensor.MaxAbsDiff(gotOut[i], wantOut[i]); d > tol {
			t.Errorf("image %d: max abs diff %g exceeds quant error bound %g", i, d, tol)
		}
		if gotOut[i].ArgMax() == wantOut[i].ArgMax() {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(gotOut)); frac < 0.75 {
		t.Errorf("argmax agreement %.2f below 0.75 (%d/%d images)", frac, agree, len(gotOut))
	}

	// The packed run must actually have moved int8 lanes: every stream edge
	// carries packed payload words, so the merged lane counters are nonzero
	// (they stay zero on the float32 datapath by construction).
	var lanes int64
	for _, s := range gotStats.Streams {
		lanes += s.LanePushes
	}
	if lanes == 0 {
		t.Error("packed run recorded zero lane pushes — the float path ran instead")
	}
	// Modeled cycles must agree with the measured fabric on the packed path
	// too: both sides use the lanes-aware LayerCyclesAt model.
	if model, meas := modelBottleneck(spec), gotStats.BottleneckCycles(); model != meas {
		t.Errorf("modeled bottleneck %d != measured %d", model, meas)
	}
}

// modelBottleneck computes the modeled per-image bottleneck for a spec
// directly via the lane-aware cycle model (the perf package re-derives the
// same quantity; duplicating the fold here keeps the test self-contained in
// package dataflow).
func modelBottleneck(spec *Spec) int64 {
	var worst int64
	for _, pe := range spec.PEs {
		if c := PECyclesPerImageAt(pe, spec.Lanes()); c > worst {
			worst = c
		}
	}
	return worst
}

func TestQuantEquivalenceTC1(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(4, 7)
	withProcs(t, 4, func(t *testing.T) {
		for _, in := range []int{1, 2, 4} {
			for _, out := range []int{1, 2, 4} {
				for _, cus := range []int{1, 2, 4} {
					name := fmt.Sprintf("in=%d/out=%d/cus=%d", in, out, cus)
					t.Run(name, func(t *testing.T) {
						runQuantCase(t, ir, ws, batch, condorir.Parallelism{In: in, Out: out}, cus)
					})
				}
			}
		}
	})
}

func TestQuantEquivalenceLeNet(t *testing.T) {
	ir, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.MNISTImages(3, 11)
	withProcs(t, 4, func(t *testing.T) {
		for _, p := range []int{1, 2, 4} {
			name := fmt.Sprintf("in=%d/out=%d/cus=%d", p, p, p)
			t.Run(name, func(t *testing.T) {
				runQuantCase(t, ir, ws, batch, condorir.Parallelism{In: p, Out: p}, p)
			})
		}
	})
}

// The int8 fabric's run-time DDR byte counters must equal the analytic
// model at WordBits=8 exactly, the same invariant traffic_test.go pins for
// the float path: activations and weights move as 1-byte codes, partial
// spills stay 4-byte int32, and the per-frame scale-header words ride free
// (matching the analytic model, which charges payload bytes only).
func TestQuantDDRTrafficMatchesAnalytic(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	spec.WordBits = 8
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(3, 9)
	_, stats, err := acc.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	measured := stats.DRAM.BytesRead + stats.DRAM.BytesWritten
	want := spec.OnChipLoadBytes() + int64(len(batch))*spec.DDRBytesPerImage()
	if measured != want {
		t.Fatalf("measured %d bytes, analytic model says %d", measured, want)
	}
}
