package dataflow

import (
	"fmt"
	"strings"
	"testing"

	"condor/internal/condorir"
	"condor/internal/models"
)

// TestCUPoolSmallBatches pins the shard math at the degenerate ends — fewer
// images than compute units (trailing units must idle, not deadlock), a
// batch of one (the single-unit delegation path), and an uneven split (short
// last shard plus one idle unit) — each bit-identical to the word oracle,
// which also proves reassembly preserved input order.
func TestCUPoolSmallBatches(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	par := condorir.Parallelism{In: 2, Out: 2}
	withProcs(t, 4, func(t *testing.T) {
		for _, tc := range []struct{ batch, cus int }{
			{2, 4}, // fewer images than units
			{1, 3}, // batch of one
			{5, 4}, // uneven split, one idle unit
		} {
			name := fmt.Sprintf("batch=%d/cus=%d", tc.batch, tc.cus)
			t.Run(name, func(t *testing.T) {
				runParallelCase(t, ir, ws, models.USPSImages(tc.batch, 23), par, tc.cus)
			})
		}
	})
}

// TestCUPoolReplicaError: a replica failing mid-batch must join every shard
// and surface an error naming the unit — no deadlock, no partial outputs —
// and must leave the healthy units untouched.
func TestCUPoolReplicaError(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewCUPool(acc, 2)
	// Corrupt the replica: an empty datamover has no weights, so the unit's
	// shard fails deterministically on its first layer.
	pool.cus[1].dm = NewDatamover()

	outs, stats, err := pool.Run(models.USPSImages(4, 9))
	if err == nil {
		t.Fatal("corrupted replica did not fail the run")
	}
	if !strings.Contains(err.Error(), "cu1") {
		t.Fatalf("error does not name the failing unit: %v", err)
	}
	if !strings.Contains(err.Error(), "no weights") {
		t.Fatalf("error does not carry the unit's failure: %v", err)
	}
	if outs != nil || stats != nil {
		t.Fatalf("failed run leaked partial outputs (%v) or stats (%v)", outs, stats)
	}

	// Unit 0 is intact: a batch of one rides the delegation path and runs.
	if _, _, err := pool.Run(models.USPSImages(1, 9)); err != nil {
		t.Fatalf("healthy unit broken after failed pool run: %v", err)
	}
}

// TestDeclaredTapDepthAtBoundRuns proves the CND020 bound is sufficient, not
// just necessary: declaring every tap FIFO at exactly TapWorstCaseWords (the
// smallest depth the verifier accepts) still executes the burst row schedule
// to completion, bit-identical to the word oracle. Together with the verify
// tests (depth-1 is rejected) this pins the bound from both sides.
func TestDeclaredTapDepthAtBoundRuns(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	declared := 0
	for _, pe := range spec.PEs {
		if pe.Chain == nil {
			continue
		}
		worst := 0
		for i := range pe.Layers {
			l := &pe.Layers[i]
			if !l.Kind.IsFeatureExtraction() {
				continue
			}
			if w := TapWorstCaseWords(l); w > worst {
				worst = w
			}
		}
		if worst > 0 {
			pe.Chain.TapFIFODepth = worst
			declared++
		}
	}
	if declared == 0 {
		t.Fatal("no features PE to declare a tap depth on")
	}
	tight, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(3, 31)
	gotOut, gotStats, err := tight.Run(batch)
	if err != nil {
		t.Fatalf("burst run at the declared bound: %v", err)
	}
	wantOut, wantStats, err := oracle.RunWords(batch)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, "tight-tap", gotOut, gotStats, "word", wantOut, wantStats)
}
