package dataflow

import (
	"fmt"
	"testing"

	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/nn"
	"condor/internal/tensor"
)

// These tests pin the per-layer algorithm contract: the im2col+GEMM float32
// path is held to the same bit-identity-plus-identical-stats standard as
// the direct path (the microkernel reorders independent cells, never an
// accumulation chain), Winograd F(2,3) is held to the bounded-error
// contract of RunStats.WinogradErrorBound, and the packed int8 variants
// stay inside QuantErrorBound (plus the winograd term where it applies) —
// all swept across parallelism and compute-unit counts, on specs whose conv
// layers were switched away from the direct algorithm.

// setConvAlgo overrides the algorithm of every conv layer in the spec.
func setConvAlgo(spec *Spec, algo ConvAlgo) {
	for _, pe := range spec.PEs {
		for li := range pe.Layers {
			if pe.Layers[li].Kind == nn.Conv {
				pe.Layers[li].ConvAlgo = algo
			}
		}
	}
}

// runGEMMCase runs one {Par, CUs} point of the float32 GEMM sweep: the
// same gemm-mode spec backs an n-CU pool and the word oracle (whose conv
// arithmetic is always direct), so the comparison proves the lowering is
// bit-identical to direct convolution — and that the shared cycle model
// keeps both sides' stats in lockstep.
func runGEMMCase(t *testing.T, ir *condorir.Network, ws *condorir.WeightSet, batch []*tensor.Tensor, par condorir.Parallelism, cus int) {
	t.Helper()
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	setConvAlgo(spec, AlgoGEMM)
	for _, pe := range spec.PEs {
		pe.Par = par
	}
	gemmAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	wordAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewCUPool(gemmAcc, cus)
	gotOut, gotStats, err := pool.Run(batch)
	if err != nil {
		t.Fatalf("gemm run: %v", err)
	}
	wantOut, wantStats, err := wordAcc.RunWords(batch)
	if err != nil {
		t.Fatalf("word run: %v", err)
	}
	assertRunsIdentical(t, "gemm", gotOut, gotStats, "word", wantOut, wantStats)
}

// runQuantAlgoCase runs one {algo, Par, CUs} point of the packed int8 sweep
// against the float oracle, with the tolerance the packed run itself
// recorded (QuantErrorBound, plus WinogradErrorBound for winograd layers).
func runQuantAlgoCase(t *testing.T, ir *condorir.Network, ws *condorir.WeightSet, batch []*tensor.Tensor, algo ConvAlgo, par condorir.Parallelism, cus int) {
	t.Helper()
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	spec.WordBits = 8
	setConvAlgo(spec, algo)
	for _, pe := range spec.PEs {
		pe.Par = par
	}
	packedAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	oracleAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewCUPool(packedAcc, cus)
	gotOut, gotStats, err := pool.Run(batch)
	if err != nil {
		t.Fatalf("packed %s run: %v", algo, err)
	}
	wantOut, _, err := oracleAcc.RunWords(batch)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	tol := gotStats.QuantErrorBound() + gotStats.WinogradErrorBound()
	if tol <= 0 {
		t.Fatalf("error bound = %g, want positive", tol)
	}
	agree := 0
	for i := range gotOut {
		if d := tensor.MaxAbsDiff(gotOut[i], wantOut[i]); d > tol {
			t.Errorf("image %d: max abs diff %g exceeds error bound %g", i, d, tol)
		}
		if gotOut[i].ArgMax() == wantOut[i].ArgMax() {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(gotOut)); frac < 0.75 {
		t.Errorf("argmax agreement %.2f below 0.75 (%d/%d images)", frac, agree, len(gotOut))
	}
	if model, meas := modelBottleneck(spec), gotStats.BottleneckCycles(); model != meas {
		t.Errorf("modeled bottleneck %d != measured %d", model, meas)
	}
}

// TC1 and LeNet are the paper's 5×5-conv models, so their sweep covers the
// direct and im2col_gemm algorithms; winograd_f23 does not qualify there
// (CND025 would reject it) and is exercised on the 3×3 model below.

func TestAlgoEquivalenceTC1(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(4, 7)
	withProcs(t, 4, func(t *testing.T) {
		for _, par := range []int{1, 2} {
			for _, cus := range []int{1, 2} {
				p := condorir.Parallelism{In: par, Out: par}
				t.Run(fmt.Sprintf("gemm/par=%d/cus=%d", par, cus), func(t *testing.T) {
					runGEMMCase(t, ir, ws, batch, p, cus)
				})
				t.Run(fmt.Sprintf("gemm/int8/par=%d/cus=%d", par, cus), func(t *testing.T) {
					runQuantAlgoCase(t, ir, ws, batch, AlgoGEMM, p, cus)
				})
			}
		}
	})
}

func TestAlgoEquivalenceLeNet(t *testing.T) {
	ir, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.MNISTImages(2, 11)
	withProcs(t, 4, func(t *testing.T) {
		for _, cus := range []int{1, 2} {
			p := condorir.Parallelism{In: 2, Out: 2}
			t.Run(fmt.Sprintf("gemm/cus=%d", cus), func(t *testing.T) {
				runGEMMCase(t, ir, ws, batch, p, cus)
			})
			t.Run(fmt.Sprintf("gemm/int8/cus=%d", cus), func(t *testing.T) {
				runQuantAlgoCase(t, ir, ws, batch, AlgoGEMM, p, cus)
			})
		}
	})
}

// winogradNet is a tiny 3×3/stride-1 network whose conv outputs are even on
// both axes, so every conv layer qualifies for F(2,3).
func winogradNet(t testing.TB) (*condorir.Network, *condorir.WeightSet, *nn.Network) {
	return buildIR(t, "wg3", condorir.InputShape{Channels: 1, Height: 14, Width: 14}, tinyLeNetLayers(), 40)
}

// TestWinogradEquivalence pins the F(2,3) bounded-error contract on the
// float path: the deviation from the direct-convolution oracle must stay
// inside the bound the run itself recorded, at several parallelism and CU
// settings.
func TestWinogradEquivalence(t *testing.T) {
	ir, ws, net := winogradNet(t)
	batch := randomImages(4, net.Input, 41)
	withProcs(t, 4, func(t *testing.T) {
		for _, par := range []int{1, 2} {
			for _, cus := range []int{1, 2} {
				t.Run(fmt.Sprintf("par=%d/cus=%d", par, cus), func(t *testing.T) {
					spec, err := BuildSpec(ir)
					if err != nil {
						t.Fatal(err)
					}
					setConvAlgo(spec, AlgoWinograd)
					for _, pe := range spec.PEs {
						pe.Par = condorir.Parallelism{In: par, Out: par}
					}
					wgAcc, err := Instantiate(spec, ws)
					if err != nil {
						t.Fatal(err)
					}
					wordAcc, err := Instantiate(spec, ws)
					if err != nil {
						t.Fatal(err)
					}
					pool := NewCUPool(wgAcc, cus)
					gotOut, gotStats, err := pool.Run(batch)
					if err != nil {
						t.Fatalf("winograd run: %v", err)
					}
					wantOut, _, err := wordAcc.RunWords(batch)
					if err != nil {
						t.Fatalf("word run: %v", err)
					}
					tol := gotStats.WinogradErrorBound()
					if tol <= 0 {
						t.Fatalf("WinogradErrorBound = %g, want positive", tol)
					}
					for i := range gotOut {
						if d := tensor.MaxAbsDiff(gotOut[i], wantOut[i]); d > tol {
							t.Errorf("image %d: max abs diff %g exceeds winograd error bound %g", i, d, tol)
						}
					}
				})
			}
		}
	})
}

// TestWinogradEquivalenceInt8 runs the packed variant of the same model:
// deviation bounded by the sum of the quantization and winograd bounds.
func TestWinogradEquivalenceInt8(t *testing.T) {
	ir, ws, net := winogradNet(t)
	batch := randomImages(4, net.Input, 42)
	withProcs(t, 4, func(t *testing.T) {
		runQuantAlgoCase(t, ir, ws, batch, AlgoWinograd, condorir.Parallelism{In: 2, Out: 2}, 2)
	})
}

// TestStreamingMixedAlgoChain proves a resident batch=8 session survives a
// PE chain whose conv layers run different algorithms (winograd feeding
// gemm), on both datapaths. The name keeps it inside the stream-stress CI
// pattern (-run TestStreaming) so it also runs under the race detector.
func TestStreamingMixedAlgoChain(t *testing.T) {
	ir, ws, net := winogradNet(t)
	batch := randomImages(8, net.Input, 43)
	for _, int8path := range []bool{false, true} {
		name := "float32"
		if int8path {
			name = "int8"
		}
		t.Run(name, func(t *testing.T) {
			spec, err := BuildSpec(ir)
			if err != nil {
				t.Fatal(err)
			}
			if int8path {
				spec.WordBits = 8
			}
			// Mixed chain: first conv in the transform domain, second on
			// the im2col panel, everything else direct.
			assigned := 0
			for _, pe := range spec.PEs {
				for li := range pe.Layers {
					if pe.Layers[li].Kind != nn.Conv {
						continue
					}
					if assigned == 0 {
						pe.Layers[li].ConvAlgo = AlgoWinograd
					} else {
						pe.Layers[li].ConvAlgo = AlgoGEMM
					}
					assigned++
				}
			}
			if assigned < 2 {
				t.Fatalf("model has %d conv layers, mixed-algo chain needs 2", assigned)
			}
			acc, err := Instantiate(spec, ws)
			if err != nil {
				t.Fatal(err)
			}
			oracleAcc, err := Instantiate(spec, ws)
			if err != nil {
				t.Fatal(err)
			}
			sess := acc.OpenSession()
			var gotOut []*tensor.Tensor
			for _, chunk := range chunkBatch(batch) {
				outs, _, err := sess.RunBatch(chunk)
				if err != nil {
					t.Fatalf("streaming chunk: %v", err)
				}
				gotOut = append(gotOut, outs...)
			}
			gotStats := sess.Stats()
			if err := sess.Close(); err != nil {
				t.Fatalf("session close: %v", err)
			}
			wantOut, _, err := oracleAcc.RunWords(batch)
			if err != nil {
				t.Fatalf("oracle run: %v", err)
			}
			tol := gotStats.WinogradErrorBound()
			if int8path {
				tol += gotStats.QuantErrorBound()
			}
			if tol <= 0 {
				t.Fatalf("error bound = %g, want positive", tol)
			}
			if len(gotOut) != len(wantOut) {
				t.Fatalf("output count %d vs %d", len(gotOut), len(wantOut))
			}
			for i := range gotOut {
				if d := tensor.MaxAbsDiff(gotOut[i], wantOut[i]); d > tol {
					t.Errorf("image %d: max abs diff %g exceeds error bound %g", i, d, tol)
				}
			}
			assertFramedStreams(t, gotStats, len(batch), 1)
		})
	}
}
