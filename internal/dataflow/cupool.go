package dataflow

import (
	"fmt"
	"sync"

	"condor/internal/obs"
	"condor/internal/tensor"
)

// CUPool replicates an instantiated fabric into N compute units that execute
// batch shards concurrently — the host realisation of the paper's
// compute-unit replication knob (multiple kernel instances of one design on
// one device, all reading the same weight image). Unit 0 is the original
// accelerator; the replicas share its sealed weight store by reference and
// own private scratch and counters, so a pool-run's merged stats equal a
// single fabric's run over the same batch exactly (MaxOccupancy aside, which
// is taken per unit and maxed).
type CUPool struct {
	cus []*Accelerator

	// Resident streaming sessions, one per unit, opened lazily by the first
	// RunBatch and held until Close — that is what lets a serving batcher
	// feed the pool as a continuous stream instead of paying a fabric
	// spawn/join per batch.
	mu   sync.Mutex
	sess []*Session
}

// NewCUPool builds a pool of n compute units around an instantiated fabric.
// n < 1 is treated as 1; a pool of 1 is the original accelerator with zero
// overhead. With n > 1 every unit's trace tracks are namespaced "cu0/",
// "cu1/", … so a shared tracer keeps the units' timelines apart.
func NewCUPool(a *Accelerator, n int) *CUPool {
	if n < 1 {
		n = 1
	}
	p := &CUPool{cus: make([]*Accelerator, n)}
	p.cus[0] = a
	for i := 1; i < n; i++ {
		p.cus[i] = a.Clone()
	}
	if n > 1 {
		for i, cu := range p.cus {
			cu.trackPrefix = fmt.Sprintf("cu%d/", i)
		}
	}
	return p
}

// Size returns the number of compute units in the pool.
func (p *CUPool) Size() int { return len(p.cus) }

// Spec returns the replicated design's spec (shared by every unit).
func (p *CUPool) Spec() *Spec { return p.cus[0].Spec }

// CU returns the i-th compute unit, for callers that schedule units
// individually (the sdaccel runtime drives one fabric per OpenCL compute
// unit rather than splitting batches itself).
func (p *CUPool) CU(i int) *Accelerator { return p.cus[i] }

// SetTracer attaches a tracer to every compute unit.
func (p *CUPool) SetTracer(t obs.Tracer) {
	for _, cu := range p.cus {
		cu.SetTracer(t)
	}
}

// Run shards the batch contiguously across the compute units and executes
// the shards concurrently, reassembling outputs in input order. Stats are
// the merge of the per-unit runs: counters sum, per-PE entries merge
// index-wise, stream occupancy high-water marks max. A single-unit pool
// delegates straight to the fabric.
func (p *CUPool) Run(batch []*tensor.Tensor) ([]*tensor.Tensor, *RunStats, error) {
	if len(p.cus) == 1 || len(batch) <= 1 {
		return p.cus[0].Run(batch)
	}
	n := len(p.cus)
	per := (len(batch) + n - 1) / n
	outs := make([]*tensor.Tensor, len(batch))
	stats := make([]*RunStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	shards := 0
	for i := 0; i < n; i++ {
		lo := i * per
		if lo >= len(batch) {
			break
		}
		hi := lo + per
		if hi > len(batch) {
			hi = len(batch)
		}
		shards++
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			shardOuts, st, err := p.cus[i].Run(batch[lo:hi])
			if err != nil {
				errs[i] = fmt.Errorf("cu%d: %w", i, err)
				return
			}
			copy(outs[lo:hi], shardOuts)
			stats[i] = st
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	merged := stats[0]
	for _, st := range stats[1:shards] {
		merged.Merge(st)
	}
	return outs, merged, nil
}

// session returns (opening on first use) the i-th unit's resident session.
func (p *CUPool) session(i int) *Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sess == nil {
		p.sess = make([]*Session, len(p.cus))
	}
	if p.sess[i] == nil {
		p.sess[i] = p.cus[i].OpenSession()
	}
	return p.sess[i]
}

// RunBatch shards the batch contiguously across the pool's resident
// streaming sessions: every compute unit's fabric stays up between calls,
// so consecutive batches stream back-to-back through the layer pipelines
// with no spawn/join or fill/drain per batch. Outputs come back in input
// order; stats are the merge of the per-unit session-cumulative stats (see
// Session.RunBatch). The caller owns Close; Run remains the one-shot
// alternative and never touches the resident sessions.
func (p *CUPool) RunBatch(batch []*tensor.Tensor) ([]*tensor.Tensor, *RunStats, error) {
	if len(p.cus) == 1 || len(batch) <= 1 {
		return p.session(0).RunBatch(batch)
	}
	n := len(p.cus)
	per := (len(batch) + n - 1) / n
	outs := make([]*tensor.Tensor, len(batch))
	stats := make([]*RunStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	shards := 0
	for i := 0; i < n; i++ {
		lo := i * per
		if lo >= len(batch) {
			break
		}
		hi := lo + per
		if hi > len(batch) {
			hi = len(batch)
		}
		shards++
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			shardOuts, st, err := p.session(i).RunBatch(batch[lo:hi])
			if err != nil {
				errs[i] = fmt.Errorf("cu%d: %w", i, err)
				return
			}
			copy(outs[lo:hi], shardOuts)
			stats[i] = st
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	merged := stats[0]
	for _, st := range stats[1:shards] {
		merged.Merge(st)
	}
	return outs, merged, nil
}

// Stats merges the session-cumulative stats of every resident session the
// pool has opened (see Session.Stats). Meaningful between RunBatch calls,
// when no images are in flight; a pool with no open sessions reports zero.
func (p *CUPool) Stats() *RunStats {
	p.mu.Lock()
	sess := append([]*Session(nil), p.sess...)
	p.mu.Unlock()
	var merged *RunStats
	for _, s := range sess {
		if s == nil {
			continue
		}
		st := s.Stats()
		if merged == nil {
			merged = st
		} else {
			merged.Merge(st)
		}
	}
	if merged == nil {
		merged = &RunStats{}
	}
	return merged
}

// Close tears down every resident session opened by RunBatch, joining all
// fabric goroutines, and returns the first failure. A pool that only ever
// used Run has nothing to close; Close is then a no-op. The pool may be
// used again after Close — the next RunBatch opens fresh sessions.
func (p *CUPool) Close() error {
	p.mu.Lock()
	sess := p.sess
	p.sess = nil
	p.mu.Unlock()
	var first error
	for _, s := range sess {
		if s == nil {
			continue
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Merge folds another run's stats into s: image and traffic counters sum,
// per-PE entries merge index-wise, per-stream push/pop/burst totals sum and
// occupancy high-water marks max. Merging the per-unit stats of a pool run
// yields exactly the stats of one fabric running the whole batch (occupancy
// aside, which depends on scheduling).
func (s *RunStats) Merge(o *RunStats) {
	s.Images += o.Images
	for i := range s.PEs {
		if i >= len(o.PEs) {
			break
		}
		a, b := &s.PEs[i], &o.PEs[i]
		a.Images += b.Images
		a.Cycles += b.Cycles
		a.MACs += b.MACs
		a.WindowsRead += b.WindowsRead
		a.ElemsIn += b.ElemsIn
		a.ElemsOut += b.ElemsOut
		a.SpilledPartial += b.SpilledPartial
		if b.MaxRequantScale > a.MaxRequantScale {
			a.MaxRequantScale = b.MaxRequantScale
		}
		if b.MaxWinogradMag > a.MaxWinogradMag {
			a.MaxWinogradMag = b.MaxWinogradMag
		}
	}
	if o.InputScale > s.InputScale {
		s.InputScale = o.InputScale
	}
	s.DRAM.BytesRead += o.DRAM.BytesRead
	s.DRAM.BytesWritten += o.DRAM.BytesWritten
	for i := range s.Streams {
		if i >= len(o.Streams) {
			break
		}
		a, b := &s.Streams[i], &o.Streams[i]
		a.Pushes += b.Pushes
		a.Pops += b.Pops
		a.PushBursts += b.PushBursts
		a.PopBursts += b.PopBursts
		a.LanePushes += b.LanePushes
		a.LanePops += b.LanePops
		a.HeaderPushes += b.HeaderPushes
		a.HeaderPops += b.HeaderPops
		if b.MaxOccupancy > a.MaxOccupancy {
			a.MaxOccupancy = b.MaxOccupancy
		}
		if b.EpochMaxOccupancy > a.EpochMaxOccupancy {
			a.EpochMaxOccupancy = b.EpochMaxOccupancy
		}
	}
}
