package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// weightStore is the on-board weight memory of one instantiated design. It
// is written only during Instantiate, which seals it before the fabric (or
// any cloned compute unit) can execute; after the seal every read is
// lock-free, so any number of replica fabrics share one store with zero
// copies and zero contention — weights are read-only state, exactly as on
// the device, where every compute unit reads the same DDR image.
type weightStore struct {
	mu      sync.Mutex
	sealed  bool
	weights map[string][]float32 // flattened weights per layer name
	biases  map[string][]float32
}

func newWeightStore() *weightStore {
	return &weightStore{
		weights: make(map[string][]float32),
		biases:  make(map[string][]float32),
	}
}

func (s *weightStore) load(layer string, w, b []float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		panic(fmt.Sprintf("dataflow: weight load for layer %q after the store was sealed", layer))
	}
	s.weights[layer] = w
	s.biases[layer] = b
}

func (s *weightStore) seal() {
	s.mu.Lock()
	s.sealed = true
	s.mu.Unlock()
}

// get reads a layer's streams without locking: every load happens-before
// seal, and seal happens-before any fabric execution (Instantiate returns
// the accelerator only after sealing), so concurrent readers are ordered
// after the last write.
func (s *weightStore) get(layer string) (w, b []float32, ok bool) {
	w, ok = s.weights[layer]
	return w, s.biases[layer], ok
}

// Datamover models the custom data-moving engine of the accelerator: it is
// the only element that talks to the on-board (DDR) memory, exchanging data
// with the PEs over streaming connections. It holds the network weights and
// the spill buffers for partial results and fused-layer intermediates, and
// it accounts every byte moved — the traffic numbers feed the performance
// and power models.
//
// The weight region is shared by reference among cloned compute units (see
// Clone); scratch buffers and traffic counters are private per unit, so the
// merged per-CU DDR totals equal a single fabric's totals exactly.
type Datamover struct {
	store *weightStore

	mu      sync.Mutex
	buffers map[string][]float32 // DRAM scratch buffers (spills, fused intermediates)

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// NewDatamover returns an empty datamover.
func NewDatamover() *Datamover {
	return &Datamover{
		store:   newWeightStore(),
		buffers: make(map[string][]float32),
	}
}

// Clone returns the datamover of an additional compute unit: it shares the
// sealed weight store with the receiver and owns fresh scratch buffers and
// zeroed traffic counters. The one-time on-chip configuration load stays
// accounted on the original unit, so a pool's summed DDR traffic matches
// one fabric's.
func (d *Datamover) Clone() *Datamover {
	return &Datamover{store: d.store, buffers: make(map[string][]float32)}
}

// Seal freezes the weight store: subsequent LoadWeights calls panic and
// reads stop taking the store lock. Instantiate seals before handing the
// fabric out; weights are read-only from then on, which is what makes
// compute-unit replication a pointer copy.
func (d *Datamover) Seal() { d.store.seal() }

// LoadWeights stores a layer's flattened weights in on-board memory. The
// initial host→DDR transfer is not accounted here: it happens once over PCIe
// before execution, as in the paper's host code.
func (d *Datamover) LoadWeights(layer string, w, b []float32) {
	d.store.load(layer, w, b)
}

// Weights returns the layer's weight stream, accounting the DDR read
// traffic unless the PE caches them on-chip (in which case the single
// configuration-time read was already accounted by AccountOnChipLoad).
func (d *Datamover) Weights(layer string, onChip bool) ([]float32, []float32, error) {
	w, b, ok := d.store.get(layer)
	if !ok {
		return nil, nil, fmt.Errorf("dataflow: datamover has no weights for layer %q", layer)
	}
	if !onChip {
		d.bytesRead.Add(int64(4 * (len(w) + len(b))))
	}
	return w, b, nil
}

// WeightsRef returns the layer's weight stream without accounting any DDR
// traffic: the lookup-hoisting path of peExec, which resolves the slices
// once per batch and accounts each image's stream re-read separately via
// AccountWeightStream.
func (d *Datamover) WeightsRef(layer string) ([]float32, []float32, error) {
	w, b, ok := d.store.get(layer)
	if !ok {
		return nil, nil, fmt.Errorf("dataflow: datamover has no weights for layer %q", layer)
	}
	return w, b, nil
}

// AccountWeightStream records the per-image DDR re-read of an off-chip
// weight stream whose slices the PE already holds — the traffic of a
// Weights call without the map lookup.
func (d *Datamover) AccountWeightStream(words int64) { d.bytesRead.Add(4 * words) }

// AccountOnChipLoad records the one-time DDR→BRAM weight load of a PE whose
// weights are cached on-chip.
func (d *Datamover) AccountOnChipLoad(layer string) { d.AccountOnChipLoadBytes(layer, 4) }

// AccountOnChipLoadBytes is AccountOnChipLoad at an explicit word size: the
// quantized fabrics store weights at WordBits/8 bytes per word, so their
// configuration-time load moves proportionally fewer bytes — mirroring the
// analytic Spec.OnChipLoadBytes exactly.
func (d *Datamover) AccountOnChipLoadBytes(layer string, wordBytes int64) {
	w, b, _ := d.store.get(layer)
	d.bytesRead.Add(wordBytes * int64(len(w)+len(b)))
}

// WriteBuffer stores an intermediate array in DDR (fused-layer handoff or
// partial spill) and accounts the write traffic. The buffer's backing
// storage is reused across writes of the same name when capacity allows, so
// steady-state fused-layer handoffs allocate nothing.
func (d *Datamover) WriteBuffer(name string, data []float32) {
	d.mu.Lock()
	buf := d.buffers[name]
	if cap(buf) < len(data) {
		buf = make([]float32, len(data))
	}
	buf = buf[:len(data)]
	copy(buf, data)
	d.buffers[name] = buf
	d.mu.Unlock()
	d.bytesWritten.Add(int64(4 * len(data)))
}

// ReadBuffer streams an intermediate array back from DDR, accounting the
// read traffic.
func (d *Datamover) ReadBuffer(name string) ([]float32, error) {
	d.mu.Lock()
	data, ok := d.buffers[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dataflow: datamover has no buffer %q", name)
	}
	d.bytesRead.Add(int64(4 * len(data)))
	return data, nil
}

// AccountPartialSpill records one read-modify-write round trip of a
// partial-sum buffer that does not fit on-chip.
func (d *Datamover) AccountPartialSpill(words int64) {
	d.bytesRead.Add(4 * words)
	d.bytesWritten.Add(4 * words)
}

// AccountInput records the DDR read of the network input (the datamover
// streams each image from on-board memory into the first PE).
func (d *Datamover) AccountInput(words int64) { d.bytesRead.Add(4 * words) }

// AccountOutput records the DDR write of the network output.
func (d *Datamover) AccountOutput(words int64) { d.bytesWritten.Add(4 * words) }

// AccountReadBytes records a DDR read at byte granularity. The packed int8
// datapath moves one byte per activation element and must account exactly
// what the analytic Spec.DDRBytesPerImage model predicts, which the
// 4-bytes-per-word helpers above cannot express.
func (d *Datamover) AccountReadBytes(n int64) { d.bytesRead.Add(n) }

// AccountWriteBytes records a DDR write at byte granularity (see
// AccountReadBytes).
func (d *Datamover) AccountWriteBytes(n int64) { d.bytesWritten.Add(n) }

// Stats is a snapshot of DDR traffic.
type DatamoverStats struct {
	BytesRead    int64
	BytesWritten int64
}

// Stats returns the accumulated DDR traffic counters.
func (d *Datamover) Stats() DatamoverStats {
	return DatamoverStats{
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
	}
}
