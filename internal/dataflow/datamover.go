package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Datamover models the custom data-moving engine of the accelerator: it is
// the only element that talks to the on-board (DDR) memory, exchanging data
// with the PEs over streaming connections. It holds the network weights and
// the spill buffers for partial results and fused-layer intermediates, and
// it accounts every byte moved — the traffic numbers feed the performance
// and power models.
type Datamover struct {
	mu      sync.Mutex
	weights map[string][]float32 // flattened weights per layer name
	biases  map[string][]float32
	buffers map[string][]float32 // DRAM scratch buffers (spills, fused intermediates)

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// NewDatamover returns an empty datamover.
func NewDatamover() *Datamover {
	return &Datamover{
		weights: make(map[string][]float32),
		biases:  make(map[string][]float32),
		buffers: make(map[string][]float32),
	}
}

// LoadWeights stores a layer's flattened weights in on-board memory. The
// initial host→DDR transfer is not accounted here: it happens once over PCIe
// before execution, as in the paper's host code.
func (d *Datamover) LoadWeights(layer string, w, b []float32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.weights[layer] = w
	d.biases[layer] = b
}

// Weights returns the layer's weight stream, accounting the DDR read
// traffic unless the PE caches them on-chip (in which case the single
// configuration-time read was already accounted by AccountOnChipLoad).
func (d *Datamover) Weights(layer string, onChip bool) ([]float32, []float32, error) {
	d.mu.Lock()
	w, ok := d.weights[layer]
	b := d.biases[layer]
	d.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("dataflow: datamover has no weights for layer %q", layer)
	}
	if !onChip {
		d.bytesRead.Add(int64(4 * (len(w) + len(b))))
	}
	return w, b, nil
}

// AccountOnChipLoad records the one-time DDR→BRAM weight load of a PE whose
// weights are cached on-chip.
func (d *Datamover) AccountOnChipLoad(layer string) {
	d.mu.Lock()
	w := d.weights[layer]
	b := d.biases[layer]
	d.mu.Unlock()
	d.bytesRead.Add(int64(4 * (len(w) + len(b))))
}

// WriteBuffer stores an intermediate array in DDR (fused-layer handoff or
// partial spill) and accounts the write traffic.
func (d *Datamover) WriteBuffer(name string, data []float32) {
	cp := make([]float32, len(data))
	copy(cp, data)
	d.mu.Lock()
	d.buffers[name] = cp
	d.mu.Unlock()
	d.bytesWritten.Add(int64(4 * len(data)))
}

// ReadBuffer streams an intermediate array back from DDR, accounting the
// read traffic.
func (d *Datamover) ReadBuffer(name string) ([]float32, error) {
	d.mu.Lock()
	data, ok := d.buffers[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dataflow: datamover has no buffer %q", name)
	}
	d.bytesRead.Add(int64(4 * len(data)))
	return data, nil
}

// AccountPartialSpill records one read-modify-write round trip of a
// partial-sum buffer that does not fit on-chip.
func (d *Datamover) AccountPartialSpill(words int64) {
	d.bytesRead.Add(4 * words)
	d.bytesWritten.Add(4 * words)
}

// AccountInput records the DDR read of the network input (the datamover
// streams each image from on-board memory into the first PE).
func (d *Datamover) AccountInput(words int64) { d.bytesRead.Add(4 * words) }

// AccountOutput records the DDR write of the network output.
func (d *Datamover) AccountOutput(words int64) { d.bytesWritten.Add(4 * words) }

// Stats is a snapshot of DDR traffic.
type DatamoverStats struct {
	BytesRead    int64
	BytesWritten int64
}

// Stats returns the accumulated DDR traffic counters.
func (d *Datamover) Stats() DatamoverStats {
	return DatamoverStats{
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
	}
}
