package dataflow

import (
	"testing"

	"condor/internal/condorir"
	"condor/internal/nn"
)

func specIR() *condorir.Network {
	return &condorir.Network{
		Name: "spec-test", Board: "aws-f1-vu9p", FrequencyMHz: 150,
		Input: condorir.InputShape{Channels: 1, Height: 16, Width: 16},
		Layers: []condorir.Layer{
			{Name: "conv1", Type: "Convolution", KernelSize: 5, Stride: 1, NumOutput: 4, Bias: true, PEGroup: -1,
				Parallelism: condorir.Parallelism{In: 1, Out: 2}},
			{Name: "relu1", Type: "ReLU", PEGroup: -1},
			{Name: "pool1", Type: "MaxPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
			{Name: "fc1", Type: "InnerProduct", NumOutput: 10, Bias: true, PEGroup: -1},
			{Name: "prob", Type: "LogSoftMax", PEGroup: -1},
		},
	}
}

func TestBuildSpecStructure(t *testing.T) {
	spec, err := BuildSpec(specIR())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "spec-test" || spec.Board != "aws-f1-vu9p" || spec.FreqMHz != 150 {
		t.Fatalf("spec identity wrong: %+v", spec)
	}
	if len(spec.PEs) != 3 {
		t.Fatalf("PE count = %d, want 3", len(spec.PEs))
	}
	pe0 := spec.PEs[0]
	if len(pe0.Layers) != 1 || pe0.Layers[0].Name != "conv1" {
		t.Fatalf("pe0 layers wrong: %+v", pe0.Layers)
	}
	if pe0.Layers[0].Activation != nn.ReLU {
		t.Fatal("relu1 should fold into conv1's PE")
	}
	if pe0.Par.Out != 2 {
		t.Fatalf("pe0 parallelism = %+v", pe0.Par)
	}
	if pe0.Chain == nil || pe0.Chain.Kernel != 5 || pe0.Chain.PaddedW != 16 {
		t.Fatalf("pe0 chain = %+v", pe0.Chain)
	}
	pe2 := spec.PEs[2]
	if pe2.Layers[0].Kind != nn.FullyConnected || pe2.Layers[0].Normalize != nn.LogSoftMax {
		t.Fatalf("fc PE wrong: %+v", pe2.Layers[0])
	}
	if pe2.Chain != nil {
		t.Fatal("FC PE must not have a filter chain")
	}
	if got := spec.OutputShape(); got != (nn.Shape{Channels: 10, Height: 1, Width: 1}) {
		t.Fatalf("output shape %v", got)
	}
}

func TestBuildSpecFusedChainSizing(t *testing.T) {
	ir := specIR()
	// Fuse conv1 (k=5, padded width 16) with pool1 (k=2, width 12).
	ir.Layers[0].PEGroup = 0
	ir.Layers[2].PEGroup = 0
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.PEs) != 2 {
		t.Fatalf("PE count = %d", len(spec.PEs))
	}
	chain := spec.PEs[0].Chain
	// Chain sized for the largest window (5) and the widest padded input (16).
	if chain.Kernel != 5 || chain.PaddedW != 16 {
		t.Fatalf("fused chain = %+v", chain)
	}
}

func TestBuildSpecParallelismIsMaxOverFusedLayers(t *testing.T) {
	ir := specIR()
	ir.Layers[0].PEGroup = 0
	ir.Layers[2].PEGroup = 0
	ir.Layers[2].Parallelism = condorir.Parallelism{In: 4, Out: 1}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if spec.PEs[0].Par != (condorir.Parallelism{In: 4, Out: 2}) {
		t.Fatalf("fused parallelism = %+v", spec.PEs[0].Par)
	}
}

func TestBuildSpecRejectsInvalidIR(t *testing.T) {
	ir := specIR()
	ir.FrequencyMHz = 0
	if _, err := BuildSpec(ir); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPEWeightAndPartialWords(t *testing.T) {
	spec, err := BuildSpec(specIR())
	if err != nil {
		t.Fatal(err)
	}
	pe0 := spec.PEs[0]
	// conv1: 4*1*5*5 weights + 4 bias.
	if got := pe0.WeightWords(); got != 104 {
		t.Fatalf("conv weight words = %d, want 104", got)
	}
	// partials: full output volume 4*12*12.
	if got := pe0.PartialWords(); got != 576 {
		t.Fatalf("conv partial words = %d, want 576", got)
	}
	pe2 := spec.PEs[2]
	// fc1: 10*(4*6*6) + 10 bias... input of fc1 is pool1 output 4x6x6=144.
	if got := pe2.WeightWords(); got != int64(10*144+10) {
		t.Fatalf("fc weight words = %d", got)
	}
	if got := pe2.PartialWords(); got != 10 {
		t.Fatalf("fc partial words = %d", got)
	}
}

func TestLayerCyclesModel(t *testing.T) {
	conv := &LayerHW{
		Name: "c", Kind: nn.Conv, Kernel: 3, Stride: 1, Pad: 0,
		InShape:    nn.Shape{Channels: 4, Height: 10, Width: 10},
		OutShape:   nn.Shape{Channels: 8, Height: 8, Width: 8},
		Activation: NoActivation, Normalize: NoActivation,
	}
	seq := condorir.Parallelism{In: 1, Out: 1}
	// compute = 64*8 = 512 > stream = 100 → 4 groups * 512 + fill.
	want := int64(4*512) + chainFill(conv)
	if got := LayerCycles(conv, seq); got != want {
		t.Fatalf("conv cycles = %d, want %d", got, want)
	}
	// With Out=8 the compute term collapses to 64 < stream 100 → stream-bound.
	par := condorir.Parallelism{In: 1, Out: 8}
	want = int64(4*100) + chainFill(conv)
	if got := LayerCycles(conv, par); got != want {
		t.Fatalf("parallel conv cycles = %d, want %d", got, want)
	}
	// With In=4 as well, one group.
	par = condorir.Parallelism{In: 4, Out: 8}
	want = int64(100) + chainFill(conv)
	if got := LayerCycles(conv, par); got != want {
		t.Fatalf("fully parallel conv cycles = %d, want %d", got, want)
	}

	pool := &LayerHW{
		Name: "p", Kind: nn.MaxPool, Kernel: 2, Stride: 2,
		InShape:    nn.Shape{Channels: 4, Height: 10, Width: 10},
		OutShape:   nn.Shape{Channels: 4, Height: 5, Width: 5},
		Activation: NoActivation, Normalize: NoActivation,
	}
	// Pooling is stream-bound: 4 groups * 100.
	want = int64(4*100) + chainFill(pool)
	if got := LayerCycles(pool, seq); got != want {
		t.Fatalf("pool cycles = %d, want %d", got, want)
	}

	fc := &LayerHW{
		Name: "f", Kind: nn.FullyConnected,
		InShape:    nn.Shape{Channels: 100, Height: 1, Width: 1},
		OutShape:   nn.Shape{Channels: 10, Height: 1, Width: 1},
		Activation: NoActivation, Normalize: NoActivation,
	}
	want = int64(100*10) + fcPipelineFill
	if got := LayerCycles(fc, seq); got != want {
		t.Fatalf("fc cycles = %d, want %d", got, want)
	}
	// Output parallelism divides the per-element loop.
	want = int64(100*5) + fcPipelineFill
	if got := LayerCycles(fc, condorir.Parallelism{In: 1, Out: 2}); got != want {
		t.Fatalf("parallel fc cycles = %d, want %d", got, want)
	}
}

func TestNumLayersCountsFolded(t *testing.T) {
	spec, err := BuildSpec(specIR())
	if err != nil {
		t.Fatal(err)
	}
	// conv1 + relu1 + pool1 + fc1 + prob = 5 logical layers.
	if got := spec.NumLayers(); got != 5 {
		t.Fatalf("NumLayers = %d, want 5", got)
	}
}
