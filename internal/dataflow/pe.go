package dataflow

import (
	"fmt"
	"math"

	"condor/internal/condorir"
	"condor/internal/fifo"
	"condor/internal/nn"
	"condor/internal/obs"
)

// PEStats aggregates one PE's activity over a batch run.
type PEStats struct {
	ID             string
	Images         int64
	Cycles         int64 // modeled busy cycles over the whole batch
	MACs           int64
	WindowsRead    int64
	ElemsIn        int64
	ElemsOut       int64
	SpilledPartial int64 // words of partial sums exchanged with the datamover
}

// CyclesPerImage returns the average modeled busy cycles per image.
func (s *PEStats) CyclesPerImage() int64 {
	if s.Images == 0 {
		return 0
	}
	return s.Cycles / s.Images
}

// LayerCycles models the PE-busy cycles one image spends in layer l at port
// parallelism par. The iteration space is (input-channel group, output
// position, output-channel group) with II=1 on the HLS pipeline; a channel
// group is additionally bounded below by the stream traversal of the padded
// input map (1 element/cycle through the filter chain), which dominates for
// sub-sampling layers. This is the single cycle model shared by the
// functional simulator and the analytic performance layer.
func LayerCycles(l *LayerHW, par condorir.Parallelism) int64 {
	par = par.Normalize()
	switch {
	case l.Kind == nn.Conv:
		groups := ceilDiv(l.InShape.Channels, par.In)
		outHW := int64(l.OutShape.Height) * int64(l.OutShape.Width)
		compute := outHW * int64(ceilDiv(l.OutShape.Channels, par.Out))
		stream := int64(l.PaddedHeight()) * int64(l.PaddedWidth())
		return int64(groups)*maxI64(compute, stream) + chainFill(l)
	case l.Kind == nn.MaxPool || l.Kind == nn.AvgPool:
		groups := ceilDiv(l.InShape.Channels, par.In)
		outHW := int64(l.OutShape.Height) * int64(l.OutShape.Width)
		stream := int64(l.PaddedHeight()) * int64(l.PaddedWidth())
		return int64(groups)*maxI64(outHW, stream) + chainFill(l)
	case l.Kind == nn.FullyConnected:
		// Single-input/single-output 1x1-convolution PE: every input element
		// is multiplied against each output neuron group.
		v := int64(l.InShape.Volume())
		return v*int64(ceilDiv(l.OutShape.Channels, par.Out)) + fcPipelineFill
	default:
		return 0
	}
}

// chainFill is the fill latency of the filter pipeline: the spatial distance
// between the first and last window access plus the HLS pipeline depth.
func chainFill(l *LayerHW) int64 {
	return int64((l.Kernel-1)*l.PaddedWidth()+l.Kernel) + hlsPipelineDepth
}

const (
	hlsPipelineDepth = 64 // floating-point MAC pipeline depth at target clocks
	fcPipelineFill   = 64
)

// PECyclesPerImage models the total busy cycles per image of a PE: the sum
// over its (possibly fused) layers plus the DDR round trips of fused-layer
// intermediates (one write + one read at one word per cycle).
func PECyclesPerImage(pe *PE) int64 {
	var total int64
	for i, l := range pe.Layers {
		total += LayerCycles(&l, pe.Par)
		if i+1 < len(pe.Layers) {
			total += 2 * int64(l.OutShape.Volume())
		}
	}
	return total
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		b = 1
	}
	return (a + b - 1) / b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// peExec executes one PE over a batch of images with the burst datapath:
// the input image is pulled from the PE's input FIFO in bursts, each layer
// fills a preallocated output buffer, and the final layer's output leaves
// in a single PushSlice. Arithmetic order, FIFO traffic totals, MAC counts
// and modeled cycles are identical to the word-at-a-time oracle in
// wordpath.go.
type peExec struct {
	pe    *PE
	dm    *Datamover
	in    *fifo.FIFO
	out   *fifo.FIFO
	stats *PEStats
	track *obs.Track // nil when tracing is off

	// Scratch buffers reused across layers and images to avoid the append
	// churn of the original per-word emit path.
	inBuf   []float32
	outBuf  []float32
	partial []float32
}

// growSlice returns s resized to n, reallocating only when capacity is
// short. Contents are unspecified — callers overwrite or clear.
func growSlice(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

// run processes batch images and closes the output FIFO. On error it drains
// the input stream so upstream PEs never block forever; the drain completes
// before run returns, so no goroutine outlives Accelerator.Run.
func (x *peExec) run(batch int) error {
	defer x.out.Close()
	for img := 0; img < batch; img++ {
		if err := x.runImage(img); err != nil {
			x.in.Drain()
			return fmt.Errorf("dataflow: %s image %d: %w", x.pe.ID, img, err)
		}
		x.stats.Images++
	}
	return nil
}

// runImage pushes one image through the PE's fused layer sequence.
func (x *peExec) runImage(img int) error {
	// The whole input image is burst out of the input FIFO up front; the
	// bounded FIFO still throttles the producer, PopInto just retires each
	// arriving chunk with one synchronisation instead of one per word.
	vol := x.pe.Layers[0].InShape.Volume()
	x.inBuf = growSlice(x.inBuf, vol)
	n := x.in.PopInto(x.inBuf)
	x.stats.ElemsIn += int64(n)
	if n < vol {
		return fmt.Errorf("input stream ended after %d of %d elements", n, vol)
	}
	cur := x.inBuf
	for li := range x.pe.Layers {
		l := &x.pe.Layers[li]
		if len(cur) != l.InShape.Volume() {
			return fmt.Errorf("fused intermediate has %d words, layer expects %d", len(cur), l.InShape.Volume())
		}
		x.outBuf = growSlice(x.outBuf, l.OutShape.Volume())
		out := x.outBuf

		// The span brackets the PE's cumulative cycle counter: its cycle
		// width is this layer's LayerCycles plus, for fused layers, the DDR
		// round trip of the intermediate — so per-track span totals sum to
		// exactly PEStats.Cycles.
		sid := 0
		if x.track != nil {
			sid = x.track.Begin(l.Name, x.stats.Cycles)
		}

		var err error
		switch l.Kind {
		case nn.Conv:
			err = x.runConv(l, cur, out)
		case nn.MaxPool, nn.AvgPool:
			err = x.runPool(l, cur, out)
		case nn.FullyConnected:
			err = x.runFC(l, cur, out)
		default:
			err = fmt.Errorf("layer %q: unsupported PE kind %v", l.Name, l.Kind)
		}
		if err != nil {
			return fmt.Errorf("layer %q: %w", l.Name, err)
		}
		x.stats.Cycles += LayerCycles(l, x.pe.Par)

		if li == len(x.pe.Layers)-1 {
			x.out.PushSlice(out)
			x.stats.ElemsOut += int64(len(out))
		} else {
			// Fused-layer handoff goes through the datamover (the paper's
			// partial-result exchange): write the intermediate to DDR and
			// stream it back for the next layer's pass.
			name := fmt.Sprintf("%s/fused/%s/img%d", x.pe.ID, l.Name, img)
			x.dm.WriteBuffer(name, out)
			cur, err = x.dm.ReadBuffer(name)
			if err != nil {
				return err
			}
			x.stats.Cycles += 2 * int64(len(out))
		}
		if x.track != nil {
			x.track.AddWords(sid, int64(len(out)))
			x.track.End(sid, x.stats.Cycles)
		}
	}
	return nil
}

// runConv implements the convolutional PE schedule: input feature maps are
// processed sequentially (one filter-chain pass each); for every window
// position the K² taps are read once and reused across all output channels,
// accumulating into the partial-sum buffer; after the last input map the
// bias is added, the folded activation applied, and the output maps are
// written channel-major into out.
func (x *peExec) runConv(l *LayerHW, cur, out []float32) error {
	c, f, k := l.InShape.Channels, l.OutShape.Channels, l.Kernel
	outHW := l.OutShape.Height * l.OutShape.Width
	inHW := l.InShape.Height * l.InShape.Width
	w, b, err := x.dm.Weights(l.Name, x.pe.WeightsOnChip)
	if err != nil {
		return err
	}
	if len(w) != f*c*k*k {
		return fmt.Errorf("weight stream has %d words, want %d", len(w), f*c*k*k)
	}
	x.partial = growSlice(x.partial, f*outHW)
	partial := x.partial
	clear(partial)
	kk := k * k
	for ci := 0; ci < c; ci++ {
		if err := x.stencilRows(l, cur[ci*inHW:(ci+1)*inHW], func(pos int, win []fifo.Word) {
			for fi := 0; fi < f; fi++ {
				base := (fi*c + ci) * kk
				acc := partial[fi*outHW+pos]
				for t := 0; t < kk; t++ {
					acc += w[base+t] * win[t]
				}
				partial[fi*outHW+pos] = acc
			}
			x.stats.MACs += int64(f * kk)
		}); err != nil {
			return err
		}
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	for fi := 0; fi < f; fi++ {
		var bias float32
		if len(b) > 0 {
			bias = b[fi]
		}
		for pos := 0; pos < outHW; pos++ {
			out[fi*outHW+pos] = applyActivation(l.Activation, partial[fi*outHW+pos]+bias)
		}
	}
	return nil
}

// runPool implements the sub-sampling PE: one filter-chain pass per channel,
// each window replaced by its maximum or average.
func (x *peExec) runPool(l *LayerHW, cur, out []float32) error {
	k := l.Kernel
	isMax := l.Kind == nn.MaxPool
	inv := 1 / float32(k*k)
	outHW := l.OutShape.Height * l.OutShape.Width
	inHW := l.InShape.Height * l.InShape.Width
	for ci := 0; ci < l.InShape.Channels; ci++ {
		base := ci * outHW
		if err := x.stencilRows(l, cur[ci*inHW:(ci+1)*inHW], func(pos int, win []fifo.Word) {
			var v float32
			if isMax {
				v = float32(math.Inf(-1))
				for _, e := range win {
					if e > v {
						v = e
					}
				}
			} else {
				for _, e := range win {
					v += e
				}
				v *= inv
			}
			out[base+pos] = applyActivation(l.Activation, v)
		}); err != nil {
			return err
		}
	}
	return nil
}

// stencilRows streams one input map through the PE's filter chain at row
// granularity, invoking fn for every window in row-major output order.
func (x *peExec) stencilRows(l *LayerHW, chmap []float32, fn func(pos int, win []fifo.Word)) error {
	src := fifo.New(x.pe.ID+"/pad", padFIFODepth(l))
	padErr := make(chan error, 1)
	go func() {
		padErr <- streamPaddedRows(chmap, l.InShape.Height, l.InShape.Width, l.Pad, src)
	}()
	run, err := x.pe.Chain.startRows(l, src)
	if err != nil {
		return err
	}
	rr, err := x.pe.Chain.newRowWindowReader(run, l)
	if err != nil {
		return err
	}
	outH, outW := l.OutShape.Height, l.OutShape.Width
	pos := 0
	for oy := 0; oy < outH; oy++ {
		if !rr.nextRow() {
			run.wait()
			if err := <-padErr; err != nil {
				return err
			}
			return fmt.Errorf("filter chain delivered only %d of %d windows", pos, outH*outW)
		}
		for ox := 0; ox < outW; ox++ {
			fn(pos, rr.window(ox))
			pos++
		}
		x.stats.WindowsRead += int64(outW)
	}
	run.wait()
	return <-padErr
}

// runFC implements the fully-connected PE as a single-input/single-output
// 1x1 convolution. The loop nest is output-major over the contiguous weight
// rows; each neuron's accumulation visits the inputs in the same order as
// the streaming oracle, so the result is bit-identical.
func (x *peExec) runFC(l *LayerHW, cur, out []float32) error {
	v := l.InShape.Volume()
	o := l.OutShape.Channels
	w, b, err := x.dm.Weights(l.Name, x.pe.WeightsOnChip)
	if err != nil {
		return err
	}
	if len(w) != o*v {
		return fmt.Errorf("weight stream has %d words, want %d", len(w), o*v)
	}
	x.partial = growSlice(x.partial, o)
	partial := x.partial
	clear(partial)
	copy(partial, b)
	in := cur[:v]
	for oi := 0; oi < o; oi++ {
		acc := partial[oi]
		wrow := w[oi*v : (oi+1)*v]
		for h, xv := range in {
			acc += wrow[h] * xv
		}
		partial[oi] = acc
	}
	x.stats.MACs += int64(o) * int64(v)
	for i := range partial {
		partial[i] = applyActivation(l.Activation, partial[i])
	}
	if l.Normalize != NoActivation {
		normalizeInPlace(l.Normalize, partial)
	}
	copy(out, partial)
	return nil
}

// applyActivation applies the folded pointwise non-linearity.
func applyActivation(kind nn.Kind, v float32) float32 {
	switch kind {
	case nn.ReLU:
		if v < 0 {
			return 0
		}
		return v
	case nn.Sigmoid:
		return float32(1 / (1 + math.Exp(-float64(v))))
	case nn.TanH:
		return float32(math.Tanh(float64(v)))
	default:
		return v
	}
}

// normalizeInPlace applies the SoftMax/LogSoftMax normalisation stage using
// the same numerically-stable formulation as the reference engine.
func normalizeInPlace(kind nn.Kind, vals []float32) {
	max := math.Inf(-1)
	for _, v := range vals {
		if float64(v) > max {
			max = float64(v)
		}
	}
	var sum float64
	for _, v := range vals {
		sum += math.Exp(float64(v) - max)
	}
	logSum := math.Log(sum)
	for i, v := range vals {
		if kind == nn.LogSoftMax {
			vals[i] = float32(float64(v) - max - logSum)
		} else {
			vals[i] = float32(math.Exp(float64(v)-max) / sum)
		}
	}
}
