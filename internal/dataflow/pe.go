package dataflow

import (
	"fmt"
	"math"

	"condor/internal/condorir"
	"condor/internal/fifo"
	"condor/internal/nn"
	"condor/internal/obs"
)

// PEStats aggregates one PE's activity over a batch run.
type PEStats struct {
	ID             string
	Images         int64
	Cycles         int64 // modeled busy cycles over the whole batch
	MACs           int64
	WindowsRead    int64
	ElemsIn        int64
	ElemsOut       int64
	SpilledPartial int64 // words of partial sums exchanged with the datamover

	// MaxRequantScale is the largest per-tensor requantization scale this PE
	// applied at its output boundary over the batch (int8 datapath only;
	// zero on the float paths). The bounded-error equivalence harness uses
	// it to derive the admissible deviation from the float oracle.
	MaxRequantScale float64

	// MaxWinogradMag is the largest pre-activation output magnitude any
	// Winograd-mode layer of this PE produced over the batch; zero when no
	// layer ran in winograd_f23 mode. RunStats.WinogradErrorBound scales it
	// into the admissible transform-domain rounding deviation from the
	// direct-convolution oracle.
	MaxWinogradMag float64
}

// CyclesPerImage returns the average modeled busy cycles per image.
func (s *PEStats) CyclesPerImage() int64 {
	if s.Images == 0 {
		return 0
	}
	return s.Cycles / s.Images
}

// LayerCycles models the PE-busy cycles one image spends in layer l at port
// parallelism par. The iteration space is (input-channel group, output
// position, output-channel group) with II=1 on the HLS pipeline; a channel
// group is additionally bounded below by the stream traversal of the padded
// input map (1 element/cycle through the filter chain), which dominates for
// sub-sampling layers. This is the single cycle model shared by the
// functional simulator and the analytic performance layer.
func LayerCycles(l *LayerHW, par condorir.Parallelism) int64 {
	return LayerCyclesAt(l, par, 1)
}

// LayerCyclesAt is LayerCycles with an explicit lane count: on the packed
// int8 datapath each FIFO word carries `lanes` activation elements, so the
// stream-traversal terms (padded-map traversal for features extraction, the
// input-volume walk for FC) shrink by the lane factor — ceil'd, since a
// padded tail word still takes its cycle. Compute terms are unchanged: the
// MAC count per output cell does not depend on how elements were packed in
// flight. lanes=1 reproduces the float model exactly.
func LayerCyclesAt(l *LayerHW, par condorir.Parallelism, lanes int) int64 {
	if lanes < 1 {
		lanes = 1
	}
	par = par.Normalize()
	switch {
	case l.Kind == nn.Conv:
		groups := ceilDiv(l.InShape.Channels, par.In)
		outHW := int64(l.OutShape.Height) * int64(l.OutShape.Width)
		outGroups := int64(ceilDiv(l.OutShape.Channels, par.Out))
		stream := ceilDiv64(int64(l.PaddedHeight())*int64(l.PaddedWidth()), int64(lanes))
		switch l.Algo() {
		case AlgoGEMM:
			// The padded map is unrolled once into the on-chip im2col
			// panel (one stream traversal total, not one per input-channel
			// group), and the dual-ported panel BRAM feeds the MAC array
			// two output positions per cycle.
			compute := ceilDiv64(outHW, 2) * outGroups
			return maxI64(int64(groups)*compute, stream) + hlsPipelineDepth
		case AlgoWinograd:
			// One 2×2 output tile per cycle per output-channel group: the
			// 16-lane element-wise multiply stage retires a whole
			// transformed tile each cycle. Input tiles are gathered from
			// the same padded-map traversal as the direct path; the extra
			// fill term covers the input/inverse transform pipelines.
			tiles := int64((l.OutShape.Height/2)*(l.OutShape.Width/2)) * outGroups
			return int64(groups)*maxI64(tiles, stream) + chainFill(l) + winogradXformFill
		default:
			compute := outHW * outGroups
			return int64(groups)*maxI64(compute, stream) + chainFill(l)
		}
	case l.Kind == nn.MaxPool || l.Kind == nn.AvgPool:
		groups := ceilDiv(l.InShape.Channels, par.In)
		outHW := int64(l.OutShape.Height) * int64(l.OutShape.Width)
		stream := ceilDiv64(int64(l.PaddedHeight())*int64(l.PaddedWidth()), int64(lanes))
		return int64(groups)*maxI64(outHW, stream) + chainFill(l)
	case l.Kind == nn.FullyConnected:
		// Single-input/single-output 1x1-convolution PE: every input element
		// is multiplied against each output neuron group. Packed lanes feed
		// the MAC array `lanes` elements per cycle.
		v := ceilDiv64(int64(l.InShape.Volume()), int64(lanes))
		return v*int64(ceilDiv(l.OutShape.Channels, par.Out)) + fcPipelineFill
	default:
		return 0
	}
}

// chainFill is the fill latency of the filter pipeline: the spatial distance
// between the first and last window access plus the HLS pipeline depth.
func chainFill(l *LayerHW) int64 {
	return int64((l.Kernel-1)*l.PaddedWidth()+l.Kernel) + hlsPipelineDepth
}

const (
	hlsPipelineDepth = 64 // floating-point MAC pipeline depth at target clocks
	fcPipelineFill   = 64
	// winogradXformFill is the extra fill latency of the Winograd input
	// transform (BᵀdB) and inverse transform (AᵀMA) pipeline stages.
	winogradXformFill = 16
)

// PECyclesPerImage models the total busy cycles per image of a PE: the sum
// over its (possibly fused) layers plus the DDR round trips of fused-layer
// intermediates (one write + one read at one word per cycle).
func PECyclesPerImage(pe *PE) int64 {
	return PECyclesPerImageAt(pe, 1)
}

// PECyclesPerImageAt is PECyclesPerImage with an explicit lane count: the
// fused-layer handoff also moves packed words, so its DDR round trip shrinks
// by the lane factor alongside the per-layer stream terms.
func PECyclesPerImageAt(pe *PE, lanes int) int64 {
	if lanes < 1 {
		lanes = 1
	}
	var total int64
	for i, l := range pe.Layers {
		total += LayerCyclesAt(&l, pe.Par, lanes)
		if i+1 < len(pe.Layers) {
			total += 2 * ceilDiv64(int64(l.OutShape.Volume()), int64(lanes))
		}
	}
	return total
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		b = 1
	}
	return (a + b - 1) / b
}

func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		b = 1
	}
	return (a + b - 1) / b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// peExec executes one PE over a batch of images with the burst datapath:
// the input image is pulled from the PE's input FIFO in bursts, each layer
// fills a preallocated output buffer, and the final layer's output leaves
// in a single PushSlice. Arithmetic order, FIFO traffic totals, MAC counts
// and modeled cycles are identical to the word-at-a-time oracle in
// wordpath.go.
//
// The PE's modeled port parallelism (Par.In input maps read concurrently,
// Par.Out output maps computed in parallel) executes for real on the host:
// runConv/runFC shard the output-channel range into Par.Out bands and
// runPool runs Par.In channel passes concurrently, on a worker pool bounded
// by GOMAXPROCS. Banding never changes any per-cell accumulation chain, so
// results stay bit-identical to the oracle at every parallelism setting.
type peExec struct {
	pe    *PE
	dm    *Datamover
	in    *fifo.FIFO
	out   *fifo.FIFO
	stats *PEStats
	track *obs.Track // nil when tracing is off

	// Session hooks: onImage advances the RunBatch barrier after each
	// retired image; onErr latches a failure before the input drain starts,
	// so the feeder learns to close the head FIFO and the drain terminates.
	onImage func()
	onErr   func(error)

	// pool executes port-parallel bands; nil when the PE's parallelism or
	// the processor budget is 1 (the sequential schedule).
	pool *workerPool
	// runners are the filter-chain instances: runner 0 serves sequential
	// passes, runners 1..Par.In-1 the concurrent passes of a pool layer.
	runners []*stencilRun

	// layers caches per-layer state resolved once per batch in prepare:
	// weight/bias slices (hoisted out of the per-image datamover lookup)
	// and the fused-handoff buffer key (hoisted out of per-image Sprintf).
	layers []peLayerState

	// wg is the accelerator's pre-transformed Winograd weight cache
	// (layer name → f·c·16 transformed words), shared read-only across CU
	// clones like the int8 code store. Nil when no layer runs in
	// winograd_f23 mode; prepare falls back to transforming in place.
	wg map[string][]float32

	// Scratch buffers reused across layers and images to avoid the append
	// churn of the original per-word emit path.
	inBuf   []float32
	outBuf  []float32
	partial []float32
	winBuf  []float32 // one channel pass's windows, for Out-banded MACs
	padBuf  []float32 // zero-padded channel plane (GEMM/Winograd modes)
	panel   []float32 // im2col panel, K² tap-major rows of OH·OW positions
	vBuf    []float32 // Winograd transformed input tiles, 16 words per tile
	mBuf    []float32 // Winograd transform-domain accumulators, f·tiles·16
}

// peLayerState is the execution state of one fused layer, resolved once per
// batch instead of once per image.
type peLayerState struct {
	w, b        []float32
	wg          []float32 // Winograd-transformed weights (winograd_f23 layers only)
	streamWords int64     // weight+bias words re-read from DDR per image (0 when on-chip)
	fusedKey    string    // datamover buffer key for the fused-layer handoff
}

// growSlice returns s resized to n, reallocating only when capacity is
// short. Contents are unspecified — callers overwrite or clear.
func growSlice(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

// prepare resolves the per-layer cached state and sizes the worker pool.
func (x *peExec) prepare() error {
	x.layers = make([]peLayerState, len(x.pe.Layers))
	for li := range x.pe.Layers {
		l := &x.pe.Layers[li]
		st := &x.layers[li]
		if li < len(x.pe.Layers)-1 {
			st.fusedKey = x.pe.ID + "/fused/" + l.Name
		}
		if l.Kind != nn.Conv && l.Kind != nn.FullyConnected {
			continue
		}
		w, b, err := x.dm.WeightsRef(l.Name)
		if err != nil {
			return fmt.Errorf("layer %q: %w", l.Name, err)
		}
		if len(w) != l.WeightWords() {
			return fmt.Errorf("layer %q: weight stream has %d words, want %d", l.Name, len(w), l.WeightWords())
		}
		st.w, st.b = w, b
		if !x.pe.WeightsOnChip {
			st.streamWords = int64(len(w) + len(b))
		}
		if l.Kind == nn.Conv && l.Algo() == AlgoWinograd {
			if !WinogradOK(l.Kernel, l.Stride, l.OutShape) {
				return fmt.Errorf("layer %q: winograd_f23 requires a 3×3/stride-1 kernel and 2×2-tile-aligned output, got k=%d s=%d out %dx%d",
					l.Name, l.Kernel, l.Stride, l.OutShape.Height, l.OutShape.Width)
			}
			st.wg = x.wg[l.Name]
			if st.wg == nil {
				// Spec mutated after Instantiate (tests do this): derive
				// the transformed weights locally instead.
				st.wg = winogradTransformWeights(w, l.InShape.Channels, l.OutShape.Channels)
			}
		}
	}
	width := x.pe.Par.Normalize()
	par := width.In
	if width.Out > par {
		par = width.Out
	}
	x.pool = newPEWorkerPool(par)
	return nil
}

// runner returns (creating as needed) the i-th filter-chain instance.
func (x *peExec) runner(i int) *stencilRun {
	for len(x.runners) <= i {
		x.runners = append(x.runners, newStencilRun(x.pe, len(x.runners)))
	}
	return x.runners[i]
}

// runStream is the resident session loop: frames are consumed until the
// input stream ends, each validated against the expected epoch sequence and
// forwarded under the same tag. prepare runs once per session, not once per
// image, so batches amortize it. On error the executor latches the failure
// first (so the session feeder stops and closes the head FIFO) and then
// drains its input; the drain completes before runStream returns, so no
// goroutine outlives the session.
func (x *peExec) runStream() error {
	defer x.out.Close()
	fail := func(err error) error {
		err = fmt.Errorf("dataflow: %s: %w", x.pe.ID, err)
		x.onErr(err)
		x.in.Drain()
		return err
	}
	if err := x.prepare(); err != nil {
		return fail(err)
	}
	defer x.pool.close()
	var epoch uint16
	for {
		e, ok, err := x.in.PopFrameHeader()
		if !ok {
			return nil // end of session
		}
		if err != nil {
			return fail(err)
		}
		if e != epoch {
			return fail(fmt.Errorf("frame epoch %d arrived, expected %d", e, epoch))
		}
		x.out.PushFrameHeader(e)
		if err := x.runImage(int(epoch)); err != nil {
			return fail(fmt.Errorf("epoch %d: %w", e, err))
		}
		x.stats.Images++
		epoch++
		x.onImage()
	}
}

// runImage pushes one image through the PE's fused layer sequence.
func (x *peExec) runImage(img int) error {
	// The whole input image is burst out of the input FIFO up front; the
	// bounded FIFO still throttles the producer, PopInto just retires each
	// arriving chunk with one synchronisation instead of one per word.
	vol := x.pe.Layers[0].InShape.Volume()
	x.inBuf = growSlice(x.inBuf, vol)
	n := x.in.PopInto(x.inBuf)
	x.stats.ElemsIn += int64(n)
	if n < vol {
		return fmt.Errorf("input stream ended after %d of %d elements", n, vol)
	}
	cur := x.inBuf
	for li := range x.pe.Layers {
		l := &x.pe.Layers[li]
		st := &x.layers[li]
		if len(cur) != l.InShape.Volume() {
			return fmt.Errorf("fused intermediate has %d words, layer expects %d", len(cur), l.InShape.Volume())
		}
		x.outBuf = growSlice(x.outBuf, l.OutShape.Volume())
		out := x.outBuf

		// The span brackets the PE's cumulative cycle counter: its cycle
		// width is this layer's LayerCycles plus, for fused layers, the DDR
		// round trip of the intermediate — so per-track span totals sum to
		// exactly PEStats.Cycles.
		sid := 0
		if x.track != nil {
			sid = x.track.Begin(l.Name, x.stats.Cycles)
		}

		var err error
		switch l.Kind {
		case nn.Conv:
			switch l.Algo() {
			case AlgoGEMM:
				err = x.runConvGEMM(l, st, cur, out)
			case AlgoWinograd:
				err = x.runConvWinograd(l, st, cur, out)
			default:
				err = x.runConv(l, st, cur, out)
			}
		case nn.MaxPool, nn.AvgPool:
			err = x.runPool(l, cur, out)
		case nn.FullyConnected:
			err = x.runFC(l, st, cur, out)
		default:
			err = fmt.Errorf("layer %q: unsupported PE kind %v", l.Name, l.Kind)
		}
		if err != nil {
			return fmt.Errorf("layer %q: %w", l.Name, err)
		}
		x.stats.Cycles += LayerCycles(l, x.pe.Par)

		if li == len(x.pe.Layers)-1 {
			x.out.PushSlice(out)
			x.stats.ElemsOut += int64(len(out))
		} else {
			// Fused-layer handoff goes through the datamover (the paper's
			// partial-result exchange): write the intermediate to DDR and
			// stream it back for the next layer's pass.
			x.dm.WriteBuffer(st.fusedKey, out)
			cur, err = x.dm.ReadBuffer(st.fusedKey)
			if err != nil {
				return err
			}
			x.stats.Cycles += 2 * int64(len(out))
		}
		if x.track != nil {
			x.track.AddWords(sid, int64(len(out)))
			x.track.End(sid, x.stats.Cycles)
		}
	}
	return nil
}

// runConv implements the convolutional PE schedule: input feature maps are
// processed sequentially (one filter-chain pass each); for every window
// position the K² taps are read once and reused across all output channels,
// accumulating into the partial-sum buffer; after the last input map the
// bias is added, the folded activation applied, and the output maps are
// written channel-major into out.
//
// With Par.Out > 1 the output-channel range of each pass is sharded into
// bands on the worker pool. Every (fi, pos) cell still accumulates over the
// input channels in ci-major order with the same fixed-order k²-tap dot
// product — banding partitions fi, never an accumulation chain — so results
// are bit-identical to the sequential schedule and to the RunWords oracle.
func (x *peExec) runConv(l *LayerHW, st *peLayerState, cur, out []float32) error {
	c, f, k := l.InShape.Channels, l.OutShape.Channels, l.Kernel
	outHW := l.OutShape.Height * l.OutShape.Width
	inHW := l.InShape.Height * l.InShape.Width
	w, b := st.w, st.b
	if st.streamWords > 0 {
		x.dm.AccountWeightStream(st.streamWords)
	}
	x.partial = growSlice(x.partial, f*outHW)
	partial := x.partial
	clear(partial)
	kk := k * k
	outBands := x.pe.Par.Normalize().Out
	banded := x.pool != nil && outBands > 1 && f > 1
	if banded {
		x.winBuf = growSlice(x.winBuf, outHW*kk)
	}
	for ci := 0; ci < c; ci++ {
		chmap := cur[ci*inHW : (ci+1)*inHW]
		if banded {
			// Parallel ports: collect the pass's windows, then fan the MAC
			// work across the output-channel bands.
			winBuf := x.winBuf
			if err := x.runner(0).pass(l, chmap, func(pos int, win []fifo.Word) {
				copy(winBuf[pos*kk:(pos+1)*kk], win)
			}); err != nil {
				return err
			}
			x.pool.bands(f, outBands, func(_, lo, hi int) {
				for fi := lo; fi < hi; fi++ {
					base := (fi*c + ci) * kk
					off := fi * outHW
					for pos := 0; pos < outHW; pos++ {
						acc := partial[off+pos]
						win := winBuf[pos*kk : (pos+1)*kk]
						for t := 0; t < kk; t++ {
							acc += w[base+t] * win[t]
						}
						partial[off+pos] = acc
					}
				}
			})
		} else {
			if err := x.runner(0).pass(l, chmap, func(pos int, win []fifo.Word) {
				for fi := 0; fi < f; fi++ {
					base := (fi*c + ci) * kk
					acc := partial[fi*outHW+pos]
					for t := 0; t < kk; t++ {
						acc += w[base+t] * win[t]
					}
					partial[fi*outHW+pos] = acc
				}
			}); err != nil {
				return err
			}
		}
		x.stats.WindowsRead += int64(outHW)
		x.stats.MACs += int64(f) * int64(kk) * int64(outHW)
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	// Bias + activation is pointwise per output cell, so output-channel
	// banding cannot reorder any arithmetic.
	x.pool.bands(f, outBands, func(_, lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			var bias float32
			if len(b) > 0 {
				bias = b[fi]
			}
			for pos := 0; pos < outHW; pos++ {
				out[fi*outHW+pos] = applyActivation(l.Activation, partial[fi*outHW+pos]+bias)
			}
		}
	})
	return nil
}

// runPool implements the sub-sampling PE: one filter-chain pass per channel,
// each window replaced by its maximum or average. Channels are independent
// maps, so with Par.In > 1 the channel range is sharded into bands that run
// concurrently, one filter-chain instance per band; within a channel the
// window order (and thus every float operation) is unchanged.
func (x *peExec) runPool(l *LayerHW, cur, out []float32) error {
	k := l.Kernel
	isMax := l.Kind == nn.MaxPool
	inv := 1 / float32(k*k)
	outHW := l.OutShape.Height * l.OutShape.Width
	inHW := l.InShape.Height * l.InShape.Width
	c := l.InShape.Channels
	poolWindow := func(win []fifo.Word) float32 {
		if isMax {
			v := float32(math.Inf(-1))
			for _, e := range win {
				if e > v {
					v = e
				}
			}
			return v
		}
		var v float32
		for _, e := range win {
			v += e
		}
		return v * inv
	}

	inBands := x.pe.Par.Normalize().In
	if x.pool == nil || inBands <= 1 || c <= 1 {
		for ci := 0; ci < c; ci++ {
			base := ci * outHW
			if err := x.runner(0).pass(l, cur[ci*inHW:(ci+1)*inHW], func(pos int, win []fifo.Word) {
				out[base+pos] = applyActivation(l.Activation, poolWindow(win))
			}); err != nil {
				return err
			}
		}
	} else {
		// One chain instance per band; instantiate before dispatch so the
		// bands never mutate shared executor state.
		x.runner(inBands - 1)
		errs := make([]error, inBands)
		x.pool.bands(c, inBands, func(band, lo, hi int) {
			r := x.runners[band]
			for ci := lo; ci < hi; ci++ {
				base := ci * outHW
				if err := r.pass(l, cur[ci*inHW:(ci+1)*inHW], func(pos int, win []fifo.Word) {
					out[base+pos] = applyActivation(l.Activation, poolWindow(win))
				}); err != nil {
					errs[band] = err
					return
				}
			}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	x.stats.WindowsRead += int64(c) * int64(outHW)
	return nil
}

// runFC implements the fully-connected PE as a single-input/single-output
// 1x1 convolution. The loop nest is output-major over the contiguous weight
// rows; each neuron's accumulation visits the inputs in the same order as
// the streaming oracle, so the result is bit-identical — and since banding
// shards whole neurons, Par.Out-parallel execution preserves that exactly.
func (x *peExec) runFC(l *LayerHW, st *peLayerState, cur, out []float32) error {
	v := l.InShape.Volume()
	o := l.OutShape.Channels
	w, b := st.w, st.b
	if st.streamWords > 0 {
		x.dm.AccountWeightStream(st.streamWords)
	}
	x.partial = growSlice(x.partial, o)
	partial := x.partial
	clear(partial)
	copy(partial, b)
	in := cur[:v]
	x.pool.bands(o, x.pe.Par.Normalize().Out, func(_, lo, hi int) {
		for oi := lo; oi < hi; oi++ {
			acc := partial[oi]
			wrow := w[oi*v : (oi+1)*v]
			for h, xv := range in {
				acc += wrow[h] * xv
			}
			partial[oi] = acc
		}
	})
	x.stats.MACs += int64(o) * int64(v)
	for i := range partial {
		partial[i] = applyActivation(l.Activation, partial[i])
	}
	if l.Normalize != NoActivation {
		normalizeInPlace(l.Normalize, partial)
	}
	copy(out, partial)
	return nil
}

// applyActivation applies the folded pointwise non-linearity.
func applyActivation(kind nn.Kind, v float32) float32 {
	switch kind {
	case nn.ReLU:
		if v < 0 {
			return 0
		}
		return v
	case nn.Sigmoid:
		return float32(1 / (1 + math.Exp(-float64(v))))
	case nn.TanH:
		return float32(math.Tanh(float64(v)))
	default:
		return v
	}
}

// normalizeInPlace applies the SoftMax/LogSoftMax normalisation stage using
// the same numerically-stable formulation as the reference engine.
func normalizeInPlace(kind nn.Kind, vals []float32) {
	max := math.Inf(-1)
	for _, v := range vals {
		if float64(v) > max {
			max = float64(v)
		}
	}
	var sum float64
	for _, v := range vals {
		sum += math.Exp(float64(v) - max)
	}
	logSum := math.Log(sum)
	for i, v := range vals {
		if kind == nn.LogSoftMax {
			vals[i] = float32(float64(v) - max - logSum)
		} else {
			vals[i] = float32(math.Exp(float64(v)-max) / sum)
		}
	}
}
