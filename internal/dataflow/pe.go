package dataflow

import (
	"fmt"
	"math"

	"condor/internal/condorir"
	"condor/internal/fifo"
	"condor/internal/nn"
)

// PEStats aggregates one PE's activity over a batch run.
type PEStats struct {
	ID             string
	Images         int64
	Cycles         int64 // modeled busy cycles over the whole batch
	MACs           int64
	WindowsRead    int64
	ElemsIn        int64
	ElemsOut       int64
	SpilledPartial int64 // words of partial sums exchanged with the datamover
}

// CyclesPerImage returns the average modeled busy cycles per image.
func (s *PEStats) CyclesPerImage() int64 {
	if s.Images == 0 {
		return 0
	}
	return s.Cycles / s.Images
}

// LayerCycles models the PE-busy cycles one image spends in layer l at port
// parallelism par. The iteration space is (input-channel group, output
// position, output-channel group) with II=1 on the HLS pipeline; a channel
// group is additionally bounded below by the stream traversal of the padded
// input map (1 element/cycle through the filter chain), which dominates for
// sub-sampling layers. This is the single cycle model shared by the
// functional simulator and the analytic performance layer.
func LayerCycles(l *LayerHW, par condorir.Parallelism) int64 {
	par = par.Normalize()
	switch {
	case l.Kind == nn.Conv:
		groups := ceilDiv(l.InShape.Channels, par.In)
		outHW := int64(l.OutShape.Height) * int64(l.OutShape.Width)
		compute := outHW * int64(ceilDiv(l.OutShape.Channels, par.Out))
		stream := int64(l.PaddedHeight()) * int64(l.PaddedWidth())
		return int64(groups)*maxI64(compute, stream) + chainFill(l)
	case l.Kind == nn.MaxPool || l.Kind == nn.AvgPool:
		groups := ceilDiv(l.InShape.Channels, par.In)
		outHW := int64(l.OutShape.Height) * int64(l.OutShape.Width)
		stream := int64(l.PaddedHeight()) * int64(l.PaddedWidth())
		return int64(groups)*maxI64(outHW, stream) + chainFill(l)
	case l.Kind == nn.FullyConnected:
		// Single-input/single-output 1x1-convolution PE: every input element
		// is multiplied against each output neuron group.
		v := int64(l.InShape.Volume())
		return v*int64(ceilDiv(l.OutShape.Channels, par.Out)) + fcPipelineFill
	default:
		return 0
	}
}

// chainFill is the fill latency of the filter pipeline: the spatial distance
// between the first and last window access plus the HLS pipeline depth.
func chainFill(l *LayerHW) int64 {
	return int64((l.Kernel-1)*l.PaddedWidth()+l.Kernel) + hlsPipelineDepth
}

const (
	hlsPipelineDepth = 64 // floating-point MAC pipeline depth at target clocks
	fcPipelineFill   = 64
)

// PECyclesPerImage models the total busy cycles per image of a PE: the sum
// over its (possibly fused) layers plus the DDR round trips of fused-layer
// intermediates (one write + one read at one word per cycle).
func PECyclesPerImage(pe *PE) int64 {
	var total int64
	for i, l := range pe.Layers {
		total += LayerCycles(&l, pe.Par)
		if i+1 < len(pe.Layers) {
			total += 2 * int64(l.OutShape.Volume())
		}
	}
	return total
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		b = 1
	}
	return (a + b - 1) / b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// peExec executes one PE over a batch of images.
type peExec struct {
	pe    *PE
	dm    *Datamover
	in    *fifo.FIFO
	out   *fifo.FIFO
	stats *PEStats
}

// run processes batch images and closes the output FIFO. On error it drains
// the input stream so upstream PEs never block forever.
func (x *peExec) run(batch int) error {
	defer x.out.Close()
	for img := 0; img < batch; img++ {
		if err := x.runImage(img); err != nil {
			go x.in.Drain()
			return fmt.Errorf("dataflow: %s image %d: %w", x.pe.ID, img, err)
		}
		x.stats.Images++
	}
	return nil
}

// runImage pushes one image through the PE's fused layer sequence.
func (x *peExec) runImage(img int) error {
	// cur holds the intermediate activations between fused layers; nil for
	// the first layer, whose input arrives over the input FIFO.
	var cur []float32
	for li := range x.pe.Layers {
		l := &x.pe.Layers[li]

		read, err := x.layerReader(l, cur)
		if err != nil {
			return err
		}
		var outBuf []float32
		last := li == len(x.pe.Layers)-1
		emit := func(v float32) {
			if last {
				x.out.Push(v)
				x.stats.ElemsOut++
			} else {
				outBuf = append(outBuf, v)
			}
		}

		switch l.Kind {
		case nn.Conv:
			err = x.runConv(l, read, emit)
		case nn.MaxPool, nn.AvgPool:
			err = x.runPool(l, read, emit)
		case nn.FullyConnected:
			err = x.runFC(l, read, emit)
		default:
			err = fmt.Errorf("layer %q: unsupported PE kind %v", l.Name, l.Kind)
		}
		if err != nil {
			return fmt.Errorf("layer %q: %w", l.Name, err)
		}
		x.stats.Cycles += LayerCycles(l, x.pe.Par)

		if !last {
			// Fused-layer handoff goes through the datamover (the paper's
			// partial-result exchange): write the intermediate to DDR and
			// stream it back for the next layer's pass.
			name := fmt.Sprintf("%s/fused/%s/img%d", x.pe.ID, l.Name, img)
			x.dm.WriteBuffer(name, outBuf)
			cur, err = x.dm.ReadBuffer(name)
			if err != nil {
				return err
			}
			x.stats.Cycles += 2 * int64(len(outBuf))
		}
	}
	return nil
}

// layerReader returns the element source for a layer: the PE input FIFO for
// the first fused layer, or the buffered intermediate for the rest.
func (x *peExec) layerReader(l *LayerHW, cur []float32) (func() (fifo.Word, bool), error) {
	if cur == nil {
		return func() (fifo.Word, bool) {
			v, ok := x.in.Pop()
			if ok {
				x.stats.ElemsIn++
			}
			return v, ok
		}, nil
	}
	if len(cur) != l.InShape.Volume() {
		return nil, fmt.Errorf("fused intermediate has %d words, layer expects %d", len(cur), l.InShape.Volume())
	}
	i := 0
	return func() (fifo.Word, bool) {
		if i >= len(cur) {
			return 0, false
		}
		v := cur[i]
		i++
		return v, true
	}, nil
}

// runConv implements the convolutional PE schedule: input feature maps are
// processed sequentially (one filter-chain pass each); for every window
// position the K² taps are read once and reused across all output channels,
// accumulating into the partial-sum buffer; after the last input map the
// bias is added, the folded activation applied, and the output maps are
// emitted channel-major.
func (x *peExec) runConv(l *LayerHW, read func() (fifo.Word, bool), emit func(float32)) error {
	c, f, k := l.InShape.Channels, l.OutShape.Channels, l.Kernel
	outHW := l.OutShape.Height * l.OutShape.Width
	w, b, err := x.dm.Weights(l.Name, x.pe.WeightsOnChip)
	if err != nil {
		return err
	}
	if len(w) != f*c*k*k {
		return fmt.Errorf("weight stream has %d words, want %d", len(w), f*c*k*k)
	}
	partial := make([]float32, f*outHW)
	for ci := 0; ci < c; ci++ {
		if err := x.stencilPass(l, read, func(pos int, win []fifo.Word) {
			for fi := 0; fi < f; fi++ {
				base := (fi*c + ci) * k * k
				acc := partial[fi*outHW+pos]
				for t := 0; t < k*k; t++ {
					acc += w[base+t] * win[t]
				}
				partial[fi*outHW+pos] = acc
			}
			x.stats.MACs += int64(f * k * k)
		}); err != nil {
			return err
		}
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	for fi := 0; fi < f; fi++ {
		var bias float32
		if len(b) > 0 {
			bias = b[fi]
		}
		for pos := 0; pos < outHW; pos++ {
			emit(applyActivation(l.Activation, partial[fi*outHW+pos]+bias))
		}
	}
	return nil
}

// runPool implements the sub-sampling PE: one filter-chain pass per channel,
// each window replaced by its maximum or average.
func (x *peExec) runPool(l *LayerHW, read func() (fifo.Word, bool), emit func(float32)) error {
	k := l.Kernel
	isMax := l.Kind == nn.MaxPool
	inv := 1 / float32(k*k)
	for ci := 0; ci < l.InShape.Channels; ci++ {
		if err := x.stencilPass(l, read, func(pos int, win []fifo.Word) {
			var v float32
			if isMax {
				v = float32(math.Inf(-1))
				for _, e := range win {
					if e > v {
						v = e
					}
				}
			} else {
				for _, e := range win {
					v += e
				}
				v *= inv
			}
			emit(applyActivation(l.Activation, v))
		}); err != nil {
			return err
		}
	}
	return nil
}

// stencilPass streams one input map through the PE's filter chain, invoking
// fn for every window in row-major output order.
func (x *peExec) stencilPass(l *LayerHW, read func() (fifo.Word, bool), fn func(pos int, win []fifo.Word)) error {
	src := fifo.New(x.pe.ID+"/pad", 64)
	padErr := make(chan error, 1)
	go func() {
		padErr <- streamPadded(read, l.InShape.Height, l.InShape.Width, l.Pad, src)
	}()
	run, err := x.pe.Chain.start(l, src)
	if err != nil {
		return err
	}
	wr, err := x.pe.Chain.newWindowReader(run, l.Kernel)
	if err != nil {
		return err
	}
	outHW := l.OutShape.Height * l.OutShape.Width
	for pos := 0; pos < outHW; pos++ {
		win, ok := wr.next()
		if !ok {
			run.wait()
			if err := <-padErr; err != nil {
				return err
			}
			return fmt.Errorf("filter chain delivered only %d of %d windows", pos, outHW)
		}
		fn(pos, win)
		x.stats.WindowsRead++
	}
	run.wait()
	return <-padErr
}

// runFC implements the fully-connected PE as a single-input/single-output
// 1x1 convolution: each streamed input element is multiplied against every
// output neuron's weight, accumulating in the on-chip partial vector; the
// optional normalisation (LogSoftMax/SoftMax) is applied before emission.
func (x *peExec) runFC(l *LayerHW, read func() (fifo.Word, bool), emit func(float32)) error {
	v := l.InShape.Volume()
	o := l.OutShape.Channels
	w, b, err := x.dm.Weights(l.Name, x.pe.WeightsOnChip)
	if err != nil {
		return err
	}
	if len(w) != o*v {
		return fmt.Errorf("weight stream has %d words, want %d", len(w), o*v)
	}
	partial := make([]float32, o)
	copy(partial, b)
	for h := 0; h < v; h++ {
		xv, ok := read()
		if !ok {
			return fmt.Errorf("input stream ended after %d of %d elements", h, v)
		}
		for oi := 0; oi < o; oi++ {
			partial[oi] += w[oi*v+h] * xv
		}
		x.stats.MACs += int64(o)
	}
	for i := range partial {
		partial[i] = applyActivation(l.Activation, partial[i])
	}
	if l.Normalize != NoActivation {
		normalizeInPlace(l.Normalize, partial)
	}
	for _, p := range partial {
		emit(p)
	}
	return nil
}

// applyActivation applies the folded pointwise non-linearity.
func applyActivation(kind nn.Kind, v float32) float32 {
	switch kind {
	case nn.ReLU:
		if v < 0 {
			return 0
		}
		return v
	case nn.Sigmoid:
		return float32(1 / (1 + math.Exp(-float64(v))))
	case nn.TanH:
		return float32(math.Tanh(float64(v)))
	default:
		return v
	}
}

// normalizeInPlace applies the SoftMax/LogSoftMax normalisation stage using
// the same numerically-stable formulation as the reference engine.
func normalizeInPlace(kind nn.Kind, vals []float32) {
	max := math.Inf(-1)
	for _, v := range vals {
		if float64(v) > max {
			max = float64(v)
		}
	}
	var sum float64
	for _, v := range vals {
		sum += math.Exp(float64(v) - max)
	}
	logSum := math.Log(sum)
	for i, v := range vals {
		if kind == nn.LogSoftMax {
			vals[i] = float32(float64(v) - max - logSum)
		} else {
			vals[i] = float32(math.Exp(float64(v)-max) / sum)
		}
	}
}
