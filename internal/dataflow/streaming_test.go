package dataflow

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/tensor"
)

// These tests pin the tentpole invariant of the continuous-streaming fabric:
// a resident Session (or CUPool of sessions) fed the same images in several
// back-to-back RunBatch calls must agree with one word-at-a-time oracle pass
// over the whole sequence — bit-identical outputs and identical cumulative
// RunStats on the float32 path (frame headers ride in separate counters, so
// the datapath word totals still match exactly), bounded error on the packed
// int8 path. Teardown is part of the contract too: a mid-batch failure must
// cascade end-of-stream through every resident element and leak nothing.

// chunkBatch splits a batch into uneven consecutive chunks (1, 2, 3, …) so
// the sweep exercises single-image batches, partial CU shards and full
// shards in one session lifetime.
func chunkBatch(batch []*tensor.Tensor) [][]*tensor.Tensor {
	var chunks [][]*tensor.Tensor
	for size := 1; len(batch) > 0; size++ {
		if size > len(batch) {
			size = len(batch)
		}
		chunks = append(chunks, batch[:size])
		batch = batch[size:]
	}
	return chunks
}

// runStreamCase executes one {Par, CUs, dtype} point: the streaming side
// feeds the batch through resident pool sessions in uneven chunks, the
// oracle side runs one unframed word-at-a-time pass over everything.
func runStreamCase(t *testing.T, ir *condorir.Network, ws *condorir.WeightSet, batch []*tensor.Tensor, par condorir.Parallelism, cus int, int8path bool) {
	t.Helper()
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if int8path {
		spec.WordBits = 8
	}
	for _, pe := range spec.PEs {
		pe.Par = par
	}
	streamAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	oracleAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewCUPool(streamAcc, cus)
	var gotOut []*tensor.Tensor
	for _, chunk := range chunkBatch(batch) {
		outs, _, err := pool.RunBatch(chunk)
		if err != nil {
			t.Fatalf("streaming chunk: %v", err)
		}
		gotOut = append(gotOut, outs...)
	}
	gotStats := pool.Stats()
	if err := pool.Close(); err != nil {
		t.Fatalf("pool close: %v", err)
	}
	wantOut, wantStats, err := oracleAcc.RunWords(batch)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}

	if !int8path {
		assertRunsIdentical(t, "stream", gotOut, gotStats, "word", wantOut, wantStats)
		assertFramedStreams(t, gotStats, len(batch), cus)
		return
	}
	// Packed path: bounded error against the float oracle, like runQuantCase.
	tol := gotStats.QuantErrorBound()
	if tol <= 0 {
		t.Fatalf("QuantErrorBound = %g, want positive", tol)
	}
	if len(gotOut) != len(wantOut) {
		t.Fatalf("output count %d vs %d", len(gotOut), len(wantOut))
	}
	agree := 0
	for i := range gotOut {
		if d := tensor.MaxAbsDiff(gotOut[i], wantOut[i]); d > tol {
			t.Errorf("image %d: max abs diff %g exceeds quant error bound %g", i, d, tol)
		}
		if gotOut[i].ArgMax() == wantOut[i].ArgMax() {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(gotOut)); frac < 0.75 {
		t.Errorf("argmax agreement %.2f below 0.75 (%d/%d images)", frac, agree, len(gotOut))
	}
	assertFramedStreams(t, gotStats, len(batch), cus)
}

// assertFramedStreams asserts the session actually framed its traffic: one
// header pushed and popped per image per stream edge (pool-merged across
// units), with per-epoch occupancy windows recorded.
func assertFramedStreams(t *testing.T, stats *RunStats, images, cus int) {
	t.Helper()
	for i, s := range stats.Streams {
		if s.HeaderPushes != int64(images) || s.HeaderPops != int64(images) {
			t.Errorf("stream %d: %d header pushes / %d pops, want %d each", i, s.HeaderPushes, s.HeaderPops, images)
		}
		if s.EpochMaxOccupancy <= 0 {
			t.Errorf("stream %d: no per-epoch occupancy recorded", i)
		}
		if s.EpochMaxOccupancy > int64(s.Depth) {
			t.Errorf("stream %d: per-epoch occupancy %d exceeds depth %d", i, s.EpochMaxOccupancy, s.Depth)
		}
	}
}

func TestStreamingEquivalenceTC1(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(6, 7)
	withProcs(t, 4, func(t *testing.T) {
		for _, dtype := range []string{"float32", "int8"} {
			for _, in := range []int{1, 2, 4} {
				for _, out := range []int{1, 2, 4} {
					for _, cus := range []int{1, 2, 4} {
						name := fmt.Sprintf("dtype=%s/in=%d/out=%d/cus=%d", dtype, in, out, cus)
						t.Run(name, func(t *testing.T) {
							runStreamCase(t, ir, ws, batch, condorir.Parallelism{In: in, Out: out}, cus, dtype == "int8")
						})
					}
				}
			}
		}
	})
}

func TestStreamingEquivalenceLeNet(t *testing.T) {
	ir, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	batch := models.MNISTImages(4, 11)
	withProcs(t, 4, func(t *testing.T) {
		for _, dtype := range []string{"float32", "int8"} {
			for _, p := range []int{1, 2, 4} {
				name := fmt.Sprintf("dtype=%s/in=%d/out=%d/cus=%d", dtype, p, p, p)
				t.Run(name, func(t *testing.T) {
					runStreamCase(t, ir, ws, batch, condorir.Parallelism{In: p, Out: p}, p, dtype == "int8")
				})
			}
		}
	})
}

// A session fed batch=1 repeatedly must degenerate to today's one-shot Run
// behavior bit-identically: same outputs image for image, and cumulative
// session stats identical to one oracle pass over the sequence.
func TestStreamingBatch1Degenerates(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	sessAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	oneShotAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	oracleAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(4, 7)
	s := sessAcc.OpenSession()
	var sessOut []*tensor.Tensor
	var sessStats *RunStats
	for i, img := range batch {
		outs, st, err := s.RunBatch(batch[i : i+1])
		if err != nil {
			t.Fatalf("session image %d: %v", i, err)
		}
		sessOut = append(sessOut, outs...)
		sessStats = st

		oneOut, _, err := oneShotAcc.Run([]*tensor.Tensor{img})
		if err != nil {
			t.Fatalf("one-shot image %d: %v", i, err)
		}
		if d := tensor.MaxAbsDiff(outs[0], oneOut[0]); d != 0 {
			t.Fatalf("image %d: session batch=1 differs from one-shot Run by %g", i, d)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wantOut, wantStats, err := oracleAcc.RunWords(batch)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, "session", sessOut, sessStats, "word", wantOut, wantStats)
}

// A mid-batch failure must cascade end-of-stream through every resident
// element: RunBatch reports the failure, later calls fail fast, Close joins
// every goroutine and re-reports it, and no goroutine outlives the session
// (hand-rolled leak check — the fabric's teardown contract).
func TestStreamingMidBatchCollectorErrorNoLeak(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(5, 7)
	before := runtime.NumGoroutine()

	s := acc.OpenSession()
	// Corrupt the collector's expected epoch for the third image: the frame
	// arriving under the true tag then looks interleaved, mid-batch.
	s.testExpectEpoch = func(seq int, epoch uint16) uint16 {
		if seq == 2 {
			return epoch + 7
		}
		return epoch
	}
	_, _, err = s.RunBatch(batch)
	if err == nil {
		t.Fatal("mid-batch epoch corruption was not detected")
	}
	if !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("unexpected failure: %v", err)
	}
	if _, _, err2 := s.RunBatch(batch[:1]); err2 == nil {
		t.Fatal("RunBatch on a failed session did not fail fast")
	}
	if cerr := s.Close(); cerr == nil {
		t.Fatal("Close did not re-report the session failure")
	}
	// Every element goroutine must have exited by now; poll briefly to let
	// the runtime retire stacks that are mid-exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before session, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Two epochs genuinely in flight inside shallow FIFOs: with the stream depth
// squeezed far below one image's volume, back-to-back frames saturate every
// edge, and the result must still be bit-identical with per-epoch occupancy
// bounded by the declared depth (the dynamic counterpart of CND024).
func TestStreamingTwoEpochsInFlightSaturation(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	spec.InterPEFIFODepth = 8
	streamAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	oracleAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	batch := models.USPSImages(6, 7)
	s := streamAcc.OpenSession()
	var gotOut []*tensor.Tensor
	var gotStats *RunStats
	for lo := 0; lo < len(batch); lo += 3 {
		outs, st, err := s.RunBatch(batch[lo : lo+3])
		if err != nil {
			t.Fatalf("chunk at %d: %v", lo, err)
		}
		gotOut = append(gotOut, outs...)
		gotStats = st
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wantOut, wantStats, err := oracleAcc.RunWords(batch)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, "saturated", gotOut, gotStats, "word", wantOut, wantStats)
	assertFramedStreams(t, gotStats, len(batch), 1)
	for i, st := range gotStats.Streams {
		if st.MaxOccupancy > int64(spec.InterPEFIFODepth) {
			t.Errorf("stream %d: occupancy %d exceeds depth %d", i, st.MaxOccupancy, spec.InterPEFIFODepth)
		}
	}
}
