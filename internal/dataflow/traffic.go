package dataflow

import "condor/internal/nn"

// This file models the accelerator's DDR traffic analytically. The numbers
// mirror exactly what the functional datamover accounts at run time (the
// equivalence is asserted in tests), and feed the roofline analysis and the
// bandwidth-bound checks of the performance layer.

// wordBytes returns the stream word size of the spec.
func (s *Spec) wordBytes() int64 {
	switch s.WordBits {
	case 8:
		return 1
	case 16:
		return 2
	default:
		return 4
	}
}

// DDRBytesPerImage returns the on-board memory traffic one image generates:
// the input stream read, the output write-back, weight streams for PEs
// whose weights are not cached on-chip, partial-sum spill round trips, and
// fused-layer intermediate round trips.
func (s *Spec) DDRBytesPerImage() int64 {
	wb := s.wordBytes()
	// Partials accumulate at full precision.
	const partialBytes = 4

	total := int64(s.Input.Volume()) * wb
	total += int64(s.OutputShape().Volume()) * wb
	for _, pe := range s.PEs {
		if !pe.WeightsOnChip {
			total += pe.WeightWords() * wb
		}
		for i, l := range pe.Layers {
			if !pe.PartialsOnChip && l.Kind == nn.Conv {
				// One read-modify-write of the partial buffer per input
				// channel pass.
				total += 2 * int64(l.OutShape.Volume()) * int64(l.InShape.Channels) * partialBytes
			}
			if i+1 < len(pe.Layers) {
				// Fused handoff: write + read of the intermediate volume.
				total += 2 * int64(l.OutShape.Volume()) * wb
			}
		}
	}
	return total
}

// OnChipLoadBytes returns the one-time DDR reads performed at configuration
// time to fill the on-chip weight caches.
func (s *Spec) OnChipLoadBytes() int64 {
	wb := s.wordBytes()
	var total int64
	for _, pe := range s.PEs {
		if pe.WeightsOnChip {
			total += pe.WeightWords() * wb
		}
	}
	return total
}
