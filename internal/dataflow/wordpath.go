package dataflow

import (
	"fmt"
	"math"

	"condor/internal/fifo"
	"condor/internal/nn"
)

// This file retains the original word-at-a-time PE executor: one FIFO
// operation per streamed word, exactly the granularity of the modeled
// hardware. Accelerator.RunWords drives it; the equivalence tests assert
// that the burst datapath in pe.go/burst.go produces bit-identical outputs
// and identical RunStats. It is an oracle, not a hot path — keep it simple
// and do not optimise it.

// peExecWords executes one PE over a batch of images, word by word.
type peExecWords struct {
	pe    *PE
	dm    *Datamover
	in    *fifo.FIFO
	out   *fifo.FIFO
	stats *PEStats
}

// run processes batch images and closes the output FIFO. On error it drains
// the input stream so upstream PEs never block forever; the drain completes
// before run returns, so no goroutine outlives Accelerator.Run.
func (x *peExecWords) run(batch int) error {
	defer x.out.Close()
	for img := 0; img < batch; img++ {
		if err := x.runImage(img); err != nil {
			x.in.Drain()
			return fmt.Errorf("dataflow: %s image %d: %w", x.pe.ID, img, err)
		}
		x.stats.Images++
	}
	return nil
}

// runImage pushes one image through the PE's fused layer sequence.
func (x *peExecWords) runImage(img int) error {
	// cur holds the intermediate activations between fused layers; nil for
	// the first layer, whose input arrives over the input FIFO.
	var cur []float32
	for li := range x.pe.Layers {
		l := &x.pe.Layers[li]

		read, err := x.layerReader(l, cur)
		if err != nil {
			return err
		}
		var outBuf []float32
		last := li == len(x.pe.Layers)-1
		emit := func(v float32) {
			if last {
				x.out.Push(v)
				x.stats.ElemsOut++
			} else {
				outBuf = append(outBuf, v)
			}
		}

		switch l.Kind {
		case nn.Conv:
			err = x.runConv(l, read, emit)
		case nn.MaxPool, nn.AvgPool:
			err = x.runPool(l, read, emit)
		case nn.FullyConnected:
			err = x.runFC(l, read, emit)
		default:
			err = fmt.Errorf("layer %q: unsupported PE kind %v", l.Name, l.Kind)
		}
		if err != nil {
			return fmt.Errorf("layer %q: %w", l.Name, err)
		}
		x.stats.Cycles += LayerCycles(l, x.pe.Par)

		if !last {
			// Fused-layer handoff goes through the datamover (the paper's
			// partial-result exchange): write the intermediate to DDR and
			// stream it back for the next layer's pass.
			name := fmt.Sprintf("%s/fused/%s/img%d", x.pe.ID, l.Name, img)
			x.dm.WriteBuffer(name, outBuf)
			cur, err = x.dm.ReadBuffer(name)
			if err != nil {
				return err
			}
			x.stats.Cycles += 2 * int64(len(outBuf))
		}
	}
	return nil
}

// layerReader returns the element source for a layer: the PE input FIFO for
// the first fused layer, or the buffered intermediate for the rest.
func (x *peExecWords) layerReader(l *LayerHW, cur []float32) (func() (fifo.Word, bool), error) {
	if cur == nil {
		return func() (fifo.Word, bool) {
			v, ok := x.in.Pop()
			if ok {
				x.stats.ElemsIn++
			}
			return v, ok
		}, nil
	}
	if len(cur) != l.InShape.Volume() {
		return nil, fmt.Errorf("fused intermediate has %d words, layer expects %d", len(cur), l.InShape.Volume())
	}
	i := 0
	return func() (fifo.Word, bool) {
		if i >= len(cur) {
			return 0, false
		}
		v := cur[i]
		i++
		return v, true
	}, nil
}

// runConv implements the convolutional PE schedule: input feature maps are
// processed sequentially (one filter-chain pass each); for every window
// position the K² taps are read once and reused across all output channels,
// accumulating into the partial-sum buffer; after the last input map the
// bias is added, the folded activation applied, and the output maps are
// emitted channel-major.
func (x *peExecWords) runConv(l *LayerHW, read func() (fifo.Word, bool), emit func(float32)) error {
	c, f, k := l.InShape.Channels, l.OutShape.Channels, l.Kernel
	outHW := l.OutShape.Height * l.OutShape.Width
	w, b, err := x.dm.Weights(l.Name, x.pe.WeightsOnChip)
	if err != nil {
		return err
	}
	if len(w) != f*c*k*k {
		return fmt.Errorf("weight stream has %d words, want %d", len(w), f*c*k*k)
	}
	partial := make([]float32, f*outHW)
	for ci := 0; ci < c; ci++ {
		if err := x.stencilPass(l, read, func(pos int, win []fifo.Word) {
			for fi := 0; fi < f; fi++ {
				base := (fi*c + ci) * k * k
				acc := partial[fi*outHW+pos]
				for t := 0; t < k*k; t++ {
					acc += w[base+t] * win[t]
				}
				partial[fi*outHW+pos] = acc
			}
			x.stats.MACs += int64(f * k * k)
		}); err != nil {
			return err
		}
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	for fi := 0; fi < f; fi++ {
		var bias float32
		if len(b) > 0 {
			bias = b[fi]
		}
		for pos := 0; pos < outHW; pos++ {
			emit(applyActivation(l.Activation, partial[fi*outHW+pos]+bias))
		}
	}
	return nil
}

// runPool implements the sub-sampling PE: one filter-chain pass per channel,
// each window replaced by its maximum or average.
func (x *peExecWords) runPool(l *LayerHW, read func() (fifo.Word, bool), emit func(float32)) error {
	k := l.Kernel
	isMax := l.Kind == nn.MaxPool
	inv := 1 / float32(k*k)
	for ci := 0; ci < l.InShape.Channels; ci++ {
		if err := x.stencilPass(l, read, func(pos int, win []fifo.Word) {
			var v float32
			if isMax {
				v = float32(math.Inf(-1))
				for _, e := range win {
					if e > v {
						v = e
					}
				}
			} else {
				for _, e := range win {
					v += e
				}
				v *= inv
			}
			emit(applyActivation(l.Activation, v))
		}); err != nil {
			return err
		}
	}
	return nil
}

// stencilPass streams one input map through the PE's filter chain, invoking
// fn for every window in row-major output order.
func (x *peExecWords) stencilPass(l *LayerHW, read func() (fifo.Word, bool), fn func(pos int, win []fifo.Word)) error {
	src := fifo.New(x.pe.ID+"/pad", 64)
	padErr := make(chan error, 1)
	go func() {
		padErr <- streamPadded(read, l.InShape.Height, l.InShape.Width, l.Pad, src)
	}()
	run, err := x.pe.Chain.start(l, src)
	if err != nil {
		return err
	}
	wr, err := x.pe.Chain.newWindowReader(run, l.Kernel)
	if err != nil {
		return err
	}
	outHW := l.OutShape.Height * l.OutShape.Width
	for pos := 0; pos < outHW; pos++ {
		win, ok := wr.next()
		if !ok {
			run.wait()
			if err := <-padErr; err != nil {
				return err
			}
			return fmt.Errorf("filter chain delivered only %d of %d windows", pos, outHW)
		}
		fn(pos, win)
		x.stats.WindowsRead++
	}
	run.wait()
	return <-padErr
}

// runFC implements the fully-connected PE as a single-input/single-output
// 1x1 convolution: each streamed input element is multiplied against every
// output neuron's weight, accumulating in the on-chip partial vector; the
// optional normalisation (LogSoftMax/SoftMax) is applied before emission.
func (x *peExecWords) runFC(l *LayerHW, read func() (fifo.Word, bool), emit func(float32)) error {
	v := l.InShape.Volume()
	o := l.OutShape.Channels
	w, b, err := x.dm.Weights(l.Name, x.pe.WeightsOnChip)
	if err != nil {
		return err
	}
	if len(w) != o*v {
		return fmt.Errorf("weight stream has %d words, want %d", len(w), o*v)
	}
	partial := make([]float32, o)
	copy(partial, b)
	for h := 0; h < v; h++ {
		xv, ok := read()
		if !ok {
			return fmt.Errorf("input stream ended after %d of %d elements", h, v)
		}
		for oi := 0; oi < o; oi++ {
			partial[oi] += w[oi*v+h] * xv
		}
		x.stats.MACs += int64(o)
	}
	for i := range partial {
		partial[i] = applyActivation(l.Activation, partial[i])
	}
	if l.Normalize != NoActivation {
		normalizeInPlace(l.Normalize, partial)
	}
	for _, p := range partial {
		emit(p)
	}
	return nil
}
