package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"condor/internal/fifo"
	"condor/internal/nn"
)

func TestFilterChainTapOrderInverseLex(t *testing.T) {
	c, err := NewFilterChain(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Taps) != 9 {
		t.Fatalf("tap count %d", len(c.Taps))
	}
	// Head of the pipeline is the lexicographically greatest access.
	if c.Taps[0] != (Tap{2, 2}) || c.Taps[8] != (Tap{0, 0}) {
		t.Fatalf("taps = %v", c.Taps)
	}
	// Strictly decreasing linear positions.
	for i := 0; i+1 < len(c.Taps); i++ {
		if c.Taps[i].Linear(8) <= c.Taps[i+1].Linear(8) {
			t.Fatalf("taps not in inverse lexicographic order at %d", i)
		}
	}
}

func TestFilterChainFIFODepths(t *testing.T) {
	c, err := NewFilterChain(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Within a row the access distance is 1; across a row wrap it is
	// W - (K-1) = 6.
	want := []int{1, 1, 6, 1, 1, 6, 1, 1}
	if len(c.FIFODepths) != len(want) {
		t.Fatalf("depths = %v", c.FIFODepths)
	}
	for i, d := range want {
		if c.FIFODepths[i] != d {
			t.Fatalf("depth[%d] = %d, want %d", i, c.FIFODepths[i], d)
		}
	}
	// Total on-chip buffering is the distance between the extreme accesses:
	// (K-1)*W + (K-1) — only two rows plus a partial row are ever buffered.
	if got, wantTotal := c.BufferWords(), 2*8+2; got != wantTotal {
		t.Fatalf("BufferWords = %d, want %d", got, wantTotal)
	}
}

func TestFilterChainUnitWindow(t *testing.T) {
	c, err := NewFilterChain(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Taps) != 1 || len(c.FIFODepths) != 0 || c.BufferWords() != 0 {
		t.Fatalf("1x1 chain: %+v", c)
	}
}

func TestFilterChainErrors(t *testing.T) {
	if _, err := NewFilterChain(0, 4); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := NewFilterChain(5, 4); err == nil {
		t.Fatal("expected error for window wider than input")
	}
}

// runStencil collects all windows delivered by the chain for one map.
func runStencil(t *testing.T, l *LayerHW, chain *FilterChain, data []float32) [][]float32 {
	t.Helper()
	src := fifo.New("src", 16)
	i := 0
	read := func() (fifo.Word, bool) {
		if i >= len(data) {
			return 0, false
		}
		v := data[i]
		i++
		return v, true
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- streamPadded(read, l.InShape.Height, l.InShape.Width, l.Pad, src)
	}()
	run, err := chain.start(l, src)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := chain.newWindowReader(run, l.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	var wins [][]float32
	for {
		w, ok := wr.next()
		if !ok {
			break
		}
		wins = append(wins, append([]float32(nil), w...))
	}
	run.wait()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return wins
}

// directWindows computes the expected sliding windows by direct indexing
// with zero padding.
func directWindows(data []float32, h, w, k, stride, pad int) [][]float32 {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	at := func(y, x int) float32 {
		if y < 0 || y >= h || x < 0 || x >= w {
			return 0
		}
		return data[y*w+x]
	}
	var wins [][]float32
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			win := make([]float32, k*k)
			for m := 0; m < k; m++ {
				for n := 0; n < k; n++ {
					win[m*k+n] = at(oy*stride+m-pad, ox*stride+n-pad)
				}
			}
			wins = append(wins, win)
		}
	}
	return wins
}

func layerForStencil(h, w, k, stride, pad int) *LayerHW {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	return &LayerHW{
		Name: "s", Kind: nn.Conv, Kernel: k, Stride: stride, Pad: pad,
		InShape:    nn.Shape{Channels: 1, Height: h, Width: w},
		OutShape:   nn.Shape{Channels: 1, Height: outH, Width: outW},
		Activation: NoActivation, Normalize: NoActivation,
	}
}

func TestStencilMatchesDirectWindows(t *testing.T) {
	cases := []struct{ h, w, k, stride, pad int }{
		{6, 6, 3, 1, 0},
		{8, 5, 2, 2, 0},
		{7, 7, 3, 2, 1},
		{5, 9, 5, 1, 0},
		{4, 4, 4, 1, 0},
		{3, 3, 1, 1, 0},
		{10, 10, 3, 3, 1},
	}
	for _, tc := range cases {
		l := layerForStencil(tc.h, tc.w, tc.k, tc.stride, tc.pad)
		chain, err := NewFilterChain(tc.k, l.PaddedWidth())
		if err != nil {
			t.Fatal(err)
		}
		data := make([]float32, tc.h*tc.w)
		rng := rand.New(rand.NewSource(int64(tc.h*100 + tc.w)))
		for i := range data {
			data[i] = rng.Float32()
		}
		got := runStencil(t, l, chain, data)
		want := directWindows(data, tc.h, tc.w, tc.k, tc.stride, tc.pad)
		if len(got) != len(want) {
			t.Fatalf("case %+v: %d windows, want %d", tc, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("case %+v window %d slot %d: %v != %v", tc, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// Property: for random geometry the filter pipeline reproduces direct
// sliding-window extraction exactly.
func TestStencilProperty(t *testing.T) {
	f := func(hRaw, wRaw, kRaw, sRaw, pRaw uint8, seed int64) bool {
		h := int(hRaw%12) + 3
		w := int(wRaw%12) + 3
		k := int(kRaw%4) + 1
		s := int(sRaw%3) + 1
		p := int(pRaw % 2)
		if k > h+2*p || k > w+2*p {
			return true
		}
		l := layerForStencil(h, w, k, s, p)
		chain, err := NewFilterChain(k, l.PaddedWidth())
		if err != nil {
			return false
		}
		data := make([]float32, h*w)
		rng := rand.New(rand.NewSource(seed))
		for i := range data {
			data[i] = rng.Float32()
		}
		src := fifo.New("src", 8)
		idx := 0
		read := func() (fifo.Word, bool) {
			if idx >= len(data) {
				return 0, false
			}
			v := data[idx]
			idx++
			return v, true
		}
		// Join the streamer on every exit path: an early return would
		// otherwise leave it blocked in Push forever, and the leaked
		// goroutines accumulate across quick-check iterations.
		streamErr := make(chan error, 1)
		go func() { streamErr <- streamPadded(read, h, w, p, src) }()
		defer func() {
			src.Drain()
			<-streamErr
		}()
		run, err := chain.start(l, src)
		if err != nil {
			return false
		}
		wr, err := chain.newWindowReader(run, k)
		if err != nil {
			return false
		}
		want := directWindows(data, h, w, k, s, p)
		for i := range want {
			win, ok := wr.next()
			if !ok {
				return false
			}
			for j := range want[i] {
				if win[j] != want[i][j] {
					return false
				}
			}
		}
		_, extra := wr.next()
		run.wait()
		return !extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The fused-PE case: a chain sized for a larger window and wider input
// still serves a layer with a smaller window via the active-tap
// conditionals.
func TestStencilOversizedChain(t *testing.T) {
	l := layerForStencil(6, 6, 2, 2, 0) // pooling-like geometry
	chain, err := NewFilterChain(5, 12) // sized for a bigger fused sibling
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float32, 36)
	for i := range data {
		data[i] = float32(i)
	}
	got := runStencil(t, l, chain, data)
	want := directWindows(data, 6, 6, 2, 2, 0)
	if len(got) != len(want) {
		t.Fatalf("%d windows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("window %d slot %d mismatch", i, j)
			}
		}
	}
}

func TestActiveTapsRejectsOversizedLayer(t *testing.T) {
	chain, err := NewFilterChain(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.activeTaps(5); err == nil {
		t.Fatal("expected error for layer window larger than chain")
	}
}

func TestStreamPaddedShortInput(t *testing.T) {
	src := fifo.New("src", 8)
	read := func() (fifo.Word, bool) { return 0, false } // empty stream
	err := streamPadded(read, 2, 2, 0, src)
	if err == nil {
		t.Fatal("expected short-stream error")
	}
}

func TestStreamPaddedZeroBorder(t *testing.T) {
	src := fifo.New("src", 64)
	data := []float32{1, 2, 3, 4}
	i := 0
	read := func() (fifo.Word, bool) {
		if i >= len(data) {
			return 0, false
		}
		v := data[i]
		i++
		return v, true
	}
	if err := streamPadded(read, 2, 2, 1, src); err != nil {
		t.Fatal(err)
	}
	want := []float32{
		0, 0, 0, 0,
		0, 1, 2, 0,
		0, 3, 4, 0,
		0, 0, 0, 0,
	}
	for j, wv := range want {
		v, ok := src.Pop()
		if !ok || v != wv {
			t.Fatalf("padded[%d] = %v ok=%v, want %v", j, v, ok, wv)
		}
	}
	if _, ok := src.Pop(); ok {
		t.Fatal("padded stream too long")
	}
}
