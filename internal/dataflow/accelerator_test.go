package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"condor/internal/condorir"
	"condor/internal/nn"
	"condor/internal/tensor"
)

// buildIR creates an IR network with random weights; returns the IR, the
// weight set and the reference network.
func buildIR(t testing.TB, name string, input condorir.InputShape, layers []condorir.Layer, seed int64) (*condorir.Network, *condorir.WeightSet, *nn.Network) {
	if t != nil {
		t.Helper()
	}
	ir := &condorir.Network{
		Name: name, Board: "aws-f1-vu9p", FrequencyMHz: 100,
		Input: input, Layers: layers,
	}
	shapes, err := ir.Shapes()
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ws := condorir.NewWeightSet()
	for i := range ir.Layers {
		l := &ir.Layers[i]
		kind, _ := l.Kind()
		in := shapes[i]
		switch kind {
		case nn.Conv:
			w := tensor.New(l.NumOutput, in.Channels, l.KernelSize, l.KernelSize)
			w.FillRandom(rng, 0.5)
			ws.Put(l.Name, condorir.EntryWeights, w)
		case nn.FullyConnected:
			w := tensor.New(l.NumOutput, in.Volume())
			w.FillRandom(rng, 0.5)
			ws.Put(l.Name, condorir.EntryWeights, w)
		}
		if l.Bias {
			b := tensor.New(l.NumOutput)
			b.FillRandom(rng, 0.5)
			ws.Put(l.Name, condorir.EntryBias, b)
		}
	}
	net, err := ir.BuildNN(ws)
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	return ir, ws, net
}

// lenetLayers is a LeNet-scale topology (smaller input for test speed).
func tinyLeNetLayers() []condorir.Layer {
	return []condorir.Layer{
		{Name: "conv1", Type: "Convolution", KernelSize: 3, Stride: 1, NumOutput: 4, Bias: true, PEGroup: -1},
		{Name: "pool1", Type: "MaxPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
		{Name: "conv2", Type: "Convolution", KernelSize: 3, Stride: 1, NumOutput: 6, Bias: true, PEGroup: -1},
		{Name: "pool2", Type: "AvgPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
		{Name: "ip1", Type: "InnerProduct", NumOutput: 8, Bias: true, PEGroup: -1},
		{Name: "relu1", Type: "ReLU", PEGroup: -1},
		{Name: "ip2", Type: "InnerProduct", NumOutput: 5, Bias: true, PEGroup: -1},
		{Name: "prob", Type: "LogSoftMax", PEGroup: -1},
	}
}

func randomImages(n int, s nn.Shape, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		img := tensor.New(s.Channels, s.Height, s.Width)
		img.FillRandom(rng, 1)
		out[i] = img
	}
	return out
}

const fabricTol = 2e-3 // float32 accumulation order differs from the reference

func runAndCompare(t *testing.T, ir *condorir.Network, ws *condorir.WeightSet, net *nn.Network, batch int, seed int64) *RunStats {
	t.Helper()
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	imgs := randomImages(batch, net.Input, seed)
	outs, stats, err := acc.Run(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != batch {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, img := range imgs {
		want, err := net.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(outs[i], want, fabricTol) {
			t.Fatalf("image %d: fabric output differs from reference by %g",
				i, tensor.MaxAbsDiff(outs[i], want))
		}
	}
	return stats
}

func TestAcceleratorMatchesReferenceTinyLeNet(t *testing.T) {
	ir, ws, net := buildIR(t, "tiny-lenet", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, tinyLeNetLayers(), 1)
	stats := runAndCompare(t, ir, ws, net, 3, 2)
	if stats.Images != 3 {
		t.Fatalf("stats.Images = %d", stats.Images)
	}
	// 6 PEs: conv1, pool1, conv2, pool2, ip1(+relu), ip2(+prob).
	if len(stats.PEs) != 6 {
		t.Fatalf("PE count = %d", len(stats.PEs))
	}
}

func TestAcceleratorWithPaddingAndStride(t *testing.T) {
	layers := []condorir.Layer{
		{Name: "conv1", Type: "Convolution", KernelSize: 3, Stride: 2, Pad: 1, NumOutput: 3, Bias: true, PEGroup: -1},
		{Name: "relu1", Type: "ReLU", PEGroup: -1},
		{Name: "conv2", Type: "Convolution", KernelSize: 3, Stride: 1, Pad: 1, NumOutput: 2, Bias: false, PEGroup: -1},
	}
	ir, ws, net := buildIR(t, "padded", condorir.InputShape{Channels: 2, Height: 9, Width: 9}, layers, 3)
	runAndCompare(t, ir, ws, net, 2, 4)
}

func TestAcceleratorFusedPE(t *testing.T) {
	layers := tinyLeNetLayers()
	// Fuse conv1+pool1 and conv2+pool2 onto two PEs.
	layers[0].PEGroup = 0
	layers[1].PEGroup = 0
	layers[2].PEGroup = 1
	layers[3].PEGroup = 1
	ir, ws, net := buildIR(t, "fused", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, layers, 5)
	stats := runAndCompare(t, ir, ws, net, 2, 6)
	if len(stats.PEs) != 4 {
		t.Fatalf("PE count = %d, want 4 after fusion", len(stats.PEs))
	}
	// The fused handoff must go through the datamover.
	if stats.DRAM.BytesWritten == 0 {
		t.Fatal("fused intermediates should produce DDR write traffic")
	}
}

func TestAcceleratorSigmoidTanhActivations(t *testing.T) {
	layers := []condorir.Layer{
		{Name: "conv1", Type: "Convolution", KernelSize: 3, NumOutput: 2, Bias: true, PEGroup: -1},
		{Name: "sig", Type: "Sigmoid", PEGroup: -1},
		{Name: "ip1", Type: "InnerProduct", NumOutput: 4, Bias: true, PEGroup: -1},
		{Name: "th", Type: "TanH", PEGroup: -1},
	}
	ir, ws, net := buildIR(t, "acts", condorir.InputShape{Channels: 1, Height: 6, Width: 6}, layers, 7)
	runAndCompare(t, ir, ws, net, 2, 8)
}

func TestAcceleratorSoftmaxOutput(t *testing.T) {
	layers := []condorir.Layer{
		{Name: "ip1", Type: "InnerProduct", NumOutput: 6, Bias: true, PEGroup: -1},
		{Name: "prob", Type: "Softmax", PEGroup: -1},
	}
	ir, ws, net := buildIR(t, "sm", condorir.InputShape{Channels: 2, Height: 3, Width: 3}, layers, 9)
	runAndCompare(t, ir, ws, net, 1, 10)
}

func TestAcceleratorBatchPipelining(t *testing.T) {
	ir, ws, net := buildIR(t, "batch", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, tinyLeNetLayers(), 11)
	stats := runAndCompare(t, ir, ws, net, 8, 12)
	for i := range stats.PEs {
		if stats.PEs[i].Images != 8 {
			t.Fatalf("PE %s processed %d images", stats.PEs[i].ID, stats.PEs[i].Images)
		}
	}
}

func TestAcceleratorRejectsWrongInputShape(t *testing.T) {
	ir, ws, _ := buildIR(t, "shape", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, tinyLeNetLayers(), 13)
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := acc.Run([]*tensor.Tensor{tensor.New(1, 5, 5)}); err == nil {
		t.Fatal("expected input-shape error")
	}
}

func TestInstantiateRejectsMissingWeights(t *testing.T) {
	ir, _, _ := buildIR(t, "missing", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, tinyLeNetLayers(), 14)
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instantiate(spec, condorir.NewWeightSet()); err == nil {
		t.Fatal("expected missing-weights error")
	}
}

func TestInstantiateRejectsWrongWeightSize(t *testing.T) {
	ir, ws, _ := buildIR(t, "badw", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, tinyLeNetLayers(), 15)
	bad := tensor.New(4, 1, 5, 5) // conv1 should be 4x1x3x3
	ws.Put("conv1", condorir.EntryWeights, bad)
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instantiate(spec, ws); err == nil {
		t.Fatal("expected weight-size error")
	}
}

func TestRunEmptyBatch(t *testing.T) {
	ir, ws, _ := buildIR(t, "empty", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, tinyLeNetLayers(), 16)
	spec, _ := BuildSpec(ir)
	acc, _ := Instantiate(spec, ws)
	outs, stats, err := acc.Run(nil)
	if err != nil || len(outs) != 0 || stats.Images != 0 {
		t.Fatalf("empty batch: %v %v %v", outs, stats, err)
	}
}

func TestStatsMACCount(t *testing.T) {
	layers := []condorir.Layer{
		{Name: "c", Type: "Convolution", KernelSize: 3, NumOutput: 2, Bias: false, PEGroup: -1},
	}
	ir, ws, net := buildIR(t, "macs", condorir.InputShape{Channels: 2, Height: 6, Width: 6}, layers, 17)
	stats := runAndCompare(t, ir, ws, net, 1, 18)
	// MACs = OutH*OutW*OutC*InC*K*K = 4*4*2*2*9 = 576.
	if got := stats.TotalMACs(); got != 576 {
		t.Fatalf("MACs = %d, want 576", got)
	}
	// GFLOPS convention: 2 FLOPs per MAC equals the nn package accounting.
	if flops := net.TotalFLOPs(); flops != 2*576 {
		t.Fatalf("reference FLOPs = %d", flops)
	}
}

func TestStatsCyclesMatchModel(t *testing.T) {
	ir, ws, _ := buildIR(t, "cyc", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, tinyLeNetLayers(), 19)
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	imgs := randomImages(4, nn.Shape{Channels: 1, Height: 12, Width: 12}, 20)
	_, stats, err := acc.Run(imgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, pe := range spec.PEs {
		want := PECyclesPerImage(pe)
		if got := stats.PEs[i].CyclesPerImage(); got != want {
			t.Fatalf("PE %s cycles/image = %d, model says %d", pe.ID, got, want)
		}
	}
	if stats.BottleneckCycles() == 0 {
		t.Fatal("bottleneck cycles should be positive")
	}
}

func TestWeightStreamingTrafficAccounted(t *testing.T) {
	layers := []condorir.Layer{
		{Name: "ip", Type: "InnerProduct", NumOutput: 4, Bias: false, PEGroup: -1},
	}
	ir, ws, _ := buildIR(t, "traffic", condorir.InputShape{Channels: 1, Height: 4, Width: 4}, layers, 21)
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	spec.PEs[0].WeightsOnChip = false // stream weights per image
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	imgs := randomImages(3, nn.Shape{Channels: 1, Height: 4, Width: 4}, 22)
	_, stats, err := acc.Run(imgs)
	if err != nil {
		t.Fatal(err)
	}
	// Weight stream: 4*16 words * 4 bytes * 3 images, plus input reads.
	wantWeightBytes := int64(4*16*4) * 3
	inputBytes := int64(16*4) * 3
	if stats.DRAM.BytesRead < wantWeightBytes+inputBytes {
		t.Fatalf("DDR reads %d, want at least %d", stats.DRAM.BytesRead, wantWeightBytes+inputBytes)
	}
}

// Property: random small network chains computed by the fabric match the
// reference engine.
func TestAcceleratorRandomNetworksProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := rng.Intn(6) + 8
		c := rng.Intn(2) + 1
		var layers []condorir.Layer
		// 1-2 feature layers.
		nFeat := rng.Intn(2) + 1
		curH := h
		for i := 0; i < nFeat && curH >= 4; i++ {
			if rng.Intn(2) == 0 {
				k := rng.Intn(2) + 2
				f := rng.Intn(3) + 1
				layers = append(layers, condorir.Layer{
					Name: "conv" + string(rune('a'+i)), Type: "Convolution",
					KernelSize: k, Stride: 1, NumOutput: f, Bias: rng.Intn(2) == 0, PEGroup: -1,
				})
				curH = curH - k + 1
			} else {
				layers = append(layers, condorir.Layer{
					Name: "pool" + string(rune('a'+i)), Type: "MaxPooling",
					KernelSize: 2, Stride: 2, PEGroup: -1,
				})
				curH /= 2
			}
		}
		layers = append(layers, condorir.Layer{
			Name: "fc", Type: "InnerProduct", NumOutput: rng.Intn(4) + 2, Bias: true, PEGroup: -1,
		})
		ir, ws, net := buildIR(nil, "prop", condorir.InputShape{Channels: c, Height: h, Width: h}, layers, seed)
		spec, err := BuildSpec(ir)
		if err != nil {
			return false
		}
		acc, err := Instantiate(spec, ws)
		if err != nil {
			return false
		}
		imgs := randomImages(2, net.Input, seed+1)
		outs, _, err := acc.Run(imgs)
		if err != nil {
			return false
		}
		for i := range imgs {
			want, err := net.Predict(imgs[i])
			if err != nil || !tensor.AllClose(outs[i], want, fabricTol) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatsStreams(t *testing.T) {
	ir, ws, net := buildIR(t, "streams", condorir.InputShape{Channels: 1, Height: 12, Width: 12}, tinyLeNetLayers(), 23)
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	batch := 2
	_, stats, err := acc.Run(randomImages(batch, net.Input, 24))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Streams) != len(spec.PEs)+1 {
		t.Fatalf("stream stats count %d", len(stats.Streams))
	}
	// The input stream carried exactly batch * input volume words; every
	// stream was fully drained; occupancy never exceeded the depth (+1
	// transient tolerance of the high-water sampling).
	in := stats.Streams[0]
	if in.Pushes != int64(batch*net.Input.Volume()) {
		t.Fatalf("input stream pushes = %d", in.Pushes)
	}
	for _, s := range stats.Streams {
		if s.Pushes != s.Pops {
			t.Fatalf("stream %s not drained: %d pushed, %d popped", s.Name, s.Pushes, s.Pops)
		}
		if s.MaxOccupancy > int64(s.Depth)+1 {
			t.Fatalf("stream %s occupancy %d over depth %d", s.Name, s.MaxOccupancy, s.Depth)
		}
	}
	// The output stream carried batch * output volume words.
	outShape := spec.OutputShape()
	out := stats.Streams[len(stats.Streams)-1]
	if out.Pushes != int64(batch*outShape.Volume()) {
		t.Fatalf("output stream pushes = %d", out.Pushes)
	}
}
