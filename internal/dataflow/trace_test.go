package dataflow

import (
	"bytes"
	"strings"
	"testing"

	"condor/internal/models"
	"condor/internal/obs"
)

// TestTraceCyclesReconcile pins the observability contract: the span cycle
// totals recorded per PE track must equal the PE's RunStats cycle counter
// exactly — every modeled cycle a PE accumulates is attributed to exactly
// one span. Feeder and collector tracks carry word counts, not cycles.
func TestTraceCyclesReconcile(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	acc.SetTracer(tr)
	batch := models.USPSImages(3, 5)
	_, stats, err := acc.Run(batch)
	if err != nil {
		t.Fatal(err)
	}

	for i := range stats.PEs {
		pe := &stats.PEs[i]
		if got := tr.TrackCycles(pe.ID); got != pe.Cycles {
			t.Errorf("PE %s: span cycles %d != RunStats cycles %d", pe.ID, got, pe.Cycles)
		}
	}

	// Per-PE span count: one span per layer per image.
	byTrack := map[string]int{}
	for _, tk := range tr.Tracks() {
		byTrack[tk.Name()] += len(tk.Spans())
	}
	for _, pe := range spec.PEs {
		want := len(pe.Layers) * len(batch)
		if got := byTrack[pe.ID]; got != want {
			t.Errorf("PE %s: %d spans, want %d (%d layers x %d images)",
				pe.ID, got, want, len(pe.Layers), len(batch))
		}
	}
	if got := byTrack["feeder"]; got != len(batch) {
		t.Errorf("feeder: %d spans, want %d", got, len(batch))
	}
	if got := byTrack["collector"]; got != len(batch) {
		t.Errorf("collector: %d spans, want %d", got, len(batch))
	}

	// The exported Chrome trace validates and names every fabric lane.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	for _, lane := range []string{"feeder", "collector", spec.PEs[0].ID} {
		if !strings.Contains(buf.String(), lane) {
			t.Errorf("trace missing lane %q", lane)
		}
	}
}

// TestTracerDisabledUntouched checks the default: no tracer attached means
// Run behaves exactly as before and records nothing.
func TestTracerDisabledUntouched(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := acc.Run(models.USPSImages(1, 5)); err != nil {
		t.Fatal(err)
	}
}

// TestRunStatsPublish checks the metrics bridge: a run's counters land in a
// registry under the condor_fabric_*/condor_fifo_* families with the right
// totals.
func TestRunStatsPublish(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := acc.Run(models.USPSImages(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	stats.Publish(reg)
	text := reg.TextSnapshot()

	if !strings.Contains(text, "condor_fabric_images_total 2") {
		t.Errorf("images counter missing:\n%s", text)
	}
	for i := range stats.PEs {
		pe := &stats.PEs[i]
		if got := reg.Counter("condor_fabric_pe_cycles_total",
			"Modeled busy cycles per processing element.", obs.L("pe", pe.ID)).Value(); got != pe.Cycles {
			t.Errorf("PE %s cycles metric %d != stats %d", pe.ID, got, pe.Cycles)
		}
	}
	for _, want := range []string{
		`condor_fifo_words_total{op="push",stream="stream0"}`,
		`condor_fifo_bursts_total{op="pop",stream="stream0"}`,
		`condor_fabric_ddr_bytes_total{dir="read"}`,
		`condor_fifo_max_occupancy_words{stream="stream0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s:\n%s", want, text)
		}
	}
}
