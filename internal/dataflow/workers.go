package dataflow

import (
	"runtime"
	"sync"
)

// workerPool is the band-execution pool of one peExec: the host stand-in
// for a PE's parallel ports. The pool owns a fixed set of helper goroutines
// (at most GOMAXPROCS-1, so a 1-core box gets none and the PE degrades to
// today's sequential schedule); band dispatch never blocks waiting for a
// helper — a band that finds the pool busy runs inline on the caller — so
// the pool cannot deadlock regardless of how many PEs share the processor
// budget.
type workerPool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// newPEWorkerPool sizes a pool for a PE's port parallelism: the widest of
// the two port counts, clamped to the processor budget, minus the caller
// itself. Returns nil (a valid, sequential pool) when no helper is useful.
func newPEWorkerPool(par int) *workerPool {
	if max := runtime.GOMAXPROCS(0); par > max {
		par = max
	}
	return newWorkerPool(par - 1)
}

// newWorkerPool starts helpers goroutines serving band closures. A pool
// with no helpers is represented as nil; all methods are nil-safe and run
// the work inline.
func newWorkerPool(helpers int) *workerPool {
	if helpers <= 0 {
		return nil
	}
	p := &workerPool{tasks: make(chan func())}
	p.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// close stops the helper goroutines. Safe on a nil pool.
func (p *workerPool) close() {
	if p == nil {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}

// bands splits [0,n) into at most par contiguous bands and runs
// fn(band, lo, hi) for each, returning after every band has finished. Band 0
// always runs on the caller; the rest are offered to the helpers and fall
// back to inline execution when every helper is busy. Bands are disjoint, so
// fn may write shared state as long as writes stay inside [lo,hi).
func (p *workerPool) bands(n, par int, fn func(band, lo, hi int)) {
	if par > n {
		par = n
	}
	if p == nil || par <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	size := (n + par - 1) / par
	var wg sync.WaitGroup
	band := 1
	for lo := size; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		b, lo, hi := band, lo, hi
		band++
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(b, lo, hi)
		}
		select {
		case p.tasks <- task:
		default:
			task()
		}
	}
	fn(0, 0, size)
	wg.Wait()
}
