package dataflow

import (
	"math"
	"testing"

	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/tensor"
)

// These tests pin the tentpole invariant of the burst datapath: Run (burst
// granularity) and RunWords (one FIFO operation per word, the modeled
// hardware granularity) must produce bit-identical outputs and identical
// RunStats — same stream traffic totals, MACs, windows, modeled cycles and
// DDR bytes. MaxOccupancy is the one excluded quantity: it is a high-water
// mark of a race between producer and consumer and is nondeterministic even
// between two word-at-a-time runs.

func runEquivalence(t *testing.T, ir *condorir.Network, ws *condorir.WeightSet, batch []*tensor.Tensor) {
	t.Helper()

	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	// Separate instantiations so the datamovers' DDR counters accumulate
	// each path's traffic independently.
	burstAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	wordAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}

	burstOut, burstStats, err := burstAcc.Run(batch)
	if err != nil {
		t.Fatalf("burst run: %v", err)
	}
	wordOut, wordStats, err := wordAcc.RunWords(batch)
	if err != nil {
		t.Fatalf("word run: %v", err)
	}

	// Outputs: bit-identical, not approximately equal — the burst path must
	// preserve the exact floating-point accumulation order.
	if len(burstOut) != len(wordOut) {
		t.Fatalf("output count %d vs %d", len(burstOut), len(wordOut))
	}
	for i := range burstOut {
		bd, wd := burstOut[i].Data(), wordOut[i].Data()
		if len(bd) != len(wd) {
			t.Fatalf("image %d: output volume %d vs %d", i, len(bd), len(wd))
		}
		for j := range bd {
			if math.Float32bits(bd[j]) != math.Float32bits(wd[j]) {
				t.Fatalf("image %d element %d: burst %v (%#x) != word %v (%#x)",
					i, j, bd[j], math.Float32bits(bd[j]), wd[j], math.Float32bits(wd[j]))
			}
		}
	}

	if burstStats.Images != wordStats.Images {
		t.Errorf("Images: %d vs %d", burstStats.Images, wordStats.Images)
	}
	if len(burstStats.PEs) != len(wordStats.PEs) {
		t.Fatalf("PE count %d vs %d", len(burstStats.PEs), len(wordStats.PEs))
	}
	for i := range burstStats.PEs {
		if burstStats.PEs[i] != wordStats.PEs[i] {
			t.Errorf("PE %d stats differ:\n burst %+v\n word  %+v", i, burstStats.PEs[i], wordStats.PEs[i])
		}
	}
	if burstStats.DRAM != wordStats.DRAM {
		t.Errorf("DRAM traffic differs: burst %+v, word %+v", burstStats.DRAM, wordStats.DRAM)
	}
	if len(burstStats.Streams) != len(wordStats.Streams) {
		t.Fatalf("stream count %d vs %d", len(burstStats.Streams), len(wordStats.Streams))
	}
	for i := range burstStats.Streams {
		bs, ws := burstStats.Streams[i], wordStats.Streams[i]
		if bs.Name != ws.Name || bs.Depth != ws.Depth || bs.Pushes != ws.Pushes || bs.Pops != ws.Pops {
			t.Errorf("stream %d differs (MaxOccupancy excluded):\n burst %+v\n word  %+v", i, bs, ws)
		}
	}
}

func TestBurstWordEquivalenceTC1(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, ir, ws, models.USPSImages(4, 7))
}

func TestBurstWordEquivalenceLeNet(t *testing.T) {
	ir, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, ir, ws, models.MNISTImages(2, 11))
}
