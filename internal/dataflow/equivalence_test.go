package dataflow

import (
	"math"
	"testing"

	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/tensor"
)

// These tests pin the tentpole invariant of the burst datapath: Run (burst
// granularity) and RunWords (one FIFO operation per word, the modeled
// hardware granularity) must produce bit-identical outputs and identical
// RunStats — same stream traffic totals, MACs, windows, modeled cycles and
// DDR bytes. MaxOccupancy is the one excluded quantity: it is a high-water
// mark of a race between producer and consumer and is nondeterministic even
// between two word-at-a-time runs.

func runEquivalence(t *testing.T, ir *condorir.Network, ws *condorir.WeightSet, batch []*tensor.Tensor) {
	t.Helper()

	spec, err := BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	// Separate instantiations so the datamovers' DDR counters accumulate
	// each path's traffic independently.
	burstAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	wordAcc, err := Instantiate(spec, ws)
	if err != nil {
		t.Fatal(err)
	}

	burstOut, burstStats, err := burstAcc.Run(batch)
	if err != nil {
		t.Fatalf("burst run: %v", err)
	}
	wordOut, wordStats, err := wordAcc.RunWords(batch)
	if err != nil {
		t.Fatalf("word run: %v", err)
	}
	assertRunsIdentical(t, "burst", burstOut, burstStats, "word", wordOut, wordStats)
}

// assertRunsIdentical asserts two runs over the same batch produced
// bit-identical outputs and identical RunStats, MaxOccupancy excluded.
// Shared by the burst/word equivalence tests and the port-parallelism /
// compute-unit sweeps in parallel_test.go.
func assertRunsIdentical(t *testing.T, aName string, aOut []*tensor.Tensor, aStats *RunStats, bName string, bOut []*tensor.Tensor, bStats *RunStats) {
	t.Helper()

	// Outputs: bit-identical, not approximately equal — every datapath must
	// preserve the exact floating-point accumulation order.
	if len(aOut) != len(bOut) {
		t.Fatalf("output count %d vs %d", len(aOut), len(bOut))
	}
	for i := range aOut {
		ad, bd := aOut[i].Data(), bOut[i].Data()
		if len(ad) != len(bd) {
			t.Fatalf("image %d: output volume %d vs %d", i, len(ad), len(bd))
		}
		for j := range ad {
			if math.Float32bits(ad[j]) != math.Float32bits(bd[j]) {
				t.Fatalf("image %d element %d: %s %v (%#x) != %s %v (%#x)",
					i, j, aName, ad[j], math.Float32bits(ad[j]), bName, bd[j], math.Float32bits(bd[j]))
			}
		}
	}

	if aStats.Images != bStats.Images {
		t.Errorf("Images: %d vs %d", aStats.Images, bStats.Images)
	}
	if len(aStats.PEs) != len(bStats.PEs) {
		t.Fatalf("PE count %d vs %d", len(aStats.PEs), len(bStats.PEs))
	}
	for i := range aStats.PEs {
		if aStats.PEs[i] != bStats.PEs[i] {
			t.Errorf("PE %d stats differ:\n %s %+v\n %s  %+v", i, aName, aStats.PEs[i], bName, bStats.PEs[i])
		}
	}
	if aStats.DRAM != bStats.DRAM {
		t.Errorf("DRAM traffic differs: %s %+v, %s %+v", aName, aStats.DRAM, bName, bStats.DRAM)
	}
	if len(aStats.Streams) != len(bStats.Streams) {
		t.Fatalf("stream count %d vs %d", len(aStats.Streams), len(bStats.Streams))
	}
	for i := range aStats.Streams {
		as, bs := aStats.Streams[i], bStats.Streams[i]
		if as.Name != bs.Name || as.Depth != bs.Depth || as.Pushes != bs.Pushes || as.Pops != bs.Pops {
			t.Errorf("stream %d differs (MaxOccupancy excluded):\n %s %+v\n %s  %+v", i, aName, as, bName, bs)
		}
	}
}

func TestBurstWordEquivalenceTC1(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, ir, ws, models.USPSImages(4, 7))
}

func TestBurstWordEquivalenceLeNet(t *testing.T) {
	ir, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, ir, ws, models.MNISTImages(2, 11))
}
