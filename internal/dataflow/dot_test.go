package dataflow

import (
	"strings"
	"testing"
)

func TestDOTNetlist(t *testing.T) {
	spec, err := BuildSpec(specIR())
	if err != nil {
		t.Fatal(err)
	}
	dot := spec.DOT()
	for _, want := range []string{
		"digraph \"condor_spec_test\"",
		"datamover",
		"cluster_pe0",
		"filter(4,4)", // head of the 5x5 chain (inverse lexicographic)
		"filter(0,0)", // tail
		"fifo[1]",
		"pe2_pe",       // the FC PE
		"style=dotted", // weight streams
		"-> dm [label=\"output\"]",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// The 5x5 chain must have a row-wrap FIFO of depth W-(K-1) = 12.
	if !strings.Contains(dot, "fifo[12]") {
		t.Fatalf("missing row-wrap FIFO depth:\n%s", dot)
	}
	// Deterministic.
	if spec.DOT() != dot {
		t.Fatal("DOT output not deterministic")
	}
}

func TestDOTSanitizesNames(t *testing.T) {
	spec, err := BuildSpec(specIR())
	if err != nil {
		t.Fatal(err)
	}
	spec.Name = "weird name/v2"
	dot := spec.DOT()
	if !strings.Contains(dot, "condor_weird_name_v2") {
		t.Fatalf("name not sanitized:\n%s", dot[:80])
	}
}
