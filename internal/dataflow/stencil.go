package dataflow

import (
	"fmt"
	"sync"

	"condor/internal/fifo"
)

// tapFIFODepth returns the depth of the FIFOs carrying selected window
// elements from the filters to the PE. The inter-filter FIFOs implement the
// exact reuse distances; the tap FIFOs only need a small decoupling margin
// (the PE consumes one element per tap per window). The functional
// simulator uses a generous margin; the resource model charges the analytic
// minimum.
func tapFIFODepth(k int) int {
	d := 2 * k * k
	if d < 8 {
		d = 8
	}
	return d
}

// activeTaps returns, for a layer running on a chain (whose window may be
// larger when layers are fused), the chain tap indices that are active —
// those with access coordinates inside the layer's own window — mapped by
// (m*k + n). The "set of conditionals" of the paper reduces to this
// active-set selection.
func (c *FilterChain) activeTaps(layerK int) ([]int, error) {
	if layerK > c.Kernel {
		return nil, fmt.Errorf("dataflow: layer window %d exceeds chain window %d", layerK, c.Kernel)
	}
	idx := make([]int, layerK*layerK)
	for i := range idx {
		idx[i] = -1
	}
	for ti, t := range c.Taps {
		if t.M < layerK && t.N < layerK {
			idx[t.M*layerK+t.N] = ti
		}
	}
	for i, v := range idx {
		if v < 0 {
			return nil, fmt.Errorf("dataflow: chain is missing tap for access (%d,%d)", i/layerK, i%layerK)
		}
	}
	return idx, nil
}

// chainRun is one execution of the filter pipeline over a single padded
// input feature map. It owns the goroutines of the filters and the FIFOs
// between them, and exposes the per-tap output FIFOs.
type chainRun struct {
	taps []*fifo.FIFO // indexed like FilterChain.Taps; inactive taps are closed immediately
	wg   sync.WaitGroup
}

// start spawns the filter pipeline for one input map of the given layer.
// src must deliver exactly paddedH×paddedW words (the datamover inserts the
// zero padding); it is fully drained. Each active tap FIFO receives exactly
// OutH×OutW words in row-major output order and is closed when the map ends.
func (c *FilterChain) start(l *LayerHW, src *fifo.FIFO) (*chainRun, error) {
	if l.PaddedWidth() > c.PaddedW {
		return nil, fmt.Errorf("dataflow: layer %q padded width %d exceeds chain width %d", l.Name, l.PaddedWidth(), c.PaddedW)
	}
	run := &chainRun{taps: make([]*fifo.FIFO, len(c.Taps))}

	// Inter-filter FIFOs. Depths are the chain's reuse distances, computed
	// for the largest fused geometry; a layer with a smaller window or a
	// narrower input needs at most those depths, so the same physical FIFOs
	// serve every fused layer (Section 3.2).
	inter := make([]*fifo.FIFO, len(c.FIFODepths))
	for i, d := range c.FIFODepths {
		inter[i] = fifo.New(fmt.Sprintf("reuse[%d]", i), d)
	}

	paddedW := l.PaddedWidth()
	outH, outW := l.OutShape.Height, l.OutShape.Width
	stride := l.Stride

	for i := range c.Taps {
		tap := c.Taps[i]
		tapF := fifo.New(fmt.Sprintf("tap(%d,%d)", tap.M, tap.N), tapFIFODepth(l.Kernel))
		run.taps[i] = tapF

		var in *fifo.FIFO
		if i == 0 {
			in = src
		} else {
			in = inter[i-1]
		}
		var next *fifo.FIFO
		if i < len(inter) {
			next = inter[i]
		}

		active := tap.M < l.Kernel && tap.N < l.Kernel
		run.wg.Add(1)
		go func(in, next, tapF *fifo.FIFO, tap Tap, active bool) {
			defer run.wg.Done()
			defer tapF.Close()
			if next != nil {
				defer next.Close()
			}
			// The filter's inequality set: an element at (y,x) of the padded
			// stream belongs to this tap's data domain iff it is the (m,n)
			// access of some valid output position (oy,ox).
			t := 0
			for {
				v, ok := in.Pop()
				if !ok {
					return
				}
				if active {
					y, x := t/paddedW, t%paddedW
					if y >= tap.M && x >= tap.N &&
						(y-tap.M)%stride == 0 && (x-tap.N)%stride == 0 &&
						(y-tap.M)/stride < outH && (x-tap.N)/stride < outW {
						tapF.Push(v)
					}
				}
				if next != nil {
					next.Push(v)
				}
				t++
			}
		}(in, next, tapF, tap, active)
	}
	return run, nil
}

// wait blocks until every filter goroutine has finished (the map is fully
// streamed) and discards any elements left in inactive taps.
func (r *chainRun) wait() {
	r.wg.Wait()
}

// windowReader reads complete sliding windows from a chain run for a layer
// with window size k, in row-major output order.
type windowReader struct {
	run    *chainRun
	order  []int // chain tap index for window slot (m*k+n)
	window []fifo.Word
}

// newWindowReader prepares a reader for the layer's k×k window.
func (c *FilterChain) newWindowReader(run *chainRun, layerK int) (*windowReader, error) {
	order, err := c.activeTaps(layerK)
	if err != nil {
		return nil, err
	}
	return &windowReader{run: run, order: order, window: make([]fifo.Word, layerK*layerK)}, nil
}

// next returns the next window (indexed [m*k+n]); ok=false when the map is
// exhausted. The returned slice is reused across calls.
func (w *windowReader) next() ([]fifo.Word, bool) {
	for slot, ti := range w.order {
		v, ok := w.run.taps[ti].Pop()
		if !ok {
			return nil, false
		}
		w.window[slot] = v
	}
	return w.window, true
}

// streamPadded pushes one feature map (h×w words read through read) into
// dst as a zero-padded (h+2p)×(w+2p) row-major stream, then closes dst.
// This is the boundary handling the datamover performs when feeding a
// filter chain.
func streamPadded(read func() (fifo.Word, bool), h, w, pad int, dst *fifo.FIFO) error {
	defer dst.Close()
	for y := -pad; y < h+pad; y++ {
		for x := -pad; x < w+pad; x++ {
			if y < 0 || y >= h || x < 0 || x >= w {
				dst.Push(0)
				continue
			}
			v, ok := read()
			if !ok {
				return fmt.Errorf("dataflow: input stream ended early at (%d,%d)", y, x)
			}
			dst.Push(v)
		}
	}
	return nil
}
