package dataflow

// Packed-datapath variants of the alternate convolution algorithms (see
// algopath.go for the float32 versions and the error contracts). The
// im2col+GEMM lowering stays entirely on the int8 grid — int8 panel, int32
// accumulators, the same dequantize/requantize boundary as the direct int8
// path. Winograd runs its transform domain in float32 over dequantized
// tiles (the ±½ transform combinations do not survive the int8 grid), then
// requantizes the output; both algorithms keep the per-tensor scale
// accounting that parameterises QuantErrorBound.

import (
	"fmt"

	"condor/internal/quant"
)

// buildIm2ColPanel8 is buildIm2ColPanel over int8 codes.
func buildIm2ColPanel8(panel, padded []int8, l *LayerHW) {
	k, stride, pw := l.Kernel, l.Stride, l.PaddedWidth()
	outH, outW := l.OutShape.Height, l.OutShape.Width
	outHW := outH * outW
	for m := 0; m < k; m++ {
		for n := 0; n < k; n++ {
			dst := panel[(m*k+n)*outHW:]
			for oy := 0; oy < outH; oy++ {
				src := padded[(oy*stride+m)*pw+n:]
				if stride == 1 {
					copy(dst[oy*outW:(oy+1)*outW], src[:outW])
				} else {
					for ox := 0; ox < outW; ox++ {
						dst[oy*outW+ox] = src[ox*stride]
					}
				}
			}
		}
	}
}

// runConvGEMM is the quantized im2col+GEMM convolution: per input-channel
// pass the padded code plane is unrolled into the tap-major panel, then the
// register-tiled int32 microkernel drives the output-channel bands over it.
// The dequantize/activate/requantize tail is identical to the direct int8
// path's, so the error accounting is unchanged.
func (x *peExecInt8) runConvGEMM(l *LayerHW, st *peLayerInt8, cur []int8, inScale float64, out []int8) (float64, error) {
	c, f, k := l.InShape.Channels, l.OutShape.Channels, l.Kernel
	outHW := l.OutShape.Height * l.OutShape.Width
	inHW := l.InShape.Height * l.InShape.Width
	kk := k * k
	if st.streamBytes > 0 {
		x.dm.AccountReadBytes(st.streamBytes)
	}
	x.partial = growInt32(x.partial, f*outHW)
	partial := x.partial
	clear(partial)
	x.panel = growInt8(x.panel, kk*outHW)
	panel := x.panel
	outBands := x.pe.Par.Normalize().Out
	for ci := 0; ci < c; ci++ {
		padded := x.padChannel(l, cur[ci*inHW:(ci+1)*inHW])
		buildIm2ColPanel8(panel, padded, l)
		x.pool.bands(f, outBands, func(_, lo, hi int) {
			for fi := lo; fi < hi; fi++ {
				base := (fi*c + ci) * kk
				acc := partial[fi*outHW : (fi+1)*outHW]
				pos := 0
				for ; pos+gemmPosTile <= outHW; pos += gemmPosTile {
					a0, a1, a2, a3 := acc[pos], acc[pos+1], acc[pos+2], acc[pos+3]
					for t := 0; t < kk; t++ {
						wv := int32(st.w[base+t])
						row := panel[t*outHW+pos : t*outHW+pos+gemmPosTile]
						a0 += wv * int32(row[0])
						a1 += wv * int32(row[1])
						a2 += wv * int32(row[2])
						a3 += wv * int32(row[3])
					}
					acc[pos], acc[pos+1], acc[pos+2], acc[pos+3] = a0, a1, a2, a3
				}
				for ; pos < outHW; pos++ {
					a := acc[pos]
					for t := 0; t < kk; t++ {
						a += int32(st.w[base+t]) * int32(panel[t*outHW+pos])
					}
					acc[pos] = a
				}
			}
		})
		x.stats.WindowsRead += int64(outHW)
		x.stats.MACs += int64(f) * int64(kk) * int64(outHW)
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	x.floatBuf = growSlice(x.floatBuf, f*outHW)
	fb := x.floatBuf
	deq := st.wScale * inScale
	x.pool.bands(f, outBands, func(_, lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			var bias float64
			if len(st.b) > 0 {
				bias = float64(st.b[fi])
			}
			off := fi * outHW
			for pos := 0; pos < outHW; pos++ {
				fb[off+pos] = applyActivation(l.Activation, float32(float64(partial[off+pos])*deq+bias))
			}
		}
	})
	outScale := frameScale(fb)
	quant.QuantizeInto(out, fb, outScale)
	return outScale, nil
}

// runConvWinograd is the packed-datapath F(2,3) convolution: input codes are
// dequantized channel by channel into a padded float plane, the float
// transform-domain schedule of peExec.runConvWinograd runs over it against
// the float transformed weights, and the result requantizes with a fresh
// per-tensor scale. Output deviation from the oracle is bounded by
// QuantErrorBound + WinogradErrorBound.
func (x *peExecInt8) runConvWinograd(l *LayerHW, st *peLayerInt8, cur []int8, inScale float64, out []int8) (float64, error) {
	c, f := l.InShape.Channels, l.OutShape.Channels
	outH, outW := l.OutShape.Height, l.OutShape.Width
	outHW := outH * outW
	inHW := l.InShape.Height * l.InShape.Width
	if !WinogradOK(l.Kernel, l.Stride, l.OutShape) {
		return 0, fmt.Errorf("winograd_f23: layer %q does not qualify (k=%d s=%d out %dx%d)",
			l.Name, l.Kernel, l.Stride, outH, outW)
	}
	if st.streamBytes > 0 {
		x.dm.AccountReadBytes(st.streamBytes)
	}
	tH, tW := outH/2, outW/2
	tiles := tH * tW
	ph, pw := l.PaddedHeight(), l.PaddedWidth()
	h, w, pad := l.InShape.Height, l.InShape.Width, l.Pad
	x.padF = growSlice(x.padF, ph*pw)
	x.vBuf = growSlice(x.vBuf, tiles*16)
	x.mBuf = growSlice(x.mBuf, f*tiles*16)
	padded, vBuf, mBuf := x.padF, x.vBuf, x.mBuf
	clear(mBuf)
	outBands := x.pe.Par.Normalize().Out
	for ci := 0; ci < c; ci++ {
		// Dequantize the channel plane straight into the padded scratch.
		clear(padded)
		chmap := cur[ci*inHW : (ci+1)*inHW]
		for y := 0; y < h; y++ {
			row := padded[(y+pad)*pw+pad:]
			src := chmap[y*w : (y+1)*w]
			for i, code := range src {
				row[i] = float32(float64(code) * inScale)
			}
		}
		var d [16]float32
		for ty := 0; ty < tH; ty++ {
			for tx := 0; tx < tW; tx++ {
				for r := 0; r < 4; r++ {
					copy(d[r*4:r*4+4], padded[(2*ty+r)*pw+2*tx:(2*ty+r)*pw+2*tx+4])
				}
				winogradInputTransform(&d, vBuf[(ty*tW+tx)*16:])
			}
		}
		x.pool.bands(f, outBands, func(_, lo, hi int) {
			for fi := lo; fi < hi; fi++ {
				u := st.wg[(fi*c+ci)*16 : (fi*c+ci)*16+16]
				for ti := 0; ti < tiles; ti++ {
					m := mBuf[(fi*tiles+ti)*16 : (fi*tiles+ti)*16+16]
					v := vBuf[ti*16 : ti*16+16]
					for j := 0; j < 16; j++ {
						m[j] += u[j] * v[j]
					}
				}
			}
		})
		x.stats.WindowsRead += int64(tiles)
		x.stats.MACs += int64(f) * 16 * int64(tiles)
		if !x.pe.PartialsOnChip {
			x.dm.AccountPartialSpill(int64(f * outHW))
			x.stats.SpilledPartial += int64(f * outHW)
		}
	}
	x.floatBuf = growSlice(x.floatBuf, f*outHW)
	fb := x.floatBuf
	mags := make([]float64, outBands)
	x.pool.bands(f, outBands, func(band, lo, hi int) {
		mag := mags[band]
		for fi := lo; fi < hi; fi++ {
			var bias float32
			if len(st.b) > 0 {
				bias = st.b[fi]
			}
			for ti := 0; ti < tiles; ti++ {
				y := winogradInverse(mBuf[(fi*tiles+ti)*16 : (fi*tiles+ti)*16+16])
				ty, tx := ti/tW, ti%tW
				base := fi*outHW + (2*ty)*outW + 2*tx
				for _, v := range y {
					if a := abs64(float64(v)); a > mag {
						mag = a
					}
				}
				fb[base] = applyActivation(l.Activation, y[0]+bias)
				fb[base+1] = applyActivation(l.Activation, y[1]+bias)
				fb[base+outW] = applyActivation(l.Activation, y[2]+bias)
				fb[base+outW+1] = applyActivation(l.Activation, y[3]+bias)
			}
		}
		mags[band] = mag
	})
	for _, m := range mags {
		if m > x.stats.MaxWinogradMag {
			x.stats.MaxWinogradMag = m
		}
	}
	outScale := frameScale(fb)
	quant.QuantizeInto(out, fb, outScale)
	return outScale, nil
}
