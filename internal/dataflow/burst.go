package dataflow

import (
	"fmt"
	"sync"

	"condor/internal/fifo"
)

// This file implements the burst-mode stencil datapath: the same filter
// pipeline as stencil.go (one goroutine per window access, FIFOs between
// them), advanced one padded input row per synchronisation instead of one
// word. Window contents, delivery order and every modeled quantity are
// identical to the word-at-a-time path — bursts only batch the host-side
// channel operations, the way Caffeine-class accelerators batch their DDR
// traffic. The word-granularity implementation is retained in wordpath.go
// and stencil.go as the equivalence oracle.

// TapWorstCaseWords is the analytic worst-case occupancy of a tap FIFO on
// the row-granularity datapath: the window reader retires whole output rows
// (outW words per tap) in slot order, blocking on the bottom window row
// (m = k-1), so the top window row's tap (m = 0) must absorb every
// intervening output row it selects — ⌈(k-1)/stride⌉+1 rows of outW words —
// without blocking the single chain goroutine. Any tap FIFO shallower than
// this deadlocks the burst schedule; verify rule CND020 proves declared
// depths against this bound statically.
func TapWorstCaseWords(l *LayerHW) int {
	return ((l.Kernel-1)/l.Stride + 1) * l.OutShape.Width
}

// tapFIFODepthRows sizes the tap FIFOs of the row-granularity chain: the
// analytic worst case plus one extra row of slack to keep producer and
// consumer decoupled. This is a simulation margin only — the resource model
// charges the analytic minimum, as with tapFIFODepth.
func tapFIFODepthRows(l *LayerHW) int {
	d := TapWorstCaseWords(l) + l.OutShape.Width
	if m := 2 * l.Kernel * l.Kernel; m > d {
		d = m
	}
	if d < 8 {
		d = 8
	}
	return d
}

// padFIFODepth sizes the padded-stream FIFO so a whole padded row fits.
func padFIFODepth(l *LayerHW) int {
	if w := l.PaddedWidth(); w > 64 {
		return w
	}
	return 64
}

// stencilRun owns the reusable simulation state of one filter-chain
// instance: the pad FIFO, the tap FIFOs and the row scratch a channel pass
// needs. The FIFOs are sized once for the PE's most demanding fused layer
// and Reset between passes, so streaming a map allocates nothing in steady
// state — matching the hardware, where one physical chain serves every
// pass. A stencilRun carries one pass at a time; a PE with In > 1 ports
// owns one runner per concurrently-active pass.
type stencilRun struct {
	pe *PE

	pad  *fifo.FIFO
	taps []*fifo.FIFO
	used bool // FIFOs hold a finished stream and need Reset before reuse

	// Scratch, grown on demand and reused across passes. Each slice is
	// touched by exactly one of the pass's three actors (pad streamer, chain
	// goroutine, window-reading caller); pass() grows them before spawning
	// the goroutines, so reuse across passes is ordered by the goroutine
	// joins.
	padRow  []fifo.Word   // pad streamer: current padded row (borders stay zero)
	padZero []fifo.Word   // pad streamer: an all-zero padded row
	chRow   []fifo.Word   // chain goroutine: current padded row
	sel     []fifo.Word   // chain goroutine: selected columns of one tap row
	rows    [][]fifo.Word // caller: current output row of each window slot
	win     []fifo.Word   // caller: assembled window, reused per position

	// Active-tap selection, cached per layer kernel (fused layers with a
	// smaller window than the chain activate a subset of the taps).
	orderK    int
	order     []int  // chain tap index for window slot (m*k + n)
	activeIdx []int  // chain tap indices inside the layer's window, pipeline order
	activeSet []bool // per chain tap index: inside the layer's window
}

// newStencilRun builds a runner for the PE's filter chain. FIFO depths are
// the maximum over the PE's fused layers, so one runner serves them all;
// these FIFOs are internal to the PE and not part of RunStats.Streams, so
// the extra slack changes no modeled quantity. A chain that declares an
// explicit TapFIFODepth gets exactly that depth — verify rule CND020 is the
// gate that keeps infeasible declarations from reaching this constructor.
func newStencilRun(pe *PE, id int) *stencilRun {
	maxPad, maxTap := 1, 1
	for i := range pe.Layers {
		l := &pe.Layers[i]
		if !l.Kind.IsFeatureExtraction() {
			continue
		}
		if d := padFIFODepth(l); d > maxPad {
			maxPad = d
		}
		if d := tapFIFODepthRows(l); d > maxTap {
			maxTap = d
		}
	}
	if pe.Chain.TapFIFODepth > 0 {
		maxTap = pe.Chain.TapFIFODepth
	}
	r := &stencilRun{pe: pe}
	r.pad = fifo.New(fmt.Sprintf("%s/pad%d", pe.ID, id), maxPad)
	r.taps = make([]*fifo.FIFO, len(pe.Chain.Taps))
	for i, tap := range pe.Chain.Taps {
		r.taps[i] = fifo.New(fmt.Sprintf("%s/tap%d(%d,%d)", pe.ID, id, tap.M, tap.N), maxTap)
	}
	return r
}

// selectTaps caches the active-tap mapping for the layer's window size.
func (r *stencilRun) selectTaps(layerK int) error {
	if r.orderK == layerK {
		return nil
	}
	order, err := r.pe.Chain.activeTaps(layerK)
	if err != nil {
		return err
	}
	r.order = order
	r.activeIdx = r.activeIdx[:0]
	if r.activeSet == nil {
		r.activeSet = make([]bool, len(r.pe.Chain.Taps))
	}
	for ti, tap := range r.pe.Chain.Taps {
		in := tap.M < layerK && tap.N < layerK
		r.activeSet[ti] = in
		if in {
			r.activeIdx = append(r.activeIdx, ti)
		}
	}
	r.orderK = layerK
	return nil
}

// pass streams one input map through the filter chain at row granularity,
// invoking fn for every window in row-major output order. The window slice
// passed to fn is reused across calls. Window contents and delivery order
// are identical to the word-level oracle; only the goroutine and FIFO
// bookkeeping differ (one chain goroutine, reused FIFOs).
func (r *stencilRun) pass(l *LayerHW, chmap []float32, fn func(pos int, win []fifo.Word)) error {
	c := r.pe.Chain
	if l.PaddedWidth() > c.PaddedW {
		return fmt.Errorf("dataflow: layer %q padded width %d exceeds chain width %d", l.Name, l.PaddedWidth(), c.PaddedW)
	}
	if err := r.selectTaps(l.Kernel); err != nil {
		return err
	}
	if r.used {
		r.pad.Reset()
		for _, t := range r.taps {
			t.Reset()
		}
	}
	r.used = true

	// Taps outside the layer's window (fused chains size the window for the
	// largest layer) select nothing for this map.
	active := r.activeIdx
	for ti := range r.taps {
		if !r.activeSet[ti] {
			r.taps[ti].Close()
		}
	}

	paddedW := l.PaddedWidth()
	outH, outW := l.OutShape.Height, l.OutShape.Width
	stride := l.Stride
	kk := l.Kernel * l.Kernel

	// Grow every actor's scratch here, before the goroutines spawn, so the
	// field writes are ordered before the pass and the reuse after it.
	padRow := growWords(r.padRow, paddedW)
	r.padRow = padRow
	clear(padRow) // borders must be zero; the data region is overwritten per row
	padZero := growWords(r.padZero, paddedW)
	r.padZero = padZero
	clear(padZero)
	chRow := growWords(r.chRow, paddedW)
	r.chRow = chRow
	sel := growWords(r.sel, outW)
	r.sel = sel
	win := growWords(r.win, kk)
	r.win = win
	for len(r.rows) < kk {
		r.rows = append(r.rows, nil)
	}
	rows := r.rows[:kk]
	for i := range rows {
		rows[i] = growWords(rows[i], outW)
		r.rows[i] = rows[i]
	}

	// Pad streamer: the datamover's zero-padding boundary handling, one
	// PushSlice per padded row.
	padErr := make(chan error, 1)
	go func() {
		padErr <- r.streamRows(chmap, l, padRow, padZero)
	}()

	// Chain goroutine: at row granularity every filter observes the
	// identical padded row sequence, so the whole chain advances as one
	// goroutine applying each filter's row/column selection in turn. Padded
	// row y contributes to tap (M,N) iff it is the M-th row of some valid
	// output row; within it, the selected columns are N, N+stride, ….
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			for _, ti := range active {
				r.taps[ti].Close()
			}
		}()
		for y := 0; ; y++ {
			n := r.pad.PopInto(chRow)
			if n < paddedW { // 0 = end of map; short = truncated upstream
				return
			}
			for _, ti := range active {
				tap := c.Taps[ti]
				if y >= tap.M && (y-tap.M)%stride == 0 && (y-tap.M)/stride < outH {
					for ox := 0; ox < outW; ox++ {
						sel[ox] = chRow[tap.N+ox*stride]
					}
					r.taps[ti].PushSlice(sel)
				}
			}
		}
	}()

	// Window reader: one output row of words per tap per synchronisation.
	pos := 0
	var readErr error
scan:
	for oy := 0; oy < outH; oy++ {
		for slot, ti := range r.order {
			if n := r.taps[ti].PopInto(rows[slot]); n < outW {
				readErr = fmt.Errorf("filter chain delivered only %d of %d windows", pos, outH*outW)
				break scan
			}
		}
		for ox := 0; ox < outW; ox++ {
			for slot := range win {
				win[slot] = rows[slot][ox]
			}
			fn(pos, win)
			pos++
		}
	}
	wg.Wait()
	if err := <-padErr; err != nil {
		return err
	}
	return readErr
}

// streamRows pushes one feature map into the pad FIFO as a zero-padded
// row-major stream, one PushSlice per padded row, then closes it. Burst
// twin of streamPadded, reusing the runner's row scratch.
func (r *stencilRun) streamRows(data []float32, l *LayerHW, row, zero []fifo.Word) error {
	defer r.pad.Close()
	h, w, pad := l.InShape.Height, l.InShape.Width, l.Pad
	if len(data) != h*w {
		return fmt.Errorf("dataflow: input map has %d words, want %d", len(data), h*w)
	}
	for i := 0; i < pad; i++ {
		r.pad.PushSlice(zero)
	}
	for y := 0; y < h; y++ {
		copy(row[pad:pad+w], data[y*w:(y+1)*w])
		r.pad.PushSlice(row)
	}
	for i := 0; i < pad; i++ {
		r.pad.PushSlice(zero)
	}
	return nil
}

// growWords returns s resized to n words, reallocating only when capacity
// is short. Contents are unspecified — callers overwrite or clear.
func growWords(s []fifo.Word, n int) []fifo.Word {
	if cap(s) < n {
		return make([]fifo.Word, n)
	}
	return s[:n]
}
