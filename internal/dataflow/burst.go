package dataflow

import (
	"fmt"

	"condor/internal/fifo"
)

// This file implements the burst-mode stencil datapath: the same filter
// pipeline as stencil.go (one goroutine per window access, FIFOs between
// them), advanced one padded input row per synchronisation instead of one
// word. Window contents, delivery order and every modeled quantity are
// identical to the word-at-a-time path — bursts only batch the host-side
// channel operations, the way Caffeine-class accelerators batch their DDR
// traffic. The word-granularity implementation is retained in wordpath.go
// and stencil.go as the equivalence oracle.

// tapFIFODepthRows sizes the tap FIFOs of the row-granularity chain. The
// consumer retires whole output rows (outW words per tap) in slot order,
// blocking on the bottom window row (m = k-1); for the single chain
// goroutine to reach the padded row that feeds it, the top window row's tap
// (m = 0) must absorb every intervening output row it selects —
// ⌈(k-1)/stride⌉+1 rows — without blocking. One extra row of slack keeps
// producer and consumer decoupled. This is a simulation margin only — the
// resource model charges the analytic minimum, as with tapFIFODepth.
func tapFIFODepthRows(l *LayerHW) int {
	rows := (l.Kernel-1)/l.Stride + 2
	d := rows * l.OutShape.Width
	if m := 2 * l.Kernel * l.Kernel; m > d {
		d = m
	}
	if d < 8 {
		d = 8
	}
	return d
}

// padFIFODepth sizes the padded-stream FIFO so a whole padded row fits.
func padFIFODepth(l *LayerHW) int {
	if w := l.PaddedWidth(); w > 64 {
		return w
	}
	return 64
}

// startRows spawns the filter pipeline for one input map at row granularity.
// src must deliver exactly paddedH×paddedW words in whole rows. Each active
// tap FIFO receives exactly OutH×OutW words in row-major output order, one
// PushSlice per output row, and is closed when the map ends.
//
// At row granularity every filter of the chain observes the identical
// padded row sequence — the inter-filter reuse FIFOs of the word-level
// pipeline (stencil.go) carry it unchanged from filter to filter — so the
// whole chain advances as a single goroutine that applies each filter's
// row/column selection in turn. This collapses the k²+ goroutine handoffs
// per row into one, which is where the word-level simulator spends its
// time; the per-filter decomposition and reuse-distance FIFOs remain in
// the word path and in the resource model, which still charges the
// analytic c.FIFODepths.
func (c *FilterChain) startRows(l *LayerHW, src *fifo.FIFO) (*chainRun, error) {
	if l.PaddedWidth() > c.PaddedW {
		return nil, fmt.Errorf("dataflow: layer %q padded width %d exceeds chain width %d", l.Name, l.PaddedWidth(), c.PaddedW)
	}
	run := &chainRun{taps: make([]*fifo.FIFO, len(c.Taps))}

	paddedW := l.PaddedWidth()
	outH, outW := l.OutShape.Height, l.OutShape.Width
	stride := l.Stride

	type activeTap struct {
		f *fifo.FIFO
		Tap
	}
	var active []activeTap
	for i, tap := range c.Taps {
		tapF := fifo.New(fmt.Sprintf("tap(%d,%d)", tap.M, tap.N), tapFIFODepthRows(l))
		run.taps[i] = tapF
		if tap.M < l.Kernel && tap.N < l.Kernel {
			active = append(active, activeTap{tapF, tap})
		} else {
			// Taps outside the layer's window (fused chains size the window
			// for the largest layer) select nothing for this map.
			tapF.Close()
		}
	}

	run.wg.Add(1)
	go func() {
		defer run.wg.Done()
		defer func() {
			for _, at := range active {
				at.f.Close()
			}
		}()
		row := make([]fifo.Word, paddedW)
		sel := make([]fifo.Word, outW)
		// Each filter's inequality set at row granularity: padded row y
		// contributes to tap (M,N) iff it is the M-th row of some valid
		// output row; within it, the selected columns are N, N+stride, …
		for y := 0; ; y++ {
			n := src.PopInto(row)
			if n < paddedW { // 0 = end of map; short = truncated upstream
				return
			}
			for _, at := range active {
				if y >= at.M && (y-at.M)%stride == 0 && (y-at.M)/stride < outH {
					for ox := 0; ox < outW; ox++ {
						sel[ox] = row[at.N+ox*stride]
					}
					at.f.PushSlice(sel)
				}
			}
		}
	}()
	return run, nil
}

// rowWindowReader reads one output row of windows per synchronisation from
// a row-granularity chain run.
type rowWindowReader struct {
	run   *chainRun
	order []int         // chain tap index for window slot (m*k+n)
	rows  [][]fifo.Word // per slot, the current output row of tap words
	win   []fifo.Word   // assembled window, reused across calls
}

// newRowWindowReader prepares a reader for the layer's k×k window.
func (c *FilterChain) newRowWindowReader(run *chainRun, l *LayerHW) (*rowWindowReader, error) {
	order, err := c.activeTaps(l.Kernel)
	if err != nil {
		return nil, err
	}
	k := l.Kernel
	r := &rowWindowReader{run: run, order: order, win: make([]fifo.Word, k*k)}
	r.rows = make([][]fifo.Word, k*k)
	for i := range r.rows {
		r.rows[i] = make([]fifo.Word, l.OutShape.Width)
	}
	return r, nil
}

// nextRow pulls one output row worth of words from every active tap;
// ok=false when the map is exhausted.
func (r *rowWindowReader) nextRow() bool {
	for slot, ti := range r.order {
		if n := r.run.taps[ti].PopInto(r.rows[slot]); n < len(r.rows[slot]) {
			return false
		}
	}
	return true
}

// window assembles window ox of the current output row (indexed [m*k+n]).
// The returned slice is reused across calls.
func (r *rowWindowReader) window(ox int) []fifo.Word {
	for slot := range r.win {
		r.win[slot] = r.rows[slot][ox]
	}
	return r.win
}

// streamPaddedRows pushes one feature map (h×w words of data) into dst as a
// zero-padded (h+2p)×(w+2p) row-major stream, one PushSlice per padded row,
// then closes dst. Burst twin of streamPadded.
func streamPaddedRows(data []float32, h, w, pad int, dst *fifo.FIFO) error {
	defer dst.Close()
	if len(data) != h*w {
		return fmt.Errorf("dataflow: input map has %d words, want %d", len(data), h*w)
	}
	paddedW := w + 2*pad
	var zero []fifo.Word
	if pad > 0 {
		zero = make([]fifo.Word, paddedW)
		for i := 0; i < pad; i++ {
			dst.PushSlice(zero)
		}
	}
	row := make([]fifo.Word, paddedW) // pad borders stay zero
	for y := 0; y < h; y++ {
		copy(row[pad:pad+w], data[y*w:(y+1)*w])
		dst.PushSlice(row)
	}
	for i := 0; i < pad; i++ {
		dst.PushSlice(zero)
	}
	return nil
}
