package dataflow

import "condor/internal/obs"

// Publish records the batch's modeled counters into reg under the
// condor_fabric_* and condor_fifo_* metric families: images executed, per-PE
// cycles/MACs/spills, DDR traffic by direction, and per-stream FIFO word,
// burst and occupancy figures. Counters accumulate across calls, so one
// registry can absorb many batches; call with a fresh registry for a
// single-run snapshot.
func (s *RunStats) Publish(reg *obs.Registry) {
	reg.Counter("condor_fabric_images_total",
		"Images executed by the dataflow fabric.").Add(int64(s.Images))
	for i := range s.PEs {
		pe := &s.PEs[i]
		l := obs.L("pe", pe.ID)
		reg.Counter("condor_fabric_pe_cycles_total",
			"Modeled busy cycles per processing element.", l).Add(pe.Cycles)
		reg.Counter("condor_fabric_pe_macs_total",
			"MAC operations per processing element.", l).Add(pe.MACs)
		reg.Counter("condor_fabric_pe_windows_total",
			"Stencil windows read per processing element.", l).Add(pe.WindowsRead)
		reg.Counter("condor_fabric_pe_spilled_words_total",
			"Partial-sum words exchanged with the datamover per PE.", l).Add(pe.SpilledPartial)
	}
	reg.Counter("condor_fabric_ddr_bytes_total",
		"DDR bytes moved by the datamover.", obs.L("dir", "read")).Add(s.DRAM.BytesRead)
	reg.Counter("condor_fabric_ddr_bytes_total",
		"DDR bytes moved by the datamover.", obs.L("dir", "write")).Add(s.DRAM.BytesWritten)
	for _, st := range s.Streams {
		l := obs.L("stream", st.Name)
		reg.Counter("condor_fifo_words_total",
			"Words moved through inter-PE streaming FIFOs.",
			l, obs.L("op", "push")).Add(st.Pushes)
		reg.Counter("condor_fifo_words_total",
			"Words moved through inter-PE streaming FIFOs.",
			l, obs.L("op", "pop")).Add(st.Pops)
		reg.Counter("condor_fifo_bursts_total",
			"Burst synchronisations on inter-PE streaming FIFOs.",
			l, obs.L("op", "push")).Add(st.PushBursts)
		reg.Counter("condor_fifo_bursts_total",
			"Burst synchronisations on inter-PE streaming FIFOs.",
			l, obs.L("op", "pop")).Add(st.PopBursts)
		g := reg.Gauge("condor_fifo_max_occupancy_words",
			"High-water FIFO occupancy observed at burst boundaries.", l)
		if float64(st.MaxOccupancy) > g.Value() {
			g.Set(float64(st.MaxOccupancy))
		}
	}
}
