package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// This file holds the whole-program concurrency analyzers: goroutine-leak
// detection, lock-order cycle detection, mixed atomic/plain field access, and
// dropped context deadlines. Like the rest of the suite they are syntactic —
// scoped by import heuristics, tuned to the repository's concurrency idioms
// (WaitGroup-joined fabric goroutines, named mutexes per subsystem,
// atomic.Int64 counters, context-threaded request paths).

// GoLeak reports goroutine launches whose lifetime is unobservable: no
// WaitGroup accounting in the launching function and no completion signal
// (channel send or close) in the goroutine body. Such a goroutine cannot be
// joined, so an early error return in the launcher leaks it mid-batch — the
// exact failure mode of a burst feeder abandoned after a datamover error.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "report goroutines with no join evidence (WaitGroup Add/Done, channel send, or close)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				hasAdd := callsMethodNamed(fn.Body, "Add")
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if lit, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
						if hasAdd && callsMethodNamed(lit.Body, "Done") {
							return true
						}
						if signalsCompletion(lit.Body) {
							return true
						}
					} else if hasAdd {
						// go x.loop() after wg.Add(n): the named callee owns
						// the Done; pairing is the launcher's contract.
						return true
					}
					p.Reportf(g.Pos(), "goroutine has no join evidence: pair it with WaitGroup Add/Done or signal completion on a channel")
					return true
				})
			}
		}
	},
}

// callsMethodNamed reports whether body contains any method call x.name(...).
func callsMethodNamed(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// signalsCompletion reports whether a goroutine body makes its termination
// observable: a channel send, a close(ch), or closing a stream (x.Close()).
func signalsCompletion(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockEdge is one observed acquisition order: `to` was locked (directly or
// through a callee) while `from` was held.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// LockOrder builds the package's static lock-acquisition graph over named
// mutexes and reports every acquisition that participates in a cycle. Lock
// keys are "RecvType.field" for receiver-based mutexes (so every method of a
// type shares the key) and "ident.field" otherwise. The analysis is
// interprocedural within the package: calling a function that (transitively)
// locks M while holding L records the edge L -> M at the call site. defer
// Unlock holds the lock to function end; goroutine and closure bodies are
// walked as fresh stacks.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report mutex acquisition orders that close a cycle (potential deadlock)",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	type funcNode struct {
		decl               *ast.FuncDecl
		recvName, recvType string
	}
	var fns []funcNode
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			n := funcNode{decl: fn}
			if fn.Recv != nil && len(fn.Recv.List) > 0 {
				if names := fn.Recv.List[0].Names; len(names) > 0 {
					n.recvName = names[0].Name
				}
				n.recvType = recvTypeName(fn.Recv.List[0].Type)
			}
			fns = append(fns, n)
		}
	}

	// Per-function summaries keyed by bare name (same-named functions merge,
	// a deliberate over-approximation): the lock keys a function acquires
	// anywhere in its body, and the bare names it calls.
	acq := map[string]map[string]bool{}
	calls := map[string]map[string]bool{}
	for _, n := range fns {
		name := n.decl.Name.Name
		if acq[name] == nil {
			acq[name] = map[string]bool{}
		}
		if calls[name] == nil {
			calls[name] = map[string]bool{}
		}
		ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "Lock", "RLock":
					if k := lockKeyOf(fun.X, n.recvName, n.recvType); k != "" {
						acq[name][k] = true
					}
				case "Unlock", "RUnlock":
				default:
					// Only same-receiver method calls (d.helper()) propagate:
					// a call through another object's method resolves by bare
					// name only, which merges unrelated types' summaries and
					// manufactures edges no execution can take.
					if id, ok := fun.X.(*ast.Ident); ok && id.Name == n.recvName {
						calls[name][fun.Sel.Name] = true
					}
				}
			case *ast.Ident:
				if !goBuiltins[fun.Name] {
					calls[name][fun.Name] = true
				}
			}
			return true
		})
	}
	// Transitive closure: a function acquires everything its callees acquire.
	for changed := true; changed; {
		changed = false
		for name, cs := range calls {
			for c := range cs {
				for k := range acq[c] {
					if !acq[name][k] {
						acq[name][k] = true
						changed = true
					}
				}
			}
		}
	}

	var edges []lockEdge
	for _, n := range fns {
		walkLocks(n.decl.Body, n.recvName, n.recvType, acq, func(e lockEdge) {
			edges = append(edges, e)
		})
	}

	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	reported := map[token.Pos]bool{}
	for _, e := range edges {
		if reported[e.pos] || !lockReaches(adj, e.to, e.from) {
			continue
		}
		reported[e.pos] = true
		if e.from == e.to {
			p.Reportf(e.pos, "%s acquired while already held: self-deadlock", e.to)
		} else {
			p.Reportf(e.pos, "acquiring %s while holding %s closes a lock-order cycle: a thread taking them in the opposite order deadlocks", e.to, e.from)
		}
	}
}

// lockReaches reports whether `to` is reachable from `from` in the
// acquisition graph (trivially true when from == to).
func lockReaches(adj map[string]map[string]bool, from, to string) bool {
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for m := range adj[n] {
			stack = append(stack, m)
		}
	}
	return false
}

// recvTypeName unwraps a receiver type expression to its base type name.
func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// lockKeyOf names the mutex in an X.Lock() receiver chain, or "" when the
// mutex is not statically nameable (indexed, computed, ...).
func lockKeyOf(e ast.Expr, recvName, recvType string) string {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == recvName && recvType != "" {
			return recvType
		}
		return e.Name
	case *ast.SelectorExpr:
		base := lockKeyOf(e.X, recvName, recvType)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return lockKeyOf(e.X, recvName, recvType)
	}
	return ""
}

// lockWalker threads a held-lock set through one function body in source
// order, recording acquisition edges.
type lockWalker struct {
	recvName, recvType string
	acq                map[string]map[string]bool
	held               []string
	edge               func(lockEdge)
	lits               []*ast.FuncLit
}

// walkLocks analyzes one body (and, recursively with fresh stacks, every
// function literal it spawns or defines).
func walkLocks(body *ast.BlockStmt, recvName, recvType string, acq map[string]map[string]bool, edge func(lockEdge)) {
	w := &lockWalker{recvName: recvName, recvType: recvType, acq: acq, edge: edge}
	w.stmt(body)
	for _, lit := range w.lits {
		walkLocks(lit.Body, recvName, recvType, acq, edge)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, t := range s.List {
			w.stmt(t)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.stmt(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		for _, t := range s.Body {
			w.stmt(t)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm)
		}
		for _, t := range s.Body {
			w.stmt(t)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end — the exact
		// semantics the held-set models by not releasing it here.
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
			return
		}
		w.expr(s.Call)
	case *ast.GoStmt:
		// The goroutine runs on its own stack: its body starts with nothing
		// held. Its arguments are evaluated here.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *lockWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		for _, a := range e.Args {
			w.expr(a)
		}
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Lock", "RLock":
				if k := lockKeyOf(fun.X, w.recvName, w.recvType); k != "" {
					for _, h := range w.held {
						w.edge(lockEdge{from: h, to: k, pos: e.Pos()})
					}
					w.held = append(w.held, k)
				}
			case "Unlock", "RUnlock":
				if k := lockKeyOf(fun.X, w.recvName, w.recvType); k != "" {
					w.release(k)
				}
			default:
				w.expr(fun.X)
				if id, ok := fun.X.(*ast.Ident); ok && id.Name == w.recvName {
					w.callEdges(fun.Sel.Name, e.Pos())
				}
			}
		case *ast.Ident:
			if !goBuiltins[fun.Name] {
				w.callEdges(fun.Name, e.Pos())
			}
		case *ast.FuncLit:
			w.lits = append(w.lits, fun)
		default:
			w.expr(e.Fun)
		}
	case *ast.FuncLit:
		w.lits = append(w.lits, e)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.expr(elt)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	}
}

// goBuiltins are the predeclared functions a bare-ident call can resolve to;
// they never acquire package locks and must not be confused with same-named
// methods (the delete builtin vs an objectStore.delete method, say).
var goBuiltins = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true, "complex": true,
	"copy": true, "delete": true, "imag": true, "len": true, "make": true,
	"max": true, "min": true, "new": true, "panic": true, "print": true,
	"println": true, "real": true, "recover": true,
}

// callEdges records held -> acquired edges for a call to a package-local
// function, using its transitive acquisition summary.
func (w *lockWalker) callEdges(callee string, pos token.Pos) {
	if len(w.held) == 0 {
		return
	}
	keys := make([]string, 0, len(w.acq[callee]))
	for k := range w.acq[callee] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, h := range w.held {
			w.edge(lockEdge{from: h, to: k, pos: pos})
		}
	}
}

// release drops the most recent acquisition of key from the held set.
func (w *lockWalker) release(key string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == key {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// AtomicCounter reports plain accesses to fields and package variables that
// are elsewhere accessed through sync/atomic. Mixing the two forms on one
// word is a data race the race detector only catches when the interleaving
// happens; statically, any counter that is ever touched atomically must be
// touched atomically everywhere. The analyzer learns the atomic set from
// &x.f arguments to sync/atomic calls and from fields/variables declared
// with an atomic.X type, then flags increments, stores, and comparison reads
// of those names.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "report plain reads/writes of counters that are accessed via sync/atomic elsewhere",
	Run: func(p *Pass) {
		fields := map[string]bool{} // struct field names accessed atomically
		vars := map[string]bool{}   // package-level atomic.X variable names
		for _, f := range p.Files {
			atomicName := ImporterName(f, "sync/atomic")
			if atomicName == "" {
				continue
			}
			// Package-level atomic.X variables only: function-local names are
			// scoped to their function, and same-named locals elsewhere in
			// the package are unrelated words.
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || vs.Type == nil || !isAtomicType(vs.Type, atomicName) {
						continue
					}
					for _, nm := range vs.Names {
						vars[nm.Name] = true
					}
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if !isAtomicPkgFun(n.Fun, atomicName) {
						return true
					}
					for _, a := range n.Args {
						u, ok := a.(*ast.UnaryExpr)
						if !ok || u.Op != token.AND {
							continue
						}
						if fs, ok := u.X.(*ast.SelectorExpr); ok {
							fields[fs.Sel.Name] = true
						}
					}
				case *ast.StructType:
					for _, fld := range n.Fields.List {
						if !isAtomicType(fld.Type, atomicName) {
							continue
						}
						for _, nm := range fld.Names {
							fields[nm.Name] = true
						}
					}
				}
				return true
			})
		}
		if len(fields) == 0 && len(vars) == 0 {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IncDecStmt:
					if name, ok := atomicTarget(n.X, fields, vars); ok {
						p.Reportf(n.Pos(), "non-atomic %s of %s, which is accessed atomically elsewhere: use sync/atomic for every access", n.Tok, name)
					}
				case *ast.AssignStmt:
					if n.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range n.Lhs {
						if name, ok := atomicTarget(lhs, fields, vars); ok {
							p.Reportf(lhs.Pos(), "non-atomic store to %s, which is accessed atomically elsewhere: use sync/atomic for every access", name)
						}
					}
				case *ast.BinaryExpr:
					for _, e := range []ast.Expr{n.X, n.Y} {
						if name, ok := atomicTarget(e, fields, vars); ok {
							p.Reportf(e.Pos(), "non-atomic read of %s, which is written atomically elsewhere: use sync/atomic for every access", name)
						}
					}
				}
				return true
			})
		}
	},
}

// isAtomicPkgFun matches atomic.Fn for the local sync/atomic import name.
func isAtomicPkgFun(fun ast.Expr, atomicName string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == atomicName
}

// isAtomicType matches the atomic.X value types (atomic.Int64, ...).
func isAtomicType(t ast.Expr, atomicName string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == atomicName && lockBearers["atomic"][sel.Sel.Name]
}

// atomicTarget reports whether e names a member of the atomic set, returning
// a display name.
func atomicTarget(e ast.Expr, fields, vars map[string]bool) (string, bool) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if fields[e.Sel.Name] {
			if id, ok := e.X.(*ast.Ident); ok {
				return id.Name + "." + e.Sel.Name, true
			}
			return e.Sel.Name, true
		}
	case *ast.Ident:
		if vars[e.Name] {
			return e.Name, true
		}
	}
	return "", false
}

// CtxDeadline reports request-path code that drops an inbound deadline: a
// function that accepts a context.Context but then manufactures a fresh
// root context, sleeps uninterruptibly, or builds an http.Request without
// the context. All three sever the cancellation chain the serving path
// depends on to bound tail latency.
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "report context-accepting functions that drop the inbound deadline",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ctxName := ImporterName(f, "context")
			if ctxName == "" {
				continue
			}
			timeName := ImporterName(f, "time")
			httpName := ImporterName(f, "net/http")
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasCtxParam(fn, ctxName) {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch {
					case isPkgCall(call, ctxName, "Background"):
						p.Reportf(call.Pos(), "context.Background() discards the caller's deadline: derive from the inbound ctx")
					case isPkgCall(call, ctxName, "TODO"):
						p.Reportf(call.Pos(), "context.TODO() discards the caller's deadline: derive from the inbound ctx")
					case timeName != "" && isPkgCall(call, timeName, "Sleep"):
						p.Reportf(call.Pos(), "time.Sleep ignores ctx cancellation: use a timer and select on ctx.Done()")
					case httpName != "" && isPkgCall(call, httpName, "NewRequest"):
						p.Reportf(call.Pos(), "http.NewRequest drops ctx: use http.NewRequestWithContext")
					}
					return true
				})
			}
		}
	},
}

// hasCtxParam reports whether fn takes a context.Context parameter.
func hasCtxParam(fn *ast.FuncDecl, ctxName string) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxName {
			return true
		}
	}
	return false
}
