// Package analysis is Condor's codebase linting framework: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis (which the
// build environment cannot fetch) built on the standard library's go/ast and
// go/parser. It provides the Analyzer/Pass driver model plus the repository's
// custom analyzers enforcing Condor-specific invariants — discarded FIFO
// results, hand-rolled shape comparisons, lock values copied around, and
// unbounded HTTP clients on the AWS path. The Analyzer API mirrors
// go/analysis closely enough that migrating to the real framework (and
// multichecker) is a mechanical change once the dependency is available.
//
// Analyzers are syntactic: they work on the AST without type information,
// scoped by import heuristics where needed. That is deliberate — the
// invariants they enforce are local patterns, and go vet (which runs
// alongside condorlint in CI) covers the type-aware ground.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the package in the Pass and
// reports findings through Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in reports and -analyzers filters.
	Name string
	// Doc is the one-line description `condorlint -list` prints.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// Diagnostic is one finding, locatable in the source tree.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding like a compiler error.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files (including _test.go files).
	Files []*ast.File
	// Path is the package directory relative to the analysis root.
	Path string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Imports reports whether the file imports the given path.
func Imports(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// ImporterName returns the local name the file binds the import path to
// (the explicit alias, or the path's last element), or "" when the path is
// not imported.
func ImporterName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// Package is one parsed directory of Go files.
type Package struct {
	Path  string // directory relative to the load root
	Fset  *token.FileSet
	Files []*ast.File

	// ignoreLines maps file name -> set of lines carrying a
	// "//condorlint:ignore" suppression comment.
	ignoreLines map[string]map[int]bool
}

// skipDir reports whether a directory is outside the analysis scope, using
// the go tool's conventions (testdata, hidden and underscore directories).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Load parses the packages under root selected by patterns. The pattern
// language is the go tool's directory subset: "./..." walks recursively,
// anything else names a directory (optionally with a "/..." suffix).
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped, as the go tool does.
func Load(root string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" || pat == "." {
			pat = root
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		if !recursive {
			dirs[pat] = true
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != pat && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for dir := range dirs {
		pkg, err := loadDir(root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// loadDir parses every .go file directly inside dir (nil if there are none).
func loadDir(root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		rel = dir
	}
	pkg := &Package{Path: rel, Fset: token.NewFileSet(), ignoreLines: map[string]map[int]bool{}}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(pkg.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.recordIgnores(f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// recordIgnores collects "//condorlint:ignore" suppressions: a finding on
// the same line as (or the line directly below) such a comment is dropped.
func (p *Package) recordIgnores(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//condorlint:ignore") {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			lines := p.ignoreLines[pos.Filename]
			if lines == nil {
				lines = map[int]bool{}
				p.ignoreLines[pos.Filename] = lines
			}
			lines[pos.Line] = true
			lines[pos.Line+1] = true
		}
	}
}

// suppressed reports whether a finding at pos is covered by an ignore
// comment.
func (p *Package) suppressed(pos token.Position) bool {
	return p.ignoreLines[pos.Filename][pos.Line]
}

// Run executes the analyzers over the packages and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				report: func(d Diagnostic) {
					if !pkg.suppressed(d.Pos) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the repository's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		FIFODiscard, ShapeCompare, CopyLocks, HTTPTimeout,
		GoLeak, LockOrder, AtomicCounter, CtxDeadline,
	}
}
