package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// fifoImport is the package whose API the fifodiscard analyzer guards.
const fifoImport = "condor/internal/fifo"

// FIFODiscard reports calls to FIFO Pop whose result is discarded. Pop's
// second result is the end-of-stream flag: dropping it silently loses the
// close signal, and dropping the word desynchronises the stream — both are
// fabric bugs, not conveniences. Files are in scope when they import
// condor/internal/fifo (or are the fifo package itself).
var FIFODiscard = &Analyzer{
	Name: "fifodiscard",
	Doc:  "report FIFO Pop results that are discarded (losing the end-of-stream flag)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if !Imports(f, fifoImport) && f.Name.Name != "fifo" {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if isPopCall(n.X) {
						p.Reportf(n.Pos(), "result of Pop is discarded: the word and the end-of-stream flag are both lost")
					}
				case *ast.AssignStmt:
					if len(n.Rhs) == 1 && isPopCall(n.Rhs[0]) && allBlank(n.Lhs) {
						p.Reportf(n.Pos(), "result of Pop is assigned to blanks only: check the end-of-stream flag or use Drain")
					}
				}
				return true
			})
		}
	},
}

// isPopCall matches a zero-argument method call named Pop.
func isPopCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Pop"
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// ShapeCompare reports hand-rolled comparisons of tensor shapes —
// reflect.DeepEqual over Shape() results, comparing Sprint-formatted shapes,
// or direct ==/!= on Shape() calls — all of which either allocate, lie about
// nil-vs-empty, or fail to compile later. tensor.ShapeEq (for []int dims)
// and tensor.SameShape (for tensors) are the supported comparisons.
var ShapeCompare = &Analyzer{
	Name: "shapecompare",
	Doc:  "report hand-rolled tensor shape comparisons; use tensor.ShapeEq / tensor.SameShape",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			reflectName := ImporterName(f, "reflect")
			fmtName := ImporterName(f, "fmt")
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if reflectName != "" && isPkgCall(n, reflectName, "DeepEqual") && anyShapeCall(n.Args) {
						p.Reportf(n.Pos(), "reflect.DeepEqual over Shape() results: use tensor.ShapeEq")
					}
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if isShapeCall(n.X) || isShapeCall(n.Y) {
						p.Reportf(n.Pos(), "Shape() results compared with %s: use tensor.ShapeEq", n.Op)
					} else if fmtName != "" && (isSprintOfShape(n.X, fmtName) || isSprintOfShape(n.Y, fmtName)) {
						p.Reportf(n.Pos(), "shapes compared through fmt.Sprint: use tensor.ShapeEq")
					}
				}
				return true
			})
		}
	},
}

// isShapeCall matches a zero-argument method call named Shape.
func isShapeCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Shape"
}

func anyShapeCall(args []ast.Expr) bool {
	for _, a := range args {
		if isShapeCall(a) {
			return true
		}
	}
	return false
}

// isPkgCall matches pkg.Fn(...) for a package bound to local name pkgName.
func isPkgCall(call *ast.CallExpr, pkgName, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkgName
}

// isSprintOfShape matches fmt.Sprint/Sprintf calls whose arguments include a
// Shape() call.
func isSprintOfShape(e ast.Expr, fmtName string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if !isPkgCall(call, fmtName, "Sprint") && !isPkgCall(call, fmtName, "Sprintf") {
		return false
	}
	return anyShapeCall(call.Args)
}

// lockBearers lists the stdlib types whose values must never be copied once
// used; fifo.FIFO joins them because it embeds sync.Once and atomic
// counters.
var lockBearers = map[string]map[string]bool{
	"sync":   {"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true, "Cond": true, "Map": true},
	"atomic": {"Bool": true, "Int32": true, "Int64": true, "Uint32": true, "Uint64": true, "Uintptr": true, "Pointer": true, "Value": true},
	"fifo":   {"FIFO": true},
}

// CopyLocks reports function signatures that copy lock-bearing values: value
// receivers and by-value parameters of package-local struct types that
// (transitively) contain a sync/atomic primitive or a fifo.FIFO, and
// parameters typed as those primitives directly. Copying such a value forks
// its internal state — the copy's mutex guards nothing. This is the
// AST-level complement of go vet's type-aware copylocks pass.
var CopyLocks = &Analyzer{
	Name: "copylocks",
	Doc:  "report lock-bearing values passed or received by value",
	Run: func(p *Pass) {
		locky := lockTypeNames(p.Files)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn.Recv != nil {
					for _, field := range fn.Recv.List {
						if name, bad := lockByValue(field.Type, locky); bad {
							p.Reportf(field.Pos(), "method %s has a value receiver of lock-bearing type %s; use *%s", fn.Name.Name, name, name)
						}
					}
				}
				if fn.Type.Params != nil {
					for _, field := range fn.Type.Params.List {
						if name, bad := lockByValue(field.Type, locky); bad {
							p.Reportf(field.Pos(), "parameter of function %s copies lock-bearing type %s; pass *%s", fn.Name.Name, name, name)
						}
					}
				}
			}
		}
	},
}

// lockTypeNames computes the package-local struct type names that contain a
// lock-bearing field, transitively (a struct embedding such a struct is
// itself lock-bearing).
func lockTypeNames(files []*ast.File) map[string]bool {
	// fields[T] lists the package-local type names T's fields reference.
	fields := map[string][]string{}
	locky := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					t := field.Type
					if sel, ok := t.(*ast.SelectorExpr); ok {
						if id, ok := sel.X.(*ast.Ident); ok && lockBearers[id.Name][sel.Sel.Name] {
							locky[ts.Name.Name] = true
						}
					}
					if id, ok := t.(*ast.Ident); ok {
						fields[ts.Name.Name] = append(fields[ts.Name.Name], id.Name)
					}
				}
			}
		}
	}
	// Fixpoint: propagate lockiness through package-local field types.
	for changed := true; changed; {
		changed = false
		for name, refs := range fields {
			if locky[name] {
				continue
			}
			for _, ref := range refs {
				if locky[ref] {
					locky[name] = true
					changed = true
					break
				}
			}
		}
	}
	return locky
}

// lockByValue reports whether t is a by-value use of a lock-bearing type,
// returning the display name.
func lockByValue(t ast.Expr, locky map[string]bool) (string, bool) {
	switch t := t.(type) {
	case *ast.Ident:
		if locky[t.Name] {
			return t.Name, true
		}
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok && lockBearers[id.Name][t.Sel.Name] {
			return id.Name + "." + t.Sel.Name, true
		}
	}
	return "", false
}

// HTTPTimeout reports http.Client values constructed without an explicit
// Timeout. Every cloud call in the AWS backend rides such a client; one with
// no deadline turns a hung endpoint into a hung deployment. The analyzer
// flags composite literals missing the Timeout field and new(http.Client).
var HTTPTimeout = &Analyzer{
	Name: "httptimeout",
	Doc:  "report http.Client values constructed without a Timeout",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			httpName := ImporterName(f, "net/http")
			if httpName == "" {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					sel, ok := n.Type.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Client" {
						return true
					}
					if id, ok := sel.X.(*ast.Ident); !ok || id.Name != httpName {
						return true
					}
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
								return true
							}
						}
					}
					p.Reportf(n.Pos(), "http.Client constructed without a Timeout: cloud calls must bound their latency")
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
						if sel, ok := n.Args[0].(*ast.SelectorExpr); ok && sel.Sel.Name == "Client" {
							if x, ok := sel.X.(*ast.Ident); ok && x.Name == httpName {
								p.Reportf(n.Pos(), "new(http.Client) has no Timeout: cloud calls must bound their latency")
							}
						}
					}
				}
				return true
			})
		}
	},
}

// DocSummary returns "name: doc" lines for -list output.
func DocSummary(analyzers []*Analyzer) string {
	var b strings.Builder
	for _, a := range analyzers {
		b.WriteString(a.Name + ": " + a.Doc + "\n")
	}
	return b.String()
}
