package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wantFindings parses the "// want: <analyzer>" markers out of a fixture
// file, returning line -> analyzer name.
func wantFindings(t *testing.T, path string) map[int]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := map[int]string{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.Index(text, "// want: "); i >= 0 {
			want[line] = strings.TrimSpace(text[i+len("// want: "):])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// testFixture checks every analyzer against one fixture package: each marked
// line fires exactly its analyzer, and nothing else fires.
func testFixture(t *testing.T, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := Load(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags := Run(pkgs, All())

	want := wantFindings(t, filepath.Join(dir, name+".go"))
	got := map[int]string{}
	for _, d := range diags {
		if prev, dup := got[d.Pos.Line]; dup {
			t.Errorf("line %d reported by both %s and %s", d.Pos.Line, prev, d.Analyzer)
		}
		got[d.Pos.Line] = d.Analyzer
	}
	for line, analyzer := range want {
		if got[line] != analyzer {
			t.Errorf("line %d: want a %s finding, got %q", line, analyzer, got[line])
		}
	}
	for line, analyzer := range got {
		if want[line] == "" {
			t.Errorf("line %d: unexpected %s finding", line, analyzer)
		}
	}
}

// TestAnalyzersOnFixture covers the original invariants suite.
func TestAnalyzersOnFixture(t *testing.T) { testFixture(t, "broken") }

// TestConcurrencyAnalyzersOnFixture covers the concurrency suite: goroutine
// leaks, lock-order cycles, mixed atomic access, and dropped deadlines.
func TestConcurrencyAnalyzersOnFixture(t *testing.T) { testFixture(t, "concurrency") }

// TestIgnoreComment checks the //condorlint:ignore suppression: the fixture
// contains a bare Pop() on an ignore-commented line that must not be
// reported (covered by TestAnalyzersOnFixture's unexpected-finding check,
// asserted explicitly here).
func TestIgnoreComment(t *testing.T) {
	dir := filepath.Join("testdata", "src", "broken")
	pkgs, err := Load(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, []*Analyzer{FIFODiscard}) {
		if strings.Contains(readLine(t, filepath.Join(dir, "broken.go"), d.Pos.Line), "condorlint:ignore") {
			t.Errorf("suppressed line %d still reported: %s", d.Pos.Line, d)
		}
	}
}

func readLine(t *testing.T, path string, n int) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

// TestRepositoryIsLintClean runs the full analyzer suite over the repository
// tree — the satellite guarantee that the tree stays condorlint-clean.
func TestRepositoryIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from the repository root, expected the full tree", len(pkgs))
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLoadSkipsTestdata ensures fixture code cannot leak into a whole-tree
// run (which would make CI fail on the deliberately broken files).
func TestLoadSkipsTestdata(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("package %s from a testdata directory was loaded", p.Path)
		}
	}
}

// TestDocSummary pins the -list output contract: every analyzer appears.
func TestDocSummary(t *testing.T) {
	s := DocSummary(All())
	for _, a := range All() {
		if !strings.Contains(s, a.Name+": ") {
			t.Errorf("summary missing analyzer %s:\n%s", a.Name, s)
		}
	}
}

// TestPatternLoading exercises the non-recursive single-directory pattern.
func TestPatternLoading(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "internal/fifo")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != filepath.Join("internal", "fifo") {
		t.Fatalf("pkgs = %v", pkgNames(pkgs))
	}
}

func pkgNames(pkgs []*Package) []string {
	var names []string
	for _, p := range pkgs {
		names = append(names, p.Path)
	}
	return names
}

func ExampleDiagnostic() {
	d := Diagnostic{Analyzer: "fifodiscard", Message: "result of Pop is discarded"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "fabric.go", 42, 2
	fmt.Println(d)
	// Output: fabric.go:42:2: result of Pop is discarded [fifodiscard]
}
