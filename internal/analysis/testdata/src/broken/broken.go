// Package broken is a deliberately defective fixture for the condorlint
// analyzers. It only needs to parse, not compile; each marked line must be
// reported by exactly the analyzer named in the trailing comment.
package broken

import (
	"fmt"
	"net/http"
	"reflect"
	"sync"

	"condor/internal/fifo"
)

type tensorLike struct{ dims []int }

func (t *tensorLike) Shape() []int { return t.dims }

// guarded carries a mutex; copying it by value forks the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

// wrapsGuarded is lock-bearing transitively.
type wrapsGuarded struct {
	g guarded
}

func discards(f *fifo.FIFO) {
	f.Pop()          // want: fifodiscard
	_, _ = f.Pop()   // want: fifodiscard
	v, ok := f.Pop() // ok: both results consumed
	_ = v
	_ = ok
	f.Pop() //condorlint:ignore deliberate drop under test — suppressed
}

func compares(a, b *tensorLike) bool {
	if reflect.DeepEqual(a.Shape(), b.Shape()) { // want: shapecompare
		return true
	}
	if fmt.Sprint(a.Shape()) == fmt.Sprint(b.Shape()) { // want: shapecompare
		return true
	}
	return reflect.DeepEqual(a.dims, b.dims) // ok: not Shape() calls
}

func (g guarded) byValueMethod() int { return g.n } // want: copylocks

func (g *guarded) byPointerMethod() int { return g.n } // ok

func takesGuarded(g guarded) int { return g.n } // want: copylocks

func takesWrapped(w wrapsGuarded) int { return w.g.n } // want: copylocks

func takesMutex(mu sync.Mutex) { _ = mu } // want: copylocks

func takesFIFO(f fifo.FIFO) { _ = f } // want: copylocks

func takesPointers(g *guarded, mu *sync.Mutex, f *fifo.FIFO) {} // ok

func clients() {
	_ = &http.Client{}                  // want: httptimeout
	_ = new(http.Client)                // want: httptimeout
	_ = &http.Client{Timeout: 1e9}      // ok
	_ = http.Client{Transport: nil}     // want: httptimeout
	c := http.Client{Timeout: 0}        // ok: explicit, if dubious
	_ = c
}
