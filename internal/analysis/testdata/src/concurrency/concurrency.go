// Package concurrency is a deliberately defective fixture for the
// condorlint concurrency analyzers (goleak, lockorder, atomiccounter,
// ctxdeadline). It only needs to parse, not compile; each marked line must
// be reported by exactly the analyzer named in the trailing comment.
package concurrency

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ---- goleak ----

var done = make(chan struct{})
var results = make(chan int)

func work() {}

func leaksLiteral() {
	go func() { work() }() // want: goleak
}

func leaksNamed() {
	go work() // want: goleak
}

func joinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func joinedByNamedCall(wg *sync.WaitGroup) {
	wg.Add(1)
	go work() // ok: Add in the launcher, the callee owns the Done
}

func signalsOnChannel() {
	go func() { results <- 1 }() // ok: completion observable on the channel
}

func signalsByClose() {
	go func() { close(done) }() // ok: close is the downstream join signal
}

// ---- lockorder ----

type res struct {
	mu sync.Mutex
	n  int
}

var a, b, c, d res

func abOrder() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want: lockorder
	defer b.mu.Unlock()
	a.n++
}

func baOrder() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want: lockorder
	defer a.mu.Unlock()
	b.n++
}

func lockC() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func cThenD() {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock() // want: lockorder
	defer d.mu.Unlock()
}

func dThenC() {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockC() // want: lockorder
}

func acyclicNesting() {
	a.mu.Lock()
	defer a.mu.Unlock()
	c.mu.Lock() // ok: a -> c participates in no cycle
	defer c.mu.Unlock()
}

func sequentialNotNested() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock() // ok: a was released before b was taken
	b.n++
	b.mu.Unlock()
}

// ---- atomiccounter ----

type counter struct {
	hits  int64
	flips atomic.Bool
}

func (x *counter) bump() {
	atomic.AddInt64(&x.hits, 1) // ok: the atomic access defines the discipline
}

func (x *counter) races() {
	x.hits++ // want: atomiccounter
}

func (x *counter) stores(v int64) {
	x.hits = v // want: atomiccounter
}

func (x *counter) reads() bool {
	return x.hits > 0 // want: atomiccounter
}

func (x *counter) overwrite(o *counter) {
	x.flips = o.flips // want: atomiccounter
}

func (x *counter) loads() int64 {
	return atomic.LoadInt64(&x.hits) // ok
}

// ---- ctxdeadline ----

func fetch(ctx context.Context, url string) error {
	sub := context.Background() // want: ctxdeadline
	_ = sub
	time.Sleep(10 * time.Millisecond)            // want: ctxdeadline
	req, err := http.NewRequest("GET", url, nil) // want: ctxdeadline
	if err != nil {
		return err
	}
	_ = req
	_ = ctx
	return nil
}

func fetchWithDeadline(ctx context.Context, url string) error {
	sub, cancel := context.WithTimeout(ctx, time.Second) // ok: derives from inbound
	defer cancel()
	req, err := http.NewRequestWithContext(sub, "GET", url, nil) // ok
	if err != nil {
		return err
	}
	_ = req
	return nil
}

func offline(url string) {
	time.Sleep(time.Millisecond) // ok: no inbound deadline to honor
	_ = context.TODO()           // ok: this function is not on a request path
	_ = url
}
