// Package quant implements fixed-point quantization for Condor
// accelerators, the bandwidth/resource optimisation the paper's related
// work (Qiu et al., FPGA'16) applies: weights (and optionally activations)
// are quantized to 16- or 8-bit fixed point with per-tensor scaling,
// shrinking the datamover traffic, the on-chip weight buffers and the MAC
// datapath, with a measurable and typically negligible accuracy impact.
package quant

import (
	"fmt"
	"math"

	"condor/internal/condorir"
	"condor/internal/nn"
	"condor/internal/tensor"
)

// Precision selects the fabric numeric format.
type Precision int

const (
	Float32 Precision = iota
	Int16
	Int8
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case Float32:
		return "float32"
	case Int16:
		return "int16"
	case Int8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Bits returns the word width.
func (p Precision) Bits() int {
	switch p {
	case Int16:
		return 16
	case Int8:
		return 8
	default:
		return 32
	}
}

// WordBytes returns the stream word size in bytes.
func (p Precision) WordBytes() int { return p.Bits() / 8 }

// levels returns the positive quantization range (2^(bits-1) − 1).
func (p Precision) levels() float64 {
	return float64(int64(1)<<(p.Bits()-1)) - 1
}

// EntryReport describes the quantization of one weight entry.
type EntryReport struct {
	Layer    string
	Kind     condorir.EntryKind
	Scale    float64 // dequantization step
	MaxError float64 // max |original − dequantized|
}

// Report summarises a weight-set quantization.
type Report struct {
	Precision Precision
	Entries   []EntryReport

	// MaxError is the largest per-value quantization error across entries.
	MaxError float64
	// BytesBefore/BytesAfter are the serialized weight payload sizes.
	BytesBefore int64
	BytesAfter  int64
}

// QuantizeValue rounds v to the fixed-point grid with the given scale. The
// grid is symmetric (±levels): clamping the negative side to −levels rather
// than the two's-complement −levels−1 keeps the code domain the exact mirror
// of the scale calibration, so quantize→dequantize never overshoots maxAbs
// and the int8 fabric's requantization points stay sign-symmetric.
func quantizeValue(v float32, scale float64, levels float64) float32 {
	if scale == 0 {
		return 0
	}
	q := math.Round(float64(v) / scale)
	if q > levels {
		q = levels
	}
	if q < -levels {
		q = -levels
	}
	return float32(q * scale)
}

// tensorScale computes the per-tensor scale: maxAbs / levels (symmetric
// linear quantization). A zero-range tensor (all zeros) gets scale 0, which
// quantizeValue/QuantizeInto treat as "emit zeros" — the zero-range guard.
func tensorScale(data []float32, levels float64) float64 {
	var maxAbs float64
	for _, v := range data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	return maxAbs / levels
}

// TensorScale computes the symmetric max-abs per-tensor scale for the given
// precision: maxAbs/levels, or 0 for a zero-range tensor. The fabric's int8
// feeder and PEs use it to calibrate per-image activation scales.
func TensorScale(data []float32, p Precision) float64 {
	return tensorScale(data, p.levels())
}

// QuantizeInto quantizes src onto the symmetric int8 grid with the given
// scale, writing codes into dst (which must be at least len(src) long). A
// zero scale (zero-range tensor) emits all-zero codes. It allocates nothing,
// for the feeder/requantize hot path.
func QuantizeInto(dst []int8, src []float32, scale float64) {
	_ = dst[:len(src)]
	if scale == 0 {
		for i := range src {
			dst[i] = 0
		}
		return
	}
	inv := 1 / scale
	for i, v := range src {
		// Clamp in the float domain first (a float→int conversion out of
		// int range is implementation-dependent in Go), then round half away
		// from zero via the copysign trick — identical to math.Round on the
		// remaining range but cheap enough for the per-frame hot path, where
		// Round's branchy bit manipulation shows up in profiles.
		f := float64(v) * inv
		switch {
		case f > 126.5:
			dst[i] = 127
		case f < -126.5:
			dst[i] = -127
		default:
			dst[i] = int8(int32(f + math.Copysign(0.5, f)))
		}
	}
}

// DequantizeInto converts int8 codes back to float32 with the given scale,
// writing into dst (at least len(src) long). The collector and the PE
// boundary dequantization use it; it allocates nothing.
func DequantizeInto(dst []float32, src []int8, scale float64) {
	_ = dst[:len(src)]
	for i, q := range src {
		dst[i] = float32(float64(q) * scale)
	}
}

// QuantizeWeights produces a weight set whose values lie on the fixed-point
// grid of the chosen precision (stored dequantized, so the functional
// fabric runs unmodified), together with a quantization report.
func QuantizeWeights(ws *condorir.WeightSet, p Precision) (*condorir.WeightSet, *Report, error) {
	if p == Float32 {
		return nil, nil, fmt.Errorf("quant: float32 needs no quantization")
	}
	levels := p.levels()
	out := condorir.NewWeightSet()
	rep := &Report{Precision: p}
	for _, e := range ws.Entries() {
		scale := tensorScale(e.Data, levels)
		qdata := make([]float32, len(e.Data))
		var maxErr float64
		for i, v := range e.Data {
			qdata[i] = quantizeValue(v, scale, levels)
			if err := math.Abs(float64(v - qdata[i])); err > maxErr {
				maxErr = err
			}
		}
		out.PutRaw(e.Layer, e.Kind, append([]int(nil), e.Dims...), qdata)
		rep.Entries = append(rep.Entries, EntryReport{
			Layer: e.Layer, Kind: e.Kind, Scale: scale, MaxError: maxErr,
		})
		if maxErr > rep.MaxError {
			rep.MaxError = maxErr
		}
		rep.BytesBefore += int64(4 * len(e.Data))
		rep.BytesAfter += int64(p.WordBytes() * len(e.Data))
	}
	return out, rep, nil
}

// Drift summarises the output deviation between a float and a quantized
// network over a sample batch.
type Drift struct {
	Images        int
	MaxAbsDiff    float64
	Top1Agreement float64 // fraction of images whose argmax is unchanged
}

// EvaluateDrift runs both networks on the images and compares outputs — the
// accuracy-impact check that justifies quantization ("negligible impact on
// the resulting accuracy", as the related work reports).
func EvaluateDrift(ref, quantized *nn.Network, images []*tensor.Tensor) (Drift, error) {
	d := Drift{Images: len(images)}
	if len(images) == 0 {
		return d, fmt.Errorf("quant: no sample images")
	}
	agree := 0
	for _, img := range images {
		a, err := ref.Predict(img)
		if err != nil {
			return d, err
		}
		b, err := quantized.Predict(img)
		if err != nil {
			return d, err
		}
		if diff := tensor.MaxAbsDiff(a, b); diff > d.MaxAbsDiff {
			d.MaxAbsDiff = diff
		}
		if a.ArgMax() == b.ArgMax() {
			agree++
		}
	}
	d.Top1Agreement = float64(agree) / float64(len(images))
	return d, nil
}

// QuantizeActivations applies activation quantization to a tensor in place
// (per-tensor symmetric scaling), modelling the fabric's inter-layer word
// width. Exposed for activation-quantization studies.
func QuantizeActivations(t *tensor.Tensor, p Precision) {
	levels := p.levels()
	scale := tensorScale(t.Data(), levels)
	data := t.Data()
	for i, v := range data {
		data[i] = quantizeValue(v, scale, levels)
	}
}
