package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/tensor"
)

func TestQuantizeWeightsInt16(t *testing.T) {
	_, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	q, rep, err := QuantizeWeights(ws, Int16)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != ws.Len() {
		t.Fatalf("entry count %d vs %d", q.Len(), ws.Len())
	}
	if rep.Precision != Int16 || len(rep.Entries) != ws.Len() {
		t.Fatalf("report %+v", rep)
	}
	// 16-bit symmetric quantization of values in [-0.2, 0.2]: max error is
	// about scale/2 ≈ 0.2/32767/2 — tiny.
	if rep.MaxError > 1e-4 {
		t.Fatalf("int16 max error %v too large", rep.MaxError)
	}
	if rep.BytesAfter*2 != rep.BytesBefore {
		t.Fatalf("int16 should halve the payload: %d -> %d", rep.BytesBefore, rep.BytesAfter)
	}
}

func TestQuantizeWeightsInt8CoarserThanInt16(t *testing.T) {
	_, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	_, rep16, err := QuantizeWeights(ws, Int16)
	if err != nil {
		t.Fatal(err)
	}
	_, rep8, err := QuantizeWeights(ws, Int8)
	if err != nil {
		t.Fatal(err)
	}
	if rep8.MaxError <= rep16.MaxError {
		t.Fatalf("int8 error %v should exceed int16 error %v", rep8.MaxError, rep16.MaxError)
	}
	if rep8.BytesAfter*4 != rep8.BytesBefore {
		t.Fatalf("int8 should quarter the payload: %d -> %d", rep8.BytesBefore, rep8.BytesAfter)
	}
}

func TestQuantizeFloat32Rejected(t *testing.T) {
	ws := condorir.NewWeightSet()
	if _, _, err := QuantizeWeights(ws, Float32); err == nil {
		t.Fatal("float32 quantization should be rejected")
	}
}

func TestQuantizedNetworkDriftNegligible(t *testing.T) {
	ir, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ir.BuildNN(ws)
	if err != nil {
		t.Fatal(err)
	}
	q16, _, err := QuantizeWeights(ws, Int16)
	if err != nil {
		t.Fatal(err)
	}
	net16, err := ir.BuildNN(q16)
	if err != nil {
		t.Fatal(err)
	}
	imgs := models.MNISTImages(12, 4)
	d, err := EvaluateDrift(ref, net16, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Top1Agreement < 1 {
		t.Fatalf("int16 weight quantization changed predictions: %+v", d)
	}
	if d.MaxAbsDiff > 1e-2 {
		t.Fatalf("int16 drift %v too large", d.MaxAbsDiff)
	}
	// Int8 drifts more but should still broadly agree (the related work's
	// "negligible accuracy impact" claim).
	q8, _, err := QuantizeWeights(ws, Int8)
	if err != nil {
		t.Fatal(err)
	}
	net8, err := ir.BuildNN(q8)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := EvaluateDrift(ref, net8, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if d8.MaxAbsDiff <= d.MaxAbsDiff {
		t.Fatalf("int8 drift %v should exceed int16 drift %v", d8.MaxAbsDiff, d.MaxAbsDiff)
	}
	if d8.Top1Agreement < 0.75 {
		t.Fatalf("int8 agreement %v implausibly low", d8.Top1Agreement)
	}
}

func TestEvaluateDriftNoImages(t *testing.T) {
	if _, err := EvaluateDrift(nil, nil, nil); err == nil {
		t.Fatal("expected no-images error")
	}
}

func TestQuantizeActivations(t *testing.T) {
	tt := tensor.FromSlice([]float32{0.5, -1, 0.25, 0}, 4)
	QuantizeActivations(tt, Int8)
	// Values must lie on the grid scale = 1/127.
	scale := 1.0 / 127
	for _, v := range tt.Data() {
		q := float64(v) / scale
		if math.Abs(q-math.Round(q)) > 1e-4 {
			t.Fatalf("value %v not on the int8 grid", v)
		}
	}
}

func TestPrecisionProperties(t *testing.T) {
	if Float32.Bits() != 32 || Int16.Bits() != 16 || Int8.Bits() != 8 {
		t.Fatal("bit widths wrong")
	}
	if Int16.WordBytes() != 2 || Int8.WordBytes() != 1 {
		t.Fatal("word bytes wrong")
	}
	if Float32.String() != "float32" || Int8.String() != "int8" {
		t.Fatal("names wrong")
	}
}

// Property: quantization is idempotent — re-quantizing an already quantized
// tensor at the same precision changes nothing.
func TestQuantizationIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := condorir.NewWeightSet()
		tt := tensor.New(32)
		tt.FillRandom(rng, 2)
		ws.Put("l", condorir.EntryWeights, tt)
		q1, _, err := QuantizeWeights(ws, Int16)
		if err != nil {
			return false
		}
		q2, rep2, err := QuantizeWeights(q1, Int16)
		if err != nil {
			return false
		}
		if rep2.MaxError > 1e-6 {
			return false
		}
		a, _ := q1.Get("l", condorir.EntryWeights)
		b, _ := q2.Get("l", condorir.EntryWeights)
		for i := range a.Data {
			if math.Abs(float64(a.Data[i]-b.Data[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization error is bounded by half the scale step.
func TestQuantizationErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := condorir.NewWeightSet()
		tt := tensor.New(64)
		tt.FillRandom(rng, 3)
		ws.Put("l", condorir.EntryWeights, tt)
		_, rep, err := QuantizeWeights(ws, Int8)
		if err != nil {
			return false
		}
		for _, e := range rep.Entries {
			if e.MaxError > e.Scale/2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The exported slice variants back the packed fabric's hot path: quantize
// and dequantize must round-trip within scale/2, clamp symmetrically at
// ±127 (never the two's-complement −128, which would overshoot the scale
// calibration), and treat a zero-range tensor as all-zero codes.
func TestQuantizeIntoRoundTrip(t *testing.T) {
	src := []float32{0.5, -1, 0.25, 0, 1, -0.999, 1e-9}
	scale := TensorScale(src, Int8)
	if want := 1.0 / 127; math.Abs(scale-want) > 1e-12 {
		t.Fatalf("scale %v, want %v", scale, want)
	}
	codes := make([]int8, len(src))
	QuantizeInto(codes, src, scale)
	back := make([]float32, len(src))
	DequantizeInto(back, codes, scale)
	for i := range src {
		if err := math.Abs(float64(src[i] - back[i])); err > scale/2+1e-9 {
			t.Errorf("value %v: round-trip error %v exceeds scale/2", src[i], err)
		}
	}
}

func TestQuantizeIntoSymmetricClamp(t *testing.T) {
	// With a scale calibrated on 1.0, out-of-range values clamp to ±127 —
	// the negative extreme must not reach −128.
	scale := TensorScale([]float32{1}, Int8)
	codes := make([]int8, 4)
	QuantizeInto(codes, []float32{5, -5, 1, -1}, scale)
	if codes[0] != 127 || codes[1] != -127 {
		t.Fatalf("clamp codes %v, want ±127", codes[:2])
	}
	if codes[2] != 127 || codes[3] != -127 {
		t.Fatalf("extremes %v, want ±127", codes[2:])
	}
}

func TestQuantizeIntoZeroRangeGuard(t *testing.T) {
	if s := TensorScale([]float32{0, 0, 0}, Int8); s != 0 {
		t.Fatalf("zero-range scale %v, want 0", s)
	}
	codes := []int8{9, 9, 9}
	QuantizeInto(codes, []float32{0, 0, 0}, 0)
	for _, c := range codes {
		if c != 0 {
			t.Fatalf("zero-scale codes %v, want all zero", codes)
		}
	}
}

// Property: for any non-degenerate tensor, every quantized code stays inside
// the symmetric ±127 domain and dequantization never overshoots maxAbs.
func TestQuantizeIntoDomainProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := make([]float32, 48)
		var maxAbs float64
		for i := range src {
			src[i] = float32(rng.NormFloat64())
			if a := math.Abs(float64(src[i])); a > maxAbs {
				maxAbs = a
			}
		}
		scale := TensorScale(src, Int8)
		codes := make([]int8, len(src))
		QuantizeInto(codes, src, scale)
		back := make([]float32, len(src))
		DequantizeInto(back, codes, scale)
		for i, c := range codes {
			if c < -127 || c > 127 {
				return false
			}
			if math.Abs(float64(back[i])) > maxAbs+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
