package baseline

import (
	"testing"

	"condor/internal/models"
)

func TestEvaluateLeNet(t *testing.T) {
	ir, _, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(ir, Config{Rows: 16, Cols: 16, FreqMHz: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CyclesPerImage <= 0 || rep.GFLOPS <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Efficiency <= 0 || rep.Efficiency > 1 {
		t.Fatalf("efficiency = %v", rep.Efficiency)
	}
	// FC layers run as GEMV: their efficiency is at most 1/Cols.
	var ip1 *LayerReport
	for i := range rep.Layers {
		if rep.Layers[i].Name == "ip1" {
			ip1 = &rep.Layers[i]
		}
	}
	if ip1 == nil {
		t.Fatal("ip1 missing")
	}
	if ip1.N != 1 || ip1.Efficiency > 1.0/16+1e-9 {
		t.Fatalf("GEMV efficiency %v should be capped by 1/Cols", ip1.Efficiency)
	}
}

func TestEfficiencyImprovesOnLargeLayers(t *testing.T) {
	// VGG's big conv layers fill the array; LeNet's small ones do not.
	cfg := Config{Rows: 32, Cols: 32, FreqMHz: 200}
	lenet, _, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	small, err := Evaluate(lenet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Evaluate(models.VGG16Features(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if big.Efficiency <= small.Efficiency {
		t.Fatalf("VGG efficiency %v should exceed LeNet %v", big.Efficiency, small.Efficiency)
	}
}

func TestIm2ColTrafficExceedsDataflow(t *testing.T) {
	// The blocked GEMM re-reads the im2col-expanded operand; on LeNet the
	// baseline traffic must exceed the dataflow fabric's per-image traffic
	// (which streams each input element once through the reuse buffers).
	ir, _, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(ir, Config{Rows: 16, Cols: 16, FreqMHz: 200})
	if err != nil {
		t.Fatal(err)
	}
	// LeNet input is 784 words; conv1's im2col alone is 25x the conv input.
	if rep.DDRBytes < 4*10*784 {
		t.Fatalf("baseline traffic %d implausibly low", rep.DDRBytes)
	}
}

func TestEvaluateInvalidConfig(t *testing.T) {
	ir, _, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(ir, Config{}); err == nil {
		t.Fatal("expected config error")
	}
}

func TestBiggerArrayNeverSlower(t *testing.T) {
	ir := models.VGG16Features()
	small, err := Evaluate(ir, Config{Rows: 8, Cols: 8, FreqMHz: 200})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Evaluate(ir, Config{Rows: 32, Cols: 32, FreqMHz: 200})
	if err != nil {
		t.Fatal(err)
	}
	if big.CyclesPerImage > small.CyclesPerImage {
		t.Fatalf("bigger array slower: %d vs %d", big.CyclesPerImage, small.CyclesPerImage)
	}
}
