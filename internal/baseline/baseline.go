// Package baseline models the GEMM/systolic-array accelerator class the
// paper compares its dataflow architecture against (Caffeine — Zhang et
// al., ICCAD'16; Suda et al., FPGA'16; Wei et al., DAC'17): every layer is
// lowered to a matrix multiplication (conv via im2col, FC as GEMV) and
// executed on a single R×C processing-element array, layer after layer.
//
// The model captures the two structural effects the paper's architecture is
// designed to avoid: (a) array under-utilisation when a layer's GEMM
// dimensions do not fill the PE array (small feature maps, GEMV-shaped FC
// layers), and (b) the im2col data duplication plus the tile re-reads of
// the blocked GEMM, which the dataflow fabric's reuse buffers never pay.
package baseline

import (
	"fmt"

	"condor/internal/condorir"
	"condor/internal/nn"
)

// Config describes the systolic accelerator.
type Config struct {
	// Rows x Cols is the PE array (one MAC per PE).
	Rows, Cols int
	// FreqMHz is the array clock.
	FreqMHz float64
}

// MACs returns the array's multiply-accumulate lane count.
func (c Config) MACs() int { return c.Rows * c.Cols }

// LayerReport is the model's output for one GEMM-lowered layer.
type LayerReport struct {
	Name    string
	M, K, N int64 // GEMM dims: output channels, reduction, output positions
	Cycles  int64
	// Efficiency is useful MACs over issued MAC slots in [0,1].
	Efficiency float64
	// DDRWords is the traffic of the blocked GEMM: tile re-reads of both
	// operands (with the im2col duplication in the input operand) plus the
	// output write-back.
	DDRWords int64
}

// Report is the whole-network evaluation.
type Report struct {
	Config Config
	Layers []LayerReport

	CyclesPerImage int64
	GFLOPS         float64
	DDRBytes       int64
	// Efficiency is the work-weighted mean array efficiency.
	Efficiency float64
}

// Evaluate models one image through the network on the systolic array.
// Layers execute sequentially on the single array (the architecture has no
// inter-layer pipeline), so the throughput is one image per total cycles.
func Evaluate(ir *condorir.Network, cfg Config) (*Report, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.FreqMHz <= 0 {
		return nil, fmt.Errorf("baseline: invalid config %+v", cfg)
	}
	shapes, err := ir.Shapes()
	if err != nil {
		return nil, err
	}
	rep := &Report{Config: cfg}
	var totalMACs, usedSlots int64
	for i := range ir.Layers {
		l := &ir.Layers[i]
		kind, err := l.Kind()
		if err != nil {
			return nil, err
		}
		in := shapes[i]
		out := shapes[i+1]
		var lr LayerReport
		lr.Name = l.Name
		switch kind {
		case nn.Conv:
			lr.M = int64(out.Channels)
			lr.K = int64(in.Channels) * int64(l.KernelSize) * int64(l.KernelSize)
			lr.N = int64(out.Height) * int64(out.Width)
		case nn.FullyConnected:
			// GEMV: the array's column dimension is almost entirely idle.
			lr.M = int64(out.Channels)
			lr.K = int64(in.Volume())
			lr.N = 1
		default:
			// Pooling and pointwise layers run on a small sidecar unit at
			// one element per cycle; they are never the GEMM bottleneck.
			lr.Cycles = int64(out.Volume())
			lr.Efficiency = 1
			rep.Layers = append(rep.Layers, lr)
			rep.CyclesPerImage += lr.Cycles
			continue
		}
		tilesM := ceilDiv(lr.M, int64(cfg.Rows))
		tilesN := ceilDiv(lr.N, int64(cfg.Cols))
		// Each tile streams the K reduction through the array plus the
		// systolic fill/drain skew.
		perTile := lr.K + int64(cfg.Rows) + int64(cfg.Cols)
		lr.Cycles = tilesM * tilesN * perTile
		useful := lr.M * lr.K * lr.N
		issued := tilesM * tilesN * perTile * int64(cfg.MACs())
		lr.Efficiency = float64(useful) / float64(issued)
		// Blocked-GEMM traffic: the weight operand is re-read once per
		// column tile, the (im2col-expanded) input operand once per row
		// tile, and the output written once.
		lr.DDRWords = tilesN*lr.M*lr.K + tilesM*lr.K*lr.N + lr.M*lr.N
		totalMACs += useful
		usedSlots += issued
		rep.Layers = append(rep.Layers, lr)
		rep.CyclesPerImage += lr.Cycles
		rep.DDRBytes += 4 * lr.DDRWords
	}
	if rep.CyclesPerImage > 0 {
		seconds := float64(rep.CyclesPerImage) / (cfg.FreqMHz * 1e6)
		rep.GFLOPS = 2 * float64(totalMACs) / seconds / 1e9
	}
	if usedSlots > 0 {
		rep.Efficiency = float64(totalMACs) / float64(usedSlots)
	}
	return rep, nil
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
