// Package bitstream implements the packaging half of the Condor backend:
// the SDAccel kernel-description XML, the Xilinx Object (.xo) packaging of
// the accelerator IP, the XOCC compile step that produces the xclbin binary
// for a target device (with the placement/timing-closure model deciding the
// achieved clock), and the AFI tarball the cloud flow uploads to S3. All
// artifacts are real binary container files with integrity checks, so the
// downstream runtime and cloud services consume exactly what this layer
// produces.
package bitstream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Section is one named payload of a container file.
type Section struct {
	Name string
	Data []byte
}

// containerVersion is the format version of all Condor containers.
const containerVersion = 1

// WriteContainer serialises sections under a 4-byte magic:
//
//	magic [4]byte | version u32 | count u32 |
//	{ nameLen u16 | name | size u32 | payload | crc32 }*
func WriteContainer(magic string, sections []Section) ([]byte, error) {
	if len(magic) != 4 {
		return nil, fmt.Errorf("bitstream: magic %q must be 4 bytes", magic)
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	binary.Write(&buf, binary.LittleEndian, uint32(containerVersion)) //nolint:errcheck
	binary.Write(&buf, binary.LittleEndian, uint32(len(sections)))    //nolint:errcheck
	for _, s := range sections {
		if len(s.Name) > math.MaxUint16 {
			return nil, fmt.Errorf("bitstream: section name too long")
		}
		binary.Write(&buf, binary.LittleEndian, uint16(len(s.Name))) //nolint:errcheck
		buf.WriteString(s.Name)
		binary.Write(&buf, binary.LittleEndian, uint32(len(s.Data))) //nolint:errcheck
		buf.Write(s.Data)
		binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(s.Data)) //nolint:errcheck
	}
	return buf.Bytes(), nil
}

// ReadContainer parses and verifies a container, checking the magic and
// every section checksum.
func ReadContainer(magic string, data []byte) ([]Section, error) {
	r := bytes.NewReader(data)
	got := make([]byte, 4)
	if _, err := io.ReadFull(r, got); err != nil || string(got) != magic {
		return nil, fmt.Errorf("bitstream: bad magic %q, want %q", got, magic)
	}
	var version, count uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != containerVersion {
		return nil, fmt.Errorf("bitstream: unsupported container version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	sections := make([]Section, 0, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("bitstream: section %d: %w", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, err
		}
		var size uint32
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return nil, err
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("bitstream: section %q truncated", name)
		}
		var crc uint32
		if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("bitstream: section %q checksum mismatch (file corrupt)", name)
		}
		sections = append(sections, Section{Name: string(name), Data: payload})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("bitstream: %d trailing bytes after last section", r.Len())
	}
	return sections, nil
}

// FindSection returns the named section.
func FindSection(sections []Section, name string) ([]byte, error) {
	for _, s := range sections {
		if s.Name == name {
			return s.Data, nil
		}
	}
	return nil, fmt.Errorf("bitstream: section %q not found", name)
}
