package bitstream

import (
	"encoding/json"
	"fmt"

	"condor/internal/board"
	"condor/internal/dataflow"
	"condor/internal/hls"
)

// Metadata is the xclbin header record describing the compiled design.
type Metadata struct {
	Name         string            `json:"name"`
	Kernel       string            `json:"kernel"`
	Board        string            `json:"board"`
	Part         string            `json:"part"`
	RequestedMHz float64           `json:"requested_mhz"`
	AchievedMHz  float64           `json:"achieved_mhz"`
	Resources    board.Resources   `json:"resources"`
	Utilization  board.Utilization `json:"utilization"`
}

// Xclbin is a parsed kernel binary.
type Xclbin struct {
	Meta Metadata
	Spec *dataflow.Spec
	Host string // generated default host code
}

// XOCC compiles a .xo for the target device, running memory planning, the
// synthesis estimate and the placement/timing-closure model — the step that
// "creates custom logic based on the characteristics of the selected target
// device". It fails when the design does not fit the device, and records
// the achieved kernel clock in the xclbin metadata.
func XOCC(xoData []byte, boardID string) ([]byte, *hls.Report, error) {
	xo, err := ReadXO(xoData)
	if err != nil {
		return nil, nil, err
	}
	spec := xo.Spec
	b, err := board.Lookup(boardID)
	if err != nil {
		return nil, nil, err
	}
	if spec.Board != boardID {
		// Retarget: the same IP can be compiled for any catalogued device.
		spec.Board = boardID
	}
	if spec.FreqMHz > b.MaxClockMHz {
		return nil, nil, fmt.Errorf("bitstream: requested clock %.0f MHz exceeds platform limit %.0f MHz", spec.FreqMHz, b.MaxClockMHz)
	}
	if err := hls.PlanMemory(spec); err != nil {
		return nil, nil, err
	}
	rep, err := hls.Estimate(spec)
	if err != nil {
		return nil, nil, err
	}
	if !rep.Fits {
		return nil, nil, fmt.Errorf("bitstream: design does not fit %s (kernel %+v vs available %+v)",
			b.ID, rep.KernelTotal, b.Available())
	}

	meta := Metadata{
		Name:         spec.Name,
		Kernel:       hls.KernelName(spec),
		Board:        b.ID,
		Part:         b.Part,
		RequestedMHz: spec.FreqMHz,
		AchievedMHz:  rep.AchievedMHz,
		Resources:    rep.Total,
		Utilization:  rep.Utilization,
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, nil, err
	}
	fabric, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, err
	}
	data, err := WriteContainer(xclbinMagic, []Section{
		{Name: sectionMetadata, Data: metaJSON},
		{Name: sectionFabric, Data: fabric},
		{Name: sectionHostCode, Data: []byte(hls.GenerateHostCode(spec))},
	})
	if err != nil {
		return nil, nil, err
	}
	return data, rep, nil
}

// ReadXclbin parses and validates an xclbin container.
func ReadXclbin(data []byte) (*Xclbin, error) {
	sections, err := ReadContainer(xclbinMagic, data)
	if err != nil {
		return nil, err
	}
	metaJSON, err := FindSection(sections, sectionMetadata)
	if err != nil {
		return nil, err
	}
	out := &Xclbin{}
	if err := json.Unmarshal(metaJSON, &out.Meta); err != nil {
		return nil, fmt.Errorf("bitstream: xclbin metadata: %w", err)
	}
	fabric, err := FindSection(sections, sectionFabric)
	if err != nil {
		return nil, err
	}
	var spec dataflow.Spec
	if err := json.Unmarshal(fabric, &spec); err != nil {
		return nil, fmt.Errorf("bitstream: xclbin fabric: %w", err)
	}
	out.Spec = &spec
	if host, err := FindSection(sections, sectionHostCode); err == nil {
		out.Host = string(host)
	}
	return out, nil
}

// AFIManifest describes the design inside an AFI creation tarball.
type AFIManifest struct {
	Name        string  `json:"name"`
	Board       string  `json:"board"`
	Kernel      string  `json:"kernel"`
	AchievedMHz float64 `json:"achieved_mhz"`
	ShellVer    string  `json:"shell_version"`
}

// PackageAFITarball wraps an xclbin (plus the design-checkpoint placeholder
// and manifest) into the tarball uploaded to S3 for AFI generation. Only
// F1-targeted xclbins are accepted, matching the AWS flow.
func PackageAFITarball(xclbinData []byte) ([]byte, error) {
	x, err := ReadXclbin(xclbinData)
	if err != nil {
		return nil, err
	}
	b, err := board.Lookup(x.Meta.Board)
	if err != nil {
		return nil, err
	}
	if !b.CloudOnly {
		return nil, fmt.Errorf("bitstream: board %s is not an F1 target; AFI creation is cloud-only", b.ID)
	}
	manifest, err := json.Marshal(AFIManifest{
		Name:        x.Meta.Name,
		Board:       x.Meta.Board,
		Kernel:      x.Meta.Kernel,
		AchievedMHz: x.Meta.AchievedMHz,
		ShellVer:    "0x04261818", // the F1 shell release the flow targets
	})
	if err != nil {
		return nil, err
	}
	// The DCP section stands in for the routed design checkpoint; the AFI
	// service only validates its presence and integrity.
	dcp := []byte("condor-routed-dcp:" + x.Meta.Kernel)
	return WriteContainer(afiMagic, []Section{
		{Name: sectionManifest, Data: manifest},
		{Name: sectionXclbin, Data: xclbinData},
		{Name: sectionDCP, Data: dcp},
	})
}

// ReadAFITarball parses an AFI creation tarball, returning the manifest and
// the embedded xclbin bytes.
func ReadAFITarball(data []byte) (*AFIManifest, []byte, error) {
	sections, err := ReadContainer(afiMagic, data)
	if err != nil {
		return nil, nil, err
	}
	manifestJSON, err := FindSection(sections, sectionManifest)
	if err != nil {
		return nil, nil, err
	}
	var m AFIManifest
	if err := json.Unmarshal(manifestJSON, &m); err != nil {
		return nil, nil, fmt.Errorf("bitstream: AFI manifest: %w", err)
	}
	xclbin, err := FindSection(sections, sectionXclbin)
	if err != nil {
		return nil, nil, err
	}
	if _, err := FindSection(sections, sectionDCP); err != nil {
		return nil, nil, fmt.Errorf("bitstream: AFI tarball missing design checkpoint: %w", err)
	}
	return &m, xclbin, nil
}
