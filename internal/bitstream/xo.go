package bitstream

import (
	"encoding/json"
	"encoding/xml"
	"fmt"

	"condor/internal/dataflow"
	"condor/internal/hls"
)

// Container magics.
const (
	xoMagic     = "CXO1"
	xclbinMagic = "XCLB"
	afiMagic    = "CAFI"
)

// Section names.
const (
	sectionKernelXML = "KERNEL_XML"
	sectionFabric    = "FABRIC_SPEC"
	sectionMetadata  = "METADATA"
	sectionHostCode  = "HOST_CODE"
	sectionDCP       = "DCP"
	sectionManifest  = "MANIFEST"
	sectionXclbin    = "XCLBIN"
	peSourcePrefix   = "PE_SRC/"
)

// kernelXMLDoc mirrors the SDAccel RTL-kernel description file: name,
// vendor and the AXI interfaces the kernel exposes to the host (step 6a of
// the automation flow).
type kernelXMLDoc struct {
	XMLName xml.Name     `xml:"root"`
	Kernel  kernelXMLKrn `xml:"kernel"`
}

type kernelXMLKrn struct {
	Name     string         `xml:"name,attr"`
	Vendor   string         `xml:"vendor,attr"`
	Library  string         `xml:"library,attr"`
	Version  string         `xml:"versionMajor,attr"`
	Language string         `xml:"language,attr"`
	Ports    []kernelXMLPrt `xml:"ports>port"`
	Args     []kernelXMLArg `xml:"args>arg"`
}

type kernelXMLPrt struct {
	Name     string `xml:"name,attr"`
	Mode     string `xml:"mode,attr"`
	Range    string `xml:"range,attr"`
	DataWidt int    `xml:"dataWidth,attr"`
	PortType string `xml:"portType,attr"`
}

type kernelXMLArg struct {
	Name string `xml:"name,attr"`
	Port string `xml:"port,attr"`
	Type string `xml:"type,attr"`
	ID   int    `xml:"id,attr"`
}

// KernelXML renders the kernel-description XML for an accelerator: the AXI4
// master port to on-board memory and the AXI4-Lite control port, as the
// paper describes.
func KernelXML(spec *dataflow.Spec) (string, error) {
	doc := kernelXMLDoc{
		Kernel: kernelXMLKrn{
			Name:     hls.KernelName(spec),
			Vendor:   "necst.condor",
			Library:  "condor",
			Version:  "1",
			Language: "ip",
			Ports: []kernelXMLPrt{
				{Name: "m_axi_gmem", Mode: "master", Range: "0xFFFFFFFF", DataWidt: 512, PortType: "addressable"},
				{Name: "s_axi_control", Mode: "slave", Range: "0x1000", DataWidt: 32, PortType: "addressable"},
			},
			Args: []kernelXMLArg{
				{Name: "input", Port: "m_axi_gmem", Type: "float*", ID: 0},
				{Name: "output", Port: "m_axi_gmem", Type: "float*", ID: 1},
				{Name: "weights", Port: "m_axi_gmem", Type: "float*", ID: 2},
				{Name: "batch", Port: "s_axi_control", Type: "uint", ID: 3},
			},
		},
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return xml.Header + string(out) + "\n", nil
}

// XO is a parsed Xilinx Object file.
type XO struct {
	Spec      *dataflow.Spec
	KernelXML string
	Sources   map[string]string // generated PE sources by PE id
}

// PackageXO bundles the accelerator IP — fabric specification, generated
// HLS sources, kernel XML — into a .xo container (step 6b).
func PackageXO(spec *dataflow.Spec) ([]byte, error) {
	kxml, err := KernelXML(spec)
	if err != nil {
		return nil, err
	}
	fabric, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	sections := []Section{
		{Name: sectionKernelXML, Data: []byte(kxml)},
		{Name: sectionFabric, Data: fabric},
	}
	for _, pe := range spec.PEs {
		sections = append(sections, Section{
			Name: peSourcePrefix + pe.ID,
			Data: []byte(hls.GeneratePECode(pe)),
		})
	}
	return WriteContainer(xoMagic, sections)
}

// ReadXO parses and validates a .xo container.
func ReadXO(data []byte) (*XO, error) {
	sections, err := ReadContainer(xoMagic, data)
	if err != nil {
		return nil, err
	}
	out := &XO{Sources: make(map[string]string)}
	kx, err := FindSection(sections, sectionKernelXML)
	if err != nil {
		return nil, err
	}
	out.KernelXML = string(kx)
	fabric, err := FindSection(sections, sectionFabric)
	if err != nil {
		return nil, err
	}
	var spec dataflow.Spec
	if err := json.Unmarshal(fabric, &spec); err != nil {
		return nil, fmt.Errorf("bitstream: fabric spec: %w", err)
	}
	out.Spec = &spec
	for _, s := range sections {
		if len(s.Name) > len(peSourcePrefix) && s.Name[:len(peSourcePrefix)] == peSourcePrefix {
			out.Sources[s.Name[len(peSourcePrefix):]] = string(s.Data)
		}
	}
	if len(out.Spec.PEs) == 0 {
		return nil, fmt.Errorf("bitstream: .xo fabric has no PEs")
	}
	return out, nil
}
