package bitstream

import (
	"strings"
	"testing"
	"testing/quick"

	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/models"
	"condor/internal/tensor"
)

func tc1Spec(t *testing.T) (*dataflow.Spec, *condorir.WeightSet) {
	t.Helper()
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	return spec, ws
}

func TestContainerRoundTrip(t *testing.T) {
	sections := []Section{
		{Name: "a", Data: []byte("hello")},
		{Name: "b/c", Data: []byte{}},
		{Name: "bin", Data: []byte{0, 1, 2, 255}},
	}
	data, err := WriteContainer("TEST", sections)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadContainer("TEST", data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("section count %d", len(got))
	}
	for i := range sections {
		if got[i].Name != sections[i].Name || string(got[i].Data) != string(sections[i].Data) {
			t.Fatalf("section %d mismatch", i)
		}
	}
}

func TestContainerDetectsCorruption(t *testing.T) {
	data, err := WriteContainer("TEST", []Section{{Name: "x", Data: []byte("payload")}})
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x1 // flip a payload bit
	if _, err := ReadContainer("TEST", data); err == nil {
		t.Fatal("expected checksum error")
	}
}

func TestContainerRejectsWrongMagicAndTrailing(t *testing.T) {
	data, _ := WriteContainer("AAAA", nil)
	if _, err := ReadContainer("BBBB", data); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadContainer("AAAA", append(data, 0)); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
	if _, err := ReadContainer("AAAA", data[:3]); err == nil {
		t.Fatal("expected truncation error")
	}
}

// Property: containers with arbitrary binary sections round-trip intact.
func TestContainerProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		if len(payloads) > 20 {
			payloads = payloads[:20]
		}
		sections := make([]Section, len(payloads))
		for i, p := range payloads {
			sections[i] = Section{Name: strings.Repeat("s", i+1), Data: p}
		}
		data, err := WriteContainer("PROP", sections)
		if err != nil {
			return false
		}
		got, err := ReadContainer("PROP", data)
		if err != nil || len(got) != len(sections) {
			return false
		}
		for i := range sections {
			if got[i].Name != sections[i].Name || string(got[i].Data) != string(sections[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelXML(t *testing.T) {
	spec, _ := tc1Spec(t)
	xmlStr, err := KernelXML(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"condor_TC1", "m_axi_gmem", "s_axi_control", "<?xml"} {
		if !strings.Contains(xmlStr, want) {
			t.Fatalf("kernel XML missing %q:\n%s", want, xmlStr)
		}
	}
}

func TestXORoundTrip(t *testing.T) {
	spec, _ := tc1Spec(t)
	data, err := PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := ReadXO(data)
	if err != nil {
		t.Fatal(err)
	}
	if xo.Spec.Name != "TC1" || len(xo.Spec.PEs) != len(spec.PEs) {
		t.Fatalf("xo spec lost structure")
	}
	if len(xo.Sources) != len(spec.PEs) {
		t.Fatalf("xo has %d sources, want %d", len(xo.Sources), len(spec.PEs))
	}
	for _, pe := range spec.PEs {
		if !strings.Contains(xo.Sources[pe.ID], "void "+pe.ID) {
			t.Fatalf("source for %s missing", pe.ID)
		}
	}
}

func TestXOCCProducesLoadableXclbin(t *testing.T) {
	spec, ws := tc1Spec(t)
	xoData, err := PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	xclbinData, rep, err := XOCC(xoData, "aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fits {
		t.Fatal("TC1 must fit the F1")
	}
	x, err := ReadXclbin(xclbinData)
	if err != nil {
		t.Fatal(err)
	}
	if x.Meta.Board != "aws-f1-vu9p" || x.Meta.Kernel != "condor_TC1" {
		t.Fatalf("metadata = %+v", x.Meta)
	}
	if x.Meta.AchievedMHz < 100 || x.Meta.AchievedMHz > x.Meta.RequestedMHz {
		t.Fatalf("achieved clock %v vs requested %v", x.Meta.AchievedMHz, x.Meta.RequestedMHz)
	}
	if x.Host == "" || !strings.Contains(x.Host, "condor_init") {
		t.Fatal("xclbin missing default host code")
	}

	// The deserialised fabric must still execute correctly.
	acc, err := dataflow.Instantiate(x.Spec, ws)
	if err != nil {
		t.Fatal(err)
	}
	imgs := models.USPSImages(1, 3)
	outs, _, err := acc.Run(imgs)
	if err != nil {
		t.Fatal(err)
	}
	ir, ws2, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	net, err := ir.BuildNN(ws2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Predict(imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(outs[0], want, 2e-3) {
		t.Fatal("deserialised fabric computes wrong outputs")
	}
}

func TestXOCCRejectsOverclock(t *testing.T) {
	spec, _ := tc1Spec(t)
	spec.FreqMHz = 400
	xoData, err := PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := XOCC(xoData, "aws-f1-vu9p"); err == nil {
		t.Fatal("expected clock-limit error")
	}
}

func TestXOCCRejectsUnknownBoard(t *testing.T) {
	spec, _ := tc1Spec(t)
	xoData, err := PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := XOCC(xoData, "nope"); err == nil {
		t.Fatal("expected unknown-board error")
	}
}

func TestXOCCRetargetsBoard(t *testing.T) {
	spec, _ := tc1Spec(t)
	xoData, err := PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	xclbinData, _, err := XOCC(xoData, "zc706")
	if err != nil {
		t.Fatal(err)
	}
	x, err := ReadXclbin(xclbinData)
	if err != nil {
		t.Fatal(err)
	}
	if x.Meta.Board != "zc706" || x.Meta.Part != "xc7z045-ffg900-2" {
		t.Fatalf("retarget metadata = %+v", x.Meta)
	}
}

func TestAFITarballRoundTrip(t *testing.T) {
	spec, _ := tc1Spec(t)
	xoData, _ := PackageXO(spec)
	xclbinData, _, err := XOCC(xoData, "aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	tarball, err := PackageAFITarball(xclbinData)
	if err != nil {
		t.Fatal(err)
	}
	m, embedded, err := ReadAFITarball(tarball)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel != "condor_TC1" || m.Board != "aws-f1-vu9p" {
		t.Fatalf("manifest = %+v", m)
	}
	if string(embedded) != string(xclbinData) {
		t.Fatal("embedded xclbin altered")
	}
}

func TestAFITarballRejectsLocalBoards(t *testing.T) {
	spec, _ := tc1Spec(t)
	xoData, _ := PackageXO(spec)
	xclbinData, _, err := XOCC(xoData, "zc706")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PackageAFITarball(xclbinData); err == nil {
		t.Fatal("AFI creation must be F1-only")
	}
}

func TestReadXclbinRejectsGarbage(t *testing.T) {
	if _, err := ReadXclbin([]byte("not an xclbin")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadXOErrors(t *testing.T) {
	if _, err := ReadXO([]byte("garbage")); err == nil {
		t.Fatal("expected magic error")
	}
	// A container with the right magic but no fabric section.
	data, err := WriteContainer(xoMagic, []Section{{Name: sectionKernelXML, Data: []byte("<x/>")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadXO(data); err == nil {
		t.Fatal("expected missing-fabric error")
	}
	// Fabric present but not JSON.
	data, err = WriteContainer(xoMagic, []Section{
		{Name: sectionKernelXML, Data: []byte("<x/>")},
		{Name: sectionFabric, Data: []byte("{bad json")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadXO(data); err == nil {
		t.Fatal("expected fabric-parse error")
	}
	// Valid JSON but empty fabric.
	data, err = WriteContainer(xoMagic, []Section{
		{Name: sectionKernelXML, Data: []byte("<x/>")},
		{Name: sectionFabric, Data: []byte("{}")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadXO(data); err == nil {
		t.Fatal("expected empty-fabric error")
	}
}

func TestXOCCRejectsDesignTooLarge(t *testing.T) {
	// A heavily parallelised conv cannot fit the small ZC706.
	ir := &condorir.Network{
		Name: "huge", Board: "zc706", FrequencyMHz: 100,
		Input: condorir.InputShape{Channels: 64, Height: 64, Width: 64},
		Layers: []condorir.Layer{
			{Name: "c", Type: "Convolution", KernelSize: 7, NumOutput: 64, Bias: true, PEGroup: -1,
				Parallelism: condorir.Parallelism{In: 16, Out: 16}},
		},
	}
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := PackageXO(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := XOCC(xo, "zc706"); err == nil {
		t.Fatal("expected does-not-fit error")
	}
}

func TestReadAFITarballErrors(t *testing.T) {
	if _, _, err := ReadAFITarball([]byte("nope")); err == nil {
		t.Fatal("expected magic error")
	}
	// Tarball missing the DCP section.
	spec, _ := tc1Spec(t)
	xo, _ := PackageXO(spec)
	xclbin, _, err := XOCC(xo, "aws-f1-vu9p")
	if err != nil {
		t.Fatal(err)
	}
	manifest := []byte(`{"name":"x","board":"aws-f1-vu9p"}`)
	data, err := WriteContainer(afiMagic, []Section{
		{Name: sectionManifest, Data: manifest},
		{Name: sectionXclbin, Data: xclbin},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAFITarball(data); err == nil {
		t.Fatal("expected missing-DCP error")
	}
	// Manifest not JSON.
	data, err = WriteContainer(afiMagic, []Section{
		{Name: sectionManifest, Data: []byte("{bad")},
		{Name: sectionXclbin, Data: xclbin},
		{Name: sectionDCP, Data: []byte("dcp")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAFITarball(data); err == nil {
		t.Fatal("expected manifest-parse error")
	}
}

func TestXclbinMissingMetadata(t *testing.T) {
	data, err := WriteContainer(xclbinMagic, []Section{{Name: sectionFabric, Data: []byte("{}")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadXclbin(data); err == nil {
		t.Fatal("expected missing-metadata error")
	}
}

func TestWriteContainerBadMagic(t *testing.T) {
	if _, err := WriteContainer("TOOLONG", nil); err == nil {
		t.Fatal("expected magic-length error")
	}
}
