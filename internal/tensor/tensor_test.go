package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	if tt.Rank() != 3 || tt.Dim(0) != 2 || tt.Dim(1) != 3 || tt.Dim(2) != 4 {
		t.Fatalf("bad shape %v", tt.Shape())
	}
	for _, v := range tt.Data() {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestScalarTensor(t *testing.T) {
	s := New()
	if s.Len() != 1 {
		t.Fatalf("scalar Len = %d, want 1", s.Len())
	}
	s.Set(7)
	if s.At() != 7 {
		t.Fatalf("scalar At = %v, want 7", s.At())
	}
}

func TestAtSetRowMajor(t *testing.T) {
	tt := New(2, 3)
	tt.Set(5, 1, 2)
	if tt.Data()[1*3+2] != 5 {
		t.Fatal("Set did not write row-major offset")
	}
	if tt.At(1, 2) != 5 {
		t.Fatal("At did not read back value")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestWrongRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong index count")
		}
	}()
	New(2, 2).At(1)
}

func TestNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	tt := FromSlice(d, 2, 3)
	if tt.At(1, 0) != 4 {
		t.Fatalf("At(1,0) = %v, want 4", tt.At(1, 0))
	}
	d[0] = 9
	if tt.At(0, 0) != 9 {
		t.Fatal("FromSlice must alias, not copy")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := New(4)
	a.Fill(3)
	b := a.Clone()
	b.Set(1, 0)
	if a.At(0) != 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := New(2, 6)
	a.Set(8, 1, 1)
	b := a.Reshape(3, 4)
	if b.At(1, 3) != 8 {
		t.Fatalf("reshaped read = %v, want 8", b.At(1, 3))
	}
	b.Set(2, 0, 0)
	if a.At(0, 0) != 2 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeBadVolumePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on volume mismatch")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestChannelView(t *testing.T) {
	tt := New(2, 2, 3)
	tt.Set(5, 1, 0, 2)
	ch := tt.Channel(1)
	if got := ch.At(0, 2); got != 5 {
		t.Fatalf("channel view At(0,2) = %v, want 5", got)
	}
	ch.Set(7, 1, 1)
	if tt.At(1, 1, 1) != 7 {
		t.Fatal("Channel must be a view")
	}
}

func TestMaxAbsDiffAndAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2.5, 3}, 3)
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v, want 0.5", d)
	}
	if !AllClose(a, b, 0.5) {
		t.Fatal("AllClose(tol=0.5) should hold")
	}
	if AllClose(a, b, 0.4) {
		t.Fatal("AllClose(tol=0.4) should fail")
	}
	if AllClose(a, New(4), 1) {
		t.Fatal("AllClose must reject shape mismatch")
	}
}

func TestArgMax(t *testing.T) {
	tt := FromSlice([]float32{1, 5, 5, 2}, 4)
	if i := tt.ArgMax(); i != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", i)
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a, b := New(100), New(100)
	a.FillRandom(rand.New(rand.NewSource(42)), 1)
	b.FillRandom(rand.New(rand.NewSource(42)), 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("FillRandom not deterministic for equal seeds")
	}
	for _, v := range a.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v outside [-1,1)", v)
		}
	}
}

// Property: for any shape up to rank 4, offset arithmetic round-trips — the
// element written at a coordinate is read back at that coordinate and lives
// at the expected row-major position.
func TestRowMajorProperty(t *testing.T) {
	f := func(d1, d2, d3 uint8) bool {
		a, b, c := int(d1%5)+1, int(d2%5)+1, int(d3%5)+1
		tt := New(a, b, c)
		rng := rand.New(rand.NewSource(int64(d1)<<16 | int64(d2)<<8 | int64(d3)))
		i, j, k := rng.Intn(a), rng.Intn(b), rng.Intn(c)
		tt.Set(3.25, i, j, k)
		return tt.At(i, j, k) == 3.25 && tt.Data()[(i*b+j)*c+k] == 3.25
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVolume(t *testing.T) {
	if Volume([]int{2, 3, 4}) != 24 {
		t.Fatal("Volume wrong")
	}
	if Volume(nil) != 1 {
		t.Fatal("Volume(nil) should be 1 (scalar)")
	}
}
