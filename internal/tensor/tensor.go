// Package tensor provides the dense float32 tensor type used throughout the
// Condor framework. Tensors are stored in row-major NCHW order, matching both
// the Caffe blob layout and the streaming order of the hardware datamover.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense float32 array with an explicit shape. Data is stored in
// row-major order with the last dimension contiguous.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor with the given shape. A tensor with no
// dimensions holds a single scalar element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps an existing slice in a tensor with the given shape. The
// slice is used directly (not copied); its length must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// offset computes the linear index of a multi-dimensional coordinate.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given coordinate.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx...)] }

// Set stores v at the given coordinate.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// FillRandom fills the tensor with uniform values in [-scale, scale) drawn
// from rng. Deterministic for a fixed seed, which the synthetic models rely on.
func (t *Tensor) FillRandom(rng *rand.Rand, scale float32) {
	for i := range t.data {
		t.data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Channel returns a view of channel c of a CHW tensor (rank 3) as an HxW
// tensor sharing storage.
func (t *Tensor) Channel(c int) *Tensor {
	if len(t.shape) != 3 {
		panic("tensor: Channel requires a rank-3 (CHW) tensor")
	}
	h, w := t.shape[1], t.shape[2]
	off := c * h * w
	return &Tensor{shape: []int{h, w}, data: t.data[off : off+h*w]}
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// tensors of identical shape.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	max := 0.0
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// AllClose reports whether every pair of elements differs by at most tol,
// treating NaNs as unequal.
func AllClose(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if math.IsNaN(d) || d > tol {
			return false
		}
	}
	return true
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool { return ShapeEq(a.shape, b.shape) }

// ShapeEq reports whether two dimension lists are identical. It is the one
// supported way to compare raw shape slices (the shapecompare analyzer in
// internal/analysis rejects hand-rolled alternatives).
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Volume returns the product of the dimensions of a shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// ArgMax returns the index of the largest element of a flat tensor. Ties go
// to the lowest index. Panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best := 0
	for i, v := range t.data {
		if v > t.data[best] {
			best = i
		}
	}
	return best
}

// String renders a compact description (shape only) for debugging.
func (t *Tensor) String() string { return fmt.Sprintf("Tensor%v", t.shape) }
