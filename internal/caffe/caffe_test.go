package caffe

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"condor/internal/nn"
	"condor/internal/proto"
)

// lenetDeploy is the deploy variant of the Caffe model-zoo LeNet referenced
// by the paper (footnote 3), with Data/loss layers replaced by an input
// declaration as in lenet.prototxt's deploy form.
const lenetDeploy = `
name: "LeNet"
input: "data"
input_dim: 64
input_dim: 1
input_dim: 28
input_dim: 28
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 20 kernel_size: 5 stride: 1 }
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "conv2"
  type: "Convolution"
  bottom: "pool1"
  top: "conv2"
  convolution_param { num_output: 50 kernel_size: 5 stride: 1 }
}
layer {
  name: "pool2"
  type: "Pooling"
  bottom: "conv2"
  top: "pool2"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "ip1"
  type: "InnerProduct"
  bottom: "pool2"
  top: "ip1"
  inner_product_param { num_output: 500 }
}
layer { name: "relu1" type: "ReLU" bottom: "ip1" top: "ip1" }
layer {
  name: "ip2"
  type: "InnerProduct"
  bottom: "ip1"
  top: "ip2"
  inner_product_param { num_output: 10 }
}
layer { name: "prob" type: "Softmax" bottom: "ip2" top: "prob" }
`

func parseLeNet(t *testing.T) *Model {
	t.Helper()
	m, err := ParsePrototxt(lenetDeploy)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// attachRandomBlobs fills in weight blobs consistent with the topology so
// the model converts to a valid network.
func attachRandomBlobs(t *testing.T, m *Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	randBlob := func(shape ...int) Blob {
		n := 1
		for _, d := range shape {
			n *= d
		}
		data := make([]float32, n)
		for i := range data {
			data[i] = rng.Float32() - 0.5
		}
		return Blob{Shape: shape, Data: data}
	}
	set := func(name string, blobs ...Blob) {
		l := m.LayerByName(name)
		if l == nil {
			t.Fatalf("layer %q missing", name)
		}
		l.Blobs = blobs
	}
	set("conv1", randBlob(20, 1, 5, 5), randBlob(20))
	set("conv2", randBlob(50, 20, 5, 5), randBlob(50))
	set("ip1", randBlob(500, 800), randBlob(500))
	set("ip2", randBlob(10, 500), randBlob(10))
}

func TestParseLeNetPrototxt(t *testing.T) {
	m := parseLeNet(t)
	if m.Name != "LeNet" {
		t.Fatalf("name = %q", m.Name)
	}
	if !reflect.DeepEqual(m.Input, []int{64, 1, 28, 28}) {
		t.Fatalf("input = %v", m.Input)
	}
	if len(m.Layers) != 8 {
		t.Fatalf("got %d layers", len(m.Layers))
	}
	conv1 := m.LayerByName("conv1")
	if conv1.NumOutput != 20 || conv1.Kernel != 5 || conv1.Stride != 1 || !conv1.BiasTerm {
		t.Fatalf("conv1 = %+v", conv1)
	}
	pool1 := m.LayerByName("pool1")
	if pool1.Pool != "MAX" || pool1.Kernel != 2 || pool1.Stride != 2 {
		t.Fatalf("pool1 = %+v", pool1)
	}
	if ip1 := m.LayerByName("ip1"); ip1.NumOutput != 500 {
		t.Fatalf("ip1 = %+v", ip1)
	}
}

func TestLeNetToNetworkShapes(t *testing.T) {
	m := parseLeNet(t)
	attachRandomBlobs(t, m)
	net, err := m.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.Input != (nn.Shape{Channels: 1, Height: 28, Width: 28}) {
		t.Fatalf("input shape %v", net.Input)
	}
	out, err := net.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if out.Channels != 10 {
		t.Fatalf("output %v", out)
	}
	// Check the canonical LeNet intermediate shape: pool2 is 50x4x4 = 800.
	s, err := net.ShapeAt(4) // input of ip1
	if err != nil {
		t.Fatal(err)
	}
	if s.Volume() != 800 {
		t.Fatalf("ip1 input volume = %d, want 800", s.Volume())
	}
}

func TestToNetworkWithoutWeightsFails(t *testing.T) {
	m := parseLeNet(t)
	if _, err := m.ToNetwork(); err == nil {
		t.Fatal("expected validation error for missing weights")
	}
}

func TestCaffeModelBinaryRoundTrip(t *testing.T) {
	m := parseLeNet(t)
	attachRandomBlobs(t, m)
	data := EncodeCaffeModel(m)
	m2, err := ParseCaffeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != "LeNet" || len(m2.Layers) != len(m.Layers) {
		t.Fatalf("round trip lost structure: %q %d layers", m2.Name, len(m2.Layers))
	}
	if !reflect.DeepEqual(m2.Input, m.Input) {
		t.Fatalf("input %v, want %v", m2.Input, m.Input)
	}
	for i := range m.Layers {
		a, b := &m.Layers[i], &m2.Layers[i]
		if a.Name != b.Name || a.Type != b.Type || a.NumOutput != b.NumOutput ||
			a.Kernel != b.Kernel || a.Stride != b.Stride || a.Pad != b.Pad || a.Pool != b.Pool {
			t.Fatalf("layer %d mismatch:\n%+v\n%+v", i, a, b)
		}
		if len(a.Blobs) != len(b.Blobs) {
			t.Fatalf("layer %q blob count %d vs %d", a.Name, len(a.Blobs), len(b.Blobs))
		}
		for j := range a.Blobs {
			if !reflect.DeepEqual(a.Blobs[j].Shape, b.Blobs[j].Shape) {
				t.Fatalf("layer %q blob %d shape %v vs %v", a.Name, j, a.Blobs[j].Shape, b.Blobs[j].Shape)
			}
			if !reflect.DeepEqual(a.Blobs[j].Data, b.Blobs[j].Data) {
				t.Fatalf("layer %q blob %d data mismatch", a.Name, j)
			}
		}
	}
}

func TestPrototxtRoundTrip(t *testing.T) {
	m := parseLeNet(t)
	src := EncodePrototxt(m)
	m2, err := ParsePrototxt(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if len(m2.Layers) != len(m.Layers) {
		t.Fatalf("layer count %d vs %d", len(m2.Layers), len(m.Layers))
	}
	for i := range m.Layers {
		a, b := m.Layers[i], m2.Layers[i]
		a.Blobs, b.Blobs = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("layer %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestMergeWeights(t *testing.T) {
	topo := parseLeNet(t)
	trained := parseLeNet(t)
	attachRandomBlobs(t, trained)
	topo.MergeWeights(trained)
	if len(topo.LayerByName("conv1").Blobs) != 2 {
		t.Fatal("conv1 blobs not merged")
	}
	if _, err := topo.ToNetwork(); err != nil {
		t.Fatalf("merged model should convert: %v", err)
	}
	// Merging must be by name, not position.
	renamed := parseLeNet(t)
	renamed.Layers[0].Name = "other"
	renamed.MergeWeights(trained)
	if len(renamed.Layers[0].Blobs) != 0 {
		t.Fatal("blob merged into wrong layer")
	}
}

func TestInputLayerProvidesShape(t *testing.T) {
	src := `
name: "mini"
layer {
  name: "data" type: "Input"
  input_param { shape { dim: 1 dim: 3 dim: 8 dim: 8 } }
}
layer {
  name: "pool" type: "Pooling"
  pooling_param { pool: AVE kernel_size: 2 stride: 2 }
}
`
	m, err := ParsePrototxt(src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := m.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.Input != (nn.Shape{Channels: 3, Height: 8, Width: 8}) {
		t.Fatalf("input %v", net.Input)
	}
	if net.Layers[0].Kind != nn.AvgPool {
		t.Fatal("AVE pooling should map to AvgPool")
	}
}

func TestSkippedLayersDropped(t *testing.T) {
	src := `
name: "train-net"
input: "data" input_dim: 1 input_dim: 1 input_dim: 4 input_dim: 4
layer { name: "data" type: "Data" }
layer { name: "pool" type: "Pooling" pooling_param { kernel_size: 2 stride: 2 } }
layer { name: "drop" type: "Dropout" }
layer { name: "loss" type: "SoftmaxWithLoss" }
layer { name: "acc" type: "Accuracy" }
`
	m, err := ParsePrototxt(src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := m.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Layers) != 1 || net.Layers[0].Name != "pool" {
		t.Fatalf("layers = %v", net.Layers)
	}
}

func TestRejectV1LayersField(t *testing.T) {
	if _, err := ParsePrototxt(`layers { name: "x" }`); err == nil {
		t.Fatal("expected V1 'layers' rejection")
	}
}

func TestRejectGroupedConvolution(t *testing.T) {
	src := `layer { name: "c" type: "Convolution" convolution_param { num_output: 4 kernel_size: 3 group: 2 } }`
	if _, err := ParsePrototxt(src); err == nil {
		t.Fatal("expected grouped-convolution rejection")
	}
}

func TestRejectUnsupportedLayerType(t *testing.T) {
	m := &Model{Name: "x", Input: []int{1, 1, 4, 4}, Layers: []LayerSpec{{Name: "l", Type: "LSTM"}}}
	if _, err := m.ToNetwork(); err == nil {
		t.Fatal("expected unsupported-type error")
	}
}

func TestRejectBadBlobShape(t *testing.T) {
	m := parseLeNet(t)
	attachRandomBlobs(t, m)
	m.LayerByName("conv1").Blobs[0].Shape = []int{20, 1, 3, 3} // wrong kernel
	if _, err := m.ToNetwork(); err == nil {
		t.Fatal("expected blob-shape mismatch error")
	}
}

func TestParseCaffeModelRejectsGarbage(t *testing.T) {
	if _, err := ParseCaffeModel([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestBlobLegacyDims(t *testing.T) {
	// A blob encoded with legacy num/channels/height/width instead of shape.
	spec := LayerSpec{Name: "c", Type: "Convolution", NumOutput: 1, Kernel: 1, BiasTerm: false}
	m := &Model{Name: "legacy", Input: []int{1, 1, 2, 2}, Layers: []LayerSpec{spec}}
	data := EncodeCaffeModel(m)
	// Splice a legacy blob into the layer by re-encoding manually is complex;
	// instead test parseBlobProto via a hand-built message.
	_ = data
	blobMsg := buildLegacyBlob(t)
	b, err := parseBlobProto(blobMsg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Shape, []int{1, 1, 2, 2}) {
		t.Fatalf("legacy blob shape %v", b.Shape)
	}
	if len(b.Data) != 4 {
		t.Fatalf("legacy blob data %v", b.Data)
	}
}

// buildLegacyBlob constructs a BlobProto message using the deprecated
// num/channels/height/width fields and unpacked float data.
func buildLegacyBlob(t *testing.T) proto.Message {
	t.Helper()
	var b []byte
	b = proto.AppendVarintField(b, blobNum, 1)
	b = proto.AppendVarintField(b, blobChannels, 1)
	b = proto.AppendVarintField(b, blobHeight, 2)
	b = proto.AppendVarintField(b, blobWidth, 2)
	for i := 0; i < 4; i++ {
		b = proto.AppendFloatField(b, blobData, float32(i))
	}
	msg, err := proto.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

// Property: encode→parse of random valid single-conv models preserves
// geometry and weights exactly.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		out := rng.Intn(8) + 1
		in := rng.Intn(4) + 1
		k := rng.Intn(3) + 1
		wdata := make([]float32, out*in*k*k)
		for i := range wdata {
			wdata[i] = rng.Float32()
		}
		m := &Model{
			Name:  "p",
			Input: []int{1, in, 8, 8},
			Layers: []LayerSpec{{
				Name: "c", Type: "Convolution", NumOutput: out, Kernel: k, Stride: 1,
				BiasTerm: false,
				Blobs:    []Blob{{Shape: []int{out, in, k, k}, Data: wdata}},
			}},
		}
		m2, err := ParseCaffeModel(EncodeCaffeModel(m))
		if err != nil {
			return false
		}
		l := m2.LayerByName("c")
		return l != nil && l.NumOutput == out && l.Kernel == k &&
			reflect.DeepEqual(l.Blobs[0].Data, wdata)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInputCHW(t *testing.T) {
	m := &Model{Name: "x", Input: []int{8, 3, 10, 12}}
	s, err := m.InputCHW()
	if err != nil {
		t.Fatal(err)
	}
	if s != (nn.Shape{Channels: 3, Height: 10, Width: 12}) {
		t.Fatalf("CHW = %v", s)
	}
	m.Input = []int{3, 10, 12}
	if s, err = m.InputCHW(); err != nil || s.Channels != 3 {
		t.Fatalf("rank-3 CHW = %v %v", s, err)
	}
	m.Input = []int{10, 12}
	if _, err := m.InputCHW(); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestEncodePrototxtWithInputLayer(t *testing.T) {
	m := &Model{
		Name: "with-input",
		Layers: []LayerSpec{
			{Name: "data", Type: "Input", InputShape: []int{1, 1, 4, 4}},
			{Name: "pool", Type: "Pooling", Pool: "AVE", Kernel: 2, Stride: 2, Pad: 1},
			{Name: "conv", Type: "Convolution", NumOutput: 2, Kernel: 3, BiasTerm: false, Pad: 1, Stride: 1},
			{Name: "ip", Type: "InnerProduct", NumOutput: 3, BiasTerm: false},
		},
	}
	src := EncodePrototxt(m)
	m2, err := ParsePrototxt(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if !reflect.DeepEqual(m2.LayerByName("data").InputShape, []int{1, 1, 4, 4}) {
		t.Fatalf("input shape lost: %+v", m2.LayerByName("data"))
	}
	if m2.LayerByName("pool").Pool != "AVE" || m2.LayerByName("pool").Pad != 1 {
		t.Fatalf("pool params lost: %+v", m2.LayerByName("pool"))
	}
	if m2.LayerByName("conv").BiasTerm {
		t.Fatal("bias_term false lost")
	}
	if m2.LayerByName("ip").BiasTerm {
		t.Fatal("ip bias_term false lost")
	}
}

func TestBinaryRoundTripAvePoolingAndInput(t *testing.T) {
	m := &Model{
		Name: "bin-ave",
		Layers: []LayerSpec{
			{Name: "data", Type: "Input", InputShape: []int{1, 2, 6, 6}},
			{Name: "p", Type: "Pooling", Pool: "AVE", Kernel: 3, Stride: 3, Pad: 0},
		},
	}
	m2, err := ParseCaffeModel(EncodeCaffeModel(m))
	if err != nil {
		t.Fatal(err)
	}
	if m2.LayerByName("p").Pool != "AVE" {
		t.Fatalf("pooling method lost: %+v", m2.LayerByName("p"))
	}
	if !reflect.DeepEqual(m2.LayerByName("data").InputShape, []int{1, 2, 6, 6}) {
		t.Fatalf("input layer shape lost: %+v", m2.LayerByName("data"))
	}
}

func TestBinaryRejectsV1Layers(t *testing.T) {
	var b []byte
	b = proto.AppendBytesField(b, netLayersV1, []byte{})
	if _, err := ParseCaffeModel(b); err == nil {
		t.Fatal("expected V1 rejection in binary path")
	}
}

func TestBinaryRejectsStochasticPooling(t *testing.T) {
	var pp []byte
	pp = proto.AppendVarintField(pp, poolMethod, 2) // STOCHASTIC
	pp = proto.AppendVarintField(pp, poolKernelSize, 2)
	var lp []byte
	lp = proto.AppendStringField(lp, layerName, "p")
	lp = proto.AppendStringField(lp, layerType, "Pooling")
	lp = proto.AppendBytesField(lp, layerPoolParam, pp)
	var b []byte
	b = proto.AppendBytesField(b, netLayer, lp)
	if _, err := ParseCaffeModel(b); err == nil {
		t.Fatal("expected stochastic-pooling rejection")
	}
}

func TestBinaryRejectsGroupedConv(t *testing.T) {
	var cp []byte
	cp = proto.AppendVarintField(cp, convNumOutput, 4)
	cp = proto.AppendVarintField(cp, convKernelSize, 3)
	cp = proto.AppendVarintField(cp, convGroup, 2)
	var lp []byte
	lp = proto.AppendStringField(lp, layerName, "c")
	lp = proto.AppendStringField(lp, layerType, "Convolution")
	lp = proto.AppendBytesField(lp, layerConvParam, cp)
	var b []byte
	b = proto.AppendBytesField(b, netLayer, lp)
	if _, err := ParseCaffeModel(b); err == nil {
		t.Fatal("expected grouped-conv rejection in binary path")
	}
}

func TestBlobShapeVolumeMismatch(t *testing.T) {
	var bs []byte
	bs = proto.AppendVarintField(bs, blobShapeDim, 3)
	var bm []byte
	bm = proto.AppendBytesField(bm, blobShape, bs)
	bm = proto.AppendPackedFloats(bm, blobData, []float32{1, 2}) // 2 values for dim 3
	msg, err := proto.Decode(bm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseBlobProto(msg); err == nil {
		t.Fatal("expected volume mismatch error")
	}
}

func TestFCBlobBadShape(t *testing.T) {
	m := parseLeNet(t)
	attachRandomBlobs(t, m)
	// 7 values are not divisible by ip2's 10 outputs.
	m.LayerByName("ip2").Blobs[0] = Blob{Shape: []int{7}, Data: make([]float32, 7)}
	if _, err := m.ToNetwork(); err == nil {
		t.Fatal("expected fc blob shape error")
	}
}

func TestBiasBlobWrongLength(t *testing.T) {
	m := parseLeNet(t)
	attachRandomBlobs(t, m)
	m.LayerByName("conv1").Blobs[1] = Blob{Shape: []int{3}, Data: make([]float32, 3)}
	if _, err := m.ToNetwork(); err == nil {
		t.Fatal("expected bias length error")
	}
}
