// Package caffe implements the subset of the Caffe model formats that the
// Condor frontend consumes: the network description (prototxt, the protobuf
// text format) and the trained model (caffemodel, the protobuf binary wire
// format). Field numbers and semantics follow BVLC caffe.proto.
//
// The package parses both formats into a neutral Model description, merges
// weights from a caffemodel into a prototxt topology (matching layers by
// name, Caffe's own rule), and converts the result into an nn.Network. It
// can also encode Models back to both formats, which the synthetic model
// generators use to produce genuine Caffe files for the integration tests
// and examples.
package caffe

import (
	"fmt"

	"condor/internal/nn"
	"condor/internal/tensor"
)

// Field numbers from caffe.proto.
const (
	// NetParameter
	netName       = 1
	netLayersV1   = 2 // deprecated V1LayerParameter, rejected with a clear error
	netInput      = 3
	netInputDim   = 4
	netInputShape = 8
	netLayer      = 100

	// BlobShape
	blobShapeDim = 1

	// BlobProto
	blobNum      = 1
	blobChannels = 2
	blobHeight   = 3
	blobWidth    = 4
	blobData     = 5
	blobShape    = 7

	// LayerParameter
	layerName       = 1
	layerType       = 2
	layerBottom     = 3
	layerTop        = 4
	layerBlobs      = 7
	layerConvParam  = 106
	layerInputParam = 143
	layerIPParam    = 117
	layerPoolParam  = 121

	// ConvolutionParameter
	convNumOutput  = 1
	convBiasTerm   = 2
	convPad        = 3
	convKernelSize = 4
	convGroup      = 5
	convStride     = 6

	// PoolingParameter
	poolMethod     = 1
	poolKernelSize = 2
	poolStride     = 3
	poolPad        = 4

	// InnerProductParameter
	ipNumOutput = 1
	ipBiasTerm  = 2

	// InputParameter
	inputShape = 1
)

// Blob is a named weight array with its shape, matching Caffe's BlobProto.
type Blob struct {
	Shape []int
	Data  []float32
}

// Volume returns the number of elements implied by the blob shape.
func (b *Blob) Volume() int { return tensor.Volume(b.Shape) }

// LayerSpec is the neutral description of one Caffe layer.
type LayerSpec struct {
	Name   string
	Type   string // Caffe type string: Convolution, Pooling, InnerProduct, ReLU, ...
	Bottom []string
	Top    []string

	NumOutput int
	Kernel    int
	Stride    int
	Pad       int
	BiasTerm  bool
	Pool      string // MAX or AVE for Pooling layers

	InputShape []int  // for Input layers: the declared NCHW shape
	Blobs      []Blob // [weights, bias] when trained
}

// Model is a parsed Caffe network: name, input shape (NCHW) and layers in
// file order.
type Model struct {
	Name   string
	Input  []int // N, C, H, W; N is the batch dimension and is ignored downstream
	Layers []LayerSpec
}

// InputCHW returns the per-image input shape, dropping the batch dimension.
func (m *Model) InputCHW() (nn.Shape, error) {
	switch len(m.Input) {
	case 4:
		return nn.Shape{Channels: m.Input[1], Height: m.Input[2], Width: m.Input[3]}, nil
	case 3:
		return nn.Shape{Channels: m.Input[0], Height: m.Input[1], Width: m.Input[2]}, nil
	default:
		return nn.Shape{}, fmt.Errorf("caffe: model %q has input shape %v, want rank 3 or 4", m.Name, m.Input)
	}
}

// LayerByName returns the layer with the given name, or nil.
func (m *Model) LayerByName(name string) *LayerSpec {
	for i := range m.Layers {
		if m.Layers[i].Name == name {
			return &m.Layers[i]
		}
	}
	return nil
}

// MergeWeights copies the blobs of every layer in weights into the matching
// (by name) layer of m, Caffe's CopyTrainedLayersFrom rule. Layers present
// only on one side are left untouched; a blob count/shape is not validated
// here (ToNetwork validates against geometry).
func (m *Model) MergeWeights(weights *Model) {
	for i := range m.Layers {
		if src := weights.LayerByName(m.Layers[i].Name); src != nil && len(src.Blobs) > 0 {
			m.Layers[i].Blobs = src.Blobs
		}
	}
}

// dataLayerTypes are Caffe layer types that provide inputs or training-time
// outputs; they do not take part in inference and are skipped by ToNetwork.
var skippedLayerTypes = map[string]bool{
	"Data":            true,
	"ImageData":       true,
	"HDF5Data":        true,
	"Accuracy":        true,
	"SoftmaxWithLoss": true,
	"Dropout":         true, // identity at inference time
}

// ToNetwork converts the model into an nn.Network ready for the Condor core
// logic. Data/loss/accuracy layers are dropped (inference only, as the
// paper's frontend does); an Input layer, if present, supplies the input
// shape.
func (m *Model) ToNetwork() (*nn.Network, error) {
	net := &nn.Network{Name: m.Name}
	input := m.Input
	for i := range m.Layers {
		l := &m.Layers[i]
		if l.Type == "Input" {
			if len(l.InputShape) > 0 {
				input = l.InputShape
			}
			continue
		}
		if skippedLayerTypes[l.Type] {
			continue
		}
		layer, err := l.toNNLayer()
		if err != nil {
			return nil, err
		}
		net.Layers = append(net.Layers, layer)
	}
	switch len(input) {
	case 4:
		net.Input = nn.Shape{Channels: input[1], Height: input[2], Width: input[3]}
	case 3:
		net.Input = nn.Shape{Channels: input[0], Height: input[1], Width: input[2]}
	default:
		return nil, fmt.Errorf("caffe: model %q has no usable input shape (got %v)", m.Name, input)
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("caffe: converted network invalid: %w", err)
	}
	return net, nil
}

func (l *LayerSpec) toNNLayer() (*nn.Layer, error) {
	out := &nn.Layer{Name: l.Name}
	switch l.Type {
	case "Convolution":
		out.Kind = nn.Conv
		out.Kernel, out.Stride, out.Pad = l.Kernel, defaultInt(l.Stride, 1), l.Pad
		out.OutputCount = l.NumOutput
		if out.Kernel <= 0 {
			return nil, fmt.Errorf("caffe: conv layer %q missing kernel_size", l.Name)
		}
		if out.OutputCount <= 0 {
			return nil, fmt.Errorf("caffe: conv layer %q missing num_output", l.Name)
		}
		if err := l.attachConvBlobs(out); err != nil {
			return nil, err
		}
	case "Pooling":
		switch l.Pool {
		case "MAX", "":
			out.Kind = nn.MaxPool
		case "AVE":
			out.Kind = nn.AvgPool
		default:
			return nil, fmt.Errorf("caffe: pooling layer %q has unsupported method %q", l.Name, l.Pool)
		}
		out.Kernel = l.Kernel
		out.Stride = defaultInt(l.Stride, 1)
		out.Pad = l.Pad
		if out.Kernel <= 0 {
			return nil, fmt.Errorf("caffe: pooling layer %q missing kernel_size", l.Name)
		}
	case "InnerProduct":
		out.Kind = nn.FullyConnected
		out.OutputCount = l.NumOutput
		if out.OutputCount <= 0 {
			return nil, fmt.Errorf("caffe: inner-product layer %q missing num_output", l.Name)
		}
		if err := l.attachFCBlobs(out); err != nil {
			return nil, err
		}
	case "ReLU":
		out.Kind = nn.ReLU
	case "Sigmoid":
		out.Kind = nn.Sigmoid
	case "TanH":
		out.Kind = nn.TanH
	case "Softmax":
		out.Kind = nn.SoftMax
	case "LogSoftmax", "LogSoftMax":
		out.Kind = nn.LogSoftMax
	default:
		return nil, fmt.Errorf("caffe: unsupported layer type %q (layer %q)", l.Type, l.Name)
	}
	return out, nil
}

func (l *LayerSpec) attachConvBlobs(out *nn.Layer) error {
	if len(l.Blobs) == 0 {
		return nil // untrained topology; weights attached later
	}
	w := l.Blobs[0]
	shape := w.Shape
	// Legacy 4-D blobs always carry rank 4; accept [out, in, kh, kw] only.
	if len(shape) != 4 || shape[0] != out.OutputCount || shape[2] != out.Kernel || shape[3] != out.Kernel {
		return fmt.Errorf("caffe: conv layer %q weight blob shape %v incompatible with num_output=%d kernel=%d",
			l.Name, shape, out.OutputCount, out.Kernel)
	}
	if w.Volume() != len(w.Data) {
		return fmt.Errorf("caffe: conv layer %q weight blob has %d values, shape %v needs %d",
			l.Name, len(w.Data), shape, w.Volume())
	}
	out.Weights = tensor.FromSlice(w.Data, shape...)
	if l.BiasTerm && len(l.Blobs) > 1 {
		b := l.Blobs[1]
		if len(b.Data) != out.OutputCount {
			return fmt.Errorf("caffe: conv layer %q bias blob has %d values, want %d", l.Name, len(b.Data), out.OutputCount)
		}
		out.Bias = tensor.FromSlice(b.Data, out.OutputCount)
	}
	return nil
}

func (l *LayerSpec) attachFCBlobs(out *nn.Layer) error {
	if len(l.Blobs) == 0 {
		return nil
	}
	w := l.Blobs[0]
	if w.Volume() != len(w.Data) || w.Volume()%out.OutputCount != 0 {
		return fmt.Errorf("caffe: fc layer %q weight blob shape %v / %d values incompatible with num_output=%d",
			l.Name, w.Shape, len(w.Data), out.OutputCount)
	}
	in := w.Volume() / out.OutputCount
	out.Weights = tensor.FromSlice(w.Data, out.OutputCount, in)
	if l.BiasTerm && len(l.Blobs) > 1 {
		b := l.Blobs[1]
		if len(b.Data) != out.OutputCount {
			return fmt.Errorf("caffe: fc layer %q bias blob has %d values, want %d", l.Name, len(b.Data), out.OutputCount)
		}
		out.Bias = tensor.FromSlice(b.Data, out.OutputCount)
	}
	return nil
}

func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
