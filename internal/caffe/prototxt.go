package caffe

import (
	"fmt"
	"strconv"
	"strings"

	"condor/internal/proto"
)

// ParsePrototxt parses a network description in Caffe's prototxt format into
// a Model (topology only; blobs come from the caffemodel).
func ParsePrototxt(src string) (*Model, error) {
	msg, err := proto.ParseText(src)
	if err != nil {
		return nil, err
	}
	m := &Model{}
	m.Name, _ = msg.GetString("name")
	if msg.Has("layers") && !msg.Has("layer") {
		return nil, fmt.Errorf("caffe: prototxt for %q uses the deprecated V1 'layers' field", m.Name)
	}

	if dims, err := msg.GetInts("input_dim"); err != nil {
		return nil, err
	} else if len(dims) > 0 {
		m.Input = dims
	}
	if len(m.Input) == 0 {
		if shape, ok := msg.GetMessage("input_shape"); ok {
			dims, err := shape.GetInts("dim")
			if err != nil {
				return nil, err
			}
			m.Input = dims
		}
	}

	for i, lm := range msg.GetMessages("layer") {
		spec, err := parseTextLayer(lm)
		if err != nil {
			return nil, fmt.Errorf("caffe: layer %d: %w", i, err)
		}
		m.Layers = append(m.Layers, spec)
	}
	return m, nil
}

func parseTextLayer(lm proto.TextMessage) (LayerSpec, error) {
	var l LayerSpec
	l.Name, _ = lm.GetString("name")
	l.Type, _ = lm.GetString("type")
	l.Bottom = lm.GetStrings("bottom")
	l.Top = lm.GetStrings("top")
	l.BiasTerm = true

	if cp, ok := lm.GetMessage("convolution_param"); ok {
		var err error
		if l.NumOutput, err = cp.GetInt("num_output", 0); err != nil {
			return l, err
		}
		if l.Kernel, err = cp.GetInt("kernel_size", 0); err != nil {
			return l, err
		}
		if l.Stride, err = cp.GetInt("stride", 0); err != nil {
			return l, err
		}
		if l.Pad, err = cp.GetInt("pad", 0); err != nil {
			return l, err
		}
		if l.BiasTerm, err = cp.GetBool("bias_term", true); err != nil {
			return l, err
		}
		if g, err := cp.GetInt("group", 1); err != nil {
			return l, err
		} else if g != 1 {
			return l, fmt.Errorf("layer %q: grouped convolutions (group=%d) are not supported", l.Name, g)
		}
	}
	if pp, ok := lm.GetMessage("pooling_param"); ok {
		pool, _ := pp.GetString("pool")
		switch pool {
		case "", "MAX":
			l.Pool = "MAX"
		case "AVE":
			l.Pool = "AVE"
		default:
			return l, fmt.Errorf("layer %q: unsupported pooling method %q", l.Name, pool)
		}
		var err error
		if l.Kernel, err = pp.GetInt("kernel_size", 0); err != nil {
			return l, err
		}
		if l.Stride, err = pp.GetInt("stride", 1); err != nil {
			return l, err
		}
		if l.Pad, err = pp.GetInt("pad", 0); err != nil {
			return l, err
		}
	}
	if ip, ok := lm.GetMessage("inner_product_param"); ok {
		var err error
		if l.NumOutput, err = ip.GetInt("num_output", 0); err != nil {
			return l, err
		}
		if l.BiasTerm, err = ip.GetBool("bias_term", true); err != nil {
			return l, err
		}
	}
	if inp, ok := lm.GetMessage("input_param"); ok {
		if shape, ok := inp.GetMessage("shape"); ok {
			dims, err := shape.GetInts("dim")
			if err != nil {
				return l, err
			}
			l.InputShape = dims
		}
	}
	return l, nil
}

// EncodePrototxt renders a Model's topology in prototxt form. Blobs are not
// included (prototxt never carries weights).
func EncodePrototxt(m *Model) string {
	var sb strings.Builder
	if m.Name != "" {
		fmt.Fprintf(&sb, "name: %q\n", m.Name)
	}
	if len(m.Input) > 0 {
		sb.WriteString("input: \"data\"\n")
		for _, d := range m.Input {
			fmt.Fprintf(&sb, "input_dim: %d\n", d)
		}
	}
	for i := range m.Layers {
		writeTextLayer(&sb, &m.Layers[i])
	}
	return sb.String()
}

func writeTextLayer(sb *strings.Builder, l *LayerSpec) {
	sb.WriteString("layer {\n")
	fmt.Fprintf(sb, "  name: %q\n", l.Name)
	fmt.Fprintf(sb, "  type: %q\n", l.Type)
	for _, b := range l.Bottom {
		fmt.Fprintf(sb, "  bottom: %q\n", b)
	}
	for _, t := range l.Top {
		fmt.Fprintf(sb, "  top: %q\n", t)
	}
	switch l.Type {
	case "Convolution":
		sb.WriteString("  convolution_param {\n")
		fmt.Fprintf(sb, "    num_output: %d\n", l.NumOutput)
		if !l.BiasTerm {
			sb.WriteString("    bias_term: false\n")
		}
		if l.Pad != 0 {
			fmt.Fprintf(sb, "    pad: %d\n", l.Pad)
		}
		fmt.Fprintf(sb, "    kernel_size: %d\n", l.Kernel)
		if l.Stride != 0 {
			fmt.Fprintf(sb, "    stride: %d\n", l.Stride)
		}
		sb.WriteString("  }\n")
	case "Pooling":
		sb.WriteString("  pooling_param {\n")
		pool := l.Pool
		if pool == "" {
			pool = "MAX"
		}
		fmt.Fprintf(sb, "    pool: %s\n", pool)
		fmt.Fprintf(sb, "    kernel_size: %d\n", l.Kernel)
		if l.Stride != 0 {
			fmt.Fprintf(sb, "    stride: %d\n", l.Stride)
		}
		if l.Pad != 0 {
			fmt.Fprintf(sb, "    pad: %d\n", l.Pad)
		}
		sb.WriteString("  }\n")
	case "InnerProduct":
		sb.WriteString("  inner_product_param {\n")
		fmt.Fprintf(sb, "    num_output: %d\n", l.NumOutput)
		if !l.BiasTerm {
			sb.WriteString("    bias_term: false\n")
		}
		sb.WriteString("  }\n")
	case "Input":
		if len(l.InputShape) > 0 {
			sb.WriteString("  input_param {\n    shape {\n")
			for _, d := range l.InputShape {
				fmt.Fprintf(sb, "      dim: %s\n", strconv.Itoa(d))
			}
			sb.WriteString("    }\n  }\n")
		}
	}
	sb.WriteString("}\n")
}
