package caffe

import (
	"fmt"

	"condor/internal/proto"
)

// ParseCaffeModel decodes a binary .caffemodel file (a serialized
// NetParameter) into a Model carrying topology and trained blobs.
func ParseCaffeModel(data []byte) (*Model, error) {
	msg, err := proto.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("caffe: malformed caffemodel: %w", err)
	}
	return parseNetParameter(msg)
}

func parseNetParameter(msg proto.Message) (*Model, error) {
	m := &Model{}
	m.Name, _ = msg.GetString(netName)
	if msg.Has(netLayersV1) && !msg.Has(netLayer) {
		return nil, fmt.Errorf("caffe: model %q uses the deprecated V1 'layers' field; re-export it with a modern Caffe", m.Name)
	}

	// Input declaration: either repeated input_dim ints, or input_shape blobs.
	if dims, err := msg.GetUints(netInputDim); err != nil {
		return nil, err
	} else if len(dims) > 0 {
		for _, d := range dims {
			m.Input = append(m.Input, int(d))
		}
	}
	if len(m.Input) == 0 {
		shapes, err := msg.GetMessages(netInputShape)
		if err != nil {
			return nil, err
		}
		if len(shapes) > 0 {
			dims, err := shapes[0].GetUints(blobShapeDim)
			if err != nil {
				return nil, err
			}
			for _, d := range dims {
				m.Input = append(m.Input, int(d))
			}
		}
	}

	layers, err := msg.GetMessages(netLayer)
	if err != nil {
		return nil, err
	}
	for i, lm := range layers {
		spec, err := parseLayerParameter(lm)
		if err != nil {
			return nil, fmt.Errorf("caffe: layer %d: %w", i, err)
		}
		m.Layers = append(m.Layers, spec)
	}
	return m, nil
}

func parseLayerParameter(msg proto.Message) (LayerSpec, error) {
	var l LayerSpec
	l.Name, _ = msg.GetString(layerName)
	l.Type, _ = msg.GetString(layerType)
	l.Bottom = msg.GetStrings(layerBottom)
	l.Top = msg.GetStrings(layerTop)
	l.BiasTerm = true // proto2 default for bias_term in conv and IP params

	if cp, err := msg.GetMessage(layerConvParam); err != nil {
		return l, err
	} else if cp != nil {
		l.NumOutput = cp.GetInt(convNumOutput, 0)
		l.BiasTerm = cp.GetBool(convBiasTerm, true)
		// kernel_size, pad and stride are repeated in modern caffe.proto;
		// Condor supports square geometry so the first value applies to both
		// spatial dimensions.
		if v, err := firstUint(cp, convKernelSize); err != nil {
			return l, err
		} else {
			l.Kernel = v
		}
		if v, err := firstUint(cp, convStride); err != nil {
			return l, err
		} else {
			l.Stride = v
		}
		if v, err := firstUint(cp, convPad); err != nil {
			return l, err
		} else {
			l.Pad = v
		}
		if g := cp.GetInt(convGroup, 1); g != 1 {
			return l, fmt.Errorf("layer %q: grouped convolutions (group=%d) are not supported", l.Name, g)
		}
	}
	if pp, err := msg.GetMessage(layerPoolParam); err != nil {
		return l, err
	} else if pp != nil {
		switch pp.GetInt(poolMethod, 0) {
		case 0:
			l.Pool = "MAX"
		case 1:
			l.Pool = "AVE"
		default:
			return l, fmt.Errorf("layer %q: unsupported pooling method %d", l.Name, pp.GetInt(poolMethod, 0))
		}
		l.Kernel = pp.GetInt(poolKernelSize, 0)
		l.Stride = pp.GetInt(poolStride, 1)
		l.Pad = pp.GetInt(poolPad, 0)
	}
	if ip, err := msg.GetMessage(layerIPParam); err != nil {
		return l, err
	} else if ip != nil {
		l.NumOutput = ip.GetInt(ipNumOutput, 0)
		l.BiasTerm = ip.GetBool(ipBiasTerm, true)
	}
	if inp, err := msg.GetMessage(layerInputParam); err != nil {
		return l, err
	} else if inp != nil {
		shapes, err := inp.GetMessages(inputShape)
		if err != nil {
			return l, err
		}
		if len(shapes) > 0 {
			dims, err := shapes[0].GetUints(blobShapeDim)
			if err != nil {
				return l, err
			}
			for _, d := range dims {
				l.InputShape = append(l.InputShape, int(d))
			}
		}
	}

	blobs, err := msg.GetMessages(layerBlobs)
	if err != nil {
		return l, err
	}
	for bi, bm := range blobs {
		blob, err := parseBlobProto(bm)
		if err != nil {
			return l, fmt.Errorf("layer %q blob %d: %w", l.Name, bi, err)
		}
		l.Blobs = append(l.Blobs, blob)
	}
	return l, nil
}

// firstUint reads the first occurrence of a repeated uint field (kernel_size
// and friends), returning 0 when absent.
func firstUint(m proto.Message, num int) (int, error) {
	vals, err := m.GetUints(num)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, nil
	}
	return int(vals[0]), nil
}

func parseBlobProto(msg proto.Message) (Blob, error) {
	var b Blob
	// Modern shape message, falling back to the legacy num/channels/height/
	// width quadruple.
	if sm, err := msg.GetMessage(blobShape); err != nil {
		return b, err
	} else if sm != nil {
		dims, err := sm.GetUints(blobShapeDim)
		if err != nil {
			return b, err
		}
		for _, d := range dims {
			b.Shape = append(b.Shape, int(d))
		}
	} else if msg.Has(blobNum) || msg.Has(blobChannels) || msg.Has(blobHeight) || msg.Has(blobWidth) {
		b.Shape = []int{
			msg.GetInt(blobNum, 1), msg.GetInt(blobChannels, 1),
			msg.GetInt(blobHeight, 1), msg.GetInt(blobWidth, 1),
		}
	}
	var err error
	b.Data, err = msg.GetFloats(blobData)
	if err != nil {
		return b, err
	}
	if len(b.Shape) == 0 {
		b.Shape = []int{len(b.Data)}
	}
	if b.Volume() != len(b.Data) {
		return b, fmt.Errorf("blob shape %v implies %d values, got %d", b.Shape, b.Volume(), len(b.Data))
	}
	return b, nil
}

// EncodeCaffeModel serialises a Model (topology + blobs) as a binary
// NetParameter, producing bytes that ParseCaffeModel (and Caffe itself)
// accept. Used by the synthetic model generators.
func EncodeCaffeModel(m *Model) []byte {
	var out []byte
	if m.Name != "" {
		out = proto.AppendStringField(out, netName, m.Name)
	}
	if len(m.Input) > 0 {
		// Emit the legacy input/input_dim pair, the layout of the reference
		// lenet caffemodel.
		out = proto.AppendStringField(out, netInput, "data")
		for _, d := range m.Input {
			out = proto.AppendVarintField(out, netInputDim, uint64(d))
		}
	}
	for i := range m.Layers {
		out = proto.AppendBytesField(out, netLayer, encodeLayerParameter(&m.Layers[i]))
	}
	return out
}

func encodeLayerParameter(l *LayerSpec) []byte {
	var out []byte
	out = proto.AppendStringField(out, layerName, l.Name)
	out = proto.AppendStringField(out, layerType, l.Type)
	for _, b := range l.Bottom {
		out = proto.AppendStringField(out, layerBottom, b)
	}
	for _, t := range l.Top {
		out = proto.AppendStringField(out, layerTop, t)
	}
	for i := range l.Blobs {
		out = proto.AppendBytesField(out, layerBlobs, encodeBlobProto(&l.Blobs[i]))
	}
	switch l.Type {
	case "Convolution":
		var cp []byte
		cp = proto.AppendVarintField(cp, convNumOutput, uint64(l.NumOutput))
		if !l.BiasTerm {
			cp = proto.AppendBoolField(cp, convBiasTerm, false)
		}
		if l.Pad != 0 {
			cp = proto.AppendVarintField(cp, convPad, uint64(l.Pad))
		}
		cp = proto.AppendVarintField(cp, convKernelSize, uint64(l.Kernel))
		if l.Stride != 0 {
			cp = proto.AppendVarintField(cp, convStride, uint64(l.Stride))
		}
		out = proto.AppendBytesField(out, layerConvParam, cp)
	case "Pooling":
		var pp []byte
		method := 0
		if l.Pool == "AVE" {
			method = 1
		}
		pp = proto.AppendVarintField(pp, poolMethod, uint64(method))
		pp = proto.AppendVarintField(pp, poolKernelSize, uint64(l.Kernel))
		if l.Stride != 0 {
			pp = proto.AppendVarintField(pp, poolStride, uint64(l.Stride))
		}
		if l.Pad != 0 {
			pp = proto.AppendVarintField(pp, poolPad, uint64(l.Pad))
		}
		out = proto.AppendBytesField(out, layerPoolParam, pp)
	case "InnerProduct":
		var ip []byte
		ip = proto.AppendVarintField(ip, ipNumOutput, uint64(l.NumOutput))
		if !l.BiasTerm {
			ip = proto.AppendBoolField(ip, ipBiasTerm, false)
		}
		out = proto.AppendBytesField(out, layerIPParam, ip)
	case "Input":
		if len(l.InputShape) > 0 {
			var bs []byte
			for _, d := range l.InputShape {
				bs = proto.AppendVarintField(bs, blobShapeDim, uint64(d))
			}
			var ip []byte
			ip = proto.AppendBytesField(ip, inputShape, bs)
			out = proto.AppendBytesField(out, layerInputParam, ip)
		}
	}
	return out
}

func encodeBlobProto(b *Blob) []byte {
	var out []byte
	var bs []byte
	for _, d := range b.Shape {
		bs = proto.AppendVarintField(bs, blobShapeDim, uint64(d))
	}
	out = proto.AppendBytesField(out, blobShape, bs)
	out = proto.AppendPackedFloats(out, blobData, b.Data)
	return out
}
