package nn

import (
	"fmt"
	"math"

	"condor/internal/tensor"
)

// forwardLayer evaluates one layer on a CHW input with the reference
// (direct, non-streaming) algorithm. The implementations follow the paper's
// equations (1), (4) and (5) literally.
func forwardLayer(l *Layer, in *tensor.Tensor, shape Shape) (*tensor.Tensor, error) {
	switch l.Kind {
	case Conv:
		return forwardConv(l, in, shape)
	case MaxPool:
		return forwardPool(l, in, shape, true)
	case AvgPool:
		return forwardPool(l, in, shape, false)
	case FullyConnected:
		return forwardFC(l, in, shape)
	case ReLU:
		return mapUnary(in, func(x float32) float32 {
			if x < 0 {
				return 0
			}
			return x
		}), nil
	case Sigmoid:
		return mapUnary(in, func(x float32) float32 {
			return float32(1 / (1 + math.Exp(-float64(x))))
		}), nil
	case TanH:
		return mapUnary(in, func(x float32) float32 {
			return float32(math.Tanh(float64(x)))
		}), nil
	case SoftMax:
		return forwardSoftMax(in, false), nil
	case LogSoftMax:
		return forwardSoftMax(in, true), nil
	default:
		return nil, fmt.Errorf("unknown layer kind %v", l.Kind)
	}
}

// paddedAt reads the input with symmetric zero padding: coordinates outside
// the feature map read as zero.
func paddedAt(in *tensor.Tensor, c, y, x, h, w int) float32 {
	if y < 0 || y >= h || x < 0 || x >= w {
		return 0
	}
	return in.At(c, y, x)
}

// forwardConv implements equation (1): each output point (i,j) of output map
// φ is the windowed dot product of the weights with the input, summed over
// all input channels, plus the optional bias b_φ.
func forwardConv(l *Layer, in *tensor.Tensor, shape Shape) (*tensor.Tensor, error) {
	outShape, err := l.OutputShape(shape)
	if err != nil {
		return nil, err
	}
	out := tensor.New(outShape.Channels, outShape.Height, outShape.Width)
	k, s, p := l.Kernel, l.Stride, l.Pad
	for f := 0; f < outShape.Channels; f++ {
		var bias float32
		if l.Bias != nil {
			bias = l.Bias.At(f)
		}
		for oy := 0; oy < outShape.Height; oy++ {
			for ox := 0; ox < outShape.Width; ox++ {
				acc := bias
				for c := 0; c < shape.Channels; c++ {
					for m := 0; m < k; m++ {
						for nn := 0; nn < k; nn++ {
							w := l.Weights.At(f, c, m, nn)
							x := paddedAt(in, c, oy*s+m-p, ox*s+nn-p, shape.Height, shape.Width)
							acc += w * x
						}
					}
				}
				out.Set(acc, f, oy, ox)
			}
		}
	}
	return out, nil
}

// forwardPool implements the sub-sampling layer: the window is replaced by
// its maximum (max-pooling) or its average.
func forwardPool(l *Layer, in *tensor.Tensor, shape Shape, isMax bool) (*tensor.Tensor, error) {
	outShape, err := l.OutputShape(shape)
	if err != nil {
		return nil, err
	}
	out := tensor.New(outShape.Channels, outShape.Height, outShape.Width)
	k, s, p := l.Kernel, l.Stride, l.Pad
	for c := 0; c < shape.Channels; c++ {
		for oy := 0; oy < outShape.Height; oy++ {
			for ox := 0; ox < outShape.Width; ox++ {
				var v float32
				if isMax {
					v = float32(math.Inf(-1))
				}
				for m := 0; m < k; m++ {
					for nn := 0; nn < k; nn++ {
						x := paddedAt(in, c, oy*s+m-p, ox*s+nn-p, shape.Height, shape.Width)
						if isMax {
							if x > v {
								v = x
							}
						} else {
							v += x
						}
					}
				}
				if !isMax {
					v /= float32(k * k)
				}
				out.Set(v, c, oy, ox)
			}
		}
	}
	return out, nil
}

// forwardFC implements equation (4): each output neuron is the weighted sum
// of all inputs plus an optional bias. The CHW input is flattened in
// row-major order, matching both Caffe's inner-product layout and the
// streaming order of the hardware datamover.
func forwardFC(l *Layer, in *tensor.Tensor, shape Shape) (*tensor.Tensor, error) {
	flat := in.Data()
	if len(flat) != shape.Volume() {
		return nil, fmt.Errorf("fc input volume %d, want %d", len(flat), shape.Volume())
	}
	out := tensor.New(l.OutputCount, 1, 1)
	for o := 0; o < l.OutputCount; o++ {
		var acc float32
		if l.Bias != nil {
			acc = l.Bias.At(o)
		}
		for h := 0; h < len(flat); h++ {
			acc += l.Weights.At(o, h) * flat[h]
		}
		out.Set(acc, o, 0, 0)
	}
	return out, nil
}

// forwardSoftMax implements equation (5), optionally in log space. The max
// is subtracted first for numerical stability; this does not change the
// result since σ is shift-invariant.
func forwardSoftMax(in *tensor.Tensor, logSpace bool) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	src, dst := in.Data(), out.Data()
	max := float64(math.Inf(-1))
	for _, v := range src {
		if float64(v) > max {
			max = float64(v)
		}
	}
	var sum float64
	for _, v := range src {
		sum += math.Exp(float64(v) - max)
	}
	logSum := math.Log(sum)
	for i, v := range src {
		if logSpace {
			dst[i] = float32(float64(v) - max - logSum)
		} else {
			dst[i] = float32(math.Exp(float64(v)-max) / sum)
		}
	}
	return out
}

func mapUnary(in *tensor.Tensor, f func(float32) float32) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	src, dst := in.Data(), out.Data()
	for i, v := range src {
		dst[i] = f(v)
	}
	return out
}
