package nn

import (
	"fmt"
	"math"

	"condor/internal/tensor"
)

// forwardLayer evaluates one layer on a CHW input with the reference
// (direct, non-streaming) algorithm. The implementations follow the paper's
// equations (1), (4) and (5) literally.
func forwardLayer(l *Layer, in *tensor.Tensor, shape Shape) (*tensor.Tensor, error) {
	switch l.Kind {
	case Conv:
		return forwardConv(l, in, shape)
	case MaxPool:
		return forwardPool(l, in, shape, true)
	case AvgPool:
		return forwardPool(l, in, shape, false)
	case FullyConnected:
		return forwardFC(l, in, shape)
	case ReLU:
		return mapUnary(in, func(x float32) float32 {
			if x < 0 {
				return 0
			}
			return x
		}), nil
	case Sigmoid:
		return mapUnary(in, func(x float32) float32 {
			return float32(1 / (1 + math.Exp(-float64(x))))
		}), nil
	case TanH:
		return mapUnary(in, func(x float32) float32 {
			return float32(math.Tanh(float64(x)))
		}), nil
	case SoftMax:
		return forwardSoftMax(in, false), nil
	case LogSoftMax:
		return forwardSoftMax(in, true), nil
	default:
		return nil, fmt.Errorf("unknown layer kind %v", l.Kind)
	}
}

// forwardConv implements equation (1): each output point (i,j) of output map
// φ is the windowed dot product of the weights with the input, summed over
// all input channels, plus the optional bias b_φ.
//
// The loop nest is restructured from the literal per-window form into a
// scalar-times-row accumulation over flat slices: for every weight
// (f,c,m,n) the contribution w·x is added across a whole output row at
// once, with the column range clamped so zero-padded positions (which
// contribute w·0) are skipped. Each output point still accumulates its
// terms in (c,m,n) order after the bias, so the result matches the literal
// form. Output channels are independent and computed in parallel bands.
func forwardConv(l *Layer, in *tensor.Tensor, shape Shape) (*tensor.Tensor, error) {
	outShape, err := l.OutputShape(shape)
	if err != nil {
		return nil, err
	}
	out := tensor.New(outShape.Channels, outShape.Height, outShape.Width)
	k, s, p := l.Kernel, l.Stride, l.Pad
	h, w, cIn := shape.Height, shape.Width, shape.Channels
	outH, outW := outShape.Height, outShape.Width
	outHW := outH * outW
	src := in.Data()
	dst := out.Data()
	wd := l.Weights.Data()
	parallelFor(outShape.Channels, func(fLo, fHi int) {
		for f := fLo; f < fHi; f++ {
			fmap := dst[f*outHW : (f+1)*outHW]
			if l.Bias != nil {
				bias := l.Bias.At(f)
				for i := range fmap {
					fmap[i] = bias
				}
			}
			for c := 0; c < cIn; c++ {
				cmap := src[c*h*w : (c+1)*h*w]
				wbase := (f*cIn + c) * k * k
				for m := 0; m < k; m++ {
					for n := 0; n < k; n++ {
						wv := wd[wbase+m*k+n]
						if wv == 0 {
							continue
						}
						// Valid output columns: 0 ≤ ox·s+n-p < w.
						oxLo, oxHi := 0, outW
						if n < p {
							oxLo = (p - n + s - 1) / s
						}
						if hi := (w - 1 - n + p) / s; hi+1 < oxHi {
							oxHi = hi + 1
						}
						for oy := 0; oy < outH; oy++ {
							y := oy*s + m - p
							if y < 0 || y >= h {
								continue
							}
							irow := cmap[y*w:]
							orow := fmap[oy*outW:]
							for ox := oxLo; ox < oxHi; ox++ {
								orow[ox] += wv * irow[ox*s+n-p]
							}
						}
					}
				}
			}
		}
	})
	return out, nil
}

// forwardPool implements the sub-sampling layer: the window is replaced by
// its maximum (max-pooling) or its average.
func forwardPool(l *Layer, in *tensor.Tensor, shape Shape, isMax bool) (*tensor.Tensor, error) {
	outShape, err := l.OutputShape(shape)
	if err != nil {
		return nil, err
	}
	out := tensor.New(outShape.Channels, outShape.Height, outShape.Width)
	k, s, p := l.Kernel, l.Stride, l.Pad
	h, w := shape.Height, shape.Width
	outH, outW := outShape.Height, outShape.Width
	outHW := outH * outW
	src := in.Data()
	dst := out.Data()
	kk := float32(k * k)
	parallelFor(shape.Channels, func(cLo, cHi int) {
		for c := cLo; c < cHi; c++ {
			cmap := src[c*h*w : (c+1)*h*w]
			orow := dst[c*outHW:]
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					var v float32
					if isMax {
						v = float32(math.Inf(-1))
					}
					clipped := false
					for m := 0; m < k; m++ {
						y := oy*s + m - p
						if y < 0 || y >= h {
							clipped = true
							continue
						}
						irow := cmap[y*w : (y+1)*w]
						for nn := 0; nn < k; nn++ {
							x := ox*s + nn - p
							if x < 0 || x >= w {
								clipped = true
								continue
							}
							if isMax {
								if irow[x] > v {
									v = irow[x]
								}
							} else {
								v += irow[x]
							}
						}
					}
					if isMax {
						// Padded positions read as zero and participate in
						// the max, exactly as in the literal form.
						if clipped && v < 0 {
							v = 0
						}
					} else {
						v /= kk
					}
					orow[oy*outW+ox] = v
				}
			}
		}
	})
	return out, nil
}

// forwardFC implements equation (4): each output neuron is the weighted sum
// of all inputs plus an optional bias. The CHW input is flattened in
// row-major order, matching both Caffe's inner-product layout and the
// streaming order of the hardware datamover.
func forwardFC(l *Layer, in *tensor.Tensor, shape Shape) (*tensor.Tensor, error) {
	flat := in.Data()
	if len(flat) != shape.Volume() {
		return nil, fmt.Errorf("fc input volume %d, want %d", len(flat), shape.Volume())
	}
	out := tensor.New(l.OutputCount, 1, 1)
	dst := out.Data()
	wd := l.Weights.Data()
	v := len(flat)
	parallelFor(l.OutputCount, func(oLo, oHi int) {
		for o := oLo; o < oHi; o++ {
			var acc float32
			if l.Bias != nil {
				acc = l.Bias.At(o)
			}
			wrow := wd[o*v : (o+1)*v]
			for h, x := range flat {
				acc += wrow[h] * x
			}
			dst[o] = acc
		}
	})
	return out, nil
}

// forwardSoftMax implements equation (5), optionally in log space. The max
// is subtracted first for numerical stability; this does not change the
// result since σ is shift-invariant.
func forwardSoftMax(in *tensor.Tensor, logSpace bool) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	src, dst := in.Data(), out.Data()
	max := float64(math.Inf(-1))
	for _, v := range src {
		if float64(v) > max {
			max = float64(v)
		}
	}
	var sum float64
	for _, v := range src {
		sum += math.Exp(float64(v) - max)
	}
	logSum := math.Log(sum)
	for i, v := range src {
		if logSpace {
			dst[i] = float32(float64(v) - max - logSum)
		} else {
			dst[i] = float32(math.Exp(float64(v)-max) / sum)
		}
	}
	return out
}

func mapUnary(in *tensor.Tensor, f func(float32) float32) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	src, dst := in.Data(), out.Data()
	for i, v := range src {
		dst[i] = f(v)
	}
	return out
}
