package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"condor/internal/tensor"
)

// randConv builds a convolutional layer with seeded random weights.
func randConv(name string, inC, outC, k, stride, pad int, bias bool, seed int64) *Layer {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(outC, inC, k, k)
	w.FillRandom(rng, 0.5)
	l := &Layer{Name: name, Kind: Conv, Kernel: k, Stride: stride, Pad: pad, OutputCount: outC, Weights: w}
	if bias {
		b := tensor.New(outC)
		b.FillRandom(rng, 0.5)
		l.Bias = b
	}
	return l
}

func randFC(name string, in, out int, bias bool, seed int64) *Layer {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(out, in)
	w.FillRandom(rng, 0.5)
	l := &Layer{Name: name, Kind: FullyConnected, OutputCount: out, Weights: w}
	if bias {
		b := tensor.New(out)
		b.FillRandom(rng, 0.5)
		l.Bias = b
	}
	return l
}

func TestConvOutputShapeEq2(t *testing.T) {
	// Paper eq. (2): ω_new = ω_old − ω_f + 1 for stride 1, no padding.
	l := &Layer{Name: "c", Kind: Conv, Kernel: 5, Stride: 1, OutputCount: 3}
	out, err := l.OutputShape(Shape{Channels: 2, Height: 16, Width: 12})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{Channels: 3, Height: 12, Width: 8}) {
		t.Fatalf("conv output %v", out)
	}
}

func TestPoolOutputShapeEq3(t *testing.T) {
	// Paper eq. (3): ω_new = floor((ω_old − ω_f)/ρ) + 1.
	l := &Layer{Name: "p", Kind: MaxPool, Kernel: 2, Stride: 2}
	out, err := l.OutputShape(Shape{Channels: 4, Height: 13, Width: 12})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{Channels: 4, Height: 6, Width: 6}) {
		t.Fatalf("pool output %v", out)
	}
}

func TestConvWithPaddingAndStride(t *testing.T) {
	l := &Layer{Name: "c", Kind: Conv, Kernel: 3, Stride: 2, Pad: 1, OutputCount: 1}
	out, err := l.OutputShape(Shape{Channels: 1, Height: 7, Width: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out.Height != 4 || out.Width != 4 {
		t.Fatalf("padded strided conv output %v, want 4x4", out)
	}
}

func TestKernelTooLarge(t *testing.T) {
	l := &Layer{Name: "c", Kind: Conv, Kernel: 9, Stride: 1, OutputCount: 1}
	if _, err := l.OutputShape(Shape{Channels: 1, Height: 5, Width: 5}); err == nil {
		t.Fatal("expected error for kernel larger than input")
	}
}

func TestConvForwardKnownValues(t *testing.T) {
	// 1x3x3 input, single 2x2 filter of ones, bias 10: output is the sum of
	// each 2x2 window plus 10.
	in := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	b := tensor.FromSlice([]float32{10}, 1)
	l := &Layer{Name: "c", Kind: Conv, Kernel: 2, Stride: 1, OutputCount: 1, Weights: w, Bias: b}
	out, err := forwardLayer(l, in, Shape{1, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{22, 26, 34, 38}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestConvMultiChannelSumsChannels(t *testing.T) {
	in := tensor.New(2, 2, 2)
	in.Fill(1)
	w := tensor.New(1, 2, 2, 2)
	w.Fill(1)
	l := &Layer{Name: "c", Kind: Conv, Kernel: 2, Stride: 1, OutputCount: 1, Weights: w}
	out, err := forwardLayer(l, in, Shape{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(0, 0, 0); got != 8 {
		t.Fatalf("multi-channel conv = %v, want 8 (2 channels x 4 window)", got)
	}
}

func TestConvZeroPaddingReadsZero(t *testing.T) {
	in := tensor.FromSlice([]float32{5}, 1, 1, 1)
	w := tensor.New(1, 1, 3, 3)
	w.Fill(1)
	l := &Layer{Name: "c", Kind: Conv, Kernel: 3, Stride: 1, Pad: 1, OutputCount: 1, Weights: w}
	out, err := forwardLayer(l, in, Shape{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(0, 0, 0); got != 5 {
		t.Fatalf("padded conv = %v, want 5 (only centre non-zero)", got)
	}
}

func TestMaxPoolForward(t *testing.T) {
	in := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 9,
	}, 1, 4, 4)
	l := &Layer{Name: "p", Kind: MaxPool, Kernel: 2, Stride: 2}
	out, err := forwardLayer(l, in, Shape{1, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 8, -1, 9}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("maxpool[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestAvgPoolForward(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	l := &Layer{Name: "p", Kind: AvgPool, Kernel: 2, Stride: 2}
	out, err := forwardLayer(l, in, Shape{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0) != 2.5 {
		t.Fatalf("avgpool = %v, want 2.5", out.At(0, 0, 0))
	}
}

func TestFCForwardEq4(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3}, 3, 1, 1)
	w := tensor.FromSlice([]float32{
		1, 0, 0,
		1, 1, 1,
	}, 2, 3)
	b := tensor.FromSlice([]float32{0, 10}, 2)
	l := &Layer{Name: "fc", Kind: FullyConnected, OutputCount: 2, Weights: w, Bias: b}
	out, err := forwardLayer(l, in, Shape{3, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0) != 1 || out.At(1, 0, 0) != 16 {
		t.Fatalf("fc outputs %v %v, want 1 16", out.At(0, 0, 0), out.At(1, 0, 0))
	}
}

func TestActivations(t *testing.T) {
	in := tensor.FromSlice([]float32{-2, 0, 3}, 3, 1, 1)
	relu, _ := forwardLayer(&Layer{Kind: ReLU}, in, Shape{3, 1, 1})
	if relu.At(0, 0, 0) != 0 || relu.At(2, 0, 0) != 3 {
		t.Fatal("relu wrong")
	}
	sig, _ := forwardLayer(&Layer{Kind: Sigmoid}, in, Shape{3, 1, 1})
	if math.Abs(float64(sig.At(1, 0, 0))-0.5) > 1e-7 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	th, _ := forwardLayer(&Layer{Kind: TanH}, in, Shape{3, 1, 1})
	if math.Abs(float64(th.At(2, 0, 0))-math.Tanh(3)) > 1e-6 {
		t.Fatal("tanh wrong")
	}
}

func TestSoftMaxSumsToOne(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1, 1)
	out, _ := forwardLayer(&Layer{Kind: SoftMax}, in, Shape{4, 1, 1})
	var sum float64
	for _, v := range out.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("softmax value %v outside [0,1]", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
}

func TestLogSoftMaxMatchesLogOfSoftMax(t *testing.T) {
	in := tensor.FromSlice([]float32{0.5, -1, 2}, 3, 1, 1)
	sm, _ := forwardLayer(&Layer{Kind: SoftMax}, in, Shape{3, 1, 1})
	lsm, _ := forwardLayer(&Layer{Kind: LogSoftMax}, in, Shape{3, 1, 1})
	for i := range sm.Data() {
		if math.Abs(math.Log(float64(sm.Data()[i]))-float64(lsm.Data()[i])) > 1e-6 {
			t.Fatalf("logsoftmax[%d] mismatch", i)
		}
	}
}

func TestSoftMaxStableForLargeInputs(t *testing.T) {
	in := tensor.FromSlice([]float32{1000, 1001, 1002}, 3, 1, 1)
	out, _ := forwardLayer(&Layer{Kind: SoftMax}, in, Shape{3, 1, 1})
	for _, v := range out.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed on large inputs")
		}
	}
}

func smallNet(t *testing.T) *Network {
	t.Helper()
	n := &Network{
		Name:  "tiny",
		Input: Shape{Channels: 1, Height: 8, Width: 8},
		Layers: []*Layer{
			randConv("conv1", 1, 2, 3, 1, 0, true, 1),
			{Name: "relu1", Kind: ReLU},
			{Name: "pool1", Kind: MaxPool, Kernel: 2, Stride: 2},
			randFC("fc1", 2*3*3, 4, true, 2),
			{Name: "prob", Kind: LogSoftMax},
		},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkForwardShapes(t *testing.T) {
	n := smallNet(t)
	in := tensor.New(1, 8, 8)
	in.FillRandom(rand.New(rand.NewSource(3)), 1)
	acts, err := n.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 5 {
		t.Fatalf("got %d activations", len(acts))
	}
	if got := acts[2].Shape(); got[0] != 2 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("pool1 output %v, want [2 3 3]", got)
	}
	if got := acts[4].Shape(); got[0] != 4 {
		t.Fatalf("final output %v", got)
	}
}

func TestNetworkValidateRejectsBadWeights(t *testing.T) {
	n := smallNet(t)
	n.Layers[0].Weights = tensor.New(2, 1, 4, 4) // wrong kernel size
	if err := n.Validate(); err == nil {
		t.Fatal("expected weight-shape validation error")
	}
}

func TestNetworkValidateRejectsConvAfterFC(t *testing.T) {
	n := &Network{
		Name:  "bad",
		Input: Shape{1, 8, 8},
		Layers: []*Layer{
			randFC("fc", 64, 4, false, 1),
			randConv("conv", 4, 2, 1, 1, 0, false, 2),
		},
	}
	if err := n.Validate(); err == nil {
		t.Fatal("expected stage-ordering validation error")
	}
}

func TestNetworkValidateRejectsEmpty(t *testing.T) {
	if err := (&Network{Name: "e", Input: Shape{1, 4, 4}}).Validate(); err == nil {
		t.Fatal("expected error for empty network")
	}
}

func TestFLOPCounting(t *testing.T) {
	// conv: 2*OutH*OutW*OutC*InC*K*K + bias adds.
	l := randConv("c", 3, 8, 5, 1, 0, true, 1)
	in := Shape{Channels: 3, Height: 12, Width: 12}
	want := int64(2*8*8*8*3*5*5 + 8*8*8)
	if got := l.FLOPs(in); got != want {
		t.Fatalf("conv FLOPs = %d, want %d", got, want)
	}
	fc := randFC("f", 100, 10, false, 1)
	if got := fc.FLOPs(Shape{100, 1, 1}); got != 2000 {
		t.Fatalf("fc FLOPs = %d, want 2000", got)
	}
}

func TestFeatureExtractionFLOPsExcludesMLP(t *testing.T) {
	n := smallNet(t)
	fe := n.FeatureExtractionFLOPs()
	total := n.TotalFLOPs()
	if fe >= total {
		t.Fatalf("feature FLOPs %d should be < total %d", fe, total)
	}
	// conv1 + relu1 + pool1 only.
	want := n.Layers[0].FLOPs(Shape{1, 8, 8}) + n.Layers[1].FLOPs(Shape{2, 6, 6}) + n.Layers[2].FLOPs(Shape{2, 6, 6})
	if fe != want {
		t.Fatalf("feature FLOPs = %d, want %d", fe, want)
	}
}

func TestShapeAt(t *testing.T) {
	n := smallNet(t)
	s, err := n.ShapeAt(3)
	if err != nil {
		t.Fatal(err)
	}
	if s != (Shape{Channels: 2, Height: 3, Width: 3}) {
		t.Fatalf("ShapeAt(3) = %v", s)
	}
	out, err := n.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if out.Channels != 4 {
		t.Fatalf("output shape %v", out)
	}
}

func TestLayerIndexHelpers(t *testing.T) {
	n := smallNet(t)
	if got := n.FeatureLayers(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FeatureLayers = %v", got)
	}
	if got := n.ClassifierLayers(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("ClassifierLayers = %v", got)
	}
	if n.LayerByName("pool1") == nil || n.LayerByName("nope") != nil {
		t.Fatal("LayerByName wrong")
	}
}

// Property: shape equations (2) and (3) agree with directly counting the
// number of valid window positions.
func TestShapeEquationsMatchWindowCount(t *testing.T) {
	f := func(hRaw, kRaw, sRaw uint8) bool {
		h := int(hRaw%30) + 1
		k := int(kRaw%5) + 1
		s := int(sRaw%3) + 1
		if k > h {
			return true // not a valid configuration
		}
		count := 0
		for y := 0; y+k <= h; y += s {
			count++
		}
		l := &Layer{Kind: MaxPool, Kernel: k, Stride: s}
		out, err := l.OutputShape(Shape{Channels: 1, Height: h, Width: h})
		if err != nil {
			return false
		}
		return out.Height == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stride-1 convolution with a one-hot kernel reproduces a shifted
// copy of the input (the identity of convolution).
func TestConvOneHotKernelShifts(t *testing.T) {
	f := func(seed int64, dyRaw, dxRaw uint8) bool {
		k := 3
		dy, dx := int(dyRaw%3), int(dxRaw%3)
		w := tensor.New(1, 1, k, k)
		w.Set(1, 0, 0, dy, dx)
		l := &Layer{Kind: Conv, Kernel: k, Stride: 1, OutputCount: 1, Weights: w}
		in := tensor.New(1, 6, 6)
		in.FillRandom(rand.New(rand.NewSource(seed)), 1)
		out, err := forwardLayer(l, in, Shape{1, 6, 6})
		if err != nil {
			return false
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				if out.At(0, y, x) != in.At(0, y+dy, x+dx) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStringsAndStages(t *testing.T) {
	if Conv.String() != "Convolution" || FullyConnected.String() != "InnerProduct" {
		t.Fatal("kind names wrong")
	}
	if !Conv.IsFeatureExtraction() || !AvgPool.IsFeatureExtraction() || FullyConnected.IsFeatureExtraction() {
		t.Fatal("feature-extraction classification wrong")
	}
	if !ReLU.IsActivation() || Conv.IsActivation() {
		t.Fatal("activation classification wrong")
	}
	if !FullyConnected.IsClassifier() || !LogSoftMax.IsClassifier() || Conv.IsClassifier() {
		t.Fatal("classifier classification wrong")
	}
}
