// Package nn defines the CNN layer and network abstractions used by the
// Condor framework, together with a golden reference (CPU) forward pass that
// the hardware fabric is validated against, shape inference implementing the
// paper's equations (2) and (3), and per-layer FLOP accounting used by the
// performance model.
package nn

import (
	"fmt"

	"condor/internal/tensor"
)

// Kind enumerates the layer types Condor supports. Convolutional and pooling
// layers form the features-extraction stage; inner-product (fully-connected)
// and softmax layers form the classification stage (the MLP).
type Kind int

const (
	Conv Kind = iota
	MaxPool
	AvgPool
	FullyConnected
	ReLU
	Sigmoid
	TanH
	LogSoftMax
	SoftMax
)

// String returns the Caffe-style layer type name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "Convolution"
	case MaxPool:
		return "MaxPooling"
	case AvgPool:
		return "AvgPooling"
	case FullyConnected:
		return "InnerProduct"
	case ReLU:
		return "ReLU"
	case Sigmoid:
		return "Sigmoid"
	case TanH:
		return "TanH"
	case LogSoftMax:
		return "LogSoftMax"
	case SoftMax:
		return "Softmax"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsFeatureExtraction reports whether the layer belongs to the
// features-extraction stage of the network (sliding-window layers).
func (k Kind) IsFeatureExtraction() bool {
	return k == Conv || k == MaxPool || k == AvgPool
}

// IsActivation reports whether the layer is a pointwise non-linearity. In the
// hardware mapping these are folded into the producing PE rather than
// instantiated as separate elements.
func (k Kind) IsActivation() bool {
	return k == ReLU || k == Sigmoid || k == TanH
}

// IsClassifier reports whether the layer belongs to the classification (MLP)
// stage.
func (k Kind) IsClassifier() bool {
	return k == FullyConnected || k == LogSoftMax || k == SoftMax
}

// Shape describes a CHW feature-map volume flowing between layers.
type Shape struct {
	Channels int
	Height   int
	Width    int
}

// Volume returns the number of elements in the shape.
func (s Shape) Volume() int { return s.Channels * s.Height * s.Width }

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%d", s.Channels, s.Height, s.Width)
}

// Layer is one logical CNN layer. Weight tensors are attached for Conv
// (shape [Out, In, K, K]) and FullyConnected (shape [Out, In]) layers; Bias
// (shape [Out]) is optional and nil when absent.
type Layer struct {
	Name string
	Kind Kind

	// Convolution / pooling geometry. Kernel is the window side (the paper's
	// ω_f = γ_f; Condor supports square windows, as both test networks and
	// VGG-16 use them). Stride is the paper's ρ for pooling (and the
	// convolution stride hyperparameter); Pad is symmetric zero padding.
	Kernel int
	Stride int
	Pad    int

	// OutputCount is F, the number of filters (Conv) or output neurons
	// (FullyConnected).
	OutputCount int

	Weights *tensor.Tensor
	Bias    *tensor.Tensor
}

// OutputShape implements the paper's shape equations. For convolutional
// layers (eq. 2, generalised with stride and padding):
//
//	ω_new = (ω_old + 2·pad − ω_f)/stride + 1
//
// For sub-sampling layers (eq. 3) the same floor-division form applies with
// ρ = Stride. Activation layers preserve the input shape; fully-connected
// layers flatten to [OutputCount,1,1]; softmax preserves shape.
func (l *Layer) OutputShape(in Shape) (Shape, error) {
	switch l.Kind {
	case Conv:
		h := (in.Height+2*l.Pad-l.Kernel)/l.Stride + 1
		w := (in.Width+2*l.Pad-l.Kernel)/l.Stride + 1
		if l.Kernel > in.Height+2*l.Pad || l.Kernel > in.Width+2*l.Pad {
			return Shape{}, fmt.Errorf("nn: layer %q kernel %d exceeds padded input %s", l.Name, l.Kernel, in)
		}
		return Shape{Channels: l.OutputCount, Height: h, Width: w}, nil
	case MaxPool, AvgPool:
		h := (in.Height+2*l.Pad-l.Kernel)/l.Stride + 1
		w := (in.Width+2*l.Pad-l.Kernel)/l.Stride + 1
		if l.Kernel > in.Height+2*l.Pad || l.Kernel > in.Width+2*l.Pad {
			return Shape{}, fmt.Errorf("nn: layer %q window %d exceeds padded input %s", l.Name, l.Kernel, in)
		}
		return Shape{Channels: in.Channels, Height: h, Width: w}, nil
	case FullyConnected:
		return Shape{Channels: l.OutputCount, Height: 1, Width: 1}, nil
	case ReLU, Sigmoid, TanH, LogSoftMax, SoftMax:
		return in, nil
	default:
		return Shape{}, fmt.Errorf("nn: layer %q has unknown kind %v", l.Name, l.Kind)
	}
}

// FLOPs returns the floating-point operation count of one forward evaluation
// of the layer for the given input shape, counting a multiply-accumulate as
// two operations (the GFLOPS convention used by the paper and by Caffeine).
// Pooling comparisons/additions count one operation per window element;
// activations one per element; softmax ~4 per element (exp, sum, div, log).
func (l *Layer) FLOPs(in Shape) int64 {
	out, err := l.OutputShape(in)
	if err != nil {
		return 0
	}
	switch l.Kind {
	case Conv:
		macs := int64(out.Height) * int64(out.Width) * int64(out.Channels) *
			int64(in.Channels) * int64(l.Kernel) * int64(l.Kernel)
		fl := 2 * macs
		if l.Bias != nil {
			fl += int64(out.Volume())
		}
		return fl
	case MaxPool, AvgPool:
		return int64(out.Volume()) * int64(l.Kernel) * int64(l.Kernel)
	case FullyConnected:
		macs := int64(l.OutputCount) * int64(in.Volume())
		fl := 2 * macs
		if l.Bias != nil {
			fl += int64(l.OutputCount)
		}
		return fl
	case ReLU, Sigmoid, TanH:
		return int64(in.Volume())
	case LogSoftMax, SoftMax:
		return 4 * int64(in.Volume())
	default:
		return 0
	}
}

// CheckWeights validates that the attached weight/bias tensors agree with the
// layer geometry for the given input shape.
func (l *Layer) CheckWeights(in Shape) error {
	switch l.Kind {
	case Conv:
		if l.Weights == nil {
			return fmt.Errorf("nn: conv layer %q missing weights", l.Name)
		}
		want := []int{l.OutputCount, in.Channels, l.Kernel, l.Kernel}
		if !shapeEq(l.Weights.Shape(), want) {
			return fmt.Errorf("nn: conv layer %q weights %v, want %v", l.Name, l.Weights.Shape(), want)
		}
	case FullyConnected:
		if l.Weights == nil {
			return fmt.Errorf("nn: fc layer %q missing weights", l.Name)
		}
		want := []int{l.OutputCount, in.Volume()}
		if !shapeEq(l.Weights.Shape(), want) {
			return fmt.Errorf("nn: fc layer %q weights %v, want %v", l.Name, l.Weights.Shape(), want)
		}
	default:
		return nil
	}
	if l.Bias != nil && !shapeEq(l.Bias.Shape(), []int{l.OutputCount}) {
		return fmt.Errorf("nn: layer %q bias %v, want [%d]", l.Name, l.Bias.Shape(), l.OutputCount)
	}
	return nil
}

// shapeEq delegates to the canonical dimension-list comparison.
func shapeEq(a, b []int) bool { return tensor.ShapeEq(a, b) }
