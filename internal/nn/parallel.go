package nn

import (
	"runtime"
	"sync"
)

// parallelFor splits [0,n) into contiguous bands, one per worker, and runs
// fn(lo,hi) on each concurrently. The worker pool is bounded by GOMAXPROCS;
// with a single band (or tiny n) it degenerates to a direct call, so the
// host reference engine stays allocation- and goroutine-free on small
// problems and on single-CPU machines. Each band writes a disjoint slice of
// the output and accumulation order within a band is unchanged, so results
// do not depend on the worker count.
func parallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	band := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += band {
		hi := lo + band
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
